// Resourcepool: the partial, nondeterministic type of Section 8.2 as a
// runnable demo. Allocation has no legal response on an empty pool
// (partial) and may return any free resource (nondeterministic). The demo
// shows the two recovery methods giving *different responses* to the same
// concurrent allocation pattern: update-in-place sees in-flight
// allocations; deferred update sees only committed state, so concurrent
// allocators collide and serialize.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/adt"
	"repro/internal/commute"
	"repro/internal/txn"
)

func main() {
	pool := adt.DefaultResourcePool() // resources {1, 2, 3}

	fmt.Println("— update-in-place (undo log, NRBC conflicts) —")
	uip := txn.NewEngine(txn.Options{})
	uip.MustRegister("pool", pool,
		commute.Materialize(pool.NRBC(), pool.Spec().Alphabet()), txn.UndoLogRecovery)

	a, b := uip.Begin(), uip.Begin()
	ra, err := a.Invoke("pool", adt.Alloc())
	check(err)
	rb, err := b.Invoke("pool", adt.Alloc())
	check(err)
	fmt.Printf("concurrent allocs returned %s and %s — no blocking: the allocator\n", ra, rb)
	fmt.Println("sees A's in-flight allocation and hands B the next resource.")

	// Abort A: its resource returns to the pool via logical undo.
	check(a.Abort())
	c := uip.Begin()
	rc, err := c.Invoke("pool", adt.Alloc())
	check(err)
	fmt.Printf("after A aborts, the next alloc gets %s back\n", rc)
	check(b.Abort())
	check(c.Abort())

	fmt.Println()
	fmt.Println("— deferred update (intentions lists, NFC conflicts) —")
	du := txn.NewEngine(txn.Options{})
	du.MustRegister("pool", pool,
		commute.Materialize(pool.NFC(), pool.Spec().Alphabet()), txn.IntentionsRecovery)

	d1, d2 := du.Begin(), du.Begin()
	r1, err := d1.Invoke("pool", adt.Alloc())
	check(err)
	fmt.Printf("D1 allocates %s (uncommitted)\n", r1)
	done := make(chan string, 1)
	go func() {
		r, err := d2.Invoke("pool", adt.Alloc())
		check(err)
		done <- string(r)
	}()
	fmt.Println("D2's alloc computes against the committed pool, picks the same")
	fmt.Println("resource, conflicts, and blocks...")
	check(d1.Commit())
	fmt.Printf("after D1 commits, D2 gets %s\n", <-done)
	check(d2.Commit())

	// Exhaustion: with all resources allocated, alloc is partial — there is
	// no legal response, and the engine surfaces that instead of blocking.
	fmt.Println()
	fmt.Println("— exhaustion (partial invocation) —")
	ex := txn.NewEngine(txn.Options{})
	ex.MustRegister("pool", adt.ResourcePool{Resources: []int{1}},
		commute.Materialize(adt.ResourcePool{Resources: []int{1}}.NRBC(),
			adt.ResourcePool{Resources: []int{1}}.Spec().Alphabet()),
		txn.UndoLogRecovery)
	holder := ex.Begin()
	_, err = holder.Invoke("pool", adt.Alloc())
	check(err)
	waiter := ex.Begin()
	_, err = waiter.Invoke("pool", adt.Alloc())
	if errors.Is(err, adt.ErrNotEnabled) {
		fmt.Println("second alloc on an exhausted pool reports ErrNotEnabled —")
		fmt.Println("the serial specification has no legal response (alloc is partial).")
	} else {
		log.Fatalf("expected ErrNotEnabled, got %v", err)
	}
	check(holder.Abort())
	check(waiter.Abort())
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
