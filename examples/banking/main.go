// Banking: the paper's central trade-off as a runnable demo. The same
// hot-spot banking workload runs under the two optimal scheduler pairings —
// update-in-place with NRBC conflicts (Theorem 9) and deferred update with
// NFC conflicts (Theorem 10) — plus the read/write locking baseline, across
// three operation mixes. Neither recovery method wins everywhere: the
// conflict relations are incomparable, so the winner flips with the mix.
package main

import (
	"fmt"

	"repro/internal/adt"
	"repro/internal/commute"
	"repro/internal/sim"
)

func main() {
	fmt.Println("The impact of recovery on concurrency control — banking hot spot")
	fmt.Println()

	// Deterministic shape first: exact conflict mass per mix.
	ba := adt.DefaultBankAccount()
	mixes := [][2]int{{0, 100}, {50, 50}, {90, 10}}
	rows := sim.ConflictMassTable(
		[]commute.Relation{ba.NRBC(), ba.NFC(), ba.RW()}, mixes, 1<<20)
	fmt.Println(sim.RenderMassTable(
		"exact conflict mass (probability two concurrent ops conflict)",
		[]string{"UIP(NRBC)", "DU(NFC)", "RW"}, rows))

	// Then the live engine at each mix.
	for _, mix := range []struct {
		label    string
		dep, wdr int
	}{
		{"withdraw-only mix — update-in-place wins (withdrawals commute backward)", 0, 100},
		{"balanced mix — the two methods tie", 50, 50},
		{"deposit-heavy mix — deferred update wins (withdrawals validate against committed state)", 90, 10},
	} {
		cfg := sim.BankingConfig{
			Accounts:       2,
			Workers:        8,
			TxnsPerWorker:  150,
			OpsPerTxn:      4,
			DepositPct:     mix.dep,
			WithdrawPct:    mix.wdr,
			InitialBalance: 1 << 20,
			ThinkIters:     2000,
			Seed:           7,
		}
		var results []sim.Result
		for _, s := range []sim.Scheduler{sim.UIPNRBC, sim.DUNFC, sim.UIPRW} {
			r, _ := sim.RunBanking(s, cfg)
			results = append(results, r)
		}
		fmt.Println(sim.RenderTable(mix.label, results))
	}
}
