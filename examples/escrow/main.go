// Escrow: the paper's Section 9 points at O'Neil's escrow method as the
// natural descendant of commutativity-based locking. This example runs a
// doubly-bounded escrow counter (inventory with finite stock and finite
// shelf space) under both recovery methods and shows where each must
// serialize: near the ceiling, increments stop commuting forward (deferred
// update must serialize restocks); after an uncommitted increment,
// decrements stop right-commuting backward (update-in-place must serialize
// a sale that consumes an uncommitted restock).
package main

import (
	"fmt"
	"log"

	"repro/internal/adt"
	"repro/internal/commute"
	"repro/internal/txn"
)

func main() {
	ctr := adt.EscrowCounter{Initial: 4, Max: 8, Amounts: []int{1, 2}}
	c := ctr.Checker()

	fmt.Println("escrow counter: value in [0,8], starting at 4")
	fmt.Println()
	fmt.Println("commutativity structure (derived exactly from the specification):")
	fmt.Printf("  inc-ok fwd-commutes with inc-ok:  %v  (two restocks can overflow the ceiling)\n",
		c.CommuteForward(adt.IncOk(2), adt.IncOk(2)))
	fmt.Printf("  dec-ok fwd-commutes with dec-ok:  %v  (two sales can exhaust the stock)\n",
		c.CommuteForward(adt.DecOk(2), adt.DecOk(2)))
	fmt.Printf("  dec-ok rbwd-commutes with inc-ok: %v  (a sale may consume an uncommitted restock)\n",
		c.RightCommutesBackward(adt.DecOk(2), adt.IncOk(2)))
	fmt.Printf("  inc-ok rbwd-commutes with dec-ok: %v  (undoing the sale could overflow the restock)\n",
		c.RightCommutesBackward(adt.IncOk(2), adt.DecOk(2)))
	fmt.Println()

	// Deferred update, NFC conflicts: two big sales from stock 4 must
	// serialize (they cannot both be funded by the committed stock).
	du := txn.NewEngine(txn.Options{})
	du.MustRegister("stock", ctr,
		commute.Materialize(ctr.NFC(), ctr.Spec().Alphabet()), txn.IntentionsRecovery)
	s1, s2 := du.Begin(), du.Begin()
	if _, err := s1.Invoke("stock", adt.Dec(2)); err != nil {
		log.Fatal(err)
	}
	blocked := make(chan struct{})
	go func() {
		if _, err := s2.Invoke("stock", adt.Dec(2)); err != nil {
			log.Fatal(err)
		}
		close(blocked)
	}()
	select {
	case <-blocked:
		fmt.Println("DU: second sale did NOT block (unexpected)")
	default:
		fmt.Println("DU/NFC: the second concurrent sale blocks until the first commits")
	}
	if err := s1.Commit(); err != nil {
		log.Fatal(err)
	}
	<-blocked
	if err := s2.Commit(); err != nil {
		log.Fatal(err)
	}
	store, _ := du.Object("stock")
	fmt.Printf("DU: committed stock after both sales: %s (want 0)\n", store.CommittedValue().Encode())
	fmt.Println()

	// Update-in-place, NRBC conflicts: a sale after an uncommitted restock
	// must wait — undoing the restock would invalidate the sale.
	uip := txn.NewEngine(txn.Options{})
	uip.MustRegister("stock", ctr,
		commute.Materialize(ctr.NRBC(), ctr.Spec().Alphabet()), txn.UndoLogRecovery)
	restock := uip.Begin()
	if _, err := restock.Invoke("stock", adt.Inc(2)); err != nil {
		log.Fatal(err)
	}
	sale := uip.Begin()
	saleDone := make(chan struct{})
	go func() {
		if _, err := sale.Invoke("stock", adt.Dec(2)); err != nil {
			log.Fatal(err)
		}
		close(saleDone)
	}()
	select {
	case <-saleDone:
		fmt.Println("UIP: sale did NOT block behind the uncommitted restock (unexpected)")
	default:
		fmt.Println("UIP/NRBC: a sale blocks behind an uncommitted restock")
	}
	if err := restock.Commit(); err != nil {
		log.Fatal(err)
	}
	<-saleDone
	if err := sale.Commit(); err != nil {
		log.Fatal(err)
	}

	// The mirror case does NOT run concurrently here — and that is the
	// interesting finding: the ceiling removes the bank account's
	// asymmetry. For the singly-bounded account, a deposit always
	// right-commutes backward with a withdrawal, so UIP lets deposits
	// stream past uncommitted withdrawals. For the doubly-bounded counter,
	// undoing a sale could overflow a restock past the ceiling, so
	// (inc-ok, dec-ok) lands in NRBC too.
	fmt.Println()
	fmt.Printf("counter: inc-ok conflicts with held dec-ok under NRBC: %v\n",
		!c.RightCommutesBackward(adt.IncOk(1), adt.DecOk(1)))
	ba := adt.DefaultBankAccount()
	fmt.Printf("account: deposit conflicts with held withdraw-ok under NRBC: %v\n",
		ba.NRBC().Conflicts(adt.DepositOk(1), adt.WithdrawOk(1)))
	fmt.Println()
	fmt.Println("the bank account's missing ceiling is exactly what buys update-in-place")
	fmt.Println("its extra concurrency; bounding the type from both sides takes it away.")

	store2, _ := uip.Object("stock")
	fmt.Printf("UIP: final committed stock: %s\n", store2.CommittedValue().Encode())
}
