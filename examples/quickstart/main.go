// Quickstart: create a transaction engine with two bank accounts using
// update-in-place recovery and the minimal NRBC conflict relation
// (Theorem 9's optimum), run a transfer, abort another, and verify the
// recorded history is dynamic atomic.
package main

import (
	"fmt"
	"log"

	"repro/internal/adt"
	"repro/internal/atomicity"
	"repro/internal/txn"
)

func main() {
	// 1. Build an engine that records its history.
	engine := txn.NewEngine(txn.Options{RecordHistory: true})

	// 2. Register two bank accounts: update-in-place (undo-log) recovery
	//    requires conflicts containing NRBC(Spec) — Theorem 9.
	account := adt.BankAccount{InitialBalance: 100, MaxBalance: 1 << 20, Amounts: []int{1, 2, 3}}
	engine.MustRegister("checking", account, account.NRBC(), txn.UndoLogRecovery)
	engine.MustRegister("savings", account, account.NRBC(), txn.UndoLogRecovery)

	// 3. Transfer 3 from checking to savings in one transaction.
	transfer := engine.Begin()
	if _, err := transfer.Invoke("checking", adt.Withdraw(3)); err != nil {
		log.Fatal(err)
	}
	if _, err := transfer.Invoke("savings", adt.Deposit(3)); err != nil {
		log.Fatal(err)
	}
	if err := transfer.Commit(); err != nil {
		log.Fatal(err)
	}

	// 4. Start a deposit and abort it: the undo log rolls it back.
	oops := engine.Begin()
	if _, err := oops.Invoke("checking", adt.Deposit(50)); err != nil {
		log.Fatal(err)
	}
	if err := oops.Abort(); err != nil {
		log.Fatal(err)
	}

	// 5. Read the final balances.
	reader := engine.Begin()
	checking, _ := reader.Invoke("checking", adt.Balance())
	savings, _ := reader.Invoke("savings", adt.Balance())
	if err := reader.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checking = %s (want 97), savings = %s (want 103)\n", checking, savings)

	// 6. Verify the recorded history end to end.
	h := engine.History()
	specs := atomicity.Specs{"checking": account.Spec(), "savings": account.Spec()}
	da, viol, err := atomicity.DynamicAtomic(h, specs)
	if err != nil {
		log.Fatal(err)
	}
	if !da {
		log.Fatalf("history not dynamic atomic: %v", viol)
	}
	fmt.Printf("recorded %d events; history is dynamic atomic\n", len(h))
	fmt.Printf("write-ahead log holds %d records\n", engine.WAL().Len())
}
