// Theoremlab: the paper's theorems as an interactive laboratory. The
// program derives commutativity-violation witnesses from the bank-account
// specification, machine-builds the counterexample histories of
// Theorems 9 and 10, replays them through the abstract object automaton
// I(X, Spec, View, Conflict), and shows the dynamic-atomicity violation the
// wrong conflict relation permits.
package main

import (
	"fmt"
	"log"

	"repro/internal/adt"
	"repro/internal/atomicity"
	"repro/internal/core"
	"repro/internal/history"
)

func main() {
	ba := adt.DefaultBankAccount()
	checker := ba.Checker()
	specs := atomicity.Specs{"BA": ba.Spec()}

	fmt.Println("=== Theorem 9: update-in-place needs NRBC ⊆ Conflict ===")
	fmt.Println()
	// (withdraw-ok, deposit) ∈ NRBC \ NFC: running UIP with the NFC
	// relation is under-conflicted.
	p, q := adt.WithdrawOk(2), adt.DepositOk(2)
	v, ok := checker.RBCViolationWitness(p, q)
	if !ok {
		log.Fatal("expected an RBC violation for (withdraw-ok, deposit)")
	}
	fmt.Printf("witness: %s\n\n", v)
	ce := core.BuildUIPCounterexample("BA", v)
	fmt.Println(ce.Comment)
	fmt.Println(ce.H)
	fmt.Println()

	accepted, _, _ := core.Accepts("BA", ba.Spec(), core.UIP, ba.NFC(), ce.H)
	fmt.Printf("I(BA, Spec, UIP, NFC) accepts it:   %v  (NFC misses the pair)\n", accepted)
	rejected, idx, reason := core.Accepts("BA", ba.Spec(), core.UIP, ba.NRBC(), ce.H)
	fmt.Printf("I(BA, Spec, UIP, NRBC) accepts it:  %v  (event %d: %s)\n", rejected, idx, reason)
	da, viol, err := atomicity.DynamicAtomic(ce.H, specs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamic atomic:                     %v", da)
	if viol != nil {
		fmt.Printf("  (violating order %v: the withdrawal cannot be serialized before the deposit it consumed)", viol.Order)
	}
	fmt.Println()
	fmt.Println()

	fmt.Println("=== Theorem 10: deferred update needs NFC ⊆ Conflict ===")
	fmt.Println()
	// (withdraw-ok, withdraw-ok) ∈ NFC \ NRBC: running DU with the NRBC
	// relation is under-conflicted.
	p2, q2 := adt.WithdrawOk(2), adt.WithdrawOk(2)
	fv, ok := checker.FCViolationWitness(p2, q2)
	if !ok {
		log.Fatal("expected an FC violation for (withdraw-ok, withdraw-ok)")
	}
	fmt.Printf("witness: %s\n\n", fv)
	ce2 := core.BuildDUCounterexample("BA", fv)
	fmt.Println(ce2.Comment)
	fmt.Println(ce2.H)
	fmt.Println()

	accepted2, _, _ := core.Accepts("BA", ba.Spec(), core.DU, ba.NRBC(), ce2.H)
	fmt.Printf("I(BA, Spec, DU, NRBC) accepts it:   %v  (both withdrawals validated against the committed balance)\n", accepted2)
	rejected2, idx2, reason2 := core.Accepts("BA", ba.Spec(), core.DU, ba.NFC(), ce2.H)
	fmt.Printf("I(BA, Spec, DU, NFC) accepts it:    %v  (event %d: %s)\n", rejected2, idx2, reason2)
	da2, viol2, err := atomicity.DynamicAtomic(ce2.H, specs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamic atomic:                     %v", da2)
	if viol2 != nil {
		fmt.Printf("  (violating order %v: the committed balance cannot fund both withdrawals)", viol2.Order)
	}
	fmt.Println()
	fmt.Println()

	fmt.Println("=== The incomparability, in one place ===")
	fmt.Println()
	report := func(label string, pOp, qOp string, nfc, nrbc bool) {
		fmt.Printf("%-38s NFC:%-6v NRBC:%v\n", label+" ("+pOp+" vs "+qOp+")", nfc, nrbc)
	}
	report("concurrent withdrawals", p2.String(), q2.String(),
		ba.NFC().Conflicts(p2, q2), ba.NRBC().Conflicts(p2, q2))
	report("withdraw after uncommitted deposit", p.String(), q.String(),
		ba.NFC().Conflicts(p, q), ba.NRBC().Conflicts(p, q))
	fmt.Println()
	fmt.Println("each recovery method forbids a pair the other permits: the constraints")
	fmt.Println("recovery places on concurrency control are incomparable.")

	// Show that both counterexamples are well-formed histories (sanity).
	for _, h := range []history.History{ce.H, ce2.H} {
		if err := history.WellFormed(h); err != nil {
			log.Fatalf("counterexample malformed: %v", err)
		}
	}
}
