package repro

// One benchmark per experiment in DESIGN.md §3. Each bench regenerates a
// paper artifact (figure, table, counterexample, or trade-off series) and
// fails fast if the regenerated artifact loses the paper's shape, so
// `go test -bench=. -benchmem` doubles as the reproduction harness.

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/adt"
	"repro/internal/atomicity"
	"repro/internal/commute"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/spec"
)

func figureOps() []spec.Operation {
	return []spec.Operation{
		adt.DepositOk(2), adt.WithdrawOk(2), adt.WithdrawNo(2), adt.BalanceIs(2),
	}
}

// BenchmarkFig61ForwardCommutativity regenerates Figure 6.1 from the
// bank-account specification and checks it against the paper's table (E1).
func BenchmarkFig61ForwardCommutativity(b *testing.B) {
	ba := adt.DefaultBankAccount()
	want := commute.BuildTable("", ba.NFC(), figureOps())
	for i := 0; i < b.N; i++ {
		c := ba.Checker()
		got := commute.BuildTable("", c.NFCRelation(), figureOps())
		if !got.Equal(want) {
			b.Fatal("Figure 6.1 derivation diverged from the paper's table")
		}
	}
}

// BenchmarkFig62BackwardCommutativity regenerates Figure 6.2 (E2).
func BenchmarkFig62BackwardCommutativity(b *testing.B) {
	ba := adt.DefaultBankAccount()
	want := commute.BuildTable("", ba.NRBC(), figureOps())
	for i := 0; i < b.N; i++ {
		c := ba.Checker()
		got := commute.BuildTable("", c.NRBCRelation(), figureOps())
		if !got.Equal(want) {
			b.Fatal("Figure 6.2 derivation diverged from the paper's table")
		}
	}
}

// BenchmarkTableINonlocalEffects re-verifies the Table I analysis (E3):
// I rbc J, J not rbc I, (I,J) ∉ CI, state 5 ≲ state 4 only.
func BenchmarkTableINonlocalEffects(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := commute.NewChecker(adt.TableISpec())
		ji := spec.Seq{adt.OpJR, adt.OpIQ}
		ij := spec.Seq{adt.OpIQ, adt.OpJR}
		ci, err := c.CI(adt.InvI, adt.InvJ)
		if err != nil {
			b.Fatal(err)
		}
		ok := c.RightCommutesBackward(adt.OpIQ, adt.OpJR) &&
			!c.RightCommutesBackward(adt.OpJR, adt.OpIQ) &&
			!ci && c.LooksLike(ji, ij) && !c.LooksLike(ij, ji)
		if !ok {
			b.Fatal("Table I analysis diverged from the paper")
		}
	}
}

// BenchmarkTheorem9UIP builds and verifies the Theorem 9 counterexample
// (E4): UIP with an NRBC-missing conflict relation accepts a
// non-dynamic-atomic history.
func BenchmarkTheorem9UIP(b *testing.B) {
	ba := adt.DefaultBankAccount()
	specs := atomicity.Specs{"BA": ba.Spec()}
	for i := 0; i < b.N; i++ {
		c := ba.Checker()
		v, found := c.RBCViolationWitness(adt.WithdrawOk(2), adt.DepositOk(2))
		if !found {
			b.Fatal("missing RBC violation witness")
		}
		ce := core.BuildUIPCounterexample("BA", v)
		accepted, _, _ := core.Accepts("BA", ba.Spec(), core.UIP, ba.NFC(), ce.H)
		da, _, err := atomicity.DynamicAtomic(ce.H, specs)
		if err != nil {
			b.Fatal(err)
		}
		if !accepted || da {
			b.Fatal("Theorem 9 counterexample lost its shape")
		}
	}
}

// BenchmarkTheorem10DU mirrors Theorem 10 (E5).
func BenchmarkTheorem10DU(b *testing.B) {
	ba := adt.DefaultBankAccount()
	specs := atomicity.Specs{"BA": ba.Spec()}
	for i := 0; i < b.N; i++ {
		c := ba.Checker()
		v, found := c.FCViolationWitness(adt.WithdrawOk(2), adt.WithdrawOk(2))
		if !found {
			b.Fatal("missing FC violation witness")
		}
		ce := core.BuildDUCounterexample("BA", v)
		accepted, _, _ := core.Accepts("BA", ba.Spec(), core.DU, ba.NRBC(), ce.H)
		da, _, err := atomicity.DynamicAtomic(ce.H, specs)
		if err != nil {
			b.Fatal(err)
		}
		if !accepted || da {
			b.Fatal("Theorem 10 counterexample lost its shape")
		}
	}
}

// BenchmarkRWLockingBothRecoveries verifies Section 8.1 across every
// registered type (E6): the read/write relation contains both NFC and NRBC.
func BenchmarkRWLockingBothRecoveries(b *testing.B) {
	types := []adt.Type{
		adt.DefaultBankAccount(), adt.DefaultIntSet(), adt.DefaultFIFOQueue(),
		adt.DefaultKVStore(), adt.DefaultRegister(), adt.DefaultResourcePool(),
	}
	for i := 0; i < b.N; i++ {
		for _, ty := range types {
			rw, nfc, nrbc := ty.RW(), ty.NFC(), ty.NRBC()
			for _, p := range ty.Spec().Alphabet() {
				for _, q := range ty.Spec().Alphabet() {
					if (nfc.Conflicts(p, q) || nrbc.Conflicts(p, q)) && !rw.Conflicts(p, q) {
						b.Fatalf("%s: RW misses (%s,%s)", ty.Name(), p, q)
					}
				}
			}
		}
	}
}

// BenchmarkInvocationTotalDeterministic verifies Lemmas 15–16 on the bank
// account (E7): FCI = RBCI = CI for total deterministic invocations.
func BenchmarkInvocationTotalDeterministic(b *testing.B) {
	ba := adt.DefaultBankAccount()
	invs := []spec.Invocation{adt.Deposit(1), adt.Withdraw(2), adt.Balance()}
	for i := 0; i < b.N; i++ {
		c := ba.Checker()
		for _, x := range invs {
			for _, y := range invs {
				ci, err := c.CI(x, y)
				if err != nil {
					b.Fatal(err)
				}
				if c.FCI(x, y) != ci || c.RBCI(x, y) != ci {
					b.Fatalf("FCI/RBCI/CI diverged on (%s,%s)", x, y)
				}
			}
		}
	}
}

// BenchmarkPartialInvocations re-verifies the Section 8.2.2.1 examples
// (E8): partial invocations split FCI and RBCI in both directions.
func BenchmarkPartialInvocations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ca := commute.NewChecker(adt.PartialSpecA())
		cb := commute.NewChecker(adt.PartialSpecB())
		if !ca.RBCI(adt.InvI, adt.InvJ) || ca.FCI(adt.InvI, adt.InvJ) {
			b.Fatal("spec A: want RBCI without FCI")
		}
		if !cb.FCI(adt.InvI, adt.InvJ) || cb.RBCI(adt.InvI, adt.InvJ) {
			b.Fatal("spec B: want FCI without RBCI")
		}
	}
}

// BenchmarkNondeterministicInvocations re-verifies the Section 8.2.2.2
// examples (E9).
func BenchmarkNondeterministicInvocations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cc := commute.NewChecker(adt.NondetSpecC())
		cd := commute.NewChecker(adt.NondetSpecD())
		if !cc.RBCI(adt.InvI, adt.InvJ) || cc.FCI(adt.InvI, adt.InvJ) {
			b.Fatal("spec C: want RBCI without FCI")
		}
		if !cd.FCI(adt.InvI, adt.InvJ) || cd.RBCI(adt.InvI, adt.InvJ) {
			b.Fatal("spec D: want FCI without RBCI")
		}
	}
}

// BenchmarkIncomparability computes the conflict-mass trade-off curve and
// checks its shape (E10): incomparable relations, crossover at 50/50.
func BenchmarkIncomparability(b *testing.B) {
	ba := adt.DefaultBankAccount()
	mixes := [][2]int{{0, 100}, {20, 80}, {50, 50}, {80, 20}, {100, 0}}
	for i := 0; i < b.N; i++ {
		rows := sim.ConflictMassTable(
			[]commute.Relation{ba.NRBC(), ba.NFC()}, mixes, 1<<20)
		if !(rows[0].Masses[0] < rows[0].Masses[1] && rows[3].Masses[0] > rows[3].Masses[1]) {
			b.Fatal("incomparability crossover lost")
		}
	}
}

func reportRun(b *testing.B, r sim.Result) {
	b.ReportMetric(float64(r.Blocked), "blocked/run")
	b.ReportMetric(r.BlockedPct(), "blocked%")
	b.ReportMetric(float64(r.Deadlocks), "deadlocks/run")
	b.ReportMetric(r.Throughput(), "txn/s")
}

// BenchmarkTradeoffBanking runs the banking engine under both optimal
// pairings on the three canonical mixes (E11b).
func BenchmarkTradeoffBanking(b *testing.B) {
	mixes := []struct {
		name     string
		dep, wdr int
	}{
		{"withdrawHeavy", 0, 100},
		{"balanced", 50, 50},
		{"depositHeavy", 90, 10},
	}
	for _, mix := range mixes {
		for _, s := range []sim.Scheduler{sim.UIPNRBC, sim.DUNFC, sim.UIPRW} {
			b.Run(mix.name+"/"+s.String(), func(b *testing.B) {
				cfg := sim.BankingConfig{
					Accounts: 2, Workers: 8, TxnsPerWorker: 50, OpsPerTxn: 4,
					DepositPct: mix.dep, WithdrawPct: mix.wdr,
					InitialBalance: 1 << 20, ThinkIters: 1000, Seed: 7,
				}
				var last sim.Result
				for i := 0; i < b.N; i++ {
					last, _ = sim.RunBanking(s, cfg)
				}
				reportRun(b, last)
			})
		}
	}
}

// BenchmarkTradeoffResourcePool runs the allocation workload (E12).
func BenchmarkTradeoffResourcePool(b *testing.B) {
	for _, s := range []sim.Scheduler{sim.UIPNRBC, sim.DUNFC} {
		b.Run(s.String(), func(b *testing.B) {
			cfg := sim.DefaultPoolConfig()
			cfg.TxnsPerWorker = 50
			var last sim.Result
			for i := 0; i < b.N; i++ {
				last, _ = sim.RunPool(s, cfg)
			}
			reportRun(b, last)
		})
	}
}

// BenchmarkRecoveryCosts measures the asymmetric recovery work profile
// (E13): undo-log pays on abort, intentions pays on commit.
func BenchmarkRecoveryCosts(b *testing.B) {
	for _, s := range []sim.Scheduler{sim.UIPNRBC, sim.DUNFC} {
		b.Run(s.String(), func(b *testing.B) {
			cfg := sim.DefaultRecoveryCostConfig()
			cfg.TxnsPerWorker = 80
			var last sim.RecoveryCostResult
			for i := 0; i < b.N; i++ {
				last = sim.RunRecoveryCost(s, cfg)
			}
			b.ReportMetric(float64(last.Undos), "undos/run")
			b.ReportMetric(float64(last.CommitApplies), "cmtApply/run")
			b.ReportMetric(float64(last.Replays), "replays/run")
			b.ReportMetric(float64(last.WALRecords), "walRecs/run")
		})
	}
}

// BenchmarkAblationSymmetricClosure quantifies the extra conflict mass of
// forcing NRBC symmetric (the paper's Section 6.3 remark).
func BenchmarkAblationSymmetricClosure(b *testing.B) {
	ba := adt.DefaultBankAccount()
	dist := sim.BankingOpDist(50, 50, 1<<20)
	for i := 0; i < b.N; i++ {
		plain := sim.ConflictMass(ba.NRBC(), dist)
		sym := sim.ConflictMass(commute.SymmetricClosure(ba.NRBC()), dist)
		if sym <= plain {
			b.Fatal("symmetric closure must add conflict mass on a mixed workload")
		}
		if i == 0 {
			b.ReportMetric(plain, "massNRBC")
			b.ReportMetric(sym, "massSym")
		}
	}
}

// BenchmarkAblationInvocationVsResult quantifies the conflict-mass cost of
// invocation-based locking (locks ignoring results, Section 8.2).
func BenchmarkAblationInvocationVsResult(b *testing.B) {
	ba := adt.DefaultBankAccount()
	dist := sim.BankingOpDist(50, 50, 1<<20)
	c := ba.Checker()
	lifted := commute.LiftInvocationRelation(
		commute.MaterializeInvocations(c.NFCIRelation(), spec.Invocations(c.Spec())))
	for i := 0; i < b.N; i++ {
		result := sim.ConflictMass(ba.NFC(), dist)
		inv := sim.ConflictMass(lifted, dist)
		if inv <= result {
			b.Fatal("invocation-based locking must add conflict mass")
		}
		if i == 0 {
			b.ReportMetric(result, "massNFC")
			b.ReportMetric(inv, "massNFCI")
		}
	}
}

// BenchmarkEngineShardScaling sweeps shard count × GOMAXPROCS over the
// wide-object contention workload (E14). shards=1 reproduces the seed's
// single-mutex registry, so the ops/s ratio between the shards=1 column
// and the wider columns at each GOMAXPROCS level is the regenerable
// scaling-curve artifact of the sharded-engine refactor.
func BenchmarkEngineShardScaling(b *testing.B) {
	for _, procs := range []int{1, 2, 4, 8} {
		for _, shards := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("procs%d/shards%d", procs, shards), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(prev)
				cfg := sim.DefaultScalingConfig()
				cfg.TxnsPerWorker = 100
				cfg.Shards = shards
				var last sim.ScalingPoint
				for i := 0; i < b.N; i++ {
					last, _ = sim.RunScaling(sim.UIPNRBC, cfg)
				}
				b.ReportMetric(last.OpsPerSec, "ops/s")
				b.ReportMetric(last.TxnPerSec, "txn/s")
				b.ReportMetric(float64(last.Blocked), "blocked/run")
				if last.WALBatches > 0 {
					b.ReportMetric(float64(last.WALRecords)/float64(last.WALBatches), "recs/walBatch")
				}
			})
		}
	}
}

// BenchmarkGroupCommitBatch isolates the WAL: the mean group-commit batch
// size under concurrent committers, versus the one-record-per-append
// discipline of the seed log.
func BenchmarkGroupCommitBatch(b *testing.B) {
	cfg := sim.DefaultScalingConfig()
	cfg.TxnsPerWorker = 100
	cfg.Shards = 8
	var last sim.ScalingPoint
	for i := 0; i < b.N; i++ {
		last, _ = sim.RunScaling(sim.UIPNRBC, cfg)
	}
	if last.WALBatches > 0 {
		b.ReportMetric(float64(last.WALRecords)/float64(last.WALBatches), "recs/batch")
	}
	b.ReportMetric(float64(last.WALRecords), "walRecs/run")
}

// BenchmarkAblationDeadlock measures deadlock incidence versus contention
// (accounts in the hot set) under the waits-for detector.
func BenchmarkAblationDeadlock(b *testing.B) {
	for _, accounts := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "acct1", 2: "acct2", 4: "acct4"}[accounts], func(b *testing.B) {
			cfg := sim.BankingConfig{
				Accounts: accounts, Workers: 8, TxnsPerWorker: 50, OpsPerTxn: 4,
				DepositPct: 30, WithdrawPct: 50,
				InitialBalance: 1 << 20, ThinkIters: 1000, Seed: 23,
			}
			var last sim.Result
			for i := 0; i < b.N; i++ {
				last, _ = sim.RunBanking(sim.DUNFC, cfg)
			}
			reportRun(b, last)
		})
	}
}
