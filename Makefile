# Build, test, and lint entry points. `make lint` is golangci-free by
# design: gofmt, go vet, and the repo's own invariant linter (cmd/cclint)
# are the whole gate — CI's lint job runs exactly these three steps.

GO ?= go

.PHONY: all build test race lint fmt vet cclint cclint-vet obs-snapshot

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint: fmt vet cclint

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# The invariant linter, standalone. Exit 2 (mapped by `go run` to 1) on
# any unsuppressed finding; the summary lists every //lint:ignore and its
# justification.
cclint:
	$(GO) run ./cmd/cclint ./...

# The same analyzers driven through go vet's unitchecker protocol —
# proves the -vettool integration stays alive.
cclint-vet:
	@mkdir -p bin
	$(GO) build -o bin/cclint ./cmd/cclint
	$(GO) vet -vettool=$(CURDIR)/bin/cclint ./...

# E21 introspection artifacts: the Chrome trace-event JSON (loadable in
# chrome://tracing or Perfetto) and the unified engine snapshot.
obs-snapshot:
	@mkdir -p bin
	$(GO) run ./cmd/ccbench -experiment obs -quick \
		-trace bin/obs-trace.json -obs-snapshot bin/obs-snapshot.json
