// Package repro is a full reproduction of William E. Weihl's "The Impact of
// Recovery on Concurrency Control" (PODS 1989; JCSS 47, 157–184, 1993) as a
// production-quality Go library.
//
// The library implements the paper's event-based transaction model, serial
// specifications as prefix-closed operation-sequence languages, exact
// decision procedures for the looks-like and equieffectiveness preorders and
// the forward/right-backward commutativity relations, the abstract atomic
// object I(X, Spec, View, Conflict) with the update-in-place (UIP) and
// deferred-update (DU) recovery abstractions, dynamic-atomicity checkers,
// and — on the systems side — an executable transaction engine with
// conflict-relation-driven strict operation locking, an undo-log (WAL)
// recovery manager realizing UIP, and an intentions-list recovery manager
// realizing DU.
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper; see DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package repro
