// Package repro is a full reproduction of William E. Weihl's "The Impact of
// Recovery on Concurrency Control" (PODS 1989; JCSS 47, 157–184, 1993) as a
// production-quality Go library.
//
// The library implements the paper's event-based transaction model, serial
// specifications as prefix-closed operation-sequence languages, exact
// decision procedures for the looks-like and equieffectiveness preorders and
// the forward/right-backward commutativity relations, the abstract atomic
// object I(X, Spec, View, Conflict) with the update-in-place (UIP) and
// deferred-update (DU) recovery abstractions, dynamic-atomicity checkers,
// and — on the systems side — an executable transaction engine with
// conflict-relation-driven strict operation locking, an undo-log (WAL)
// recovery manager realizing UIP, and an intentions-list recovery manager
// realizing DU.
//
// The engine is built to scale with cores while staying auditable: the
// object registry is striped over a power-of-two shard array, each shard
// publishing its object map through an atomic copy-on-write snapshot
// (stripe.CowMap) — object lookup is a hash plus one atomic load, with
// zero lock acquisitions on the hit path (proven by a counter, not by
// timing: Metrics.RegistryLockAcqs stays exactly zero), while
// registration copies the map under a writer-only mutex. Each shard
// records events into its own buffer stamped from one global atomic
// sequence, and Engine.History() merges the buffers back into the single
// totally ordered history the checkers replay. The write-ahead log is
// group-committed with an optional dedicated flusher: updates stage into
// per-transaction-stripe buffers, sequencing drains every stripe under a
// consistent cut and assigns contiguous LSN ranges per batch, and in
// asynchronous mode commits are barrier-acknowledged only after the batch
// reaches a pluggable durability backend — in-memory, fsync-simulating, or
// a real append-only file that recovery.Restart replays after a crash.
//
// Crash restart is transaction-atomic: Txn.Commit stages a single
// transaction-level commit record (wal.TxnCommitRec) after per-object
// commit processing and before releasing locks, and recovery.Restart runs
// a two-pass presumed-abort protocol — transactions without a durable
// TxnCommitRec are losers at every object, however many per-object commit
// records survived. The crash-injection suites in internal/recovery prove,
// at every flush boundary, that exactly the transaction-granularity
// winners survive and that multi-object transfers are never recovered by
// halves. See internal/txn, internal/history, internal/wal, and
// internal/recovery.
//
// Lock release is commit-LSN ordered (txn.Options.ReleasePolicy): either
// locks are held across the durability barrier (ReleaseAfterAck), or —
// the default — they release early and every managed object publishes its
// last committed writer's WAL stage ticket, so a dependent's own barrier
// waits until the durable watermark covers its read-from set
// (ReleaseEarlyTracked) and a dead backend cascades termination through
// the abort path instead of acknowledging commits the log will never
// contain. Either way, no acknowledged commit ever reads from an unsynced
// loser.
//
// Txn.Commit's phase-2 sweep is itself sharded
// (txn.Options.CommitPipeline, default PipelineSharded): participants are
// grouped per registry shard, each shard's per-object commit records are
// staged through one WAL stripe acquisition (wal.Log.AppendBatchAsync —
// sound outside the checkpoint gate because restart decides by the
// transaction-level winner set, never by per-object commit records
// alone), the gate is held only for the discharge-to-TxnCommitRec
// decision window, and locks release shard-by-shard in commit-LSN order:
// each shard admits its committers strictly by their TxnCommitRec stage
// tickets (the stamp order the WAL's LSNs refine), so a later commit
// never exposes its writes in a shard before an earlier one does.
// PipelineSequential keeps the legacy per-object sweep as the measured
// "before" arm, and E20 counts the difference in lock acquisitions —
// machine-independent — rather than wall clock.
//
// Restart cost is bounded by fuzzy checkpointing (internal/checkpoint,
// txn.Engine.Checkpoint): a checkpointer walks the striped registry shard
// by shard without stopping the world, capturing each undo-log object's
// state and in-flight transaction table under its latch and stamping the
// capture with a wal.CheckpointRec marker whose LSN splits that object's
// records into captured-versus-replayable; the snapshot is saved (write-
// temp-then-rename, torn checkpoints ignored on reopen) only after the
// durable watermark covers its last marker, and the log is then truncated
// before the checkpoint frontier (wal.TruncateBefore, clamped to the
// watermark). recovery.RestartAllWithCheckpoint seeds object state from
// the newest snapshot and replays only the bounded suffix — the
// restart-time-versus-log-length trade-off E17 measures, proven correct by
// crash injection at every boundary including mid-checkpoint crashes.
//
// The durable log itself is segmented (wal.SegmentedBackend, the default
// through txn.NewDurableEngine): records append to a size-bounded active
// segment file, rotation seals whole segments (a flush batch never spans
// one, so only the final segment can be torn by a crash — a torn earlier
// segment is corruption), and truncation unlinks dead segments below the
// frontier instead of rewriting the survivor — wal.TruncateStats proves
// zero bytes rewritten, with a retention policy holding back the newest
// dead segments. Restart exploits the same structure in parallel
// (recovery.RestartAllWithConfig): the winner scan fans out one goroutine
// per segment and pass 2 hashes objects over a worker pool, with the
// recovered state, winner set, appended records, and stats bit-identical
// at every parallelism — E18 measures the truncation bill and the replay
// distribution across backend × segment size × parallelism.
//
// Two logging disciplines share those seams (txn.Options.LogDiscipline).
// The default is undo logging — UIP's recovery half, everything above.
// wal.DisciplineRedo selects REDO-only dependency logging, the DU-shaped
// bargain over the same update-in-place execution: the durable log
// carries logical operation records with no undo payload (wal.RedoRec)
// plus each winner's commit-order dependency set on its TxnCommitRec,
// aborts log nothing, and restart (recovery.RestartRedoOnly, dispatched
// automatically by RestartAllWithConfig from the log's own discipline
// marker) replays only the winners-only projection forward — no undo
// pass, nothing appended, sound by Theorem 9's equieffectiveness under
// an NRBC-containing conflict relation. A log's first record brands its
// discipline (re-branded past every checkpoint frontier so truncation
// cannot erase it), and every seam — registration, restart, the
// record-kind audit, checkpoint agreement — rejects a mixed-discipline
// handoff loudly. E19 measures the trade: fewer log bytes per commit and
// winners-only replay, paid for with dependency sets on commit records.
//
// # Observability
//
// The engine self-reports through internal/obs, a leaf package wired in
// by txn.Options.Obs: lock-free sharded power-of-two-bucket histograms
// over every commit phase (lock wait, WAL staging, barrier wait with the
// dependency-stall subset, commit-protocol lock hold, end-to-end latency,
// flusher batch size/dwell/sync, checkpoint capture/save), sampled
// transaction-lifecycle tracing (deterministic splitmix64 sampling by
// transaction sequence number, exported as Chrome trace-event JSON
// loadable in chrome://tracing or Perfetto), and a unified introspection
// snapshot (txn.Engine.ObsSnapshot) folding engine counters, the WAL's
// single-sequence-point accounting (wal.Log.Stats), checkpoint progress,
// phase histograms, trace statistics, and — when a restart ran — the
// recovery.RestartStats into one JSON document. Every hook is
// nil-receiver-safe and the disabled path allocates nothing (E21 proves 0
// allocs/op by testing.AllocsPerRun and byte-identical workload results
// with sampling on), and obs itself never reads the wall clock or
// math/rand — callers pass duration deltas, so the package sits inside
// detreplay's determinism scope.
//
// # Static invariants
//
// The disciplines above are conventions the compiler cannot check: a
// swallowed WAL error converts "durable" into "probably durable", a
// latch leaked on one error path wedges its object forever, a store
// mutation that precedes its record's staging leaves a crash window the
// log cannot explain, a wall-clock read or map-order iteration in
// restart breaks the bit-identical parallel-replay proof, and one plain
// access to an atomically-published field silently breaks its
// release/acquire protocol. internal/analysis promotes all five to
// machine-checked rules — a dependency-free go/analysis-style framework
// with analyzers walerr, locksafe, stagebeforemutate, detreplay, and
// atomicfield — driven by cmd/cclint both standalone (`go run
// ./cmd/cclint ./...`) and through `go vet -vettool`. Every finding must
// be fixed or silenced by a `//lint:ignore <analyzer> <justification>`
// comment; cclint counts the suppressions and reprints each
// justification in its summary, so silence stays auditable, and CI's
// lint job fails on any unsuppressed diagnostic.
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper plus the engine scaling sweep (shards × zipf skew × operation
// mix, including read-mostly and pinned-open long-read variants), the
// group-commit flush sweep (flusher dwell × sync latency), the
// lock-release-policy sweep (policy × sync latency × contention skew),
// the checkpointed-restart sweep (restart cost × log length), the
// segmented-restart sweep (backend × segment size × restart
// parallelism), the logging-discipline sweep (undo vs REDO-only ×
// backend), the commit-pipeline sweep (sharded/CoW vs
// sequential/locked, by lock-acquisition counts), and the observability
// sweep (disabled-path allocations, byte-identical sampled replay, trace
// and histogram coverage); `ccbench -experiment
// scaling,flush,release,checkpoint,restart,redo,pipeline,obs -json`
// writes them to BENCH_engine.json, and `-trace`/`-obs-snapshot` export
// the Chrome trace and the unified snapshot. See EXPERIMENTS.md for the
// methodology and the 1-vCPU measurement caveats.
package repro
