package analysis

import (
	"go/ast"
	"go/types"
)

// CalleeFunc resolves a call to the *types.Func it invokes (method or
// function), or nil for calls through function values, conversions and
// builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// ReceiverNamed returns the named type of a method's receiver, looking
// through pointers; nil for non-methods.
func ReceiverNamed(f *types.Func) *types.Named {
	if f == nil {
		return nil
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// IsMethodOf reports whether the call invokes a method on a type with
// the given name declared in a package with the given name. Matching by
// package *name* (not full path) keeps the analyzers honest over both
// the real engine packages and the analysistest fixture stubs.
func IsMethodOf(info *types.Info, call *ast.CallExpr, pkgName, typeName string) bool {
	f := CalleeFunc(info, call)
	n := ReceiverNamed(f)
	if n == nil || n.Obj().Name() != typeName {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && pkg.Name() == pkgName
}

// LastResultIsError reports whether the callee's final result is error.
func LastResultIsError(info *types.Info, call *ast.CallExpr) bool {
	f := CalleeFunc(info, call)
	if f == nil {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// IsPkgFunc reports whether the call invokes the named package-level
// function (e.g. time.Now) from a package with the given name.
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgName string, funcNames ...string) bool {
	f := CalleeFunc(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Name() != pkgName {
		return false
	}
	if ReceiverNamed(f) != nil {
		return false
	}
	if len(funcNames) == 0 {
		return true
	}
	for _, n := range funcNames {
		if f.Name() == n {
			return true
		}
	}
	return false
}

// FuncDecls yields every function declaration with a body in the files.
func FuncDecls(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// RecvTypeName returns the name of fd's receiver base type ("" for plain
// functions).
func RecvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		if id, ok := t.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}
