package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// Scope maps analyzer name to the import-path substrings it applies to.
// An analyzer with no entry applies everywhere. Scoping is the driver's
// job, not the analyzers': fixtures exercise analyzers directly, and the
// scope table lives with the cclint configuration.
type Scope map[string][]string

// Allows reports whether the analyzer runs over the package.
func (s Scope) Allows(analyzer, pkgPath string) bool {
	subs, ok := s[analyzer]
	if !ok || len(subs) == 0 {
		return true
	}
	for _, sub := range subs {
		if strings.Contains(pkgPath, sub) {
			return true
		}
	}
	return false
}

// Result is one cclint run: unsuppressed findings (failures) and
// suppressed ones (reported in the summary with their justifications).
type Result struct {
	Findings   []Diagnostic
	Suppressed []Diagnostic
}

// RunRoot loads the packages matched by patterns under dir and applies
// every in-scope analyzer, folding //lint:ignore suppressions.
func RunRoot(dir string, patterns []string, analyzers []*Analyzer, scopes Scope) (*Result, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	for _, pkg := range pkgs {
		var active []*Analyzer
		for _, a := range analyzers {
			if scopes.Allows(a.Name, pkg.Path) {
				active = append(active, a)
			}
		}
		if len(active) == 0 {
			continue
		}
		diags, err := RunAnalyzers(pkg, active)
		if err != nil {
			return nil, err
		}
		diags = ApplySuppressions(pkg, diags)
		for _, d := range diags {
			if d.Suppressed {
				res.Suppressed = append(res.Suppressed, d)
			} else {
				res.Findings = append(res.Findings, d)
			}
		}
	}
	return res, nil
}

// Summary renders the per-analyzer finding and suppression counts plus
// each suppression's justification — the artifact the CI lint job
// uploads, so silenced invariants stay visible.
func (r *Result) Summary() string {
	var b strings.Builder
	counts := map[string][2]int{}
	for _, d := range r.Findings {
		c := counts[d.Analyzer]
		c[0]++
		counts[d.Analyzer] = c
	}
	for _, d := range r.Suppressed {
		c := counts[d.Analyzer]
		c[1]++
		counts[d.Analyzer] = c
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "cclint: %d finding(s), %d suppression(s)\n",
		len(r.Findings), len(r.Suppressed))
	for _, n := range names {
		fmt.Fprintf(&b, "  %-18s findings=%d suppressed=%d\n", n, counts[n][0], counts[n][1])
	}
	if len(r.Suppressed) > 0 {
		b.WriteString("suppressions:\n")
		for _, d := range r.Suppressed {
			fmt.Fprintf(&b, "  %s: %s: %s — justified: %s\n",
				d.Pos, d.Analyzer, d.Message, d.Justification)
		}
	}
	return b.String()
}
