// Package a holds detreplay's failing fixtures: wall-clock reads,
// randomness, and map-iteration order leaking into output.
package a

import (
	"math/rand"
	"time"
)

// stampNow would make two restarts of one log disagree on the stamp.
func stampNow() int64 {
	return time.Now().UnixNano() // want `time\.Now in replay/verification code: restart must be a function of the log alone`
}

// elapsed uses the wall clock inside verification.
func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since in replay/verification code`
}

// pickWinner chooses nondeterministically.
func pickWinner(n int) int {
	return rand.Intn(n) // want `rand\.Intn in replay/verification code: restart must be deterministic`
}

// shuffled uses a rand.Rand method, not just a package function.
func shuffled(r *rand.Rand, ids []uint64) {
	r.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] }) // want `rand\.Shuffle in replay/verification code`
}

// loserIDs appends under map order and never sorts: map order leaks
// straight into the replay output.
func loserIDs(m map[uint64]bool) []uint64 {
	var ids []uint64
	for id := range m {
		ids = append(ids, id) // want `append to ids under map-iteration order without a later sort`
	}
	return ids
}
