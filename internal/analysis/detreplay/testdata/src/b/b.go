// Package b holds detreplay's passing fixtures: the collect-then-sort
// discipline and map-to-map folds with no output order to leak.
package b

import "sort"

// losers is restart's loser-sweep discipline: collect under map order,
// then sort before anything observes the slice.
func losers(m map[uint64]bool) []uint64 {
	var ids []uint64
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// winners sorts through a named helper, recognized by name.
func winners(m map[uint64]bool) []uint64 {
	var ids []uint64
	for id := range m {
		ids = append(ids, id)
	}
	sortTxnIDs(ids)
	return ids
}

func sortTxnIDs(ids []uint64) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// invert folds a map into a map: no ordered output to contaminate.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// sumValues reduces a map commutatively: order cannot show.
func sumValues(m map[uint64]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
