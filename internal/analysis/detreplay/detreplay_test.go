package detreplay_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detreplay"
)

func TestDetReplay(t *testing.T) {
	analysistest.Run(t, "testdata", detreplay.Analyzer, "a", "b")
}
