// Package detreplay keeps restart and history verification
// deterministic.
//
// PR 6's parallel restart is proven by a bit-identical equivalence test:
// the same crash-torn log must recover to the same state, winner set and
// appended records at every parallelism. That proof only means something
// if the restart path computes from the log alone — a time.Now feeding
// replayed state, a math/rand choice, or a map-order iteration leaking
// into an output slice would make two restarts of one log disagree.
// detreplay flags, in the packages it is pointed at (internal/recovery
// and internal/history):
//
//   - calls into math/rand (any function);
//   - calls to time.Now / time.Since (wall-clock-only uses, such as the
//     RestartStats timing fields, carry a //lint:ignore detreplay
//     justification — the point is that each one is a visible decision);
//   - range-over-map loops that append to a slice which is not
//     subsequently passed to a sort call in the same function (the
//     map-order-into-output shape; map-to-map folds stay silent).
package detreplay

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the detreplay pass.
var Analyzer = &analysis.Analyzer{
	Name: "detreplay",
	Doc: "restart and history merge/verification code must be deterministic: " +
		"no time.Now/math/rand, and no map-iteration order feeding output " +
		"without a sort",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, fd := range analysis.FuncDecls(pass.Files) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if analysis.IsPkgFunc(pass.TypesInfo, call, "time", "Now", "Since") {
				f := analysis.CalleeFunc(pass.TypesInfo, call)
				pass.Reportf(call.Pos(),
					"time.%s in replay/verification code: restart must be a function of the log alone",
					f.Name())
			}
			if f := analysis.CalleeFunc(pass.TypesInfo, call); f != nil &&
				f.Pkg() != nil && strings.HasPrefix(f.Pkg().Path(), "math/rand") {
				pass.Reportf(call.Pos(),
					"rand.%s in replay/verification code: restart must be deterministic",
					f.Name())
			}
			return true
		})
		checkMapOrder(pass, fd.Body)
	}
	return nil
}

// checkMapOrder flags `for k := range m` (m a map) whose body appends to
// a slice variable that no later statement in the function passes to a
// sort call. Appending under map order and sorting afterwards is the
// discipline the engine uses (restart's loser sweep collects then
// sortTxnIDs); appending without the sort is the bug.
func checkMapOrder(pass *analysis.Pass, body *ast.BlockStmt) {
	// Collect, per function, every slice variable that is an argument of
	// a call whose callee name contains "sort" (sort.Slice, sort.Strings,
	// slices.Sort, the engine's sortTxnIDs...).
	sorted := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
			if id, ok := fun.X.(*ast.Ident); ok {
				name = id.Name + "." + name
			}
		}
		if !strings.Contains(strings.ToLower(name), "sort") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil {
					sorted[obj] = true
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		// Inside the loop body: `s = append(s, ...)` where s is never
		// sorted in this function.
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				return true
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
				return true
			}
			lhs, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[lhs]
			if obj == nil {
				obj = pass.TypesInfo.Defs[lhs]
			}
			if obj == nil || sorted[obj] {
				return true
			}
			pass.Reportf(as.Pos(),
				"append to %s under map-iteration order without a later sort: "+
					"map order would leak into replay/verification output", lhs.Name)
			return true
		})
		return true
	})
}
