// Package locksafe checks that every latch/mutex acquire is paired with
// a release reachable on all return paths.
//
// The engine's latches (managedObject.mu, shard mu, the checkpoint gate)
// serialize the op path; a single error-exit that forgets its Unlock
// wedges the object forever — the exact bug PR 3 fixed by hand when
// Commit/Abort leaked locks on their error exits. locksafe walks each
// function with an abstract lock-set: acquires (.Lock/.RLock) add the
// receiver expression to the held set, releases (.Unlock/.RUnlock) and
// defers of releases — including defers of local closures whose bodies
// release, the engine's `ungate` pattern — remove or cover it, and every
// return (and the implicit final return) must leave nothing held and
// uncovered.
//
// The interpretation is deliberately conservative rather than complete:
// functions containing goto, labels, fallthrough or TryLock are skipped
// (none occur on the engine's latch paths), branch merges take the union
// of held sets, and a loop body must leave the lock state exactly as it
// found it. Intentional exceptions carry a //lint:ignore locksafe
// justification.
package locksafe

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
)

// Analyzer is the locksafe pass.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc: "every latch/mutex acquire must be released on all return paths " +
		"(defer or per-branch); a leaked latch wedges the object forever",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, fd := range analysis.FuncDecls(pass.Files) {
		checkFunc(pass, fd.Body)
		// Function literals that acquire locks are checked as functions in
		// their own right (worker-goroutine bodies); literals that only
		// release are helpers like the engine's ungate closure and are
		// accounted for at their call sites instead.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				if eff := closureEffect(fl); len(eff.acquires) > 0 {
					checkFunc(pass, fl.Body)
				}
				return false
			}
			return true
		})
	}
	return nil
}

// lockKey identifies a lock by its receiver expression text plus the
// read/write mode, e.g. "mo.mu" or "e.ckptGate/R".
type lockKey string

func keyOf(recv ast.Expr, read bool) lockKey {
	k := types.ExprString(recv)
	if read {
		k += "/R"
	}
	return lockKey(k)
}

// lockState is the abstract state at a program point.
type lockState struct {
	held     map[lockKey]token.Pos // acquire position
	deferred map[lockKey]bool      // covered by a registered defer
}

func newState() *lockState {
	return &lockState{held: map[lockKey]token.Pos{}, deferred: map[lockKey]bool{}}
}

func (s *lockState) clone() *lockState {
	c := newState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k := range s.deferred {
		c.deferred[k] = true
	}
	return c
}

// merge unions two fall-through states: a lock held on either path must
// still be released downstream.
func (s *lockState) merge(o *lockState) {
	for k, v := range o.held {
		if _, ok := s.held[k]; !ok {
			s.held[k] = v
		}
	}
	for k := range o.deferred {
		s.deferred[k] = true
	}
}

func (s *lockState) equalHeld(o *lockState) bool {
	if len(s.held) != len(o.held) {
		return false
	}
	for k := range s.held {
		if _, ok := o.held[k]; !ok {
			return false
		}
	}
	return true
}

// effect is the net lock footprint of a closure body, used both for
// defer-of-closure releases and for applying direct closure calls.
type effect struct {
	acquires map[lockKey]token.Pos
	releases map[lockKey]bool
}

// closureEffect scans a function literal (without interpreting its
// control flow) for the locks it mentions.
func closureEffect(fl *ast.FuncLit) effect {
	eff := effect{acquires: map[lockKey]token.Pos{}, releases: map[lockKey]bool{}}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != fl {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if k, acquire, ok := classify(call); ok {
				if acquire {
					eff.acquires[k] = call.Pos()
				} else {
					eff.releases[k] = true
				}
			}
		}
		return true
	})
	return eff
}

// classify recognizes x.Lock()/x.RLock() (acquire) and
// x.Unlock()/x.RUnlock() (release) calls.
func classify(call *ast.CallExpr) (k lockKey, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock":
		return keyOf(sel.X, false), true, true
	case "RLock":
		return keyOf(sel.X, true), true, true
	case "Unlock":
		return keyOf(sel.X, false), false, true
	case "RUnlock":
		return keyOf(sel.X, true), false, true
	}
	return "", false, false
}

// checker interprets one function body.
type checker struct {
	pass     *analysis.Pass
	closures map[string]effect // local name -> closure effect
	bail     bool
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	c := &checker{pass: pass, closures: map[string]effect{}}
	// Conservative bail-outs: control flow the interpreter does not model.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.LabeledStmt, *ast.BranchStmt:
			if br, ok := n.(*ast.BranchStmt); ok && br.Label == nil &&
				(br.Tok == token.BREAK || br.Tok == token.CONTINUE) {
				return true
			}
			c.bail = true
		case *ast.SelectorExpr:
			if n.Sel.Name == "TryLock" || n.Sel.Name == "TryRLock" {
				c.bail = true
			}
		}
		return true
	})
	if c.bail {
		return
	}
	// Pre-scan closure bindings so `defer ungate()` and `ungate()` calls
	// resolve to the locks the closure releases.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if fl, ok := rhs.(*ast.FuncLit); ok && i < len(n.Lhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						c.closures[id.Name] = closureEffect(fl)
					}
				}
			}
		}
		return true
	})
	st := newState()
	st, terminated := c.stmts(body.List, st, nil)
	if !terminated {
		c.checkExit(st, body.End(), "function exit")
	}
}

// loopCtx carries a loop's entry state so break/continue can be checked.
type loopCtx struct {
	entry  *lockState
	breaks []*lockState
}

// stmts interprets a statement list, returning the fall-through state and
// whether every path terminated (returned/panicked/broke out).
func (c *checker) stmts(list []ast.Stmt, st *lockState, loop *loopCtx) (*lockState, bool) {
	for _, s := range list {
		var terminated bool
		st, terminated = c.stmt(s, st, loop)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (c *checker) stmt(s ast.Stmt, st *lockState, loop *loopCtx) (*lockState, bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return c.stmts(s.List, st, loop)

	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			return st, c.call(call, st)
		}
		return st, false

	case *ast.DeferStmt:
		c.deferCall(s.Call, st)
		return st, false

	case *ast.GoStmt:
		return st, false // separate goroutine: its locks are its own

	case *ast.ReturnStmt:
		c.checkExit(st, s.Pos(), "return")
		return st, true

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if loop != nil {
				loop.breaks = append(loop.breaks, st.clone())
			}
			return st, true
		case token.CONTINUE:
			if loop != nil && !st.equalHeld(loop.entry) {
				c.pass.Reportf(s.Pos(),
					"lock state changes across loop iterations at continue: %s",
					c.heldDiff(st, loop.entry))
			}
			return st, true
		}
		return st, true

	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = c.stmt(s.Init, st, loop)
		}
		thenSt, thenTerm := c.stmts(s.Body.List, st.clone(), loop)
		var elseSt *lockState
		elseTerm := false
		if s.Else != nil {
			elseSt, elseTerm = c.stmt(s.Else, st.clone(), loop)
		} else {
			elseSt = st.clone()
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			thenSt.merge(elseSt)
			return thenSt, false
		}

	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = c.stmt(s.Init, st, loop)
		}
		inner := &loopCtx{entry: st.clone()}
		bodySt, bodyTerm := c.stmts(s.Body.List, st.clone(), inner)
		if !bodyTerm && !bodySt.equalHeld(inner.entry) {
			c.pass.Reportf(s.Pos(),
				"lock state changes across loop iterations: %s",
				c.heldDiff(bodySt, inner.entry))
		}
		out := st.clone()
		for _, b := range inner.breaks {
			out.merge(b)
		}
		// An infinite loop with no breaks never falls through.
		if s.Cond == nil && len(inner.breaks) == 0 {
			return out, true
		}
		return out, false

	case *ast.RangeStmt:
		inner := &loopCtx{entry: st.clone()}
		bodySt, bodyTerm := c.stmts(s.Body.List, st.clone(), inner)
		if !bodyTerm && !bodySt.equalHeld(inner.entry) {
			c.pass.Reportf(s.Pos(),
				"lock state changes across loop iterations: %s",
				c.heldDiff(bodySt, inner.entry))
		}
		out := st.clone()
		for _, b := range inner.breaks {
			out.merge(b)
		}
		return out, false

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.cases(s, st, loop)

	case *ast.AssignStmt:
		// `v, err := l.AppendAsync(r)` has no lock effect, but an acquire
		// buried in an assignment RHS would; classify any direct calls.
		for _, rhs := range s.Rhs {
			if call, ok := rhs.(*ast.CallExpr); ok {
				c.call(call, st)
			}
		}
		return st, false

	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, st, loop)

	default:
		return st, false
	}
}

// cases interprets switch/type-switch/select clause bodies from a common
// entry state and merges the survivors.
func (c *checker) cases(s ast.Stmt, st *lockState, loop *loopCtx) (*lockState, bool) {
	var bodies [][]ast.Stmt
	hasDefault := false
	collect := func(body *ast.BlockStmt) {
		for _, cl := range body.List {
			switch cl := cl.(type) {
			case *ast.CaseClause:
				bodies = append(bodies, cl.Body)
				if cl.List == nil {
					hasDefault = true
				}
			case *ast.CommClause:
				bodies = append(bodies, cl.Body)
			}
		}
	}
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = c.stmt(s.Init, st, loop)
		}
		collect(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = c.stmt(s.Init, st, loop)
		}
		collect(s.Body)
	case *ast.SelectStmt:
		hasDefault = true // a select blocks; every live path is a clause
		collect(s.Body)
	}
	var out *lockState
	allTerm := len(bodies) > 0
	for _, b := range bodies {
		bs, term := c.stmts(b, st.clone(), loop)
		if !term {
			allTerm = false
			if out == nil {
				out = bs
			} else {
				out.merge(bs)
			}
		}
	}
	if !hasDefault || out == nil {
		if out == nil {
			out = st.clone()
		} else {
			out.merge(st)
		}
		allTerm = false
	}
	return out, allTerm
}

// call applies one call expression's lock effect; reports true if the
// call terminates the path (panic).
func (c *checker) call(call *ast.CallExpr, st *lockState) bool {
	if k, acquire, ok := classify(call); ok {
		if acquire {
			st.held[k] = call.Pos()
		} else {
			delete(st.held, k)
		}
		return false
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if id.Name == "panic" {
			return true
		}
		if eff, ok := c.closures[id.Name]; ok {
			for k := range eff.releases {
				delete(st.held, k)
			}
			for k, pos := range eff.acquires {
				st.held[k] = pos
			}
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == "os" && sel.Sel.Name == "Exit" {
			return true
		}
	}
	return false
}

// deferCall registers a deferred release: a direct x.Unlock(), a closure
// literal containing releases, or a local closure name bound to one.
func (c *checker) deferCall(call *ast.CallExpr, st *lockState) {
	if k, acquire, ok := classify(call); ok && !acquire {
		st.deferred[k] = true
		return
	}
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		for k := range closureEffect(fl).releases {
			st.deferred[k] = true
		}
		return
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if eff, ok := c.closures[id.Name]; ok {
			for k := range eff.releases {
				st.deferred[k] = true
			}
		}
	}
}

// checkExit reports every lock held and not defer-covered at an exit,
// in sorted order so cclint's own output is deterministic.
func (c *checker) checkExit(st *lockState, pos token.Pos, where string) {
	keys := make([]string, 0, len(st.held))
	for k := range st.held {
		if !st.deferred[k] {
			keys = append(keys, string(k))
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		c.pass.Reportf(pos,
			"lock %s acquired at %s is not released on this %s path",
			k, c.pass.Fset.Position(st.held[lockKey(k)]), where)
	}
}

// heldDiff renders the symmetric difference of two held sets.
func (c *checker) heldDiff(a, b *lockState) string {
	var diff []string
	for k := range a.held {
		if _, ok := b.held[k]; !ok {
			diff = append(diff, string(k)+" newly held")
		}
	}
	for k := range b.held {
		if _, ok := a.held[k]; !ok {
			diff = append(diff, string(k)+" newly released")
		}
	}
	sort.Strings(diff)
	return fmt.Sprint(diff)
}
