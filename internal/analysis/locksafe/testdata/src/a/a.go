// Package a holds locksafe's failing fixtures: latch acquires that some
// exit path fails to release, including PR 3's leak-on-error-return.
package a

import (
	"errors"
	"sync"
)

var errBoom = errors.New("boom")

type obj struct {
	mu   sync.Mutex
	gate sync.RWMutex
}

// leakOnError is PR 3's exact regression shape: Commit/Abort returned on
// their error exits with the object latch still held, wedging the object.
func leakOnError(o *obj, fail bool) error {
	o.mu.Lock()
	if fail {
		return errBoom // want `lock o\.mu acquired at .* is not released on this return path`
	}
	o.mu.Unlock()
	return nil
}

// leakAtExit falls off the end of the function with the latch held.
func leakAtExit(o *obj) {
	o.mu.Lock()
} // want `lock o\.mu acquired at .* is not released on this function exit path`

// rlockLeak leaks in read mode: R-acquires are tracked separately.
func rlockLeak(o *obj, fail bool) error {
	o.gate.RLock()
	if fail {
		return errBoom // want `lock o\.gate/R acquired at .* is not released on this return path`
	}
	o.gate.RUnlock()
	return nil
}

// lockInLoop accumulates a latch per iteration.
func lockInLoop(o *obj, n int) {
	for i := 0; i < n; i++ { // want `lock state changes across loop iterations`
		o.mu.Lock()
	}
}
