// Package b holds locksafe's passing fixtures: every release discipline
// the engine actually uses — defer, per-branch unlocks, the deferred
// ungate closure, and worker-goroutine bodies.
package b

import (
	"errors"
	"sync"
)

var errBoom = errors.New("boom")

type obj struct {
	mu   sync.Mutex
	gate sync.RWMutex
}

func work() error { return nil }

func deferRelease(o *obj) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return work()
}

func perBranch(o *obj, fail bool) error {
	o.mu.Lock()
	if fail {
		o.mu.Unlock()
		return errBoom
	}
	o.mu.Unlock()
	return nil
}

// ungatePattern is the checkpoint gate idiom: a deferred local closure
// releases the latch, idempotently.
func ungatePattern(o *obj) error {
	o.gate.Lock()
	gated := true
	ungate := func() {
		if gated {
			gated = false
			o.gate.Unlock()
		}
	}
	defer ungate()
	return work()
}

// earlyUngate releases through the closure on the fast path and leaves
// the deferred call to cover the slow path.
func earlyUngate(o *obj, fast bool) error {
	o.gate.Lock()
	ungate := func() { o.gate.Unlock() }
	defer ungate()
	if fast {
		ungate()
		return nil
	}
	return work()
}

// worker checks goroutine bodies as functions in their own right.
func worker(o *obj) {
	go func() {
		o.mu.Lock()
		defer o.mu.Unlock()
		work()
	}()
}

// readThenWrite releases the read latch before taking the write latch.
func readThenWrite(o *obj) {
	o.gate.RLock()
	dirty := true
	o.gate.RUnlock()
	if dirty {
		o.gate.Lock()
		o.gate.Unlock()
	}
}
