// Package stagebeforemutate checks Weihl's recoverability ordering: a
// WAL stage call must dominate the store mutation it covers.
//
// In recovery.UndoLog, the update-in-place state (`current`) and the
// per-transaction undo chains (`chain`) may only change after the record
// describing the change has been staged into the log — staging after
// mutating leaves a window where a crash (or a closed log) persists
// state the log cannot explain. In txn.Txn, the transaction-level commit
// record is the durable commit point and must be staged before any lock
// release (`releaseLocks`): releasing first would let a dependent commit
// stage its records ahead of its predecessor's decision.
//
// The analyzer walks each relevant method tracking, per path, whether a
// stage call has happened yet; a covered mutation while unstaged is
// remembered and reported if a stage call later executes on the same
// path. Mutations on paths that never stage (the REDO-only branches,
// the abort sweep) are legitimate and stay silent. Branch merges OR the
// staged flag, so a conditionally-staged prefix does not false-positive.
package stagebeforemutate

import (
	"go/ast"
	"go/token"

	"repro/internal/analysis"
)

// Analyzer is the stagebeforemutate pass.
var Analyzer = &analysis.Analyzer{
	Name: "stagebeforemutate",
	Doc: "in recovery.UndoLog methods and txn commit/abort sweeps, the WAL " +
		"stage call must precede the store mutation (or lock release) it covers",
	Run: run,
}

// coveredFields are the UndoLog fields whose mutation must be preceded
// by a stage call on the same path.
var coveredFields = map[string]bool{"current": true, "chain": true}

func run(pass *analysis.Pass) error {
	for _, fd := range analysis.FuncDecls(pass.Files) {
		recvType := analysis.RecvTypeName(fd)
		recvName := recvIdent(fd)
		if recvName == "" {
			continue
		}
		var mut func(ast.Stmt) (token.Pos, string, bool)
		switch recvType {
		case "UndoLog":
			mut = func(s ast.Stmt) (token.Pos, string, bool) {
				return undoLogMutation(recvName, s)
			}
		case "Txn":
			mut = func(s ast.Stmt) (token.Pos, string, bool) {
				return releaseCall(recvName, s)
			}
		default:
			continue
		}
		w := &walker{pass: pass, mutation: mut}
		w.stmts(fd.Body.List, false, nil)
	}
	return nil
}

func recvIdent(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// pend is a mutation executed before any stage call on its path.
type pend struct {
	pos  token.Pos
	what string
}

type walker struct {
	pass     *analysis.Pass
	mutation func(ast.Stmt) (token.Pos, string, bool)
}

// stmts interprets a statement list. staged reports whether a stage call
// has executed on this path; pending holds unstaged mutations. Returns
// the out-state and whether the path terminated.
func (w *walker) stmts(list []ast.Stmt, staged bool, pending []pend) (bool, []pend, bool) {
	for _, s := range list {
		var term bool
		staged, pending, term = w.stmt(s, staged, pending)
		if term {
			return staged, pending, true
		}
	}
	return staged, pending, false
}

func (w *walker) stmt(s ast.Stmt, staged bool, pending []pend) (bool, []pend, bool) {
	// A stage call anywhere in this statement (expression position
	// included: `if _, err := u.log.AppendAsync(r); ...`) first flushes
	// the pending set, then marks the path staged. The scan is
	// pre-order, so a mutation statement that itself contains the stage
	// call (none exist) would report conservatively.
	if pos, ok := stagePos(w.pass, s); ok {
		for _, p := range pending {
			w.pass.Reportf(p.pos,
				"%s precedes the WAL stage call at %s: records must be staged before state mutates (recoverability)",
				p.what, w.pass.Fset.Position(pos))
		}
		pending = nil
		staged = true
	}
	if pos, what, ok := w.mutation(s); ok && !staged {
		pending = append(pending, pend{pos, what})
	}

	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.stmts(s.List, staged, pending)
	case *ast.ReturnStmt:
		return staged, nil, true
	case *ast.BranchStmt:
		return staged, pending, true
	case *ast.IfStmt:
		tS, tP, tT := w.stmts(s.Body.List, staged, clonePends(pending))
		eS, eP, eT := staged, clonePends(pending), false
		if s.Else != nil {
			eS, eP, eT = w.stmt(s.Else, staged, clonePends(pending))
		}
		switch {
		case tT && eT:
			return staged, nil, true
		case tT:
			return eS, eP, false
		case eT:
			return tS, tP, false
		default:
			return tS || eS, append(tP, eP...), false
		}
	case *ast.ForStmt:
		st, p, _ := w.stmts(s.Body.List, staged, clonePends(pending))
		return st || staged, append(pending, p...), false
	case *ast.RangeStmt:
		st, p, _ := w.stmts(s.Body.List, staged, clonePends(pending))
		return st || staged, append(pending, p...), false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		outS, outP := staged, pending
		ast.Inspect(s, func(n ast.Node) bool {
			switch cl := n.(type) {
			case *ast.CaseClause:
				cs, cp, ct := w.stmts(cl.Body, staged, clonePends(pending))
				if !ct {
					outS = outS || cs
					outP = append(outP, cp...)
				}
				return false
			case *ast.CommClause:
				cs, cp, ct := w.stmts(cl.Body, staged, clonePends(pending))
				if !ct {
					outS = outS || cs
					outP = append(outP, cp...)
				}
				return false
			}
			return true
		})
		return outS, outP, false
	default:
		return staged, pending, false
	}
}

func clonePends(p []pend) []pend {
	return append([]pend(nil), p...)
}

// stagePos finds a wal.Log Append/AppendAsync call directly inside the
// statement (not inside a nested block — those are walked recursively).
func stagePos(pass *analysis.Pass, s ast.Stmt) (token.Pos, bool) {
	var pos token.Pos
	found := false
	switch s := s.(type) {
	case *ast.ExprStmt, *ast.AssignStmt, *ast.ReturnStmt, *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false // a stage inside a closure is not executed here
			}
			if call, ok := n.(*ast.CallExpr); ok && isStage(pass, call) && !found {
				pos, found = call.Pos(), true
			}
			return !found
		})
	case *ast.IfStmt:
		if s.Init != nil {
			return stagePos(pass, s.Init)
		}
	}
	return pos, found
}

func isStage(pass *analysis.Pass, call *ast.CallExpr) bool {
	if !analysis.IsMethodOf(pass.TypesInfo, call, "wal", "Log") {
		return false
	}
	f := analysis.CalleeFunc(pass.TypesInfo, call)
	return f.Name() == "Append" || f.Name() == "AppendAsync" || f.Name() == "AppendBatchAsync"
}

// undoLogMutation recognizes direct statements mutating the receiver's
// covered fields: assignments to u.current / u.chain[...], and
// delete(u.chain, ...).
func undoLogMutation(recv string, s ast.Stmt) (token.Pos, string, bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			if name, ok := coveredTarget(recv, lhs); ok {
				return s.Pos(), "mutation of " + name, true
			}
		}
	case *ast.IncDecStmt:
		if name, ok := coveredTarget(recv, s.X); ok {
			return s.Pos(), "mutation of " + name, true
		}
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" && len(call.Args) > 0 {
				if name, ok := coveredTarget(recv, call.Args[0]); ok {
					return s.Pos(), "delete from " + name, true
				}
			}
		}
	}
	return token.NoPos, "", false
}

// coveredTarget matches recv.current, recv.chain and recv.chain[i].
func coveredTarget(recv string, e ast.Expr) (string, bool) {
	if ix, ok := e.(*ast.IndexExpr); ok {
		e = ix.X
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || !coveredFields[sel.Sel.Name] {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != recv {
		return "", false
	}
	return recv + "." + sel.Sel.Name, true
}

// releaseCall recognizes t.releaseLocks(...) statements in Txn methods:
// a release executed before the commit record is staged would publish
// state whose commit decision the log does not yet carry.
func releaseCall(recv string, s ast.Stmt) (token.Pos, string, bool) {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return token.NoPos, "", false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return token.NoPos, "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "releaseLocks" && sel.Sel.Name != "releaseLocksOrdered") {
		return token.NoPos, "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != recv {
		return token.NoPos, "", false
	}
	return es.Pos(), "lock release " + recv + "." + sel.Sel.Name, true
}
