package stagebeforemutate_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/stagebeforemutate"
)

func TestStageBeforeMutate(t *testing.T) {
	analysistest.Run(t, "testdata", stagebeforemutate.Analyzer, "a", "b")
}
