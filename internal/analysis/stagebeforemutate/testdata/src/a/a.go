// Package a holds stagebeforemutate's failing fixtures: UndoLog state
// mutated, and Txn locks released, before the covering record is staged.
package a

import "wal"

type UndoLog struct {
	log     *wal.Log
	current map[string]int
	chain   map[uint64][]int
}

// writeThenStage mutates update-in-place state before staging the record
// that describes the change: a crash in between persists unexplained state.
func (u *UndoLog) writeThenStage(k string, v int) error {
	u.current[k] = v // want `mutation of u\.current precedes the WAL stage call at .*: records must be staged before state mutates`
	if _, err := u.log.AppendAsync(wal.Record{}); err != nil {
		return err
	}
	return nil
}

// dropChainThenStage discards a transaction's undo chain before the
// completion record is staged.
func (u *UndoLog) dropChainThenStage(tid uint64) {
	delete(u.chain, tid) // want `delete from u\.chain precedes the WAL stage call`
	u.log.Append(wal.Record{})
}

type Txn struct {
	log *wal.Log
}

func (t *Txn) releaseLocks() {}

// commitWrongOrder releases locks before the commit record is staged: a
// dependent transaction could stage its records ahead of this decision.
func (t *Txn) commitWrongOrder() error {
	t.releaseLocks() // want `lock release t\.releaseLocks precedes the WAL stage call`
	_, err := t.log.AppendAsync(wal.Record{})
	return err
}
