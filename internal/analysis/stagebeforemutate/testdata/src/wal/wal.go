// Package wal is a fixture stub mirroring the engine's wal.Log staging
// surface (Append / AppendAsync), matched by package and type name.
package wal

// Record is a stand-in log record.
type Record struct{ Kind int }

// LSN is a log sequence number.
type LSN uint64

// Ticket names an asynchronous append awaiting durability.
type Ticket uint64

// Log mirrors the staging surface of the engine's wal.Log.
type Log struct{}

// Append stages a record synchronously.
func (l *Log) Append(r Record) LSN { return 0 }

// AppendAsync stages a record for group commit.
func (l *Log) AppendAsync(r Record) (Ticket, error) { return 0, nil }
