// Package b holds stagebeforemutate's passing fixtures: stage-first
// ordering, REDO-only paths that never stage, and conditional staging.
package b

import "wal"

type UndoLog struct {
	log     *wal.Log
	current map[string]int
	chain   map[uint64][]int
}

// stageThenWrite is the discipline: the record is durable-stageable
// before the in-place state moves.
func (u *UndoLog) stageThenWrite(k string, v int) error {
	if _, err := u.log.AppendAsync(wal.Record{}); err != nil {
		return err
	}
	u.current[k] = v
	return nil
}

// redoOnlyApply never stages: replay applies already-logged records, so
// the mutation needs no new record.
func (u *UndoLog) redoOnlyApply(k string, v int) {
	u.current[k] = v
}

// conditionalStage stages on the undo-mode branch only; the merge ORs
// the staged flag, so the mutation after the branch stays silent.
func (u *UndoLog) conditionalStage(k string, v int, undo bool) error {
	if undo {
		if _, err := u.log.AppendAsync(wal.Record{}); err != nil {
			return err
		}
	}
	u.current[k] = v
	return nil
}

type Txn struct {
	log *wal.Log
}

func (t *Txn) releaseLocks() {}

// commitRightOrder stages the commit record, then releases.
func (t *Txn) commitRightOrder() error {
	if _, err := t.log.AppendAsync(wal.Record{}); err != nil {
		return err
	}
	t.releaseLocks()
	return nil
}

// abortSweep releases without ever staging on this path — the abort
// records were staged by the compensation sweep, not here.
func (t *Txn) abortSweep() {
	t.releaseLocks()
}
