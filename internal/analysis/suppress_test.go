package analysis_test

// Driver-level tests: the //lint:ignore suppression grammar (justified,
// justification-free, misnamed, unused) and the Scope table that confines
// path-sensitive analyzers to the packages whose disciplines they encode.

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/detreplay"
)

const suppressSrc = `package fix

import "time"

func justified() int64 {
	return time.Now().UnixNano() //lint:ignore detreplay timing stats only, never replayed
}

func standalone() int64 {
	//lint:ignore detreplay covers the next line, standalone form
	return time.Now().UnixNano()
}

func unjustified() int64 {
	return time.Now().UnixNano() //lint:ignore detreplay
}

func bare() int64 {
	return time.Now().UnixNano()
}

func misnamed() int64 {
	return time.Now().UnixNano() //lint:ignore walerr names the wrong analyzer
}
`

func checkFixture(t *testing.T, src string) ([]analysis.Diagnostic, *analysis.Package) {
	t.Helper()
	dir := t.TempDir()
	file := filepath.Join(dir, "fix.go")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	pkg, err := analysis.Check(fset, analysis.NewImporter(fset), "fix", dir, []string{file})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{detreplay.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	return analysis.ApplySuppressions(pkg, diags), pkg
}

func TestSuppressions(t *testing.T) {
	diags, _ := checkFixture(t, suppressSrc)

	var suppressed, findings []analysis.Diagnostic
	for _, d := range diags {
		if d.Suppressed {
			suppressed = append(suppressed, d)
		} else {
			findings = append(findings, d)
		}
	}
	// Suppressed: the justified trailing comment, the standalone
	// next-line comment, and the (malformed but matching) unjustified one.
	if len(suppressed) != 3 {
		t.Fatalf("suppressed = %d, want 3: %v", len(suppressed), suppressed)
	}
	for _, d := range suppressed[:2] {
		if d.Justification == "" {
			t.Errorf("suppression at %s lost its justification", d.Pos)
		}
	}
	// Findings: bare time.Now, misnamed-analyzer time.Now, the
	// justification-free suppression's own diagnostic, and the misnamed
	// (therefore unused) suppression's diagnostic.
	if len(findings) != 4 {
		t.Fatalf("findings = %d, want 4: %v", len(findings), findings)
	}
	var sawBare, sawMisnamedFinding, sawMalformed, sawUnused bool
	for _, d := range findings {
		switch {
		case d.Analyzer == "detreplay" && strings.Contains(d.Message, "time.Now"):
			if sawBare {
				sawMisnamedFinding = true
			}
			sawBare = true
		case d.Analyzer == "cclint" && strings.Contains(d.Message, "needs a justification"):
			sawMalformed = true
		case d.Analyzer == "cclint" && strings.Contains(d.Message, "unused lint:ignore"):
			sawUnused = true
		}
	}
	if !sawBare || !sawMisnamedFinding || !sawMalformed || !sawUnused {
		t.Errorf("missing finding classes: bare=%v misnamed=%v malformed=%v unused=%v",
			sawBare, sawMisnamedFinding, sawMalformed, sawUnused)
	}
}

func TestSummaryShowsJustifications(t *testing.T) {
	diags, _ := checkFixture(t, suppressSrc)
	res := &analysis.Result{}
	for _, d := range diags {
		if d.Suppressed {
			res.Suppressed = append(res.Suppressed, d)
		} else {
			res.Findings = append(res.Findings, d)
		}
	}
	s := res.Summary()
	if !strings.Contains(s, "timing stats only, never replayed") {
		t.Errorf("summary omits the suppression justification:\n%s", s)
	}
	if !strings.Contains(s, "4 finding(s), 3 suppression(s)") {
		t.Errorf("summary header wrong:\n%s", s)
	}
}

func TestScopeAllows(t *testing.T) {
	scope := analysis.Scope{
		"detreplay": {"internal/recovery", "internal/history"},
	}
	cases := []struct {
		analyzer, pkg string
		want          bool
	}{
		{"detreplay", "repro/internal/recovery", true},
		{"detreplay", "repro/internal/history", true},
		{"detreplay", "repro/internal/wal", false},
		{"detreplay", "repro/cmd/ccbench", false},
		// No entry: the analyzer applies everywhere.
		{"walerr", "repro/internal/wal", true},
		{"walerr", "repro/examples/escrow", true},
	}
	for _, c := range cases {
		if got := scope.Allows(c.analyzer, c.pkg); got != c.want {
			t.Errorf("Allows(%s, %s) = %v, want %v", c.analyzer, c.pkg, got, c.want)
		}
	}
}
