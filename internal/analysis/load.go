package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
)

// A Package is one loaded, parsed, type-checked package — the unit the
// analyzers run over.
type Package struct {
	Path      string // import path
	Name      string
	Dir       string
	GoFiles   []string // absolute paths, non-test files only
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Standard   bool
	Incomplete bool
}

// List expands patterns ("./...") into packages via the go command,
// run in dir (the module root). Only the fields the loader needs are
// decoded; test files are not listed (the disciplines guard engine code,
// and test helpers deliberately exercise the forbidden shapes).
func List(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v: %s", patterns, err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -json decode: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// NewImporter returns a shared types.ImporterFrom that type-checks
// dependencies from source (the container has no export data for the
// module and no proxy for x/tools; the source importer needs only GOROOT
// and the go command). It caches internally, so one importer should be
// shared across every package of a run.
func NewImporter(fset *token.FileSet) types.ImporterFrom {
	return importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
}

// Load lists, parses and type-checks the packages matched by patterns.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := List(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := NewImporter(fset)
	var out []*Package
	for _, lp := range listed {
		if lp.Name == "" || len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := Check(fset, imp, lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// Check parses and type-checks one package from its file list. The
// importer resolves dependencies; fset must be the importer's FileSet.
func Check(fset *token.FileSet, imp types.ImporterFrom, path, dir string, files []string) (*Package, error) {
	var syntax []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", f, err)
		}
		syntax = append(syntax, af)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	name := ""
	if len(syntax) > 0 {
		name = syntax[0].Name.Name
	}
	conf := types.Config{
		Importer: srcDirImporter{imp, dir},
	}
	tpkg, err := conf.Check(path, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{
		Path:      path,
		Name:      name,
		Dir:       dir,
		GoFiles:   files,
		Fset:      fset,
		Syntax:    syntax,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// srcDirImporter routes plain Import calls through ImportFrom with the
// package's own directory, so module-relative resolution works.
type srcDirImporter struct {
	imp types.ImporterFrom
	dir string
}

func (s srcDirImporter) Import(path string) (*types.Package, error) {
	return s.imp.ImportFrom(path, s.dir, 0)
}

func (s srcDirImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if dir == "" {
		dir = s.dir
	}
	return s.imp.ImportFrom(path, dir, mode)
}
