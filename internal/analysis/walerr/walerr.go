// Package walerr flags discarded errors from wal.Log methods.
//
// Weihl's recoverability argument only holds if the engine knows whether
// its log records reached the durability backend: a swallowed Flush,
// AppendAsync, WaitDurable or accessor error silently converts "durable"
// into "probably durable", which is exactly how nine bare-Flush swallows
// crept into the read accessors before PR 7 rooted them out by hand.
// walerr makes that bug class impossible to reintroduce: every call to a
// wal.Log method whose final result is error must bind and use the error
// — expression statements, go/defer statements, and assignments to the
// blank identifier are all reported.
package walerr

import (
	"go/ast"

	"repro/internal/analysis"
)

// Analyzer is the walerr pass.
var Analyzer = &analysis.Analyzer{
	Name: "walerr",
	Doc: "wal.Log methods returning error must not have the error discarded " +
		"(bare-call, go/defer, or assignment to _); durability errors are part " +
		"of the recoverability invariant",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					report(pass, call, "discarded")
				}
			case *ast.GoStmt:
				report(pass, n.Call, "discarded by go statement")
			case *ast.DeferStmt:
				report(pass, n.Call, "discarded by defer")
			case *ast.AssignStmt:
				checkAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// report flags the call if it is a wal.Log method whose error result the
// surrounding statement throws away.
func report(pass *analysis.Pass, call *ast.CallExpr, how string) {
	if !isWalLogErrCall(pass, call) {
		return
	}
	f := analysis.CalleeFunc(pass.TypesInfo, call)
	pass.Reportf(call.Pos(),
		"error result of (*wal.Log).%s %s: durability errors must be handled or propagated",
		f.Name(), how)
}

// checkAssign flags `_ = l.Flush()` and `v, _ := l.AppendAsync(r)`: the
// error occupies the callee's final result position, so the final LHS
// must not be blank.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return // parallel assignment: each RHS is single-valued, no call splits
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || !isWalLogErrCall(pass, call) {
		return
	}
	last, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident)
	if ok && last.Name == "_" {
		f := analysis.CalleeFunc(pass.TypesInfo, call)
		pass.Reportf(call.Pos(),
			"error result of (*wal.Log).%s assigned to _: durability errors must be handled or propagated",
			f.Name())
	}
}

func isWalLogErrCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	return analysis.IsMethodOf(pass.TypesInfo, call, "wal", "Log") &&
		analysis.LastResultIsError(pass.TypesInfo, call)
}
