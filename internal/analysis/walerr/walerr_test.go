package walerr_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/walerr"
)

func TestWalErr(t *testing.T) {
	analysistest.Run(t, "testdata", walerr.Analyzer, "a", "b")
}
