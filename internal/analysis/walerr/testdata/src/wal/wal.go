// Package wal is a fixture stub mirroring the engine's wal.Log method
// set: walerr matches by package name and type name, so this stand-in
// exercises the analyzer without importing the real engine.
package wal

// Record is a stand-in log record.
type Record struct{ Kind int }

// LSN is a log sequence number.
type LSN uint64

// Ticket names an asynchronous append awaiting durability.
type Ticket uint64

// Log mirrors the error-returning surface of the engine's wal.Log.
type Log struct{}

// Append stages a record; it cannot fail (no error result).
func (l *Log) Append(r Record) LSN { return 0 }

// AppendAsync stages a record for group commit.
func (l *Log) AppendAsync(r Record) (Ticket, error) { return 0, nil }

// Flush forces staged records to the backend.
func (l *Log) Flush() error { return nil }

// WaitDurable blocks until the ticket's batch is durable.
func (l *Log) WaitDurable(t Ticket) error { return nil }

// Close seals the log.
func (l *Log) Close() error { return nil }

// Err reports the log's sticky error.
func (l *Log) Err() error { return nil }
