// Package b holds walerr's passing fixtures: every sanctioned way of
// consuming a wal.Log error, plus the no-error methods walerr must not
// touch.
package b

import "wal"

func checked(l *wal.Log) error {
	if err := l.Flush(); err != nil {
		return err
	}
	return nil
}

func propagated(l *wal.Log) error {
	return l.Flush()
}

func boundAndWaited(l *wal.Log) (wal.Ticket, error) {
	t, err := l.AppendAsync(wal.Record{})
	if err != nil {
		return 0, err
	}
	return t, l.WaitDurable(t)
}

// joined mirrors the engine's error-join idiom on secondary failures.
func joined(l *wal.Log, primary error) error {
	if cerr := l.Close(); cerr != nil && primary == nil {
		primary = cerr
	}
	return primary
}

// appendHasNoError: Append returns only an LSN, so a bare call is fine.
func appendHasNoError(l *wal.Log) {
	l.Append(wal.Record{})
}
