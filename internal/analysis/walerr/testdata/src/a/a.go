// Package a holds walerr's failing fixtures: every shape that discards
// a wal.Log error, including PR 7's bare-Flush swallow.
package a

import "wal"

// bareFlush is PR 7's exact regression shape: nine read accessors
// swallowed Flush errors this way before they were rooted out by hand.
func bareFlush(l *wal.Log) {
	l.Flush() // want `error result of \(\*wal\.Log\)\.Flush discarded: durability errors must be handled or propagated`
}

func blankFlush(l *wal.Log) {
	_ = l.Flush() // want `error result of \(\*wal\.Log\)\.Flush assigned to _`
}

func blankAppendAsync(l *wal.Log) wal.Ticket {
	t, _ := l.AppendAsync(wal.Record{}) // want `error result of \(\*wal\.Log\)\.AppendAsync assigned to _`
	return t
}

func goFlush(l *wal.Log) {
	go l.Flush() // want `error result of \(\*wal\.Log\)\.Flush discarded by go statement`
}

func deferClose(l *wal.Log) {
	defer l.Close() // want `error result of \(\*wal\.Log\)\.Close discarded by defer`
}

func bareWait(l *wal.Log, t wal.Ticket) {
	l.WaitDurable(t) // want `error result of \(\*wal\.Log\)\.WaitDurable discarded`
}
