package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

// TestLoadModulePackages proves the stdlib-only loader can list, parse
// and type-check real engine packages (including their std and
// module-internal imports) — the foundation every analyzer stands on.
func TestLoadModulePackages(t *testing.T) {
	root := moduleRoot(t)
	pkgs, err := Load(root, []string{"./internal/wal", "./internal/stripe"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(pkgs))
	}
	byName := map[string]*Package{}
	for _, p := range pkgs {
		byName[p.Name] = p
		if p.Types == nil || p.TypesInfo == nil || len(p.Syntax) == 0 {
			t.Fatalf("package %s loaded without types or syntax", p.Path)
		}
	}
	wal, ok := byName["wal"]
	if !ok {
		t.Fatal("internal/wal not loaded")
	}
	if wal.Types.Scope().Lookup("Log") == nil {
		t.Fatal("wal.Log not in scope: type-checking did not resolve the package")
	}
}

// TestCheckSharedImporter proves one importer instance serves several
// Check calls over one FileSet (the shape Load and analysistest share).
func TestCheckSharedImporter(t *testing.T) {
	root := moduleRoot(t)
	fset := token.NewFileSet()
	imp := NewImporter(fset)
	dir := filepath.Join(root, "internal", "stripe")
	pkg, err := Check(fset, imp, "repro/internal/stripe", dir,
		[]string{filepath.Join(dir, "stripe.go")})
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Scope().Lookup("FNV32a") == nil {
		t.Fatal("stripe.FNV32a not found after Check")
	}
}
