// Package analysistest runs an analyzer over fixture packages and
// compares its diagnostics against `// want` expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the stdlib alone.
//
// Fixture layout: <testdata>/src/<importpath>/*.go. A fixture file marks
// expected findings with trailing comments:
//
//	l.Flush() // want `error result of .*Flush.* discarded`
//
// Multiple backquoted regexps on one comment expect multiple findings on
// that line. Fixture packages may import each other by their
// testdata-relative paths (a stub "wal" lives at testdata/src/wal) and
// anything from the standard library.
package analysistest

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads each fixture package and checks the analyzer's diagnostics
// against the package's want-comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	imp := &fixtureImporter{
		root:     filepath.Join(testdata, "src"),
		fset:     fset,
		fallback: analysis.NewImporter(fset),
		cache:    map[string]*analysis.Package{},
	}
	for _, path := range pkgPaths {
		pkg, err := imp.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		diags, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s over %s: %v", a.Name, path, err)
		}
		checkWants(t, pkg, diags)
	}
}

// fixtureImporter resolves testdata-relative fixture packages first and
// falls back to the source importer for the standard library.
type fixtureImporter struct {
	root     string
	fset     *token.FileSet
	fallback types.ImporterFrom
	cache    map[string]*analysis.Package
}

func (fi *fixtureImporter) load(path string) (*analysis.Package, error) {
	if p, ok := fi.cache[path]; ok {
		return p, nil
	}
	dir := filepath.Join(fi.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	pkg, err := analysis.Check(fi.fset, fi, path, dir, files)
	if err != nil {
		return nil, err
	}
	fi.cache[path] = pkg
	return pkg, nil
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	return fi.ImportFrom(path, fi.root, 0)
}

func (fi *fixtureImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if st, err := os.Stat(filepath.Join(fi.root, filepath.FromSlash(path))); err == nil && st.IsDir() {
		pkg, err := fi.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return fi.fallback.ImportFrom(path, dir, mode)
}

// wantRe extracts the backquoted patterns of a want comment.
var wantRe = regexp.MustCompile("`([^`]*)`")

type expectation struct {
	re   *regexp.Regexp
	used bool
}

// checkWants matches diagnostics against want-comments line by line.
func checkWants(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[lineKey][]*expectation{}
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(c.Text[idx:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, m[1], err)
					}
					k := lineKey{pos.Filename, pos.Line}
					wants[k] = append(wants[k], &expectation{re: re})
				}
			}
		}
	}
	for _, d := range diags {
		k := lineKey{d.Pos.Filename, d.Pos.Line}
		matched := false
		for _, e := range wants[k] {
			if !e.used && e.re.MatchString(d.Message) {
				e.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, es := range wants {
		for _, e := range es {
			if !e.used {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, e.re)
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}
