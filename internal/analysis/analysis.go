// Package analysis is a self-contained, dependency-free reimplementation
// of the core of golang.org/x/tools/go/analysis, plus the package loading
// and suppression machinery the cclint driver needs. The engine's
// correctness rests on code-level disciplines the compiler cannot check —
// WAL errors must not be swallowed, latches must be released on every
// path, undo/redo records must be staged before state mutates, restart
// must be deterministic, atomically-published fields must never be
// accessed plainly — and the analyzers under internal/analysis/... promote
// those conventions to machine-checked rules.
//
// The API mirrors go/analysis (Analyzer, Pass, Diagnostic) so the
// analyzers would port to the upstream framework unchanged; the container
// this repo builds in has no module proxy, so the framework itself is
// rebuilt here on the standard library alone (go/ast, go/types,
// go/importer and the go command for package listing).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant-lint pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore suppressions. It must be a valid identifier.
	Name string
	// Doc is the one-paragraph description shown by cclint -list: the
	// discipline enforced and the historical bug class that motivated it.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass presents one type-checked package to an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Suppressed is set by the driver when a //lint:ignore comment
	// covers the finding; Justification carries the comment's reason.
	Suppressed    bool
	Justification string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// RunAnalyzers applies each analyzer to the package and returns the raw
// (unsuppressed) diagnostics in position order.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// ---- suppression -----------------------------------------------------

// A suppression is a //lint:ignore comment: it names the analyzers it
// silences and must carry a non-empty justification. It covers findings
// on the line it trails, or — when it stands alone — on the next
// non-comment line.
type suppression struct {
	analyzers     map[string]bool
	justification string
	pos           token.Position
	used          bool
}

// IgnorePrefix is the comment marker cclint understands:
//
//	//lint:ignore walerr[,locksafe] justification text
//
// Suppressions without a justification are themselves diagnostics: a
// silenced invariant must say why silence is sound.
const IgnorePrefix = "//lint:ignore "

// ApplySuppressions marks diagnostics covered by //lint:ignore comments
// in the package's files as Suppressed and returns extra diagnostics for
// malformed (justification-free) or unused suppressions.
func ApplySuppressions(pkg *Package, diags []Diagnostic) []Diagnostic {
	sups := collectSuppressions(pkg)
	for i := range diags {
		key := lineKey{diags[i].Pos.Filename, diags[i].Pos.Line}
		if s, ok := sups[key]; ok && s.analyzers[diags[i].Analyzer] {
			diags[i].Suppressed = true
			diags[i].Justification = s.justification
			s.used = true
		}
	}
	// Each suppression is indexed under two lines (its own and the
	// next); dedupe by position before reporting on the comment itself.
	var extra []Diagnostic
	seen := make(map[token.Position]bool)
	for _, s := range sups {
		if seen[s.pos] {
			continue
		}
		seen[s.pos] = true
		switch {
		case s.justification == "":
			extra = append(extra, Diagnostic{
				Analyzer: "cclint",
				Pos:      s.pos,
				Message:  "lint:ignore needs a justification: a silenced invariant must say why silence is sound",
			})
		case !s.used:
			names := make([]string, 0, len(s.analyzers))
			for n := range s.analyzers {
				names = append(names, n)
			}
			sort.Strings(names)
			extra = append(extra, Diagnostic{
				Analyzer: "cclint",
				Pos:      s.pos,
				Message: fmt.Sprintf("unused lint:ignore suppression (%s): nothing here to silence",
					strings.Join(names, ",")),
			})
		}
	}
	sort.Slice(extra, func(i, j int) bool {
		a, b := extra[i].Pos, extra[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return append(diags, extra...)
}

type lineKey struct {
	file string
	line int
}

// collectSuppressions maps (file, line) to the suppression covering it.
func collectSuppressions(pkg *Package) map[lineKey]*suppression {
	out := make(map[lineKey]*suppression)
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, strings.TrimSpace(IgnorePrefix)) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, strings.TrimSpace(IgnorePrefix))
				rest = strings.TrimSpace(rest)
				names, justification, _ := strings.Cut(rest, " ")
				s := &suppression{
					analyzers:     make(map[string]bool),
					justification: strings.TrimSpace(justification),
					pos:           pkg.Fset.Position(c.Pos()),
				}
				for _, n := range strings.Split(names, ",") {
					if n = strings.TrimSpace(n); n != "" {
						s.analyzers[n] = true
					}
				}
				// The comment covers its own line (a trailing comment)
				// and, for a standalone comment, the following line.
				line := pkg.Fset.Position(c.Pos()).Line
				out[lineKey{s.pos.Filename, line}] = s
				out[lineKey{s.pos.Filename, line + 1}] = s
			}
		}
	}
	return out
}
