// Package atomicfield forbids mixed atomic/plain access to struct
// fields.
//
// The engine publishes cross-goroutine state through atomics: the global
// stamp, the durable watermark, commit tickets. A field that is ever
// accessed through sync/atomic functions (atomic.LoadInt64(&x.f), ...)
// participates in a release/acquire protocol, and one plain read or
// write elsewhere silently breaks it — the race detector only catches
// the schedules that actually collide, while the lint catches the shape.
// The engine's own fields use the typed atomic.Int64 wrappers (immune by
// construction); this analyzer guards the function-style pattern the
// planned lock-free hot-path refactor will introduce.
//
// Within each package: pass 1 collects every struct field whose address
// is taken as the first argument of a sync/atomic function; pass 2 flags
// every other selector access to those fields — plain reads, plain
// writes, and address-taking outside sync/atomic calls.
package atomicfield

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the atomicfield pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: "a struct field accessed via sync/atomic must never be read or " +
		"written plainly elsewhere in the package",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// Pass 1: fields used atomically, keyed by their types.Var, with the
	// set of &x.f selector nodes that appear inside atomic calls (these
	// are the sanctioned uses pass 2 must skip).
	atomicFields := map[*types.Var]bool{}
	sanctioned := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fv := fieldVar(pass, sel); fv != nil {
					atomicFields[fv] = true
					sanctioned[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Pass 2: every other selector touching those fields is a violation.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			fv := fieldVar(pass, sel)
			if fv == nil || !atomicFields[fv] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"plain access to field %s, which is accessed with sync/atomic elsewhere in this package: "+
					"mixed atomic/plain access breaks the publication protocol",
				fv.Name())
			return true
		})
	}
	return nil
}

// isAtomicCall reports whether the call targets a sync/atomic function
// (LoadInt64, StoreUint64, AddInt64, CompareAndSwapPointer, ...).
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	f := analysis.CalleeFunc(pass.TypesInfo, call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == "sync/atomic" &&
		analysis.ReceiverNamed(f) == nil
}

// fieldVar resolves a selector to the struct field it names, or nil for
// methods, package members and non-field selections.
func fieldVar(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
		v, _ := s.Obj().(*types.Var)
		return v
	}
	return nil
}
