// Package atomicfield forbids mixed atomic/plain access to struct
// fields.
//
// The engine publishes cross-goroutine state through atomics: the global
// stamp, the durable watermark, commit tickets. A field that is ever
// accessed through sync/atomic functions (atomic.LoadInt64(&x.f), ...)
// participates in a release/acquire protocol, and one plain read or
// write elsewhere silently breaks it — the race detector only catches
// the schedules that actually collide, while the lint catches the shape.
// The engine's own fields use the typed atomic.Int64 wrappers (immune by
// construction); this analyzer guards the function-style pattern the
// planned lock-free hot-path refactor will introduce.
//
// Within each package: pass 1 collects every struct field whose address
// is taken as the first argument of a sync/atomic function — either
// directly (&x.f) or through an element (&x.f[i], the sharded-histogram
// shape, which publishes the whole array field); pass 2 flags every
// other selector access to those fields — plain reads, plain writes, and
// address-taking outside sync/atomic calls.
//
// The analyzer also understands the typed atomic.Pointer[T] and the
// copy-on-write discipline built on it (stripe.CowMap, the engine's
// lock-free object registry): a value reached through Pointer.Load is a
// published immutable snapshot, shared with every concurrent reader.
// Writers must copy, mutate the copy, and Store the copy — never mutate
// the loaded value in place. Within each function body the analyzer
// tracks pointers (and their dereferenced values) obtained from
// atomic.Pointer Load calls, through local aliases, and flags in-place
// mutation: stores through the loaded pointer, field writes on it, and
// map index assignment, increment, or delete on a loaded map.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the atomicfield pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: "a struct field accessed via sync/atomic must never be read or " +
		"written plainly elsewhere in the package, and values loaded from " +
		"atomic.Pointer must never be mutated in place (copy-on-write)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, fd := range analysis.FuncDecls(pass.Files) {
		checkCow(pass, fd.Body)
	}
	// Pass 1: fields used atomically, keyed by their types.Var, with the
	// set of &x.f selector nodes that appear inside atomic calls (these
	// are the sanctioned uses pass 2 must skip).
	atomicFields := map[*types.Var]bool{}
	sanctioned := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				inner := ast.Unparen(un.X)
				// &x.f[i] publishes element-by-element: the array field
				// itself joins the protocol, so unwrap the index.
				if ix, ok := inner.(*ast.IndexExpr); ok {
					inner = ast.Unparen(ix.X)
				}
				sel, ok := inner.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fv := fieldVar(pass, sel); fv != nil {
					atomicFields[fv] = true
					sanctioned[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Pass 2: every other selector touching those fields is a violation.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			fv := fieldVar(pass, sel)
			if fv == nil || !atomicFields[fv] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"plain access to field %s, which is accessed with sync/atomic elsewhere in this package: "+
					"mixed atomic/plain access breaks the publication protocol",
				fv.Name())
			return true
		})
	}
	return nil
}

// Classes a tracked expression or variable can have in the CoW check.
const (
	cowPtr = "ptr" // a pointer returned by atomic.Pointer.Load
	cowVal = "val" // the value that pointer dereferences to
)

// checkCow flags in-place mutation of values loaded from an
// atomic.Pointer within one function body. Loaded pointers are tracked
// through local aliases to a fixpoint (`cur := p.Load(); m := *cur`), so
// the check survives the idiomatic two-step deref.
func checkCow(pass *analysis.Pass, body *ast.BlockStmt) {
	// Collect local variables holding a loaded pointer or its deref.
	loaded := map[*types.Var]string{}
	classify := func(e ast.Expr) string { return classifyExpr(pass, loaded, e) }
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i := range as.Rhs {
				cls := classify(as.Rhs[i])
				if cls == "" {
					continue
				}
				id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				if v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var); ok && loaded[v] != cls {
					loaded[v] = cls
					changed = true
				}
			}
			return true
		})
	}
	// A mutation target is "loaded" if it is a loaded value directly or
	// the dereference of a loaded pointer (or of a Load call inline).
	isLoadedVal := func(e ast.Expr) bool { return classify(e) == cowVal }
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos,
			"%s a value loaded from atomic.Pointer: loaded snapshots are shared with "+
				"concurrent readers — copy, mutate the copy, then Store the copy",
			what)
	}
	flagLHS := func(l ast.Expr) {
		switch l := ast.Unparen(l).(type) {
		case *ast.IndexExpr:
			if isLoadedVal(l.X) {
				report(l.Pos(), "in-place map write to")
			}
		case *ast.StarExpr:
			if classify(l.X) == cowPtr {
				report(l.Pos(), "store through")
			}
		case *ast.SelectorExpr:
			if classify(l.X) == cowPtr || isLoadedVal(l.X) {
				report(l.Pos(), "field write to")
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				flagLHS(l)
			}
		case *ast.IncDecStmt:
			flagLHS(n.X)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "delete" &&
				pass.TypesInfo.Uses[id] == types.Universe.Lookup("delete") && len(n.Args) > 0 {
				if isLoadedVal(n.Args[0]) {
					report(n.Pos(), "delete from")
				}
			}
		}
		return true
	})
}

// classifyExpr resolves e to cowPtr/cowVal when it is a tracked local
// variable, an inline Pointer.Load call, or a dereference of either.
func classifyExpr(pass *analysis.Pass, loaded map[*types.Var]string, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := pass.TypesInfo.ObjectOf(e).(*types.Var); ok {
			return loaded[v]
		}
	case *ast.CallExpr:
		if isPointerLoad(pass, e) {
			return cowPtr
		}
	case *ast.StarExpr:
		if classifyExpr(pass, loaded, e.X) == cowPtr {
			return cowVal
		}
	}
	return ""
}

// isPointerLoad reports whether the call is atomic.Pointer[T].Load.
func isPointerLoad(pass *analysis.Pass, call *ast.CallExpr) bool {
	f := analysis.CalleeFunc(pass.TypesInfo, call)
	if f == nil || f.Name() != "Load" {
		return false
	}
	n := analysis.ReceiverNamed(f)
	return n != nil && n.Obj().Name() == "Pointer" &&
		n.Obj().Pkg() != nil && n.Obj().Pkg().Name() == "atomic"
}

// isAtomicCall reports whether the call targets a sync/atomic function
// (LoadInt64, StoreUint64, AddInt64, CompareAndSwapPointer, ...).
func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	f := analysis.CalleeFunc(pass.TypesInfo, call)
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == "sync/atomic" &&
		analysis.ReceiverNamed(f) == nil
}

// fieldVar resolves a selector to the struct field it names, or nil for
// methods, package members and non-field selections.
func fieldVar(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
		v, _ := s.Obj().(*types.Var)
		return v
	}
	return nil
}
