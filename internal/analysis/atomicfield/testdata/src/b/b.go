// Package b holds atomicfield's passing fixtures: all-atomic access,
// plainly-accessed fields that never meet sync/atomic, and the typed
// atomic wrappers that are immune by construction.
package b

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	n    int64
	cold int64
}

// bump and read agree: every access to n goes through sync/atomic.
func (c *counter) bump() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) read() int64 {
	return atomic.LoadInt64(&c.n)
}

// coldBump touches a field that is never accessed atomically.
func (c *counter) coldBump() {
	c.cold++
}

// gauge uses the typed wrapper: plain access is impossible, so the
// analyzer has nothing to track.
type gauge struct {
	v atomic.Int64
}

func (g *gauge) set(x int64) { g.v.Store(x) }
func (g *gauge) get() int64  { return g.v.Load() }

// shard is the histogram shape the engine's obs layer uses: a fixed
// array of typed atomic.Int64 buckets, immune by construction.
type shard struct {
	buckets [8]atomic.Int64
}

func (s *shard) record(i int)     { s.buckets[i&7].Add(1) }
func (s *shard) load(i int) int64 { return s.buckets[i&7].Load() }

// funcShard is the function-style variant done right: every element
// access goes through sync/atomic, so the enrolled array field is never
// touched plainly.
type funcShard struct {
	buckets [8]int64
}

func (s *funcShard) record(i int)     { atomic.AddInt64(&s.buckets[i&7], 1) }
func (s *funcShard) read(i int) int64 { return atomic.LoadInt64(&s.buckets[i&7]) }

// registry is the correct copy-on-write shape: readers dereference the
// loaded snapshot without mutating it, and the writer mutates only its
// private copy before publishing it with Store.
type registry struct {
	mu sync.Mutex
	m  atomic.Pointer[map[string]int]
}

func (r *registry) get(k string) (int, bool) {
	m := r.m.Load()
	if m == nil {
		return 0, false
	}
	v, ok := (*m)[k]
	return v, ok
}

func (r *registry) insert(k string, v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	next := make(map[string]int)
	if cur := r.m.Load(); cur != nil {
		for kk, vv := range *cur {
			next[kk] = vv
		}
	}
	next[k] = v // the private copy: mutation here is the whole point
	r.m.Store(&next)
}
