// Package a holds atomicfield's failing fixtures: fields published
// through sync/atomic and then touched plainly elsewhere.
package a

import "sync/atomic"

type counter struct {
	n int64
}

func (c *counter) bump() {
	atomic.AddInt64(&c.n, 1)
}

// plainRead races with bump: the load skips the acquire.
func (c *counter) plainRead() int64 {
	return c.n // want `plain access to field n, which is accessed with sync/atomic elsewhere in this package`
}

// plainWrite races with bump: the store skips the release.
func (c *counter) plainWrite() {
	c.n = 0 // want `plain access to field n`
}

// leakAddr hands out the address outside the atomic protocol.
func (c *counter) leakAddr() *int64 {
	return &c.n // want `plain access to field n`
}
