// Package a holds atomicfield's failing fixtures: fields published
// through sync/atomic and then touched plainly elsewhere.
package a

import "sync/atomic"

type counter struct {
	n int64
}

func (c *counter) bump() {
	atomic.AddInt64(&c.n, 1)
}

// plainRead races with bump: the load skips the acquire.
func (c *counter) plainRead() int64 {
	return c.n // want `plain access to field n, which is accessed with sync/atomic elsewhere in this package`
}

// plainWrite races with bump: the store skips the release.
func (c *counter) plainWrite() {
	c.n = 0 // want `plain access to field n`
}

// leakAddr hands out the address outside the atomic protocol.
func (c *counter) leakAddr() *int64 {
	return &c.n // want `plain access to field n`
}

// registry is the copy-on-write shape: every value published through the
// atomic.Pointer is an immutable snapshot. The methods below break the
// discipline by mutating loaded snapshots in place.
type registry struct {
	m atomic.Pointer[map[string]int]
}

// badInsert writes through a loaded pointer held in a local.
func (r *registry) badInsert(k string, v int) {
	cur := r.m.Load()
	(*cur)[k] = v // want `in-place map write to a value loaded from atomic.Pointer`
}

// badInsertInline writes through the Load call directly.
func (r *registry) badInsertInline(k string, v int) {
	(*r.m.Load())[k] = v // want `in-place map write to a value loaded from atomic.Pointer`
}

// badDelete tracks the loaded map through a deref alias.
func (r *registry) badDelete(k string) {
	m := *r.m.Load()
	delete(m, k) // want `delete from a value loaded from atomic.Pointer`
}

// badBump mutates an entry of the shared snapshot.
func (r *registry) badBump(k string) {
	m := *r.m.Load()
	m[k]++ // want `in-place map write to a value loaded from atomic.Pointer`
}

// hist publishes its bucket array element-by-element through
// sync/atomic: taking &h.buckets[i] inside an atomic call enrolls the
// whole array field in the protocol, so any plain element access
// elsewhere races with record.
type hist struct {
	buckets [8]int64
}

func (h *hist) record(i int) {
	atomic.AddInt64(&h.buckets[i&7], 1)
}

// plainBucketRead skips the acquire on an element of the published array.
func (h *hist) plainBucketRead(i int) int64 {
	return h.buckets[i&7] // want `plain access to field buckets`
}

// plainBucketReset races with record: the store skips the release.
func (h *hist) plainBucketReset(i int) {
	h.buckets[i&7] = 0 // want `plain access to field buckets`
}

type node struct{ next int }

type box struct {
	p atomic.Pointer[node]
}

// badField writes a field of the shared snapshot through the pointer.
func (b *box) badField() {
	n := b.p.Load()
	n.next = 1 // want `field write to a value loaded from atomic.Pointer`
}

// badStore overwrites the shared snapshot through the loaded pointer.
func (b *box) badStore() {
	*b.p.Load() = node{} // want `store through a value loaded from atomic.Pointer`
}
