package adt

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/spec"
)

// TestQueueOrderSensitivity: enqueues of different elements do not commute
// in either sense — queue order is observable.
func TestQueueOrderSensitivity(t *testing.T) {
	q := DefaultFIFOQueue()
	c := q.Checker()
	if c.CommuteForward(EnqOk("a"), EnqOk("b")) {
		t.Error("enq(a) and enq(b) should not commute forward")
	}
	if c.RightCommutesBackward(EnqOk("a"), EnqOk("b")) {
		t.Error("enq(a) should not right-commute-backward with enq(b)")
	}
	// Dequeues of different elements are never co-located; deq is
	// deterministic given the state.
	if !c.Deterministic(Deq()) {
		t.Error("deq should be deterministic")
	}
	// enq is total (ok or full), deq is total (elem or empty).
	if !c.Total(Enq("a")) || !c.Total(Deq()) {
		t.Error("enq and deq should be total")
	}
}

func TestQueueMachine(t *testing.T) {
	q := DefaultFIFOQueue()
	m := q.Machine()
	v := m.Init()
	for _, x := range []string{"a", "b", "a"} {
		res, next, err := m.Apply(v, Enq(x))
		if err != nil || res != "ok" {
			t.Fatalf("enq(%s): %v %v", x, res, err)
		}
		v = next
	}
	res, v, _ := m.Apply(v, Enq("b"))
	if res != "full" {
		t.Fatalf("fourth enq should be full, got %v", res)
	}
	res, v, _ = m.Apply(v, Deq())
	if res != "a" {
		t.Fatalf("deq should return a, got %v", res)
	}
	res, v, _ = m.Apply(v, Deq())
	if res != "b" {
		t.Fatalf("deq should return b, got %v", res)
	}
	if v.Encode() != "[a]" {
		t.Errorf("state = %s, want [a]", v.Encode())
	}
}

func TestQueueMachineUndo(t *testing.T) {
	q := DefaultFIFOQueue()
	m := q.Machine()
	v := m.Init()
	_, v, _ = m.Apply(v, Enq("a"))
	_, v, _ = m.Apply(v, Enq("b"))
	// Undo the enq of b.
	und, err := m.Undo(v, EnqOk("b"))
	if err != nil || und.Encode() != "[a]" {
		t.Fatalf("undo enq: %v %v", und, err)
	}
	// Undo a deq pushes the element back on the front.
	res, v2, _ := m.Apply(v, Deq())
	if res != "a" {
		t.Fatalf("deq = %v", res)
	}
	und2, err := m.Undo(v2, DeqElem("a"))
	if err != nil || und2.Encode() != "[a;b]" {
		t.Fatalf("undo deq: %v %v", und2, err)
	}
}

func TestQueueMachineRefinesSpec(t *testing.T) {
	q := DefaultFIFOQueue()
	m := q.Machine()
	sp := q.Spec()
	rng := rand.New(rand.NewSource(3))
	v := m.Init()
	var seq spec.Seq
	for step := 0; step < 40; step++ {
		var inv spec.Invocation
		if rng.Intn(2) == 0 {
			inv = Enq([]string{"a", "b"}[rng.Intn(2)])
		} else {
			inv = Deq()
		}
		res, next, err := m.Apply(v, inv)
		if err != nil {
			t.Fatalf("Apply(%s): %v", inv, err)
		}
		seq = append(seq, spec.Op(inv, res))
		if !sp.Legal(seq) {
			t.Fatalf("machine produced spec-illegal sequence %s", seq)
		}
		v = next
	}
}

// TestKVPerKeyConflicts: puts to the same key conflict under both NFC and
// NRBC; puts to different keys never conflict.
func TestKVPerKeyConflicts(t *testing.T) {
	kv := DefaultKVStore()
	nfc := kv.NFC()
	nrbc := kv.NRBC()
	if !nfc.Conflicts(PutOk("x", "0"), PutOk("x", "1")) {
		t.Error("same-key puts should conflict under NFC")
	}
	if !nrbc.Conflicts(PutOk("x", "0"), PutOk("x", "1")) {
		t.Error("same-key puts should conflict under NRBC")
	}
	if nfc.Conflicts(PutOk("x", "0"), PutOk("y", "1")) {
		t.Error("different-key puts should not conflict under NFC")
	}
	if nrbc.Conflicts(PutOk("x", "0"), PutOk("y", "1")) {
		t.Error("different-key puts should not conflict under NRBC")
	}
	// Blind writes: two puts of the SAME value to the same key. Under NFC
	// they commute (states converge); order still matters for NRBC? The
	// final state is identical, so they commute backward too.
	if nfc.Conflicts(PutOk("x", "0"), PutOk("x", "0")) {
		t.Error("identical puts commute forward (states converge)")
	}
	// Gets conflict with same-key puts, not with other keys.
	if !nfc.Conflicts(GetIs("x", "0"), PutOk("x", "1")) {
		t.Error("get should conflict with same-key put under NFC")
	}
	if nfc.Conflicts(GetIs("x", "0"), PutOk("y", "1")) {
		t.Error("get should not conflict with other-key put")
	}
}

func TestKVMachineAndBeforeImageUndo(t *testing.T) {
	kv := DefaultKVStore()
	m := kv.Machine()
	bi, ok := m.(BeforeImageUndoer)
	if !ok {
		t.Fatal("kv machine must support before-image undo")
	}
	v := m.Init()
	res, v1, err := m.Apply(v, Put("x", "1"))
	if err != nil || res != "ok" {
		t.Fatalf("put: %v %v", res, err)
	}
	// Capture before overwriting, then undo restores the old cell.
	tok := bi.CaptureBefore(v1, Put("x", "0"))
	_, v2, _ := m.Apply(v1, Put("x", "0"))
	und, err := bi.UndoWithBefore(v2, PutOk("x", "0"), tok)
	if err != nil || und.Encode() != "<x=1>" {
		t.Fatalf("undo put: %v %v", und, err)
	}
	// Undo of a put into an absent key deletes the key.
	tok2 := bi.CaptureBefore(v, Put("y", "5"))
	_, v3, _ := m.Apply(v, Put("y", "5"))
	und2, err := bi.UndoWithBefore(v3, PutOk("y", "5"), tok2)
	if err != nil || und2.Encode() != "<>" {
		t.Fatalf("undo put-into-absent: %v %v", und2, err)
	}
	// Plain Undo without a before-image must refuse for puts.
	if _, err := m.Undo(v3, PutOk("y", "5")); err == nil {
		t.Error("plain Undo of a put should fail")
	}
	// Gets are undoable trivially.
	if _, err := m.Undo(v3, GetIs("y", "5")); err != nil {
		t.Errorf("undo of get should succeed: %v", err)
	}
}

func TestRegisterRelationsCollapse(t *testing.T) {
	r := DefaultRegister()
	c := r.Checker()
	// For a register, writes of different values never commute, reads
	// always commute, and NFC = NRBC on write pairs of distinct values.
	if c.CommuteForward(WriteOk("1"), WriteOk("2")) {
		t.Error("writes should not commute forward")
	}
	if c.RightCommutesBackward(WriteOk("1"), WriteOk("2")) {
		t.Error("writes should not commute backward")
	}
	if !c.CommuteForward(ReadIs("1"), ReadIs("1")) {
		t.Error("reads should commute forward")
	}
	if !c.RightCommutesBackward(ReadIs("1"), ReadIs("1")) {
		t.Error("reads should commute backward")
	}
	// Identical writes converge: FC holds.
	if !c.CommuteForward(WriteOk("1"), WriteOk("1")) {
		t.Error("identical writes converge and commute forward")
	}
}

func TestRegisterMachineBeforeImage(t *testing.T) {
	r := DefaultRegister()
	m := r.Machine()
	bi := m.(BeforeImageUndoer)
	v := m.Init()
	tok := bi.CaptureBefore(v, WriteReg("2"))
	_, v1, _ := m.Apply(v, WriteReg("2"))
	und, err := bi.UndoWithBefore(v1, WriteOk("2"), tok)
	if err != nil || und.Encode() != "0" {
		t.Fatalf("undo write: %v %v", und, err)
	}
}

// TestPoolPartialNondeterministic: alloc is partial and nondeterministic in
// the spec; the machine refines it deterministically.
func TestPoolPartialNondeterministic(t *testing.T) {
	p := DefaultResourcePool()
	c := p.Checker()
	if c.Total(Alloc()) {
		t.Error("alloc should be partial (empty pool has no response)")
	}
	if c.Deterministic(Alloc()) {
		t.Error("alloc should be nondeterministic")
	}
	if !c.Total(Avail()) || !c.Deterministic(Avail()) {
		t.Error("avail should be total and deterministic")
	}
}

func TestPoolMachine(t *testing.T) {
	p := DefaultResourcePool()
	m := p.Machine()
	v := m.Init()
	res, v, err := m.Apply(v, Alloc())
	if err != nil || res != "1" {
		t.Fatalf("alloc: %v %v (machine picks lowest)", res, err)
	}
	res, v, _ = m.Apply(v, Avail())
	if res != "2" {
		t.Fatalf("avail: %v", res)
	}
	_, v, _ = m.Apply(v, Alloc())
	_, v, _ = m.Apply(v, Alloc())
	_, _, err = m.Apply(v, Alloc())
	if !errors.Is(err, ErrNotEnabled) {
		t.Fatalf("alloc on empty pool should be ErrNotEnabled, got %v", err)
	}
	res, v, err = m.Apply(v, Release(2))
	if err != nil || res != "ok" {
		t.Fatalf("release: %v %v", res, err)
	}
	if _, _, err := m.Apply(v, Release(2)); err == nil {
		t.Error("double release should fail")
	}
}

func TestPoolMachineUndo(t *testing.T) {
	p := DefaultResourcePool()
	m := p.Machine()
	v := m.Init()
	res, v1, _ := m.Apply(v, Alloc())
	und, err := m.Undo(v1, AllocGot(mustInt(string(res))))
	if err != nil || und.Encode() != "free{1,2,3}" {
		t.Fatalf("undo alloc: %v %v", und, err)
	}
	_, v2, _ := m.Apply(v1, Release(1))
	und2, err := m.Undo(v2, ReleaseOk(1))
	if err != nil || und2.Encode() != "free{2,3}" {
		t.Fatalf("undo release: %v %v", und2, err)
	}
}

// TestPoolMachineRefinesSpec: the machine's lowest-first allocation is a
// legal refinement of the nondeterministic spec.
func TestPoolMachineRefinesSpec(t *testing.T) {
	p := DefaultResourcePool()
	m := p.Machine()
	sp := p.Spec()
	v := m.Init()
	var seq spec.Seq
	script := []spec.Invocation{Alloc(), Alloc(), Avail(), Release(1), Alloc(), Avail()}
	for _, inv := range script {
		res, next, err := m.Apply(v, inv)
		if err != nil {
			t.Fatalf("Apply(%s): %v", inv, err)
		}
		seq = append(seq, spec.Op(inv, res))
		if !sp.Legal(seq) {
			t.Fatalf("machine produced spec-illegal sequence %s", seq)
		}
		v = next
	}
}

// TestAllTypesRWContainsDerived: Lemmas 11–12 instantiated per type — each
// type's RW relation contains the derived NFC and NRBC over the window
// alphabet.
func TestAllTypesRWContainsDerived(t *testing.T) {
	types := []Type{
		DefaultBankAccount(), DefaultIntSet(), DefaultFIFOQueue(),
		DefaultKVStore(), DefaultRegister(), DefaultResourcePool(),
	}
	for _, ty := range types {
		sp := ty.Spec()
		rw := ty.RW()
		nfc := ty.NFC()
		nrbc := ty.NRBC()
		for _, p := range sp.Alphabet() {
			for _, q := range sp.Alphabet() {
				if nfc.Conflicts(p, q) && !rw.Conflicts(p, q) {
					t.Errorf("%s: RW misses NFC pair (%s,%s)", ty.Name(), p, q)
				}
				if nrbc.Conflicts(p, q) && !rw.Conflicts(p, q) {
					t.Errorf("%s: RW misses NRBC pair (%s,%s)", ty.Name(), p, q)
				}
			}
		}
	}
}

// TestValueEncodeStability: Encode is canonical — applying Clone does not
// change the encoding.
func TestValueEncodeStability(t *testing.T) {
	vals := []Value{
		BAValue(7), SetValue{2: true, 1: true}, QueueValue{"a", "b"},
		KVValue{"x": "1"}, RegValue("2"), PoolValue{1: true, 3: true},
	}
	for _, v := range vals {
		if v.Clone().Encode() != v.Encode() {
			t.Errorf("Clone changes encoding for %T", v)
		}
	}
}
