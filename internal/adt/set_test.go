package adt

import (
	"testing"

	"repro/internal/spec"
)

func setFigureOps(x int, n int) []spec.Operation {
	return []spec.Operation{
		InsertAdded(x), InsertDup(x), RemoveRemoved(x), RemoveAbsent(x),
		MemberTrue(x), MemberFalse(x), SizeIs(n),
	}
}

// TestSetAnalyticMatchesDerivedNFC cross-checks the hand-derived NFC
// relation against the exact checker over the full finite alphabet.
func TestSetAnalyticMatchesDerivedNFC(t *testing.T) {
	st := DefaultIntSet()
	c := st.Checker()
	analytic := st.NFC()
	for _, p := range st.Spec().Alphabet() {
		for _, q := range st.Spec().Alphabet() {
			derived := !c.CommuteForward(p, q)
			want := analytic.Conflicts(p, q)
			if derived != want {
				t.Errorf("NFC mismatch at (%s,%s): derived=%v, analytic=%v", p, q, derived, want)
			}
		}
	}
}

// TestSetAnalyticMatchesDerivedNRBC cross-checks the hand-derived NRBC
// relation against the exact checker.
func TestSetAnalyticMatchesDerivedNRBC(t *testing.T) {
	st := DefaultIntSet()
	c := st.Checker()
	analytic := st.NRBC()
	for _, p := range st.Spec().Alphabet() {
		for _, q := range st.Spec().Alphabet() {
			derived := !c.RightCommutesBackward(p, q)
			want := analytic.Conflicts(p, q)
			if derived != want {
				t.Errorf("NRBC mismatch at (%s,%s): derived=%v, analytic=%v", p, q, derived, want)
			}
		}
	}
}

// TestSetIncomparability: the set exhibits the same incomparability as the
// bank account, with different witnesses.
func TestSetIncomparability(t *testing.T) {
	st := DefaultIntSet()
	nfc, nrbc := st.NFC(), st.NRBC()
	// Two inserts of the same element that both report "added" cannot both
	// be serialized — NFC — yet the second can always be pushed backward —
	// not NRBC (the sequence added·added is simply illegal).
	if !nfc.Conflicts(InsertAdded(1), InsertAdded(1)) {
		t.Error("(ins-added, ins-added) should be in NFC")
	}
	if nrbc.Conflicts(InsertAdded(1), InsertAdded(1)) {
		t.Error("(ins-added, ins-added) should not be in NRBC")
	}
	// A duplicate-insert after an uncommitted insert-added is fine for DU
	// (vacuous FC) but not UIP.
	if nfc.Conflicts(InsertDup(1), InsertAdded(1)) {
		t.Error("(ins-dup, ins-added) should not be in NFC")
	}
	if !nrbc.Conflicts(InsertDup(1), InsertAdded(1)) {
		t.Error("(ins-dup, ins-added) should be in NRBC")
	}
}

// TestSetDistinctElementsIndependent: operations on distinct elements never
// conflict (except via size).
func TestSetDistinctElementsIndependent(t *testing.T) {
	st := DefaultIntSet()
	nfc, nrbc := st.NFC(), st.NRBC()
	ops1 := setFigureOps(1, 0)[:6]
	ops2 := setFigureOps(2, 0)[:6]
	for _, p := range ops1 {
		for _, q := range ops2 {
			if nfc.Conflicts(p, q) {
				t.Errorf("(%s,%s) on distinct elements should not be in NFC", p, q)
			}
			if nrbc.Conflicts(p, q) {
				t.Errorf("(%s,%s) on distinct elements should not be in NRBC", p, q)
			}
		}
	}
}

func TestSetMachine(t *testing.T) {
	m := DefaultIntSet().Machine()
	v := m.Init()
	res, v, err := m.Apply(v, Insert(1))
	if err != nil || res != "added" {
		t.Fatalf("insert: %v %v", res, err)
	}
	res, v, _ = m.Apply(v, Insert(1))
	if res != "dup" {
		t.Fatalf("second insert should be dup, got %v", res)
	}
	res, v, _ = m.Apply(v, Member(1))
	if res != "true" {
		t.Fatalf("member: %v", res)
	}
	res, v, _ = m.Apply(v, Size())
	if res != "1" {
		t.Fatalf("size: %v", res)
	}
	res, v, _ = m.Apply(v, Remove(1))
	if res != "removed" {
		t.Fatalf("remove: %v", res)
	}
	res, v, _ = m.Apply(v, Remove(1))
	if res != "absent" {
		t.Fatalf("second remove should be absent, got %v", res)
	}
	if v.Encode() != "{}" {
		t.Errorf("final state = %s", v.Encode())
	}
}

func TestSetMachineUndo(t *testing.T) {
	m := DefaultIntSet().Machine()
	v := m.Init()
	_, v1, _ := m.Apply(v, Insert(2))
	und, err := m.Undo(v1, InsertAdded(2))
	if err != nil || und.Encode() != "{}" {
		t.Fatalf("undo insert-added: %v %v", und, err)
	}
	// Undo of a dup insert is a no-op.
	_, v2, _ := m.Apply(v1, Insert(2))
	und2, err := m.Undo(v2, InsertDup(2))
	if err != nil || und2.Encode() != "{2}" {
		t.Fatalf("undo insert-dup: %v %v", und2, err)
	}
	// Undo remove-removed restores the element.
	_, v3, _ := m.Apply(v1, Remove(2))
	und3, err := m.Undo(v3, RemoveRemoved(2))
	if err != nil || und3.Encode() != "{2}" {
		t.Fatalf("undo remove-removed: %v %v", und3, err)
	}
}

// TestSetMachineRefinesSpec: machine executions are legal spec sequences.
func TestSetMachineRefinesSpec(t *testing.T) {
	st := DefaultIntSet()
	m := st.Machine()
	sp := st.Spec()
	v := m.Init()
	var seq spec.Seq
	script := []spec.Invocation{
		Insert(1), Insert(2), Insert(1), Member(3), Remove(2), Size(),
		Remove(2), Member(1), Insert(3), Size(),
	}
	for _, inv := range script {
		res, next, err := m.Apply(v, inv)
		if err != nil {
			t.Fatalf("Apply(%s): %v", inv, err)
		}
		seq = append(seq, spec.Op(inv, res))
		if !sp.Legal(seq) {
			t.Fatalf("machine produced spec-illegal sequence %s", seq)
		}
		v = next
	}
}

func TestSetValueCloneIndependence(t *testing.T) {
	v := SetValue{1: true}
	c := v.Clone().(SetValue)
	c[2] = true
	if v[2] {
		t.Error("Clone shares storage")
	}
}
