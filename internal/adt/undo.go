package adt

import "repro/internal/spec"

// BeforeImageUndoer is implemented by machines whose operations cannot be
// undone from the operation alone (e.g. a key-value put overwrites the old
// value). The recovery managers capture a token before applying such an
// invocation and hand it back on undo. The token must describe only the
// state the operation overwrites (a key's cell, a register's value) — not a
// whole-object snapshot — so that undo composes with concurrent updates to
// unrelated parts of the state, exactly as the concurrency-control theory
// requires.
type BeforeImageUndoer interface {
	// CaptureBefore returns the token needed to undo inv applied to v.
	// It may return nil for read-only invocations.
	CaptureBefore(v Value, inv spec.Invocation) any
	// UndoWithBefore reverses op on v using the captured token.
	UndoWithBefore(v Value, op spec.Operation, before any) (Value, error)
}

// UndoTokenCodec is implemented by machines whose undo tokens must survive
// a durable write-ahead-log round trip: the recovery manager encodes the
// token when staging the log record (wal.EncodedUndo), and crash restart
// decodes it before handing it back to UndoWithBefore. Machines with
// purely logical undo (no before images) need no codec.
type UndoTokenCodec interface {
	// EncodeUndoToken renders a CaptureBefore token as a string.
	EncodeUndoToken(tok any) (string, error)
	// DecodeUndoToken parses a string produced by EncodeUndoToken.
	DecodeUndoToken(s string) (any, error)
}

// ValueCodec is implemented by machines whose states can be reconstructed
// from their canonical Value.Encode form. Fuzzy checkpointing requires it:
// a checkpoint stores each captured object's state as its encoding, and a
// checkpoint-seeded restart decodes it back into the value the log suffix
// is then replayed against. Machines without a ValueCodec cannot be
// checkpointed (the engine reports an error rather than silently leaving
// the object out of an otherwise-truncatable checkpoint).
type ValueCodec interface {
	// DecodeValue parses a string produced by Value.Encode into a state
	// of this machine.
	DecodeValue(s string) (Value, error)
}
