package adt

import "repro/internal/spec"

// BeforeImageUndoer is implemented by machines whose operations cannot be
// undone from the operation alone (e.g. a key-value put overwrites the old
// value). The recovery managers capture a token before applying such an
// invocation and hand it back on undo. The token must describe only the
// state the operation overwrites (a key's cell, a register's value) — not a
// whole-object snapshot — so that undo composes with concurrent updates to
// unrelated parts of the state, exactly as the concurrency-control theory
// requires.
type BeforeImageUndoer interface {
	// CaptureBefore returns the token needed to undo inv applied to v.
	// It may return nil for read-only invocations.
	CaptureBefore(v Value, inv spec.Invocation) any
	// UndoWithBefore reverses op on v using the captured token.
	UndoWithBefore(v Value, op spec.Operation, before any) (Value, error)
}
