package adt

import (
	"testing"

	"repro/internal/spec"
)

// figureOps returns representative operations for the 4×4 tables of
// Figures 6.1 and 6.2: deposit, successful withdrawal, failed withdrawal,
// balance. Amounts i=2 (rows) and j=1..3 (columns) are exercised
// separately; the table shape is amount-independent.
func figureOps(i int) []spec.Operation {
	return []spec.Operation{DepositOk(i), WithdrawOk(i), WithdrawNo(i), BalanceIs(i)}
}

// TestFig61ForwardCommutativity regenerates Figure 6.1: the forward
// commutativity relation for the bank account, derived from the
// specification with the exact checker, and compares it to the paper's
// table (encoded analytically in NFC).
func TestFig61ForwardCommutativity(t *testing.T) {
	ba := DefaultBankAccount()
	c := ba.Checker()
	analytic := ba.NFC()
	for _, i := range ba.Amounts {
		for _, j := range ba.Amounts {
			rows := figureOps(i)
			cols := figureOps(j)
			for _, p := range rows {
				for _, q := range cols {
					derived := !c.CommuteForward(p, q)
					want := analytic.Conflicts(p, q)
					if derived != want {
						t.Errorf("Fig 6.1 mismatch at (%s,%s): derived NFC=%v, paper=%v", p, q, derived, want)
					}
				}
			}
		}
	}
}

// TestFig62BackwardCommutativity regenerates Figure 6.2: the right backward
// commutativity relation, including its asymmetries.
func TestFig62BackwardCommutativity(t *testing.T) {
	ba := DefaultBankAccount()
	c := ba.Checker()
	analytic := ba.NRBC()
	for _, i := range ba.Amounts {
		for _, j := range ba.Amounts {
			rows := figureOps(i)
			cols := figureOps(j)
			for _, p := range rows {
				for _, q := range cols {
					derived := !c.RightCommutesBackward(p, q)
					want := analytic.Conflicts(p, q)
					if derived != want {
						t.Errorf("Fig 6.2 mismatch at (%s,%s): derived NRBC=%v, paper=%v", p, q, derived, want)
					}
				}
			}
		}
	}
}

// TestPaperWorkedExamples checks the two commutativity arguments worked in
// the paper's prose (Section 6.2 and 6.3).
func TestPaperWorkedExamples(t *testing.T) {
	ba := DefaultBankAccount()
	c := ba.Checker()
	// Section 6.2: successful withdrawals commute forward with deposits.
	if !c.CommuteForward(WithdrawOk(2), DepositOk(3)) {
		t.Error("withdraw-ok should commute forward with deposit")
	}
	// Successful withdrawals do not commute forward with each other.
	if c.CommuteForward(WithdrawOk(2), WithdrawOk(3)) {
		t.Error("withdraw-ok should not commute forward with withdraw-ok")
	}
	// Section 6.3: a withdrawal does not right-commute backward with a
	// deposit, but a deposit does right-commute backward with a withdrawal.
	if c.RightCommutesBackward(WithdrawOk(2), DepositOk(1)) {
		t.Error("withdraw-ok should not right-commute-backward with deposit")
	}
	if !c.RightCommutesBackward(DepositOk(1), WithdrawOk(2)) {
		t.Error("deposit should right-commute-backward with withdraw-ok")
	}
}

// TestIncomparability verifies the central corollary: NFC and NRBC are
// incomparable — each contains pairs the other excludes.
func TestIncomparability(t *testing.T) {
	ba := DefaultBankAccount()
	nfc := ba.NFC()
	nrbc := ba.NRBC()
	// (withdraw-ok, withdraw-ok) ∈ NFC \ NRBC: DU must forbid concurrent
	// successful withdrawals, UIP may allow them.
	p, q := WithdrawOk(1), WithdrawOk(2)
	if !nfc.Conflicts(p, q) {
		t.Error("(wok,wok) should be in NFC")
	}
	if nrbc.Conflicts(p, q) {
		t.Error("(wok,wok) should not be in NRBC")
	}
	// (withdraw-ok, deposit) ∈ NRBC \ NFC: UIP must forbid a withdrawal
	// running after an uncommitted deposit, DU may allow it.
	if nrbc.Conflicts(WithdrawOk(2), DepositOk(1)) == false {
		t.Error("(wok,dep) should be in NRBC")
	}
	if nfc.Conflicts(WithdrawOk(2), DepositOk(1)) {
		t.Error("(wok,dep) should not be in NFC")
	}
}

// TestNRBCAsymmetry verifies that the NRBC relation is genuinely
// asymmetric, which the paper stresses would be destroyed by requiring
// symmetric conflict relations.
func TestNRBCAsymmetry(t *testing.T) {
	nrbc := DefaultBankAccount().NRBC()
	if !nrbc.Conflicts(WithdrawOk(2), DepositOk(1)) {
		t.Error("requested wok should conflict with held dep")
	}
	if nrbc.Conflicts(DepositOk(1), WithdrawOk(2)) {
		t.Error("requested dep should not conflict with held wok")
	}
}

// TestRWContainsBoth verifies Section 8.1 for the bank account: the
// read/write relation contains both NFC and NRBC.
func TestRWContainsBoth(t *testing.T) {
	ba := DefaultBankAccount()
	rw := ba.RW()
	nfc := ba.NFC()
	nrbc := ba.NRBC()
	ops := []spec.Operation{DepositOk(1), WithdrawOk(2), WithdrawNo(3), BalanceIs(4)}
	for _, p := range ops {
		for _, q := range ops {
			if nfc.Conflicts(p, q) && !rw.Conflicts(p, q) {
				t.Errorf("RW misses NFC pair (%s,%s)", p, q)
			}
			if nrbc.Conflicts(p, q) && !rw.Conflicts(p, q) {
				t.Errorf("RW misses NRBC pair (%s,%s)", p, q)
			}
		}
	}
	if rw.Conflicts(BalanceIs(1), BalanceIs(2)) {
		t.Error("two balance reads should not conflict under RW")
	}
}

// TestBATotalDeterministic verifies the invocations of the bank account are
// total and deterministic (Section 8.2.1's premise for this type).
func TestBATotalDeterministic(t *testing.T) {
	ba := DefaultBankAccount()
	c := ba.Checker()
	for _, inv := range []spec.Invocation{Deposit(1), Deposit(3), Withdraw(1), Withdraw(2), Balance()} {
		if !c.Total(inv) {
			t.Errorf("%s should be total", inv)
		}
		if !c.Deterministic(inv) {
			t.Errorf("%s should be deterministic", inv)
		}
	}
}

// TestBAInvocationLemmas verifies FCI = RBCI = CI on the bank account
// (Lemmas 15 and 16).
func TestBAInvocationLemmas(t *testing.T) {
	ba := DefaultBankAccount()
	c := ba.Checker()
	invs := []spec.Invocation{Deposit(1), Deposit(2), Withdraw(1), Withdraw(2), Balance()}
	for _, i := range invs {
		for _, j := range invs {
			fci := c.FCI(i, j)
			rbci := c.RBCI(i, j)
			ci, err := c.CI(i, j)
			if err != nil {
				t.Fatalf("CI(%s,%s): %v", i, j, err)
			}
			if fci != ci {
				t.Errorf("Lemma 15 failed: FCI(%s,%s)=%v, CI=%v", i, j, fci, ci)
			}
			if rbci != ci {
				t.Errorf("Lemma 16 failed: RBCI(%s,%s)=%v, CI=%v", i, j, rbci, ci)
			}
		}
	}
}

// TestBAResultSensitivity: the paper's Section 8.2 point that
// invocation-based locking loses concurrency on the bank account — the
// withdraw invocation must conflict with deposit (because the failed case
// does) even though successful withdrawals commute forward with deposits.
func TestBAResultSensitivity(t *testing.T) {
	ba := DefaultBankAccount()
	c := ba.Checker()
	if c.FCI(Withdraw(2), Deposit(1)) {
		t.Error("withdraw invocation should not FCI-commute with deposit (the failed case blocks it)")
	}
	if !c.CommuteForward(WithdrawOk(2), DepositOk(1)) {
		t.Error("yet the successful withdrawal operation commutes forward with deposit")
	}
}

func TestBAMachineApply(t *testing.T) {
	m := DefaultBankAccount().Machine()
	v := m.Init()
	res, v, err := m.Apply(v, Deposit(5))
	if err != nil || res != "ok" {
		t.Fatalf("deposit: %v %v", res, err)
	}
	res, v, err = m.Apply(v, Withdraw(3))
	if err != nil || res != "ok" {
		t.Fatalf("withdraw: %v %v", res, err)
	}
	res, v, err = m.Apply(v, Balance())
	if err != nil || res != "2" {
		t.Fatalf("balance: %v %v", res, err)
	}
	res, v, err = m.Apply(v, Withdraw(3))
	if err != nil || res != "no" {
		t.Fatalf("overdraw: %v %v", res, err)
	}
	if v.Encode() != "2" {
		t.Errorf("final state = %s, want 2", v.Encode())
	}
}

func TestBAMachineUndo(t *testing.T) {
	m := DefaultBankAccount().Machine()
	v := m.Init()
	_, v1, _ := m.Apply(v, Deposit(5))
	und, err := m.Undo(v1, DepositOk(5))
	if err != nil || und.Encode() != "0" {
		t.Fatalf("undo deposit: %v %v", und, err)
	}
	_, v2, _ := m.Apply(v1, Withdraw(2))
	und2, err := m.Undo(v2, WithdrawOk(2))
	if err != nil || und2.Encode() != "5" {
		t.Fatalf("undo withdraw: %v %v", und2, err)
	}
	und3, err := m.Undo(v2, WithdrawNo(9))
	if err != nil || und3.Encode() != "3" {
		t.Fatalf("undo failed withdraw should be a no-op: %v %v", und3, err)
	}
}

// TestBAMachineRefinesSpec: every execution of the runtime machine is legal
// in the window specification (as long as it stays within the window).
func TestBAMachineRefinesSpec(t *testing.T) {
	ba := DefaultBankAccount()
	m := ba.Machine()
	sp := ba.Spec()
	v := m.Init()
	var seq spec.Seq
	script := []spec.Invocation{
		Deposit(3), Withdraw(1), Balance(), Deposit(2), Withdraw(9),
		Balance(), Withdraw(4), Deposit(1), Balance(),
	}
	for _, inv := range script {
		res, next, err := m.Apply(v, inv)
		if err != nil {
			t.Fatalf("Apply(%s): %v", inv, err)
		}
		seq = append(seq, spec.Op(inv, res))
		if !sp.Legal(seq) {
			t.Fatalf("machine produced spec-illegal sequence %s", seq)
		}
		v = next
	}
}

// TestStabilityAcrossWindowSizes: growing the window does not change the
// derived relations on the shared alphabet — evidence that the bounded
// window faithfully represents the unbounded account for these checks.
func TestStabilityAcrossWindowSizes(t *testing.T) {
	small := BankAccount{MaxBalance: 12, Amounts: []int{1, 2, 3}}
	big := BankAccount{MaxBalance: 20, Amounts: []int{1, 2, 3}}
	cs, cb := small.Checker(), big.Checker()
	ops := []spec.Operation{DepositOk(2), WithdrawOk(2), WithdrawNo(2), BalanceIs(3)}
	for _, p := range ops {
		for _, q := range ops {
			if cs.CommuteForward(p, q) != cb.CommuteForward(p, q) {
				t.Errorf("FC(%s,%s) unstable across windows", p, q)
			}
			if cs.RightCommutesBackward(p, q) != cb.RightCommutesBackward(p, q) {
				t.Errorf("RBC(%s,%s) unstable across windows", p, q)
			}
		}
	}
}

func TestIsRead(t *testing.T) {
	ba := DefaultBankAccount()
	if !IsRead(ba, BalanceIs(3)) {
		t.Error("balance should be a read")
	}
	if IsRead(ba, DepositOk(1)) {
		t.Error("deposit should not be a read")
	}
}
