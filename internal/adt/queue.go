package adt

import (
	"fmt"
	"strings"

	"repro/internal/commute"
	"repro/internal/spec"
)

// FIFOQueue is a bounded FIFO queue over a small element alphabet.
// enq(x) returns "ok" (appending x) when there is room and "full"
// otherwise; deq returns the front element (removing it) or "empty".
// Order-sensitivity makes enq/enq pairs non-commutative in both senses —
// a contrast with the bank account, where same-kind updates often commute.
type FIFOQueue struct {
	// Capacity bounds the queue length.
	Capacity int
	// Elements is the element alphabet of the window specification.
	Elements []string
}

// DefaultFIFOQueue returns the configuration used in tests:
// capacity 3 over {a, b}.
func DefaultFIFOQueue() FIFOQueue {
	return FIFOQueue{Capacity: 3, Elements: []string{"a", "b"}}
}

// Enq builds the enq(x) invocation.
func Enq(x string) spec.Invocation { return spec.NewInvocation("enq", x) }

// Deq builds the deq invocation.
func Deq() spec.Invocation { return spec.NewInvocation("deq") }

// EnqOk is [enq(x), ok].
func EnqOk(x string) spec.Operation { return spec.Op(Enq(x), "ok") }

// EnqFull is [enq(x), full].
func EnqFull(x string) spec.Operation { return spec.Op(Enq(x), "full") }

// DeqElem is [deq, x].
func DeqElem(x string) spec.Operation { return spec.Op(Deq(), spec.Response(x)) }

// DeqEmpty is [deq, empty].
func DeqEmpty() spec.Operation { return spec.Op(Deq(), "empty") }

// Name implements Type.
func (FIFOQueue) Name() string { return "fifo-queue" }

const queueSep = ";"

func encodeQueue(items []string) string {
	return "[" + strings.Join(items, queueSep) + "]"
}

func decodeQueue(s string) ([]string, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return nil, fmt.Errorf("adt: malformed queue state %q", s)
	}
	body := strings.TrimSuffix(strings.TrimPrefix(s, "["), "]")
	if body == "" {
		return nil, nil
	}
	return strings.Split(body, queueSep), nil
}

// Spec implements Type: an exact finite specification over queue contents
// of length at most Capacity.
func (t FIFOQueue) Spec() spec.Enumerable {
	var ops []spec.Operation
	for _, x := range t.Elements {
		ops = append(ops, EnqOk(x), EnqFull(x), DeqElem(x))
	}
	ops = append(ops, DeqEmpty())
	return &spec.FuncSpec{
		SpecName: t.Name(),
		Start:    []string{encodeQueue(nil)},
		Ops:      ops,
		NextFunc: func(state string, op spec.Operation) []string {
			items, err := decodeQueue(state)
			if err != nil {
				return nil
			}
			switch op.Inv.Name {
			case "enq":
				x := op.Inv.Args
				if op.Res == "ok" {
					if len(items) >= t.Capacity {
						return nil
					}
					return []string{encodeQueue(append(append([]string(nil), items...), x))}
				}
				if len(items) < t.Capacity {
					return nil
				}
				return []string{state}
			case "deq":
				if op.Res == "empty" {
					if len(items) > 0 {
						return nil
					}
					return []string{state}
				}
				if len(items) == 0 || items[0] != string(op.Res) {
					return nil
				}
				return []string{encodeQueue(items[1:])}
			}
			return nil
		},
	}
}

// Checker builds a commute.Checker over the exact finite spec.
func (t FIFOQueue) Checker() *commute.Checker { return commute.NewChecker(t.Spec()) }

// NFC implements Type; the relation is derived exactly from the finite
// window specification (and memoized per pair).
func (t FIFOQueue) NFC() commute.Relation { return t.Checker().NFCRelation() }

// NRBC implements Type; derived exactly from the window specification.
func (t FIFOQueue) NRBC() commute.Relation { return t.Checker().NRBCRelation() }

// RW implements Type: a queue has no read-only operations in this alphabet
// except failed operations; deq-empty and enq-full observe without
// mutating, but they still order against mutators, so only pairs of
// identical observers commute. We derive RW from the read-operation
// predicate of Section 8.1.
func (t FIFOQueue) RW() commute.Relation {
	return readOnlyRelation(t.Name(), func(op spec.Operation) bool {
		return op == DeqEmpty() || op.Inv.Name == "enq" && op.Res == "full"
	})
}

// Machine implements Type.
func (t FIFOQueue) Machine() Machine { return queueMachine{capacity: t.Capacity} }

// QueueValue is the runtime state of a FIFOQueue: front-first contents.
type QueueValue []string

// Clone implements Value.
func (v QueueValue) Clone() Value {
	return QueueValue(append([]string(nil), v...))
}

// Encode implements Value.
func (v QueueValue) Encode() string { return encodeQueue(v) }

type queueMachine struct{ capacity int }

func (queueMachine) Name() string { return "fifo-queue" }

func (queueMachine) Init() Value { return QueueValue(nil) }

func (m queueMachine) Apply(v Value, inv spec.Invocation) (spec.Response, Value, error) {
	q, ok := v.(QueueValue)
	if !ok {
		return "", nil, fmt.Errorf("adt: fifo-queue machine applied to %T", v)
	}
	switch inv.Name {
	case "enq":
		if len(q) >= m.capacity {
			return "full", q, nil
		}
		next := append(append(QueueValue(nil), q...), inv.Args)
		return "ok", next, nil
	case "deq":
		if len(q) == 0 {
			return "empty", q, nil
		}
		front := q[0]
		next := append(QueueValue(nil), q[1:]...)
		return spec.Response(front), next, nil
	}
	return "", nil, fmt.Errorf("adt: fifo-queue: unknown invocation %s", inv)
}

func (m queueMachine) Undo(v Value, op spec.Operation) (Value, error) {
	q, ok := v.(QueueValue)
	if !ok {
		return nil, fmt.Errorf("adt: fifo-queue machine applied to %T", v)
	}
	switch op.Inv.Name {
	case "enq":
		if op.Res != "ok" {
			return q, nil
		}
		// Logical undo: remove the most recent occurrence of the enqueued
		// element from the tail (it is the transaction's own append).
		for i := len(q) - 1; i >= 0; i-- {
			if q[i] == op.Inv.Args {
				next := append(QueueValue(nil), q[:i]...)
				next = append(next, q[i+1:]...)
				return next, nil
			}
		}
		return nil, fmt.Errorf("adt: fifo-queue: undo enq: element %q not found", op.Inv.Args)
	case "deq":
		if op.Res == "empty" {
			return q, nil
		}
		// Logical undo of a dequeue: push the element back on the front.
		next := append(QueueValue{string(op.Res)}, q...)
		return next, nil
	}
	return nil, fmt.Errorf("adt: fifo-queue: cannot undo %s", op)
}
