package adt

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/commute"
	"repro/internal/spec"
)

// IntSet is a set of small integers with result-dependent operations:
// insert reports whether the element was added or was already present,
// remove reports whether it was removed or absent, member tests
// membership, and size returns the cardinality. Like the bank account, its
// conflicts depend on operation results (insert-added conflicts differ from
// insert-dup), and its NFC and NRBC relations are incomparable:
// (insert-added, insert-added) is in NFC but not NRBC, while
// (insert-dup, insert-added) is in NRBC but not NFC.
type IntSet struct {
	// Universe lists the elements in the window specification's alphabet.
	Universe []int
}

// DefaultIntSet returns the configuration used in tests: universe {1,2,3}.
func DefaultIntSet() IntSet { return IntSet{Universe: []int{1, 2, 3}} }

// Insert builds the insert(x) invocation.
func Insert(x int) spec.Invocation { return spec.NewInvocation("insert", x) }

// Remove builds the remove(x) invocation.
func Remove(x int) spec.Invocation { return spec.NewInvocation("remove", x) }

// Member builds the member(x) invocation.
func Member(x int) spec.Invocation { return spec.NewInvocation("member", x) }

// Size builds the size invocation.
func Size() spec.Invocation { return spec.NewInvocation("size") }

// InsertAdded is [insert(x), added].
func InsertAdded(x int) spec.Operation { return spec.Op(Insert(x), "added") }

// InsertDup is [insert(x), dup].
func InsertDup(x int) spec.Operation { return spec.Op(Insert(x), "dup") }

// RemoveRemoved is [remove(x), removed].
func RemoveRemoved(x int) spec.Operation { return spec.Op(Remove(x), "removed") }

// RemoveAbsent is [remove(x), absent].
func RemoveAbsent(x int) spec.Operation { return spec.Op(Remove(x), "absent") }

// MemberTrue is [member(x), true].
func MemberTrue(x int) spec.Operation { return spec.Op(Member(x), "true") }

// MemberFalse is [member(x), false].
func MemberFalse(x int) spec.Operation { return spec.Op(Member(x), "false") }

// SizeIs is [size, n].
func SizeIs(n int) spec.Operation {
	return spec.Op(Size(), spec.Response(strconv.Itoa(n)))
}

type setKind int

const (
	setInsAdded setKind = iota
	setInsDup
	setRemRemoved
	setRemAbsent
	setMemTrue
	setMemFalse
	setSize
	setUnknown
)

func classifySet(op spec.Operation) setKind {
	switch op.Inv.Name {
	case "insert":
		if op.Res == "added" {
			return setInsAdded
		}
		return setInsDup
	case "remove":
		if op.Res == "removed" {
			return setRemRemoved
		}
		return setRemAbsent
	case "member":
		if op.Res == "true" {
			return setMemTrue
		}
		return setMemFalse
	case "size":
		return setSize
	}
	return setUnknown
}

// Name implements Type.
func (IntSet) Name() string { return "int-set" }

// encodeSet encodes a set state as the sorted comma-joined element list.
func encodeSet(m map[int]bool) string {
	var xs []int
	for x, in := range m {
		if in {
			xs = append(xs, x)
		}
	}
	sort.Ints(xs)
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func decodeSet(s string) (map[int]bool, error) {
	if !strings.HasPrefix(s, "{") || !strings.HasSuffix(s, "}") {
		return nil, fmt.Errorf("adt: malformed set state %q", s)
	}
	body := strings.TrimSuffix(strings.TrimPrefix(s, "{"), "}")
	m := make(map[int]bool)
	if body == "" {
		return m, nil
	}
	for _, p := range strings.Split(body, ",") {
		x, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("adt: malformed set element %q", p)
		}
		m[x] = true
	}
	return m, nil
}

// Spec implements Type: an exact finite specification over subsets of the
// universe.
func (t IntSet) Spec() spec.Enumerable {
	var ops []spec.Operation
	for _, x := range t.Universe {
		ops = append(ops,
			InsertAdded(x), InsertDup(x),
			RemoveRemoved(x), RemoveAbsent(x),
			MemberTrue(x), MemberFalse(x),
		)
	}
	for n := 0; n <= len(t.Universe); n++ {
		ops = append(ops, SizeIs(n))
	}
	return &spec.FuncSpec{
		SpecName: t.Name(),
		Start:    []string{"{}"},
		Ops:      ops,
		NextFunc: func(state string, op spec.Operation) []string {
			m, err := decodeSet(state)
			if err != nil {
				return nil
			}
			kind := classifySet(op)
			if kind == setSize {
				if string(op.Res) != strconv.Itoa(len(m)) {
					return nil
				}
				return []string{state}
			}
			x := mustInt(op.Inv.Args)
			switch kind {
			case setInsAdded:
				if m[x] {
					return nil
				}
				m[x] = true
				return []string{encodeSet(m)}
			case setInsDup:
				if !m[x] {
					return nil
				}
				return []string{state}
			case setRemRemoved:
				if !m[x] {
					return nil
				}
				delete(m, x)
				return []string{encodeSet(m)}
			case setRemAbsent:
				if m[x] {
					return nil
				}
				return []string{state}
			case setMemTrue:
				if !m[x] {
					return nil
				}
				return []string{state}
			case setMemFalse:
				if m[x] {
					return nil
				}
				return []string{state}
			}
			return nil
		},
	}
}

// Checker builds a commute.Checker over the exact finite spec.
func (t IntSet) Checker() *commute.Checker { return commute.NewChecker(t.Spec()) }

func sameElem(p, q spec.Operation) bool {
	return p.Inv.Args == q.Inv.Args
}

// sizeNFCConflict reports whether [size,n] conflicts (NFC) with a mutator
// of kind k over a universe of u elements: the two must be co-enabled in
// some state, which excludes n = u for insert-added and n = 0 for
// remove-removed.
func sizeNFCConflict(n, u int, k setKind) bool {
	switch k {
	case setInsAdded:
		return n < u
	case setRemRemoved:
		return n >= 1
	}
	return false
}

// NFC implements Type (closed-form; cross-checked against the derived
// relation in tests). Operations on distinct elements never conflict except
// through size, which observes the whole set.
func (t IntSet) NFC() commute.Relation {
	u := len(t.Universe)
	return commute.RelationFunc{
		RelName: "NFC(int-set)",
		F: func(p, q spec.Operation) bool {
			kp, kq := classifySet(p), classifySet(q)
			if kp == setSize {
				return sizeNFCConflict(mustInt(string(p.Res)), u, kq)
			}
			if kq == setSize {
				return sizeNFCConflict(mustInt(string(q.Res)), u, kp)
			}
			if !sameElem(p, q) {
				return false
			}
			type pair struct{ a, b setKind }
			conflict := map[pair]bool{
				{setInsAdded, setInsAdded}:     true,
				{setInsAdded, setRemAbsent}:    true,
				{setInsAdded, setMemFalse}:     true,
				{setInsDup, setRemRemoved}:     true,
				{setRemRemoved, setRemRemoved}: true,
				{setRemRemoved, setMemTrue}:    true,
			}
			return conflict[pair{kp, kq}] || conflict[pair{kq, kp}]
		},
	}
}

// NRBC implements Type (closed-form; requested p against held q). The size
// boundary cases mirror sizeNFCConflict: a requested [size,n] can follow a
// held insert-added only if n ≥ 1 and a held remove-removed only if
// n ≤ u-1; dually for a requested mutator against a held size.
func (t IntSet) NRBC() commute.Relation {
	u := len(t.Universe)
	return commute.RelationFunc{
		RelName: "NRBC(int-set)",
		F: func(p, q spec.Operation) bool {
			kp, kq := classifySet(p), classifySet(q)
			if kp == setSize {
				n := mustInt(string(p.Res))
				switch kq {
				case setInsAdded:
					return n >= 1
				case setRemRemoved:
					return n <= u-1
				}
				return false
			}
			if kq == setSize {
				n := mustInt(string(q.Res))
				switch kp {
				case setInsAdded:
					return n <= u-1
				case setRemRemoved:
					return n >= 1
				}
				return false
			}
			if !sameElem(p, q) {
				return false
			}
			type pair struct{ p, q setKind }
			conflict := map[pair]bool{
				{setInsAdded, setRemRemoved}:  true,
				{setInsAdded, setRemAbsent}:   true,
				{setInsAdded, setMemFalse}:    true,
				{setInsDup, setInsAdded}:      true,
				{setRemRemoved, setInsAdded}:  true,
				{setRemRemoved, setInsDup}:    true,
				{setRemRemoved, setMemTrue}:   true,
				{setRemAbsent, setRemRemoved}: true,
				{setMemTrue, setInsAdded}:     true,
				{setMemFalse, setRemRemoved}:  true,
			}
			return conflict[pair{kp, kq}]
		},
	}
}

// RW implements Type: member and size are the read operations.
func (t IntSet) RW() commute.Relation {
	return readOnlyRelation(t.Name(), func(op spec.Operation) bool {
		k := classifySet(op)
		return k == setMemTrue || k == setMemFalse || k == setSize
	})
}

// Machine implements Type.
func (t IntSet) Machine() Machine { return setMachine{} }

// SetValue is the runtime state of an IntSet.
type SetValue map[int]bool

// Clone implements Value.
func (v SetValue) Clone() Value {
	out := make(SetValue, len(v))
	for k, b := range v {
		if b {
			out[k] = true
		}
	}
	return out
}

// Encode implements Value.
func (v SetValue) Encode() string { return encodeSet(v) }

type setMachine struct{}

func (setMachine) Name() string { return "int-set" }

func (setMachine) Init() Value { return SetValue{} }

func (setMachine) Apply(v Value, inv spec.Invocation) (spec.Response, Value, error) {
	s, ok := v.(SetValue)
	if !ok {
		return "", nil, fmt.Errorf("adt: int-set machine applied to %T", v)
	}
	switch inv.Name {
	case "insert":
		x := mustInt(inv.Args)
		if s[x] {
			return "dup", s, nil
		}
		next := s.Clone().(SetValue)
		next[x] = true
		return "added", next, nil
	case "remove":
		x := mustInt(inv.Args)
		if !s[x] {
			return "absent", s, nil
		}
		next := s.Clone().(SetValue)
		delete(next, x)
		return "removed", next, nil
	case "member":
		x := mustInt(inv.Args)
		if s[x] {
			return "true", s, nil
		}
		return "false", s, nil
	case "size":
		n := 0
		for _, b := range s {
			if b {
				n++
			}
		}
		return spec.Response(strconv.Itoa(n)), s, nil
	}
	return "", nil, fmt.Errorf("adt: int-set: unknown invocation %s", inv)
}

func (setMachine) Undo(v Value, op spec.Operation) (Value, error) {
	s, ok := v.(SetValue)
	if !ok {
		return nil, fmt.Errorf("adt: int-set machine applied to %T", v)
	}
	switch classifySet(op) {
	case setInsAdded:
		next := s.Clone().(SetValue)
		delete(next, mustInt(op.Inv.Args))
		return next, nil
	case setRemRemoved:
		next := s.Clone().(SetValue)
		next[mustInt(op.Inv.Args)] = true
		return next, nil
	case setInsDup, setRemAbsent, setMemTrue, setMemFalse, setSize:
		return s, nil
	}
	return nil, fmt.Errorf("adt: int-set: cannot undo %s", op)
}
