package adt

import (
	"fmt"
	"strconv"

	"repro/internal/commute"
	"repro/internal/spec"
)

// Bank account operations (paper, Section 3.2): deposit(i) always succeeds;
// withdraw(i) returns "ok" and debits iff the balance is at least i, and
// "no" otherwise; balance returns the current balance. All invocations are
// total and deterministic, but the operations' conflicts depend on results
// (Figures 6.1 and 6.2), making the account the paper's central example of
// result-dependent locking and of the NFC/NRBC incomparability.

// Deposit builds the deposit(i) invocation.
func Deposit(i int) spec.Invocation { return spec.NewInvocation("deposit", i) }

// Withdraw builds the withdraw(i) invocation.
func Withdraw(i int) spec.Invocation { return spec.NewInvocation("withdraw", i) }

// Balance builds the balance invocation.
func Balance() spec.Invocation { return spec.NewInvocation("balance") }

// DepositOk is the operation [deposit(i), ok].
func DepositOk(i int) spec.Operation { return spec.Op(Deposit(i), "ok") }

// WithdrawOk is the operation [withdraw(i), ok].
func WithdrawOk(i int) spec.Operation { return spec.Op(Withdraw(i), "ok") }

// WithdrawNo is the operation [withdraw(i), no].
func WithdrawNo(i int) spec.Operation { return spec.Op(Withdraw(i), "no") }

// BalanceIs is the operation [balance, b].
func BalanceIs(b int) spec.Operation {
	return spec.Op(Balance(), spec.Response(strconv.Itoa(b)))
}

// baKind classifies a bank-account operation for the analytic relations.
type baKind int

const (
	baDeposit baKind = iota
	baWithdrawOk
	baWithdrawNo
	baBalance
	baUnknown
)

func classifyBA(op spec.Operation) baKind {
	switch op.Inv.Name {
	case "deposit":
		return baDeposit
	case "withdraw":
		if op.Res == "ok" {
			return baWithdrawOk
		}
		return baWithdrawNo
	case "balance":
		return baBalance
	}
	return baUnknown
}

// BankAccount is the bank-account Type. InitialBalance seeds the runtime
// machine; MaxBalance and Amounts bound the window spec used by the exact
// decision procedures.
type BankAccount struct {
	// InitialBalance is the starting balance of the runtime machine.
	InitialBalance int
	// MaxBalance caps the window specification's state space.
	MaxBalance int
	// Amounts are the deposit/withdraw amounts included in the window
	// specification's alphabet.
	Amounts []int
}

// DefaultBankAccount returns the configuration used by the figure
// regeneration and tests: balances 0..12, amounts {1, 2, 3}.
func DefaultBankAccount() BankAccount {
	return BankAccount{InitialBalance: 0, MaxBalance: 12, Amounts: []int{1, 2, 3}}
}

// Name implements Type.
func (BankAccount) Name() string { return "bank-account" }

// Spec implements Type: a deterministic FuncSpec whose states are balances
// "0".."MaxBalance". Deposits that would exceed the cap are illegal in the
// window; callers quantifying over prefixes must therefore restrict α to
// CoreStates (see AlphaRestriction) so cap effects never distort the
// FC/RBC checks. Distinct balances are separated by the balance operation,
// so the looks-like relation is unaffected by the cap.
func (b BankAccount) Spec() spec.Enumerable {
	var ops []spec.Operation
	for _, i := range b.Amounts {
		ops = append(ops, DepositOk(i), WithdrawOk(i), WithdrawNo(i))
	}
	for v := 0; v <= b.MaxBalance; v++ {
		ops = append(ops, BalanceIs(v))
	}
	return &spec.FuncSpec{
		SpecName: b.Name(),
		Start:    []string{strconv.Itoa(b.InitialBalance)},
		Ops:      ops,
		NextFunc: func(state string, op spec.Operation) []string {
			s, err := strconv.Atoi(state)
			if err != nil {
				return nil
			}
			switch classifyBA(op) {
			case baDeposit:
				i := mustInt(op.Inv.Args)
				if s+i > b.MaxBalance {
					return nil
				}
				return []string{strconv.Itoa(s + i)}
			case baWithdrawOk:
				i := mustInt(op.Inv.Args)
				if s < i {
					return nil
				}
				return []string{strconv.Itoa(s - i)}
			case baWithdrawNo:
				i := mustInt(op.Inv.Args)
				if s >= i {
					return nil
				}
				return []string{state}
			case baBalance:
				if string(op.Res) != state {
					return nil
				}
				return []string{state}
			}
			return nil
		},
	}
}

// AlphaRestriction returns the commute.Option restricting quantification
// over prefixes to balances at most MaxBalance minus headroom, so that the
// two quantified operations can never collide with the window cap. A
// headroom of twice the largest amount is always sufficient for the
// pairwise FC/RBC checks.
func (b BankAccount) AlphaRestriction() commute.Option {
	maxAmt := 0
	for _, a := range b.Amounts {
		if a > maxAmt {
			maxAmt = a
		}
	}
	limit := b.MaxBalance - 2*maxAmt
	return commute.WithAlphaRestriction(func(states []string) bool {
		for _, s := range states {
			v, err := strconv.Atoi(s)
			if err != nil || v > limit {
				return false
			}
		}
		return true
	})
}

// Checker builds a commute.Checker for the window spec with the α
// restriction applied.
func (b BankAccount) Checker() *commute.Checker {
	return commute.NewChecker(b.Spec(), b.AlphaRestriction())
}

// amount returns the integer amount of a deposit/withdraw operation.
func amount(op spec.Operation) int { return mustInt(op.Inv.Args) }

// balanceVal returns the integer result of a balance operation.
func balanceVal(op spec.Operation) int { return mustInt(string(op.Res)) }

// NFC implements Type: the exact non-forward-commuting pairs, closed-form
// for all positive amounts. At the kind level this is Figure 6.1 —
// deposits conflict with failed withdrawals and balances; successful
// withdrawals conflict with each other and with balances — refined by the
// one value condition the figure's symbolic entries leave implicit:
// [withdraw(i),ok] and [balance,b] can both be legal (and hence conflict)
// only when b ≥ i.
func (BankAccount) NFC() commute.Relation {
	return commute.RelationFunc{
		RelName: "NFC(bank-account)",
		F: func(p, q spec.Operation) bool {
			kp, kq := classifyBA(p), classifyBA(q)
			switch {
			case kp == baDeposit && kq == baWithdrawNo,
				kp == baWithdrawNo && kq == baDeposit,
				kp == baDeposit && kq == baBalance,
				kp == baBalance && kq == baDeposit,
				kp == baWithdrawOk && kq == baWithdrawOk:
				return true
			case kp == baWithdrawOk && kq == baBalance:
				return balanceVal(q) >= amount(p)
			case kp == baBalance && kq == baWithdrawOk:
				return balanceVal(p) >= amount(q)
			}
			return false
		},
	}
}

// NRBC implements Type: the exact non-right-backward-commuting pairs,
// closed-form for all positive amounts. At the kind level this is
// Figure 6.2, refined by the value conditions the figure's symbolic entries
// leave implicit ([withdraw(i),ok] against [balance,b] and [balance,b]
// against [deposit(i),ok] can only conflict when b ≥ i). The relation is
// asymmetric: a requested successful withdrawal conflicts with a held
// deposit (the withdrawal cannot be pushed before the deposit), but a
// requested deposit does not conflict with a held successful withdrawal.
func (BankAccount) NRBC() commute.Relation {
	return commute.RelationFunc{
		RelName: "NRBC(bank-account)",
		F: func(p, q spec.Operation) bool {
			kp, kq := classifyBA(p), classifyBA(q)
			switch {
			case kp == baDeposit && kq == baWithdrawNo,
				kp == baDeposit && kq == baBalance,
				kp == baWithdrawOk && kq == baDeposit,
				kp == baWithdrawNo && kq == baWithdrawOk,
				kp == baBalance && kq == baWithdrawOk:
				return true
			case kp == baWithdrawOk && kq == baBalance:
				return balanceVal(q) >= amount(p)
			case kp == baBalance && kq == baDeposit:
				return balanceVal(p) >= amount(q)
			}
			return false
		},
	}
}

// RW implements Type: only balance is a read operation.
func (b BankAccount) RW() commute.Relation {
	return readOnlyRelation(b.Name(), func(op spec.Operation) bool {
		return classifyBA(op) == baBalance
	})
}

// Machine implements Type.
func (b BankAccount) Machine() Machine { return baMachine{initial: b.InitialBalance} }

// BAValue is the runtime state of a bank account: its balance.
type BAValue int

// Clone implements Value.
func (v BAValue) Clone() Value { return v }

// Encode implements Value.
func (v BAValue) Encode() string { return strconv.Itoa(int(v)) }

type baMachine struct{ initial int }

func (baMachine) Name() string { return "bank-account" }

func (m baMachine) Init() Value { return BAValue(m.initial) }

func (m baMachine) Apply(v Value, inv spec.Invocation) (spec.Response, Value, error) {
	bal, ok := v.(BAValue)
	if !ok {
		return "", nil, fmt.Errorf("adt: bank-account machine applied to %T", v)
	}
	switch inv.Name {
	case "deposit":
		i := mustInt(inv.Args)
		return "ok", bal + BAValue(i), nil
	case "withdraw":
		i := mustInt(inv.Args)
		if int(bal) >= i {
			return "ok", bal - BAValue(i), nil
		}
		return "no", bal, nil
	case "balance":
		return spec.Response(strconv.Itoa(int(bal))), bal, nil
	}
	return "", nil, fmt.Errorf("adt: bank-account: unknown invocation %s", inv)
}

// DecodeValue implements ValueCodec: a bank-account state is its balance.
func (baMachine) DecodeValue(s string) (Value, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return nil, fmt.Errorf("adt: bank-account: bad encoded state %q: %w", s, err)
	}
	return BAValue(n), nil
}

func (m baMachine) Undo(v Value, op spec.Operation) (Value, error) {
	bal, ok := v.(BAValue)
	if !ok {
		return nil, fmt.Errorf("adt: bank-account machine applied to %T", v)
	}
	switch classifyBA(op) {
	case baDeposit:
		return bal - BAValue(mustInt(op.Inv.Args)), nil
	case baWithdrawOk:
		return bal + BAValue(mustInt(op.Inv.Args)), nil
	case baWithdrawNo, baBalance:
		return bal, nil
	}
	return nil, fmt.Errorf("adt: bank-account: cannot undo %s", op)
}
