package adt

import (
	"testing"

	"repro/internal/commute"
	"repro/internal/spec"
)

// TestPartialSpecA reproduces Section 8.2.2.1's first example: with partial
// deterministic invocations, RBCI need not be contained in FCI.
func TestPartialSpecA(t *testing.T) {
	sp := PartialSpecA()
	c := commute.NewChecker(sp)
	// Sanity: the language is exactly {Λ, [I,Q], [J,R]}.
	if !sp.Legal(spec.Seq{OpIQ}) || !sp.Legal(spec.Seq{OpJR}) {
		t.Fatal("single operations should be legal")
	}
	if sp.Legal(spec.Seq{OpIQ, OpJR}) || sp.Legal(spec.Seq{OpJR, OpIQ}) {
		t.Fatal("no two-operation sequence is legal")
	}
	// I and J are partial (illegal after the first operation) but
	// deterministic.
	if c.Total(InvI) || c.Total(InvJ) {
		t.Error("I and J should be partial")
	}
	if !c.Deterministic(InvI) || !c.Deterministic(InvJ) {
		t.Error("I and J should be deterministic")
	}
	// (I,J) ∈ RBCI but (I,J) ∉ FCI.
	if !c.RBCI(InvI, InvJ) {
		t.Error("I should right-commute-backward with J (all two-op sequences illegal)")
	}
	if c.FCI(InvI, InvJ) {
		t.Error("I should not forward-commute with J")
	}
}

// TestPartialSpecB reproduces Section 8.2.2.1's second example: FCI need
// not be contained in RBCI.
func TestPartialSpecB(t *testing.T) {
	sp := PartialSpecB()
	c := commute.NewChecker(sp)
	if !sp.Legal(spec.Seq{OpJR, OpIQ}) {
		t.Fatal("[J,R]·[I,Q] should be legal")
	}
	if sp.Legal(spec.Seq{OpIQ}) {
		t.Fatal("[I,Q] should be illegal in the initial state")
	}
	if !c.FCI(InvI, InvJ) {
		t.Error("(I,J) should be in FCI (at least one is illegal in every state)")
	}
	if c.RBCI(InvI, InvJ) {
		t.Error("(I,J) should not be in RBCI ([J,R]·[I,Q] legal, [I,Q]·[J,R] illegal)")
	}
}

// TestNondetSpecC reproduces Section 8.2.2.2's first example: with
// nondeterministic total invocations, RBCI ⊄ FCI.
func TestNondetSpecC(t *testing.T) {
	sp := NondetSpecC()
	c := commute.NewChecker(sp)
	// I and J are total but nondeterministic.
	for _, inv := range []spec.Invocation{InvI, InvJ} {
		if !c.Total(inv) {
			t.Errorf("%s should be total", inv)
		}
		if c.Deterministic(inv) {
			t.Errorf("%s should be nondeterministic", inv)
		}
	}
	// (I,J) ∉ FCI: [I,Q] and [J,R] are each legal initially, but no
	// sequence containing both is legal.
	if c.FCI(InvI, InvJ) {
		t.Error("(I,J) should not be in FCI")
	}
	if !c.CommuteForward(OpIQ, OpJQ) {
		t.Error("[I,Q] and [J,Q] should commute forward")
	}
	if c.CommuteForward(OpIQ, OpJR) {
		t.Error("[I,Q] and [J,R] should not commute forward")
	}
	// (I,J) ∈ RBCI: in any legal α[J,y][I,x], x = y, and swapping is legal
	// and equieffective.
	if !c.RBCI(InvI, InvJ) {
		t.Error("(I,J) should be in RBCI")
	}
}

// TestNondetSpecD reproduces Section 8.2.2.2's second example: FCI ⊄ RBCI
// for nondeterministic invocations.
func TestNondetSpecD(t *testing.T) {
	sp := NondetSpecD()
	c := commute.NewChecker(sp)
	if !c.FCI(InvI, InvJ) {
		t.Error("(I,J) should be in FCI")
	}
	if c.RBCI(InvI, InvJ) {
		t.Error("(I,J) should not be in RBCI")
	}
	// The paper's witness: [J,T]·[I,R] is legal but [I,R]·[J,T] is not.
	if !sp.Legal(spec.Seq{OpJT, OpIR}) {
		t.Error("[J,T]·[I,R] should be legal")
	}
	if sp.Legal(spec.Seq{OpIR, OpJT}) {
		t.Error("[I,R]·[J,T] should be illegal")
	}
}

// TestTableI reproduces Table I (Section 8.2.2.3): the non-local effect of
// a partial invocation on two total, deterministic invocations.
func TestTableI(t *testing.T) {
	sp := TableISpec()
	c := commute.NewChecker(sp)
	// I and J are total and deterministic; K is partial.
	for _, inv := range []spec.Invocation{InvI, InvJ} {
		if !c.Total(inv) {
			t.Errorf("%s should be total", inv)
		}
		if !c.Deterministic(inv) {
			t.Errorf("%s should be deterministic", inv)
		}
	}
	if c.Total(InvK) {
		t.Error("K should be partial")
	}
	if !c.Deterministic(InvK) {
		t.Error("K should be deterministic")
	}
	// State 5 looks like state 4 but not vice versa: J·I reaches 5, I·J
	// reaches 4, and only state 4 enables K.
	ji := spec.Seq{OpJR, OpIQ} // reaches state 5
	ij := spec.Seq{OpIQ, OpJR} // reaches state 4
	if !c.LooksLike(ji, ij) {
		t.Error("J·I (state 5) should look like I·J (state 4)")
	}
	if c.LooksLike(ij, ji) {
		t.Error("I·J (state 4) should not look like J·I (state 5): K distinguishes")
	}
	// I right commutes backward with J, but not vice versa.
	if !c.RightCommutesBackward(OpIQ, OpJR) {
		t.Error("I should right-commute-backward with J")
	}
	if c.RightCommutesBackward(OpJR, OpIQ) {
		t.Error("J should not right-commute-backward with I")
	}
	// Yet (I,J) ∉ CI: in state 0 the two orders are not equieffective.
	ci, err := c.CI(InvI, InvJ)
	if err != nil {
		t.Fatalf("CI: %v", err)
	}
	if ci {
		t.Error("(I,J) should not commute (CI) on the Table I automaton")
	}
	// Lemma 17 still holds: FCI = CI for total deterministic I, J even with
	// a partial K present.
	if c.FCI(InvI, InvJ) != ci {
		t.Error("Lemma 17 violated: FCI(I,J) must equal CI(I,J)")
	}
}

// TestTableINondet reproduces the nondeterministic modification at the end
// of Section 8.2.2.3: a total-but-nondeterministic K causes the same
// non-local divergence.
func TestTableINondet(t *testing.T) {
	sp := TableINondetSpec()
	c := commute.NewChecker(sp)
	if !c.Total(InvK) {
		t.Error("K should be total in the nondeterministic variant")
	}
	if c.Deterministic(InvK) {
		t.Error("K should be nondeterministic in state 4")
	}
	ji := spec.Seq{OpJR, OpIQ}
	ij := spec.Seq{OpIQ, OpJR}
	if !c.LooksLike(ji, ij) || c.LooksLike(ij, ji) {
		t.Error("state 5 should look like state 4 but not conversely")
	}
	if !c.RightCommutesBackward(OpIQ, OpJR) {
		t.Error("I should right-commute-backward with J")
	}
	ci, err := c.CI(InvI, InvJ)
	if err != nil {
		t.Fatalf("CI: %v", err)
	}
	if ci {
		t.Error("(I,J) should not commute (CI)")
	}
}

// TestCIImpliesRBCIForTotalDeterministic checks the converse noted at the
// very end of Section 8.2.2.3: if I and J are total and deterministic and
// (I,J) ∈ CI, then (I,J) ∈ RBCI, regardless of other invocations — here on
// the bank account and register, where CI pairs exist.
func TestCIImpliesRBCIForTotalDeterministic(t *testing.T) {
	ba := DefaultBankAccount()
	c := ba.Checker()
	pairs := [][2]spec.Invocation{
		{Deposit(1), Deposit(2)},
		{Withdraw(1), Balance()},
		{Deposit(2), Withdraw(3)},
	}
	for _, pr := range pairs {
		ci, err := c.CI(pr[0], pr[1])
		if err != nil {
			t.Fatalf("CI(%s,%s): %v", pr[0], pr[1], err)
		}
		if ci && !c.RBCI(pr[0], pr[1]) {
			t.Errorf("CI(%s,%s) holds but RBCI does not", pr[0], pr[1])
		}
	}
}
