package adt

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/commute"
	"repro/internal/spec"
)

// KVStore is a key-value store: put(k,v) overwrites, get(k) returns the
// value or "nil", del(k) removes (total: deleting an absent key succeeds).
// Operations on distinct keys commute in both senses; on the same key,
// put/put and put/get order, giving the familiar per-key write/read
// conflict structure of record stores.
type KVStore struct {
	// Keys and Values bound the window specification's alphabet.
	Keys   []string
	Values []string
}

// DefaultKVStore returns the configuration used in tests:
// keys {x, y}, values {0, 1}.
func DefaultKVStore() KVStore {
	return KVStore{Keys: []string{"x", "y"}, Values: []string{"0", "1"}}
}

// Put builds the put(k,v) invocation.
func Put(k, v string) spec.Invocation { return spec.NewInvocation("put", k, v) }

// Get builds the get(k) invocation.
func Get(k string) spec.Invocation { return spec.NewInvocation("get", k) }

// Del builds the del(k) invocation.
func Del(k string) spec.Invocation { return spec.NewInvocation("del", k) }

// PutOk is [put(k,v), ok].
func PutOk(k, v string) spec.Operation { return spec.Op(Put(k, v), "ok") }

// GetIs is [get(k), v]; use "nil" for an unset key.
func GetIs(k, v string) spec.Operation { return spec.Op(Get(k), spec.Response(v)) }

// DelOk is [del(k), ok].
func DelOk(k string) spec.Operation { return spec.Op(Del(k), "ok") }

// Name implements Type.
func (KVStore) Name() string { return "kv-store" }

func encodeKV(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + m[k]
	}
	return "<" + strings.Join(parts, ",") + ">"
}

func decodeKV(s string) (map[string]string, error) {
	if !strings.HasPrefix(s, "<") || !strings.HasSuffix(s, ">") {
		return nil, fmt.Errorf("adt: malformed kv state %q", s)
	}
	body := strings.TrimSuffix(strings.TrimPrefix(s, "<"), ">")
	m := make(map[string]string)
	if body == "" {
		return m, nil
	}
	for _, p := range strings.Split(body, ",") {
		kv := strings.SplitN(p, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("adt: malformed kv pair %q", p)
		}
		m[kv[0]] = kv[1]
	}
	return m, nil
}

// Spec implements Type: an exact finite specification over assignments of
// the key alphabet to values (or unset).
func (t KVStore) Spec() spec.Enumerable {
	var ops []spec.Operation
	for _, k := range t.Keys {
		for _, v := range t.Values {
			ops = append(ops, PutOk(k, v), GetIs(k, v))
		}
		ops = append(ops, GetIs(k, "nil"), DelOk(k))
	}
	return &spec.FuncSpec{
		SpecName: t.Name(),
		Start:    []string{encodeKV(map[string]string{})},
		Ops:      ops,
		NextFunc: func(state string, op spec.Operation) []string {
			m, err := decodeKV(state)
			if err != nil {
				return nil
			}
			args := op.Inv.ArgList()
			switch op.Inv.Name {
			case "put":
				m[args[0]] = args[1]
				return []string{encodeKV(m)}
			case "get":
				cur, ok := m[args[0]]
				if !ok {
					cur = "nil"
				}
				if string(op.Res) != cur {
					return nil
				}
				return []string{state}
			case "del":
				delete(m, args[0])
				return []string{encodeKV(m)}
			}
			return nil
		},
	}
}

// Checker builds a commute.Checker over the exact finite spec.
func (t KVStore) Checker() *commute.Checker { return commute.NewChecker(t.Spec()) }

// NFC implements Type; derived exactly from the window specification.
func (t KVStore) NFC() commute.Relation { return t.Checker().NFCRelation() }

// NRBC implements Type; derived exactly from the window specification.
func (t KVStore) NRBC() commute.Relation { return t.Checker().NRBCRelation() }

// RW implements Type: get is the read operation.
func (t KVStore) RW() commute.Relation {
	return readOnlyRelation(t.Name(), func(op spec.Operation) bool {
		return op.Inv.Name == "get"
	})
}

// Machine implements Type.
func (t KVStore) Machine() Machine { return kvMachine{} }

// KVValue is the runtime state of a KVStore.
type KVValue map[string]string

// Clone implements Value.
func (v KVValue) Clone() Value {
	out := make(KVValue, len(v))
	for k, val := range v {
		out[k] = val
	}
	return out
}

// Encode implements Value.
func (v KVValue) Encode() string { return encodeKV(v) }

type kvMachine struct{}

func (kvMachine) Name() string { return "kv-store" }

func (kvMachine) Init() Value { return KVValue{} }

func (kvMachine) Apply(v Value, inv spec.Invocation) (spec.Response, Value, error) {
	m, ok := v.(KVValue)
	if !ok {
		return "", nil, fmt.Errorf("adt: kv-store machine applied to %T", v)
	}
	args := inv.ArgList()
	switch inv.Name {
	case "put":
		next := m.Clone().(KVValue)
		next[args[0]] = args[1]
		return "ok", next, nil
	case "get":
		cur, ok := m[args[0]]
		if !ok {
			cur = "nil"
		}
		return spec.Response(cur), m, nil
	case "del":
		next := m.Clone().(KVValue)
		delete(next, args[0])
		return "ok", next, nil
	}
	return "", nil, fmt.Errorf("adt: kv-store: unknown invocation %s", inv)
}

// DecodeValue implements ValueCodec: the canonical sorted key=value
// encoding round-trips through decodeKV.
func (kvMachine) DecodeValue(s string) (Value, error) {
	m, err := decodeKV(s)
	if err != nil {
		return nil, fmt.Errorf("adt: kv-store: bad encoded state %q: %w", s, err)
	}
	return KVValue(m), nil
}

// Undo for a KV store is not purely logical: undoing a put requires the
// overwritten value. The recovery managers therefore record the
// before-value in the operation's undo record via PutUndo. For the plain
// Machine interface, Undo of put/del is unsupported and returns an error;
// the engine pairs KVStore with before-value undo records (see
// internal/recovery).
func (kvMachine) Undo(v Value, op spec.Operation) (Value, error) {
	m, ok := v.(KVValue)
	if !ok {
		return nil, fmt.Errorf("adt: kv-store machine applied to %T", v)
	}
	if op.Inv.Name == "get" {
		return m, nil
	}
	return nil, fmt.Errorf("adt: kv-store: %s requires before-value undo (use recovery.BeforeValueUndo)", op)
}

// kvBefore is the before-image of a single key's cell.
type kvBefore struct {
	key     string
	val     string
	present bool
}

// CaptureBefore implements BeforeImageUndoer: puts and dels capture the
// affected key's previous cell; gets capture nothing.
func (kvMachine) CaptureBefore(v Value, inv spec.Invocation) any {
	if inv.Name == "get" {
		return nil
	}
	m, ok := v.(KVValue)
	if !ok {
		return nil
	}
	key := inv.ArgList()[0]
	val, present := m[key]
	return kvBefore{key: key, val: val, present: present}
}

// UndoWithBefore implements BeforeImageUndoer: restores the single affected
// key's cell, leaving concurrent updates to other keys intact.
func (kvMachine) UndoWithBefore(v Value, op spec.Operation, before any) (Value, error) {
	m, ok := v.(KVValue)
	if !ok {
		return nil, fmt.Errorf("adt: kv-store machine applied to %T", v)
	}
	if op.Inv.Name == "get" {
		return m, nil
	}
	b, ok := before.(kvBefore)
	if !ok {
		return nil, fmt.Errorf("adt: kv-store: bad before-image %T", before)
	}
	next := m.Clone().(KVValue)
	if b.present {
		next[b.key] = b.val
	} else {
		delete(next, b.key)
	}
	return next, nil
}

// kvBeforeWire is the durable rendering of kvBefore.
type kvBeforeWire struct {
	Key     string `json:"k"`
	Val     string `json:"v"`
	Present bool   `json:"p"`
}

// EncodeUndoToken implements UndoTokenCodec.
func (kvMachine) EncodeUndoToken(tok any) (string, error) {
	b, ok := tok.(kvBefore)
	if !ok {
		return "", fmt.Errorf("adt: kv-store: cannot encode undo token %T", tok)
	}
	buf, err := json.Marshal(kvBeforeWire{Key: b.key, Val: b.val, Present: b.present})
	if err != nil {
		return "", err
	}
	return string(buf), nil
}

// DecodeUndoToken implements UndoTokenCodec.
func (kvMachine) DecodeUndoToken(s string) (any, error) {
	var w kvBeforeWire
	if err := json.Unmarshal([]byte(s), &w); err != nil {
		return nil, fmt.Errorf("adt: kv-store: bad undo token %q: %w", s, err)
	}
	return kvBefore{key: w.Key, val: w.Val, present: w.Present}, nil
}
