// Package adt implements the abstract data types used throughout the
// reproduction: the paper's running bank-account example, several classic
// types (set, FIFO queue, key-value store, read/write register), the
// partial/nondeterministic resource pool motivating Section 8.2.2, and the
// exact counterexample specifications of Sections 8.2.2.1–8.2.2.3
// (including the Table I automaton).
//
// Each type supplies three coordinated artifacts:
//
//   - a serial specification (spec.Enumerable) over a bounded, finite
//     window, consumed by the exact decision procedures in package commute;
//   - a runtime machine (Machine) executing operations on concrete state
//     with logical (operation) undo, consumed by the recovery managers and
//     the transaction engine;
//   - closed-form analytic conflict relations (NFC, NRBC, read/write),
//     valid for unbounded parameters, consumed by the engine and
//     cross-checked against the derived relations in tests.
package adt

import (
	"errors"
	"fmt"

	"repro/internal/commute"
	"repro/internal/spec"
)

// ErrNotEnabled is returned by Machine.Apply when the invocation is partial
// and has no legal response in the current state (e.g. allocating from an
// empty resource pool).
var ErrNotEnabled = errors.New("adt: invocation not enabled in current state")

// Value is a runtime object state. Implementations are immutable from the
// caller's perspective: Apply and Undo return new values.
type Value interface {
	// Clone returns a deep copy.
	Clone() Value
	// Encode returns a canonical string encoding (used as spec state and in
	// logs).
	Encode() string
}

// Machine executes operations on runtime states. A Machine is a
// deterministic refinement of its type's serial specification: Apply picks
// one legal response (for nondeterministic specs, a documented rule such as
// "lowest-numbered free resource").
type Machine interface {
	Name() string
	// Init returns the initial state.
	Init() Value
	// Apply executes inv on v, returning the response and the new state.
	// It returns ErrNotEnabled for partial invocations with no legal
	// response.
	Apply(v Value, inv spec.Invocation) (spec.Response, Value, error)
	// Undo reverses the state effect of op on v. Ops are undone in reverse
	// order of application by the aborting transaction; the inverse is
	// logical (operation-based), which is what makes update-in-place
	// recovery compatible with concurrent updates.
	Undo(v Value, op spec.Operation) (Value, error)
}

// Type groups the artifacts of one abstract data type.
type Type interface {
	Name() string
	// Spec returns the bounded-window serial specification.
	Spec() spec.Enumerable
	// Machine returns the runtime machine.
	Machine() Machine
	// NFC returns the analytic forward-commutativity conflict relation
	// (the minimal conflicts for deferred-update recovery, Theorem 10).
	NFC() commute.Relation
	// NRBC returns the analytic right-backward-commutativity conflict
	// relation (the minimal conflicts for update-in-place recovery,
	// Theorem 9). Generally asymmetric.
	NRBC() commute.Relation
	// RW returns the classic read/write locking relation (Section 8.1):
	// operations conflict unless both are read-only.
	RW() commute.Relation
}

// IsRead reports whether the operation is read-only for the given type by
// consulting the type's RW relation: an operation is a read iff it does not
// conflict with itself under RW.
func IsRead(t Type, op spec.Operation) bool {
	return !t.RW().Conflicts(op, op)
}

// mustInt parses an integer argument, panicking on malformed input:
// invocation arguments are produced by this package's own constructors, so
// a parse failure is a bug, not an input error.
func mustInt(s string) int {
	var n int
	if _, err := fmt.Sscanf(s, "%d", &n); err != nil {
		panic(fmt.Sprintf("adt: malformed integer argument %q: %v", s, err))
	}
	return n
}

// readOnlyRelation builds an RW relation from a read predicate.
func readOnlyRelation(name string, isRead func(op spec.Operation) bool) commute.Relation {
	return commute.RelationFunc{
		RelName: "RW(" + name + ")",
		F: func(p, q spec.Operation) bool {
			return !(isRead(p) && isRead(q))
		},
	}
}
