package adt

import (
	"fmt"
	"strconv"

	"repro/internal/commute"
	"repro/internal/spec"
)

// EscrowCounter is a bounded counter with increment and decrement that
// succeed only while the value stays within [0, Max] — the quantity
// underlying escrow-style resource accounting (the paper's Section 9
// points at O'Neil's escrow method as the tightly-coupled descendant of
// these ideas). Unlike the bank account it is bounded on *both* sides, so
// successful increments stop commuting near the ceiling exactly as
// successful decrements stop commuting near the floor; the state space is
// genuinely finite and all relations are derived exactly.
type EscrowCounter struct {
	// Initial is the starting value.
	Initial int
	// Max bounds the counter from above (the floor is 0).
	Max int
	// Amounts are the increment/decrement amounts in the alphabet.
	Amounts []int
}

// DefaultEscrowCounter returns the configuration used in tests:
// values 0..8 starting at 4, amounts {1, 2}.
func DefaultEscrowCounter() EscrowCounter {
	return EscrowCounter{Initial: 4, Max: 8, Amounts: []int{1, 2}}
}

// Inc builds the inc(i) invocation.
func Inc(i int) spec.Invocation { return spec.NewInvocation("inc", i) }

// Dec builds the dec(i) invocation.
func Dec(i int) spec.Invocation { return spec.NewInvocation("dec", i) }

// ReadCtr builds the read invocation.
func ReadCtr() spec.Invocation { return spec.NewInvocation("read") }

// IncOk is [inc(i), ok].
func IncOk(i int) spec.Operation { return spec.Op(Inc(i), "ok") }

// IncNo is [inc(i), no].
func IncNo(i int) spec.Operation { return spec.Op(Inc(i), "no") }

// DecOk is [dec(i), ok].
func DecOk(i int) spec.Operation { return spec.Op(Dec(i), "ok") }

// DecNo is [dec(i), no].
func DecNo(i int) spec.Operation { return spec.Op(Dec(i), "no") }

// ReadIsCtr is [read, v].
func ReadIsCtr(v int) spec.Operation {
	return spec.Op(ReadCtr(), spec.Response(strconv.Itoa(v)))
}

// Name implements Type.
func (EscrowCounter) Name() string { return "escrow-counter" }

// Spec implements Type: an exact finite specification over values 0..Max.
func (t EscrowCounter) Spec() spec.Enumerable {
	var ops []spec.Operation
	for _, i := range t.Amounts {
		ops = append(ops, IncOk(i), IncNo(i), DecOk(i), DecNo(i))
	}
	for v := 0; v <= t.Max; v++ {
		ops = append(ops, ReadIsCtr(v))
	}
	return &spec.FuncSpec{
		SpecName: t.Name(),
		Start:    []string{strconv.Itoa(t.Initial)},
		Ops:      ops,
		NextFunc: func(state string, op spec.Operation) []string {
			s, err := strconv.Atoi(state)
			if err != nil {
				return nil
			}
			switch op.Inv.Name {
			case "inc":
				i := mustInt(op.Inv.Args)
				if op.Res == "ok" {
					if s+i > t.Max {
						return nil
					}
					return []string{strconv.Itoa(s + i)}
				}
				if s+i <= t.Max {
					return nil
				}
				return []string{state}
			case "dec":
				i := mustInt(op.Inv.Args)
				if op.Res == "ok" {
					if s-i < 0 {
						return nil
					}
					return []string{strconv.Itoa(s - i)}
				}
				if s-i >= 0 {
					return nil
				}
				return []string{state}
			case "read":
				if string(op.Res) != state {
					return nil
				}
				return []string{state}
			}
			return nil
		},
	}
}

// Checker builds a commute.Checker over the exact finite spec.
func (t EscrowCounter) Checker() *commute.Checker { return commute.NewChecker(t.Spec()) }

// NFC implements Type; derived exactly (the counter's double bound gives
// conflicts the bank account does not have, e.g. inc-ok vs inc-ok near the
// ceiling, inc-ok vs dec-no).
func (t EscrowCounter) NFC() commute.Relation { return t.Checker().NFCRelation() }

// NRBC implements Type; derived exactly.
func (t EscrowCounter) NRBC() commute.Relation { return t.Checker().NRBCRelation() }

// RW implements Type: read is the read operation.
func (t EscrowCounter) RW() commute.Relation {
	return readOnlyRelation(t.Name(), func(op spec.Operation) bool {
		return op.Inv.Name == "read"
	})
}

// Machine implements Type.
func (t EscrowCounter) Machine() Machine {
	return ctrMachine{initial: t.Initial, max: t.Max}
}

// CtrValue is the runtime state of an EscrowCounter.
type CtrValue int

// Clone implements Value.
func (v CtrValue) Clone() Value { return v }

// Encode implements Value.
func (v CtrValue) Encode() string { return strconv.Itoa(int(v)) }

type ctrMachine struct {
	initial int
	max     int
}

func (ctrMachine) Name() string { return "escrow-counter" }

func (m ctrMachine) Init() Value { return CtrValue(m.initial) }

func (m ctrMachine) Apply(v Value, inv spec.Invocation) (spec.Response, Value, error) {
	c, ok := v.(CtrValue)
	if !ok {
		return "", nil, fmt.Errorf("adt: escrow-counter machine applied to %T", v)
	}
	switch inv.Name {
	case "inc":
		i := mustInt(inv.Args)
		if int(c)+i > m.max {
			return "no", c, nil
		}
		return "ok", c + CtrValue(i), nil
	case "dec":
		i := mustInt(inv.Args)
		if int(c)-i < 0 {
			return "no", c, nil
		}
		return "ok", c - CtrValue(i), nil
	case "read":
		return spec.Response(strconv.Itoa(int(c))), c, nil
	}
	return "", nil, fmt.Errorf("adt: escrow-counter: unknown invocation %s", inv)
}

func (m ctrMachine) Undo(v Value, op spec.Operation) (Value, error) {
	c, ok := v.(CtrValue)
	if !ok {
		return nil, fmt.Errorf("adt: escrow-counter machine applied to %T", v)
	}
	if op.Res != "ok" {
		return c, nil
	}
	switch op.Inv.Name {
	case "inc":
		return c - CtrValue(mustInt(op.Inv.Args)), nil
	case "dec":
		return c + CtrValue(mustInt(op.Inv.Args)), nil
	case "read":
		return c, nil
	}
	return nil, fmt.Errorf("adt: escrow-counter: cannot undo %s", op)
}
