package adt

import (
	"fmt"

	"repro/internal/commute"
	"repro/internal/spec"
)

// Register is a single read/write register — the degenerate type for which
// classic read/write locking is exactly commutativity-based locking: reads
// commute with reads and nothing else commutes, under either notion of
// commutativity, so NFC = NRBC = the R/W conflict relation minus
// write-follows-identical-read refinements. It anchors the Section 8.1
// results.
type Register struct {
	// Initial is the starting value.
	Initial string
	// Domain is the value alphabet of the window specification.
	Domain []string
}

// DefaultRegister returns the configuration used in tests:
// values {0, 1, 2} starting at 0.
func DefaultRegister() Register {
	return Register{Initial: "0", Domain: []string{"0", "1", "2"}}
}

// WriteReg builds the write(v) invocation.
func WriteReg(v string) spec.Invocation { return spec.NewInvocation("write", v) }

// ReadReg builds the read invocation.
func ReadReg() spec.Invocation { return spec.NewInvocation("read") }

// WriteOk is [write(v), ok].
func WriteOk(v string) spec.Operation { return spec.Op(WriteReg(v), "ok") }

// ReadIs is [read, v].
func ReadIs(v string) spec.Operation { return spec.Op(ReadReg(), spec.Response(v)) }

// Name implements Type.
func (Register) Name() string { return "register" }

// Spec implements Type: states are the current value.
func (t Register) Spec() spec.Enumerable {
	var ops []spec.Operation
	for _, v := range t.Domain {
		ops = append(ops, WriteOk(v), ReadIs(v))
	}
	return &spec.FuncSpec{
		SpecName: t.Name(),
		Start:    []string{t.Initial},
		Ops:      ops,
		NextFunc: func(state string, op spec.Operation) []string {
			switch op.Inv.Name {
			case "write":
				return []string{op.Inv.Args}
			case "read":
				if string(op.Res) != state {
					return nil
				}
				return []string{state}
			}
			return nil
		},
	}
}

// Checker builds a commute.Checker over the exact finite spec.
func (t Register) Checker() *commute.Checker { return commute.NewChecker(t.Spec()) }

// NFC implements Type; derived exactly from the window specification.
func (t Register) NFC() commute.Relation { return t.Checker().NFCRelation() }

// NRBC implements Type; derived exactly from the window specification.
func (t Register) NRBC() commute.Relation { return t.Checker().NRBCRelation() }

// RW implements Type: read is the read operation.
func (t Register) RW() commute.Relation {
	return readOnlyRelation(t.Name(), func(op spec.Operation) bool {
		return op.Inv.Name == "read"
	})
}

// Machine implements Type.
func (t Register) Machine() Machine { return regMachine{initial: t.Initial} }

// RegValue is the runtime state of a Register.
type RegValue string

// Clone implements Value.
func (v RegValue) Clone() Value { return v }

// Encode implements Value.
func (v RegValue) Encode() string { return string(v) }

type regMachine struct{ initial string }

func (regMachine) Name() string { return "register" }

func (m regMachine) Init() Value { return RegValue(m.initial) }

func (m regMachine) Apply(v Value, inv spec.Invocation) (spec.Response, Value, error) {
	r, ok := v.(RegValue)
	if !ok {
		return "", nil, fmt.Errorf("adt: register machine applied to %T", v)
	}
	switch inv.Name {
	case "write":
		return "ok", RegValue(inv.Args), nil
	case "read":
		return spec.Response(r), r, nil
	}
	return "", nil, fmt.Errorf("adt: register: unknown invocation %s", inv)
}

func (m regMachine) Undo(v Value, op spec.Operation) (Value, error) {
	r, ok := v.(RegValue)
	if !ok {
		return nil, fmt.Errorf("adt: register machine applied to %T", v)
	}
	if op.Inv.Name == "read" {
		return r, nil
	}
	return nil, fmt.Errorf("adt: register: %s requires before-value undo (use recovery.BeforeValueUndo)", op)
}

// CaptureBefore implements BeforeImageUndoer: a write's undo restores the
// overwritten value.
func (m regMachine) CaptureBefore(v Value, inv spec.Invocation) any {
	if inv.Name == "write" {
		return v
	}
	return nil
}

// UndoWithBefore implements BeforeImageUndoer.
func (m regMachine) UndoWithBefore(v Value, op spec.Operation, before any) (Value, error) {
	if op.Inv.Name == "read" {
		return v, nil
	}
	prev, ok := before.(RegValue)
	if !ok {
		return nil, fmt.Errorf("adt: register: bad before-image %T", before)
	}
	return prev, nil
}

// EncodeUndoToken implements UndoTokenCodec: the token is the overwritten
// register value itself.
func (regMachine) EncodeUndoToken(tok any) (string, error) {
	v, ok := tok.(RegValue)
	if !ok {
		return "", fmt.Errorf("adt: register: cannot encode undo token %T", tok)
	}
	return string(v), nil
}

// DecodeUndoToken implements UndoTokenCodec.
func (regMachine) DecodeUndoToken(s string) (any, error) {
	return RegValue(s), nil
}
