package adt

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/commute"
	"repro/internal/spec"
)

// ResourcePool is the paper's motivating example of a partial,
// nondeterministic type (Section 8.2.1): alloc returns some free resource —
// the choice is nondeterministic — and has no legal response when the pool
// is empty (partial); release(r) returns a resource to the pool and is
// legal only for resources currently allocated. Because alloc is partial
// and nondeterministic, the invocation-based relations FCI and RBCI
// diverge on this type (Section 8.2.2), which the experiments demonstrate
// dynamically.
type ResourcePool struct {
	// Resources lists the pool's resources; all start free.
	Resources []int
}

// DefaultResourcePool returns the configuration used in tests:
// resources {1, 2, 3}.
func DefaultResourcePool() ResourcePool { return ResourcePool{Resources: []int{1, 2, 3}} }

// Alloc builds the alloc invocation.
func Alloc() spec.Invocation { return spec.NewInvocation("alloc") }

// Release builds the release(r) invocation.
func Release(r int) spec.Invocation { return spec.NewInvocation("release", r) }

// Avail builds the avail invocation (reads the number of free resources).
func Avail() spec.Invocation { return spec.NewInvocation("avail") }

// AllocGot is [alloc, r].
func AllocGot(r int) spec.Operation {
	return spec.Op(Alloc(), spec.Response(strconv.Itoa(r)))
}

// ReleaseOk is [release(r), ok].
func ReleaseOk(r int) spec.Operation { return spec.Op(Release(r), "ok") }

// AvailIs is [avail, n].
func AvailIs(n int) spec.Operation {
	return spec.Op(Avail(), spec.Response(strconv.Itoa(n)))
}

// Name implements Type.
func (ResourcePool) Name() string { return "resource-pool" }

func encodePool(free map[int]bool) string {
	var xs []int
	for r, f := range free {
		if f {
			xs = append(xs, r)
		}
	}
	sort.Ints(xs)
	parts := make([]string, len(xs))
	for i, r := range xs {
		parts[i] = strconv.Itoa(r)
	}
	return "free{" + strings.Join(parts, ",") + "}"
}

func decodePool(s string) (map[int]bool, error) {
	if !strings.HasPrefix(s, "free{") || !strings.HasSuffix(s, "}") {
		return nil, fmt.Errorf("adt: malformed pool state %q", s)
	}
	body := strings.TrimSuffix(strings.TrimPrefix(s, "free{"), "}")
	m := make(map[int]bool)
	if body == "" {
		return m, nil
	}
	for _, p := range strings.Split(body, ",") {
		r, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("adt: malformed pool resource %q", p)
		}
		m[r] = true
	}
	return m, nil
}

// Spec implements Type: states are the set of free resources; alloc is
// partial (no response when none free) and nondeterministic (any free
// resource may be returned).
func (t ResourcePool) Spec() spec.Enumerable {
	var ops []spec.Operation
	for _, r := range t.Resources {
		ops = append(ops, AllocGot(r), ReleaseOk(r))
	}
	for n := 0; n <= len(t.Resources); n++ {
		ops = append(ops, AvailIs(n))
	}
	allFree := make(map[int]bool, len(t.Resources))
	for _, r := range t.Resources {
		allFree[r] = true
	}
	return &spec.FuncSpec{
		SpecName: t.Name(),
		Start:    []string{encodePool(allFree)},
		Ops:      ops,
		NextFunc: func(state string, op spec.Operation) []string {
			free, err := decodePool(state)
			if err != nil {
				return nil
			}
			switch op.Inv.Name {
			case "alloc":
				r := mustInt(string(op.Res))
				if !free[r] {
					return nil
				}
				delete(free, r)
				return []string{encodePool(free)}
			case "release":
				r := mustInt(op.Inv.Args)
				if free[r] {
					return nil // releasing a free resource is illegal
				}
				free[r] = true
				return []string{encodePool(free)}
			case "avail":
				n := 0
				for _, f := range free {
					if f {
						n++
					}
				}
				if string(op.Res) != strconv.Itoa(n) {
					return nil
				}
				return []string{state}
			}
			return nil
		},
	}
}

// Checker builds a commute.Checker over the exact finite spec.
func (t ResourcePool) Checker() *commute.Checker { return commute.NewChecker(t.Spec()) }

// NFC implements Type; derived exactly from the finite specification.
func (t ResourcePool) NFC() commute.Relation { return t.Checker().NFCRelation() }

// NRBC implements Type; derived exactly from the finite specification.
func (t ResourcePool) NRBC() commute.Relation { return t.Checker().NRBCRelation() }

// RW implements Type: avail is the read operation.
func (t ResourcePool) RW() commute.Relation {
	return readOnlyRelation(t.Name(), func(op spec.Operation) bool {
		return op.Inv.Name == "avail"
	})
}

// Machine implements Type. The runtime machine refines the nondeterministic
// alloc by returning the lowest-numbered free resource; alloc on an empty
// pool returns ErrNotEnabled.
func (t ResourcePool) Machine() Machine {
	return poolMachine{resources: append([]int(nil), t.Resources...)}
}

// PoolValue is the runtime state of a ResourcePool: the set of free
// resources.
type PoolValue map[int]bool

// Clone implements Value.
func (v PoolValue) Clone() Value {
	out := make(PoolValue, len(v))
	for r, f := range v {
		if f {
			out[r] = true
		}
	}
	return out
}

// Encode implements Value.
func (v PoolValue) Encode() string { return encodePool(v) }

type poolMachine struct{ resources []int }

func (poolMachine) Name() string { return "resource-pool" }

func (m poolMachine) Init() Value {
	v := make(PoolValue, len(m.resources))
	for _, r := range m.resources {
		v[r] = true
	}
	return v
}

func (m poolMachine) Apply(v Value, inv spec.Invocation) (spec.Response, Value, error) {
	free, ok := v.(PoolValue)
	if !ok {
		return "", nil, fmt.Errorf("adt: resource-pool machine applied to %T", v)
	}
	switch inv.Name {
	case "alloc":
		var got []int
		for r, f := range free {
			if f {
				got = append(got, r)
			}
		}
		if len(got) == 0 {
			return "", nil, ErrNotEnabled
		}
		sort.Ints(got)
		next := free.Clone().(PoolValue)
		delete(next, got[0])
		return spec.Response(strconv.Itoa(got[0])), next, nil
	case "release":
		r := mustInt(inv.Args)
		if free[r] {
			return "", nil, fmt.Errorf("adt: resource-pool: release of free resource %d", r)
		}
		next := free.Clone().(PoolValue)
		next[r] = true
		return "ok", next, nil
	case "avail":
		n := 0
		for _, f := range free {
			if f {
				n++
			}
		}
		return spec.Response(strconv.Itoa(n)), free, nil
	}
	return "", nil, fmt.Errorf("adt: resource-pool: unknown invocation %s", inv)
}

func (m poolMachine) Undo(v Value, op spec.Operation) (Value, error) {
	free, ok := v.(PoolValue)
	if !ok {
		return nil, fmt.Errorf("adt: resource-pool machine applied to %T", v)
	}
	switch op.Inv.Name {
	case "alloc":
		r := mustInt(string(op.Res))
		next := free.Clone().(PoolValue)
		next[r] = true
		return next, nil
	case "release":
		r := mustInt(op.Inv.Args)
		next := free.Clone().(PoolValue)
		delete(next, r)
		return next, nil
	case "avail":
		return free, nil
	}
	return nil, fmt.Errorf("adt: resource-pool: cannot undo %s", op)
}
