package adt

import (
	"testing"

	"repro/internal/spec"
)

// TestCounterDoubleBoundedConflicts: unlike the bank account, the escrow
// counter is bounded above too, so successful increments conflict with each
// other under NFC (two increments can exhaust the headroom) exactly as
// successful decrements do.
func TestCounterDoubleBoundedConflicts(t *testing.T) {
	ctr := DefaultEscrowCounter()
	nfc := ctr.NFC()
	if !nfc.Conflicts(IncOk(2), IncOk(2)) {
		t.Error("(inc-ok, inc-ok) should be in NFC near the ceiling")
	}
	if !nfc.Conflicts(DecOk(2), DecOk(2)) {
		t.Error("(dec-ok, dec-ok) should be in NFC near the floor")
	}
	// The bank account has no ceiling: deposits never conflict there.
	ba := DefaultBankAccount()
	if ba.NFC().Conflicts(DepositOk(2), DepositOk(2)) {
		t.Error("bank-account deposits commute; the counter's ceiling is the difference")
	}
}

// TestCounterMirrorSymmetry: the counter's spec is symmetric under
// value ↦ Max−value with inc ↔ dec, so the derived relations must be
// symmetric under swapping inc-ok/dec-ok and inc-no/dec-no.
func TestCounterMirrorSymmetry(t *testing.T) {
	ctr := DefaultEscrowCounter()
	c := ctr.Checker()
	mirror := func(op spec.Operation) spec.Operation {
		switch op.Inv.Name {
		case "inc":
			return spec.Op(Dec(mustInt(op.Inv.Args)), op.Res)
		case "dec":
			return spec.Op(Inc(mustInt(op.Inv.Args)), op.Res)
		}
		return op // reads are not mirrored (values differ); skip below
	}
	ops := []spec.Operation{IncOk(1), IncOk(2), IncNo(2), DecOk(1), DecOk(2), DecNo(2)}
	for _, p := range ops {
		for _, q := range ops {
			got := c.CommuteForward(p, q)
			want := c.CommuteForward(mirror(p), mirror(q))
			if got != want {
				t.Errorf("mirror symmetry broken for FC(%s,%s)", p, q)
			}
			gotR := c.RightCommutesBackward(p, q)
			wantR := c.RightCommutesBackward(mirror(p), mirror(q))
			if gotR != wantR {
				t.Errorf("mirror symmetry broken for RBC(%s,%s)", p, q)
			}
		}
	}
}

// TestCounterIncomparability: NFC and NRBC remain incomparable on the
// counter — the paper's trade-off is not special to the bank account.
func TestCounterIncomparability(t *testing.T) {
	ctr := DefaultEscrowCounter()
	c := ctr.Checker()
	var nfcOnly, nrbcOnly bool
	for _, p := range ctr.Spec().Alphabet() {
		for _, q := range ctr.Spec().Alphabet() {
			fc := !c.CommuteForward(p, q)
			rbc := !c.RightCommutesBackward(p, q)
			if fc && !rbc {
				nfcOnly = true
			}
			if rbc && !fc {
				nrbcOnly = true
			}
		}
	}
	if !nfcOnly || !nrbcOnly {
		t.Fatalf("counter relations should be incomparable: NFC-only=%v NRBC-only=%v", nfcOnly, nrbcOnly)
	}
}

// TestCounterInvocationLemmas: counter invocations are total and
// deterministic, so FCI = RBCI = CI (Lemmas 15–16) on this type too.
func TestCounterInvocationLemmas(t *testing.T) {
	ctr := DefaultEscrowCounter()
	c := ctr.Checker()
	invs := []spec.Invocation{Inc(1), Inc(2), Dec(1), Dec(2), ReadCtr()}
	for _, i := range invs {
		if !c.Total(i) || !c.Deterministic(i) {
			t.Fatalf("%s should be total and deterministic", i)
		}
	}
	for _, i := range invs {
		for _, j := range invs {
			ci, err := c.CI(i, j)
			if err != nil {
				t.Fatal(err)
			}
			if c.FCI(i, j) != ci || c.RBCI(i, j) != ci {
				t.Errorf("FCI/RBCI/CI diverge on (%s,%s)", i, j)
			}
		}
	}
}

func TestCounterMachine(t *testing.T) {
	m := DefaultEscrowCounter().Machine()
	v := m.Init()
	res, v, err := m.Apply(v, Inc(2))
	if err != nil || res != "ok" {
		t.Fatalf("inc: %v %v", res, err)
	}
	res, v, _ = m.Apply(v, Inc(2))
	if res != "ok" {
		t.Fatalf("second inc: %v", res)
	}
	res, v, _ = m.Apply(v, Inc(1))
	if res != "no" {
		t.Fatalf("inc past ceiling should fail: %v (value %s)", res, v.Encode())
	}
	res, v, _ = m.Apply(v, ReadCtr())
	if res != "8" {
		t.Fatalf("read: %v", res)
	}
	und, err := m.Undo(v, IncOk(2))
	if err != nil || und.Encode() != "6" {
		t.Fatalf("undo inc: %v %v", und, err)
	}
	und2, err := m.Undo(und, DecNo(9))
	if err != nil || und2.Encode() != "6" {
		t.Fatalf("undo failed dec is a no-op: %v %v", und2, err)
	}
}

// TestCounterMachineRefinesSpec: machine executions stay legal in the spec.
func TestCounterMachineRefinesSpec(t *testing.T) {
	ctr := DefaultEscrowCounter()
	m := ctr.Machine()
	sp := ctr.Spec()
	v := m.Init()
	var seq spec.Seq
	script := []spec.Invocation{
		Inc(2), Inc(2), Inc(1), Dec(2), ReadCtr(), Dec(2), Dec(2), Dec(2), ReadCtr(),
	}
	for _, inv := range script {
		res, next, err := m.Apply(v, inv)
		if err != nil {
			t.Fatalf("Apply(%s): %v", inv, err)
		}
		seq = append(seq, spec.Op(inv, res))
		if !sp.Legal(seq) {
			t.Fatalf("machine produced spec-illegal sequence %s", seq)
		}
		v = next
	}
}
