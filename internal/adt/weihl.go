package adt

import "repro/internal/spec"

// This file reconstructs the exact specifications Weihl uses in
// Section 8.2.2 to separate the invocation-level relations FCI and RBCI
// when invocations may be partial or nondeterministic, including the
// six-state automaton of Table I (Section 8.2.2.3) demonstrating that the
// effects are non-local.

// InvI, InvJ, InvK are the abstract invocations of Section 8.2.2.
var (
	InvI = spec.NewInvocation("I")
	InvJ = spec.NewInvocation("J")
	InvK = spec.NewInvocation("K")
)

// Abstract operations used by the mini-specs.
var (
	OpIQ = spec.Op(InvI, "Q")
	OpIR = spec.Op(InvI, "R")
	OpJR = spec.Op(InvJ, "R")
	OpJQ = spec.Op(InvJ, "Q")
	OpJT = spec.Op(InvJ, "T")
	OpKS = spec.Op(InvK, "S")
	OpKT = spec.Op(InvK, "T")
)

// PartialSpecA is the first example of Section 8.2.2.1: the legal operation
// sequences are exactly Λ, [I,Q], and [J,R] — either operation can execute
// in the initial state, but nothing can execute after that. It witnesses
// RBCI ⊄ FCI for partial deterministic invocations: (I,J) ∈ RBCI (both
// two-operation sequences are illegal, hence vacuously equieffective) but
// (I,J) ∉ FCI.
func PartialSpecA() *spec.Automaton {
	a := spec.NewAutomaton("weihl-partial-a", "0")
	a.AddTransition("0", OpIQ, "1")
	a.AddTransition("0", OpJR, "2")
	return a.Freeze()
}

// PartialSpecB is the second example of Section 8.2.2.1: the legal
// sequences are the prefixes of [J,R]·[I,Q] — J only in the initial state,
// I only immediately after J. It witnesses FCI ⊄ RBCI: (I,J) ∈ FCI (at
// least one of I, J is illegal in every state, so forward commutativity is
// vacuous) but (I,J) ∉ RBCI ([J,R]·[I,Q] is legal while [I,Q]·[J,R] is
// not).
func PartialSpecB() *spec.Automaton {
	a := spec.NewAutomaton("weihl-partial-b", "0")
	a.AddTransition("0", OpJR, "1")
	a.AddTransition("1", OpIQ, "2")
	return a.Freeze()
}

// NondetSpecC is the first example of Section 8.2.2.2: the legal sequences
// are ([I,Q]|[J,Q])* ∪ ([I,R]|[J,R])* — the first operation makes a
// nondeterministic choice of result for itself and all subsequent
// operations. Both invocations are total but nondeterministic. It
// witnesses RBCI ⊄ FCI for nondeterministic total invocations.
func NondetSpecC() *spec.Automaton {
	a := spec.NewAutomaton("weihl-nondet-c", "s")
	a.AddTransition("s", OpIQ, "q")
	a.AddTransition("s", OpJQ, "q")
	a.AddTransition("q", OpIQ, "q")
	a.AddTransition("q", OpJQ, "q")
	a.AddTransition("s", OpIR, "r")
	a.AddTransition("s", OpJR, "r")
	a.AddTransition("r", OpIR, "r")
	a.AddTransition("r", OpJR, "r")
	return a.Freeze()
}

// NondetSpecD is the second example of Section 8.2.2.2: the legal sequences
// are [I,Q]*·[J,T]·([I,Q]|[I,R]|[J,T])* — I has the single result Q until J
// has been invoked; afterwards I has two possible results Q and R. It
// witnesses FCI ⊄ RBCI: (I,J) ∈ FCI but [J,T]·[I,R] is legal while
// [I,R]·[J,T] is not.
func NondetSpecD() *spec.Automaton {
	a := spec.NewAutomaton("weihl-nondet-d", "pre")
	a.AddTransition("pre", OpIQ, "pre")
	a.AddTransition("pre", OpJT, "post")
	a.AddTransition("post", OpIQ, "post")
	a.AddTransition("post", OpIR, "post")
	a.AddTransition("post", OpJT, "post")
	return a.Freeze()
}

// TableISpec is the six-state automaton of Table I (Section 8.2.2.3).
// I and J are total and deterministic (response Q and R respectively in
// every state); K is partial and deterministic, legal only in state 4 with
// response S. Executing J then I from state 0 yields state 5, while I then
// J yields state 4, and state 5 looks like state 4 but not conversely
// (K distinguishes them). Consequences verified in tests: I right commutes
// backward with J, J does not right commute backward with I, and
// (I, J) ∉ CI even though both are total and deterministic — the partial
// invocation K makes the divergence non-local.
func TableISpec() *spec.Automaton {
	a := spec.NewAutomaton("weihl-table-1", "0")
	type row struct {
		s, i, j string
		k       string // empty = K illegal
	}
	rows := []row{
		{s: "0", i: "1", j: "2"},
		{s: "1", i: "3", j: "4"},
		{s: "2", i: "5", j: "3"},
		{s: "3", i: "3", j: "3"},
		{s: "4", i: "3", j: "3", k: "4"},
		{s: "5", i: "3", j: "3"},
	}
	for _, r := range rows {
		a.AddTransition(r.s, OpIQ, r.i)
		a.AddTransition(r.s, OpJR, r.j)
		if r.k != "" {
			a.AddTransition(r.s, OpKS, r.k)
		}
	}
	return a.Freeze()
}

// TableINondetSpec is the modification described at the end of
// Section 8.2.2.3: K becomes total and nondeterministic — in every state s,
// K leaves the state unchanged; in state 4 it has two possible results S
// and T, in all other states only S. As with the partial variant, state 5
// looks like state 4 but not conversely, so I right commutes backward with
// J while (I, J) ∉ CI, now caused by a nondeterministic (but total)
// invocation.
func TableINondetSpec() *spec.Automaton {
	a := spec.NewAutomaton("weihl-table-1-nondet", "0")
	type row struct {
		s, i, j string
	}
	rows := []row{
		{s: "0", i: "1", j: "2"},
		{s: "1", i: "3", j: "4"},
		{s: "2", i: "5", j: "3"},
		{s: "3", i: "3", j: "3"},
		{s: "4", i: "3", j: "3"},
		{s: "5", i: "3", j: "3"},
	}
	for _, r := range rows {
		a.AddTransition(r.s, OpIQ, r.i)
		a.AddTransition(r.s, OpJR, r.j)
		a.AddTransition(r.s, OpKS, r.s)
		if r.s == "4" {
			a.AddTransition(r.s, OpKT, r.s)
		}
	}
	return a.Freeze()
}
