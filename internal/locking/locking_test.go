package locking

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/adt"
	"repro/internal/history"
)

func nrbcTable() *Table {
	return NewTable(adt.DefaultBankAccount().NRBC())
}

func TestTableGrantAndConflict(t *testing.T) {
	tab := nrbcTable()
	tab.Add("A", adt.DepositOk(5))
	// Requested withdrawal conflicts with held deposit (asymmetric NRBC).
	holders := tab.Conflicting(adt.WithdrawOk(3), "B")
	if len(holders) != 1 || holders[0] != "A" {
		t.Fatalf("holders = %v, want [A]", holders)
	}
	// Requested deposit does not conflict with a held withdrawal.
	tab2 := nrbcTable()
	tab2.Add("A", adt.WithdrawOk(3))
	if holders := tab2.Conflicting(adt.DepositOk(5), "B"); len(holders) != 0 {
		t.Fatalf("deposit should not conflict with held withdrawal: %v", holders)
	}
}

func TestTableSelfConflictIgnored(t *testing.T) {
	tab := nrbcTable()
	tab.Add("A", adt.DepositOk(5))
	if holders := tab.Conflicting(adt.WithdrawOk(3), "A"); len(holders) != 0 {
		t.Fatalf("a transaction never conflicts with itself: %v", holders)
	}
}

func TestTableRelease(t *testing.T) {
	tab := nrbcTable()
	tab.Add("A", adt.DepositOk(5))
	tab.Add("A", adt.DepositOk(2))
	ops := tab.Release("A")
	if len(ops) != 2 {
		t.Fatalf("released %v", ops)
	}
	if holders := tab.Conflicting(adt.WithdrawOk(3), "B"); len(holders) != 0 {
		t.Fatalf("after release no conflicts: %v", holders)
	}
	if tab.Held("A") != nil {
		t.Error("held ops should be cleared")
	}
}

func TestTableHolders(t *testing.T) {
	tab := nrbcTable()
	tab.Add("B", adt.DepositOk(1))
	tab.Add("A", adt.DepositOk(1))
	hs := tab.Holders()
	if len(hs) != 2 || hs[0] != "A" || hs[1] != "B" {
		t.Fatalf("Holders = %v", hs)
	}
}

func TestTableMultipleConflictingHolders(t *testing.T) {
	tab := NewTable(adt.DefaultBankAccount().NFC())
	tab.Add("A", adt.WithdrawOk(1))
	tab.Add("B", adt.WithdrawOk(2))
	holders := tab.Conflicting(adt.WithdrawOk(3), "C")
	if len(holders) != 2 || holders[0] != "A" || holders[1] != "B" {
		t.Fatalf("holders = %v, want [A B]", holders)
	}
}

func TestDetectorNoCycle(t *testing.T) {
	d := NewDetector()
	if err := d.AddWaits("A", []history.TxnID{"B"}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddWaits("B", []history.TxnID{"C"}); err != nil {
		t.Fatal(err)
	}
	if d.WaitCount() != 2 {
		t.Errorf("WaitCount = %d", d.WaitCount())
	}
}

func TestDetectorDirectCycle(t *testing.T) {
	d := NewDetector()
	if err := d.AddWaits("A", []history.TxnID{"B"}); err != nil {
		t.Fatal(err)
	}
	err := d.AddWaits("B", []history.TxnID{"A"})
	var dl *ErrDeadlock
	if !errors.As(err, &dl) {
		t.Fatalf("expected ErrDeadlock, got %v", err)
	}
	if dl.Victim != "B" {
		t.Errorf("victim = %s, want the requester B", dl.Victim)
	}
	// The victim's edges were rolled back; A still waits.
	if d.WaitCount() != 1 {
		t.Errorf("WaitCount after rollback = %d, want 1", d.WaitCount())
	}
}

func TestDetectorTransitiveCycle(t *testing.T) {
	d := NewDetector()
	if err := d.AddWaits("A", []history.TxnID{"B"}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddWaits("B", []history.TxnID{"C"}); err != nil {
		t.Fatal(err)
	}
	err := d.AddWaits("C", []history.TxnID{"A"})
	var dl *ErrDeadlock
	if !errors.As(err, &dl) {
		t.Fatalf("expected transitive deadlock, got %v", err)
	}
}

func TestDetectorClearBreaksCycles(t *testing.T) {
	d := NewDetector()
	if err := d.AddWaits("A", []history.TxnID{"B"}); err != nil {
		t.Fatal(err)
	}
	d.ClearWaits("A")
	if err := d.AddWaits("B", []history.TxnID{"A"}); err != nil {
		t.Fatalf("no cycle after clear: %v", err)
	}
}

func TestDetectorSelfWaitImpossibleByConstruction(t *testing.T) {
	// Lock tables never report the requester itself, but the detector must
	// still catch a direct self-edge defensively.
	d := NewDetector()
	err := d.AddWaits("A", []history.TxnID{"A"})
	var dl *ErrDeadlock
	if !errors.As(err, &dl) {
		t.Fatalf("self-wait should be a cycle, got %v", err)
	}
}

func TestAsymmetricRelationNoFalseDeadlock(t *testing.T) {
	// Under NRBC, deposit-then-withdraw blocks only one direction, so two
	// transactions holding a deposit each and requesting withdrawals form a
	// genuine cycle — while with the asymmetric grant (one holds only
	// balance reads) there is none. This test pins the relation-direction
	// plumbing end to end through table + detector.
	rel := adt.DefaultBankAccount().NRBC()
	tab := NewTable(rel)
	d := NewDetector()
	tab.Add("A", adt.DepositOk(5))
	tab.Add("B", adt.DepositOk(5))
	hA := tab.Conflicting(adt.WithdrawOk(1), "A") // A requests, B holds dep
	if len(hA) != 1 || hA[0] != "B" {
		t.Fatalf("A's withdrawal should conflict with B's deposit: %v", hA)
	}
	if err := d.AddWaits("A", hA); err != nil {
		t.Fatal(err)
	}
	hB := tab.Conflicting(adt.WithdrawOk(1), "B")
	if err := d.AddWaits("B", hB); err == nil {
		t.Fatal("expected deadlock: mutual withdraw-after-deposit")
	}
}

// TestDetectorStripedConcurrency hammers a striped detector from many
// goroutines with disjoint wait edges (no cycles): every add/clear must
// stay on its stripe without races, and the count drains to zero.
func TestDetectorStripedConcurrency(t *testing.T) {
	d := NewDetectorStriped(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			waiter := history.TxnID(fmt.Sprintf("W%02d", g))
			holder := history.TxnID(fmt.Sprintf("H%02d", g))
			for i := 0; i < 200; i++ {
				if err := d.AddWaits(waiter, []history.TxnID{holder}); err != nil {
					t.Errorf("unexpected deadlock: %v", err)
					return
				}
				d.ClearWaits(waiter)
			}
		}(g)
	}
	wg.Wait()
	if n := d.WaitCount(); n != 0 {
		t.Errorf("WaitCount = %d after drain", n)
	}
}

// TestDetectorStripedSingleVictim: with edges crossing stripes, closing a
// cycle still yields exactly one victim even when both closers race.
func TestDetectorStripedSingleVictim(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		d := NewDetectorStriped(8)
		var wg sync.WaitGroup
		errs := make([]error, 2)
		wg.Add(2)
		go func() { defer wg.Done(); errs[0] = d.AddWaits("A", []history.TxnID{"B"}) }()
		go func() { defer wg.Done(); errs[1] = d.AddWaits("B", []history.TxnID{"A"}) }()
		wg.Wait()
		victims := 0
		for _, err := range errs {
			if err != nil {
				var dl *ErrDeadlock
				if !errors.As(err, &dl) {
					t.Fatalf("unexpected error: %v", err)
				}
				victims++
			}
		}
		// Both edges present means the cycle existed; the serialized check
		// must have broken it by removing exactly one waiter's edges.
		if victims > 1 {
			t.Fatalf("trial %d: %d victims for one cycle", trial, victims)
		}
		if victims == 1 && d.WaitCount() != 1 {
			t.Fatalf("trial %d: victim edges not removed, count=%d", trial, d.WaitCount())
		}
	}
}
