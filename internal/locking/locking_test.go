package locking

import (
	"errors"
	"testing"

	"repro/internal/adt"
	"repro/internal/history"
)

func nrbcTable() *Table {
	return NewTable(adt.DefaultBankAccount().NRBC())
}

func TestTableGrantAndConflict(t *testing.T) {
	tab := nrbcTable()
	tab.Add("A", adt.DepositOk(5))
	// Requested withdrawal conflicts with held deposit (asymmetric NRBC).
	holders := tab.Conflicting(adt.WithdrawOk(3), "B")
	if len(holders) != 1 || holders[0] != "A" {
		t.Fatalf("holders = %v, want [A]", holders)
	}
	// Requested deposit does not conflict with a held withdrawal.
	tab2 := nrbcTable()
	tab2.Add("A", adt.WithdrawOk(3))
	if holders := tab2.Conflicting(adt.DepositOk(5), "B"); len(holders) != 0 {
		t.Fatalf("deposit should not conflict with held withdrawal: %v", holders)
	}
}

func TestTableSelfConflictIgnored(t *testing.T) {
	tab := nrbcTable()
	tab.Add("A", adt.DepositOk(5))
	if holders := tab.Conflicting(adt.WithdrawOk(3), "A"); len(holders) != 0 {
		t.Fatalf("a transaction never conflicts with itself: %v", holders)
	}
}

func TestTableRelease(t *testing.T) {
	tab := nrbcTable()
	tab.Add("A", adt.DepositOk(5))
	tab.Add("A", adt.DepositOk(2))
	ops := tab.Release("A")
	if len(ops) != 2 {
		t.Fatalf("released %v", ops)
	}
	if holders := tab.Conflicting(adt.WithdrawOk(3), "B"); len(holders) != 0 {
		t.Fatalf("after release no conflicts: %v", holders)
	}
	if tab.Held("A") != nil {
		t.Error("held ops should be cleared")
	}
}

func TestTableHolders(t *testing.T) {
	tab := nrbcTable()
	tab.Add("B", adt.DepositOk(1))
	tab.Add("A", adt.DepositOk(1))
	hs := tab.Holders()
	if len(hs) != 2 || hs[0] != "A" || hs[1] != "B" {
		t.Fatalf("Holders = %v", hs)
	}
}

func TestTableMultipleConflictingHolders(t *testing.T) {
	tab := NewTable(adt.DefaultBankAccount().NFC())
	tab.Add("A", adt.WithdrawOk(1))
	tab.Add("B", adt.WithdrawOk(2))
	holders := tab.Conflicting(adt.WithdrawOk(3), "C")
	if len(holders) != 2 || holders[0] != "A" || holders[1] != "B" {
		t.Fatalf("holders = %v, want [A B]", holders)
	}
}

func TestDetectorNoCycle(t *testing.T) {
	d := NewDetector()
	if err := d.AddWaits("A", []history.TxnID{"B"}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddWaits("B", []history.TxnID{"C"}); err != nil {
		t.Fatal(err)
	}
	if d.WaitCount() != 2 {
		t.Errorf("WaitCount = %d", d.WaitCount())
	}
}

func TestDetectorDirectCycle(t *testing.T) {
	d := NewDetector()
	if err := d.AddWaits("A", []history.TxnID{"B"}); err != nil {
		t.Fatal(err)
	}
	err := d.AddWaits("B", []history.TxnID{"A"})
	var dl *ErrDeadlock
	if !errors.As(err, &dl) {
		t.Fatalf("expected ErrDeadlock, got %v", err)
	}
	if dl.Victim != "B" {
		t.Errorf("victim = %s, want the requester B", dl.Victim)
	}
	// The victim's edges were rolled back; A still waits.
	if d.WaitCount() != 1 {
		t.Errorf("WaitCount after rollback = %d, want 1", d.WaitCount())
	}
}

func TestDetectorTransitiveCycle(t *testing.T) {
	d := NewDetector()
	if err := d.AddWaits("A", []history.TxnID{"B"}); err != nil {
		t.Fatal(err)
	}
	if err := d.AddWaits("B", []history.TxnID{"C"}); err != nil {
		t.Fatal(err)
	}
	err := d.AddWaits("C", []history.TxnID{"A"})
	var dl *ErrDeadlock
	if !errors.As(err, &dl) {
		t.Fatalf("expected transitive deadlock, got %v", err)
	}
}

func TestDetectorClearBreaksCycles(t *testing.T) {
	d := NewDetector()
	if err := d.AddWaits("A", []history.TxnID{"B"}); err != nil {
		t.Fatal(err)
	}
	d.ClearWaits("A")
	if err := d.AddWaits("B", []history.TxnID{"A"}); err != nil {
		t.Fatalf("no cycle after clear: %v", err)
	}
}

func TestDetectorSelfWaitImpossibleByConstruction(t *testing.T) {
	// Lock tables never report the requester itself, but the detector must
	// still catch a direct self-edge defensively.
	d := NewDetector()
	err := d.AddWaits("A", []history.TxnID{"A"})
	var dl *ErrDeadlock
	if !errors.As(err, &dl) {
		t.Fatalf("self-wait should be a cycle, got %v", err)
	}
}

func TestAsymmetricRelationNoFalseDeadlock(t *testing.T) {
	// Under NRBC, deposit-then-withdraw blocks only one direction, so two
	// transactions holding a deposit each and requesting withdrawals form a
	// genuine cycle — while with the asymmetric grant (one holds only
	// balance reads) there is none. This test pins the relation-direction
	// plumbing end to end through table + detector.
	rel := adt.DefaultBankAccount().NRBC()
	tab := NewTable(rel)
	d := NewDetector()
	tab.Add("A", adt.DepositOk(5))
	tab.Add("B", adt.DepositOk(5))
	hA := tab.Conflicting(adt.WithdrawOk(1), "A") // A requests, B holds dep
	if len(hA) != 1 || hA[0] != "B" {
		t.Fatalf("A's withdrawal should conflict with B's deposit: %v", hA)
	}
	if err := d.AddWaits("A", hA); err != nil {
		t.Fatal(err)
	}
	hB := tab.Conflicting(adt.WithdrawOk(1), "B")
	if err := d.AddWaits("B", hB); err == nil {
		t.Fatal("expected deadlock: mutual withdraw-after-deposit")
	}
}
