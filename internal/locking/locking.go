// Package locking implements conflict-based operation locking for the
// transaction engine: per-object lock tables driven by an arbitrary
// (possibly asymmetric) conflict relation on operations, plus a global
// waits-for deadlock detector.
//
// The paper's locking model (Section 4) is implicit: the locks held by a
// transaction are exactly the operations it has executed, and a new
// operation may execute only if it does not conflict with any operation
// held by another active transaction. Locks are released en masse at commit
// or abort — strict two-phase locking at operation granularity.
package locking

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/commute"
	"repro/internal/history"
	"repro/internal/spec"
)

// Table tracks the operation locks held at one object under a conflict
// relation. Table is not itself synchronized: the owning object serializes
// access (the engine holds the object latch around every call).
type Table struct {
	rel  commute.Relation
	held map[history.TxnID][]spec.Operation
}

// NewTable builds an empty lock table for the relation.
func NewTable(rel commute.Relation) *Table {
	return &Table{rel: rel, held: make(map[history.TxnID][]spec.Operation)}
}

// Relation returns the table's conflict relation.
func (t *Table) Relation() commute.Relation { return t.rel }

// Conflicting returns the transactions (other than self) holding an
// operation that the requested operation conflicts with, in sorted order.
// The requested operation is the first argument of the relation, matching
// the precondition of Section 4: (requested, held) ∈ Conflict blocks.
func (t *Table) Conflicting(requested spec.Operation, self history.TxnID) []history.TxnID {
	var out []history.TxnID
	for txn, ops := range t.held {
		if txn == self {
			continue
		}
		for _, held := range ops {
			if t.rel.Conflicts(requested, held) {
				out = append(out, txn)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Add records that txn now holds op.
func (t *Table) Add(txn history.TxnID, op spec.Operation) {
	t.held[txn] = append(t.held[txn], op)
}

// Release drops every lock held by txn, returning the released operations.
func (t *Table) Release(txn history.TxnID) []spec.Operation {
	ops := t.held[txn]
	delete(t.held, txn)
	return ops
}

// Held returns the operations txn currently holds (nil if none).
func (t *Table) Held(txn history.TxnID) []spec.Operation { return t.held[txn] }

// Holders returns all transactions currently holding locks, sorted.
func (t *Table) Holders() []history.TxnID {
	out := make([]history.TxnID, 0, len(t.held))
	for txn := range t.held {
		out = append(out, txn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ErrDeadlock is returned (wrapped) when granting a wait would close a
// cycle in the waits-for graph; the requester is chosen as the victim.
type ErrDeadlock struct {
	Victim history.TxnID
	Cycle  []history.TxnID
}

// Error implements error.
func (e *ErrDeadlock) Error() string {
	return fmt.Sprintf("locking: deadlock: victim %s, cycle %v", e.Victim, e.Cycle)
}

// Detector is a global waits-for deadlock detector shared by all objects of
// an engine. It is safe for concurrent use.
type Detector struct {
	mu    sync.Mutex
	waits map[history.TxnID]map[history.TxnID]bool
}

// NewDetector builds an empty detector.
func NewDetector() *Detector {
	return &Detector{waits: make(map[history.TxnID]map[history.TxnID]bool)}
}

// AddWaits records that waiter is blocked on holders and checks for a
// cycle. If the new edges close a cycle, the edges are rolled back and an
// *ErrDeadlock naming waiter as victim is returned.
func (d *Detector) AddWaits(waiter history.TxnID, holders []history.TxnID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	m := d.waits[waiter]
	if m == nil {
		m = make(map[history.TxnID]bool)
		d.waits[waiter] = m
	}
	for _, h := range holders {
		m[h] = true
	}
	if cycle := d.findCycleFrom(waiter); cycle != nil {
		delete(d.waits, waiter)
		return &ErrDeadlock{Victim: waiter, Cycle: cycle}
	}
	return nil
}

// ClearWaits removes all outgoing edges of waiter (called after it wakes or
// aborts).
func (d *Detector) ClearWaits(waiter history.TxnID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.waits, waiter)
}

// findCycleFrom performs a DFS from start and returns a cycle through start
// if one exists. Caller holds d.mu.
func (d *Detector) findCycleFrom(start history.TxnID) []history.TxnID {
	var path []history.TxnID
	onPath := make(map[history.TxnID]bool)
	visited := make(map[history.TxnID]bool)
	var dfs func(t history.TxnID) []history.TxnID
	dfs = func(t history.TxnID) []history.TxnID {
		if onPath[t] && t == start {
			return append([]history.TxnID(nil), path...)
		}
		if visited[t] {
			return nil
		}
		visited[t] = true
		onPath[t] = true
		path = append(path, t)
		// Deterministic iteration for reproducible cycles.
		next := make([]history.TxnID, 0, len(d.waits[t]))
		for n := range d.waits[t] {
			next = append(next, n)
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		for _, n := range next {
			if n == start {
				return append([]history.TxnID(nil), path...)
			}
			if c := dfs(n); c != nil {
				return c
			}
		}
		path = path[:len(path)-1]
		onPath[t] = false
		return nil
	}
	return dfs(start)
}

// WaitCount returns the number of transactions currently waiting
// (diagnostics).
func (d *Detector) WaitCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.waits)
}
