// Package locking implements conflict-based operation locking for the
// transaction engine: per-object lock tables driven by an arbitrary
// (possibly asymmetric) conflict relation on operations, plus a global
// waits-for deadlock detector.
//
// The paper's locking model (Section 4) is implicit: the locks held by a
// transaction are exactly the operations it has executed, and a new
// operation may execute only if it does not conflict with any operation
// held by another active transaction. Locks are released en masse at commit
// or abort — strict two-phase locking at operation granularity.
package locking

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/commute"
	"repro/internal/history"
	"repro/internal/spec"
	"repro/internal/stripe"
)

// Table tracks the operation locks held at one object under a conflict
// relation. Table is not itself synchronized: the owning object serializes
// access (the engine holds the object latch around every call).
type Table struct {
	rel  commute.Relation
	held map[history.TxnID][]spec.Operation
}

// NewTable builds an empty lock table for the relation.
func NewTable(rel commute.Relation) *Table {
	return &Table{rel: rel, held: make(map[history.TxnID][]spec.Operation)}
}

// Relation returns the table's conflict relation.
func (t *Table) Relation() commute.Relation { return t.rel }

// Conflicting returns the transactions (other than self) holding an
// operation that the requested operation conflicts with, in sorted order.
// The requested operation is the first argument of the relation, matching
// the precondition of Section 4: (requested, held) ∈ Conflict blocks.
func (t *Table) Conflicting(requested spec.Operation, self history.TxnID) []history.TxnID {
	var out []history.TxnID
	for txn, ops := range t.held {
		if txn == self {
			continue
		}
		for _, held := range ops {
			if t.rel.Conflicts(requested, held) {
				out = append(out, txn)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Add records that txn now holds op.
func (t *Table) Add(txn history.TxnID, op spec.Operation) {
	t.held[txn] = append(t.held[txn], op)
}

// Release drops every lock held by txn, returning the released operations.
func (t *Table) Release(txn history.TxnID) []spec.Operation {
	ops := t.held[txn]
	delete(t.held, txn)
	return ops
}

// Held returns the operations txn currently holds (nil if none).
func (t *Table) Held(txn history.TxnID) []spec.Operation { return t.held[txn] }

// Holders returns all transactions currently holding locks, sorted.
func (t *Table) Holders() []history.TxnID {
	out := make([]history.TxnID, 0, len(t.held))
	for txn := range t.held {
		out = append(out, txn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ErrDeadlock is returned (wrapped) when granting a wait would close a
// cycle in the waits-for graph; the requester is chosen as the victim.
type ErrDeadlock struct {
	Victim history.TxnID
	Cycle  []history.TxnID
}

// Error implements error.
func (e *ErrDeadlock) Error() string {
	return fmt.Sprintf("locking: deadlock: victim %s, cycle %v", e.Victim, e.Cycle)
}

// Detector is a global waits-for deadlock detector shared by all objects
// of an engine. It is safe for concurrent use. The edge store is striped by
// waiter so that the per-shard engine hot path (declare a wait, clear waits
// on wake and at commit/abort) touches only one stripe lock; cycle
// detection — the rare path — holds every stripe lock (acquired in index
// order) and runs the DFS over the live maps, so it sees one instantaneous
// cut of the graph and exactly one victim is chosen per cycle, just as
// with a single-lock detector.
type Detector struct {
	stripes []*detectorStripe
	mask    uint32
}

type detectorStripe struct {
	mu    sync.Mutex
	waits map[history.TxnID]map[history.TxnID]bool
}

// defaultDetectorStripes balances stripe-lock spread against snapshot cost.
const defaultDetectorStripes = 8

// NewDetector builds an empty detector with the default stripe count.
func NewDetector() *Detector { return NewDetectorStriped(defaultDetectorStripes) }

// NewDetectorStriped builds an empty detector with n stripes (rounded up
// to a power of two, at least 1).
func NewDetectorStriped(n int) *Detector {
	p := stripe.RoundPow2(n, stripe.MaxStripes)
	d := &Detector{stripes: make([]*detectorStripe, p), mask: uint32(p - 1)}
	for i := range d.stripes {
		d.stripes[i] = &detectorStripe{waits: make(map[history.TxnID]map[history.TxnID]bool)}
	}
	return d
}

func (d *Detector) stripeOf(t history.TxnID) *detectorStripe {
	return d.stripes[stripe.FNV32a(string(t))&d.mask]
}

// AddWaits records that waiter is blocked on holders and checks for a
// cycle. If the new edges close a cycle, the edges are rolled back and an
// *ErrDeadlock naming waiter as victim is returned.
func (d *Detector) AddWaits(waiter history.TxnID, holders []history.TxnID) error {
	st := d.stripeOf(waiter)
	st.mu.Lock()
	m := st.waits[waiter]
	if m == nil {
		m = make(map[history.TxnID]bool)
		st.waits[waiter] = m
	}
	for _, h := range holders {
		m[h] = true
	}
	st.mu.Unlock()
	// Detection under every stripe lock, acquired in index order (the
	// single-stripe paths take only one lock, so no ordering cycle). The
	// DFS therefore sees one instantaneous cut of the live graph — locking
	// stripes one at a time could assemble a phantom cycle from edges that
	// never overlapped in time and abort an innocent victim — and victim
	// edge removal is atomic with detection, so a racing detection cannot
	// see the already-broken cycle and pick a second victim.
	for _, s := range d.stripes {
		s.mu.Lock()
	}
	cycle := findCycleFrom(d.edgesLocked, waiter)
	if cycle != nil {
		delete(st.waits, waiter)
	}
	for _, s := range d.stripes {
		s.mu.Unlock()
	}
	if cycle != nil {
		return &ErrDeadlock{Victim: waiter, Cycle: cycle}
	}
	return nil
}

// edgesLocked returns the live outgoing-edge set of t. Caller holds every
// stripe lock.
func (d *Detector) edgesLocked(t history.TxnID) map[history.TxnID]bool {
	return d.stripeOf(t).waits[t]
}

// ClearWaits removes all outgoing edges of waiter (called after it wakes or
// aborts). Touches only the waiter's stripe.
func (d *Detector) ClearWaits(waiter history.TxnID) {
	st := d.stripeOf(waiter)
	st.mu.Lock()
	delete(st.waits, waiter)
	st.mu.Unlock()
}

// findCycleFrom performs a DFS from start over the graph exposed by edges
// and returns a cycle through start if one exists.
func findCycleFrom(edges func(history.TxnID) map[history.TxnID]bool, start history.TxnID) []history.TxnID {
	var path []history.TxnID
	onPath := make(map[history.TxnID]bool)
	visited := make(map[history.TxnID]bool)
	var dfs func(t history.TxnID) []history.TxnID
	dfs = func(t history.TxnID) []history.TxnID {
		if onPath[t] && t == start {
			return append([]history.TxnID(nil), path...)
		}
		if visited[t] {
			return nil
		}
		visited[t] = true
		onPath[t] = true
		path = append(path, t)
		// Deterministic iteration for reproducible cycles.
		out := edges(t)
		next := make([]history.TxnID, 0, len(out))
		for n := range out {
			next = append(next, n)
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		for _, n := range next {
			if n == start {
				return append([]history.TxnID(nil), path...)
			}
			if c := dfs(n); c != nil {
				return c
			}
		}
		path = path[:len(path)-1]
		onPath[t] = false
		return nil
	}
	return dfs(start)
}

// WaitCount returns the number of transactions currently waiting
// (diagnostics).
func (d *Detector) WaitCount() int {
	n := 0
	for _, st := range d.stripes {
		st.mu.Lock()
		n += len(st.waits)
		st.mu.Unlock()
	}
	return n
}
