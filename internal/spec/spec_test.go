package spec

import (
	"testing"
	"testing/quick"
)

func opA() Operation { return Op(NewInvocation("a"), "ok") }
func opB() Operation { return Op(NewInvocation("b"), "ok") }
func opC() Operation { return Op(NewInvocation("c"), "ok") }

// twoStep builds the automaton accepting prefixes of a·b.
func twoStep() *Automaton {
	m := NewAutomaton("two-step", "0")
	m.AddTransition("0", opA(), "1")
	m.AddTransition("1", opB(), "2")
	return m.Freeze()
}

func TestNewInvocationRendering(t *testing.T) {
	cases := []struct {
		inv  Invocation
		want string
	}{
		{NewInvocation("balance"), "balance"},
		{NewInvocation("deposit", 5), "deposit(5)"},
		{NewInvocation("put", "k", "v"), "put(k,v)"},
		{NewInvocation("mix", 1, "x", true), "mix(1,x,true)"},
	}
	for _, c := range cases {
		if got := c.inv.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestInvocationArgList(t *testing.T) {
	if got := NewInvocation("f").ArgList(); got != nil {
		t.Errorf("nullary ArgList = %v, want nil", got)
	}
	got := NewInvocation("f", "a", "b").ArgList()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("ArgList = %v, want [a b]", got)
	}
}

func TestOperationString(t *testing.T) {
	op := Op(NewInvocation("withdraw", 3), "ok")
	if got := op.String(); got != "[withdraw(3),ok]" {
		t.Errorf("String() = %q", got)
	}
}

func TestSeqString(t *testing.T) {
	if got := (Seq{}).String(); got != "Λ" {
		t.Errorf("empty Seq String = %q", got)
	}
	s := Seq{opA(), opB()}
	if got := s.String(); got != "[a,ok]·[b,ok]" {
		t.Errorf("Seq String = %q", got)
	}
}

func TestSeqCloneIndependent(t *testing.T) {
	s := Seq{opA(), opB()}
	c := s.Clone()
	c[0] = opC()
	if s[0] != opA() {
		t.Error("Clone shares storage with original")
	}
}

func TestConcat(t *testing.T) {
	got := Concat(Seq{opA()}, nil, Seq{opB(), opC()})
	want := Seq{opA(), opB(), opC()}
	if len(got) != len(want) {
		t.Fatalf("Concat length = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Concat[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAutomatonLegalPrefixes(t *testing.T) {
	m := twoStep()
	cases := []struct {
		seq  Seq
		want bool
	}{
		{Seq{}, true},
		{Seq{opA()}, true},
		{Seq{opA(), opB()}, true},
		{Seq{opB()}, false},
		{Seq{opA(), opA()}, false},
		{Seq{opA(), opB(), opA()}, false},
	}
	for _, c := range cases {
		if got := m.Legal(c.seq); got != c.want {
			t.Errorf("Legal(%s) = %v, want %v", c.seq, got, c.want)
		}
	}
}

func TestAutomatonStates(t *testing.T) {
	m := twoStep()
	states := m.States()
	if len(states) != 3 {
		t.Fatalf("States() = %v, want 3 states", states)
	}
	if states[0] != "0" {
		t.Errorf("first state = %q, want initial", states[0])
	}
}

func TestAutomatonDeterministic(t *testing.T) {
	if !twoStep().Deterministic() {
		t.Error("two-step automaton should be deterministic")
	}
	n := NewAutomaton("nd", "0")
	n.AddTransition("0", opA(), "1")
	n.AddTransition("0", opA(), "2")
	n.Freeze()
	if n.Deterministic() {
		t.Error("automaton with two a-successors should be nondeterministic")
	}
}

func TestAutomatonFreezePanics(t *testing.T) {
	m := twoStep()
	defer func() {
		if recover() == nil {
			t.Error("AddTransition after Freeze should panic")
		}
	}()
	m.AddTransition("0", opC(), "9")
}

func TestNondeterministicLegality(t *testing.T) {
	// a leads to two states; b is enabled only from one of them. The subset
	// simulation must keep both alive.
	m := NewAutomaton("nd", "0")
	m.AddTransition("0", opA(), "1")
	m.AddTransition("0", opA(), "2")
	m.AddTransition("2", opB(), "3")
	m.Freeze()
	if !m.Legal(Seq{opA(), opB()}) {
		t.Error("a·b should be legal via the nondeterministic branch")
	}
	if m.Legal(Seq{opA(), opB(), opB()}) {
		t.Error("a·b·b should be illegal")
	}
}

func TestRunAndStep(t *testing.T) {
	m := twoStep()
	got := Run(m, m.Initial(), Seq{opA()})
	if len(got) != 1 || got[0] != "1" {
		t.Errorf("Run(a) = %v, want [1]", got)
	}
	if Run(m, m.Initial(), Seq{opB()}) != nil {
		t.Error("Run(b) should be empty from initial")
	}
	if got := Step(m, []string{"0", "1"}, opB()); len(got) != 1 || got[0] != "2" {
		t.Errorf("Step({0,1}, b) = %v, want [2]", got)
	}
}

func TestStateSetKeyCanonical(t *testing.T) {
	if StateSetKey([]string{"b", "a"}) != StateSetKey([]string{"a", "b"}) {
		t.Error("StateSetKey should be order-insensitive")
	}
	if StateSetKey(nil) != "" {
		t.Error("StateSetKey(nil) should be empty")
	}
	// Property: key equality is permutation-invariance on small alphabets.
	f := func(perm []string) bool {
		k1 := StateSetKey(perm)
		rev := make([]string, len(perm))
		for i, s := range perm {
			rev[len(perm)-1-i] = s
		}
		return k1 == StateSetKey(rev)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResponsesAndInvocations(t *testing.T) {
	m := NewAutomaton("resp", "0")
	i := NewInvocation("i")
	m.AddTransition("0", Op(i, "x"), "1")
	m.AddTransition("0", Op(i, "y"), "2")
	m.AddTransition("1", Op(NewInvocation("j"), "z"), "3")
	m.Freeze()
	rs := Responses(m, i)
	if len(rs) != 2 || rs[0] != "x" || rs[1] != "y" {
		t.Errorf("Responses = %v", rs)
	}
	invs := Invocations(m)
	if len(invs) != 2 || invs[0].Name != "i" || invs[1].Name != "j" {
		t.Errorf("Invocations = %v", invs)
	}
}

func TestPrefixClosureProperty(t *testing.T) {
	// Property-based: for random sequences over the two-step alphabet, if a
	// sequence is legal then all its prefixes are legal.
	m := twoStep()
	alphabet := []Operation{opA(), opB()}
	f := func(picks []byte) bool {
		var seq Seq
		for _, p := range picks {
			seq = append(seq, alphabet[int(p)%len(alphabet)])
		}
		if !m.Legal(seq) {
			return true
		}
		for i := range seq {
			if !m.Legal(seq[:i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFuncSpecAdapters(t *testing.T) {
	fs := &FuncSpec{
		SpecName: "mod3",
		Start:    []string{"0"},
		Ops:      []Operation{opA()},
		NextFunc: func(state string, op Operation) []string {
			switch state {
			case "0":
				return []string{"1"}
			case "1":
				return []string{"2"}
			default:
				return nil
			}
		},
	}
	if fs.Name() != "mod3" {
		t.Errorf("Name = %q", fs.Name())
	}
	if !fs.Legal(Seq{opA(), opA()}) {
		t.Error("a·a should be legal")
	}
	if fs.Legal(Seq{opA(), opA(), opA()}) {
		t.Error("a·a·a should be illegal")
	}
}
