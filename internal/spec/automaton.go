package spec

import (
	"fmt"
	"sort"
)

// Automaton is an explicit, finite, possibly nondeterministic state machine
// implementing Enumerable. States are arbitrary strings; transitions are
// added with AddTransition. Automaton is the workhorse representation for
// the finite specifications in the paper (the Table I automaton, the
// Section 8.2.2 mini-specs, and finite instantiations of the classic ADTs).
//
// An Automaton is immutable after Freeze; the decision procedures assume the
// transition structure does not change while they run.
type Automaton struct {
	name     string
	initial  []string
	alphabet []Operation
	alphaSet map[Operation]bool
	delta    map[string]map[Operation][]string
	frozen   bool
}

// NewAutomaton creates an empty automaton with the given name and initial
// states.
func NewAutomaton(name string, initial ...string) *Automaton {
	return &Automaton{
		name:     name,
		initial:  append([]string(nil), initial...),
		alphaSet: make(map[Operation]bool),
		delta:    make(map[string]map[Operation][]string),
	}
}

// Name implements Spec.
func (a *Automaton) Name() string { return a.name }

// Initial implements Enumerable.
func (a *Automaton) Initial() []string { return a.initial }

// Alphabet implements Enumerable. Operations appear in insertion order.
func (a *Automaton) Alphabet() []Operation { return a.alphabet }

// AddTransition records that executing op in state from may lead to state
// to. Multiple targets for the same (from, op) make the automaton
// nondeterministic. AddTransition panics if called after Freeze; building a
// spec is a programming-time activity and misuse is a bug.
func (a *Automaton) AddTransition(from string, op Operation, to string) {
	if a.frozen {
		panic(fmt.Sprintf("spec: AddTransition on frozen automaton %q", a.name))
	}
	if !a.alphaSet[op] {
		a.alphaSet[op] = true
		a.alphabet = append(a.alphabet, op)
	}
	m := a.delta[from]
	if m == nil {
		m = make(map[Operation][]string)
		a.delta[from] = m
	}
	m[op] = append(m[op], to)
}

// Freeze marks the automaton immutable and returns it, for fluent
// construction.
func (a *Automaton) Freeze() *Automaton {
	a.frozen = true
	return a
}

// Next implements Enumerable.
func (a *Automaton) Next(state string, op Operation) []string {
	m := a.delta[state]
	if m == nil {
		return nil
	}
	return m[op]
}

// Legal implements Spec via subset simulation.
func (a *Automaton) Legal(seq Seq) bool { return Legal(a, seq) }

// States returns all states reachable from the initial states, in BFS
// order. Useful for exhaustive verification and debugging.
func (a *Automaton) States() []string {
	seen := make(map[string]bool)
	var queue, out []string
	for _, s := range a.initial {
		if !seen[s] {
			seen[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		out = append(out, s)
		// Deterministic iteration: walk the alphabet in order.
		for _, op := range a.alphabet {
			for _, t := range a.Next(s, op) {
				if !seen[t] {
					seen[t] = true
					queue = append(queue, t)
				}
			}
		}
	}
	return out
}

// Deterministic reports whether every (state, operation) pair has at most
// one successor among reachable states.
func (a *Automaton) Deterministic() bool {
	for _, s := range a.States() {
		for _, op := range a.alphabet {
			if len(dedup(a.Next(s, op))) > 1 {
				return false
			}
		}
	}
	return true
}

func dedup(xs []string) []string {
	if len(xs) < 2 {
		return xs
	}
	seen := make(map[string]bool, len(xs))
	var out []string
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Strings(out)
	return out
}

// FuncSpec adapts a transition function over string states to Enumerable.
// It suits specs whose state space is naturally generated (e.g. a bounded
// bank account) where materializing every transition up front is wasteful.
type FuncSpec struct {
	SpecName string
	Start    []string
	Ops      []Operation
	// NextFunc returns successor states of state under op; nil/empty means
	// the operation is illegal in that state.
	NextFunc func(state string, op Operation) []string
}

// Name implements Spec.
func (f *FuncSpec) Name() string { return f.SpecName }

// Initial implements Enumerable.
func (f *FuncSpec) Initial() []string { return f.Start }

// Alphabet implements Enumerable.
func (f *FuncSpec) Alphabet() []Operation { return f.Ops }

// Next implements Enumerable.
func (f *FuncSpec) Next(state string, op Operation) []string {
	return f.NextFunc(state, op)
}

// Legal implements Spec.
func (f *FuncSpec) Legal(seq Seq) bool { return Legal(f, seq) }
