// Package spec models serial specifications of abstract data types as
// prefix-closed languages of operation sequences, following Weihl,
// "The Impact of Recovery on Concurrency Control" (JCSS 47, 1993), Section 3.
//
// An Operation is a pair of an invocation and a response; a Spec is the set
// of operation sequences the object may exhibit in a sequential, failure-free
// execution. Specs that additionally expose an enumerable nondeterministic
// state machine (the Enumerable interface) admit exact decision procedures
// for legality, the looks-like preorder, equieffectiveness, and the
// commutativity relations implemented in package commute.
package spec

import (
	"fmt"
	"sort"
	"strings"
)

// Invocation names an operation invocation: the operation name plus its
// rendered argument list. Invocations are comparable and therefore usable as
// map keys. Use NewInvocation to construct one with canonical rendering.
type Invocation struct {
	// Name is the operation name, e.g. "withdraw".
	Name string
	// Args is the canonical comma-separated rendering of the arguments,
	// e.g. "3" or "k,v". Empty for nullary invocations.
	Args string
}

// NewInvocation builds an Invocation with a canonical argument rendering.
func NewInvocation(name string, args ...any) Invocation {
	if len(args) == 0 {
		return Invocation{Name: name}
	}
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = fmt.Sprint(a)
	}
	return Invocation{Name: name, Args: strings.Join(parts, ",")}
}

// String renders the invocation as name(args).
func (i Invocation) String() string {
	if i.Args == "" {
		return i.Name
	}
	return i.Name + "(" + i.Args + ")"
}

// ArgList splits the rendered argument list back into individual arguments.
// It returns nil for nullary invocations.
func (i Invocation) ArgList() []string {
	if i.Args == "" {
		return nil
	}
	return strings.Split(i.Args, ",")
}

// Response is the result returned by an operation execution, rendered
// canonically (e.g. "ok", "no", "5").
type Response string

// Operation is a single execution of an operation in the formal sense of the
// paper: an invocation paired with the response it returned. Operations are
// comparable.
type Operation struct {
	Inv Invocation
	Res Response
}

// Op is shorthand for constructing an Operation.
func Op(inv Invocation, res Response) Operation {
	return Operation{Inv: inv, Res: res}
}

// String renders the operation in the paper's bracket notation,
// e.g. "[withdraw(3),ok]".
func (o Operation) String() string {
	return "[" + o.Inv.String() + "," + string(o.Res) + "]"
}

// Seq is an operation sequence. The empty sequence is the empty history of
// an object.
type Seq []Operation

// String renders the sequence as a dot-separated list of operations.
func (s Seq) String() string {
	if len(s) == 0 {
		return "Λ"
	}
	parts := make([]string, len(s))
	for i, op := range s {
		parts[i] = op.String()
	}
	return strings.Join(parts, "·")
}

// Clone returns a copy of the sequence.
func (s Seq) Clone() Seq {
	out := make(Seq, len(s))
	copy(out, s)
	return out
}

// Concat returns the concatenation of sequences.
func Concat(seqs ...Seq) Seq {
	var out Seq
	for _, s := range seqs {
		out = append(out, s...)
	}
	return out
}

// Spec is a serial specification: a prefix-closed set of operation
// sequences. Legal reports membership.
type Spec interface {
	// Name identifies the specification (e.g. "bank-account").
	Name() string
	// Legal reports whether the operation sequence is in the specification.
	// Specs are prefix-closed: if Legal(s) then Legal(p) for every prefix p.
	Legal(seq Seq) bool
}

// Enumerable is a Spec exposed as an explicit (possibly nondeterministic)
// state machine over string-encoded states with a finite operation alphabet.
// The decision procedures in package commute require this interface.
//
// Semantics: a sequence is legal iff some path from an initial state
// executes it. Next returns the states reachable from state by executing op;
// an empty result means op is not enabled in that state.
type Enumerable interface {
	Spec
	// Initial returns the initial states (usually one).
	Initial() []string
	// Next returns the successor states of state under op (empty if illegal).
	Next(state string, op Operation) []string
	// Alphabet returns the finite set of operations under consideration.
	Alphabet() []Operation
}

// Legal runs the subset simulation of an Enumerable over seq and reports
// whether the final state set is nonempty. It is the canonical Legal
// implementation for Enumerable specs.
func Legal(e Enumerable, seq Seq) bool {
	return len(Run(e, e.Initial(), seq)) > 0
}

// Run advances a state set through an operation sequence, returning the set
// of states reachable at the end (deduplicated, sorted). An empty result
// means the sequence is illegal from the given states.
func Run(e Enumerable, states []string, seq Seq) []string {
	cur := states
	for _, op := range seq {
		cur = Step(e, cur, op)
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

// Step advances a state set by one operation (deduplicated, sorted).
func Step(e Enumerable, states []string, op Operation) []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range states {
		for _, t := range e.Next(s, op) {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	sort.Strings(out)
	return out
}

// StateSetKey returns a canonical key for a state set, suitable for use in
// visited maps during subset construction.
func StateSetKey(states []string) string {
	if len(states) == 0 {
		return ""
	}
	sorted := make([]string, len(states))
	copy(sorted, states)
	sort.Strings(sorted)
	return strings.Join(sorted, "\x1f")
}

// Responses returns the responses r such that Op(inv, r) appears in the
// alphabet of e, in alphabet order.
func Responses(e Enumerable, inv Invocation) []Response {
	var out []Response
	for _, op := range e.Alphabet() {
		if op.Inv == inv {
			out = append(out, op.Res)
		}
	}
	return out
}

// Invocations returns the distinct invocations appearing in the alphabet of
// e, in first-appearance order.
func Invocations(e Enumerable) []Invocation {
	seen := make(map[Invocation]bool)
	var out []Invocation
	for _, op := range e.Alphabet() {
		if !seen[op.Inv] {
			seen[op.Inv] = true
			out = append(out, op.Inv)
		}
	}
	return out
}
