package atomicity

import (
	"math/rand"
	"testing"

	"repro/internal/adt"
	"repro/internal/history"
)

const bankX = history.ObjectID("BA")

func baSpecs() Specs {
	return Specs{bankX: adt.DefaultBankAccount().Spec()}
}

// paperHistory is the atomic history at the end of Section 3.3.
func paperHistory() history.History {
	return history.NewBuilder().
		Invoke(bankX, "A", adt.Deposit(3)).Respond(bankX, "A", "ok").
		Invoke(bankX, "B", adt.Withdraw(2)).Respond(bankX, "B", "ok").
		Invoke(bankX, "A", adt.Balance()).Respond(bankX, "A", "3").
		Invoke(bankX, "B", adt.Balance()).
		Commit(bankX, "A").
		Respond(bankX, "B", "1").
		Commit(bankX, "B").
		Invoke(bankX, "C", adt.Withdraw(2)).Respond(bankX, "C", "no").
		Commit(bankX, "C").
		History()
}

// variantHistory moves B's last response before A's commit, which the paper
// (Section 3.4) says destroys dynamic atomicity.
func variantHistory() history.History {
	return history.NewBuilder().
		Invoke(bankX, "A", adt.Deposit(3)).Respond(bankX, "A", "ok").
		Invoke(bankX, "B", adt.Withdraw(2)).Respond(bankX, "B", "ok").
		Invoke(bankX, "A", adt.Balance()).Respond(bankX, "A", "3").
		Invoke(bankX, "B", adt.Balance()).Respond(bankX, "B", "1").
		Commit(bankX, "A").
		Commit(bankX, "B").
		Invoke(bankX, "C", adt.Withdraw(2)).Respond(bankX, "C", "no").
		Commit(bankX, "C").
		History()
}

func TestAcceptable(t *testing.T) {
	serial := history.NewBuilder().
		Invoke(bankX, "A", adt.Deposit(5)).Respond(bankX, "A", "ok").
		Invoke(bankX, "A", adt.Withdraw(3)).Respond(bankX, "A", "ok").
		Commit(bankX, "A").
		History()
	ok, err := Acceptable(serial, baSpecs())
	if err != nil || !ok {
		t.Fatalf("Acceptable = %v, %v", ok, err)
	}
	bad := history.NewBuilder().
		Invoke(bankX, "A", adt.Withdraw(3)).Respond(bankX, "A", "ok").
		Commit(bankX, "A").
		History()
	ok, err = Acceptable(bad, baSpecs())
	if err != nil || ok {
		t.Fatalf("overdraft from empty account should be unacceptable; got %v, %v", ok, err)
	}
}

func TestAcceptableMissingSpec(t *testing.T) {
	h := history.NewBuilder().
		Invoke("unknown", "A", adt.Deposit(1)).Respond("unknown", "A", "ok").
		History()
	if _, err := Acceptable(h, baSpecs()); err == nil {
		t.Error("missing spec should be an error")
	}
}

func TestPaperHistoryAtomicAndDynamicAtomic(t *testing.T) {
	h := paperHistory()
	ok, err := Atomic(h, baSpecs())
	if err != nil || !ok {
		t.Fatalf("paper history should be atomic: %v, %v", ok, err)
	}
	da, viol, err := DynamicAtomic(h, baSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if !da {
		t.Fatalf("paper history should be dynamic atomic; violation: %v", viol)
	}
	oda, viol, err := OnlineDynamicAtomic(h, baSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if !oda {
		t.Fatalf("paper history should be online dynamic atomic; violation: %v", viol)
	}
}

// TestVariantNotDynamicAtomic reproduces the paper's Section 3.4
// observation: with B's last response before A's commit, (A,B) leaves
// precedes(H), order B-A-C becomes admissible, and the history is not
// serializable in that order — dynamic atomicity fails even though the
// history is still atomic.
func TestVariantNotDynamicAtomic(t *testing.T) {
	h := variantHistory()
	ok, err := Atomic(h, baSpecs())
	if err != nil || !ok {
		t.Fatalf("variant should still be atomic: %v, %v", ok, err)
	}
	da, viol, err := DynamicAtomic(h, baSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if da {
		t.Fatal("variant should not be dynamic atomic")
	}
	if viol == nil || len(viol.Order) != 3 {
		t.Fatalf("violation = %v", viol)
	}
	if viol.Order[0] != "B" || viol.Order[1] != "A" {
		t.Errorf("expected B-A-C as the violating order, got %v", viol.Order)
	}
}

func TestSerializableIn(t *testing.T) {
	h := paperHistory()
	ok, err := SerializableIn(h, []history.TxnID{"A", "B", "C"}, baSpecs())
	if err != nil || !ok {
		t.Fatalf("A-B-C should serialize: %v, %v", ok, err)
	}
	ok, err = SerializableIn(h, []history.TxnID{"B", "A", "C"}, baSpecs())
	if err != nil || ok {
		t.Fatalf("B-A-C should not serialize: %v, %v", ok, err)
	}
	if _, err := SerializableIn(h, []history.TxnID{"A", "B"}, baSpecs()); err == nil {
		t.Error("missing transaction in order should error")
	}
}

func TestSerializableWitness(t *testing.T) {
	h := paperHistory()
	order, ok, err := Serializable(h, baSpecs())
	if err != nil || !ok {
		t.Fatalf("Serializable = %v, %v", ok, err)
	}
	good, err := SerializableIn(h, order, baSpecs())
	if err != nil || !good {
		t.Fatalf("returned witness %v does not serialize", order)
	}
}

func TestAtomicIgnoresUncommitted(t *testing.T) {
	// An active transaction has observed an uncommitted overdraft-enabling
	// deposit — but permanent(H) contains only A, so H is atomic.
	h := history.NewBuilder().
		Invoke(bankX, "A", adt.Deposit(1)).Respond(bankX, "A", "ok").
		Commit(bankX, "A").
		Invoke(bankX, "B", adt.Withdraw(5)).Respond(bankX, "B", "ok").
		History()
	ok, err := Atomic(h, baSpecs())
	if err != nil || !ok {
		t.Fatalf("uncommitted junk must be ignored: %v, %v", ok, err)
	}
}

// TestOnlineStricterThanDynamic: online dynamic atomicity quantifies over
// commit sets, so a history whose active transaction could never commit
// consistently is caught online even though it is dynamic atomic.
func TestOnlineStricterThanDynamic(t *testing.T) {
	h := history.NewBuilder().
		Invoke(bankX, "A", adt.Deposit(1)).Respond(bankX, "A", "ok").
		Commit(bankX, "A").
		Invoke(bankX, "B", adt.Withdraw(5)).Respond(bankX, "B", "ok").
		History()
	da, _, err := DynamicAtomic(h, baSpecs())
	if err != nil || !da {
		t.Fatalf("dynamic atomic should hold (B uncommitted): %v", err)
	}
	oda, viol, err := OnlineDynamicAtomic(h, baSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if oda {
		t.Fatal("online dynamic atomicity should fail: B might commit")
	}
	if viol == nil || len(viol.CommitSet) != 2 {
		t.Errorf("violation = %v", viol)
	}
}

func TestDynamicAtomicSampled(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ok, _, err := DynamicAtomicSampled(paperHistory(), baSpecs(), 20, rng)
	if err != nil || !ok {
		t.Fatalf("sampled check should pass on the paper history: %v", err)
	}
	bad, viol, err := DynamicAtomicSampled(variantHistory(), baSpecs(), 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if bad {
		t.Fatal("sampled check should find the B-A-C violation")
	}
	if viol == nil {
		t.Error("expected a violation witness")
	}
}

// TestMultiObjectAtomicity exercises serializability across two objects:
// each object is locally consistent with a different order, so no global
// order exists — the classic non-serializable cross.
func TestMultiObjectAtomicity(t *testing.T) {
	x := history.ObjectID("X")
	y := history.ObjectID("Y")
	reg := adt.DefaultRegister()
	specs := Specs{x: reg.Spec(), y: reg.Spec()}
	// A writes 1 to X then reads Y=0 (before B's write); B writes 1 to Y
	// then reads X=0 (before A's write). No serial order satisfies both.
	h := history.NewBuilder().
		Invoke(x, "A", adt.WriteReg("1")).Respond(x, "A", "ok").
		Invoke(y, "B", adt.WriteReg("1")).Respond(y, "B", "ok").
		Invoke(y, "A", adt.ReadReg()).Respond(y, "A", "0").
		Invoke(x, "B", adt.ReadReg()).Respond(x, "B", "0").
		Commit(x, "A").Commit(y, "A").
		Commit(x, "B").Commit(y, "B").
		History()
	if err := history.WellFormed(h); err != nil {
		t.Fatal(err)
	}
	ok, err := Atomic(h, specs)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("write-skew cross should not be atomic")
	}
	// Flip B's read to see the committed value: now A-B serializes.
	h2 := history.NewBuilder().
		Invoke(x, "A", adt.WriteReg("1")).Respond(x, "A", "ok").
		Invoke(y, "B", adt.WriteReg("1")).Respond(y, "B", "ok").
		Invoke(y, "A", adt.ReadReg()).Respond(y, "A", "0").
		Invoke(x, "B", adt.ReadReg()).Respond(x, "B", "1").
		Commit(x, "A").Commit(y, "A").
		Commit(x, "B").Commit(y, "B").
		History()
	ok2, err := Atomic(h2, specs)
	if err != nil || !ok2 {
		t.Fatalf("A-B order should serialize: %v, %v", ok2, err)
	}
}
