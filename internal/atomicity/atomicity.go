// Package atomicity implements the correctness notions of Weihl,
// "The Impact of Recovery on Concurrency Control" (JCSS 47, 1993),
// Section 3: acceptability of serial failure-free histories,
// serializability, atomicity, dynamic atomicity, and online dynamic
// atomicity (Section 7). These checkers are the oracle against which both
// the abstract object model (internal/core) and the executable transaction
// engine (internal/txn) are validated.
package atomicity

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/history"
	"repro/internal/spec"
)

// Specs maps each object to its serial specification.
type Specs map[history.ObjectID]spec.Spec

// Acceptable reports whether a serial failure-free history is acceptable:
// for every object X, Opseq(H|X) is legal according to Spec(X)
// (paper, Section 3.3). Objects without a registered spec are an error:
// silently accepting them would mask configuration bugs in tests.
func Acceptable(h history.History, specs Specs) (bool, error) {
	for _, x := range h.Objects() {
		s, ok := specs[x]
		if !ok {
			return false, fmt.Errorf("atomicity: no spec registered for object %q", x)
		}
		if !s.Legal(history.Opseq(h.ProjectObj(x))) {
			return false, nil
		}
	}
	return true, nil
}

// SerializableIn reports whether h is serializable in the given total
// order: Serial(h, order) must be acceptable. The order must contain every
// transaction appearing in h.
func SerializableIn(h history.History, order []history.TxnID, specs Specs) (bool, error) {
	inOrder := make(map[history.TxnID]bool, len(order))
	for _, t := range order {
		inOrder[t] = true
	}
	for _, t := range h.Txns() {
		if !inOrder[t] {
			return false, fmt.Errorf("atomicity: order omits transaction %q", t)
		}
	}
	return Acceptable(history.Serial(h, order), specs)
}

// Serializable reports whether some total order of h's transactions makes h
// serializable, returning a witness order. It enumerates permutations and
// is therefore intended for small histories (tests, theorem validation).
func Serializable(h history.History, specs Specs) ([]history.TxnID, bool, error) {
	txns := h.Txns()
	var witness []history.TxnID
	var firstErr error
	found := permute(txns, func(order []history.TxnID) bool {
		ok, err := SerializableIn(h, order, specs)
		if err != nil {
			firstErr = err
			return true // stop
		}
		if ok {
			witness = append([]history.TxnID(nil), order...)
			return true
		}
		return false
	})
	if firstErr != nil {
		return nil, false, firstErr
	}
	if !found || witness == nil {
		return nil, false, nil
	}
	return witness, true, nil
}

// Atomic reports whether h is atomic: permanent(h) is serializable
// (paper, Section 3.3).
func Atomic(h history.History, specs Specs) (bool, error) {
	_, ok, err := Serializable(h.Permanent(), specs)
	return ok, err
}

// Violation describes a failed dynamic-atomicity check: the total order
// (consistent with precedes) in which the permanent history is not
// serializable, and, for online checks, the commit set used.
type Violation struct {
	Order     []history.TxnID
	CommitSet []history.TxnID
}

// String implements fmt.Stringer.
func (v *Violation) String() string {
	s := fmt.Sprintf("not serializable in order %v", v.Order)
	if v.CommitSet != nil {
		s += fmt.Sprintf(" (commit set %v)", v.CommitSet)
	}
	return s
}

// DynamicAtomic reports whether h is dynamic atomic: permanent(h) is
// serializable in every total order of its committed transactions
// consistent with precedes(h) (paper, Section 3.4). On failure it returns
// a witness violation.
func DynamicAtomic(h history.History, specs Specs) (bool, *Violation, error) {
	perm := h.Permanent()
	txns := perm.Txns()
	prec := restrict(history.Precedes(h), txns)
	var viol *Violation
	var firstErr error
	bad := linearExtensions(txns, prec, func(order []history.TxnID) bool {
		ok, err := SerializableIn(perm, order, specs)
		if err != nil {
			firstErr = err
			return true
		}
		if !ok {
			viol = &Violation{Order: append([]history.TxnID(nil), order...)}
			return true
		}
		return false
	})
	if firstErr != nil {
		return false, nil, firstErr
	}
	if bad && viol != nil {
		return false, viol, nil
	}
	return true, nil, nil
}

// OnlineDynamicAtomic reports whether h is online dynamic atomic
// (paper, Section 7): for every commit set CS for h — a set containing all
// committed transactions, none of the aborted ones, and any subset of the
// active ones — H|CS is serializable in every total order consistent with
// precedes(H|CS). Online dynamic atomicity implies dynamic atomicity.
func OnlineDynamicAtomic(h history.History, specs Specs) (bool, *Violation, error) {
	committed := h.Committed()
	active := h.Active()
	base := make([]history.TxnID, 0, len(committed))
	for _, t := range h.Txns() {
		if committed[t] {
			base = append(base, t)
		}
	}
	// Enumerate subsets of active transactions.
	n := len(active)
	if n > 20 {
		return false, nil, fmt.Errorf("atomicity: %d active transactions is too many for exhaustive commit-set enumeration", n)
	}
	for mask := 0; mask < 1<<n; mask++ {
		cs := append([]history.TxnID(nil), base...)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				cs = append(cs, active[i])
			}
		}
		csSet := make(map[history.TxnID]bool, len(cs))
		for _, t := range cs {
			csSet[t] = true
		}
		sub := h.ProjectTxns(csSet)
		txns := sub.Txns()
		prec := restrict(history.Precedes(sub), txns)
		var viol *Violation
		var firstErr error
		bad := linearExtensions(txns, prec, func(order []history.TxnID) bool {
			ok, err := SerializableIn(sub, order, specs)
			if err != nil {
				firstErr = err
				return true
			}
			if !ok {
				viol = &Violation{
					Order:     append([]history.TxnID(nil), order...),
					CommitSet: cs,
				}
				return true
			}
			return false
		})
		if firstErr != nil {
			return false, nil, firstErr
		}
		if bad && viol != nil {
			return false, viol, nil
		}
	}
	return true, nil, nil
}

// DynamicAtomicSampled is a scalable, sound-but-incomplete variant of
// DynamicAtomic for large histories: it checks the commit order plus
// maxOrders random linear extensions of precedes(h). A false result is a
// definite violation; a true result means no violation was found in the
// sample.
func DynamicAtomicSampled(h history.History, specs Specs, maxOrders int, rng *rand.Rand) (bool, *Violation, error) {
	perm := h.Permanent()
	txns := perm.Txns()
	prec := restrict(history.Precedes(h), txns)

	commitOrder := history.CommitOrder(h)
	ok, err := SerializableIn(perm, commitOrder, specs)
	if err != nil {
		return false, nil, err
	}
	if !ok {
		return false, &Violation{Order: commitOrder}, nil
	}
	for i := 0; i < maxOrders; i++ {
		order, ok := randomLinearExtension(txns, prec, rng)
		if !ok {
			break
		}
		good, err := SerializableIn(perm, order, specs)
		if err != nil {
			return false, nil, err
		}
		if !good {
			return false, &Violation{Order: order}, nil
		}
	}
	return true, nil, nil
}

// restrict keeps only the pairs of prec whose endpoints are both in txns.
func restrict(prec map[history.TxnID]map[history.TxnID]bool, txns []history.TxnID) map[history.TxnID]map[history.TxnID]bool {
	keep := make(map[history.TxnID]bool, len(txns))
	for _, t := range txns {
		keep[t] = true
	}
	out := make(map[history.TxnID]map[history.TxnID]bool)
	for a, bs := range prec {
		if !keep[a] {
			continue
		}
		for b := range bs {
			if !keep[b] {
				continue
			}
			m := out[a]
			if m == nil {
				m = make(map[history.TxnID]bool)
				out[a] = m
			}
			m[b] = true
		}
	}
	return out
}

// permute calls visit with each permutation of xs until visit returns true;
// it reports whether visit stopped the enumeration.
func permute(xs []history.TxnID, visit func([]history.TxnID) bool) bool {
	buf := append([]history.TxnID(nil), xs...)
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(buf) {
			return visit(buf)
		}
		for i := k; i < len(buf); i++ {
			buf[k], buf[i] = buf[i], buf[k]
			if rec(k + 1) {
				return true
			}
			buf[k], buf[i] = buf[i], buf[k]
		}
		return false
	}
	return rec(0)
}

// linearExtensions enumerates every total order of txns consistent with
// prec (a DAG given as a → {b: a before b}), calling visit for each until
// visit returns true; it reports whether visit stopped the enumeration.
func linearExtensions(txns []history.TxnID, prec map[history.TxnID]map[history.TxnID]bool, visit func([]history.TxnID) bool) bool {
	indeg := make(map[history.TxnID]int, len(txns))
	for _, t := range txns {
		indeg[t] = 0
	}
	for _, bs := range prec {
		for b := range bs {
			indeg[b]++
		}
	}
	order := make([]history.TxnID, 0, len(txns))
	used := make(map[history.TxnID]bool, len(txns))
	var rec func() bool
	rec = func() bool {
		if len(order) == len(txns) {
			return visit(order)
		}
		for _, t := range txns {
			if used[t] || indeg[t] != 0 {
				continue
			}
			used[t] = true
			order = append(order, t)
			for b := range prec[t] {
				indeg[b]--
			}
			if rec() {
				return true
			}
			for b := range prec[t] {
				indeg[b]++
			}
			order = order[:len(order)-1]
			used[t] = false
		}
		return false
	}
	return rec()
}

// randomLinearExtension draws one uniform-ish random linear extension of
// prec over txns. It reports false if prec is cyclic over txns.
func randomLinearExtension(txns []history.TxnID, prec map[history.TxnID]map[history.TxnID]bool, rng *rand.Rand) ([]history.TxnID, bool) {
	indeg := make(map[history.TxnID]int, len(txns))
	for _, t := range txns {
		indeg[t] = 0
	}
	for _, bs := range prec {
		for b := range bs {
			indeg[b]++
		}
	}
	remaining := append([]history.TxnID(nil), txns...)
	sort.Slice(remaining, func(i, j int) bool { return remaining[i] < remaining[j] })
	var order []history.TxnID
	for len(remaining) > 0 {
		var ready []int
		for i, t := range remaining {
			if indeg[t] == 0 {
				ready = append(ready, i)
			}
		}
		if len(ready) == 0 {
			return nil, false
		}
		pick := ready[rng.Intn(len(ready))]
		t := remaining[pick]
		order = append(order, t)
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		for b := range prec[t] {
			indeg[b]--
		}
	}
	return order, true
}
