// Package histfile parses and renders histories in a simple line-oriented
// text format, so that counterexamples and engine traces can be saved,
// shared, and re-checked with cmd/histcheck.
//
// Format (one statement per line, '#' starts a comment):
//
//	object <id> <type>            # declare an object and its serial spec
//	invoke <obj> <txn> <inv>      # invocation event, e.g. deposit(3)
//	respond <obj> <txn> <res>     # response event, e.g. ok
//	commit <obj> <txn>
//	abort <obj> <txn>
//
// Types are the registered ADT names (bank-account, int-set, fifo-queue,
// kv-store, register, resource-pool).
package histfile

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/adt"
	"repro/internal/atomicity"
	"repro/internal/history"
	"repro/internal/spec"
)

// File is a parsed history file: the declared objects with their specs and
// the event sequence.
type File struct {
	Specs atomicity.Specs
	Types map[history.ObjectID]adt.Type
	H     history.History
}

// TypeByName resolves a registered ADT name.
func TypeByName(name string) (adt.Type, bool) {
	switch name {
	case "bank-account":
		return adt.DefaultBankAccount(), true
	case "int-set":
		return adt.DefaultIntSet(), true
	case "fifo-queue":
		return adt.DefaultFIFOQueue(), true
	case "kv-store":
		return adt.DefaultKVStore(), true
	case "register":
		return adt.DefaultRegister(), true
	case "resource-pool":
		return adt.DefaultResourcePool(), true
	case "escrow-counter":
		return adt.DefaultEscrowCounter(), true
	}
	return nil, false
}

// ParseInvocation parses "name" or "name(a,b)" into an Invocation.
func ParseInvocation(s string) (spec.Invocation, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 {
		if strings.ContainsAny(s, ") ,") {
			return spec.Invocation{}, fmt.Errorf("histfile: malformed invocation %q", s)
		}
		return spec.Invocation{Name: s}, nil
	}
	if !strings.HasSuffix(s, ")") {
		return spec.Invocation{}, fmt.Errorf("histfile: malformed invocation %q", s)
	}
	name := s[:open]
	args := s[open+1 : len(s)-1]
	if name == "" {
		return spec.Invocation{}, fmt.Errorf("histfile: malformed invocation %q", s)
	}
	return spec.Invocation{Name: name, Args: args}, nil
}

// Parse reads a history file.
func Parse(r io.Reader) (*File, error) {
	f := &File{
		Specs: atomicity.Specs{},
		Types: make(map[history.ObjectID]adt.Type),
	}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		fail := func(format string, args ...any) error {
			return fmt.Errorf("histfile: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "object":
			if len(fields) != 3 {
				return nil, fail("object wants <id> <type>")
			}
			ty, ok := TypeByName(fields[2])
			if !ok {
				return nil, fail("unknown type %q", fields[2])
			}
			id := history.ObjectID(fields[1])
			f.Specs[id] = ty.Spec()
			f.Types[id] = ty
		case "invoke":
			if len(fields) != 4 {
				return nil, fail("invoke wants <obj> <txn> <invocation>")
			}
			inv, err := ParseInvocation(fields[3])
			if err != nil {
				return nil, fail("%v", err)
			}
			f.H = append(f.H, history.Event{
				Kind: history.Invoke,
				Obj:  history.ObjectID(fields[1]),
				Txn:  history.TxnID(fields[2]),
				Inv:  inv,
			})
		case "respond":
			if len(fields) != 4 {
				return nil, fail("respond wants <obj> <txn> <response>")
			}
			f.H = append(f.H, history.Event{
				Kind: history.Respond,
				Obj:  history.ObjectID(fields[1]),
				Txn:  history.TxnID(fields[2]),
				Res:  spec.Response(fields[3]),
			})
		case "commit", "abort":
			if len(fields) != 3 {
				return nil, fail("%s wants <obj> <txn>", fields[0])
			}
			kind := history.Commit
			if fields[0] == "abort" {
				kind = history.Abort
			}
			f.H = append(f.H, history.Event{
				Kind: kind,
				Obj:  history.ObjectID(fields[1]),
				Txn:  history.TxnID(fields[2]),
			})
		default:
			return nil, fail("unknown statement %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, x := range f.H.Objects() {
		if _, ok := f.Specs[x]; !ok {
			return nil, fmt.Errorf("histfile: object %q used but not declared", x)
		}
	}
	return f, nil
}

// Render writes the history back in file format.
func Render(w io.Writer, f *File, typeNames map[history.ObjectID]string) error {
	for _, x := range f.H.Objects() {
		name := typeNames[x]
		if name == "" {
			name = "bank-account"
		}
		if _, err := fmt.Fprintf(w, "object %s %s\n", x, name); err != nil {
			return err
		}
	}
	for _, e := range f.H {
		var err error
		switch e.Kind {
		case history.Invoke:
			_, err = fmt.Fprintf(w, "invoke %s %s %s\n", e.Obj, e.Txn, e.Inv)
		case history.Respond:
			_, err = fmt.Fprintf(w, "respond %s %s %s\n", e.Obj, e.Txn, e.Res)
		case history.Commit:
			_, err = fmt.Fprintf(w, "commit %s %s\n", e.Obj, e.Txn)
		case history.Abort:
			_, err = fmt.Fprintf(w, "abort %s %s\n", e.Obj, e.Txn)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
