package histfile

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/atomicity"
	"repro/internal/history"
)

const sample = `
# Theorem 9 counterexample shape
object BA bank-account

invoke BA B deposit(2)
respond BA B ok
invoke BA C withdraw(2)
respond BA C ok
commit BA B
commit BA C
`

func TestParseSample(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.H) != 6 {
		t.Fatalf("events = %d, want 6", len(f.H))
	}
	if _, ok := f.Specs["BA"]; !ok {
		t.Fatal("spec for BA missing")
	}
	if err := history.WellFormed(f.H); err != nil {
		t.Fatal(err)
	}
	ok, err := atomicity.Atomic(f.H, f.Specs)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("sample should be atomic (B-C order works)")
	}
	da, _, err := atomicity.DynamicAtomic(f.H, f.Specs)
	if err != nil {
		t.Fatal(err)
	}
	if da {
		t.Error("sample should not be dynamic atomic (C-B order fails)")
	}
}

func TestParseInvocation(t *testing.T) {
	cases := []struct {
		in      string
		name    string
		args    string
		wantErr bool
	}{
		{"balance", "balance", "", false},
		{"deposit(3)", "deposit", "3", false},
		{"put(k,v)", "put", "k,v", false},
		{"bad(", "", "", true},
		{"(3)", "", "", true},
		{"a)b", "", "", true},
	}
	for _, c := range cases {
		inv, err := ParseInvocation(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseInvocation(%q) should fail", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseInvocation(%q): %v", c.in, err)
			continue
		}
		if inv.Name != c.name || inv.Args != c.args {
			t.Errorf("ParseInvocation(%q) = %v", c.in, inv)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"object BA",                       // missing type
		"object BA no-such-type",          // unknown type
		"invoke BA A",                     // missing invocation
		"respond BA A",                    // missing response
		"commit BA",                       // missing txn
		"warble BA A",                     // unknown statement
		"invoke BA A deposit(1)",          // undeclared object
		"object X bank-account\nfrob X A", // unknown statement after decl
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("Parse(%q) should fail", c)
		}
	}
}

func TestCommentsAndBlanks(t *testing.T) {
	in := "# only comments\n\n   \n# more\n"
	f, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.H) != 0 {
		t.Errorf("events = %d, want 0", len(f.H))
	}
}

func TestRenderRoundTrip(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Render(&buf, f, map[history.ObjectID]string{"BA": "bank-account"}); err != nil {
		t.Fatal(err)
	}
	f2, err := Parse(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	if len(f2.H) != len(f.H) {
		t.Fatalf("round trip changed event count: %d vs %d", len(f2.H), len(f.H))
	}
	for i := range f.H {
		a, b := f.H[i], f2.H[i]
		if a.Kind != b.Kind || a.Obj != b.Obj || a.Txn != b.Txn || a.Inv != b.Inv || a.Res != b.Res {
			t.Errorf("event %d changed: %v vs %v", i, a, b)
		}
	}
}

func TestTypeByName(t *testing.T) {
	for _, name := range []string{"bank-account", "int-set", "fifo-queue", "kv-store", "register", "resource-pool"} {
		ty, ok := TypeByName(name)
		if !ok || ty.Name() != name {
			t.Errorf("TypeByName(%q) = %v, %v", name, ty, ok)
		}
	}
	if _, ok := TypeByName("nope"); ok {
		t.Error("unknown type should not resolve")
	}
}
