package wal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/history"
	"repro/internal/spec"
)

// Backend is the durability seam beneath the group-commit flusher: Sync is
// called once per sequenced batch, with records in LSN order, and must not
// return until the batch is as durable as the backend provides. Commit
// acknowledgements are withheld until Sync returns. Sync is never called
// concurrently (the flush lock serializes batches).
type Backend interface {
	Sync(records []Record) error
	Close() error
}

// Replayer is implemented by backends that can hand back the records that
// survived a previous incarnation (a re-opened file backend). Open loads
// replayed records into the committed region before accepting new appends.
type Replayer interface {
	Replay() []Record
}

// Truncator is implemented by backends that can discard a durable prefix
// of the log — the storage-reclamation half of checkpointing.
// Log.TruncateBefore calls it after dropping the in-memory prefix; the
// call must be atomic with respect to crashes (a crash mid-truncation
// leaves either the old log or the truncated log, never a torn mix), which
// the file backend provides by rewriting into a temporary file and
// renaming it over the log, and the segmented backend by unlinking whole
// segments. The returned TruncateStats expose the storage cost of the
// operation (rewrite bytes vs segments unlinked) so the two strategies can
// be compared directly; Log.TruncateBefore accumulates them.
type Truncator interface {
	TruncateBefore(lsn LSN) (TruncateStats, error)
}

// EncodedUndo is an undo token in its durable string form. Producers that
// need their tokens to survive a file-backend round trip stage records
// with EncodedUndo (see adt.UndoTokenCodec and recovery.UndoLog);
// recovery.Restart hands the string back to the machine's decoder.
type EncodedUndo string

// Discard is the in-memory backend: batches are sequenced but never leave
// process memory — the log's historical behavior, and the default.
var Discard Backend = discard{}

type discard struct{}

func (discard) Sync([]Record) error { return nil }
func (discard) Close() error        { return nil }

// LatencyBackend simulates a storage device with a fixed per-sync latency
// (an fsync cost model), optionally delegating to an inner backend after
// the delay. It makes the group-commit trade-off measurable: batch
// interval buys fewer, larger syncs at the price of commit latency.
type LatencyBackend struct {
	delay time.Duration
	inner Backend
	syncs atomic.Int64
	recs  atomic.Int64
}

// NewLatencyBackend builds a latency-simulating backend; inner may be nil.
func NewLatencyBackend(delay time.Duration, inner Backend) *LatencyBackend {
	return &LatencyBackend{delay: delay, inner: inner}
}

// Sync implements Backend.
func (b *LatencyBackend) Sync(records []Record) error {
	if b.delay > 0 {
		time.Sleep(b.delay)
	}
	b.syncs.Add(1)
	b.recs.Add(int64(len(records)))
	if b.inner != nil {
		return b.inner.Sync(records)
	}
	return nil
}

// Close implements Backend.
func (b *LatencyBackend) Close() error {
	if b.inner != nil {
		return b.inner.Close()
	}
	return nil
}

// Syncs returns the number of Sync calls served.
func (b *LatencyBackend) Syncs() int64 { return b.syncs.Load() }

// SyncedRecords returns the total records synced (SyncedRecords/Syncs is
// the mean durable batch size).
func (b *LatencyBackend) SyncedRecords() int64 { return b.recs.Load() }

// FileBackend encodes each batch to an append-only file and fsyncs it —
// real durability. A crashed log is recovered by OpenFileBackend, which
// scans the surviving records (discarding a torn tail from a crash
// mid-write) and replays them into a fresh Log via wal.Open.
type FileBackend struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	replay []Record
	closed bool
	syncs  atomic.Int64
	// bytes is the durable log size: the exact encoded bytes currently in
	// the file (seeded from the clean scan on reopen, advanced per append,
	// reset by truncation). It is what Log.Bytes must agree with.
	bytes atomic.Int64
}

// CreateFileBackend creates (or truncates) the file at path and returns an
// empty file backend.
func CreateFileBackend(path string) (*FileBackend, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: create file backend: %w", err)
	}
	return &FileBackend{f: f, path: path}, nil
}

// OpenFileBackend re-opens an existing log file after a crash: it scans
// the surviving records, truncates any torn tail (a partially written
// final record), and positions the backend to append after the last whole
// record. The scanned records are available through Replay, so
// wal.Open(Config{Backend: b}) reconstructs the durable log.
func OpenFileBackend(path string) (*FileBackend, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open file backend: %w", err)
	}
	recs, clean, err := scanFileLog(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Truncate(clean); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(clean, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: seek: %w", err)
	}
	b := &FileBackend{f: f, path: path, replay: recs}
	b.bytes.Store(clean)
	return b, nil
}

// ReadFileLog decodes the records of a log file without opening it for
// appending (diagnostics, tests). A torn tail is silently discarded.
func ReadFileLog(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, _, err := scanFileLog(f)
	return recs, err
}

// Path returns the backing file path.
func (b *FileBackend) Path() string { return b.path }

// Replay implements Replayer: the records that survived the crash, in LSN
// order.
func (b *FileBackend) Replay() []Record { return b.replay }

// Syncs returns the number of batches fsynced.
func (b *FileBackend) Syncs() int64 { return b.syncs.Load() }

// DurableBytes returns the exact number of encoded log bytes currently in
// the backing file — the ground truth the Log.Bytes accounting is asserted
// against.
func (b *FileBackend) DurableBytes() int64 { return b.bytes.Load() }

// Sync implements Backend: encode the batch, write it in one call, and
// fsync. The whole batch is encoded before any byte is written, so an
// unencodable record rejects the batch atomically — a partial batch on
// disk would otherwise surface after the next successful sync as an LSN
// gap that OpenFileBackend must treat as corruption.
func (b *FileBackend) Sync(records []Record) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return fmt.Errorf("wal: sync on closed file backend %s", b.path)
	}
	var batch strings.Builder
	for _, r := range records {
		line, err := encodeRecord(r)
		if err != nil {
			return err
		}
		batch.WriteString(line)
	}
	if _, err := b.f.WriteString(batch.String()); err != nil {
		return fmt.Errorf("wal: write %s: %w", b.path, err)
	}
	if err := b.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync %s: %w", b.path, err)
	}
	b.bytes.Add(int64(batch.Len()))
	b.syncs.Add(1)
	return nil
}

// TruncateBefore implements Truncator: rewrite the file keeping only the
// records with LSN at or above lsn, atomically. The surviving suffix is
// written to a sibling temporary file, fsynced, and renamed over the log —
// a crash at any point leaves a file OpenFileBackend can scan (either the
// old log or the complete truncated one), never a torn mix. The Log layer
// guarantees lsn never exceeds the durable watermark plus one, so every
// record the rewrite is asked to keep is present in the file. The returned
// stats record the rewrite cost — every surviving byte is copied, the
// O(log bytes) price the segmented backend's unlink-based truncation
// avoids.
func (b *FileBackend) TruncateBefore(lsn LSN) (TruncateStats, error) {
	start := time.Now()
	var stats TruncateStats
	done := func(err error) (TruncateStats, error) {
		stats.WallNS = time.Since(start).Nanoseconds()
		return stats, err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return done(fmt.Errorf("wal: truncate on closed file backend %s", b.path))
	}
	recs, _, err := scanFileLog(b.f)
	// Restore the append position immediately: the scan moved the shared
	// offset, and any early-error return below must leave the handle ready
	// for the next Sync.
	if _, serr := b.f.Seek(0, io.SeekEnd); serr != nil {
		return done(fmt.Errorf("wal: truncate %s: %w", b.path, serr))
	}
	if err != nil {
		return done(fmt.Errorf("wal: truncate %s: %w", b.path, err))
	}
	tmp := b.path + ".truncating"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return done(fmt.Errorf("wal: truncate %s: %w", b.path, err))
	}
	var suffix strings.Builder
	for _, r := range recs {
		if r.LSN < lsn {
			continue
		}
		line, err := encodeRecord(r)
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return done(fmt.Errorf("wal: truncate %s: %w", b.path, err))
		}
		suffix.WriteString(line)
	}
	if _, err := f.WriteString(suffix.String()); err != nil {
		f.Close()
		os.Remove(tmp)
		return done(fmt.Errorf("wal: truncate %s: %w", b.path, err))
	}
	stats.BytesRewritten = int64(suffix.Len())
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return done(fmt.Errorf("wal: truncate %s: %w", b.path, err))
	}
	if err := os.Rename(tmp, b.path); err != nil {
		f.Close()
		os.Remove(tmp)
		return done(fmt.Errorf("wal: truncate %s: %w", b.path, err))
	}
	b.bytes.Store(int64(suffix.Len()))
	// Make the rename durable before any further Sync acks against the new
	// inode: without the directory fsync a crash could resurrect the old
	// dirent — the pre-truncation inode, missing every post-truncation
	// batch — and lose acknowledged commits.
	if err := syncDir(filepath.Dir(b.path)); err != nil {
		f.Close()
		b.f = f
		b.closed = true
		return done(fmt.Errorf("wal: truncate %s: directory sync (backend now closed): %w", b.path, err))
	}
	// The old handle now points at the unlinked pre-truncation inode; swap
	// it for the renamed file, positioned to append. The rename is already
	// committed, so a failure positioning the new handle must not leave a
	// silently closed (or mis-positioned — appends at a wrong offset would
	// corrupt the log) handle behind: go explicitly fail-stop instead. The
	// durable truncated log is intact either way and replays on reopen.
	b.f.Close()
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		b.f = f
		b.closed = true
		return done(fmt.Errorf("wal: truncate %s: positioning renamed log (backend now closed): %w", b.path, err))
	}
	b.f = f
	return done(nil)
}

// syncDir fsyncs a directory, making a rename inside it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}

// Close implements Backend. Idempotent.
func (b *FileBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	if err := b.f.Sync(); err != nil {
		b.f.Close()
		return err
	}
	return b.f.Close()
}

// File format: one record per '\n'-terminated line of tab-separated
// fields — lsn, kind, txn, obj, prevLSN, invocation name, invocation args,
// response, undo, deps — with tabs/newlines/backslashes escaped inside
// string fields. The undo field is "-" for nil or "e" + the escaped
// EncodedUndo string; the deps field is "-" for none or "d" + the escaped
// JSON array of dependency TxnIDs. Nine-field lines (written before the
// deps field existed) still decode, with nil Deps. The format is
// append-only and self-delimiting, so a crash mid-write leaves at most one
// torn final line, which the scanner discards.

var fileEscaper = strings.NewReplacer("\\", "\\\\", "\t", "\\t", "\n", "\\n")
var fileUnescaper = strings.NewReplacer("\\\\", "\\", "\\t", "\t", "\\n", "\n")

func encodeRecord(r Record) (string, error) {
	var undo string
	switch u := r.Undo.(type) {
	case nil:
		undo = "-"
	case EncodedUndo:
		undo = "e" + fileEscaper.Replace(string(u))
	default:
		return "", fmt.Errorf("wal: file backend cannot encode undo token of type %T at LSN %d "+
			"(stage it as wal.EncodedUndo; see adt.UndoTokenCodec)", r.Undo, r.LSN)
	}
	deps := "-"
	if len(r.Deps) > 0 {
		js, err := json.Marshal(r.Deps)
		if err != nil {
			return "", fmt.Errorf("wal: encode deps at LSN %d: %w", r.LSN, err)
		}
		deps = "d" + fileEscaper.Replace(string(js))
	}
	return fmt.Sprintf("%d\t%d\t%s\t%s\t%d\t%s\t%s\t%s\t%s\t%s\n",
		r.LSN, int(r.Kind),
		fileEscaper.Replace(string(r.Txn)),
		fileEscaper.Replace(string(r.Obj)),
		r.PrevLSN,
		fileEscaper.Replace(r.Op.Inv.Name),
		fileEscaper.Replace(r.Op.Inv.Args),
		fileEscaper.Replace(string(r.Op.Res)),
		undo, deps), nil
}

func decodeRecord(line string) (Record, error) {
	fields := strings.Split(line, "\t")
	if len(fields) != 9 && len(fields) != 10 {
		return Record{}, fmt.Errorf("wal: record has %d fields, want 9 or 10", len(fields))
	}
	lsn, err := strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("wal: bad LSN %q", fields[0])
	}
	kind, err := strconv.Atoi(fields[1])
	if err != nil || kind < int(Update) || kind > int(DisciplineRec) {
		return Record{}, fmt.Errorf("wal: bad record kind %q", fields[1])
	}
	prev, err := strconv.ParseUint(fields[4], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("wal: bad PrevLSN %q", fields[4])
	}
	r := Record{
		LSN:     LSN(lsn),
		Kind:    RecordKind(kind),
		Txn:     history.TxnID(fileUnescaper.Replace(fields[2])),
		Obj:     history.ObjectID(fileUnescaper.Replace(fields[3])),
		PrevLSN: LSN(prev),
		Op: spec.Operation{
			Inv: spec.Invocation{
				Name: fileUnescaper.Replace(fields[5]),
				Args: fileUnescaper.Replace(fields[6]),
			},
			Res: spec.Response(fileUnescaper.Replace(fields[7])),
		},
	}
	switch undo := fields[8]; {
	case undo == "-":
	case strings.HasPrefix(undo, "e"):
		r.Undo = EncodedUndo(fileUnescaper.Replace(undo[1:]))
	default:
		return Record{}, fmt.Errorf("wal: bad undo field %q", undo)
	}
	if len(fields) == 10 {
		switch deps := fields[9]; {
		case deps == "-":
		case strings.HasPrefix(deps, "d"):
			if err := json.Unmarshal([]byte(fileUnescaper.Replace(deps[1:])), &r.Deps); err != nil {
				return Record{}, fmt.Errorf("wal: bad deps field %q: %w", deps, err)
			}
		default:
			return Record{}, fmt.Errorf("wal: bad deps field %q", deps)
		}
	}
	return r, nil
}

// scanFileLog reads records from the start of f, returning them with the
// byte offset of the end of the last whole record. A torn tail — a final
// line missing its newline or failing to decode — is discarded; a
// malformed line with further lines after it is corruption and errors.
func scanFileLog(f *os.File) ([]Record, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	br := bufio.NewReader(f)
	var recs []Record
	var clean int64
	for {
		line, err := br.ReadString('\n')
		if err == io.EOF {
			// line (if any) has no terminator: torn tail, discard.
			return recs, clean, nil
		}
		if err != nil {
			return nil, 0, fmt.Errorf("wal: scan log file: %w", err)
		}
		r, derr := decodeRecord(strings.TrimSuffix(line, "\n"))
		if derr != nil {
			// Only acceptable as the very last line (torn by a crash
			// mid-write that still got the newline out); peek ahead.
			if _, perr := br.ReadByte(); perr == io.EOF {
				return recs, clean, nil
			}
			return nil, 0, fmt.Errorf("wal: corrupt log record before offset %d: %w",
				clean+int64(len(line)), derr)
		}
		// A truncated log starts past LSN 1 (the first surviving record
		// names the base); from there LSNs must be contiguous.
		if r.LSN == 0 {
			return nil, 0, fmt.Errorf("wal: log file record with nil LSN")
		}
		if len(recs) > 0 && r.LSN != recs[len(recs)-1].LSN+1 {
			return nil, 0, fmt.Errorf("wal: log file LSN %d out of sequence (want %d)",
				r.LSN, recs[len(recs)-1].LSN+1)
		}
		recs = append(recs, r)
		clean += int64(len(line))
	}
}
