// Package wal implements a group-committed write-ahead log used by the
// update-in-place recovery manager: an append-only sequence of typed
// records with monotonically increasing LSNs and per-transaction backward
// chains, supporting the abort-time backward walk that operation-logging
// recovery performs.
//
// Appends are staged: AppendAsync publishes a record to a per-stripe
// staging buffer (striped by transaction, so one transaction's records stay
// FIFO) without touching the committed region of the log. Every staged
// record is stamped from one atomic counter; since the recovery manager
// stages while holding the object latch, stamp order agrees with each
// object's true execution order. Flush — invoked by committing
// transactions, or implicitly by any reader — drains every stripe, sorts
// the batch by stamp, and assigns it one contiguous LSN range, fixing up
// each transaction's backward PrevLSN chain as it goes. LSN order is
// therefore consistent with per-object and per-transaction execution order
// even across transactions in one batch — the invariant the Restart redo
// pass replays by. Concurrent committers share a single flusher: while one
// transaction holds the flush lock, the records of every other committing
// transaction pile into the staging buffers and are sequenced by the next
// holder in one batch — classic group commit.
//
// The paper deliberately abstracts recovery to the View function; this
// package is the executable substrate beneath the UIP abstraction — what
// System R-style recovery managers actually maintain. Crash recovery is out
// of scope (as in the paper); the log supports transaction abort only.
package wal

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/history"
	"repro/internal/spec"
	stripepkg "repro/internal/stripe"
)

// LSN is a log sequence number. LSNs start at 1; 0 is the nil LSN.
type LSN uint64

// RecordKind distinguishes log record types.
type RecordKind int

const (
	// Update records an executed operation with its undo token.
	Update RecordKind = iota
	// CommitRec marks a transaction's commit at this object.
	CommitRec
	// AbortRec marks the completion of a transaction's abort (all updates
	// undone).
	AbortRec
	// CompensationRec records the undo of one update during abort
	// processing (a compensation log record, in ARIES terminology).
	CompensationRec
)

// String implements fmt.Stringer.
func (k RecordKind) String() string {
	switch k {
	case Update:
		return "update"
	case CommitRec:
		return "commit"
	case AbortRec:
		return "abort"
	case CompensationRec:
		return "clr"
	}
	return fmt.Sprintf("RecordKind(%d)", int(k))
}

// Record is one log record.
type Record struct {
	LSN     LSN
	Kind    RecordKind
	Txn     history.TxnID
	Obj     history.ObjectID
	Op      spec.Operation
	PrevLSN LSN // previous record of the same transaction (0 if first)
	// Undo is the opaque undo token captured before applying the operation
	// (nil when the machine's logical inverse needs no token).
	Undo any
}

// stagedRec is a staged record awaiting LSN assignment. The flusher writes
// lsn before releasing the flush lock, so an appender that stages and then
// calls Flush observes its assignment. stamp is the stage-time sequence
// the flusher sorts by.
type stagedRec struct {
	rec   Record
	stamp int64
	lsn   LSN
}

// stripe is one staging buffer. Records of a transaction always land in
// the same stripe (hash on TxnID), preserving their order.
type stripe struct {
	mu     sync.Mutex
	staged []*stagedRec
}

// Log is an append-only in-memory log with group-committed LSN assignment.
// It is safe for concurrent use.
type Log struct {
	stripes []*stripe
	mask    uint32

	// stampSeq orders records by stage time across all stripes.
	stampSeq atomic.Int64

	// flushMu serializes batch sequencing; mu guards the committed region.
	flushMu sync.Mutex
	mu      sync.Mutex
	records []Record
	lastOf  map[history.TxnID]LSN

	// Batch diagnostics for the scaling benchmarks.
	flushes atomic.Int64
	flushed atomic.Int64
}

// New builds an empty log with a stripe count derived from GOMAXPROCS.
func New() *Log {
	return NewStriped(runtime.GOMAXPROCS(0))
}

// NewStriped builds an empty log with n staging stripes (rounded up to a
// power of two, at least 1).
func NewStriped(n int) *Log {
	p := stripepkg.RoundPow2(n, stripepkg.MaxStripes)
	l := &Log{
		stripes: make([]*stripe, p),
		mask:    uint32(p - 1),
		lastOf:  make(map[history.TxnID]LSN),
	}
	for i := range l.stripes {
		l.stripes[i] = &stripe{}
	}
	return l
}

func (l *Log) stripeOf(txn history.TxnID) *stripe {
	return l.stripes[stripepkg.FNV32a(string(txn))&l.mask]
}

// stage publishes r to its transaction's staging stripe. The stamp is
// taken under the stripe lock so that a transaction's records (always in
// one stripe) carry strictly increasing stamps, and callers staging under
// an object latch get stamps in the object's execution order.
func (l *Log) stage(r Record) *stagedRec {
	s := &stagedRec{rec: r}
	st := l.stripeOf(r.Txn)
	st.mu.Lock()
	s.stamp = l.stampSeq.Add(1)
	st.staged = append(st.staged, s)
	st.mu.Unlock()
	return s
}

// AppendAsync stages a record without waiting for its LSN. The record is
// sequenced by the next Flush (a committing transaction's group-commit
// flush, or any reader). This is the engine's hot path: no log-wide lock.
func (l *Log) AppendAsync(r Record) {
	l.stage(r)
}

// Append stages a record and flushes, returning the assigned LSN — the
// synchronous path, equivalent to a group commit of whatever is staged.
func (l *Log) Append(r Record) LSN {
	s := l.stage(r)
	l.Flush()
	return s.lsn
}

// Flush drains every staging stripe, sorts the batch by stage stamp, and
// assigns it one contiguous LSN range, chaining each record to its
// transaction's previous record. When Flush returns, every record staged
// before the call is sequenced (by this flusher or an earlier one).
func (l *Log) Flush() {
	l.flushMu.Lock()
	var batch []*stagedRec
	for _, st := range l.stripes {
		st.mu.Lock()
		if len(st.staged) > 0 {
			batch = append(batch, st.staged...)
			st.staged = nil
		}
		st.mu.Unlock()
	}
	if len(batch) > 0 {
		sort.Slice(batch, func(i, j int) bool { return batch[i].stamp < batch[j].stamp })
		l.mu.Lock()
		base := LSN(len(l.records))
		for i, s := range batch {
			s.rec.LSN = base + LSN(i) + 1
			s.rec.PrevLSN = l.lastOf[s.rec.Txn]
			l.lastOf[s.rec.Txn] = s.rec.LSN
			l.records = append(l.records, s.rec)
			s.lsn = s.rec.LSN
		}
		l.mu.Unlock()
		l.flushes.Add(1)
		l.flushed.Add(int64(len(batch)))
	}
	l.flushMu.Unlock()
}

// Flushes returns the number of non-empty flush batches sequenced so far.
func (l *Log) Flushes() int64 { return l.flushes.Load() }

// FlushedRecords returns the total records sequenced by flush batches
// (FlushedRecords/Flushes is the mean group-commit batch size).
func (l *Log) FlushedRecords() int64 { return l.flushed.Load() }

// Get returns the record at the LSN, flushing staged records first.
func (l *Log) Get(lsn LSN) (Record, bool) {
	l.Flush()
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn == 0 || int(lsn) > len(l.records) {
		return Record{}, false
	}
	return l.records[lsn-1], true
}

// LastLSN returns the most recent LSN written for txn (0 if none),
// flushing staged records first.
func (l *Log) LastLSN(txn history.TxnID) LSN {
	l.Flush()
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastOf[txn]
}

// Len returns the number of records, flushing staged records first.
func (l *Log) Len() int {
	l.Flush()
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// TxnChain returns txn's records newest-first, following PrevLSN — the
// traversal abort processing performs. Staged records are flushed first.
func (l *Log) TxnChain(txn history.TxnID) []Record {
	l.Flush()
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Record
	lsn := l.lastOf[txn]
	for lsn != 0 {
		r := l.records[lsn-1]
		out = append(out, r)
		lsn = r.PrevLSN
	}
	return out
}

// Snapshot returns a copy of all records in LSN order (diagnostics,
// tests), flushing staged records first.
func (l *Log) Snapshot() []Record {
	l.Flush()
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Record(nil), l.records...)
}
