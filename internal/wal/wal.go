// Package wal implements a minimal write-ahead log used by the
// update-in-place recovery manager: an append-only sequence of typed
// records with monotonically increasing LSNs and per-transaction backward
// chains, supporting the abort-time backward walk that operation-logging
// recovery performs.
//
// The paper deliberately abstracts recovery to the View function; this
// package is the executable substrate beneath the UIP abstraction — what
// System R-style recovery managers actually maintain. Crash recovery is out
// of scope (as in the paper); the log supports transaction abort only.
package wal

import (
	"fmt"
	"sync"

	"repro/internal/history"
	"repro/internal/spec"
)

// LSN is a log sequence number. LSNs start at 1; 0 is the nil LSN.
type LSN uint64

// RecordKind distinguishes log record types.
type RecordKind int

const (
	// Update records an executed operation with its undo token.
	Update RecordKind = iota
	// CommitRec marks a transaction's commit at this object.
	CommitRec
	// AbortRec marks the completion of a transaction's abort (all updates
	// undone).
	AbortRec
	// CompensationRec records the undo of one update during abort
	// processing (a compensation log record, in ARIES terminology).
	CompensationRec
)

// String implements fmt.Stringer.
func (k RecordKind) String() string {
	switch k {
	case Update:
		return "update"
	case CommitRec:
		return "commit"
	case AbortRec:
		return "abort"
	case CompensationRec:
		return "clr"
	}
	return fmt.Sprintf("RecordKind(%d)", int(k))
}

// Record is one log record.
type Record struct {
	LSN     LSN
	Kind    RecordKind
	Txn     history.TxnID
	Obj     history.ObjectID
	Op      spec.Operation
	PrevLSN LSN // previous record of the same transaction (0 if first)
	// Undo is the opaque undo token captured before applying the operation
	// (nil when the machine's logical inverse needs no token).
	Undo any
}

// Log is an append-only in-memory log. It is safe for concurrent use.
type Log struct {
	mu      sync.Mutex
	records []Record
	lastOf  map[history.TxnID]LSN
}

// New builds an empty log.
func New() *Log {
	return &Log{lastOf: make(map[history.TxnID]LSN)}
}

// Append writes a record, assigning its LSN and chaining it to the
// transaction's previous record. The assigned LSN is returned.
func (l *Log) Append(r Record) LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	r.LSN = LSN(len(l.records) + 1)
	r.PrevLSN = l.lastOf[r.Txn]
	l.lastOf[r.Txn] = r.LSN
	l.records = append(l.records, r)
	return r.LSN
}

// Get returns the record at the LSN.
func (l *Log) Get(lsn LSN) (Record, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn == 0 || int(lsn) > len(l.records) {
		return Record{}, false
	}
	return l.records[lsn-1], true
}

// LastLSN returns the most recent LSN written for txn (0 if none).
func (l *Log) LastLSN(txn history.TxnID) LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastOf[txn]
}

// Len returns the number of records.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// TxnChain returns txn's records newest-first, following PrevLSN — the
// traversal abort processing performs.
func (l *Log) TxnChain(txn history.TxnID) []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Record
	lsn := l.lastOf[txn]
	for lsn != 0 {
		r := l.records[lsn-1]
		out = append(out, r)
		lsn = r.PrevLSN
	}
	return out
}

// Snapshot returns a copy of all records in LSN order (diagnostics,
// tests).
func (l *Log) Snapshot() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Record(nil), l.records...)
}
