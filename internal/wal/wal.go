// Package wal implements a group-committed write-ahead log used by the
// update-in-place recovery manager: an append-only sequence of typed
// records with monotonically increasing LSNs and per-transaction backward
// chains, supporting the abort-time backward walk that operation-logging
// recovery performs, and — through the Backend seam — durable storage that
// recovery.Restart can replay after a crash.
//
// Appends are staged: AppendAsync publishes a record to a per-stripe
// staging buffer (striped by transaction, so one transaction's records stay
// FIFO) without touching the committed region of the log. Every staged
// record is stamped from one atomic counter; since the recovery manager
// stages while holding the object latch, stamp order agrees with each
// object's true execution order. Sequencing — draining every stripe,
// sorting the batch by stamp, and assigning it one contiguous LSN range
// while fixing up each transaction's backward PrevLSN chain — happens in
// one of two modes:
//
//   - Synchronous (New, NewStriped, or Open with Async unset): Flush
//     sequences inline on the calling goroutine, exactly classic group
//     commit — while one committer holds the flush lock, other committers'
//     records pile into the staging buffers and are sequenced by the next
//     holder in one batch.
//
//   - Asynchronous (Open with Async set): a dedicated flusher goroutine
//     owns sequencing. Flush becomes a commit barrier: the caller registers
//     a waiter, wakes the flusher, and sleeps until the batch containing
//     everything staged before the call has been sequenced and handed to
//     the durability backend. The flusher dwells up to BatchInterval after
//     waking (cut short when MaxBatch records are pending), so the
//     batch-size-versus-commit-latency trade-off of group commit becomes a
//     measurable configuration rather than an accident of scheduling.
//
// In both modes LSN order is consistent with per-object and per-transaction
// execution order even across transactions in one batch — the invariant the
// Restart redo pass replays by. Each batch is moreover a consistent cut of
// the staging buffers (the drain holds every stripe lock at once), so a
// batch boundary — the unit of crash loss — never separates a record from
// a causally earlier one. After sequencing, each batch is handed to
// the configured Backend (an in-memory no-op by default; see backend.go for
// the fsync-simulating and file backends); commit acknowledgement happens
// only after the backend's Sync returns, so an acked commit is durable to
// whatever degree the backend provides.
//
// The log also exposes its durability frontier: AppendAsync returns a
// stage Ticket, the durable watermark (DurableLSN, IsDurable) tracks the
// last backend-acknowledged batch, and WaitDurable blocks a caller until
// the watermark covers a ticket — the seam commit-LSN-ordered lock
// release is built on (a dependent transaction waits for the durability
// of the commits it read from, not just its own records). Close is
// idempotent and publishes a typed ErrClosed to appenders and barriers
// that lose the shutdown race.
//
// The paper deliberately abstracts recovery to the View function; this
// package is the executable substrate beneath the UIP abstraction — what
// System R-style recovery managers actually maintain. The log supports
// transaction abort and, via a durable backend plus recovery.Restart,
// crash restart (the engineering extension the paper's Section 1 leaves
// out of scope).
package wal

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/history"
	"repro/internal/obs"
	"repro/internal/spec"
	stripepkg "repro/internal/stripe"
)

// LSN is a log sequence number. LSNs start at 1; 0 is the nil LSN.
type LSN uint64

// ErrClosed is wrapped by AppendAsync, Flush, and WaitDurable when the log
// has been closed: the record was not staged (or the barrier cannot be
// satisfied) because Close already drained the final batch. A commit racing
// Engine.Close observes this typed error instead of an unspecified race
// outcome.
var ErrClosed = errors.New("wal: log closed")

// Ticket identifies a staged record's position in the global stage order
// (the stamp the sequencer sorts by). Tickets are totally ordered and
// consistent with LSN order: because every flush batch is a consistent cut
// of the staging buffers, the durable prefix of the log is exactly a ticket
// prefix. A ticket therefore names a durability point before the record's
// LSN exists — the handle early lock release needs to publish "the commit
// you just read from" to dependents (see DurableTicket and WaitDurable).
// The zero Ticket precedes every record and is always durable.
type Ticket int64

// RecordKind distinguishes log record types.
type RecordKind int

const (
	// Update records an executed operation with its undo token.
	Update RecordKind = iota
	// CommitRec marks a transaction's commit at this object.
	CommitRec
	// AbortRec marks the completion of a transaction's abort (all updates
	// undone).
	AbortRec
	// CompensationRec records the undo of one update during abort
	// processing (a compensation log record, in ARIES terminology).
	CompensationRec
	// TxnCommitRec is the transaction-level commit record: the single
	// durable commit point of a transaction, staged exactly once by
	// Txn.Commit after every touched object's commit processing and before
	// the durability barrier. Obj is empty — the record belongs to the
	// transaction, not to any object. Recovery is presumed-abort: a
	// transaction without a durable TxnCommitRec is a loser at restart,
	// even if some of its per-object CommitRecs survived; the per-object
	// records remain as redo hints only.
	TxnCommitRec
	// CheckpointRec marks a fuzzy-checkpoint capture point. Txn carries the
	// checkpoint's identifier (checkpoints reuse the per-transaction
	// backward chain so all of one checkpoint's markers are walkable). The
	// begin marker (Obj empty) is staged before any object is captured and
	// its LSN is the checkpoint's frontier — the truncation point and the
	// start of the winner scan at a checkpointed restart. Each per-object
	// marker (Obj set) is staged under that object's latch at the instant
	// its state is captured, so the marker's LSN splits the object's
	// records exactly into captured prefix and replayable suffix. Restart
	// ignores markers of checkpoints it is not seeded from.
	CheckpointRec
	// RedoRec records an executed operation under the REDO-only logging
	// discipline: the logical invocation and its response, with no undo
	// payload — the discipline of command/dependency logging. Restart
	// replays RedoRecs of winners only (in LSN order, which dependency
	// order refines); a loser's RedoRecs are simply never redone, so no
	// undo pass exists at restart.
	RedoRec
	// DisciplineRec marks the logging discipline of the log it appears in
	// (Op.Inv.Args carries the discipline name; see DisciplineRedo). A
	// redo-only engine stages one as its first record — and again inside
	// every checkpoint, right after the begin marker, so the marker
	// survives truncation — letting reopen/restart detect a
	// mixed-discipline handoff instead of silently mis-recovering.
	DisciplineRec
)

// String implements fmt.Stringer.
func (k RecordKind) String() string {
	switch k {
	case Update:
		return "update"
	case CommitRec:
		return "commit"
	case AbortRec:
		return "abort"
	case CompensationRec:
		return "clr"
	case TxnCommitRec:
		return "txn-commit"
	case CheckpointRec:
		return "checkpoint"
	case RedoRec:
		return "redo"
	case DisciplineRec:
		return "discipline"
	}
	return fmt.Sprintf("RecordKind(%d)", int(k))
}

// Logging disciplines a log can carry (see DisciplineRec and
// Log.Discipline). The undo discipline is the default and is implicit — an
// undo-mode log carries no marker, so every pre-discipline log reads as
// undo.
const (
	// DisciplineUndo is update-in-place undo logging: Update records carry
	// physical before-images and restart redoes winners then undoes losers.
	DisciplineUndo = "undo"
	// DisciplineRedo is REDO-only dependency logging: RedoRecs carry the
	// logical operation only, TxnCommitRecs carry the commit-order
	// dependency set, and restart replays winners forward with no undo
	// pass.
	DisciplineRedo = "redo"
)

// DisciplineMarker returns the marker record a redo-only engine stages to
// brand its log (Txn and Obj empty; the discipline rides in Op.Inv.Args).
func DisciplineMarker(d string) Record {
	return Record{Kind: DisciplineRec, Op: spec.Operation{Inv: spec.Invocation{Name: "discipline", Args: d}}}
}

// Record is one log record.
type Record struct {
	LSN     LSN
	Kind    RecordKind
	Txn     history.TxnID
	Obj     history.ObjectID
	Op      spec.Operation
	PrevLSN LSN // previous record of the same transaction (0 if first)
	// Undo is the opaque undo token captured before applying the operation
	// (nil when the machine's logical inverse needs no token). Tokens that
	// must survive a durable backend round trip are staged in their
	// EncodedUndo form (see backend.go); recovery.Restart decodes them with
	// the machine's codec.
	Undo any
	// Deps is the transaction's commit-order dependency set, carried on
	// TxnCommitRec under the redo-only discipline: the committed writers
	// this transaction read from. Because flush batches are consistent
	// cuts, a durable TxnCommitRec's Deps are always durable winners too —
	// the property redo-only restart's winners-in-dependency-order replay
	// relies on. Nil under undo logging.
	Deps []history.TxnID
}

// stagedRec is a staged record awaiting LSN assignment. lsn is written by
// whichever goroutine sequences the batch and published to the appender by
// the flush acknowledgement: in synchronous mode the appender's own Flush
// acquires the flush lock the sequencer held while writing; in asynchronous
// mode the flusher closes the appender's barrier channel after writing.
// Either edge establishes the happens-before an appender needs to read lsn
// after Flush returns, even when a different goroutine sequenced the
// record. stamp is the stage-time sequence the sequencer sorts by.
type stagedRec struct {
	rec   Record
	stamp int64
	lsn   LSN
}

// stripe is one staging buffer. Records of a transaction always land in
// the same stripe (hash on TxnID), preserving their order.
type stripe struct {
	mu     sync.Mutex
	staged []*stagedRec
}

// CrashPoint is a test hook invoked after a batch is sequenced and before
// it is handed to the backend. batch is the zero-based index of non-empty
// batches since Open, and records is the sequenced batch. Returning true
// simulates a crash at this staged/flushed boundary: this batch and every
// later one silently never reach the backend, while in-memory sequencing
// and commit acknowledgements continue — modelling a machine that dies
// with the log tail still in volatile buffers, without hanging the live
// workload that is generating the log.
type CrashPoint func(batch int, records []Record) bool

// Config parameterizes Open.
type Config struct {
	// Stripes is the number of staging stripes (rounded up to a power of
	// two; 0 selects a default derived from GOMAXPROCS).
	Stripes int
	// Backend is the durability seam each sequenced batch is handed to.
	// Nil means in-memory only (equivalent to Discard).
	Backend Backend
	// Async runs a dedicated flusher goroutine that owns sequencing;
	// Flush becomes a commit barrier acknowledged after the backend sync.
	// The owner must Close the log to stop the flusher.
	Async bool
	// BatchInterval is how long the asynchronous flusher dwells after
	// waking before it sequences, letting concurrent committers' records
	// accumulate into one batch. Zero sequences immediately.
	BatchInterval time.Duration
	// MaxBatch cuts the dwell short once this many records are staged
	// (0 = no cap).
	MaxBatch int
	// CrashPoint, when non-nil, is the crash-injection hook (tests only).
	CrashPoint CrashPoint
}

// Log is an append-only log with group-committed LSN assignment and a
// pluggable durability backend. It is safe for concurrent use.
type Log struct {
	stripes []*stripe
	mask    uint32

	// stampSeq orders records by stage time across all stripes.
	stampSeq atomic.Int64

	// flushMu serializes batch sequencing; mu guards the committed region.
	flushMu sync.Mutex
	mu      sync.Mutex
	// records holds the retained suffix of the log: records[i] has LSN
	// base+i+1. base counts records truncated away by TruncateBefore (or
	// absent from a reopened, previously truncated file); LSNs are never
	// renumbered, so references recorded before a truncation (checkpoint
	// frontiers, PrevLSN chains) stay meaningful.
	records []Record
	base    LSN
	// bytes approximates the encoded size of the retained records (the
	// log-length accounting the checkpoint sweeps report); maintained by
	// flushOnce and TruncateBefore.
	bytes  int64
	lastOf map[history.TxnID]LSN
	// discipline is the logging discipline the log carries, set by the
	// first DisciplineRec sequenced or replayed ("" = no marker = implicit
	// undo logging). Under mu.
	discipline string
	syncErr    error // first backend failure, under mu
	// truncStats accumulates the backend truncation cost across the log's
	// lifetime (under flushMu, like the backend calls that produce it).
	truncStats TruncateStats

	// The durable watermark (under mu): the stage ticket and LSN of the
	// last record the backend acknowledged. Because batches are consistent
	// cuts sequenced in order, everything at or below the watermark is
	// durable. The watermark freezes when the backend dies or the log is
	// closed with records still staged; under a simulated crash it keeps
	// advancing (acknowledgements continue — the machine has not noticed it
	// is dead). durableCond is broadcast whenever the watermark or the
	// error state moves, waking WaitDurable barriers.
	durableTicket int64
	durableLSN    LSN
	durableCond   *sync.Cond

	backend Backend
	crash   CrashPoint
	crashed bool // under flushMu
	// dead stops handing batches to the backend after the first Sync
	// failure (under flushMu): appending later batches after a hole would
	// turn the cleanly-synced prefix into an unreplayable file, whereas
	// stopping leaves a durable prefix Restart can still recover. The
	// failure itself stays sticky in syncErr.
	dead bool
	// closing is set at the start of Close, before the final drain; stage
	// checks it under the stripe lock, so a record either lands in the
	// final batch or its AppendAsync reports ErrClosed — never a silent
	// drop. backendGone (under flushMu) marks the backend closed, so a
	// straggler flush sequences in memory without touching it.
	closing     atomic.Bool
	backendGone bool

	// Asynchronous-mode state. pending counts staged-but-unsequenced
	// records for the MaxBatch trigger; wake and full nudge the flusher;
	// waiters are the commit barriers acked after the next sequence+sync.
	async         bool
	batchInterval time.Duration
	maxBatch      int
	pending       atomic.Int64
	wake          chan struct{}
	full          chan struct{}
	quit          chan struct{}
	flusherDone   chan struct{}
	waitMu        sync.Mutex
	waiters       []chan struct{}
	closeOnce     sync.Once
	closeErr      error

	// Batch diagnostics for the scaling benchmarks.
	flushes atomic.Int64
	flushed atomic.Int64
	// stripeAcqs counts staging-stripe lock acquisitions by appenders
	// (stage and AppendBatchAsync; the flusher's drain is excluded) — the
	// machine-independent synchronization cost the pipeline sweep reports.
	stripeAcqs atomic.Int64

	// obsv is the optional observability hub the flusher reports batch
	// sizes, dwell, and sync durations into. Attached after Open (the
	// flusher may already be running) through an atomic pointer so the
	// hand-off needs no lock; nil means disabled and every hook is a
	// nil-receiver no-op.
	obsv atomic.Pointer[obs.Observer]
}

// SetObserver attaches the observability hub the flusher records into.
// Safe to call while the flusher runs; a nil observer detaches.
func (l *Log) SetObserver(o *obs.Observer) { l.obsv.Store(o) }

// New builds an empty synchronous in-memory log with a stripe count derived
// from GOMAXPROCS.
func New() *Log {
	return NewStriped(runtime.GOMAXPROCS(0))
}

// NewStriped builds an empty synchronous in-memory log with n staging
// stripes (rounded up to a power of two, at least 1).
func NewStriped(n int) *Log {
	l, err := Open(Config{Stripes: n})
	if err != nil {
		panic(err) // unreachable: no backend, so nothing to replay
	}
	return l
}

// Open builds a log per cfg. If the backend implements Replayer (a
// re-opened file backend), its surviving records are loaded into the
// committed region first — LSN continuity and PrevLSN chains are verified —
// so new appends continue the durable log and recovery.Restart can replay
// it. In Async mode the caller owns the log and must Close it.
func Open(cfg Config) (*Log, error) {
	n := cfg.Stripes
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := stripepkg.RoundPow2(n, stripepkg.MaxStripes)
	l := &Log{
		stripes: make([]*stripe, p),
		mask:    uint32(p - 1),
		lastOf:  make(map[history.TxnID]LSN),
		backend: cfg.Backend,
		crash:   cfg.CrashPoint,
	}
	l.durableCond = sync.NewCond(&l.mu)
	for i := range l.stripes {
		l.stripes[i] = &stripe{}
	}
	if rp, ok := cfg.Backend.(Replayer); ok && rp != nil {
		for _, r := range rp.Replay() {
			// A previously truncated file starts past LSN 1: the first
			// surviving record fixes the base, and continuity is required
			// from there.
			if len(l.records) == 0 {
				if r.LSN == 0 {
					return nil, fmt.Errorf("wal: replay: record with nil LSN")
				}
				l.base = r.LSN - 1
			}
			if want := l.base + LSN(len(l.records)) + 1; r.LSN != want {
				return nil, fmt.Errorf("wal: replay: LSN %d out of sequence (want %d)", r.LSN, want)
			}
			if r.PrevLSN != l.lastOf[r.Txn] {
				// A transaction whose chain head was truncated away chains
				// into the dropped prefix; anything else is corruption.
				if !(l.lastOf[r.Txn] == 0 && r.PrevLSN != 0 && r.PrevLSN <= l.base) {
					return nil, fmt.Errorf("wal: replay: LSN %d of %s chains to %d, want %d",
						r.LSN, r.Txn, r.PrevLSN, l.lastOf[r.Txn])
				}
			}
			l.records = append(l.records, r)
			l.bytes += recordSize(r)
			if r.Kind == DisciplineRec && l.discipline == "" {
				l.discipline = r.Op.Inv.Args
			}
			l.lastOf[r.Txn] = r.LSN
		}
		// Replayed records came from the durable file; the watermark starts
		// past them.
		l.durableLSN = l.base + LSN(len(l.records))
	}
	if cfg.Async {
		l.async = true
		l.batchInterval = cfg.BatchInterval
		l.maxBatch = cfg.MaxBatch
		l.wake = make(chan struct{}, 1)
		l.full = make(chan struct{}, 1)
		l.quit = make(chan struct{})
		l.flusherDone = make(chan struct{})
		go l.flusher()
	}
	return l, nil
}

// Close stops the flusher (sequencing and syncing whatever is staged) and
// closes the backend. It returns the first backend sync error, if any.
// Close is idempotent and safe to race with appenders and flushers: closing
// is published before the final drain, so a concurrent AppendAsync either
// lands in the final durable batch or returns ErrClosed, a concurrent Flush
// returns ErrClosed, and a WaitDurable barrier that can no longer be
// satisfied is woken with ErrClosed.
func (l *Log) Close() error {
	l.closeOnce.Do(func() {
		l.closing.Store(true)
		if l.async {
			close(l.quit)
			<-l.flusherDone
		}
		// Drain anything staged after the flusher's final pass (or
		// everything, in synchronous mode) before reading the error state.
		l.flushOnce()
		l.flushMu.Lock()
		l.backendGone = true
		l.flushMu.Unlock()
		l.mu.Lock()
		l.closeErr = l.syncErr
		// Wake any durability barrier that is still waiting: the watermark
		// will never advance again.
		l.durableCond.Broadcast()
		l.mu.Unlock()
		if l.backend != nil {
			if err := l.backend.Close(); l.closeErr == nil {
				l.closeErr = err
			}
		}
	})
	return l.closeErr
}

// Err returns the first backend sync failure observed, if any. A non-nil
// result means the in-memory log is ahead of the durable log.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncErr
}

func (l *Log) stripeOf(txn history.TxnID) *stripe {
	return l.stripes[stripepkg.FNV32a(string(txn))&l.mask]
}

// stage publishes r to its transaction's staging stripe. The stamp is
// taken under the stripe lock so that a transaction's records (always in
// one stripe) carry strictly increasing stamps, and callers staging under
// an object latch get stamps in the object's execution order. In
// asynchronous mode staging also nudges the flusher, so records are
// eventually sequenced and made durable even if no committer ever flushes.
// The closing check happens under the stripe lock too: Close's final drain
// holds every stripe lock after publishing the flag, so a record either
// joins the final batch or is rejected with ErrClosed — never staged and
// silently lost.
func (l *Log) stage(r Record) (*stagedRec, error) {
	s := &stagedRec{rec: r}
	st := l.stripeOf(r.Txn)
	st.mu.Lock()
	l.stripeAcqs.Add(1)
	if l.closing.Load() {
		st.mu.Unlock()
		return nil, fmt.Errorf("wal: append %s for %s: %w", r.Kind, r.Txn, ErrClosed)
	}
	s.stamp = l.stampSeq.Add(1)
	st.staged = append(st.staged, s)
	st.mu.Unlock()
	if l.async {
		if n := l.pending.Add(1); l.maxBatch > 0 && n >= int64(l.maxBatch) {
			select {
			case l.full <- struct{}{}:
			default:
			}
		}
		select {
		case l.wake <- struct{}{}:
		default:
		}
	}
	return s, nil
}

// AppendAsync stages a record without waiting for its LSN and returns the
// record's stage ticket. The record is sequenced by the next flush (a
// committing transaction's group-commit barrier, any reader, or the
// background flusher). This is the engine's hot path: no log-wide lock.
// On a closed log nothing is staged and the error wraps ErrClosed.
func (l *Log) AppendAsync(r Record) (Ticket, error) {
	s, err := l.stage(r)
	if err != nil {
		return 0, err
	}
	return Ticket(s.stamp), nil
}

// AppendBatchAsync stages a batch of records of one transaction under a
// single stripe-lock acquisition and returns the stage ticket of the LAST
// record staged. The records receive consecutive stamps taken under the
// stripe lock, so the batch is contiguous in stage order and the returned
// ticket covers every record in it — a durability wait on the ticket waits
// for the whole batch. Consistent-cut semantics are preserved exactly: the
// batch lands in one stripe atomically, so a flush drain (which holds
// every stripe lock) either sees all of it or none of it. Records of
// different transactions may not be mixed (they could hash to different
// stripes, and their relative stamp order would then be an accident);
// such a call stages nothing and reports an error. An empty batch returns
// the zero ticket. On a closed log nothing is staged and the error wraps
// ErrClosed.
func (l *Log) AppendBatchAsync(recs []Record) (Ticket, error) {
	if len(recs) == 0 {
		return 0, nil
	}
	st := l.stripeOf(recs[0].Txn)
	for _, r := range recs[1:] {
		if r.Txn != recs[0].Txn {
			return 0, fmt.Errorf("wal: append batch: mixed transactions (%s vs %s)", recs[0].Txn, r.Txn)
		}
	}
	staged := make([]*stagedRec, len(recs))
	st.mu.Lock()
	l.stripeAcqs.Add(1)
	if l.closing.Load() {
		st.mu.Unlock()
		return 0, fmt.Errorf("wal: append batch of %d for %s: %w", len(recs), recs[0].Txn, ErrClosed)
	}
	var last int64
	for i, r := range recs {
		s := &stagedRec{rec: r, stamp: l.stampSeq.Add(1)}
		staged[i] = s
		last = s.stamp
	}
	st.staged = append(st.staged, staged...)
	st.mu.Unlock()
	if l.async {
		if n := l.pending.Add(int64(len(recs))); l.maxBatch > 0 && n >= int64(l.maxBatch) {
			select {
			case l.full <- struct{}{}:
			default:
			}
		}
		select {
		case l.wake <- struct{}{}:
		default:
		}
	}
	return Ticket(last), nil
}

// StripeAcquisitions returns the number of staging-stripe lock
// acquisitions performed by appenders since Open (the flusher's drain is
// excluded). Batch staging exists to shrink this number: N records staged
// through AppendBatchAsync cost one acquisition where N AppendAsync calls
// cost N. The pipeline experiment reports the delta as its
// machine-independent synchronization signal.
func (l *Log) StripeAcquisitions() int64 { return l.stripeAcqs.Load() }

// Append stages a record, flushes, and returns the assigned LSN — the
// synchronous path, equivalent to a group commit of whatever is staged.
// The LSN read is safe even when a different goroutine's flusher sequenced
// the record: Flush only returns after an acknowledgement that
// happens-after the assignment (see stagedRec). On a closed log nothing is
// staged and the nil LSN is returned.
func (l *Log) Append(r Record) LSN {
	s, err := l.stage(r)
	if err != nil {
		return 0
	}
	if err := l.Flush(); err != nil {
		// The log closed between stage and Flush. The record is (or will
		// be) sequenced by Close's drain; join the sequencer directly so
		// the read of s.lsn below is ordered after its assignment rather
		// than racing it.
		l.flushOnce()
	}
	return s.lsn
}

// Flush guarantees that every record staged before the call is sequenced
// and handed to the durability backend when it returns. In synchronous
// mode the caller sequences inline (group-committing whatever other
// committers have staged meanwhile). In asynchronous mode the caller
// registers a commit barrier and sleeps until the flusher's
// acknowledgement, which happens only after the backend sync — so a
// committed transaction is durable when Flush returns. A failed backend
// sync does not block the ack (the in-memory log stays usable); it is
// recorded and exposed by Err, which durability-requiring callers must
// check after Flush (txn.Commit does). Flush on a closed log returns an
// error wrapping ErrClosed; everything staged before Close was already
// drained by Close itself.
func (l *Log) Flush() error {
	if l.closing.Load() {
		return fmt.Errorf("wal: flush: %w", ErrClosed)
	}
	if !l.async {
		l.flushOnce()
		return nil
	}
	w := make(chan struct{})
	l.waitMu.Lock()
	l.waiters = append(l.waiters, w)
	l.waitMu.Unlock()
	select {
	case l.wake <- struct{}{}:
	default:
	}
	select {
	case <-w:
	case <-l.flusherDone:
		// The flusher exited (Close raced with this barrier); sequence
		// directly. flushOnce acks every registered waiter exactly once,
		// and skips the backend if Close already released it (any records
		// sequenced that late surface as an ErrClosed-wrapped Err).
		l.flushOnce()
	}
	return nil
}

// sequenceStaged guarantees every record staged before the call has been
// sequenced when it returns, even on a closing log. It is what the read
// accessors (Get, Snapshot, SegmentBounds, ...) and sync-mode WaitDurable
// use in place of a bare Flush: Flush on a closing log returns ErrClosed
// WITHOUT sequencing, so a reader that discarded the error could serve a
// view missing records staged just before Close began. On that error the
// caller joins the sequencer directly — flushMu orders the call against
// Close's final drain — which is the same fallback Append uses.
func (l *Log) sequenceStaged() {
	if err := l.Flush(); err != nil {
		l.flushOnce()
	}
}

// flusher is the dedicated sequencing goroutine of an asynchronous log.
func (l *Log) flusher() {
	defer close(l.flusherDone)
	for {
		select {
		case <-l.quit:
			l.flushOnce()
			return
		case <-l.wake:
		}
		if l.batchInterval > 0 {
			// The dwell — wake to sequencing — is a phase of every commit's
			// barrier latency; the observer's histogram is how E15's
			// dwell-vs-batch-size trade-off becomes visible per flush.
			o := l.obsv.Load()
			var dwell0 time.Time
			if o != nil {
				dwell0 = time.Now()
			}
			t := time.NewTimer(l.batchInterval)
			quitting := false
			select {
			case <-t.C:
			case <-l.full:
				t.Stop()
			case <-l.quit:
				t.Stop()
				quitting = true
			}
			if o != nil {
				o.RecordFlushDwell(time.Since(dwell0).Nanoseconds())
			}
			if quitting {
				l.flushOnce()
				return
			}
		}
		l.flushOnce()
	}
}

// flushOnce performs one sequencing round: snapshot the commit barriers,
// drain every staging stripe, sort the batch by stage stamp, assign it one
// contiguous LSN range (chaining each record to its transaction's previous
// record), hand the batch to the backend, and acknowledge the snapshotted
// barriers. Barriers registered after the snapshot have a wake pending and
// are acked by the next round.
func (l *Log) flushOnce() {
	l.flushMu.Lock()
	if l.async {
		// Drop any MaxBatch token deposited for records this round is
		// about to drain; a stale token would cut a later round's dwell
		// short for a near-empty batch. A token re-earned by records
		// staged after this drain is redeposited by their stage calls.
		select {
		case <-l.full:
		default:
		}
	}
	l.waitMu.Lock()
	ws := l.waiters
	l.waiters = nil
	l.waitMu.Unlock()
	// Drain every stripe while holding all stripe locks at once, so the
	// batch is a consistent cut of the staging buffers: every record staged
	// before the drain is in this batch, and every record staged after it
	// carries a larger stamp (stamps are taken under the stripe lock). Each
	// durable batch is therefore a stamp-prefix of the log — a boundary
	// between batches can never separate a record from a causally earlier
	// one in another stripe, which is what makes the durable winner set of
	// crash recovery closed under read-from (a committed reader's
	// TxnCommitRec can never be durable without the commit it read from).
	var batch []*stagedRec
	for _, st := range l.stripes {
		st.mu.Lock()
	}
	for _, st := range l.stripes {
		if len(st.staged) > 0 {
			batch = append(batch, st.staged...)
			st.staged = nil
		}
	}
	for _, st := range l.stripes {
		st.mu.Unlock()
	}
	if len(batch) > 0 {
		if l.async {
			l.pending.Add(-int64(len(batch)))
		}
		sort.Slice(batch, func(i, j int) bool { return batch[i].stamp < batch[j].stamp })
		// The flat batch copy feeds only the crash hook and the backend;
		// skip the allocation on the default in-memory configuration to
		// keep the commit flush path lean.
		var recs []Record
		if l.crash != nil || l.backend != nil {
			recs = make([]Record, len(batch))
		}
		l.mu.Lock()
		next := l.base + LSN(len(l.records))
		for i, s := range batch {
			s.rec.LSN = next + LSN(i) + 1
			s.rec.PrevLSN = l.lastOf[s.rec.Txn]
			l.lastOf[s.rec.Txn] = s.rec.LSN
			l.records = append(l.records, s.rec)
			l.bytes += recordSize(s.rec)
			if s.rec.Kind == DisciplineRec && l.discipline == "" {
				l.discipline = s.rec.Op.Inv.Args
			}
			s.lsn = s.rec.LSN
			if recs != nil {
				recs[i] = s.rec
			}
		}
		l.mu.Unlock()
		if !l.crashed && l.crash != nil && l.crash(int(l.flushes.Load()), recs) {
			l.crashed = true
		}
		// Decide the batch's durability outcome and move the watermark (or
		// the sticky error) under mu, then wake durability barriers. A
		// simulated crash keeps advancing the watermark — the contract of
		// CrashPoint is that the dying machine's acknowledgements continue.
		var syncFailed error
		lost := false
		switch {
		case l.backendGone:
			lost = true // sequenced after Close released the backend
		case l.crashed:
		case l.dead:
			lost = true // frozen since the first sync failure
		case l.backend != nil:
			o := l.obsv.Load()
			var sync0 time.Time
			if o != nil {
				sync0 = time.Now()
			}
			err := l.backend.Sync(recs)
			if o != nil {
				o.RecordFlushSync(time.Since(sync0).Nanoseconds())
			}
			if err != nil {
				l.dead = true
				syncFailed = err
			}
		}
		l.mu.Lock()
		if syncFailed != nil && l.syncErr == nil {
			l.syncErr = syncFailed
		}
		if l.backendGone && l.syncErr == nil {
			l.syncErr = fmt.Errorf("wal: %d records sequenced after close never reached the backend: %w",
				len(batch), ErrClosed)
		}
		if !lost && syncFailed == nil {
			l.durableTicket = batch[len(batch)-1].stamp
			l.durableLSN = batch[len(batch)-1].rec.LSN
		}
		l.durableCond.Broadcast()
		l.mu.Unlock()
		l.flushes.Add(1)
		l.flushed.Add(int64(len(batch)))
		l.obsv.Load().RecordFlushBatch(int64(len(batch)))
	}
	l.flushMu.Unlock()
	for _, w := range ws {
		close(w)
	}
}

// DurableLSN returns the durable watermark: every record at or below this
// LSN has been acknowledged by the backend (everything, for a log without
// one). The in-memory log may be ahead of it after a sync failure — see
// Err.
func (l *Log) DurableLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durableLSN
}

// IsDurable reports whether the record behind ticket t has reached the
// durability backend. The zero ticket is always durable.
func (l *Log) IsDurable(t Ticket) bool {
	if t <= 0 {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return Ticket(l.durableTicket) >= t
}

// WaitDurable blocks until the record behind ticket t is durable, the
// backend has failed (returning the sticky sync error — the watermark will
// never cover t), or the log is closed (returning an ErrClosed-wrapped
// error). It is the dependency barrier of commit-LSN-ordered lock release:
// a transaction that read from an early-released commit passes that
// commit's ticket here and is acknowledged only once its read-from set is
// durable. The call self-sequences: in asynchronous mode the flusher is
// nudged, and in synchronous mode the caller sequences whatever is staged
// before waiting — nothing else would, so a caller that had not flushed
// first used to block forever on a watermark that could never advance.
func (l *Log) WaitDurable(t Ticket) error {
	if t <= 0 {
		return nil
	}
	if l.async {
		select {
		case l.wake <- struct{}{}:
		default:
		}
	} else {
		l.sequenceStaged()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for Ticket(l.durableTicket) < t {
		if l.syncErr != nil {
			return l.syncErr
		}
		if l.closing.Load() {
			return fmt.Errorf("wal: wait durable: %w", ErrClosed)
		}
		l.durableCond.Wait()
	}
	return nil
}

// Discipline returns the logging discipline the log carries: DisciplineRedo
// when a DisciplineRec marker has been sequenced or replayed, "" when the
// log has no marker (implicitly undo logging — every pre-discipline log).
// Staged records are sequenced first so a just-staged marker is visible.
func (l *Log) Discipline() string {
	l.sequenceStaged()
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.discipline
}

// Flushes returns the number of non-empty flush batches sequenced so far.
func (l *Log) Flushes() int64 { return l.flushes.Load() }

// FlushedRecords returns the total records sequenced by flush batches
// (FlushedRecords/Flushes is the mean group-commit batch size).
func (l *Log) FlushedRecords() int64 { return l.flushed.Load() }

// Stats is a coherent snapshot of every accounting figure the log
// exposes. The individual accessors (Flushes, Records, Base, ...) each
// take their own lock, so a caller reading several of them can observe
// torn cross-field states — Records from before a truncation and Base
// from after it. Stats reads everything under one sequence point.
type Stats struct {
	Flushes            int64         `json:"flushes"`
	FlushedRecords     int64         `json:"flushed_records"`
	StripeAcquisitions int64         `json:"stripe_acquisitions"`
	DurableTicket      Ticket        `json:"durable_ticket"`
	DurableLSN         LSN           `json:"durable_lsn"`
	Records            int           `json:"records"`
	Bytes              int64         `json:"bytes"`
	Base               LSN           `json:"base"`
	Discipline         string        `json:"discipline,omitempty"`
	Truncate           TruncateStats `json:"truncate"`
	Err                error         `json:"-"`
}

// Stats returns the log's accounting under a single sequence point:
// staged records are sequenced first, then every field is read while
// holding flushMu and mu (the flushOnce / TruncateBefore lock order),
// so no flush or truncation can interleave between fields. On a
// quiesced log each field equals its individual accessor.
func (l *Log) Stats() Stats {
	l.sequenceStaged()
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	s := Stats{
		Flushes:            l.flushes.Load(),
		FlushedRecords:     l.flushed.Load(),
		StripeAcquisitions: l.stripeAcqs.Load(),
		Truncate:           l.truncStats,
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	s.DurableTicket = Ticket(l.durableTicket)
	s.DurableLSN = l.durableLSN
	s.Records = len(l.records)
	s.Bytes = l.bytes
	s.Base = l.base
	s.Discipline = l.discipline
	s.Err = l.syncErr
	return s
}

// Get returns the record at the LSN, flushing staged records first. A
// truncated LSN (at or below Base) is absent.
func (l *Log) Get(lsn LSN) (Record, bool) {
	l.sequenceStaged()
	l.mu.Lock()
	defer l.mu.Unlock()
	if lsn <= l.base || lsn > l.base+LSN(len(l.records)) {
		return Record{}, false
	}
	return l.records[lsn-l.base-1], true
}

// LastLSN returns the most recent LSN written for txn (0 if none),
// flushing staged records first.
func (l *Log) LastLSN(txn history.TxnID) LSN {
	l.sequenceStaged()
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastOf[txn]
}

// Len returns the number of retained records (truncated records excluded),
// flushing staged records first.
func (l *Log) Len() int {
	l.sequenceStaged()
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Records is the log-size accounting the checkpoint experiments report:
// the number of retained records, flushing staged records first. It equals
// Len; the pair Records/Bytes names the measurement intent.
func (l *Log) Records() int { return l.Len() }

// Bytes returns the approximate encoded size of the retained records —
// the log-length axis of the restart-cost experiment, maintained
// incrementally so truncation's effect is visible without re-encoding the
// log. Staged records are flushed first.
func (l *Log) Bytes() int64 {
	l.sequenceStaged()
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes
}

// Base returns the truncation base: every record with LSN at or below it
// has been discarded by TruncateBefore (0 for an untruncated log). LSNs
// are never renumbered, so Base+1 is the first replayable LSN.
func (l *Log) Base() LSN {
	l.sequenceStaged()
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base
}

// SuffixLen returns the number of retained records with LSN strictly
// greater than lsn — the suffix a checkpoint-seeded restart replays when
// lsn is the checkpoint frontier. Staged records are flushed first.
func (l *Log) SuffixLen(lsn LSN) int {
	l.sequenceStaged()
	l.mu.Lock()
	defer l.mu.Unlock()
	high := l.base + LSN(len(l.records))
	if lsn >= high {
		return 0
	}
	if lsn < l.base {
		lsn = l.base
	}
	return int(high - lsn)
}

// TxnChain returns txn's records newest-first, following PrevLSN — the
// traversal abort processing performs. Staged records are flushed first;
// a chain that crosses the truncation base stops at the oldest retained
// record.
func (l *Log) TxnChain(txn history.TxnID) []Record {
	l.sequenceStaged()
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Record
	lsn := l.lastOf[txn]
	for lsn > l.base {
		r := l.records[lsn-l.base-1]
		out = append(out, r)
		lsn = r.PrevLSN
	}
	return out
}

// Snapshot returns a copy of the retained records in LSN order
// (diagnostics, tests), flushing staged records first. Truncated records
// are gone; the first record's LSN is Base+1.
func (l *Log) Snapshot() []Record {
	l.sequenceStaged()
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Record(nil), l.records...)
}

// TruncateBefore discards every record with LSN strictly below lsn from
// the retained log and, when the backend supports it (see Truncator), from
// durable storage — the log-reclamation half of fuzzy checkpointing. The
// requested point is clamped to the durable watermark plus one: truncation
// never crosses the watermark, because records past it exist only in
// memory (a lagging or failed flusher) and dropping their durable prefix
// would leave the file unreplayable. It returns the number of records
// discarded. LSNs are not renumbered; Base advances instead.
//
// On a log whose backend has died, or under a simulated crash
// (CrashPoint), only the in-memory prefix is dropped — a dead machine
// cannot rewrite its file, and the sticky-error/crash contracts already
// freeze or fake the watermark accordingly.
//
// A backend that can only truncate at certain boundaries (the segmented
// backend truncates at segment starts) implements TruncateAligner; the
// requested point is aligned down to the backend's boundary before
// anything is dropped, so the retained in-memory log and the durable log
// stay byte-for-byte in agreement and a reopen replays exactly what the
// live log retained.
func (l *Log) TruncateBefore(lsn LSN) (int, error) {
	// flushMu orders the truncation against batch sequencing (no new LSNs
	// are assigned mid-truncate) and serializes the backend rewrite against
	// Sync, matching flushOnce's flushMu → mu order.
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	skipBackend := l.crashed || l.dead || l.backendGone
	l.mu.Lock()
	if maxPoint := l.durableLSN + 1; lsn > maxPoint {
		lsn = maxPoint
	}
	l.mu.Unlock()
	if !skipBackend {
		if al, ok := l.backend.(TruncateAligner); ok {
			lsn = al.AlignTruncate(lsn)
		}
	}
	l.mu.Lock()
	if lsn <= l.base+1 {
		l.mu.Unlock()
		return 0, nil
	}
	n := int(lsn - 1 - l.base)
	for _, r := range l.records[:n] {
		l.bytes -= recordSize(r)
	}
	// Copy the suffix so the truncated prefix's backing array is released.
	l.records = append([]Record(nil), l.records[n:]...)
	l.base = lsn - 1
	l.mu.Unlock()
	if !skipBackend {
		if tr, ok := l.backend.(Truncator); ok {
			stats, err := tr.TruncateBefore(lsn)
			l.truncStats.Add(stats)
			if err != nil {
				return n, fmt.Errorf("wal: truncate backend before %d: %w", lsn, err)
			}
		}
	}
	return n, nil
}

// AlignTruncate returns the truncation point the backend would realize for
// a TruncateBefore(lsn): the durable-watermark clamp followed by the
// backend's boundary alignment (segment starts, for the segmented
// backend). Checkpointing records this value so the durable snapshot names
// the exact durable truncation point.
func (l *Log) AlignTruncate(lsn LSN) LSN {
	l.mu.Lock()
	if maxPoint := l.durableLSN + 1; lsn > maxPoint {
		lsn = maxPoint
	}
	l.mu.Unlock()
	if al, ok := l.backend.(TruncateAligner); ok {
		return al.AlignTruncate(lsn)
	}
	return lsn
}

// TruncateStats returns the accumulated backend truncation cost across
// every TruncateBefore since Open — the rewrite-bytes-vs-unlinked-segments
// comparison the restart experiment reports.
func (l *Log) TruncateStats() TruncateStats {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	return l.truncStats
}

// SegmentBounds returns the first LSN of each durable segment in ascending
// order when the backend is segmented (see Segmenter), or nil for
// unsegmented backends. Parallel restart partitions its pass-1 winner scan
// on these boundaries. Staged records are flushed first so the bounds
// cover everything sequenced.
func (l *Log) SegmentBounds() []LSN {
	l.sequenceStaged()
	if sg, ok := l.backend.(Segmenter); ok {
		return sg.SegmentStarts()
	}
	return nil
}

// recordSize returns a record's exact durable encoding size — the bytes a
// file or segmented backend appends for it — so the Bytes accounting
// matches the on-disk log byte for byte. Records whose undo tokens exist
// only in memory (raw tokens never staged for a durable backend) cannot be
// encoded; those fall back to the estimate.
func recordSize(r Record) int64 {
	if line, err := encodeRecord(r); err == nil {
		return int64(len(line))
	}
	return approxRecordSize(r)
}

// approxRecordSize estimates a record's encoded size (fixed framing plus
// its string payloads) for records recordSize cannot encode exactly.
func approxRecordSize(r Record) int64 {
	n := 24 + len(r.Txn) + len(r.Obj) + len(r.Op.Inv.Name) + len(r.Op.Inv.Args) + len(r.Op.Res)
	if enc, ok := r.Undo.(EncodedUndo); ok {
		n += len(enc)
	}
	for _, d := range r.Deps {
		n += len(d) + 3
	}
	return int64(n)
}
