package wal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/history"
)

// TestFileBackendRoundTrip: records synced to a file backend come back
// byte-identical through a re-open, including awkward field contents.
func TestFileBackendRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	b, err := CreateFileBackend(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{LSN: 1, Kind: Update, Txn: "T1", Obj: "X", Op: adt.DepositOk(3)},
		{LSN: 2, Kind: Update, Txn: "T\t2", Obj: "obj\nwith\\newline", PrevLSN: 0,
			Op: adt.PutOk("k\tey", "v\nal"), Undo: EncodedUndo("tok\ten\\1")},
		{LSN: 3, Kind: CommitRec, Txn: "T1", Obj: "X", PrevLSN: 1},
		{LSN: 4, Kind: CompensationRec, Txn: "T\t2", Obj: "obj\nwith\\newline", PrevLSN: 2,
			Op: adt.PutOk("k\tey", "v\nal")},
		{LSN: 5, Kind: AbortRec, Txn: "T\t2", Obj: "obj\nwith\\newline", PrevLSN: 4},
		// The transaction-level commit record has no object and no operation.
		{LSN: 6, Kind: TxnCommitRec, Txn: "T1", PrevLSN: 3},
		// Redo-only discipline records: the logical-op record with no undo
		// payload, the dependency-carrying commit record (awkward IDs
		// included), and the discipline marker.
		{LSN: 7, Kind: RedoRec, Txn: "T3", Obj: "X", Op: adt.DepositOk(5)},
		{LSN: 8, Kind: TxnCommitRec, Txn: "T3", PrevLSN: 7, Deps: []history.TxnID{"T1", "T\t2", `d"ep\`}},
		{LSN: 9, Kind: DisciplineRec, Op: DisciplineMarker(DisciplineRedo).Op},
	}
	if err := b.Sync(recs); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	rb, err := OpenFileBackend(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	got := rb.Replay()
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !reflect.DeepEqual(got[i], recs[i]) {
			t.Fatalf("record %d round-tripped as %+v, want %+v", i, got[i], recs[i])
		}
	}
}

// TestFileBackendRejectsOpaqueUndo: a raw (non-EncodedUndo) token cannot
// be made durable; the error names the fix.
func TestFileBackendRejectsOpaqueUndo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	b, err := CreateFileBackend(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	err = b.Sync([]Record{{LSN: 1, Kind: Update, Txn: "A", Obj: "X",
		Op: adt.DepositOk(1), Undo: struct{ x int }{1}}})
	if err == nil {
		t.Fatal("Sync accepted an opaque undo token")
	}
}

// TestFileBackendTornTail: a crash mid-write leaves a partial final line;
// re-opening discards it, keeps every whole record, and appends cleanly
// after the truncation point.
func TestFileBackendTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	b, err := CreateFileBackend(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Sync([]Record{
		{LSN: 1, Kind: Update, Txn: "A", Obj: "X", Op: adt.DepositOk(1)},
		{LSN: 2, Kind: Update, Txn: "A", Obj: "X", PrevLSN: 1, Op: adt.DepositOk(2)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: append half a record with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("3\t0\tA\tX\t2\tdeposit"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	rb, err := OpenFileBackend(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rb.Replay()); got != 2 {
		t.Fatalf("replayed %d records, want 2 (torn tail discarded)", got)
	}
	// The truncation leaves the file appendable at the record boundary.
	if err := rb.Sync([]Record{{LSN: 3, Kind: CommitRec, Txn: "A", Obj: "X", PrevLSN: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := rb.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].Kind != CommitRec {
		t.Fatalf("after repair log = %+v", recs)
	}
}

// TestFileBackendRejectsMidFileCorruption: garbage before the final line is
// corruption, not a torn tail.
func TestFileBackendRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	if err := os.WriteFile(path, []byte("garbage line\n1\t1\tA\tX\t0\t\t\t\t-\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileBackend(path); err == nil {
		t.Fatal("OpenFileBackend accepted mid-file corruption")
	}
}

// TestOpenReplaysFileBackend: wal.Open over a re-opened file backend
// reconstructs the committed region — LSNs, chains, and contents — and new
// appends continue the durable log.
func TestOpenReplaysFileBackend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	b, err := CreateFileBackend(path)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Open(Config{Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	l.Append(Record{Kind: Update, Txn: "A", Obj: "X", Op: adt.DepositOk(5)})
	l.Append(Record{Kind: CommitRec, Txn: "A", Obj: "X"})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	rb, err := OpenFileBackend(path)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Open(Config{Backend: rb})
	if err != nil {
		t.Fatal(err)
	}
	if rl.Len() != 2 {
		t.Fatalf("replayed Len = %d, want 2", rl.Len())
	}
	if rl.LastLSN("A") != 2 {
		t.Fatalf("LastLSN(A) = %d, want 2", rl.LastLSN("A"))
	}
	lsn := rl.Append(Record{Kind: Update, Txn: "B", Obj: "X", Op: adt.DepositOk(1)})
	if lsn != 3 {
		t.Fatalf("post-replay append got LSN %d, want 3", lsn)
	}
	chain := rl.TxnChain("A")
	if len(chain) != 2 || chain[0].Kind != CommitRec || chain[0].PrevLSN != 1 {
		t.Fatalf("replayed chain = %+v", chain)
	}
	if err := rl.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadFileLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("durable log has %d records, want 3", len(recs))
	}
}

// TestLatencyBackendDelays: syncs take at least the configured latency.
func TestLatencyBackendDelays(t *testing.T) {
	b := NewLatencyBackend(5*time.Millisecond, nil)
	start := time.Now()
	if err := b.Sync([]Record{{LSN: 1}}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("sync returned after %v, want >= 5ms", d)
	}
	if b.Syncs() != 1 || b.SyncedRecords() != 1 {
		t.Fatalf("counters = %d syncs / %d records", b.Syncs(), b.SyncedRecords())
	}
}
