package wal

import (
	"errors"
	"testing"

	"repro/internal/adt"
)

// TestAppendBatchAsyncStampsAndOrder: a batch staged in one call carries
// consecutive stamps, the returned ticket is the last record's stamp, and
// sequencing preserves the in-batch order.
func TestAppendBatchAsyncStampsAndOrder(t *testing.T) {
	l := New()
	pre, err := l.AppendAsync(Record{Kind: Update, Txn: "A", Obj: "X", Op: adt.DepositOk(1)})
	if err != nil {
		t.Fatal(err)
	}
	batch := []Record{
		{Kind: CommitRec, Txn: "A", Obj: "X"},
		{Kind: CommitRec, Txn: "A", Obj: "Y"},
		{Kind: CommitRec, Txn: "A", Obj: "Z"},
	}
	tk, err := l.AppendBatchAsync(batch)
	if err != nil {
		t.Fatal(err)
	}
	if tk != pre+3 {
		t.Fatalf("batch ticket = %d, want %d (three consecutive stamps after %d)", tk, pre+3, pre)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	recs := l.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("log has %d records, want 4", len(recs))
	}
	for i, want := range []string{"X", "Y", "Z"} {
		if got := string(recs[i+1].Obj); got != want {
			t.Fatalf("record %d is for object %s, want %s (batch order not preserved)", i+1, got, want)
		}
	}
	// The PrevLSN chain threads through the batch.
	chain := l.TxnChain("A")
	if len(chain) != 4 {
		t.Fatalf("chain length = %d, want 4", len(chain))
	}
	if !l.IsDurable(tk) {
		t.Fatal("batch ticket not durable after flush")
	}
}

// TestAppendBatchAsyncEmptyAndMixed: an empty batch is a no-op returning
// the zero ticket; a mixed-transaction batch stages nothing and errors.
func TestAppendBatchAsyncEmptyAndMixed(t *testing.T) {
	l := New()
	tk, err := l.AppendBatchAsync(nil)
	if err != nil || tk != 0 {
		t.Fatalf("empty batch = %d, %v; want 0, nil", tk, err)
	}
	_, err = l.AppendBatchAsync([]Record{
		{Kind: CommitRec, Txn: "A", Obj: "X"},
		{Kind: CommitRec, Txn: "B", Obj: "Y"},
	})
	if err == nil {
		t.Fatal("mixed-transaction batch accepted")
	}
	if l.Len() != 0 {
		t.Fatalf("mixed batch staged %d records, want 0", l.Len())
	}
}

// TestAppendBatchAsyncClosed: a batch racing Close is rejected whole with
// ErrClosed — never a partial stage.
func TestAppendBatchAsyncClosed(t *testing.T) {
	l := New()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := l.AppendBatchAsync([]Record{
		{Kind: CommitRec, Txn: "A", Obj: "X"},
		{Kind: CommitRec, Txn: "A", Obj: "Y"},
	})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("batch on closed log: err = %v, want ErrClosed", err)
	}
	if l.Len() != 0 {
		t.Fatalf("closed log retains %d records, want 0", l.Len())
	}
}

// TestStripeAcquisitionCounting: N AppendAsync calls cost N acquisitions,
// one AppendBatchAsync of N records costs 1.
func TestStripeAcquisitionCounting(t *testing.T) {
	l := New()
	if got := l.StripeAcquisitions(); got != 0 {
		t.Fatalf("fresh log has %d acquisitions", got)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.AppendAsync(Record{Kind: Update, Txn: "A", Obj: "X", Op: adt.DepositOk(1)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.StripeAcquisitions(); got != 5 {
		t.Fatalf("after 5 AppendAsync: %d acquisitions, want 5", got)
	}
	batch := make([]Record, 5)
	for i := range batch {
		batch[i] = Record{Kind: CommitRec, Txn: "A", Obj: "X"}
	}
	if _, err := l.AppendBatchAsync(batch); err != nil {
		t.Fatal(err)
	}
	if got := l.StripeAcquisitions(); got != 6 {
		t.Fatalf("after 5-record batch: %d acquisitions, want 6", got)
	}
}

// TestAppendBatchAsyncConsistentCut: records staged in one batch call are
// never split across flush batches — a flush drain sees all or none.
func TestAppendBatchAsyncConsistentCut(t *testing.T) {
	l := New()
	const n = 8
	batch := make([]Record, n)
	for i := range batch {
		batch[i] = Record{Kind: CommitRec, Txn: "A", Obj: "X"}
	}
	if _, err := l.AppendBatchAsync(batch); err != nil {
		t.Fatal(err)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if l.Flushes() != 1 {
		t.Fatalf("flushes = %d, want 1", l.Flushes())
	}
	if l.FlushedRecords() != n {
		t.Fatalf("flushed records = %d, want %d", l.FlushedRecords(), n)
	}
}
