package wal

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/adt"
	"repro/internal/history"
)

// TestStatsMatchesAccessors checks that on a quiesced log every Stats
// field equals its individual accessor — the consolidation changed the
// read protocol, not the numbers.
func TestStatsMatchesAccessors(t *testing.T) {
	l := New()
	for i := 0; i < 10; i++ {
		l.Append(Record{Kind: Update, Txn: history.TxnID(fmt.Sprintf("T%d", i)), Obj: "X", Op: adt.DepositOk(1)})
	}
	if _, err := l.TruncateBefore(4); err != nil {
		t.Fatal(err)
	}
	s := l.Stats()
	if s.Flushes != l.Flushes() {
		t.Errorf("Flushes: %d vs %d", s.Flushes, l.Flushes())
	}
	if s.FlushedRecords != l.FlushedRecords() {
		t.Errorf("FlushedRecords: %d vs %d", s.FlushedRecords, l.FlushedRecords())
	}
	if s.StripeAcquisitions != l.StripeAcquisitions() {
		t.Errorf("StripeAcquisitions: %d vs %d", s.StripeAcquisitions, l.StripeAcquisitions())
	}
	if s.DurableLSN != l.DurableLSN() {
		t.Errorf("DurableLSN: %d vs %d", s.DurableLSN, l.DurableLSN())
	}
	if s.Records != l.Records() {
		t.Errorf("Records: %d vs %d", s.Records, l.Records())
	}
	if s.Bytes != l.Bytes() {
		t.Errorf("Bytes: %d vs %d", s.Bytes, l.Bytes())
	}
	if s.Base != l.Base() {
		t.Errorf("Base: %d vs %d", s.Base, l.Base())
	}
	if s.Discipline != l.Discipline() {
		t.Errorf("Discipline: %q vs %q", s.Discipline, l.Discipline())
	}
	if s.Truncate != l.TruncateStats() {
		t.Errorf("Truncate: %+v vs %+v", s.Truncate, l.TruncateStats())
	}
	if s.Err != l.Err() {
		t.Errorf("Err: %v vs %v", s.Err, l.Err())
	}
	if s.Base != 3 || s.Records != 7 {
		t.Errorf("after TruncateBefore(4): Base=%d Records=%d, want 3 and 7", s.Base, s.Records)
	}
}

// TestStatsCoherentUnderConcurrency is the torn-read proof. On a log
// without a backend the invariant DurableLSN == Base + Records holds at
// every sequence point (everything sequenced is durable, LSNs are never
// renumbered). Reading Base and Records through the individual accessors
// while appenders and a truncator run can violate it — each accessor
// locks separately, so a truncation can land between the two reads.
// Stats reads all fields under one sequence point, so the invariant
// must hold in every snapshot it returns.
func TestStatsCoherentUnderConcurrency(t *testing.T) {
	l := New()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			txn := history.TxnID(fmt.Sprintf("W%d", w))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				l.Append(Record{Kind: Update, Txn: txn, Obj: "X", Op: adt.DepositOk(1)})
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			durable := l.DurableLSN()
			if durable > 2 {
				if _, err := l.TruncateBefore(durable - 2); err != nil {
					t.Errorf("truncate: %v", err)
					return
				}
			}
		}
	}()
	for i := 0; i < 2000; i++ {
		s := l.Stats()
		if got := s.Base + LSN(s.Records); s.DurableLSN != got {
			t.Fatalf("torn snapshot %d: DurableLSN=%d but Base+Records=%d (+%d records, base %d)",
				i, s.DurableLSN, got, s.Records, s.Base)
		}
	}
	close(stop)
	wg.Wait()
}
