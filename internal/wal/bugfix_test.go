package wal

// Regression tests for three WAL bugs fixed together:
//
//  1. sync-mode WaitDurable blocked forever unless the caller had flushed
//     first (nothing else sequences in synchronous mode);
//  2. the read accessors called Flush() and discarded its error, so on a
//     closing log (where Flush returns ErrClosed without sequencing) they
//     could serve a view missing records staged just before Close began;
//  3. Bytes() was built on approxRecordSize estimates that drift from the
//     real durable encoding, so the live accounting disagreed with the
//     on-disk file sizes.

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/history"
)

// TestWaitDurableSyncSelfSequences: in synchronous mode, WaitDurable on a
// ticket the caller never flushed must sequence the staged records itself
// rather than sleeping on a watermark nothing will ever advance. Before
// the fix this test timed out (the barrier hung forever).
func TestWaitDurableSyncSelfSequences(t *testing.T) {
	l, err := Open(Config{Backend: Discard})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	tk, err := l.AppendAsync(Record{Kind: Update, Txn: "A", Obj: "X", Op: adt.DepositOk(1)})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- l.WaitDurable(tk) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("WaitDurable: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sync-mode WaitDurable hung: nothing sequenced the staged record")
	}
	if !l.IsDurable(tk) {
		t.Fatal("ticket not durable after WaitDurable returned")
	}
}

// gateBackend blocks every Sync until the gate channel is closed and
// signals each entry, so a test can hold the flusher inside a sync while
// it races readers against Close.
type gateBackend struct {
	entered chan struct{}
	gate    chan struct{}
}

func (b *gateBackend) Sync([]Record) error {
	select {
	case b.entered <- struct{}{}:
	default:
	}
	<-b.gate
	return nil
}
func (b *gateBackend) Close() error { return nil }

// TestSnapshotSequencesOnClosingLog: a reader that loses the race with
// Close must still see every record staged before Close began. Before the
// fix, Snapshot discarded Flush's ErrClosed and returned immediately with
// whatever was already sequenced — silently missing the staged tail that
// Close's drain was about to sequence.
func TestSnapshotSequencesOnClosingLog(t *testing.T) {
	b := &gateBackend{entered: make(chan struct{}, 1), gate: make(chan struct{})}
	l, err := Open(Config{Async: true, Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendAsync(Record{Kind: Update, Txn: "A", Obj: "X", Op: adt.DepositOk(1)}); err != nil {
		t.Fatal(err)
	}
	// Hold the flusher inside Sync(batch{R1}) — it owns flushMu for the
	// whole round — then stage a second record it has not yet seen.
	<-b.entered
	if _, err := l.AppendAsync(Record{Kind: Update, Txn: "B", Obj: "X", Op: adt.DepositOk(2)}); err != nil {
		t.Fatal(err)
	}
	closed := make(chan error, 1)
	go func() { closed <- l.Close() }()
	for !l.closing.Load() {
		runtime.Gosched()
	}
	// The log is now closing with one record still staged. A correct
	// reader blocks until the drain sequences it; the buggy reader
	// returned a 1-record view within this window.
	snapC := make(chan []Record, 1)
	go func() { snapC <- l.Snapshot() }()
	time.Sleep(20 * time.Millisecond)
	close(b.gate)
	snap := <-snapC
	if len(snap) != 2 {
		t.Fatalf("Snapshot on closing log returned %d records, want 2 (staged tail lost)", len(snap))
	}
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestBytesMatchesDurableEncoding: the live Bytes() accounting must equal
// the backend's appended-byte count AND the on-disk file size, through
// appends and truncation, for both durable backends. Before the fix the
// accounting used per-record size estimates that drift from the real
// encoding.
func TestBytesMatchesDurableEncoding(t *testing.T) {
	records := func(n int) []Record {
		var out []Record
		for i := 0; i < n; i++ {
			txn := history.TxnID("T" + string(rune('a'+i%4)))
			switch i % 4 {
			case 0:
				out = append(out, Record{Kind: Update, Txn: txn, Obj: "acct", Op: adt.DepositOk(i),
					Undo: EncodedUndo("tok\ten")})
			case 1:
				out = append(out, Record{Kind: RedoRec, Txn: txn, Obj: "acct", Op: adt.WithdrawOk(1)})
			case 2:
				out = append(out, Record{Kind: TxnCommitRec, Txn: txn, Deps: []history.TxnID{"Ta", "Tb"}})
			default:
				out = append(out, Record{Kind: CommitRec, Txn: txn, Obj: "acct"})
			}
		}
		return out
	}

	t.Run("file", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "wal.log")
		fb, err := CreateFileBackend(path)
		if err != nil {
			t.Fatal(err)
		}
		l, err := Open(Config{Backend: fb})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		for _, r := range records(16) {
			if l.Append(r) == 0 {
				t.Fatal("append failed")
			}
		}
		check := func(stage string) {
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := l.Bytes(), fb.DurableBytes(); got != want {
				t.Fatalf("%s: Bytes()=%d, backend DurableBytes()=%d", stage, got, want)
			}
			if got, want := fb.DurableBytes(), st.Size(); got != want {
				t.Fatalf("%s: backend DurableBytes()=%d, on-disk size=%d", stage, got, want)
			}
		}
		check("after appends")
		if _, err := l.TruncateBefore(9); err != nil {
			t.Fatal(err)
		}
		check("after truncation")
	})

	t.Run("segmented", func(t *testing.T) {
		dir := t.TempDir()
		sb, err := CreateSegmentedBackend(dir, SegmentConfig{MaxSegmentBytes: 128})
		if err != nil {
			t.Fatal(err)
		}
		l, err := Open(Config{Backend: sb})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		for _, r := range records(24) {
			if l.Append(r) == 0 {
				t.Fatal("append failed")
			}
		}
		diskBytes := func() int64 {
			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			var n int64
			for _, e := range ents {
				if _, ok := parseSegName(e.Name()); !ok {
					continue
				}
				info, err := e.Info()
				if err != nil {
					t.Fatal(err)
				}
				n += info.Size()
			}
			return n
		}
		check := func(stage string) {
			if got, want := l.Bytes(), sb.DurableBytes(); got != want {
				t.Fatalf("%s: Bytes()=%d, backend DurableBytes()=%d", stage, got, want)
			}
			if got, want := sb.DurableBytes(), diskBytes(); got != want {
				t.Fatalf("%s: backend DurableBytes()=%d, on-disk segment bytes=%d", stage, got, want)
			}
		}
		if sb.Rotations() == 0 {
			t.Fatal("workload did not rotate segments; raise the record count")
		}
		check("after appends")
		if _, err := l.TruncateBefore(l.AlignTruncate(13)); err != nil {
			t.Fatal(err)
		}
		check("after truncation")
	})
}
