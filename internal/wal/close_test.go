package wal

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/adt"
)

// TestClosedLogTypedErrors pins the post-Close contract: AppendAsync and
// Flush return ErrClosed-wrapped errors, Append returns the nil LSN
// without staging, WaitDurable on an unreachable ticket reports ErrClosed,
// and a second Close returns the same result — in both flush modes.
func TestClosedLogTypedErrors(t *testing.T) {
	for _, mode := range []struct {
		name string
		cfg  Config
	}{
		{"sync", Config{Backend: NewLatencyBackend(0, nil)}},
		{"async", Config{Async: true, Backend: NewLatencyBackend(0, nil)}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			l, err := Open(mode.cfg)
			if err != nil {
				t.Fatal(err)
			}
			tk, err := l.AppendAsync(Record{Kind: Update, Txn: "A", Obj: "X", Op: adt.DepositOk(1)})
			if err != nil || tk <= 0 {
				t.Fatalf("AppendAsync = (%d, %v) on an open log", tk, err)
			}
			first := l.Close()
			if first != nil {
				t.Fatalf("Close = %v", first)
			}
			if second := l.Close(); second != first {
				t.Fatalf("second Close = %v, want %v (idempotent)", second, first)
			}
			// The pre-close record was drained and made durable by Close.
			if !l.IsDurable(tk) {
				t.Error("record staged before Close not durable after Close")
			}
			if got := l.Len(); got != 1 {
				t.Fatalf("Len = %d after Close, want 1", got)
			}
			if _, err := l.AppendAsync(Record{Kind: Update, Txn: "B", Obj: "X", Op: adt.DepositOk(2)}); !errors.Is(err, ErrClosed) {
				t.Fatalf("AppendAsync after Close = %v, want ErrClosed", err)
			}
			if err := l.Flush(); !errors.Is(err, ErrClosed) {
				t.Fatalf("Flush after Close = %v, want ErrClosed", err)
			}
			if lsn := l.Append(Record{Kind: Update, Txn: "B", Obj: "X", Op: adt.DepositOk(2)}); lsn != 0 {
				t.Fatalf("Append after Close = %d, want the nil LSN", lsn)
			}
			if got := l.Len(); got != 1 {
				t.Fatalf("Len = %d after post-close appends, want 1 (nothing staged)", got)
			}
			if err := l.WaitDurable(tk + 100); !errors.Is(err, ErrClosed) {
				t.Fatalf("WaitDurable(unreachable) after Close = %v, want ErrClosed", err)
			}
			if err := l.WaitDurable(0); err != nil {
				t.Fatalf("WaitDurable(0) = %v, want nil (zero ticket is always durable)", err)
			}
		})
	}
}

// TestDurableWatermark tracks the watermark across the backend outcomes:
// it advances with every acknowledged batch, freezes at the first sync
// failure (WaitDurable then reports the sticky error), and — per the
// CrashPoint contract — keeps advancing under a simulated crash, where
// acknowledgements continue while nothing reaches the device.
func TestDurableWatermark(t *testing.T) {
	t.Run("advances-per-batch", func(t *testing.T) {
		b := NewLatencyBackend(0, nil)
		l, err := Open(Config{Backend: b})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		t1, _ := l.AppendAsync(Record{Kind: Update, Txn: "A", Obj: "X", Op: adt.DepositOk(1)})
		if l.IsDurable(t1) {
			t.Fatal("staged record durable before any flush")
		}
		l.Flush()
		if !l.IsDurable(t1) {
			t.Fatal("record not durable after its flush")
		}
		if got := l.DurableLSN(); got != 1 {
			t.Fatalf("DurableLSN = %d, want 1", got)
		}
		t2, _ := l.AppendAsync(Record{Kind: TxnCommitRec, Txn: "A"})
		l.Flush()
		if !l.IsDurable(t2) || l.DurableLSN() != 2 {
			t.Fatalf("watermark did not advance: IsDurable=%v DurableLSN=%d", l.IsDurable(t2), l.DurableLSN())
		}
		if err := l.WaitDurable(t2); err != nil {
			t.Fatalf("WaitDurable(durable ticket) = %v", err)
		}
	})

	t.Run("freezes-on-sync-failure", func(t *testing.T) {
		devErr := fmt.Errorf("device gone")
		fail := &syncFailBackend{err: devErr}
		l, err := Open(Config{Backend: fail})
		if err != nil {
			t.Fatal(err)
		}
		tk, _ := l.AppendAsync(Record{Kind: Update, Txn: "A", Obj: "X", Op: adt.DepositOk(1)})
		l.Flush()
		if l.IsDurable(tk) {
			t.Fatal("record durable despite sync failure")
		}
		if got := l.DurableLSN(); got != 0 {
			t.Fatalf("DurableLSN = %d after failed sync, want 0", got)
		}
		if err := l.WaitDurable(tk); !errors.Is(err, devErr) {
			t.Fatalf("WaitDurable = %v, want the sticky backend failure", err)
		}
		if err := l.Close(); !errors.Is(err, devErr) {
			t.Fatalf("Close = %v, want the sticky backend failure", err)
		}
	})

	t.Run("advances-under-simulated-crash", func(t *testing.T) {
		b := NewLatencyBackend(0, nil)
		l, err := Open(Config{
			Backend:    b,
			CrashPoint: func(batch int, _ []Record) bool { return true },
		})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		tk, _ := l.AppendAsync(Record{Kind: Update, Txn: "A", Obj: "X", Op: adt.DepositOk(1)})
		l.Flush()
		if b.Syncs() != 0 {
			t.Fatal("crashed log reached the backend")
		}
		if !l.IsDurable(tk) {
			t.Fatal("acknowledgements must continue after the simulated crash (the machine has not noticed it is dead)")
		}
		if err := l.WaitDurable(tk); err != nil {
			t.Fatalf("WaitDurable under simulated crash = %v", err)
		}
	})
}

// syncFailBackend fails every Sync with a fixed error.
type syncFailBackend struct{ err error }

func (b *syncFailBackend) Sync([]Record) error { return b.err }
func (b *syncFailBackend) Close() error        { return nil }

// TestFlushRacingCloseIsTyped hammers Flush/AppendAsync against Close: no
// call may hang or panic, and once Close has returned, every subsequent
// append or flush reports ErrClosed. Run with -race.
func TestFlushRacingCloseIsTyped(t *testing.T) {
	for round := 0; round < 20; round++ {
		l, err := Open(Config{Async: true, Backend: NewLatencyBackend(0, nil)})
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; ; i++ {
				if _, err := l.AppendAsync(Record{Kind: Update, Txn: "A", Obj: "X", Op: adt.DepositOk(1)}); err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("AppendAsync = %v, want ErrClosed", err)
					}
					return
				}
				if err := l.Flush(); err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("Flush = %v, want nil or ErrClosed", err)
					return
				}
			}
		}()
		time.Sleep(time.Duration(round%5) * 100 * time.Microsecond)
		if err := l.Close(); err != nil {
			t.Fatalf("Close = %v", err)
		}
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("appender hung after Close")
		}
	}
}
