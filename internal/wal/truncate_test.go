package wal

// Truncation tests: TruncateBefore drops the prefix from memory and from
// the file backend (atomically, via rewrite + rename), reopen replays only
// the surviving suffix with LSNs preserved, PrevLSN chains that cross the
// truncation base are accepted, and — the watermark regression — a lagging
// or dead flusher bounds how far truncation may reach.

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/history"
	"repro/internal/spec"
)

func truncRec(txn history.TxnID, obj history.ObjectID, name string) Record {
	return Record{Kind: Update, Txn: txn, Obj: obj,
		Op: spec.Operation{Inv: spec.Invocation{Name: name}, Res: "ok"}}
}

// TestTruncateBeforeInMemory checks the in-memory bookkeeping: Base
// advances, Len/Records shrink, Bytes drops, truncated LSNs vanish from
// Get, retained LSNs keep their numbers, and SuffixLen counts past any
// point.
func TestTruncateBeforeInMemory(t *testing.T) {
	l := NewStriped(2)
	for i := 0; i < 10; i++ {
		l.Append(truncRec("T1", "x", "op"))
	}
	if got := l.SuffixLen(4); got != 6 {
		t.Fatalf("SuffixLen(4) = %d, want 6", got)
	}
	bytesBefore := l.Bytes()
	n, err := l.TruncateBefore(5)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("truncated %d records, want 4", n)
	}
	if got := l.Base(); got != 4 {
		t.Fatalf("Base = %d, want 4", got)
	}
	if got := l.Records(); got != 6 {
		t.Fatalf("Records = %d, want 6", got)
	}
	if got := l.Bytes(); got >= bytesBefore || got <= 0 {
		t.Fatalf("Bytes = %d after truncation, want positive and below %d", got, bytesBefore)
	}
	if _, ok := l.Get(4); ok {
		t.Fatal("truncated LSN 4 still readable")
	}
	if r, ok := l.Get(5); !ok || r.LSN != 5 {
		t.Fatalf("retained LSN 5: ok=%v rec=%+v", ok, r)
	}
	if got := l.SuffixLen(0); got != 6 {
		t.Fatalf("SuffixLen(0) = %d, want 6 (truncated records are gone)", got)
	}
	// Idempotent and monotone: truncating at or below the base is a no-op.
	if n, err := l.TruncateBefore(3); err != nil || n != 0 {
		t.Fatalf("re-truncate below base: n=%d err=%v", n, err)
	}
	// New appends continue the LSN sequence.
	if lsn := l.Append(truncRec("T2", "y", "op")); lsn != 11 {
		t.Fatalf("append after truncation assigned LSN %d, want 11", lsn)
	}
}

// TestTruncateChainAcrossBase: a transaction whose chain spans the
// truncation point keeps its retained records walkable, with the walk
// stopping at the base instead of indexing into the dropped prefix.
func TestTruncateChainAcrossBase(t *testing.T) {
	l := NewStriped(1)
	l.Append(truncRec("T1", "x", "a")) // LSN 1
	l.Append(truncRec("T2", "x", "b")) // LSN 2
	l.Append(truncRec("T1", "x", "c")) // LSN 3, PrevLSN 1
	if _, err := l.TruncateBefore(3); err != nil {
		t.Fatal(err)
	}
	chain := l.TxnChain("T1")
	if len(chain) != 1 || chain[0].LSN != 3 || chain[0].PrevLSN != 1 {
		t.Fatalf("chain = %+v, want the single retained record LSN 3 chaining to truncated 1", chain)
	}
	if got := l.TxnChain("T2"); len(got) != 0 {
		t.Fatalf("fully truncated transaction still has a chain: %+v", got)
	}
}

// TestTruncateFileBackendReopen: the file backend rewrites its prefix
// atomically, a reopened backend replays only the suffix with original
// LSNs (wal.Open fixes the base from the first surviving record), and
// cross-base PrevLSN chains pass replay validation.
func TestTruncateFileBackendReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trunc.wal")
	backend, err := CreateFileBackend(path)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Open(Config{Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	l.Append(truncRec("T1", "x", "a")) // LSN 1
	l.Append(truncRec("T2", "y", "b")) // LSN 2
	l.Append(truncRec("T1", "x", "c")) // LSN 3, chains to 1
	l.Append(truncRec("T2", "y", "d")) // LSN 4, chains to 2
	if n, err := l.TruncateBefore(3); err != nil || n != 2 {
		t.Fatalf("truncate: n=%d err=%v", n, err)
	}
	l.Append(truncRec("T3", "z", "e")) // LSN 5
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".truncating"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temporary truncation file left behind: %v", err)
	}

	re, err := OpenFileBackend(path)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := Open(Config{Backend: re})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Base(); got != 2 {
		t.Fatalf("reopened base = %d, want 2", got)
	}
	snap := l2.Snapshot()
	if len(snap) != 3 || snap[0].LSN != 3 || snap[2].LSN != 5 {
		t.Fatalf("reopened suffix = %+v, want LSNs 3..5", snap)
	}
	if got := l2.DurableLSN(); got != 5 {
		t.Fatalf("reopened durable watermark = %d, want 5", got)
	}
	// The replayed log keeps accepting appends with continuous LSNs.
	if lsn := l2.Append(truncRec("T1", "x", "f")); lsn != 6 {
		t.Fatalf("append after reopen assigned LSN %d, want 6", lsn)
	}
	if chain := l2.TxnChain("T1"); len(chain) != 2 || chain[1].LSN != 3 {
		t.Fatalf("T1 chain after reopen = %+v", chain)
	}
}

// TestTruncateClampsToDurableWatermark is the lagging-flusher regression:
// a backend that dies after its first sync freezes the watermark while the
// in-memory log keeps sequencing, and truncation must clamp to the
// watermark instead of discarding the only durable copy of unsynced
// records' predecessors.
func TestTruncateClampsToDurableWatermark(t *testing.T) {
	b := &failingBackend{failAfter: 1}
	l, err := Open(Config{Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.AppendAsync(truncRec("T1", "x", "a")); err != nil {
			t.Fatal(err)
		}
	}
	l.Flush() // batch 1: syncs, watermark -> 3
	for i := 0; i < 3; i++ {
		if _, err := l.AppendAsync(truncRec("T2", "y", "b")); err != nil {
			t.Fatal(err)
		}
	}
	l.Flush() // batch 2: sync fails, watermark frozen at 3
	if l.Err() == nil {
		t.Fatal("backend failure not recorded")
	}
	if got := l.DurableLSN(); got != 3 {
		t.Fatalf("durable watermark = %d, want 3", got)
	}
	n, err := l.TruncateBefore(6)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("truncated %d records, want 3 (clamped to watermark+1)", n)
	}
	if got := l.Base(); got != 3 {
		t.Fatalf("base = %d, want 3: truncation crossed the durable watermark", got)
	}
	if r, ok := l.Get(4); !ok || r.Txn != "T2" {
		t.Fatalf("first unsynced record lost: ok=%v rec=%+v", ok, r)
	}
}

// failingBackend syncs successfully failAfter times, then fails forever.
type failingBackend struct {
	syncs     int
	failAfter int
}

func (b *failingBackend) Sync(records []Record) error {
	b.syncs++
	if b.syncs > b.failAfter {
		return errors.New("device died")
	}
	return nil
}

func (b *failingBackend) Close() error { return nil }
