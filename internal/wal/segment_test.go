package wal

// Segmented-backend tests: rotation at the byte threshold with batches
// never split across segments, reopen scanning segments in LSN order with
// final-segment-only torn-tail repair, unlink-based truncation with zero
// data bytes rewritten, retention holding back dead segments, and the
// alignment contract that keeps the in-memory log and the segment files in
// exact agreement.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/history"
	"repro/internal/spec"
)

func segRec(txn history.TxnID, obj history.ObjectID, name string) Record {
	return Record{Kind: Update, Txn: txn, Obj: obj,
		Op: spec.Operation{Inv: spec.Invocation{Name: name}, Res: "ok"}}
}

// tinySegConfig rotates after every record or two: each encoded record is
// ~20 bytes, so a 32-byte threshold seals a segment as soon as it holds
// one single-record batch (rotation happens when the active segment is
// already at or past the threshold).
func tinySegConfig() SegmentConfig { return SegmentConfig{MaxSegmentBytes: 32} }

func openSegLog(t *testing.T, dir string, cfg SegmentConfig) (*Log, *SegmentedBackend) {
	t.Helper()
	b, err := OpenSegmentedBackend(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Open(Config{Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	return l, b
}

// TestSegmentedRotationAndReplay: single-record appends under a tiny
// threshold produce one segment per record, named by its first LSN, and a
// reopen replays all segments in order with LSNs intact.
func TestSegmentedRotationAndReplay(t *testing.T) {
	dir := t.TempDir()
	b, err := CreateSegmentedBackend(dir, tinySegConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, err := Open(Config{Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	for i := 0; i < n; i++ {
		if lsn := l.Append(segRec("T1", "x", "op")); lsn != LSN(i+1) {
			t.Fatalf("append %d assigned LSN %d", i, lsn)
		}
	}
	segs := b.Segments()
	if len(segs) < 3 {
		t.Fatalf("tiny threshold produced only %d segments: %+v", len(segs), segs)
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].FirstLSN <= segs[i-1].FirstLSN {
			t.Fatalf("segment starts not ascending: %+v", segs)
		}
	}
	if segs[0].FirstLSN != 1 {
		t.Fatalf("first segment starts at %d, want 1", segs[0].FirstLSN)
	}
	if got := b.Rotations(); got < 2 {
		t.Fatalf("Rotations = %d, want >= 2", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, b2 := openSegLog(t, dir, tinySegConfig())
	defer l2.Close()
	snap := l2.Snapshot()
	if len(snap) != n || snap[0].LSN != 1 || snap[n-1].LSN != n {
		t.Fatalf("reopened replay = %d records, LSNs %v..%v; want %d spanning 1..%d",
			len(snap), snap[0].LSN, snap[len(snap)-1].LSN, n, n)
	}
	if got := l2.DurableLSN(); got != n {
		t.Fatalf("reopened durable watermark = %d, want %d", got, n)
	}
	// Appends continue the sequence into the re-adopted active segment.
	if lsn := l2.Append(segRec("T2", "y", "op")); lsn != n+1 {
		t.Fatalf("append after reopen assigned LSN %d, want %d", lsn, n+1)
	}
	if starts := b2.SegmentStarts(); len(starts) != len(b2.Segments()) {
		t.Fatalf("SegmentStarts/Segments disagree: %v vs %+v", starts, b2.Segments())
	}
}

// TestSegmentedBatchNeverSplit: a multi-record batch lands wholly in one
// segment even when it overshoots the threshold.
func TestSegmentedBatchNeverSplit(t *testing.T) {
	dir := t.TempDir()
	b, err := CreateSegmentedBackend(dir, tinySegConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, err := Open(Config{Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Stage 5 records, flush once: one batch, far past 32 bytes.
	for i := 0; i < 5; i++ {
		if _, err := l.AppendAsync(segRec("T1", "x", "op")); err != nil {
			t.Fatal(err)
		}
	}
	l.Flush()
	segs := b.Segments()
	if len(segs) != 1 {
		t.Fatalf("one oversized batch split across %d segments: %+v", len(segs), segs)
	}
	// The next batch rotates (active is past the threshold).
	l.Append(segRec("T2", "y", "op"))
	if segs := b.Segments(); len(segs) != 2 || segs[1].FirstLSN != 6 {
		t.Fatalf("follow-up batch did not rotate to a new segment at LSN 6: %+v", segs)
	}
}

// TestSegmentedTruncateUnlinksWithoutRewrite is the tentpole assertion:
// truncation unlinks dead segments, rewrites zero data bytes, and the
// reopened log replays exactly the retained suffix.
func TestSegmentedTruncateUnlinksWithoutRewrite(t *testing.T) {
	dir := t.TempDir()
	b, err := CreateSegmentedBackend(dir, tinySegConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, err := Open(Config{Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	for i := 0; i < n; i++ {
		l.Append(segRec("T1", "x", "op"))
	}
	segsBefore := len(b.Segments())
	if segsBefore < 4 {
		t.Fatalf("want >= 4 segments before truncation, got %d", segsBefore)
	}
	dropped, err := l.TruncateBefore(6)
	if err != nil {
		t.Fatal(err)
	}
	stats := l.TruncateStats()
	if stats.BytesRewritten != 0 {
		t.Fatalf("segmented truncation rewrote %d data bytes, want 0", stats.BytesRewritten)
	}
	if stats.SegmentsUnlinked == 0 {
		t.Fatal("segmented truncation unlinked no segments")
	}
	if len(b.Segments()) != segsBefore-stats.SegmentsUnlinked {
		t.Fatalf("segment census: %d before, %d unlinked, %d now",
			segsBefore, stats.SegmentsUnlinked, len(b.Segments()))
	}
	// Alignment: the in-memory base must sit exactly on a segment start.
	base := l.Base()
	if dropped != int(base) {
		t.Fatalf("dropped %d records but base is %d", dropped, base)
	}
	if first := b.Segments()[0].FirstLSN; first != base+1 {
		t.Fatalf("first surviving segment starts at %d, in-memory base+1 is %d", first, base+1)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, _ := openSegLog(t, dir, tinySegConfig())
	defer l2.Close()
	if got := l2.Base(); got != base {
		t.Fatalf("reopened base = %d, want %d (in-memory and durable logs diverged)", got, base)
	}
	snap := l2.Snapshot()
	if len(snap) == 0 || snap[0].LSN != base+1 || snap[len(snap)-1].LSN != n {
		t.Fatalf("reopened suffix spans %v, want %d..%d", snap, base+1, n)
	}
}

// TestSegmentedRetentionKeepsDeadSegments: KeepSegments holds back the
// newest dead segments from the unlink pass, and they remain a valid
// replayable prefix on reopen (base is lower, records intact).
func TestSegmentedRetentionKeepsDeadSegments(t *testing.T) {
	dir := t.TempDir()
	cfg := SegmentConfig{MaxSegmentBytes: 32, Retention: Retention{KeepSegments: 1}}
	b, err := CreateSegmentedBackend(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := Open(Config{Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		l.Append(segRec("T1", "x", "op"))
	}
	noRet, err := CreateSegmentedBackend(t.TempDir(), tinySegConfig())
	if err != nil {
		t.Fatal(err)
	}
	noRet.Close()
	if _, err := l.TruncateBefore(6); err != nil {
		t.Fatal(err)
	}
	stats := l.TruncateStats()
	if stats.SegmentsRetained != 1 {
		t.Fatalf("SegmentsRetained = %d, want 1", stats.SegmentsRetained)
	}
	// The retained dead segment is still on disk, below the in-memory base.
	base := l.Base()
	segs := b.Segments()
	if segs[0].FirstLSN > base {
		t.Fatalf("no retained segment below base %d: %+v", base, segs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen replays the retained prefix too — a lower base, same tail.
	l2, _ := openSegLog(t, dir, cfg)
	defer l2.Close()
	if got := l2.Base(); got >= base {
		t.Fatalf("reopened base = %d, want below %d (retained segments replay)", got, base)
	}
	snap := l2.Snapshot()
	if snap[len(snap)-1].LSN != 8 {
		t.Fatalf("reopened tail LSN = %d, want 8", snap[len(snap)-1].LSN)
	}
}

// TestSegmentedTornFinalSegmentRepaired: a torn tail on the final segment
// is crash damage and is truncated away on reopen, like the single-file
// backend.
func TestSegmentedTornFinalSegmentRepaired(t *testing.T) {
	dir := t.TempDir()
	b, err := CreateSegmentedBackend(dir, tinySegConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, err := Open(Config{Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		l.Append(segRec("T1", "x", "op"))
	}
	segs := b.Segments()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	last := segs[len(segs)-1].Path
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("5\t0\tT9\tgarbage"); err != nil { // no newline: torn
		t.Fatal(err)
	}
	f.Close()

	l2, _ := openSegLog(t, dir, tinySegConfig())
	defer l2.Close()
	snap := l2.Snapshot()
	if len(snap) != 4 || snap[3].LSN != 4 {
		t.Fatalf("torn final tail not repaired: replay = %+v", snap)
	}
	// The torn bytes are gone from the file.
	data, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "garbage") {
		t.Fatal("torn tail still present after repair")
	}
}

// TestSegmentedTornNonFinalSegmentIsCorruption is the satellite: a torn
// tail on a NON-final segment cannot be produced by a crash of this writer
// (later segments exist only after earlier ones were fsynced complete), so
// reopen must reject it as corruption instead of silently repairing it.
func TestSegmentedTornNonFinalSegmentIsCorruption(t *testing.T) {
	dir := t.TempDir()
	b, err := CreateSegmentedBackend(dir, tinySegConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, err := Open(Config{Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		l.Append(segRec("T1", "x", "op"))
	}
	segs := b.Segments()
	if len(segs) < 2 {
		t.Fatalf("need >= 2 segments, got %+v", segs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail of the FIRST segment (append bytes with no newline).
	victim := segs[0].Path
	f, err := os.OpenFile(victim, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("torn"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := OpenSegmentedBackend(dir, tinySegConfig()); err == nil {
		t.Fatal("torn non-final segment accepted on reopen; want corruption error")
	} else if !strings.Contains(err.Error(), "non-final") {
		t.Fatalf("corruption error does not name the torn non-final segment: %v", err)
	}
}

// TestSegmentedAlignTruncate: alignment snaps down to the greatest segment
// start at or below the requested point.
func TestSegmentedAlignTruncate(t *testing.T) {
	dir := t.TempDir()
	b, err := CreateSegmentedBackend(dir, tinySegConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, err := Open(Config{Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 6; i++ {
		l.Append(segRec("T1", "x", "op"))
	}
	starts := b.SegmentStarts()
	if len(starts) < 3 {
		t.Fatalf("need >= 3 segments, got %v", starts)
	}
	// A point strictly inside segment k aligns to starts[k].
	mid := starts[1] + 0 // exactly a boundary aligns to itself
	if got := b.AlignTruncate(mid); got != starts[1] {
		t.Fatalf("AlignTruncate(%d) = %d, want %d", mid, got, starts[1])
	}
	if got := b.AlignTruncate(starts[2] - 1); got != starts[1] && starts[2]-1 >= starts[1] {
		// starts[2]-1 is inside segment 1 (or equal to a later start when
		// segments hold one record each).
		inside := starts[2] - 1
		want := LSN(0)
		for _, s := range starts {
			if s <= inside {
				want = s
			}
		}
		if got != want {
			t.Fatalf("AlignTruncate(%d) = %d, want %d", inside, got, want)
		}
	}
	// Below the first segment: nothing to align to at or below, returns
	// the input (truncation there is a no-op anyway).
	if got := b.AlignTruncate(0); got != 0 {
		t.Fatalf("AlignTruncate(0) = %d, want 0", got)
	}
}

// TestSegmentedCreateClearsOldSegments: CreateSegmentedBackend on a dir
// with stale segments starts empty.
func TestSegmentedCreateClearsOldSegments(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName(1)), []byte("1\t0\tT\tx\t0\top\t\tok\t-\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := CreateSegmentedBackend(dir, tinySegConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if got := len(b.Segments()); got != 0 {
		t.Fatalf("fresh backend has %d segments", got)
	}
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if _, ok := parseSegName(e.Name()); ok {
			t.Fatalf("stale segment %s survived Create", e.Name())
		}
	}
}
