package wal

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/adt"
	"repro/internal/history"
)

func TestAppendAssignsMonotonicLSNs(t *testing.T) {
	l := New()
	a := l.Append(Record{Kind: Update, Txn: "A", Obj: "X", Op: adt.DepositOk(1)})
	b := l.Append(Record{Kind: Update, Txn: "A", Obj: "X", Op: adt.DepositOk(2)})
	if a != 1 || b != 2 {
		t.Fatalf("LSNs = %d, %d", a, b)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
}

func TestTxnChainNewestFirst(t *testing.T) {
	l := New()
	l.Append(Record{Kind: Update, Txn: "A", Obj: "X", Op: adt.DepositOk(1)})
	l.Append(Record{Kind: Update, Txn: "B", Obj: "X", Op: adt.DepositOk(9)})
	l.Append(Record{Kind: Update, Txn: "A", Obj: "X", Op: adt.DepositOk(2)})
	l.Append(Record{Kind: Update, Txn: "A", Obj: "Y", Op: adt.DepositOk(3)})
	chain := l.TxnChain("A")
	if len(chain) != 3 {
		t.Fatalf("chain length = %d", len(chain))
	}
	if chain[0].Op != adt.DepositOk(3) || chain[1].Op != adt.DepositOk(2) || chain[2].Op != adt.DepositOk(1) {
		t.Fatalf("chain order wrong: %v", chain)
	}
	if chain[2].PrevLSN != 0 {
		t.Errorf("first record PrevLSN = %d, want 0", chain[2].PrevLSN)
	}
}

func TestGetAndLastLSN(t *testing.T) {
	l := New()
	if _, ok := l.Get(1); ok {
		t.Error("Get on empty log should fail")
	}
	if l.LastLSN("A") != 0 {
		t.Error("LastLSN of unknown txn should be 0")
	}
	lsn := l.Append(Record{Kind: CommitRec, Txn: "A", Obj: "X"})
	r, ok := l.Get(lsn)
	if !ok || r.Kind != CommitRec || r.Txn != "A" {
		t.Fatalf("Get = %v, %v", r, ok)
	}
	if l.LastLSN("A") != lsn {
		t.Errorf("LastLSN = %d", l.LastLSN("A"))
	}
	if _, ok := l.Get(0); ok {
		t.Error("Get(0) must fail (nil LSN)")
	}
}

func TestConcurrentAppends(t *testing.T) {
	l := New()
	const n = 50
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			txn := history.TxnID(rune('A' + g))
			for i := 0; i < n; i++ {
				l.Append(Record{Kind: Update, Txn: txn, Obj: "X", Op: adt.DepositOk(1)})
			}
		}(g)
	}
	wg.Wait()
	if l.Len() != 4*n {
		t.Fatalf("Len = %d, want %d", l.Len(), 4*n)
	}
	// LSNs are dense and unique; every chain has n records.
	seen := make(map[LSN]bool)
	for _, r := range l.Snapshot() {
		if seen[r.LSN] {
			t.Fatalf("duplicate LSN %d", r.LSN)
		}
		seen[r.LSN] = true
	}
	for g := 0; g < 4; g++ {
		txn := history.TxnID(rune('A' + g))
		if got := len(l.TxnChain(txn)); got != n {
			t.Errorf("chain(%s) = %d, want %d", txn, got, n)
		}
	}
}

// TestFlushBatchIsConsistentCut: a record staged after another one (here:
// later in program order, landing in a different stripe) must never be
// sequenced into an earlier batch — it must receive a larger LSN even with
// a rival flusher racing the two stage calls. This is the stamp-prefix
// (consistent cut) property of the batch drain; crash recovery's
// presumed-abort argument relies on it, because a batch boundary is the
// unit of durability loss and must not separate a commit record from a
// causally later one.
func TestFlushBatchIsConsistentCut(t *testing.T) {
	l := NewStriped(8)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				l.Flush()
			}
		}
	}()
	type pair struct{ first, second *stagedRec }
	var pairs []pair
	for i := 0; i < 400; i++ {
		// Distinct txn IDs so the two records of a pair spread over stripes.
		a, _ := l.stage(Record{Kind: Update, Txn: history.TxnID(fmt.Sprintf("A%03d", i)), Obj: "X", Op: adt.DepositOk(1)})
		b, _ := l.stage(Record{Kind: TxnCommitRec, Txn: history.TxnID(fmt.Sprintf("B%03d", i))})
		pairs = append(pairs, pair{a, b})
	}
	close(stop)
	wg.Wait()
	l.Flush()
	for i, p := range pairs {
		if p.first.lsn == 0 || p.second.lsn == 0 {
			t.Fatalf("pair %d: record never sequenced (%d, %d)", i, p.first.lsn, p.second.lsn)
		}
		if p.first.lsn >= p.second.lsn {
			t.Fatalf("pair %d: staged-earlier record got LSN %d >= %d — batch was not a consistent cut",
				i, p.first.lsn, p.second.lsn)
		}
	}
}

func TestRecordKindString(t *testing.T) {
	kinds := map[RecordKind]string{
		Update: "update", CommitRec: "commit", AbortRec: "abort", CompensationRec: "clr",
		TxnCommitRec: "txn-commit",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestAppendAsyncStagesUntilFlush(t *testing.T) {
	l := New()
	l.AppendAsync(Record{Kind: Update, Txn: "A", Obj: "X", Op: adt.DepositOk(1)})
	l.AppendAsync(Record{Kind: Update, Txn: "B", Obj: "Y", Op: adt.DepositOk(2)})
	l.AppendAsync(Record{Kind: CommitRec, Txn: "A", Obj: "X"})
	l.Flush()
	if got := l.Flushes(); got != 1 {
		t.Fatalf("Flushes = %d, want 1 batch", got)
	}
	if got := l.FlushedRecords(); got != 3 {
		t.Fatalf("FlushedRecords = %d, want 3", got)
	}
	// The batch got one contiguous LSN range.
	recs := l.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("Len = %d", len(recs))
	}
	for i, r := range recs {
		if r.LSN != LSN(i+1) {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
	}
	// A's chain: commit -> update, in stage order.
	chain := l.TxnChain("A")
	if len(chain) != 2 || chain[0].Kind != CommitRec || chain[1].Kind != Update {
		t.Fatalf("chain = %v", chain)
	}
	if chain[1].PrevLSN != 0 || chain[0].PrevLSN != chain[1].LSN {
		t.Fatalf("chain links wrong: %v", chain)
	}
}

func TestGroupCommitBatchesConcurrentAppenders(t *testing.T) {
	l := NewStriped(4)
	const gs = 8
	const per = 40
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			txn := history.TxnID(rune('A' + g))
			for i := 0; i < per; i++ {
				l.AppendAsync(Record{Kind: Update, Txn: txn, Obj: "X", Op: adt.DepositOk(1)})
			}
			l.Flush()
		}(g)
	}
	wg.Wait()
	if l.Len() != gs*per {
		t.Fatalf("Len = %d, want %d", l.Len(), gs*per)
	}
	// Group commit: each goroutine flushes once, so there are at most gs
	// non-empty batches for gs*per records (an empty drain is not counted),
	// and every record is sequenced exactly once.
	if f := l.Flushes(); f < 1 || f > int64(gs) {
		t.Fatalf("flushes = %d, want 1..%d (batching broken)", f, gs)
	}
	if l.FlushedRecords() != int64(gs*per) {
		t.Fatalf("flushed = %d, want %d", l.FlushedRecords(), gs*per)
	}
	seen := make(map[LSN]bool)
	for _, r := range l.Snapshot() {
		if seen[r.LSN] {
			t.Fatalf("duplicate LSN %d", r.LSN)
		}
		seen[r.LSN] = true
	}
	// Per-transaction chains are complete and in stage order.
	for g := 0; g < gs; g++ {
		txn := history.TxnID(rune('A' + g))
		chain := l.TxnChain(txn)
		if len(chain) != per {
			t.Fatalf("chain(%s) = %d, want %d", txn, len(chain), per)
		}
		for i := 1; i < len(chain); i++ {
			if chain[i].LSN >= chain[i-1].LSN {
				t.Fatalf("chain(%s) not newest-first at %d", txn, i)
			}
		}
	}
}
