package wal

// The segmented file backend: the durable log as a directory of rotated,
// size-bounded segment files instead of one append-only file. Each
// sequenced batch is appended (and fsynced) wholly into the active
// segment; when the active segment has reached the configured byte
// threshold the next batch rotates into a fresh segment named by its first
// LSN (wal-<firstLSN>.seg, zero-padded so lexical and numeric order
// agree). Because batches never split across segments and LSNs are
// contiguous, segment names tile the log exactly: segment i covers
// [firstLSN(i), firstLSN(i+1)).
//
// The payoff is truncation cost. FileBackend.TruncateBefore rewrites the
// whole surviving suffix — O(log bytes) per checkpoint; the segmented
// backend instead unlinks whole segments strictly below the truncation
// point — O(dead segments), zero data bytes rewritten (asserted by
// TruncateStats in the E18 sweep). A retention policy (keep-last-N /
// keep-bytes) can hold back the newest dead segments from the unlink pass
// for diagnostics or shipping; retained dead segments remain a valid log
// prefix and simply replay again on reopen.
//
// Crash repair is per-segment: only the final (active) segment may carry a
// torn tail, which reopen truncates away exactly as the single-file
// backend does. A torn or non-contiguous NON-final segment cannot be
// produced by any crash of this writer (later segments exist only because
// earlier ones were fsynced complete) and is rejected as corruption rather
// than silently repaired. The segment boundaries double as the fan-out
// units of parallel restart: recovery partitions its pass-1 winner scan by
// SegmentStarts.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSegmentBytes is the rotation threshold when SegmentConfig leaves
// MaxSegmentBytes zero.
const DefaultSegmentBytes = 4 << 20

const (
	segPrefix = "wal-"
	segSuffix = ".seg"
)

// TruncateStats describes the storage cost of backend truncation — the
// quantity the segmented backend exists to drive to zero. BytesRewritten
// counts data bytes copied to a new file (the single-file backend's
// rewrite; always 0 for the segmented backend), SegmentsUnlinked counts
// whole segment files deleted, and WallNS is the wall-clock spent inside
// the backend call. Log.TruncateStats accumulates these across a log's
// lifetime so the E18 sweep can compare the two backends' truncation cost
// directly.
type TruncateStats struct {
	BytesRewritten   int64 `json:"bytes_rewritten"`
	SegmentsUnlinked int   `json:"segments_unlinked"`
	// SegmentsRetained is the number of dead segments the retention policy
	// held back from the most recent unlink pass (a census, not a sum).
	SegmentsRetained int   `json:"segments_retained,omitempty"`
	WallNS           int64 `json:"wall_ns"`
}

// Add accumulates o into s (SegmentsRetained takes the latest census).
func (s *TruncateStats) Add(o TruncateStats) {
	s.BytesRewritten += o.BytesRewritten
	s.SegmentsUnlinked += o.SegmentsUnlinked
	s.SegmentsRetained = o.SegmentsRetained
	s.WallNS += o.WallNS
}

// Retention holds back the newest dead segments from truncation's unlink
// pass. A dead segment is one wholly below the truncation point; retention
// keeps the newest KeepSegments of them, plus as many newer ones as fit in
// KeepBytes. The zero value retains nothing — every dead segment is
// unlinked. Retained segments stay part of the replayable log prefix.
type Retention struct {
	KeepSegments int
	KeepBytes    int64
}

// retains reports whether a dead segment at reverse index i (0 = newest
// dead) with cumulative newest-first byte total cum is held back.
func (r Retention) retains(i int, cum int64) bool {
	return i < r.KeepSegments || (r.KeepBytes > 0 && cum <= r.KeepBytes)
}

// SegmentConfig parameterizes a segmented backend.
type SegmentConfig struct {
	// MaxSegmentBytes is the rotation threshold: a batch that finds the
	// active segment at or past this size starts a new one. Zero selects
	// DefaultSegmentBytes. Batches are never split, so a segment can
	// exceed the threshold by up to one batch.
	MaxSegmentBytes int64
	// Retention holds back the newest dead segments from unlinking.
	Retention Retention
}

func (c SegmentConfig) maxBytes() int64 {
	if c.MaxSegmentBytes > 0 {
		return c.MaxSegmentBytes
	}
	return DefaultSegmentBytes
}

// SegmentInfo describes one segment file (diagnostics, tests).
type SegmentInfo struct {
	Path     string
	FirstLSN LSN
	Bytes    int64
}

// Segmenter is implemented by backends whose durable log is partitioned
// into LSN-contiguous segments. SegmentStarts returns the first LSN of
// each live segment in ascending order — the partition boundaries parallel
// restart fans its winner scan out over.
type Segmenter interface {
	SegmentStarts() []LSN
}

// TruncateAligner is implemented by backends that can only truncate at
// certain boundaries. AlignTruncate returns the greatest truncation point
// at or below lsn the backend can realize exactly; Log.TruncateBefore
// aligns its in-memory truncation to it so the retained in-memory log and
// the durable log stay identical.
type TruncateAligner interface {
	AlignTruncate(lsn LSN) LSN
}

// SegmentedBackend implements Backend over a directory of rotated segment
// files. See the file comment for the design; it additionally implements
// Replayer, Truncator, Segmenter, and TruncateAligner.
type SegmentedBackend struct {
	mu  sync.Mutex
	dir string
	cfg SegmentConfig
	// sealed are the rotated (read-only) segments, ascending FirstLSN;
	// active is the open tail segment (nil until the first batch).
	sealed []SegmentInfo
	active *os.File
	actInf SegmentInfo
	replay []Record
	closed bool

	syncs     atomic.Int64
	rotations atomic.Int64
}

var (
	_ Backend         = (*SegmentedBackend)(nil)
	_ Replayer        = (*SegmentedBackend)(nil)
	_ Truncator       = (*SegmentedBackend)(nil)
	_ Segmenter       = (*SegmentedBackend)(nil)
	_ TruncateAligner = (*SegmentedBackend)(nil)
)

func segName(first LSN) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, uint64(first), segSuffix)
}

func parseSegName(name string) (LSN, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
	if err != nil || n == 0 {
		return 0, false
	}
	return LSN(n), true
}

// CreateSegmentedBackend creates an empty segmented backend in dir
// (created if absent; any existing segment files are removed). The first
// segment file appears with the first synced batch, named by its first
// LSN.
func CreateSegmentedBackend(dir string, cfg SegmentConfig) (*SegmentedBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create segmented backend %s: %w", dir, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: create segmented backend %s: %w", dir, err)
	}
	for _, e := range ents {
		if _, ok := parseSegName(e.Name()); ok {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return nil, fmt.Errorf("wal: create segmented backend %s: %w", dir, err)
			}
		}
	}
	return &SegmentedBackend{dir: dir, cfg: cfg}, nil
}

// OpenSegmentedBackend re-opens an existing segmented log after a crash:
// segments are scanned in LSN order, LSN continuity is verified within and
// across segments, the final segment's torn tail (if any) is truncated
// away, and a torn non-final segment is rejected as corruption — a crash
// of this writer can only tear the tail of the last segment, because a
// later segment exists only after its predecessors were fsynced complete.
// The scanned records are available through Replay; new batches append to
// the final segment.
func OpenSegmentedBackend(dir string, cfg SegmentConfig) (*SegmentedBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open segmented backend %s: %w", dir, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: open segmented backend %s: %w", dir, err)
	}
	var infos []SegmentInfo
	for _, e := range ents {
		first, ok := parseSegName(e.Name())
		if !ok {
			continue
		}
		infos = append(infos, SegmentInfo{Path: filepath.Join(dir, e.Name()), FirstLSN: first})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].FirstLSN < infos[j].FirstLSN })
	for i := 1; i < len(infos); i++ {
		if infos[i].FirstLSN == infos[i-1].FirstLSN {
			return nil, fmt.Errorf("wal: segmented backend %s: duplicate segment first LSN %d", dir, infos[i].FirstLSN)
		}
	}
	b := &SegmentedBackend{dir: dir, cfg: cfg}
	for i := range infos {
		final := i == len(infos)-1
		f, err := os.OpenFile(infos[i].Path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: open segment %s: %w", infos[i].Path, err)
		}
		recs, clean, err := scanFileLog(f)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: scan segment %s: %w", infos[i].Path, err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: stat segment %s: %w", infos[i].Path, err)
		}
		if !final && clean != st.Size() {
			f.Close()
			return nil, fmt.Errorf("wal: segment %s: torn tail in non-final segment (%d of %d bytes scan clean) — corruption, not crash repair",
				infos[i].Path, clean, st.Size())
		}
		if len(recs) > 0 && recs[0].LSN != infos[i].FirstLSN {
			f.Close()
			return nil, fmt.Errorf("wal: segment %s: first record LSN %d does not match segment name",
				infos[i].Path, recs[0].LSN)
		}
		if !final && len(recs) == 0 {
			f.Close()
			return nil, fmt.Errorf("wal: segment %s: empty non-final segment", infos[i].Path)
		}
		if len(b.replay) > 0 && len(recs) > 0 && recs[0].LSN != b.replay[len(b.replay)-1].LSN+1 {
			f.Close()
			return nil, fmt.Errorf("wal: segment %s: LSN %d out of sequence across segment boundary (want %d)",
				infos[i].Path, recs[0].LSN, b.replay[len(b.replay)-1].LSN+1)
		}
		b.replay = append(b.replay, recs...)
		if final {
			// Repair the (only legally tearable) tail and keep the handle
			// as the active segment.
			if err := f.Truncate(clean); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", infos[i].Path, err)
			}
			if _, err := f.Seek(clean, 0); err != nil {
				f.Close()
				return nil, fmt.Errorf("wal: seek %s: %w", infos[i].Path, err)
			}
			b.active = f
			b.actInf = SegmentInfo{Path: infos[i].Path, FirstLSN: infos[i].FirstLSN, Bytes: clean}
		} else {
			f.Close()
			b.sealed = append(b.sealed, SegmentInfo{Path: infos[i].Path, FirstLSN: infos[i].FirstLSN, Bytes: clean})
		}
	}
	return b, nil
}

// Dir returns the segment directory.
func (b *SegmentedBackend) Dir() string { return b.dir }

// Replay implements Replayer: the records that survived the crash, across
// all segments, in LSN order.
func (b *SegmentedBackend) Replay() []Record { return b.replay }

// Syncs returns the number of batches fsynced.
func (b *SegmentedBackend) Syncs() int64 { return b.syncs.Load() }

// DurableBytes returns the exact number of encoded log bytes across every
// live segment file — the ground truth the Log.Bytes accounting is
// asserted against. Dead segments held back by the retention policy still
// count (they are still on disk and still replay), so the assertion holds
// only under zero retention.
func (b *SegmentedBackend) DurableBytes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	var n int64
	for _, s := range b.sealed {
		n += s.Bytes
	}
	if b.active != nil {
		n += b.actInf.Bytes
	}
	return n
}

// Rotations returns the number of segment rotations performed since open.
func (b *SegmentedBackend) Rotations() int64 { return b.rotations.Load() }

// Segments returns a snapshot of the current segment layout, oldest first
// (the active segment last).
func (b *SegmentedBackend) Segments() []SegmentInfo {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := append([]SegmentInfo(nil), b.sealed...)
	if b.active != nil {
		out = append(out, b.actInf)
	}
	return out
}

// SegmentStarts implements Segmenter.
func (b *SegmentedBackend) SegmentStarts() []LSN {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]LSN, 0, len(b.sealed)+1)
	for _, s := range b.sealed {
		out = append(out, s.FirstLSN)
	}
	if b.active != nil {
		out = append(out, b.actInf.FirstLSN)
	}
	return out
}

// rotateLocked seals the active segment (if any) and opens a fresh one
// whose name is the first LSN it will hold. The new dirent is made durable
// before any batch is acknowledged against it: without the directory fsync
// a crash could lose the whole new segment — acknowledged commits with it.
func (b *SegmentedBackend) rotateLocked(first LSN) error {
	if b.active != nil {
		if err := b.active.Sync(); err != nil {
			return fmt.Errorf("wal: seal segment %s: %w", b.actInf.Path, err)
		}
		if err := b.active.Close(); err != nil {
			return fmt.Errorf("wal: seal segment %s: %w", b.actInf.Path, err)
		}
		b.sealed = append(b.sealed, b.actInf)
		b.active = nil
		b.rotations.Add(1)
	}
	path := filepath.Join(b.dir, segName(first))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment %s: %w", path, err)
	}
	if err := syncDir(b.dir); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("wal: create segment %s: directory sync: %w", path, err)
	}
	b.active = f
	b.actInf = SegmentInfo{Path: path, FirstLSN: first}
	return nil
}

// Sync implements Backend: rotate if the active segment is full (or absent),
// then encode the whole batch, append it to the active segment in one
// write, and fsync. A batch is never split across segments, so segment
// names tile the LSN space and a crash tears at most the final segment's
// tail.
func (b *SegmentedBackend) Sync(records []Record) error {
	if len(records) == 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return fmt.Errorf("wal: sync on closed segmented backend %s", b.dir)
	}
	// Encode before any byte is written or any rotation happens, so an
	// unencodable record rejects the batch atomically.
	var batch strings.Builder
	for _, r := range records {
		line, err := encodeRecord(r)
		if err != nil {
			return err
		}
		batch.WriteString(line)
	}
	if b.active == nil || b.actInf.Bytes >= b.cfg.maxBytes() {
		if err := b.rotateLocked(records[0].LSN); err != nil {
			return err
		}
	}
	if _, err := b.active.WriteString(batch.String()); err != nil {
		return fmt.Errorf("wal: write %s: %w", b.actInf.Path, err)
	}
	if err := b.active.Sync(); err != nil {
		return fmt.Errorf("wal: fsync %s: %w", b.actInf.Path, err)
	}
	b.actInf.Bytes += int64(batch.Len())
	b.syncs.Add(1)
	return nil
}

// AlignTruncate implements TruncateAligner: the greatest segment boundary
// at or below lsn — the point TruncateBefore can realize exactly by
// unlinking whole segments. With no segments (empty backend) lsn is
// returned unchanged (truncation is a no-op anyway).
func (b *SegmentedBackend) AlignTruncate(lsn LSN) LSN {
	b.mu.Lock()
	defer b.mu.Unlock()
	aligned := lsn
	first := true
	for _, s := range b.sealed {
		if s.FirstLSN <= lsn && (first || s.FirstLSN > aligned) {
			aligned, first = s.FirstLSN, false
		}
	}
	if b.active != nil && b.actInf.FirstLSN <= lsn && (first || b.actInf.FirstLSN > aligned) {
		aligned, first = b.actInf.FirstLSN, false
	}
	if first {
		return lsn
	}
	return aligned
}

// TruncateBefore implements Truncator by unlinking whole dead segments —
// segments whose every record has LSN strictly below lsn — oldest first,
// then fsyncing the directory. No data byte is ever rewritten: the
// boundary segment containing lsn (and everything after it) is left
// untouched, which is why Log.TruncateBefore aligns its in-memory
// truncation to AlignTruncate first. The retention policy holds back the
// newest dead segments; they remain valid replayable prefix. Crash
// atomicity is trivial: each unlink is atomic, a crash mid-pass leaves a
// shorter prefix of segments removed, and reopen scans whatever tile of
// segments survives.
func (b *SegmentedBackend) TruncateBefore(lsn LSN) (TruncateStats, error) {
	start := time.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	var stats TruncateStats
	if b.closed {
		return stats, fmt.Errorf("wal: truncate on closed segmented backend %s", b.dir)
	}
	// sealed[i] is dead iff the next segment starts at or below lsn (its
	// own records all precede that start). The active segment never dies.
	nextFirst := func(i int) LSN {
		if i+1 < len(b.sealed) {
			return b.sealed[i+1].FirstLSN
		}
		return b.actInf.FirstLSN // active exists whenever sealed is non-empty
	}
	dead := 0
	for dead < len(b.sealed) && nextFirst(dead) != 0 && nextFirst(dead) <= lsn {
		dead++
	}
	if dead == 0 {
		stats.WallNS = time.Since(start).Nanoseconds()
		return stats, nil
	}
	// Retention walks the dead set newest-first; everything it does not
	// hold back is unlinked.
	retained := 0
	var cum int64
	unlinkBelow := 0 // sealed[:unlinkBelow] are removed
	for i := dead - 1; i >= 0; i-- {
		cum += b.sealed[i].Bytes
		if b.cfg.Retention.retains(dead-1-i, cum) {
			retained++
			continue
		}
		unlinkBelow = i + 1
		break
	}
	for i := 0; i < unlinkBelow; i++ {
		if err := os.Remove(b.sealed[i].Path); err != nil {
			stats.WallNS = time.Since(start).Nanoseconds()
			return stats, fmt.Errorf("wal: unlink segment %s: %w", b.sealed[i].Path, err)
		}
		stats.SegmentsUnlinked++
	}
	if unlinkBelow > 0 {
		b.sealed = append(b.sealed[:0:0], b.sealed[unlinkBelow:]...)
		if err := syncDir(b.dir); err != nil {
			stats.WallNS = time.Since(start).Nanoseconds()
			return stats, fmt.Errorf("wal: truncate %s: directory sync: %w", b.dir, err)
		}
	}
	stats.SegmentsRetained = retained
	stats.WallNS = time.Since(start).Nanoseconds()
	return stats, nil
}

// Close implements Backend. Idempotent.
func (b *SegmentedBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	if b.active == nil {
		return nil
	}
	if err := b.active.Sync(); err != nil {
		b.active.Close()
		return err
	}
	return b.active.Close()
}
