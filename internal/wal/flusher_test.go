package wal

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/history"
	"repro/internal/spec"
)

// TestAsyncFlushIsCommitBarrier: in async mode, Flush returns only after
// everything staged before the call is sequenced and synced to the backend.
func TestAsyncFlushIsCommitBarrier(t *testing.T) {
	b := NewLatencyBackend(0, nil)
	l, err := Open(Config{Async: true, Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.AppendAsync(Record{Kind: Update, Txn: "A", Obj: "X", Op: adt.DepositOk(1)})
	l.AppendAsync(Record{Kind: CommitRec, Txn: "A", Obj: "X"})
	l.Flush()
	if b.SyncedRecords() < 2 {
		t.Fatalf("after Flush ack only %d records synced, want >= 2", b.SyncedRecords())
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
}

// TestAsyncAppendReturnsLSN: the synchronous Append path works in async
// mode — the barrier publishes the flusher's LSN assignment.
func TestAsyncAppendReturnsLSN(t *testing.T) {
	l, err := Open(Config{Async: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	a := l.Append(Record{Kind: Update, Txn: "A", Obj: "X", Op: adt.DepositOk(1)})
	b := l.Append(Record{Kind: Update, Txn: "A", Obj: "X", Op: adt.DepositOk(2)})
	if a != 1 || b != 2 {
		t.Fatalf("LSNs = %d, %d", a, b)
	}
}

// TestAsyncBackgroundFlush: records staged with AppendAsync and never
// explicitly flushed are still made durable by the background flusher.
func TestAsyncBackgroundFlush(t *testing.T) {
	b := NewLatencyBackend(0, nil)
	l, err := Open(Config{Async: true, BatchInterval: time.Millisecond, Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.AppendAsync(Record{Kind: Update, Txn: "A", Obj: "X", Op: adt.DepositOk(1)})
	deadline := time.Now().Add(5 * time.Second)
	for b.SyncedRecords() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background flusher never synced the staged record")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAsyncBatchIntervalGroupsCommits: with a dwell interval, concurrent
// committers' records land in shared batches — the mean batch size exceeds
// one record even though every appender flushes.
func TestAsyncBatchIntervalGroupsCommits(t *testing.T) {
	b := NewLatencyBackend(0, nil)
	l, err := Open(Config{Async: true, BatchInterval: 2 * time.Millisecond, Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const gs = 8
	const per = 10
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			txn := history.TxnID(rune('A' + g))
			for i := 0; i < per; i++ {
				l.AppendAsync(Record{Kind: Update, Txn: txn, Obj: "X", Op: adt.DepositOk(1)})
				l.Flush()
			}
		}(g)
	}
	wg.Wait()
	if l.Len() != gs*per {
		t.Fatalf("Len = %d, want %d", l.Len(), gs*per)
	}
	if f := l.Flushes(); f >= int64(gs*per) {
		t.Fatalf("flushes = %d for %d records: dwell produced no batching", f, gs*per)
	}
}

// TestAsyncMaxBatchCutsDwellShort: a full batch is sequenced without
// waiting out a long dwell interval.
func TestAsyncMaxBatchCutsDwellShort(t *testing.T) {
	b := NewLatencyBackend(0, nil)
	l, err := Open(Config{Async: true, BatchInterval: time.Minute, MaxBatch: 4, Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 4; i++ {
			l.AppendAsync(Record{Kind: Update, Txn: "A", Obj: "X", Op: adt.DepositOk(1)})
		}
		l.Flush()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Flush did not return: MaxBatch failed to cut the dwell short")
	}
}

// TestCloseDrainsStagedRecords: Close sequences and syncs whatever is
// staged before stopping the flusher.
func TestCloseDrainsStagedRecords(t *testing.T) {
	b := NewLatencyBackend(0, nil)
	l, err := Open(Config{Async: true, BatchInterval: time.Minute, Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	l.AppendAsync(Record{Kind: Update, Txn: "A", Obj: "X", Op: adt.DepositOk(1)})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if b.SyncedRecords() != 1 {
		t.Fatalf("Close left %d records synced, want 1", b.SyncedRecords())
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestCrashPointDropsTail: batches from the injection point onward never
// reach the backend, while in-memory sequencing and acknowledgements
// continue — the simulation contract the crash-injection harness relies on.
func TestCrashPointDropsTail(t *testing.T) {
	b := NewLatencyBackend(0, nil)
	l, err := Open(Config{
		Backend:    b,
		CrashPoint: func(batch int, _ []Record) bool { return batch >= 2 },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		l.Append(Record{Kind: Update, Txn: "A", Obj: "X", Op: adt.DepositOk(1)})
	}
	if l.Len() != 5 {
		t.Fatalf("in-memory Len = %d, want 5 (sequencing must continue past the crash)", l.Len())
	}
	if got := b.SyncedRecords(); got != 2 {
		t.Fatalf("backend saw %d records, want 2 (batches 0 and 1)", got)
	}
	if got := b.Syncs(); got != 2 {
		t.Fatalf("backend saw %d syncs, want 2", got)
	}
}

// onceFailingBackend fails exactly one Sync (the second), then recovers —
// a transient device error.
type onceFailingBackend struct {
	calls   int
	batches [][]Record
}

func (b *onceFailingBackend) Sync(recs []Record) error {
	b.calls++
	if b.calls == 2 {
		return fmt.Errorf("transient device error")
	}
	b.batches = append(b.batches, append([]Record(nil), recs...))
	return nil
}
func (b *onceFailingBackend) Close() error { return nil }

// TestSyncFailureStopsBackendWrites: after the first Sync failure the log
// stops handing batches to the backend entirely — appending after a hole
// would make the whole file unreplayable, while stopping preserves the
// cleanly-synced prefix. The failure stays sticky in Err.
func TestSyncFailureStopsBackendWrites(t *testing.T) {
	b := &onceFailingBackend{}
	l, err := Open(Config{Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		l.Append(Record{Kind: Update, Txn: "A", Obj: "X", Op: adt.DepositOk(1)})
	}
	if l.Err() == nil {
		t.Fatal("sync failure not recorded")
	}
	if b.calls != 2 {
		t.Fatalf("backend saw %d Sync calls, want 2 (no writes after the failure)", b.calls)
	}
	if len(b.batches) != 1 {
		t.Fatalf("backend persisted %d batches, want only the pre-failure prefix", len(b.batches))
	}
	if l.Len() != 4 {
		t.Fatalf("in-memory Len = %d, want 4 (log stays usable)", l.Len())
	}
	if err := l.Close(); err == nil {
		t.Fatal("Close must surface the sticky sync failure")
	}
}

// TestAppendLSNVisibleAcrossFlushers pins the publication contract of
// stagedRec.lsn: an Append's returned LSN is the record's true assignment
// even when a different goroutine's flusher (a concurrent committer in
// sync mode, the dedicated flusher in async mode) performed the
// sequencing. Run under -race this is the regression test for the
// documented happens-before edge (flush lock handoff, or barrier-channel
// close).
func TestAppendLSNVisibleAcrossFlushers(t *testing.T) {
	for _, mode := range []struct {
		name string
		cfg  Config
	}{
		{"sync", Config{Stripes: 4}},
		{"async", Config{Stripes: 4, Async: true}},
		{"async-dwell", Config{Stripes: 4, Async: true, BatchInterval: 200 * time.Microsecond}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			l, err := Open(mode.cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			const gs = 6
			const per = 50
			// A rival flusher races to sequence other goroutines' staged
			// records, so many Appends observe an LSN they did not assign
			// themselves.
			stop := make(chan struct{})
			var rival sync.WaitGroup
			rival.Add(1)
			go func() {
				defer rival.Done()
				for {
					select {
					case <-stop:
						return
					default:
						l.Flush()
					}
				}
			}()
			type got struct {
				lsn LSN
				tag string
			}
			results := make([][]got, gs)
			var wg sync.WaitGroup
			for g := 0; g < gs; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					txn := history.TxnID(rune('A' + g))
					for i := 0; i < per; i++ {
						tag := fmt.Sprintf("%d.%d", g, i)
						lsn := l.Append(Record{
							Kind: Update, Txn: txn, Obj: "X",
							Op: spec.Op(spec.NewInvocation("w", tag), "ok"),
						})
						results[g] = append(results[g], got{lsn, tag})
					}
				}(g)
			}
			wg.Wait()
			close(stop)
			rival.Wait()
			for g, rs := range results {
				var prev LSN
				for _, r := range rs {
					if r.lsn == 0 {
						t.Fatalf("goroutine %d: Append returned the nil LSN for %s", g, r.tag)
					}
					if r.lsn <= prev {
						t.Fatalf("goroutine %d: LSNs not increasing (%d after %d)", g, r.lsn, prev)
					}
					prev = r.lsn
					rec, ok := l.Get(r.lsn)
					if !ok {
						t.Fatalf("goroutine %d: no record at returned LSN %d", g, r.lsn)
					}
					if rec.Op.Inv.Args != r.tag {
						t.Fatalf("goroutine %d: LSN %d holds %s, want args %s",
							g, r.lsn, rec.Op, r.tag)
					}
				}
			}
		})
	}
}
