package txn

// Tests of the lock-free read path and the sharded, commit-LSN-ordered
// commit pipeline: the CoW registry performs zero lock acquisitions on
// lookup (proven by the acquisition counter, not by timing), registration
// mid-traffic never loses an object or tears a lookup, the per-shard
// ordered-release protocol releases in commit-ticket order
// deterministically, and both pipeline shapes produce equivalent
// verifiable histories under both release policies and both disciplines.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/adt"
	"repro/internal/history"
	"repro/internal/wal"
)

// TestCowRegistryLookupLockFree proves the acceptance criterion directly:
// after warm-up (registration), a workload of reads and commits performs
// zero registry lock acquisitions under the CoW registry, while the
// legacy locked arm of the same workload performs at least one per
// operation.
func TestCowRegistryLookupLockFree(t *testing.T) {
	run := func(legacy bool) int64 {
		e := NewEngine(Options{RecordHistory: true, Shards: 4, LegacyLockedRegistry: legacy})
		defer e.Close()
		ba := adt.DefaultBankAccount()
		for i := 0; i < 8; i++ {
			e.MustRegister(history.ObjectID(fmt.Sprintf("acct%d", i)), ba, ba.NRBC(), UndoLogRecovery)
		}
		for i := 0; i < 20; i++ {
			tx := e.Begin()
			obj := history.ObjectID(fmt.Sprintf("acct%d", i%8))
			if _, err := tx.Invoke(obj, adt.Deposit(1)); err != nil {
				t.Fatalf("deposit: %v", err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatalf("commit: %v", err)
			}
		}
		return e.Metrics.RegistryLockAcqs.Load()
	}
	if got := run(false); got != 0 {
		t.Fatalf("CoW registry performed %d lookup lock acquisitions, want 0", got)
	}
	if got := run(true); got == 0 {
		t.Fatal("legacy locked registry recorded no lookup lock acquisitions; the counter is broken")
	}
}

// TestCowRegistryRegisterMidTraffic hammers Register against lookups and
// commits under the race detector: a registration mid-traffic must never
// lose an object or tear a lookup, and traffic against already-registered
// objects must never observe a miss.
func TestCowRegistryRegisterMidTraffic(t *testing.T) {
	e := NewEngine(Options{Shards: 4})
	defer e.Close()
	ba := adt.DefaultBankAccount()
	const base, extra, workers = 4, 64, 4
	for i := 0; i < base; i++ {
		e.MustRegister(history.ObjectID(fmt.Sprintf("base%d", i)), ba, ba.NRBC(), UndoLogRecovery)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Traffic: commits against the base objects throughout.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tx := e.Begin()
				obj := history.ObjectID(fmt.Sprintf("base%d", (w+i)%base))
				if _, err := tx.Invoke(obj, adt.Deposit(1)); err != nil {
					t.Errorf("deposit on %s: %v", obj, err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(w)
	}
	// Readers: lookups of base objects must always hit.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				obj := history.ObjectID(fmt.Sprintf("base%d", i%base))
				if _, ok := e.Object(obj); !ok {
					t.Errorf("lookup of registered %s missed", obj)
					return
				}
			}
		}()
	}
	// Registrar: grow the registry mid-traffic, exercising each new object
	// immediately.
	for i := 0; i < extra; i++ {
		obj := history.ObjectID(fmt.Sprintf("extra%d", i))
		if err := e.Register(obj, ba, ba.NRBC(), UndoLogRecovery); err != nil {
			t.Fatalf("register %s: %v", obj, err)
		}
		tx := e.Begin()
		if _, err := tx.Invoke(obj, adt.Deposit(2)); err != nil {
			t.Fatalf("deposit on fresh %s: %v", obj, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit on fresh %s: %v", obj, err)
		}
	}
	close(stop)
	wg.Wait()
	// No registration was lost.
	for i := 0; i < extra; i++ {
		obj := history.ObjectID(fmt.Sprintf("extra%d", i))
		store, ok := e.Object(obj)
		if !ok {
			t.Fatalf("object %s lost after concurrent registration", obj)
		}
		if got := store.CommittedValue().Encode(); got != "2" {
			t.Fatalf("object %s committed value = %s, want 2", obj, got)
		}
	}
}

// TestOrderedReleaseObservesTicketOrder drives the per-shard release
// protocol deterministically: with A resolved at a smaller ticket than B,
// B's release must block until A's completes, whatever the goroutine
// schedule — the happens-before chain is forced by the protocol itself,
// not by sleeps.
func TestOrderedReleaseObservesTicketOrder(t *testing.T) {
	e := NewEngine(Options{Shards: 1})
	defer e.Close()
	sh := e.shards[0]
	var mu sync.Mutex
	var order []string
	release := func(id history.TxnID) {
		sh.awaitReleaseTurn(id)
		mu.Lock()
		order = append(order, string(id))
		mu.Unlock()
		sh.finishRelease(id)
	}
	sh.enrollRelease("A")
	sh.enrollRelease("B")
	sh.resolveRelease("A", 10)
	sh.resolveRelease("B", 20)
	done := make(chan struct{})
	go func() {
		release("B") // must wait: A is resolved with a smaller ticket
		close(done)
	}()
	release("A") // never blocks: smallest resolved ticket, no unresolved peers
	<-done
	if len(order) != 2 || order[0] != "A" || order[1] != "B" {
		t.Fatalf("release order = %v, want [A B] (commit-LSN order)", order)
	}
}

// TestOrderedReleaseBlocksOnUnresolved: an enrolled committer whose
// ticket is not yet known blocks every release in the shard — its
// eventual ticket could be smaller than any resolved one's. Once it
// resolves larger, the smaller-ticketed committer goes first; the
// ordering assertions hold on every schedule.
func TestOrderedReleaseBlocksOnUnresolved(t *testing.T) {
	e := NewEngine(Options{Shards: 1})
	defer e.Close()
	sh := e.shards[0]
	var mu sync.Mutex
	var order []string
	release := func(id history.TxnID) {
		sh.awaitReleaseTurn(id)
		mu.Lock()
		order = append(order, string(id))
		mu.Unlock()
		sh.finishRelease(id)
	}
	sh.enrollRelease("A") // stays unresolved while B tries to release
	sh.enrollRelease("B")
	sh.resolveRelease("B", 5)
	done := make(chan struct{})
	go func() {
		release("B") // blocks: A unresolved, then A resolved larger → B first
		close(done)
	}()
	sh.resolveRelease("A", 10)
	<-done
	release("A") // blocks until B finished (B's ticket 5 < 10), then proceeds
	if len(order) != 2 || order[0] != "B" || order[1] != "A" {
		t.Fatalf("release order = %v, want [B A] (ticket order 5 < 10)", order)
	}
}

// TestShardedCommitReleasesInTicketOrderEndToEnd commits transactions on
// disjoint objects of one shard concurrently and checks, via the commit
// tickets each object publishes, that the per-shard release pipeline let
// every commit through (no lost wakeup, no stuck enrollment) and the
// final pending table is empty.
func TestShardedCommitReleasesInTicketOrderEndToEnd(t *testing.T) {
	e := NewEngine(Options{RecordHistory: true, Shards: 1})
	defer e.Close()
	ba := adt.DefaultBankAccount()
	const objects, rounds, workers = 6, 10, 6
	for i := 0; i < objects; i++ {
		e.MustRegister(history.ObjectID(fmt.Sprintf("o%d", i)), ba, ba.NRBC(), UndoLogRecovery)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				tx := e.Begin()
				// Two objects per txn so shard groups have width.
				a := history.ObjectID(fmt.Sprintf("o%d", (w+r)%objects))
				b := history.ObjectID(fmt.Sprintf("o%d", (w+r+1)%objects))
				if _, err := tx.Invoke(a, adt.Deposit(1)); err != nil {
					tx.Abort()
					continue // deadlock victim: fine, the protocol is what's under test
				}
				if _, err := tx.Invoke(b, adt.Deposit(1)); err != nil {
					tx.Abort()
					continue
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Every enrollment was cleaned up: no committer is still pending.
	sh := e.shards[0]
	sh.relMu.Lock()
	left := len(sh.pending)
	sh.relMu.Unlock()
	if left != 0 {
		t.Fatalf("%d enrollments left pending after quiescence", left)
	}
	if err := history.WellFormed(e.History()); err != nil {
		t.Fatalf("history not well-formed: %v", err)
	}
}

// TestPipelineShapesEquivalent runs the same deterministic workload under
// every pipeline × release policy × discipline combination and checks the
// committed state and history verdicts agree: the sharded pipeline is
// behavior-preserving at the history level.
func TestPipelineShapesEquivalent(t *testing.T) {
	type combo struct {
		pipe CommitPipeline
		pol  ReleasePolicy
		disc string
	}
	var combos []combo
	for _, pipe := range []CommitPipeline{PipelineSharded, PipelineSequential} {
		for _, pol := range []ReleasePolicy{ReleaseEarlyTracked, ReleaseAfterAck} {
			for _, disc := range []string{wal.DisciplineUndo, wal.DisciplineRedo} {
				combos = append(combos, combo{pipe, pol, disc})
			}
		}
	}
	var wantState string
	for i, c := range combos {
		name := fmt.Sprintf("%v/%v/%s", c.pipe, c.pol, c.disc)
		e := NewEngine(Options{
			RecordHistory: true, Shards: 2,
			CommitPipeline: c.pipe, ReleasePolicy: c.pol, LogDiscipline: c.disc,
		})
		ba := adt.DefaultBankAccount()
		objs := []history.ObjectID{"p", "q", "r"}
		for _, o := range objs {
			e.MustRegister(o, ba, ba.NRBC(), UndoLogRecovery)
		}
		// A deterministic single-goroutine workload: multi-object commits
		// and an abort.
		for round := 0; round < 5; round++ {
			tx := e.Begin()
			for _, o := range objs {
				if _, err := tx.Invoke(o, adt.Deposit(round+1)); err != nil {
					t.Fatalf("%s: deposit: %v", name, err)
				}
			}
			if err := tx.Commit(); err != nil {
				t.Fatalf("%s: commit: %v", name, err)
			}
		}
		ab := e.Begin()
		if _, err := ab.Invoke("p", adt.Deposit(3)); err != nil {
			t.Fatalf("%s: deposit: %v", name, err)
		}
		if err := ab.Abort(); err != nil {
			t.Fatalf("%s: abort: %v", name, err)
		}
		var state string
		for _, o := range objs {
			store, _ := e.Object(o)
			state += store.CommittedValue().Encode() + ";"
		}
		if i == 0 {
			wantState = state
		} else if state != wantState {
			t.Fatalf("%s: committed state %q diverges from %q", name, state, wantState)
		}
		if err := history.WellFormed(e.History()); err != nil {
			t.Fatalf("%s: history not well-formed: %v", name, err)
		}
		if err := e.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
	}
}

// TestBatchStagedCommitRecordsMatchSequential checks the WAL record
// streams of the two pipelines carry the same per-transaction content:
// same record kinds and objects for each transaction, with the
// transaction-level commit record last — the property restart's
// presumed-abort protocol replays by.
func TestBatchStagedCommitRecordsMatchSequential(t *testing.T) {
	records := func(pipe CommitPipeline) map[string][]string {
		e := NewEngine(Options{RecordHistory: true, Shards: 2, CommitPipeline: pipe})
		defer e.Close()
		ba := adt.DefaultBankAccount()
		objs := []history.ObjectID{"p", "q", "r", "s"}
		for _, o := range objs {
			e.MustRegister(o, ba, ba.NRBC(), UndoLogRecovery)
		}
		tx := e.Begin()
		for _, o := range objs {
			if _, err := tx.Invoke(o, adt.Deposit(2)); err != nil {
				t.Fatalf("deposit: %v", err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("commit: %v", err)
		}
		if err := e.WAL().Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		perTxn := make(map[string][]string)
		for _, r := range e.WAL().Snapshot() {
			perTxn[string(r.Txn)] = append(perTxn[string(r.Txn)], fmt.Sprintf("%s@%s", r.Kind, r.Obj))
		}
		return perTxn
	}
	shard, seq := records(PipelineSharded), records(PipelineSequential)
	for txn, seqRecs := range seq {
		shardRecs, ok := shard[txn]
		if !ok {
			t.Fatalf("transaction %s missing from sharded log", txn)
		}
		// Same multiset of records; the commit decision last in both.
		if len(shardRecs) != len(seqRecs) {
			t.Fatalf("%s: sharded staged %v, sequential %v", txn, shardRecs, seqRecs)
		}
		seen := make(map[string]int)
		for _, r := range seqRecs {
			seen[r]++
		}
		for _, r := range shardRecs {
			seen[r]--
		}
		for r, n := range seen {
			if n != 0 {
				t.Fatalf("%s: record %s count differs between pipelines (%v vs %v)", txn, r, shardRecs, seqRecs)
			}
		}
		if last := shardRecs[len(shardRecs)-1]; last != fmt.Sprintf("%s@", wal.TxnCommitRec) {
			t.Fatalf("%s: sharded log's last record is %s, want the transaction-level commit record", txn, last)
		}
	}
}
