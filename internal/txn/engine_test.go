package txn

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/atomicity"
	"repro/internal/commute"
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/locking"
	"repro/internal/spec"
)

const acct = history.ObjectID("acct")

// waitUntilBlocked spins until the engine records at least one block event,
// failing the test after a generous timeout.
func waitUntilBlocked(t *testing.T, e *Engine) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for e.Metrics.BlockEvents.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for an operation to block")
		}
		runtime.Gosched()
	}
}

// verifySpec returns a bank-account window wide enough that no engine run
// in these tests can escape it; the Legal check is what matters here, and
// the analytic conflict relations are window-independent.
func verifySpec() spec.Enumerable {
	return adt.BankAccount{MaxBalance: 500, Amounts: []int{1, 2, 3}}.Spec()
}

func newBankEngine(kind RecoveryKind) *Engine {
	ba := adt.DefaultBankAccount()
	e := NewEngine(Options{RecordHistory: true})
	rel := ba.NRBC()
	if kind == IntentionsRecovery {
		rel = ba.NFC()
	}
	e.MustRegister(acct, ba, rel, kind)
	return e
}

func TestSingleTransactionCommit(t *testing.T) {
	for _, kind := range []RecoveryKind{UndoLogRecovery, IntentionsRecovery} {
		e := newBankEngine(kind)
		tx := e.Begin()
		res, err := tx.Invoke(acct, adt.Deposit(10))
		if err != nil || res != "ok" {
			t.Fatalf("%v: deposit: %v %v", kind, res, err)
		}
		res, err = tx.Invoke(acct, adt.Withdraw(4))
		if err != nil || res != "ok" {
			t.Fatalf("%v: withdraw: %v %v", kind, res, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("%v: commit: %v", kind, err)
		}
		store, _ := e.Object(acct)
		if got := store.CommittedValue().Encode(); got != "6" {
			t.Fatalf("%v: committed value = %s, want 6", kind, got)
		}
		if err := history.WellFormed(e.History()); err != nil {
			t.Fatalf("%v: history not well-formed: %v", kind, err)
		}
	}
}

func TestAbortRollsBack(t *testing.T) {
	for _, kind := range []RecoveryKind{UndoLogRecovery, IntentionsRecovery} {
		e := newBankEngine(kind)
		tx := e.Begin()
		if _, err := tx.Invoke(acct, adt.Deposit(10)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Abort(); err != nil {
			t.Fatal(err)
		}
		store, _ := e.Object(acct)
		if got := store.CommittedValue().Encode(); got != "0" {
			t.Fatalf("%v: state after abort = %s, want 0", kind, got)
		}
		// Operations after abort fail.
		if _, err := tx.Invoke(acct, adt.Deposit(1)); !errors.Is(err, ErrNotActive) {
			t.Fatalf("%v: expected ErrNotActive, got %v", kind, err)
		}
		if err := tx.Commit(); !errors.Is(err, ErrNotActive) {
			t.Fatalf("%v: commit after abort should fail: %v", kind, err)
		}
	}
}

// TestUIPAllowsConcurrentWithdrawals: under undo-log/NRBC two successful
// withdrawals proceed concurrently; under intentions/NFC the second blocks
// until the first commits. This is the incomparability made operational.
func TestUIPAllowsConcurrentWithdrawals(t *testing.T) {
	e := newBankEngine(UndoLogRecovery)
	seed := e.Begin()
	if _, err := seed.Invoke(acct, adt.Deposit(10)); err != nil {
		t.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	t1 := e.Begin()
	t2 := e.Begin()
	if _, err := t1.Invoke(acct, adt.Withdraw(3)); err != nil {
		t.Fatal(err)
	}
	// t2's withdrawal must not block: (wok, wok) ∉ NRBC.
	done := make(chan error, 1)
	go func() {
		_, err := t2.Invoke(acct, adt.Withdraw(4))
		done <- err
	}()
	if err := <-done; err != nil {
		t.Fatalf("concurrent withdrawal blocked or failed under UIP/NRBC: %v", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	store, _ := e.Object(acct)
	if got := store.CommittedValue().Encode(); got != "3" {
		t.Fatalf("balance = %s, want 3", got)
	}
	if e.Metrics.Blocked.Load() != 0 {
		t.Errorf("no operation should have blocked, got %d", e.Metrics.Blocked.Load())
	}
}

// TestDUBlocksConcurrentWithdrawals is the DU side: (wok, wok) ∈ NFC, so
// the second withdrawal waits for the first to commit.
func TestDUBlocksConcurrentWithdrawals(t *testing.T) {
	e := newBankEngine(IntentionsRecovery)
	seed := e.Begin()
	if _, err := seed.Invoke(acct, adt.Deposit(10)); err != nil {
		t.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	t1 := e.Begin()
	t2 := e.Begin()
	if _, err := t1.Invoke(acct, adt.Withdraw(3)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := t2.Invoke(acct, adt.Withdraw(4))
		done <- err
	}()
	// Wait until t2 has genuinely blocked, then release it by committing.
	waitUntilBlocked(t, e)
	select {
	case err := <-done:
		t.Fatalf("t2 should have blocked, returned %v", err)
	default:
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("t2 after t1's commit: %v", err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	store, _ := e.Object(acct)
	if got := store.CommittedValue().Encode(); got != "3" {
		t.Fatalf("balance = %s, want 3", got)
	}
	if e.Metrics.Blocked.Load() == 0 {
		t.Error("expected the second withdrawal to block at least once")
	}
}

// TestDUAllowsWithdrawDuringDeposit is the mirror divergence: under
// intentions/NFC a withdrawal validated against the committed balance runs
// while a deposit is uncommitted; under undo-log/NRBC it must wait.
func TestDUAllowsWithdrawDuringDeposit(t *testing.T) {
	e := newBankEngine(IntentionsRecovery)
	seed := e.Begin()
	if _, err := seed.Invoke(acct, adt.Deposit(5)); err != nil {
		t.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	dep := e.Begin()
	if _, err := dep.Invoke(acct, adt.Deposit(2)); err != nil {
		t.Fatal(err)
	}
	w := e.Begin()
	res, err := w.Invoke(acct, adt.Withdraw(3))
	if err != nil || res != "ok" {
		t.Fatalf("withdrawal against committed balance should proceed: %v %v", res, err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := dep.Commit(); err != nil {
		t.Fatal(err)
	}
	store, _ := e.Object(acct)
	if got := store.CommittedValue().Encode(); got != "4" {
		t.Fatalf("balance = %s, want 4", got)
	}
}

func TestUIPBlocksWithdrawDuringDeposit(t *testing.T) {
	e := newBankEngine(UndoLogRecovery)
	seed := e.Begin()
	if _, err := seed.Invoke(acct, adt.Deposit(5)); err != nil {
		t.Fatal(err)
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}
	dep := e.Begin()
	if _, err := dep.Invoke(acct, adt.Deposit(2)); err != nil {
		t.Fatal(err)
	}
	w := e.Begin()
	done := make(chan error, 1)
	go func() {
		_, err := w.Invoke(acct, adt.Withdraw(3))
		done <- err
	}()
	waitUntilBlocked(t, e)
	select {
	case err := <-done:
		t.Fatalf("withdrawal should block behind uncommitted deposit, returned %v", err)
	default:
	}
	if err := dep.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetectionAndVictim(t *testing.T) {
	// Two KV objects, two transactions locking in opposite order.
	kv := adt.DefaultKVStore()
	e := NewEngine(Options{RecordHistory: true})
	e.MustRegister("X", kv, kv.NFC(), IntentionsRecovery)
	e.MustRegister("Y", kv, kv.NFC(), IntentionsRecovery)
	t1 := e.Begin()
	t2 := e.Begin()
	if _, err := t1.Invoke("X", adt.Put("x", "0")); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Invoke("Y", adt.Put("x", "1")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); _, errs[0] = t1.Invoke("Y", adt.Put("x", "0")) }()
	go func() { defer wg.Done(); _, errs[1] = t2.Invoke("X", adt.Put("x", "1")) }()
	wg.Wait()
	var dl *locking.ErrDeadlock
	victims := 0
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.As(err, &dl) && errors.Is(err, ErrAborted) {
			victims++
		} else {
			t.Fatalf("errs[%d] = %v (not a deadlock abort)", i, err)
		}
	}
	if victims != 1 {
		t.Fatalf("expected exactly one deadlock victim, got %d (%v)", victims, errs)
	}
	if e.Metrics.Deadlocks.Load() != 1 {
		t.Errorf("Deadlocks = %d", e.Metrics.Deadlocks.Load())
	}
	// The survivor can commit; the victim is already aborted.
	for i, tx := range []*Txn{t1, t2} {
		if errs[i] == nil {
			if err := tx.Commit(); err != nil {
				t.Fatalf("survivor commit: %v", err)
			}
		}
	}
	if err := history.WellFormed(e.History()); err != nil {
		t.Fatalf("history not well-formed: %v", err)
	}
}

func TestPartialInvocationSurfaced(t *testing.T) {
	pool := adt.ResourcePool{Resources: []int{1}}
	e := NewEngine(Options{RecordHistory: true})
	e.MustRegister("P", pool, pool.NRBC(), UndoLogRecovery)
	t1 := e.Begin()
	if _, err := t1.Invoke("P", adt.Alloc()); err != nil {
		t.Fatal(err)
	}
	t2 := e.Begin()
	if _, err := t2.Invoke("P", adt.Alloc()); !errors.Is(err, adt.ErrNotEnabled) {
		t.Fatalf("expected ErrNotEnabled, got %v", err)
	}
	// t2 is still active and can retry after t1 aborts.
	if err := t1.Abort(); err != nil {
		t.Fatal(err)
	}
	res, err := t2.Invoke("P", adt.Alloc())
	if err != nil || res != "1" {
		t.Fatalf("retry after abort: %v %v", res, err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := history.WellFormed(e.History()); err != nil {
		t.Fatalf("history not well-formed: %v", err)
	}
}

// verifyEngineHistory checks the three-level correctness stack on a
// recorded engine history: well-formedness, per-object acceptance by the
// abstract automaton I(X, Spec, View, Conflict), and dynamic atomicity.
func verifyEngineHistory(t *testing.T, e *Engine, objSpecs map[history.ObjectID]spec.Enumerable, views map[history.ObjectID]core.View, rels map[history.ObjectID]commute.Relation, full bool) {
	t.Helper()
	h := e.History()
	if err := history.WellFormed(h); err != nil {
		t.Fatalf("history not well-formed: %v\n%s", err, h)
	}
	for id, sp := range objSpecs {
		proj := h.ProjectObj(id)
		ok, idx, reason := core.Accepts(id, sp, views[id], rels[id], proj)
		if !ok {
			t.Fatalf("object %s: engine history rejected by abstract model at event %d: %s\n%s", id, idx, reason, proj)
		}
	}
	specs := atomicity.Specs{}
	for id, sp := range objSpecs {
		specs[id] = sp
	}
	if full {
		da, viol, err := atomicity.DynamicAtomic(h, specs)
		if err != nil {
			t.Fatal(err)
		}
		if !da {
			t.Fatalf("engine history not dynamic atomic: %v\n%s", viol, h)
		}
	} else {
		rng := rand.New(rand.NewSource(99))
		da, viol, err := atomicity.DynamicAtomicSampled(h, specs, 30, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !da {
			t.Fatalf("engine history not dynamic atomic (sampled): %v\n%s", viol, h)
		}
	}
}

// TestEngineRefinesModelSmall runs a small deterministic interleaving and
// verifies the recorded history against the full correctness stack,
// for both recovery configurations.
func TestEngineRefinesModelSmall(t *testing.T) {
	ba := adt.DefaultBankAccount()
	cases := []struct {
		kind RecoveryKind
		view core.View
	}{
		{UndoLogRecovery, core.UIP},
		{IntentionsRecovery, core.DU},
	}
	for _, c := range cases {
		e := newBankEngine(c.kind)
		seed := e.Begin()
		if _, err := seed.Invoke(acct, adt.Deposit(6)); err != nil {
			t.Fatal(err)
		}
		if err := seed.Commit(); err != nil {
			t.Fatal(err)
		}
		t1 := e.Begin()
		t2 := e.Begin()
		if _, err := t1.Invoke(acct, adt.Withdraw(2)); err != nil {
			t.Fatal(err)
		}
		if _, err := t1.Invoke(acct, adt.Balance()); err != nil {
			t.Fatal(err)
		}
		if err := t1.Commit(); err != nil {
			t.Fatal(err)
		}
		if _, err := t2.Invoke(acct, adt.Withdraw(1)); err != nil {
			t.Fatal(err)
		}
		if err := t2.Abort(); err != nil {
			t.Fatal(err)
		}
		rel := ba.NRBC()
		if c.kind == IntentionsRecovery {
			rel = ba.NFC()
		}
		verifyEngineHistory(t, e,
			map[history.ObjectID]spec.Enumerable{acct: verifySpec()},
			map[history.ObjectID]core.View{acct: c.view},
			map[history.ObjectID]commute.Relation{acct: rel},
			true)
	}
}

// TestEngineConcurrentStress runs many goroutine transactions against two
// objects under both recovery disciplines and validates the recorded
// histories post hoc (sampled dynamic atomicity plus abstract-model
// acceptance).
func TestEngineConcurrentStress(t *testing.T) {
	ba := adt.DefaultBankAccount()
	st := adt.DefaultIntSet()
	cases := []struct {
		kind RecoveryKind
		view core.View
	}{
		{UndoLogRecovery, core.UIP},
		{IntentionsRecovery, core.DU},
	}
	for _, c := range cases {
		e := NewEngine(Options{RecordHistory: true})
		baRel := ba.NRBC()
		stRel := st.NRBC()
		if c.kind == IntentionsRecovery {
			baRel = ba.NFC()
			stRel = st.NFC()
		}
		e.MustRegister("acct", ba, baRel, c.kind)
		e.MustRegister("set", st, stRel, c.kind)

		// Seed balance so withdrawals can succeed.
		seed := e.Begin()
		if _, err := seed.Invoke("acct", adt.Deposit(8)); err != nil {
			t.Fatal(err)
		}
		if err := seed.Commit(); err != nil {
			t.Fatal(err)
		}

		const workers = 6
		const txnsPerWorker = 5
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(1000*w) + 7))
				for i := 0; i < txnsPerWorker; i++ {
					tx := e.Begin()
					aborted := false
					steps := 1 + rng.Intn(3)
					for s := 0; s < steps; s++ {
						var err error
						switch rng.Intn(6) {
						case 0:
							_, err = tx.Invoke("acct", adt.Deposit(1+rng.Intn(2)))
						case 1:
							_, err = tx.Invoke("acct", adt.Withdraw(1+rng.Intn(2)))
						case 2:
							_, err = tx.Invoke("acct", adt.Balance())
						case 3:
							_, err = tx.Invoke("set", adt.Insert(1+rng.Intn(3)))
						case 4:
							_, err = tx.Invoke("set", adt.Remove(1+rng.Intn(3)))
						default:
							_, err = tx.Invoke("set", adt.Member(1+rng.Intn(3)))
						}
						if err != nil {
							// Deadlock victims are already aborted.
							aborted = true
							break
						}
					}
					if aborted {
						continue
					}
					if rng.Intn(5) == 0 {
						_ = tx.Abort()
					} else if err := tx.Commit(); err != nil {
						t.Errorf("commit: %v", err)
						return
					}
				}
			}(w)
		}
		wg.Wait()

		verifyEngineHistory(t, e,
			map[history.ObjectID]spec.Enumerable{"acct": verifySpec(), "set": st.Spec()},
			map[history.ObjectID]core.View{"acct": c.view, "set": c.view},
			map[history.ObjectID]commute.Relation{"acct": baRel, "set": stRel},
			false)
	}
}

func TestRegisterDuplicate(t *testing.T) {
	ba := adt.DefaultBankAccount()
	e := NewEngine(Options{})
	if err := e.Register("X", ba, ba.NRBC(), UndoLogRecovery); err != nil {
		t.Fatal(err)
	}
	if err := e.Register("X", ba, ba.NRBC(), UndoLogRecovery); err == nil {
		t.Error("duplicate registration should fail")
	}
}

func TestUnknownObject(t *testing.T) {
	e := NewEngine(Options{})
	tx := e.Begin()
	if _, err := tx.Invoke("nope", adt.Deposit(1)); err == nil {
		t.Error("unknown object should fail")
	}
}
