package txn

// Metrics-conservation test: every begun transaction is accounted for by
// exactly one terminal counter, and the block counters never invert,
// under every pipeline × release-policy × discipline combination — with
// the observability layer attached, so the instrumentation itself is
// exercised (and raced) on every path.

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/history"
	"repro/internal/obs"
	"repro/internal/wal"
)

// TestMetricsConservation runs a contended bank workload with explicit
// aborts and deadlock-prone two-object transactions, quiesces, and
// checks the conservation law
//
//	Begins == Commits + Aborts + DurabilityFailures + DurabilityAborts
//
// (deadlock victims are aborted, so they land in Aborts) plus
// Blocked <= BlockEvents (an operation blocks at least once per wait it
// records). Any leak — a transaction that ends without a terminal
// counter, or one counted twice — breaks the equality.
func TestMetricsConservation(t *testing.T) {
	for _, pipeline := range []CommitPipeline{PipelineSharded, PipelineSequential} {
		for _, pol := range []ReleasePolicy{ReleaseEarlyTracked, ReleaseAfterAck} {
			for _, disc := range []string{wal.DisciplineUndo, wal.DisciplineRedo} {
				t.Run(fmt.Sprintf("%s/%s/%s", pipeline, pol, disc), func(t *testing.T) {
					o := obs.New(obs.Options{Epoch: time.Now(), SampleRate: 0.5, TraceSeed: 42})
					e := NewEngine(Options{
						Shards:         4,
						ReleasePolicy:  pol,
						CommitPipeline: pipeline,
						LogDiscipline:  disc,
						Obs:            o,
					})
					defer e.Close()
					ba := adt.DefaultBankAccount()
					const objects = 4
					for i := 0; i < objects; i++ {
						e.MustRegister(history.ObjectID(fmt.Sprintf("acct%d", i)), ba, ba.NRBC(), UndoLogRecovery)
					}
					const workers, perWorker = 4, 40
					var wg sync.WaitGroup
					for w := 0; w < workers; w++ {
						wg.Add(1)
						go func(w int) {
							defer wg.Done()
							for i := 0; i < perWorker; i++ {
								tx := e.Begin()
								// Opposite acquisition orders across workers
								// provoke deadlocks; victims are aborted
								// inside Invoke.
								first := history.ObjectID(fmt.Sprintf("acct%d", (w+i)%objects))
								second := history.ObjectID(fmt.Sprintf("acct%d", (w+i+1)%objects))
								if w%2 == 1 {
									first, second = second, first
								}
								if _, err := tx.Invoke(first, adt.Deposit(1)); err != nil {
									if !errors.Is(err, ErrAborted) {
										_ = tx.Abort()
									}
									continue
								}
								if _, err := tx.Invoke(second, adt.Deposit(1)); err != nil {
									if !errors.Is(err, ErrAborted) {
										_ = tx.Abort()
									}
									continue
								}
								if i%5 == 0 {
									if err := tx.Abort(); err != nil {
										t.Errorf("abort: %v", err)
									}
									continue
								}
								if err := tx.Commit(); err != nil {
									t.Errorf("commit: %v", err)
								}
							}
						}(w)
					}
					wg.Wait()
					m := &e.Metrics
					begins := m.Begins.Load()
					terminal := m.Commits.Load() + m.Aborts.Load() +
						m.DurabilityFailures.Load() + m.DurabilityAborts.Load()
					if begins != terminal {
						t.Errorf("conservation violated: Begins=%d but Commits=%d + Aborts=%d + DurabilityFailures=%d + DurabilityAborts=%d = %d",
							begins, m.Commits.Load(), m.Aborts.Load(),
							m.DurabilityFailures.Load(), m.DurabilityAborts.Load(), terminal)
					}
					if begins != workers*perWorker {
						t.Errorf("Begins = %d, want %d", begins, workers*perWorker)
					}
					if m.Blocked.Load() > m.BlockEvents.Load() {
						t.Errorf("Blocked=%d > BlockEvents=%d", m.Blocked.Load(), m.BlockEvents.Load())
					}
					// The snapshot sees the same quiesced numbers, and the
					// end-to-end histogram saw every transaction exactly once.
					snap := e.ObsSnapshot()
					if snap.Engine.Begins != begins || snap.Engine.Commits != m.Commits.Load() {
						t.Errorf("snapshot disagrees with metrics: %+v", snap.Engine)
					}
					if snap.Phases == nil {
						t.Fatal("snapshot has no phase histograms despite an attached observer")
					}
					if got := snap.Phases.TxnE2E.Count; got != begins {
						t.Errorf("TxnE2E histogram count = %d, want Begins = %d", got, begins)
					}
				})
			}
		}
	}
}
