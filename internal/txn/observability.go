package txn

import (
	"time"

	"repro/internal/obs"
	"repro/internal/wal"
)

// obsEnd closes out a transaction's observability: it records the
// end-to-end latency and, for sampled transactions, emits the enclosing
// "txn" span and the terminal instant and publishes the trace batch.
// Idempotent — the first terminal path (commit, abort, terminate,
// durability failure) wins and clears t.obs, so a transaction records
// exactly one end however many error paths it crosses. Nil-safe: a
// transaction begun on an engine without an observer does nothing here.
func (t *Txn) obsEnd(outcome string) {
	o := t.obs
	if o == nil {
		return
	}
	t.obs = nil
	d := time.Since(t.begin).Nanoseconds()
	o.RecordTxnEnd(d)
	if tt := t.trace; tt != nil {
		end := time.Since(o.Epoch).Nanoseconds()
		tt.Span("txn", end-d, end, map[string]string{"outcome": outcome})
		tt.Instant(outcome, end, nil)
		tt.Finish()
		t.trace = nil
	}
}

// Observer returns the engine's observability hub (nil when disabled).
func (e *Engine) Observer() *obs.Observer { return e.obsv }

// ObsSnapshot assembles the unified introspection snapshot: engine
// configuration labels, every lifecycle counter, the WAL's coherent
// accounting (one wal.Log.Stats sequence point — no torn cross-field
// reads), checkpoint progress, and — when an observer is attached — the
// phase histograms and trace statistics. This is the one read point the
// sweeps and exporters use instead of harvesting counters piecemeal;
// in particular it surfaces the per-policy mean commit hold that E16
// and E20 used to recompute externally.
func (e *Engine) ObsSnapshot() obs.Snapshot {
	m := &e.Metrics
	disc := e.opts.LogDiscipline
	if disc == "" {
		disc = wal.DisciplineUndo
	}
	s := obs.Snapshot{
		Policy:     e.opts.ReleasePolicy.String(),
		Pipeline:   e.opts.CommitPipeline.String(),
		Discipline: disc,
		Shards:     len(e.shards),
		Engine: obs.EngineCounters{
			Begins:             m.Begins.Load(),
			Commits:            m.Commits.Load(),
			Aborts:             m.Aborts.Load(),
			Deadlocks:          m.Deadlocks.Load(),
			Operations:         m.Operations.Load(),
			Blocked:            m.Blocked.Load(),
			BlockEvents:        m.BlockEvents.Load(),
			NotEnabled:         m.NotEnabled.Load(),
			DurabilityFailures: m.DurabilityFailures.Load(),
			DependencyStalls:   m.DependencyStalls.Load(),
			DurabilityAborts:   m.DurabilityAborts.Load(),
			CommitHoldNS:       m.CommitHoldNS.Load(),
			RegistryLockAcqs:   m.RegistryLockAcqs.Load(),
		},
		Checkpoint: obs.CheckpointStats{
			Completed:        m.Checkpoints.Load(),
			TruncatedRecords: m.TruncatedRecords.Load(),
		},
	}
	if commits := s.Engine.Commits; commits > 0 {
		s.Engine.MeanCommitHoldNS = float64(s.Engine.CommitHoldNS) / float64(commits)
	}
	ws := e.log.Stats()
	s.WAL = obs.WALStats{
		Flushes:               ws.Flushes,
		FlushedRecords:        ws.FlushedRecords,
		StripeAcquisitions:    ws.StripeAcquisitions,
		DurableLSN:            uint64(ws.DurableLSN),
		Records:               ws.Records,
		Bytes:                 ws.Bytes,
		Base:                  uint64(ws.Base),
		Discipline:            ws.Discipline,
		TruncBytesRewritten:   ws.Truncate.BytesRewritten,
		TruncSegmentsUnlinked: ws.Truncate.SegmentsUnlinked,
		TruncSegmentsRetained: ws.Truncate.SegmentsRetained,
	}
	if ws.Err != nil {
		s.WAL.Err = ws.Err.Error()
	}
	if o := e.obsv; o != nil {
		s.Phases = o.Phases()
		if tr := o.Trace(); tr != nil {
			sampled, events, dropped := tr.Stats()
			s.Trace = &obs.TraceStats{
				Sampled: sampled,
				Events:  events,
				Dropped: dropped,
				Kinds:   len(tr.KindCounts()),
			}
		}
	}
	return s
}
