package txn

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/history"
	"repro/internal/wal"
)

// TestEngineCloseIsIdempotentAndTyped: Engine.Close is safe to call twice,
// and a commit arriving after Close observes a typed wal.ErrClosed-wrapped
// failure — with its locks released and the transaction terminated — not
// an unspecified race outcome.
func TestEngineCloseIsIdempotentAndTyped(t *testing.T) {
	log, err := wal.Open(wal.Config{Async: true, Backend: wal.NewLatencyBackend(0, nil)})
	if err != nil {
		t.Fatal(err)
	}
	ba := adt.DefaultBankAccount()
	e := NewEngine(Options{WAL: log})
	e.MustRegister("X", ba, ba.NRBC(), UndoLogRecovery)

	// A transaction that is mid-flight when the engine closes.
	tx := e.Begin()
	if _, err := tx.Invoke("X", adt.Deposit(3)); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close = %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close = %v (must be idempotent)", err)
	}
	err = tx.Commit()
	if !errors.Is(err, wal.ErrClosed) {
		t.Fatalf("Commit after Close = %v, want a wal.ErrClosed-wrapped error", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrNotActive) {
		t.Fatalf("Abort after failed Commit = %v, want ErrNotActive (terminated)", err)
	}
	// The commit's locks were released: a conflicting invoke fails on the
	// closed log rather than blocking forever on a leaked lock.
	tx2 := e.Begin()
	done := make(chan error, 1)
	go func() {
		_, err := tx2.Invoke("X", adt.Deposit(1))
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, wal.ErrClosed) {
			t.Fatalf("Invoke on closed engine = %v, want wal.ErrClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("invoke blocked: the terminated commit leaked its locks")
	}
}

// TestEngineCloseRacesInFlightTxns drives commits and aborts concurrently
// with Engine.Close under both release policies. Every operation must
// either succeed or fail with a typed error (wal.ErrClosed surfaced as
// ErrDurability on the commit path, deadlock aborts, plain abort errors) —
// never hang, leak a lock, or panic. Run with -race this is the regression
// test for the Close-vs-Commit shutdown races.
func TestEngineCloseRacesInFlightTxns(t *testing.T) {
	for _, pol := range []ReleasePolicy{ReleaseEarlyTracked, ReleaseAfterAck} {
		t.Run(pol.String(), func(t *testing.T) {
			for round := 0; round < 3; round++ {
				log, err := wal.Open(wal.Config{
					Async:         true,
					BatchInterval: 50 * time.Microsecond,
					Backend:       wal.NewLatencyBackend(20*time.Microsecond, nil),
				})
				if err != nil {
					t.Fatal(err)
				}
				ba := adt.DefaultBankAccount()
				e := NewEngine(Options{WAL: log, ReleasePolicy: pol, Shards: 4})
				const objects = 4
				rel := ba.NRBC()
				for i := 0; i < objects; i++ {
					e.MustRegister(history.ObjectID(fmt.Sprintf("obj%d", i)), ba, rel, UndoLogRecovery)
				}
				var wg sync.WaitGroup
				errs := make(chan error, 256)
				for w := 0; w < 4; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for i := 0; i < 20; i++ {
							tx := e.Begin()
							_, err := tx.Invoke(history.ObjectID(fmt.Sprintf("obj%d", (w+i)%objects)), adt.Deposit(1))
							if err != nil {
								if !errors.Is(err, ErrAborted) {
									if aerr := tx.Abort(); aerr != nil && !errors.Is(aerr, ErrNotActive) {
										errs <- aerr
									}
								}
								errs <- err
								continue
							}
							if i%5 == 0 {
								if err := tx.Abort(); err != nil {
									errs <- err
								}
							} else if err := tx.Commit(); err != nil {
								errs <- err
							}
						}
					}(w)
				}
				// Close mid-flight, then again (idempotence under race).
				time.Sleep(time.Duration(200*round) * time.Microsecond)
				first := e.Close()
				second := e.Close()
				if !errors.Is(second, first) && second != first {
					t.Errorf("second Close = %v, first = %v: results must agree", second, first)
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					switch {
					case errors.Is(err, wal.ErrClosed),
						errors.Is(err, ErrDurability),
						errors.Is(err, ErrAborted),
						errors.Is(err, ErrNotActive):
						// Typed shutdown/contention outcomes are expected.
					default:
						t.Errorf("untyped error during close race: %v", err)
					}
				}
			}
		})
	}
}
