package txn

import (
	"strings"
	"testing"
	"time"

	"repro/internal/adt"
)

// TestCommitPrepareFailureReleasesLocks: a Commit that fails mid-protocol
// (here: a touched participant that is no longer registered, failing the
// prepare phase) must still release every lock the transaction holds and
// clear its wait edges — the regression for the leak where an error return
// left the transaction state committed with locks held forever.
func TestCommitPrepareFailureReleasesLocks(t *testing.T) {
	e := newBankEngine(UndoLogRecovery)
	tx := e.Begin()
	if _, err := tx.Invoke(acct, adt.Deposit(5)); err != nil {
		t.Fatal(err)
	}
	// Sabotage the participant set: an object that was never registered,
	// so the prepare sweep fails after the deposit's lock is held.
	tx.touched["ghost"] = true
	tx.order = append(tx.order, "ghost")
	err := tx.Commit()
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("Commit = %v, want prepare failure naming the ghost object", err)
	}
	// The deposit's lock must be gone: a conflicting withdrawal by another
	// transaction completes instead of waiting on the leaked lock.
	tx2 := e.Begin()
	done := make(chan error, 1)
	go func() {
		_, err := tx2.Invoke(acct, adt.Withdraw(3))
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("conflicting withdraw after failed commit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("conflicting withdraw still blocked: failed Commit leaked its locks")
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}
