package txn

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/history"
	"repro/internal/recovery"
	"repro/internal/wal"
)

// TestCommitPrepareFailureReleasesLocks: a Commit that fails mid-protocol
// (here: a touched participant that is no longer registered, failing the
// prepare phase) must still release every lock the transaction holds and
// clear its wait edges — the regression for the leak where an error return
// left the transaction state committed with locks held forever. Since
// nothing committed yet, the failure now terminates through the abort
// path: the deposit is undone, not left applied-but-untracked.
func TestCommitPrepareFailureReleasesLocks(t *testing.T) {
	e := newBankEngine(UndoLogRecovery)
	tx := e.Begin()
	if _, err := tx.Invoke(acct, adt.Deposit(5)); err != nil {
		t.Fatal(err)
	}
	// Sabotage the participant set: an object that was never registered,
	// so the prepare sweep fails after the deposit's lock is held.
	tx.touched["ghost"] = true
	tx.order = append(tx.order, "ghost")
	err := tx.Commit()
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("Commit = %v, want prepare failure naming the ghost object", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrNotActive) {
		t.Fatalf("Abort after failed Commit = %v, want ErrNotActive (already terminated)", err)
	}
	// The deposit's lock must be gone: a conflicting withdrawal by another
	// transaction completes instead of waiting on the leaked lock.
	tx2 := e.Begin()
	done := make(chan error, 1)
	go func() {
		_, err := tx2.Invoke(acct, adt.Balance())
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("conflicting read after failed commit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("conflicting read still blocked: failed Commit leaked its locks")
	}
	// The failed commit terminated via abort: its deposit was undone.
	res, err := tx2.Invoke(acct, adt.Balance())
	if err != nil {
		t.Fatal(err)
	}
	if res != "0" {
		t.Fatalf("balance after terminated commit = %q, want 0 (deposit undone)", res)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

// failingStore wraps a recovery.Store and fails Commit for one transaction
// — the sabotaged participant of the mid-sweep termination test.
type failingStore struct {
	recovery.Store
	victim     history.TxnID
	failCommit error
}

func (s *failingStore) Commit(txn history.TxnID) error {
	if txn == s.victim {
		return s.failCommit
	}
	return s.Store.Commit(txn)
}

// TestCommitMidSweepFailureTerminates: a store.Commit error in phase 2a
// after earlier participants already committed must not abandon the
// transaction half-committed with its remaining effects visible, its undo
// chains leaked, and no terminal history event. The engine terminates it:
// already-committed participants keep their effects (and their terminal
// Commit event), the failed and remaining participants are aborted (their
// effects undone, terminal Abort events recorded), all locks are released,
// and no transaction-level commit record is staged — at restart the
// transaction is a loser everywhere.
func TestCommitMidSweepFailureTerminates(t *testing.T) {
	ba := adt.DefaultBankAccount()
	e := NewEngine(Options{RecordHistory: true})
	e.MustRegister("A", ba, ba.NRBC(), UndoLogRecovery)
	e.MustRegister("B", ba, ba.NRBC(), UndoLogRecovery)

	tx := e.Begin()
	if _, err := tx.Invoke("A", adt.Deposit(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Invoke("B", adt.Deposit(7)); err != nil {
		t.Fatal(err)
	}
	// Sabotage B: its commit processing fails after A already committed
	// (the sweep visits participants in sorted order).
	sabotage := errors.New("participant store failed at commit")
	moB, ok := e.lookup("B")
	if !ok {
		t.Fatal("B not registered")
	}
	moB.store = &failingStore{Store: moB.store, victim: tx.id, failCommit: sabotage}

	err := tx.Commit()
	if !errors.Is(err, sabotage) {
		t.Fatalf("Commit = %v, want the sabotaged participant's failure", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrNotActive) {
		t.Fatalf("Abort after mid-sweep failure = %v, want ErrNotActive (already terminated)", err)
	}

	// A committed (effects permanent), B aborted (effects undone), and
	// both are unlocked for the next transaction.
	tx2 := e.Begin()
	for obj, want := range map[history.ObjectID]string{"A": "5", "B": "0"} {
		res, err := tx2.Invoke(obj, adt.Balance())
		if err != nil {
			t.Fatalf("read %s after torn commit: %v", obj, err)
		}
		if string(res) != want {
			t.Fatalf("balance of %s after torn commit = %q, want %q", obj, res, want)
		}
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}

	// Terminal history events: Commit at A, Abort at B — no object left
	// with the transaction's operations unterminated.
	terminal := map[history.ObjectID]history.EventKind{}
	for _, ev := range e.History() {
		if ev.Txn != tx.id {
			continue
		}
		if ev.Kind == history.Commit || ev.Kind == history.Abort {
			terminal[ev.Obj] = ev.Kind
		}
	}
	if terminal["A"] != history.Commit {
		t.Errorf("terminal event at A = %v, want Commit", terminal["A"])
	}
	if terminal["B"] != history.Abort {
		t.Errorf("terminal event at B = %v, want Abort", terminal["B"])
	}

	// No transaction-level commit record: restart must see a loser.
	for _, rec := range e.WAL().Snapshot() {
		if rec.Kind == wal.TxnCommitRec && rec.Txn == tx.id {
			t.Error("torn commit staged a TxnCommitRec; restart would redo it as a winner")
		}
	}
}
