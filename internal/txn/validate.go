package txn

import (
	"fmt"

	"repro/internal/adt"
	"repro/internal/commute"
	"repro/internal/history"
	"repro/internal/spec"
)

// MisconfigurationError reports a conflict relation that is insufficient
// for the chosen recovery method: the theorems of the paper say exactly
// which pairs are required, and this error carries a missing one.
type MisconfigurationError struct {
	Type     string
	Kind     RecoveryKind
	Relation string
	Required string
	P, Q     spec.Operation
}

// Error implements error.
func (e *MisconfigurationError) Error() string {
	return fmt.Sprintf(
		"txn: %s with %v requires %s ⊆ Conflict (Theorem %s), but relation %q misses (%s, %s)",
		e.Type, e.Kind, e.Required, e.theorem(), e.Relation, e.P, e.Q)
}

func (e *MisconfigurationError) theorem() string {
	if e.Kind == UndoLogRecovery {
		return "9"
	}
	return "10"
}

// ValidateRegistration checks rel against the minimal conflict relation the
// recovery method requires for ty, over the type's window alphabet:
// NRBC(Spec) for undo-log (update-in-place) recovery, per Theorem 9, and
// NFC(Spec) for intentions (deferred-update) recovery, per Theorem 10.
// It returns a *MisconfigurationError naming a missing pair, or nil.
//
// The check is exact for the window alphabet; operations outside the
// window (e.g. very large amounts) rely on the type's relation being
// closed-form over amounts, which every type in internal/adt guarantees.
func ValidateRegistration(ty adt.Type, rel commute.Relation, kind RecoveryKind) error {
	c := checkerFor(ty)
	required := "NRBC"
	check := c.RightCommutesBackward
	if kind == IntentionsRecovery {
		required = "NFC"
		check = c.CommuteForward
	}
	for _, p := range ty.Spec().Alphabet() {
		for _, q := range ty.Spec().Alphabet() {
			if !check(p, q) && !rel.Conflicts(p, q) {
				return &MisconfigurationError{
					Type:     ty.Name(),
					Kind:     kind,
					Relation: rel.Name(),
					Required: required,
					P:        p,
					Q:        q,
				}
			}
		}
	}
	return nil
}

// checkerFor builds the checker with the type's α restriction when the
// type exposes one (the bank account's bounded window).
func checkerFor(ty adt.Type) *commute.Checker {
	if ba, ok := ty.(adt.BankAccount); ok {
		return ba.Checker()
	}
	return commute.NewChecker(ty.Spec())
}

// RegisterValidated is Register preceded by ValidateRegistration: it
// refuses configurations the paper proves incorrect.
func (e *Engine) RegisterValidated(id history.ObjectID, ty adt.Type, rel commute.Relation, kind RecoveryKind) error {
	if err := ValidateRegistration(ty, rel, kind); err != nil {
		return err
	}
	return e.Register(id, ty, rel, kind)
}
