// Package txn implements the executable transaction engine: the practical
// counterpart of the paper's abstract object model. Transactions run as
// goroutines invoking operations on registered objects; each object couples
// a conflict-relation-driven lock table (strict operation-level two-phase
// locking) with a recovery store (update-in-place undo logging or
// deferred-update intentions lists); commits across objects use a
// two-phase protocol whose durable decision point is a single
// transaction-level commit record (wal.TxnCommitRec, staged before any
// lock is released — restart is presumed-abort); and every event is
// recorded in a global history that the atomicity checkers and the
// abstract model can audit after the fact.
//
// The engine is sharded so that throughput scales with cores: the object
// registry is striped over a power-of-two array of shards, object lookup is
// a hash on the ObjectID with no engine-wide lock on the operation path,
// and each shard owns a history.Recorder that stamps events from one global
// atomic sequence. Engine.History() k-way merges the per-shard buffers back
// into the single totally ordered history the post-hoc checkers replay, so
// scaling the hot path costs the verification story nothing. The shared
// write-ahead log is group-committed: undo-log objects stage records
// lock-free of the log and Txn.Commit/Abort issue a flush barrier, which
// assigns the batch one contiguous LSN range. With an asynchronous log
// (Options.WAL built by wal.Open with Async set), sequencing and backend
// syncs run on a dedicated flusher goroutine and Commit merely waits for
// its acknowledgement — commits are durable to whatever degree the
// configured wal.Backend provides (see package wal).
//
// Lock release is ordered against durability by Options.ReleasePolicy:
// ReleaseAfterAck holds locks across the barrier, while the default
// ReleaseEarlyTracked releases early and tracks commit-ticket
// dependencies so that no transaction is ever cleanly acknowledged on
// top of state whose log never synced (see ReleasePolicy).
//
// The engine realizes exactly the parameters of I(X, Spec, View, Conflict):
// pairing an UndoLog store with an NRBC-containing relation yields a
// correct UIP object (Theorem 9); pairing an Intentions store with an
// NFC-containing relation yields a correct DU object (Theorem 10).
// Integration tests validate both by replaying engine histories through the
// abstract automaton and the dynamic-atomicity checkers.
package txn

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adt"
	"repro/internal/commute"
	"repro/internal/history"
	"repro/internal/locking"
	"repro/internal/obs"
	"repro/internal/recovery"
	"repro/internal/spec"
	"repro/internal/stripe"
	"repro/internal/wal"
)

// RecoveryKind selects the recovery manager for an object.
type RecoveryKind int

const (
	// UndoLogRecovery is update-in-place with operation-level undo (UIP).
	UndoLogRecovery RecoveryKind = iota
	// IntentionsRecovery is deferred update with intentions lists (DU).
	IntentionsRecovery
)

// String implements fmt.Stringer.
func (k RecoveryKind) String() string {
	if k == UndoLogRecovery {
		return "undo-log(UIP)"
	}
	return "intentions(DU)"
}

// ReleasePolicy selects the lock-release discipline of Txn.Commit relative
// to the durability barrier — the recovery-constrains-concurrency knob this
// repository exists to measure. Both shipped policies guarantee that no
// acknowledged commit ever reads from a commit whose log records failed to
// sync: either because the state was never visible before its ack
// (ReleaseAfterAck), or because the reader's own barrier is ordered after
// its read-from set's durability and a sticky backend failure terminates
// the reader through the abort path (ReleaseEarlyTracked).
type ReleasePolicy int

const (
	// ReleaseEarlyTracked (the default) releases locks as soon as the
	// transaction-level commit record is staged, before the durability
	// barrier — classic early lock release, preserving group-commit
	// concurrency. Each managed object remembers the stage ticket of its
	// last committed writer; a transaction accumulates the maximum ticket
	// over everything it touched and its own commit barrier additionally
	// waits until the WAL's durable watermark covers that dependency.
	// When the backend has failed, a dependent on an unsynced commit is
	// terminated through the abort path (its effects are undone and the
	// error wraps both ErrDurability and ErrAborted) instead of being
	// committed in memory on top of state the durable log will never
	// contain.
	ReleaseEarlyTracked ReleasePolicy = iota
	// ReleaseAfterAck holds every lock across the flush barrier and
	// releases only after the backend acknowledges the batch. Dependents
	// can never observe unsynced state, closing the durability hole
	// trivially — at the cost of lock hold times that include the flusher
	// dwell and the sync latency (measured by the ccbench release sweep).
	ReleaseAfterAck
	// releaseEarlyUnsafe is the legacy discipline before dependency
	// tracking: release early, flush, and report a backend failure only
	// after the fact, leaving the dependent committed in memory on top of
	// an unsynced loser. It exists so the regression tests can demonstrate
	// the hole the exported policies close; it is not selectable by
	// clients.
	releaseEarlyUnsafe
)

// String implements fmt.Stringer.
func (p ReleasePolicy) String() string {
	switch p {
	case ReleaseEarlyTracked:
		return "release-early-tracked"
	case ReleaseAfterAck:
		return "release-after-ack"
	case releaseEarlyUnsafe:
		return "release-early-unsafe"
	}
	return fmt.Sprintf("ReleasePolicy(%d)", int(p))
}

// ErrAborted is wrapped by operations on a transaction that has been
// aborted (by the user or as a deadlock victim).
var ErrAborted = errors.New("txn: transaction aborted")

// ErrNotActive is returned for operations on committed/finished
// transactions.
var ErrNotActive = errors.New("txn: transaction not active")

// ErrDurability is wrapped by Commit and Abort when the transaction has
// fully taken effect in memory (effects applied or undone, locks released)
// but the WAL backend failed to persist its records — the durable log is
// behind the in-memory state. Callers distinguish this "committed in
// memory, log behind" outcome from a failed commit with
// errors.Is(err, ErrDurability).
var ErrDurability = errors.New("txn: durable log behind in-memory state")

// Metrics counts engine-level events. All fields are updated atomically and
// may be read concurrently.
type Metrics struct {
	Begins     atomic.Int64
	Commits    atomic.Int64
	Aborts     atomic.Int64
	Deadlocks  atomic.Int64
	Operations atomic.Int64
	// Blocked counts operations that had to wait at least once for a
	// conflicting lock — the engine-level measure of lost concurrency.
	Blocked atomic.Int64
	// BlockEvents counts individual waits (an operation can wait several
	// times).
	BlockEvents atomic.Int64
	// NotEnabled counts partial invocations that found no legal response.
	NotEnabled atomic.Int64
	// DurabilityFailures counts transactions that completed in memory but
	// whose WAL backend sync failed (Commit/Abort returned ErrDurability).
	// Such transactions are counted here, not in Commits/Aborts, so the
	// success counters never double-book an errored call.
	DurabilityFailures atomic.Int64
	// DependencyStalls counts commits that arrived at their durability
	// barrier before the commit they read from was durable — the
	// transactions for which early lock release actually bought
	// concurrency (and which the dependency tracker therefore had to
	// order behind their read-from set).
	DependencyStalls atomic.Int64
	// DurabilityAborts counts transactions terminated through the abort
	// path because they depended on a commit the failed WAL backend never
	// persisted (the ErrDurability+ErrAborted cascade of
	// ReleaseEarlyTracked/ReleaseAfterAck). Not counted in Aborts.
	DurabilityAborts atomic.Int64
	// CommitHoldNS accumulates nanoseconds between Commit entry and lock
	// release — the lock hold time of the commit protocol itself. Under
	// ReleaseAfterAck it includes the durability barrier; the per-policy
	// difference is the measured concurrency cost of holding locks to the
	// ack.
	CommitHoldNS atomic.Int64
	// RegistryLockAcqs counts lock acquisitions performed on the object
	// lookup path. The copy-on-write registry performs none — the counter
	// stays at zero however many operations run, which is the pipeline
	// sweep's machine-independent proof that the read path is lock-free.
	// Only the LegacyLockedRegistry arm increments it (once per lookup).
	RegistryLockAcqs atomic.Int64
	// Checkpoints counts completed fuzzy checkpoints (snapshot durably
	// saved); failed or crash-aborted attempts are not counted.
	Checkpoints atomic.Int64
	// TruncatedRecords counts WAL records reclaimed by checkpoint-driven
	// log truncation — the log growth that restart no longer pays for.
	TruncatedRecords atomic.Int64
}

// Options configures an Engine.
type Options struct {
	// RecordHistory enables the per-shard event recorders (required for
	// post-hoc verification; disable only in throughput benchmarks).
	RecordHistory bool
	// Shards is the number of registry shards; it is rounded up to a power
	// of two. Zero selects a default derived from GOMAXPROCS.
	Shards int
	// WAL, when non-nil, is the shared write-ahead log the engine's
	// undo-log objects stage into — typically a wal.Open'd log with an
	// asynchronous flusher and a durable backend. Nil selects a
	// synchronous in-memory log (wal.New). The engine takes ownership:
	// Engine.Close closes it.
	WAL *wal.Log
	// ReleasePolicy selects when Txn.Commit releases its locks relative to
	// the durability barrier. The zero value is ReleaseEarlyTracked.
	ReleasePolicy ReleasePolicy
	// LogDiscipline selects the logging discipline of the engine's undo-log
	// objects. The zero value (or wal.DisciplineUndo) is the default undo
	// logging: before-image/inverse records for every update, per-object
	// commit and compensation records, redo+undo restart.
	// wal.DisciplineRedo selects REDO-only dependency logging: updates
	// stage logical operation records with no undo payload, aborts undo
	// purely in memory and log nothing, and each transaction-level commit
	// record carries the set of committed writers the transaction read from
	// (see wal.Record.Deps) — restart replays only winners, in dependency
	// order, with no undo pass (recovery.RestartRedoOnly). The engine
	// stamps a discipline marker into a fresh log and Register rejects a
	// log whose marker contradicts this option, so artifacts written under
	// one discipline can never be silently recovered under the other.
	LogDiscipline string
	// Checkpoint, when non-nil, enables fuzzy checkpointing: manual
	// Engine.Checkpoint calls and, with Every set, a background
	// checkpointer goroutine the engine owns (stopped by Engine.Close).
	// See CheckpointOptions.
	Checkpoint *CheckpointOptions
	// CommitPipeline selects the shape of Txn.Commit's phase-2 sweep. The
	// zero value is PipelineSharded: participants grouped per registry
	// shard, per-object commit records staged through the WAL's batch
	// accessor, locks released shard-by-shard in commit-LSN order.
	// PipelineSequential keeps the legacy per-object sweep — the "before"
	// arm of the pipeline experiment.
	CommitPipeline CommitPipeline
	// LegacyLockedRegistry routes object lookups through the per-shard
	// read-write lock the registry used before the copy-on-write map —
	// the "before" arm of the pipeline experiment's lock-acquisition
	// comparison (see Metrics.RegistryLockAcqs). Never set it outside a
	// benchmark.
	LegacyLockedRegistry bool
	// Obs, when non-nil, attaches the observability hub: phase latency
	// histograms on every commit, sampled lifecycle tracing, and flusher
	// instrumentation on the engine's WAL. Nil (the default) leaves every
	// hook a nil-receiver no-op — the hot path pays no allocation and no
	// atomic for it (see the obs experiment's disabled-path proof).
	Obs *obs.Observer
}

// CommitPipeline selects how Txn.Commit sweeps its participants; see
// Options.CommitPipeline.
type CommitPipeline int

const (
	// PipelineSharded (the default) groups commit work per registry
	// shard: each shard's per-object commit records are staged in one
	// WAL stripe acquisition (wal.Log.AppendBatchAsync), chains are
	// discharged per shard under the narrowed checkpoint gate, and locks
	// release shard-by-shard in commit-LSN order using the stage-ticket
	// total order.
	PipelineSharded CommitPipeline = iota
	// PipelineSequential is the legacy shape: a per-object sweep in
	// object-ID order staging one record per object under the checkpoint
	// gate, with unordered lock release.
	PipelineSequential
)

// String implements fmt.Stringer.
func (p CommitPipeline) String() string {
	if p == PipelineSequential {
		return "sequential"
	}
	return "sharded"
}

// normalizeShards rounds n up to a power of two within
// [1, stripe.MaxStripes], defaulting to GOMAXPROCS when n is zero or
// negative.
func normalizeShards(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return stripe.RoundPow2(n, stripe.MaxStripes)
}

// Engine manages objects and transactions. The registry and the history
// recorder are striped across shards; see the package comment.
type Engine struct {
	opts     Options
	detector *locking.Detector
	log      *wal.Log

	shards []*engineShard
	mask   uint32
	txnSeq atomic.Int64
	evSeq  atomic.Int64

	// ckptGate orders fuzzy-checkpoint captures against the commit
	// protocol's decision window. Txn.Commit holds the read side from its
	// first per-object store.Commit until the transaction-level commit
	// record is staged; Engine.Checkpoint holds the write side around each
	// object capture. The exclusion guarantees that any transaction whose
	// effects a capture reflects without undo records (its per-object
	// commit discharged the chain before the capture) has already staged
	// its TxnCommitRec — with a stamp below the capture marker's — so the
	// checkpoint's durability wait covers the commit decision too, and no
	// snapshot can ever bake in an unsynced, undecided transaction.
	ckptGate sync.RWMutex
	// ckptMu serializes whole checkpoints; ckptSeq numbers them.
	ckptMu   sync.Mutex
	ckptSeq  atomic.Int64
	ckptQuit chan struct{}
	ckptDone chan struct{}

	closeOnce sync.Once
	closeErr  error

	// initErr records a construction-time failure (a closed log handed to
	// a redo-only NewEngine, so the discipline marker could not be
	// staged). Register surfaces it: an unbranded redo log must not
	// accept objects, and the honest error is the branding failure, not
	// the downstream discipline mismatch it would otherwise look like.
	initErr error

	// obsv is Options.Obs: nil when observability is disabled. Immutable
	// after NewEngine, so reads need no synchronization.
	obsv *obs.Observer

	// Metrics is exported for the experiment harness.
	Metrics Metrics
}

// engineShard owns one stripe of the object registry and the event buffer
// for the objects that hash into it.
type engineShard struct {
	// objects is the copy-on-write registry stripe: lookups load an
	// immutable snapshot through one atomic pointer — zero lock
	// acquisitions on the hit path — and Register publishes a copied
	// successor under the CowMap's internal writer mutex.
	objects stripe.CowMap[history.ObjectID, *managedObject]
	// legacyMu reproduces the pre-CoW read-locked registry when
	// Options.LegacyLockedRegistry is set: lookup takes the read side per
	// hit and Register the write side. It exists only as the honest
	// "before" arm of the pipeline sweep's lock-acquisition comparison;
	// with the option clear it is never touched by lookup.
	legacyMu sync.RWMutex
	recorder *history.Recorder

	// Commit-LSN-ordered release state. A committing transaction enrolls
	// in every shard it touched before staging its transaction-level
	// commit record, resolves the enrollment with the record's stage
	// ticket right after, and at release time waits until no other
	// committer in the shard is enrolled-unresolved or resolved with a
	// smaller ticket. Global stamp monotonicity makes the protocol
	// complete: any transaction whose commit LSN precedes this one's had
	// already enrolled here by the time this one's ticket existed (enroll
	// happens-before its own staging, which happens-before every larger
	// stamp), so waiting on the pending set alone observes every
	// predecessor. relMu guards pending; relCond is broadcast on every
	// resolve/withdraw/finish.
	relMu   sync.Mutex
	relCond *sync.Cond
	pending map[history.TxnID]wal.Ticket
}

// enrollRelease registers txn as a committer of this shard whose commit
// ticket is not yet known (it has not staged its transaction-level commit
// record). Unresolved enrollments block every ordered release in the
// shard: an unresolved committer's eventual ticket may be smaller than
// any resolved one's only if it enrolled before they staged — exactly the
// window this blocking covers.
func (sh *engineShard) enrollRelease(txn history.TxnID) {
	sh.relMu.Lock()
	if sh.pending == nil {
		sh.pending = make(map[history.TxnID]wal.Ticket)
	}
	sh.pending[txn] = 0
	sh.relMu.Unlock()
}

// resolveRelease publishes txn's commit ticket, unblocking waiters whose
// turn it establishes.
func (sh *engineShard) resolveRelease(txn history.TxnID, tk wal.Ticket) {
	sh.relMu.Lock()
	sh.pending[txn] = tk
	sh.relCond.Broadcast()
	sh.relMu.Unlock()
}

// withdrawRelease removes an enrollment whose commit failed before a
// ticket existed (the log closed under the TxnCommitRec staging); the
// transaction terminates through the unordered release path.
func (sh *engineShard) withdrawRelease(txn history.TxnID) {
	sh.relMu.Lock()
	delete(sh.pending, txn)
	sh.relCond.Broadcast()
	sh.relMu.Unlock()
}

// awaitReleaseTurn blocks until txn is the next committer allowed to
// release this shard's locks: no other enrollment is unresolved, and no
// resolved one carries a smaller ticket. Deadlock-free: a committer never
// waits between enroll and resolve (so unresolved entries always resolve
// or withdraw), and resolved waiters are totally ordered by ticket — the
// smallest never blocks.
func (sh *engineShard) awaitReleaseTurn(txn history.TxnID) {
	sh.relMu.Lock()
	for {
		my := sh.pending[txn]
		blocked := false
		for other, tk := range sh.pending {
			if other != txn && (tk == 0 || tk < my) {
				blocked = true
				break
			}
		}
		if !blocked {
			break
		}
		sh.relCond.Wait()
	}
	sh.relMu.Unlock()
}

// finishRelease removes txn's enrollment after its locks at this shard
// are released, passing the turn to the next committer in commit-LSN
// order.
func (sh *engineShard) finishRelease(txn history.TxnID) {
	sh.relMu.Lock()
	delete(sh.pending, txn)
	sh.relCond.Broadcast()
	sh.relMu.Unlock()
}

// managedObject couples the lock table, recovery store, and latch of one
// object.
type managedObject struct {
	id    history.ObjectID
	mu    sync.Mutex
	cond  *sync.Cond
	table *locking.Table
	store recovery.Store
	rel   commute.Relation
	kind  RecoveryKind
	rec   *history.Recorder
	// commitTicket (under mu) is the WAL stage ticket of the last
	// committed writer's transaction-level commit record — the durability
	// point an early-released commit publishes while releasing this
	// object's locks. A later transaction touching the object inherits it
	// as a dependency: its own barrier must not acknowledge before the
	// WAL's durable watermark covers this ticket.
	commitTicket wal.Ticket
	// commitWriter (under mu) is the transaction that published
	// commitTicket — the identity half of the same dependency. Under the
	// redo-only discipline a transaction touching the object inherits it
	// into its dependency set, which its transaction-level commit record
	// carries durably (wal.Record.Deps); restart audits that set for
	// closure under the winner set.
	commitWriter history.TxnID
}

// NewEngine builds an engine.
func NewEngine(opts Options) *Engine {
	n := normalizeShards(opts.Shards)
	log := opts.WAL
	if log == nil {
		log = wal.New()
	}
	e := &Engine{
		opts:     opts,
		detector: locking.NewDetector(),
		log:      log,
		shards:   make([]*engineShard, n),
		mask:     uint32(n - 1),
		obsv:     opts.Obs,
	}
	if opts.Obs != nil {
		log.SetObserver(opts.Obs)
	}
	for i := range e.shards {
		sh := &engineShard{recorder: history.NewRecorder(&e.evSeq)}
		sh.relCond = sync.NewCond(&sh.relMu)
		e.shards[i] = sh
	}
	if e.redoOnly() && log.Discipline() == "" && log.Len() == 0 && log.Base() == 0 {
		// Brand the fresh log with the discipline marker as its first record
		// so restart (and any later engine) detects the discipline from the
		// log alone. A non-empty unmarked log is NOT branded — it was
		// written by an undo-mode engine and Register rejects it.
		if _, err := log.AppendAsync(wal.DisciplineMarker(wal.DisciplineRedo)); err != nil {
			e.initErr = fmt.Errorf("txn: branding redo-only log: %w", err)
		}
	}
	if opts.Checkpoint != nil && opts.Checkpoint.Store != nil && opts.Checkpoint.Every > 0 {
		e.ckptQuit = make(chan struct{})
		e.ckptDone = make(chan struct{})
		go e.checkpointLoop(opts.Checkpoint.Every)
	}
	return e
}

// Shards returns the number of registry shards (a power of two).
func (e *Engine) Shards() int { return len(e.shards) }

// WAL returns the engine's shared write-ahead log (used by undo-log
// objects; inspectable in tests).
func (e *Engine) WAL() *wal.Log { return e.log }

// Close shuts down the engine: the background checkpointer (if any) is
// stopped first, then the write-ahead log — staged records are sequenced
// and synced, the flusher (if asynchronous) is stopped, and the durability
// backend is closed. It returns the first backend sync failure, if any.
// Close is idempotent (a second call returns the same result) and safe to
// race with in-flight Commit/Abort calls: a transaction that loses the
// race observes a typed failure wrapping wal.ErrClosed instead of an
// unspecified outcome, with its locks released.
func (e *Engine) Close() error {
	e.closeOnce.Do(func() {
		if e.ckptQuit != nil {
			close(e.ckptQuit)
			<-e.ckptDone
		}
		e.closeErr = e.log.Close()
	})
	return e.closeErr
}

// redoOnly reports whether the engine runs the redo-only discipline.
func (e *Engine) redoOnly() bool { return e.opts.LogDiscipline == wal.DisciplineRedo }

// shardOf returns the shard owning id.
func (e *Engine) shardOf(id history.ObjectID) *engineShard {
	return e.shards[stripe.FNV32a(string(id))&e.mask]
}

// lookup finds a registered object. The hit path performs zero lock
// acquisitions: one atomic pointer load into the shard's copy-on-write
// map, then a read of an immutable snapshot (Metrics.RegistryLockAcqs
// stays at zero to prove it). With Options.LegacyLockedRegistry set, the
// pre-CoW read lock is taken instead — the "before" arm the pipeline
// sweep's acquisition counter compares against.
func (e *Engine) lookup(id history.ObjectID) (*managedObject, bool) {
	sh := e.shardOf(id)
	if e.opts.LegacyLockedRegistry {
		sh.legacyMu.RLock()
		e.Metrics.RegistryLockAcqs.Add(1)
		mo, ok := sh.objects.Get(id)
		sh.legacyMu.RUnlock()
		return mo, ok
	}
	return sh.objects.Get(id)
}

// Register creates an object backed by the machine of ty, locked by rel,
// recovered per kind. Registering a duplicate ID is a programming error.
func (e *Engine) Register(id history.ObjectID, ty adt.Type, rel commute.Relation, kind RecoveryKind) error {
	if e.initErr != nil {
		return e.initErr
	}
	var store recovery.Store
	switch kind {
	case UndoLogRecovery:
		// Mixed-discipline handoffs must fail here, not mis-recover later:
		// the durable artifacts of one discipline are meaningless to the
		// other (a redo engine would replay into a log whose updates it
		// cannot interpret; an undo engine would stage undo records into a
		// winners-only log).
		if d := e.log.Discipline(); e.redoOnly() && d != wal.DisciplineRedo {
			return fmt.Errorf("txn: register %q: redo-only engine over a log with discipline %q (written by an undo-mode engine?)", id, d)
		} else if !e.redoOnly() && d == wal.DisciplineRedo {
			return fmt.Errorf("txn: register %q: undo-logging engine over a log carrying the redo-only discipline marker", id)
		}
		if e.redoOnly() {
			store = recovery.NewRedoOnlyLog(id, ty.Machine(), e.log)
		} else {
			store = recovery.NewUndoLog(id, ty.Machine(), e.log)
		}
	case IntentionsRecovery:
		store = recovery.NewIntentions(id, ty.Machine())
	default:
		return fmt.Errorf("txn: unknown recovery kind %d", int(kind))
	}
	sh := e.shardOf(id)
	mo := &managedObject{
		id:    id,
		table: locking.NewTable(rel),
		store: store,
		rel:   rel,
		kind:  kind,
		rec:   sh.recorder,
	}
	mo.cond = sync.NewCond(&mo.mu)
	// Registration is the cold path: the CowMap serializes writers
	// internally and copies the whole stripe. The legacy write lock is
	// taken unconditionally so the LegacyLockedRegistry arm's readers are
	// genuinely excluded, exactly as the pre-CoW registry excluded them.
	sh.legacyMu.Lock()
	defer sh.legacyMu.Unlock()
	if !sh.objects.Insert(id, mo) {
		return fmt.Errorf("txn: object %q already registered", id)
	}
	return nil
}

// MustRegister is Register for static configuration; it panics on error.
func (e *Engine) MustRegister(id history.ObjectID, ty adt.Type, rel commute.Relation, kind RecoveryKind) {
	if err := e.Register(id, ty, rel, kind); err != nil {
		panic(err)
	}
}

// Object returns the recovery store of a registered object (for
// inspection).
func (e *Engine) Object(id history.ObjectID) (recovery.Store, bool) {
	mo, ok := e.lookup(id)
	if !ok {
		return nil, false
	}
	return mo.store, true
}

// History merges the per-shard event buffers into the totally ordered
// global history. Meaningful mid-run (each shard is snapshotted
// atomically), definitive once the engine is quiescent.
func (e *Engine) History() history.History {
	recs := make([]*history.Recorder, len(e.shards))
	for i, sh := range e.shards {
		recs[i] = sh.recorder
	}
	return history.Merge(recs...)
}

// record appends ev to the owning shard's buffer, stamped with the global
// sequence. Callers hold the object latch, so stamp order agrees with the
// object's execution order.
func (e *Engine) record(mo *managedObject, ev history.Event) {
	if !e.opts.RecordHistory {
		return
	}
	mo.rec.Record(ev)
}

// txnState is the lifecycle of a transaction handle.
type txnState int32

const (
	active txnState = iota
	committed
	aborted
)

// Txn is a transaction handle. A Txn is used by a single goroutine.
type Txn struct {
	id      history.TxnID
	eng     *Engine
	state   atomic.Int32
	touched map[history.ObjectID]bool
	// order preserves first-touch order for deterministic commit sweeps.
	order []history.ObjectID
	// wroteWAL marks that some touched object stages records into the
	// shared log, so Commit/Abort must flush the group-commit batch.
	wroteWAL bool
	// dep is the maximum commit ticket over every object this transaction
	// touched: the durability point of its read-from set. The commit
	// barrier waits for the WAL's durable watermark to cover it (see
	// ReleaseEarlyTracked).
	dep wal.Ticket
	// depTxns (redo-only discipline) is the identity of the read-from set:
	// the last committed writer of every object this transaction touched.
	// Commit stages it, sorted, on the transaction-level commit record
	// (wal.Record.Deps) — the durable reification of the ticket-based
	// dependency above, which restart audits for closure under the winner
	// set. Nil under undo logging: the undo arm's records are unchanged.
	depTxns map[history.TxnID]bool
	// obs is the engine's observer at Begin (nil when disabled), cleared
	// by obsEnd so the end-to-end latency records exactly once however
	// the transaction terminates. begin is its start instant; trace is
	// non-nil only for sampled transactions; stalled marks a commit that
	// hit the dependency-stall gate (it labels the barrier-wait record).
	obs     *obs.Observer
	begin   time.Time
	trace   *obs.TxnTrace
	stalled bool
}

// Begin starts a transaction.
func (e *Engine) Begin() *Txn {
	seq := e.txnSeq.Add(1)
	id := history.TxnID(fmt.Sprintf("T%04d", seq))
	e.Metrics.Begins.Add(1)
	t := &Txn{id: id, eng: e, touched: make(map[history.ObjectID]bool)}
	if o := e.obsv; o != nil {
		t.obs = o
		t.begin = time.Now()
		if tt := o.SampleTxn(seq); tt != nil {
			t.trace = tt
			tt.Instant("begin", t.begin.Sub(o.Epoch).Nanoseconds(),
				map[string]string{"txn": string(id)})
		}
	}
	return t
}

// ID returns the transaction identifier.
func (t *Txn) ID() history.TxnID { return t.id }

// Invoke executes one operation on an object, blocking while conflicting
// locks are held. On deadlock the transaction is chosen as victim, fully
// aborted, and an error wrapping both *locking.ErrDeadlock and ErrAborted
// is returned. On adt.ErrNotEnabled (partial invocation) the transaction
// stays active and the caller may retry, invoke something else, or abort.
func (t *Txn) Invoke(obj history.ObjectID, inv spec.Invocation) (spec.Response, error) {
	if txnState(t.state.Load()) != active {
		return "", fmt.Errorf("txn %s: invoke %s: %w", t.id, inv, ErrNotActive)
	}
	e := t.eng
	mo, ok := e.lookup(obj)
	if !ok {
		return "", fmt.Errorf("txn %s: unknown object %q", t.id, obj)
	}

	mo.mu.Lock()
	blocked := false
	// waitStart/waitHolder capture the first conflict of this invocation:
	// the lock-wait histogram records the full first-block-to-success
	// duration, and the trace labels the span with the first holder seen.
	var waitStart time.Time
	var waitHolder history.TxnID
	for {
		res, err := mo.store.Peek(t.id, inv)
		if err != nil {
			mo.mu.Unlock()
			if errors.Is(err, adt.ErrNotEnabled) {
				e.Metrics.NotEnabled.Add(1)
				// Nothing was recorded or locked; the transaction stays
				// active and the caller may retry, do something else, or
				// abort.
				return "", fmt.Errorf("txn %s: %s on %s: %w", t.id, inv, obj, err)
			}
			return "", fmt.Errorf("txn %s: peek %s on %s: %w", t.id, inv, obj, err)
		}
		op := spec.Op(inv, res)
		holders := mo.table.Conflicting(op, t.id)
		if len(holders) == 0 {
			applied, err := mo.store.Apply(t.id, inv)
			if err != nil {
				mo.mu.Unlock()
				return "", fmt.Errorf("txn %s: apply %s on %s: %w", t.id, inv, obj, err)
			}
			if applied != res {
				mo.mu.Unlock()
				return "", fmt.Errorf("txn %s: response changed under latch: %q vs %q", t.id, res, applied)
			}
			mo.table.Add(t.id, op)
			t.touch(mo)
			// Inherit the object's last committed writer as a durability
			// dependency (checked on every operation, not just first
			// touch: an unconflicting commit may advance the ticket
			// between two of this transaction's operations).
			if mo.commitTicket > t.dep {
				t.dep = mo.commitTicket
			}
			if e.redoOnly() && mo.commitWriter != "" && mo.commitWriter != t.id {
				if t.depTxns == nil {
					t.depTxns = make(map[history.TxnID]bool)
				}
				t.depTxns[mo.commitWriter] = true
			}
			// Record the completed operation under the latch so the global
			// history preserves the object's true execution order.
			// Invocations are recorded only when they complete, so failed
			// or retried invocations never leave a dangling pending
			// invocation in the history.
			e.record(mo, history.Event{Kind: history.Invoke, Obj: obj, Txn: t.id, Inv: inv})
			e.record(mo, history.Event{Kind: history.Respond, Obj: obj, Txn: t.id, Res: res})
			mo.mu.Unlock()
			e.Metrics.Operations.Add(1)
			if blocked {
				e.Metrics.Blocked.Add(1)
				if o := t.obs; o != nil {
					waitNS := time.Since(waitStart).Nanoseconds()
					o.RecordLockWait(waitNS)
					if t.trace != nil {
						end := time.Since(o.Epoch).Nanoseconds()
						t.trace.Span("block", end-waitNS, end, map[string]string{
							"obj": string(obj), "holder": string(waitHolder)})
					}
				}
			}
			return res, nil
		}
		// Conflict: declare the wait, check for deadlock, and sleep.
		if err := e.detector.AddWaits(t.id, holders); err != nil {
			mo.mu.Unlock()
			e.Metrics.Deadlocks.Add(1)
			if t.trace != nil {
				t.trace.Instant("deadlock", time.Since(t.obs.Epoch).Nanoseconds(),
					map[string]string{"obj": string(obj)})
			}
			abortErr := t.Abort()
			if abortErr != nil && !errors.Is(abortErr, ErrNotActive) {
				return "", fmt.Errorf("txn %s: deadlock victim abort failed: %w", t.id, abortErr)
			}
			return "", fmt.Errorf("txn %s: %w: %w", t.id, err, ErrAborted)
		}
		if t.obs != nil && !blocked {
			waitStart = time.Now()
			waitHolder = holders[0]
		}
		blocked = true
		e.Metrics.BlockEvents.Add(1)
		mo.cond.Wait()
		e.detector.ClearWaits(t.id)
	}
}

func (t *Txn) touch(mo *managedObject) {
	if !t.touched[mo.id] {
		t.touched[mo.id] = true
		t.order = append(t.order, mo.id)
	}
	if mo.kind == UndoLogRecovery {
		t.wroteWAL = true
	}
}

// releaseLocks releases every lock the transaction holds at every touched
// object (waking waiters) and clears its wait edges in the deadlock
// detector. It runs on every Commit/Abort exit path — success or error —
// so no path can leak locks or leave stale waits-for edges behind. A
// non-zero commit ticket is published to each object while its latch is
// held: a transaction that acquires the released locks afterwards reads
// the ticket on its next operation and inherits this commit as a
// durability dependency.
func (t *Txn) releaseLocks(commit wal.Ticket) {
	e := t.eng
	for _, obj := range t.order {
		mo, ok := e.lookup(obj)
		if !ok {
			continue // vanished object: nothing left to release there
		}
		mo.mu.Lock()
		if commit > mo.commitTicket {
			mo.commitTicket = commit
			mo.commitWriter = t.id
		}
		mo.table.Release(t.id)
		mo.cond.Broadcast()
		mo.mu.Unlock()
	}
	e.detector.ClearWaits(t.id)
}

// terminate abandons a commit that can no longer complete: every
// participant whose store has not already committed is aborted in memory
// (its effects undone per its recovery discipline, a terminal Abort event
// recorded), every lock is released, wait edges are cleared, and any
// staged compensation records are flushed. The phase-2a sweep commits
// participants in objs order, so the first `committed` entries are the
// ones whose store.Commit already ran — their effects are permanent and
// they keep their terminal Commit event — and a mid-sweep failure leaves
// every object with exactly one terminal history event instead of a
// transaction frozen half-committed with its effects visible and no
// terminal record. The transaction ends in the aborted state; cause is
// returned unchanged.
func (t *Txn) terminate(objs []history.ObjectID, committed int, cause error) error {
	e := t.eng
	t.state.Store(int32(aborted))
	for i, obj := range objs {
		mo, ok := e.lookup(obj)
		if !ok {
			continue // vanished object: nothing left to terminate there
		}
		mo.mu.Lock()
		if i >= committed {
			if err := mo.store.Abort(t.id); err == nil {
				e.record(mo, history.Event{Kind: history.Abort, Obj: obj, Txn: t.id})
			}
			// A failed undo (e.g. a log closed mid-shutdown) still
			// releases below; the cause already reports the failure.
		}
		mo.table.Release(t.id)
		mo.cond.Broadcast()
		mo.mu.Unlock()
	}
	e.detector.ClearWaits(t.id)
	if t.wroteWAL {
		// Push the staged compensation records. A flush failure here means
		// the terminated transaction's undo trail may not be durable; the
		// caller's cause stays primary, with the flush failure joined so
		// neither is silent.
		if ferr := e.log.Flush(); ferr != nil {
			cause = fmt.Errorf("%w (and flushing compensation records: %w)", cause, ferr)
		}
	}
	t.obsEnd("terminated")
	return cause
}

// Commit commits the transaction at every touched object using a two-phase
// sweep: prepare (validate) all objects, then commit at each while still
// holding its locks, stage the transaction-level commit record, and
// release locks per the engine's ReleasePolicy — either before the
// durability barrier with the commit ticket published to every touched
// object (ReleaseEarlyTracked), or only after the backend acknowledges the
// batch (ReleaseAfterAck). With the single-process engine the prepare
// phase cannot fail after successful operations, but the structure mirrors
// the atomic-commitment protocols the paper's model assumes.
//
// The wal.TxnCommitRec staged between the per-object sweep and the lock
// release is the transaction's single durable commit point: restart is
// presumed-abort, so the transaction survives a crash if and only if this
// record reached the backend (the per-object CommitRecs are redo hints
// only). Staging it before any lock is released means every transaction
// that observes this one's committed state stages its own records — and
// its own TxnCommitRec — strictly later, so a durable log prefix can never
// contain a dependent winner without its predecessor.
//
// Commit is the group-commit point: the flush barrier batches this
// transaction's staged records — and those of every concurrently
// committing transaction — into one contiguous LSN assignment, returning
// only after the batch reaches the log's durability backend; the barrier
// additionally waits until the durable watermark covers the transaction's
// dependency ticket (the commits it read from). A backend failure is
// reported as ErrDurability. If the failure precedes this transaction's
// in-memory commit point and its read-from set is unsynced, the
// transaction is terminated through the abort path (the error also wraps
// ErrAborted, counted in Metrics.DurabilityAborts); past that point it is
// committed in memory with the durable log behind (counted in
// Metrics.DurabilityFailures). Neither outcome is ever a clean
// acknowledgement on top of an unsynced loser.
func (t *Txn) Commit() error {
	if !t.state.CompareAndSwap(int32(active), int32(committed)) {
		return fmt.Errorf("txn %s: commit: %w", t.id, ErrNotActive)
	}
	e := t.eng
	pol := e.opts.ReleasePolicy
	sharded := e.opts.CommitPipeline == PipelineSharded
	o := t.obs
	start := time.Now()
	hold := func() {
		d := time.Since(start).Nanoseconds()
		e.Metrics.CommitHoldNS.Add(d)
		o.RecordCommitHold(d)
	}
	// The sweep (and terminate's already-committed bookkeeping) follows
	// shard-grouped order under the sharded pipeline, plain object-ID
	// order under the sequential one; objs is always the flat sweep order.
	var groups []commitGroup
	var objs []history.ObjectID
	if sharded {
		groups = t.shardGroups()
		for _, g := range groups {
			objs = append(objs, g.objs...)
		}
	} else {
		objs = t.sortedTouched()
	}
	// Phase 1: prepare — verify every participant is still registered. A
	// failure here terminates cleanly: nothing has committed yet, so every
	// participant is aborted and the transaction leaves no effects behind.
	for _, obj := range objs {
		if _, ok := e.lookup(obj); !ok {
			hold()
			return t.terminate(objs, 0,
				fmt.Errorf("txn %s: prepare: object %q vanished", t.id, obj))
		}
	}
	// Durability gate: a transaction whose read-from set is not yet
	// durable is ordered behind it (DependencyStalls measures how often
	// early release actually ran ahead of the log). If the backend has
	// already failed, that dependency can never become durable —
	// terminate through the abort path instead of committing in memory on
	// top of an unsynced loser.
	if pol != releaseEarlyUnsafe && t.dep > 0 && !e.log.IsDurable(t.dep) {
		e.Metrics.DependencyStalls.Add(1)
		t.stalled = true
		if err := e.log.Err(); err != nil {
			e.Metrics.DurabilityAborts.Add(1)
			hold()
			return t.terminate(objs, 0,
				fmt.Errorf("txn %s: read from a commit the WAL backend never persisted: %w: %w: %w",
					t.id, ErrDurability, ErrAborted, err))
		}
	}
	// Sharded pipeline, staging phase: every shard's per-object commit
	// records are staged up front — one WAL stripe acquisition per shard
	// through the batch accessor — outside the checkpoint gate. Staging
	// discharges nothing: a fuzzy capture interleaving here still sees
	// every undo chain intact (the transaction is captured as in-flight),
	// and restart decides winners by the transaction-level record alone
	// (per-object CommitRecs are redo hints), so hoisting the staging out
	// narrows the gate hold to the discharge→decision window below. A
	// staging failure terminates with nothing committed: every chain is
	// intact for a clean abort.
	// stageNS accumulates the WAL staging cost of this commit (the batch
	// staging below plus the transaction-level record) for the WAL-stage
	// histogram.
	var stageNS int64
	if sharded && t.wroteWAL {
		var stage0 time.Time
		if o != nil {
			stage0 = time.Now()
		}
		for _, g := range groups {
			var recs []wal.Record
			for _, obj := range g.objs {
				mo, ok := e.lookup(obj)
				if !ok {
					hold()
					return t.terminate(objs, 0,
						fmt.Errorf("txn %s: commit: object %q vanished", t.id, obj))
				}
				if bc, ok := mo.store.(recovery.BatchCommitter); ok {
					recs = append(recs, bc.CommitRecords(t.id)...)
				}
			}
			if _, err := e.log.AppendBatchAsync(recs); err != nil {
				hold()
				return t.terminate(objs, 0,
					fmt.Errorf("txn %s: staging commit records: %w", t.id, err))
			}
		}
		if o != nil {
			stageNS += time.Since(stage0).Nanoseconds()
		}
	}
	// Phase 2a: commit at each object while holding its locks. The
	// per-object CommitRec staged by an undo-log store (batched above
	// under the sharded pipeline, staged inline by store.Commit under the
	// sequential one) is a redo hint; the commit decision itself is the
	// transaction-level record below. A mid-sweep failure terminates:
	// already-committed participants keep their terminal Commit event, the
	// rest are aborted, and no transaction-level commit record is staged —
	// restart sees a loser.
	//
	// The checkpoint gate is held (shared) across the discharge sweep and
	// the staging of the transaction-level commit record: a fuzzy
	// checkpoint capture (which holds it exclusively) can therefore never
	// observe an object whose chain this transaction already discharged
	// while the commit decision is still unstaged — the window that would
	// let a snapshot bake in effects that a crash could make un-undoable.
	var gate0 time.Time
	if t.trace != nil {
		gate0 = time.Now()
	}
	e.ckptGate.RLock()
	gated := true
	ungate := func() {
		if gated {
			gated = false
			e.ckptGate.RUnlock()
			if t.trace != nil {
				t.trace.Span("ckpt-gate", gate0.Sub(o.Epoch).Nanoseconds(),
					time.Since(o.Epoch).Nanoseconds(), nil)
			}
		}
	}
	defer ungate()
	committed := 0
	for _, obj := range objs {
		mo, ok := e.lookup(obj)
		if !ok {
			ungate()
			hold()
			return t.terminate(objs, committed,
				fmt.Errorf("txn %s: commit: object %q vanished", t.id, obj))
		}
		mo.mu.Lock()
		if bc, isBatch := mo.store.(recovery.BatchCommitter); sharded && isBatch {
			// Records already staged above; the discharge cannot fail.
			bc.CommitStaged(t.id)
		} else if err := mo.store.Commit(t.id); err != nil {
			mo.mu.Unlock()
			ungate()
			hold()
			return t.terminate(objs, committed,
				fmt.Errorf("txn %s: commit at %s: %w", t.id, obj, err))
		}
		e.record(mo, history.Event{Kind: history.Commit, Obj: obj, Txn: t.id})
		mo.mu.Unlock()
		committed++
	}
	// Enroll in every touched shard's ordered-release protocol before the
	// commit ticket exists: a later committer whose release must wait on
	// this transaction is guaranteed to observe the enrollment, because
	// its own (larger) ticket cannot be assigned before this enrollment —
	// enroll happens-before our staging in the same total stamp order.
	enrolled := sharded && t.wroteWAL && pol != releaseEarlyUnsafe
	if enrolled {
		for _, g := range groups {
			g.sh.enrollRelease(t.id)
		}
	}
	// The durable commit point, staged exactly once, after every object's
	// commit processing and before any lock release.
	var ticket wal.Ticket
	if t.wroteWAL {
		rec := wal.Record{Kind: wal.TxnCommitRec, Txn: t.id}
		if e.redoOnly() && len(t.depTxns) > 0 {
			// The redo-only discipline reifies the read-from set durably:
			// restart audits every winner's Deps for closure under the
			// winner set (consistent-cut batching makes any violation a
			// torn log). Sorted, so the record is deterministic.
			deps := make([]history.TxnID, 0, len(t.depTxns))
			for d := range t.depTxns {
				deps = append(deps, d)
			}
			sort.Slice(deps, func(i, j int) bool { return deps[i] < deps[j] })
			rec.Deps = deps
		}
		var stage0 time.Time
		if o != nil {
			stage0 = time.Now()
		}
		tk, err := e.log.AppendAsync(rec)
		if o != nil {
			stageNS += time.Since(stage0).Nanoseconds()
		}
		if err != nil {
			// The log closed under us (Commit racing Engine.Close): the
			// transaction is committed in memory but its commit decision
			// never reached the log. No ticket will ever exist, so the
			// enrollments are withdrawn and the locks released unordered.
			if enrolled {
				for _, g := range groups {
					g.sh.withdrawRelease(t.id)
				}
			}
			ungate()
			t.releaseLocks(0)
			hold()
			e.Metrics.DurabilityFailures.Add(1)
			t.obsEnd("durability-failure")
			return fmt.Errorf("txn %s: committed in memory but WAL closed: %w: %w",
				t.id, ErrDurability, err)
		}
		ticket = tk
		if o != nil {
			o.RecordWALStage(stageNS)
			if t.trace != nil {
				t.trace.Instant("stage", time.Since(o.Epoch).Nanoseconds(),
					map[string]string{"ticket": strconv.FormatInt(int64(ticket), 10)})
			}
		}
	}
	if enrolled {
		for _, g := range groups {
			g.sh.resolveRelease(t.id, ticket)
		}
	}
	ungate()
	// barrier makes the commit durable: flush the group-commit batch,
	// surface any sticky backend failure, and wait until the durable
	// watermark covers both this transaction's own commit record and its
	// dependency ticket. With consistent-cut batches the dependency is
	// sequenced no later than the transaction's own records, so the wait
	// degenerates to a check — unless the backend failed, in which case it
	// returns the sticky error instead of acknowledging.
	barrier := func() error {
		if !t.wroteWAL && t.dep == 0 {
			return nil
		}
		var b0 time.Time
		if o != nil {
			b0 = time.Now()
		}
		err := func() error {
			if err := e.log.Flush(); err != nil {
				return err
			}
			if err := e.log.Err(); err != nil {
				return err
			}
			dep := t.dep
			if ticket > dep {
				dep = ticket
			}
			return e.log.WaitDurable(dep)
		}()
		if o != nil {
			d := time.Since(b0).Nanoseconds()
			o.RecordBarrierWait(d, t.stalled)
			if t.trace != nil {
				end := time.Since(o.Epoch).Nanoseconds()
				t.trace.Span("barrier", end-d, end, nil)
			}
		}
		return err
	}
	if pol == ReleaseAfterAck {
		// Hold every lock across the barrier: no other transaction can
		// observe this commit's state before it is durable.
		err := barrier()
		if enrolled {
			t.releaseLocksOrdered(groups, ticket)
		} else {
			t.releaseLocks(ticket)
		}
		hold()
		if err != nil {
			e.Metrics.DurabilityFailures.Add(1)
			t.obsEnd("durability-failure")
			return fmt.Errorf("txn %s: committed in memory but WAL backend failed: %w: %w",
				t.id, ErrDurability, err)
		}
		e.Metrics.Commits.Add(1)
		t.obsEnd("commit")
		return nil
	}
	// Phase 2b: release locks and wake waiters before the barrier (early
	// release). The tracked policy publishes the commit ticket so
	// dependents inherit this commit's durability point; the legacy unsafe
	// policy publishes nothing — dependents commit blind.
	if pol == releaseEarlyUnsafe {
		t.releaseLocks(0)
	} else if enrolled {
		t.releaseLocksOrdered(groups, ticket)
	} else {
		t.releaseLocks(ticket)
	}
	hold()
	var err error
	if pol == releaseEarlyUnsafe {
		if t.wroteWAL {
			if err = e.log.Flush(); err == nil {
				err = e.log.Err()
			}
		}
	} else {
		err = barrier()
	}
	if err != nil {
		// The transaction is committed in memory (locks are released,
		// effects visible) but the durable log is behind: fail loudly
		// rather than ack a commit the backend never persisted.
		e.Metrics.DurabilityFailures.Add(1)
		t.obsEnd("durability-failure")
		return fmt.Errorf("txn %s: committed in memory but WAL backend failed: %w: %w",
			t.id, ErrDurability, err)
	}
	e.Metrics.Commits.Add(1)
	t.obsEnd("commit")
	return nil
}

// Abort aborts the transaction at every touched object, undoing its
// effects per each object's recovery discipline, releasing its locks on
// every exit path, then flushes the staged compensation records. The
// sweep is best-effort: a failure at one object (vanished, or an undo the
// store could not log — a log closed mid-shutdown) no longer abandons the
// rest, every other participant is still undone and released before the
// first error is returned. The failed participant itself keeps whatever
// effects its store could not undo (its locks are released regardless);
// the returned error reports it, and on the shutdown path the post-crash
// restart — not the dying process — is what terminates it. As with
// Commit, a WAL backend failure after a completed in-memory abort is
// reported as ErrDurability and counted in Metrics.DurabilityFailures.
func (t *Txn) Abort() error {
	if !t.state.CompareAndSwap(int32(active), int32(aborted)) {
		return fmt.Errorf("txn %s: abort: %w", t.id, ErrNotActive)
	}
	e := t.eng
	var firstErr error
	for _, obj := range t.sortedTouched() {
		mo, ok := e.lookup(obj)
		if !ok {
			if firstErr == nil {
				firstErr = fmt.Errorf("txn %s: abort: object %q vanished", t.id, obj)
			}
			continue
		}
		mo.mu.Lock()
		if err := mo.store.Abort(t.id); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("txn %s: abort at %s: %w", t.id, obj, err)
			}
		} else {
			e.record(mo, history.Event{Kind: history.Abort, Obj: obj, Txn: t.id})
		}
		mo.table.Release(t.id)
		mo.cond.Broadcast()
		mo.mu.Unlock()
	}
	e.detector.ClearWaits(t.id)
	if t.wroteWAL {
		ferr := e.log.Flush()
		if ferr == nil {
			ferr = e.log.Err()
		}
		if firstErr == nil && ferr != nil {
			e.Metrics.DurabilityFailures.Add(1)
			t.obsEnd("durability-failure")
			return fmt.Errorf("txn %s: aborted in memory but WAL backend failed: %w: %w",
				t.id, ErrDurability, ferr)
		}
	}
	t.obsEnd("abort")
	if firstErr != nil {
		return firstErr
	}
	e.Metrics.Aborts.Add(1)
	return nil
}

func (t *Txn) sortedTouched() []history.ObjectID {
	objs := append([]history.ObjectID(nil), t.order...)
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	return objs
}

// commitGroup is one registry shard's slice of a transaction's touched
// objects, in ascending object-ID order. Group order is ascending shard
// index, so every committer walks shards the same way — the property
// that lets shard-by-shard release pipeline without circular waits.
type commitGroup struct {
	sh   *engineShard
	objs []history.ObjectID
}

// shardGroups partitions the touched set by registry shard, groups in
// ascending shard-index order and objects in ascending ID order within
// each group — the deterministic sweep order of the sharded commit
// pipeline.
func (t *Txn) shardGroups() []commitGroup {
	e := t.eng
	byShard := make(map[uint32][]history.ObjectID)
	for _, obj := range t.sortedTouched() {
		i := stripe.FNV32a(string(obj)) & e.mask
		byShard[i] = append(byShard[i], obj)
	}
	idxs := make([]uint32, 0, len(byShard))
	for i := range byShard {
		idxs = append(idxs, i)
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	groups := make([]commitGroup, 0, len(idxs))
	for _, i := range idxs {
		groups = append(groups, commitGroup{sh: e.shards[i], objs: byShard[i]})
	}
	return groups
}

// releaseLocksOrdered releases the transaction's locks shard by shard in
// commit-LSN order: at each touched shard the committer waits until every
// shard committer with a smaller commit ticket (and every one whose
// ticket is still unresolved) has released there first, then releases its
// own locks and passes the turn. Commit tickets are stage stamps —
// totally ordered and consistent with LSN order — so within every shard,
// lock release order equals commit-LSN order, while different shards
// release in parallel (a committer done with shard i moves on while its
// successor releases i behind it). The commit ticket is published to each
// object under its latch exactly as releaseLocks does.
func (t *Txn) releaseLocksOrdered(groups []commitGroup, commit wal.Ticket) {
	e := t.eng
	for _, g := range groups {
		g.sh.awaitReleaseTurn(t.id)
		for _, obj := range g.objs {
			mo, ok := e.lookup(obj)
			if !ok {
				continue // vanished object: nothing left to release there
			}
			mo.mu.Lock()
			if commit > mo.commitTicket {
				mo.commitTicket = commit
				mo.commitWriter = t.id
			}
			mo.table.Release(t.id)
			mo.cond.Broadcast()
			mo.mu.Unlock()
		}
		g.sh.finishRelease(t.id)
	}
	e.detector.ClearWaits(t.id)
}
