package txn_test

// Engine-level fuzzy-checkpoint tests: checkpoints taken while concurrent
// transactions run (the fuzzy part), snapshot shape (frontier below every
// marker, captured objects covered), log truncation accounting, the
// background interval checkpointer's lifecycle, and failure modes (no
// store, closed engine).

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/checkpoint"
	"repro/internal/history"
	"repro/internal/txn"
	"repro/internal/wal"
)

func ckptObjID(i int) history.ObjectID {
	return history.ObjectID(fmt.Sprintf("ck%02d", i))
}

func newCkptEngine(t *testing.T, store checkpoint.Store, every time.Duration, objects int) *txn.Engine {
	t.Helper()
	log, err := wal.Open(wal.Config{Async: true, BatchInterval: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	e := txn.NewEngine(txn.Options{
		RecordHistory: true,
		Shards:        4,
		WAL:           log,
		Checkpoint:    &txn.CheckpointOptions{Store: store, Every: every},
	})
	ba := adt.BankAccount{InitialBalance: 100, MaxBalance: 1 << 20, Amounts: []int{1, 2, 3}}
	rel := adt.DefaultBankAccount().NRBC()
	for i := 0; i < objects; i++ {
		e.MustRegister(ckptObjID(i), ba, rel, txn.UndoLogRecovery)
	}
	return e
}

func runCkptWorkers(e *txn.Engine, workers, txns, objects int, seed int64) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*7919))
			for i := 0; i < txns; i++ {
				tx := e.Begin()
				ok := true
				for op := 0; op < 3; op++ {
					obj := ckptObjID(rng.Intn(objects))
					var err error
					if rng.Intn(2) == 0 {
						_, err = tx.Invoke(obj, adt.Deposit(1+rng.Intn(3)))
					} else {
						_, err = tx.Invoke(obj, adt.Withdraw(1+rng.Intn(3)))
					}
					if err != nil {
						if !errors.Is(err, txn.ErrAborted) {
							_ = tx.Abort()
						}
						ok = false
						break
					}
					runtime.Gosched()
				}
				if !ok {
					continue
				}
				if rng.Intn(4) == 0 {
					_ = tx.Abort()
				} else {
					_ = tx.Commit()
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestCheckpointFuzzySnapshotShape takes manual checkpoints in the middle
// of a concurrent workload and checks the snapshot invariants: every
// undo-log object captured, the frontier (begin marker) below every
// per-object marker, the durable watermark at completion covering the last
// marker, truncation reclaiming exactly the pre-frontier prefix, and the
// engine still verifying and committing afterwards.
func TestCheckpointFuzzySnapshotShape(t *testing.T) {
	const objects = 6
	store := checkpoint.NewMemStore()
	e := newCkptEngine(t, store, 0, objects)
	defer e.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		runCkptWorkers(e, 4, 30, objects, 7)
	}()
	var snap *checkpoint.Snapshot
	var err error
	for i := 0; i < 3; i++ {
		snap, err = e.Checkpoint()
		if err != nil {
			t.Errorf("checkpoint %d: %v", i, err)
		}
		runtime.Gosched()
	}
	wg.Wait()
	if err != nil || snap == nil {
		t.Fatalf("no snapshot: %v", err)
	}
	if got := e.Metrics.Checkpoints.Load(); got != 3 {
		t.Fatalf("Metrics.Checkpoints = %d, want 3", got)
	}
	if len(snap.Objects) != objects {
		t.Fatalf("snapshot covers %d objects, want %d", len(snap.Objects), objects)
	}
	for _, os := range snap.Objects {
		if os.MarkerLSN <= snap.Frontier {
			t.Errorf("object %s marker %d not past frontier %d", os.Obj, os.MarkerLSN, snap.Frontier)
		}
		if snap.DurableLSN < os.MarkerLSN {
			t.Errorf("object %s marker %d past completion watermark %d", os.Obj, os.MarkerLSN, snap.DurableLSN)
		}
	}
	latest, err := store.Latest()
	if err != nil || latest == nil || latest.ID != snap.ID {
		t.Fatalf("store Latest = %+v, %v; want %s", latest, err, snap.ID)
	}
	// Truncation reclaimed the prefix: the log's base advanced to the last
	// checkpoint's frontier.
	if got := e.WAL().Base(); got != snap.Frontier-1 {
		t.Fatalf("log base = %d, want frontier-1 = %d", got, snap.Frontier-1)
	}
	if got := e.Metrics.TruncatedRecords.Load(); got != int64(snap.Frontier-1) {
		t.Fatalf("Metrics.TruncatedRecords = %d, want %d", got, int64(snap.Frontier-1))
	}
	// The engine keeps working after checkpoints + truncation.
	tx := e.Begin()
	if _, err := tx.Invoke(ckptObjID(0), adt.Deposit(1)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := history.WellFormed(e.History()); err != nil {
		t.Fatalf("history malformed after checkpoints: %v", err)
	}
}

// TestCheckpointIntervalGoroutine: the engine-owned background
// checkpointer takes checkpoints on its own and is stopped by Close
// (idempotent, no goroutine leak under -race).
func TestCheckpointIntervalGoroutine(t *testing.T) {
	const objects = 4
	store := checkpoint.NewMemStore()
	e := newCkptEngine(t, store, 200*time.Microsecond, objects)
	runCkptWorkers(e, 3, 40, objects, 11)
	deadline := time.Now().Add(2 * time.Second)
	for e.Metrics.Checkpoints.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if e.Metrics.Checkpoints.Load() == 0 {
		t.Fatal("background checkpointer took no checkpoint")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal("second Close not idempotent:", err)
	}
	if s, err := store.Latest(); err != nil || s == nil {
		t.Fatalf("no snapshot saved: %v, %v", s, err)
	}
}

// TestCheckpointFailureModes: no configured store, and a closed engine,
// both fail loudly without side effects.
func TestCheckpointFailureModes(t *testing.T) {
	e := txn.NewEngine(txn.Options{})
	if _, err := e.Checkpoint(); err == nil {
		t.Fatal("checkpoint without a store must fail")
	}

	store := checkpoint.NewMemStore()
	e2 := newCkptEngine(t, store, 0, 2)
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Checkpoint(); !errors.Is(err, wal.ErrClosed) {
		t.Fatalf("checkpoint on closed engine: err = %v, want wal.ErrClosed", err)
	}
	if got := e2.Metrics.Checkpoints.Load(); got != 0 {
		t.Fatalf("failed checkpoints counted: %d", got)
	}
}
