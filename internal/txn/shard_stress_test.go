package txn

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/adt"
	"repro/internal/atomicity"
	"repro/internal/commute"
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/locking"
	"repro/internal/recovery"
	"repro/internal/spec"
)

// TestShardNormalization pins the power-of-two rounding of Options.Shards.
func TestShardNormalization(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 8: 8, 9: 16, 300: 256}
	for in, want := range cases {
		if got := NewEngine(Options{Shards: in}).Shards(); got != want {
			t.Errorf("Shards(%d) = %d, want %d", in, got, want)
		}
	}
	if got := NewEngine(Options{}).Shards(); got < 1 || got&(got-1) != 0 {
		t.Errorf("default shard count %d not a positive power of two", got)
	}
}

// TestShardedRegistryPlacement: objects land on distinct shards of a
// many-shard engine and remain reachable, and duplicate registration is
// still rejected within a shard.
func TestShardedRegistryPlacement(t *testing.T) {
	ba := adt.DefaultBankAccount()
	e := NewEngine(Options{RecordHistory: true, Shards: 16})
	if e.Shards() != 16 {
		t.Fatalf("Shards = %d", e.Shards())
	}
	for i := 0; i < 32; i++ {
		id := history.ObjectID(string(rune('A'+i%26)) + string(rune('0'+i/26)))
		if err := e.Register(id, ba, ba.NRBC(), UndoLogRecovery); err != nil {
			t.Fatal(err)
		}
		if _, ok := e.Object(id); !ok {
			t.Fatalf("object %s not found after register", id)
		}
		if err := e.Register(id, ba, ba.NRBC(), UndoLogRecovery); err == nil {
			t.Fatalf("duplicate %s accepted", id)
		}
	}
}

// TestShardedDeadlockVictim reruns the deterministic two-object deadlock
// on a sharded engine: the cycle spans objects on different shards, the
// striped detector still chooses exactly one victim, and the merged
// history stays well-formed.
func TestShardedDeadlockVictim(t *testing.T) {
	kv := adt.DefaultKVStore()
	e := NewEngine(Options{RecordHistory: true, Shards: 8})
	e.MustRegister("X", kv, kv.NFC(), IntentionsRecovery)
	e.MustRegister("Y", kv, kv.NFC(), IntentionsRecovery)
	t1 := e.Begin()
	t2 := e.Begin()
	if _, err := t1.Invoke("X", adt.Put("x", "0")); err != nil {
		t.Fatal(err)
	}
	if _, err := t2.Invoke("Y", adt.Put("x", "1")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); _, errs[0] = t1.Invoke("Y", adt.Put("x", "0")) }()
	go func() { defer wg.Done(); _, errs[1] = t2.Invoke("X", adt.Put("x", "1")) }()
	wg.Wait()
	var dl *locking.ErrDeadlock
	victims := 0
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.As(err, &dl) && errors.Is(err, ErrAborted) {
			victims++
		} else {
			t.Fatalf("errs[%d] = %v (not a deadlock abort)", i, err)
		}
	}
	if victims != 1 {
		t.Fatalf("expected exactly one deadlock victim, got %d (%v)", victims, errs)
	}
	for i, tx := range []*Txn{t1, t2} {
		if errs[i] == nil {
			if err := tx.Commit(); err != nil {
				t.Fatalf("survivor commit: %v", err)
			}
		}
	}
	if err := history.WellFormed(e.History()); err != nil {
		t.Fatalf("history not well-formed: %v", err)
	}
}

// TestShardedEngineStressRace drives 10 goroutines over 16 objects (half
// undo-log/NRBC, half intentions/NFC) on an 8-shard engine through
// commits, voluntary aborts, and any deadlock victims the interleaving
// produces, then replays the merged per-shard history through the full
// verification stack: well-formedness, per-object acceptance by the
// abstract automaton, and sampled dynamic atomicity. Run under -race this
// is the proof that the sharded refactor preserves the Theorem 9/10
// correctness story.
func TestShardedEngineStressRace(t *testing.T) {
	ba := adt.DefaultBankAccount()
	const objects = 16
	const workers = 10
	const txnsPerWorker = 8

	e := NewEngine(Options{RecordHistory: true, Shards: 8})
	ids := make([]history.ObjectID, objects)
	rels := map[history.ObjectID]commute.Relation{}
	views := map[history.ObjectID]core.View{}
	objSpecs := map[history.ObjectID]spec.Enumerable{}
	sharedSpec := verifySpec()
	for i := range ids {
		ids[i] = history.ObjectID(string(rune('a'+i)) + "-acct")
		if i%2 == 0 {
			e.MustRegister(ids[i], ba, ba.NRBC(), UndoLogRecovery)
			rels[ids[i]] = ba.NRBC()
			views[ids[i]] = core.UIP
		} else {
			e.MustRegister(ids[i], ba, ba.NFC(), IntentionsRecovery)
			rels[ids[i]] = ba.NFC()
			views[ids[i]] = core.DU
		}
		objSpecs[ids[i]] = sharedSpec
	}

	// Seed every account so withdrawals can succeed.
	seed := e.Begin()
	for _, id := range ids {
		if _, err := seed.Invoke(id, adt.Deposit(6)); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(31*w) + 5))
			for i := 0; i < txnsPerWorker; i++ {
				tx := e.Begin()
				failed := false
				steps := 2 + rng.Intn(3)
				for s := 0; s < steps; s++ {
					id := ids[rng.Intn(objects)]
					var err error
					switch rng.Intn(3) {
					case 0:
						_, err = tx.Invoke(id, adt.Deposit(1+rng.Intn(2)))
					case 1:
						_, err = tx.Invoke(id, adt.Withdraw(1+rng.Intn(2)))
					default:
						_, err = tx.Invoke(id, adt.Balance())
					}
					if err != nil {
						// Deadlock victims are already aborted; anything
						// else voluntarily aborts.
						if !errors.Is(err, ErrAborted) {
							_ = tx.Abort()
						}
						failed = true
						break
					}
					// Force interleaving so locks are genuinely contended
					// even at GOMAXPROCS=1.
					runtime.Gosched()
				}
				if failed {
					continue
				}
				if rng.Intn(5) == 0 {
					_ = tx.Abort()
				} else if err := tx.Commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	m := &e.Metrics
	if m.Commits.Load()+m.Aborts.Load() != m.Begins.Load() {
		t.Errorf("transaction conservation violated: %d begun, %d committed, %d aborted",
			m.Begins.Load(), m.Commits.Load(), m.Aborts.Load())
	}
	if m.Commits.Load() == 0 || m.Aborts.Load() == 0 {
		t.Fatalf("stress must exercise both commits (%d) and aborts (%d)",
			m.Commits.Load(), m.Aborts.Load())
	}

	h := e.History()
	if err := history.WellFormed(h); err != nil {
		t.Fatalf("merged history not well-formed: %v\n%s", err, h)
	}
	for id, sp := range objSpecs {
		proj := h.ProjectObj(id)
		ok, idx, reason := core.Accepts(id, sp, views[id], rels[id], proj)
		if !ok {
			t.Fatalf("object %s: merged history rejected by abstract model at event %d: %s\n%s",
				id, idx, reason, proj)
		}
	}
	specs := atomicity.Specs{}
	for id, sp := range objSpecs {
		specs[id] = sp
	}
	rng := rand.New(rand.NewSource(99))
	da, viol, err := atomicity.DynamicAtomicSampled(h, specs, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !da {
		t.Fatalf("merged history not dynamic atomic: %v\n%s", viol, h)
	}

	// The group-committed log must replay: Restart redoes each object's
	// records in LSN order, so batch sequencing must have preserved
	// per-object execution order even across transactions. The restarted
	// state must equal the live committed state (no transactions are
	// in-flight, so there are no losers to undo).
	for i, id := range ids {
		if i%2 != 0 {
			continue // intentions objects do not log
		}
		restarted, err := recovery.Restart(id, ba.Machine(), e.WAL())
		if err != nil {
			t.Fatalf("restart %s from group-committed log: %v", id, err)
		}
		store, _ := e.Object(id)
		if got, want := restarted.CommittedValue().Encode(), store.CommittedValue().Encode(); got != want {
			t.Fatalf("restart %s: state %s, live state %s", id, got, want)
		}
	}
}

// TestMergedHistoryMatchesShardBuffers: the merged history contains every
// recorded event exactly once, and per-object projections of the merge
// agree with per-shard recording order.
func TestMergedHistoryMatchesShardBuffers(t *testing.T) {
	ba := adt.DefaultBankAccount()
	e := NewEngine(Options{RecordHistory: true, Shards: 4})
	objs := []history.ObjectID{"p", "q", "r", "s", "tt", "u"}
	for _, id := range objs {
		e.MustRegister(id, ba, ba.NRBC(), UndoLogRecovery)
	}
	tx := e.Begin()
	for _, id := range objs {
		if _, err := tx.Invoke(id, adt.Deposit(2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	h := e.History()
	// 2 events per op + 1 commit event per object.
	if want := 3 * len(objs); len(h) != want {
		t.Fatalf("merged history has %d events, want %d\n%s", len(h), want, h)
	}
	// The transaction's operations appear in program (invoke) order.
	ops := history.Opseq(h)
	if len(ops) != len(objs) {
		t.Fatalf("opseq length %d, want %d", len(ops), len(objs))
	}
	if err := history.WellFormed(h); err != nil {
		t.Fatal(err)
	}
}
