package txn

import (
	"errors"
	"testing"

	"repro/internal/adt"
	"repro/internal/commute"
	"repro/internal/spec"
)

// TestValidateCorrectConfigurations: the theorem-minimal pairings and the
// read/write baseline validate for every type.
func TestValidateCorrectConfigurations(t *testing.T) {
	types := []adt.Type{
		adt.DefaultBankAccount(), adt.DefaultIntSet(), adt.DefaultRegister(),
		adt.DefaultEscrowCounter(),
	}
	for _, ty := range types {
		if err := ValidateRegistration(ty, ty.NRBC(), UndoLogRecovery); err != nil {
			t.Errorf("%s: NRBC should validate for undo-log: %v", ty.Name(), err)
		}
		if err := ValidateRegistration(ty, ty.NFC(), IntentionsRecovery); err != nil {
			t.Errorf("%s: NFC should validate for intentions: %v", ty.Name(), err)
		}
		if err := ValidateRegistration(ty, ty.RW(), UndoLogRecovery); err != nil {
			t.Errorf("%s: RW should validate for undo-log: %v", ty.Name(), err)
		}
		if err := ValidateRegistration(ty, ty.RW(), IntentionsRecovery); err != nil {
			t.Errorf("%s: RW should validate for intentions: %v", ty.Name(), err)
		}
	}
}

// TestValidateRejectsCrossedPairings: using each method's minimal relation
// with the *other* recovery method is exactly the misconfiguration the
// theorems forbid on the bank account, and validation names a witness pair.
func TestValidateRejectsCrossedPairings(t *testing.T) {
	ba := adt.DefaultBankAccount()
	var mis *MisconfigurationError

	err := ValidateRegistration(ba, ba.NFC(), UndoLogRecovery)
	if !errors.As(err, &mis) {
		t.Fatalf("NFC with undo-log must be rejected, got %v", err)
	}
	if mis.Required != "NRBC" {
		t.Errorf("required = %q, want NRBC", mis.Required)
	}
	// The missing pair must genuinely be an NRBC pair absent from NFC.
	if !ba.NRBC().Conflicts(mis.P, mis.Q) || ba.NFC().Conflicts(mis.P, mis.Q) {
		t.Errorf("witness (%s,%s) is not in NRBC \\ NFC", mis.P, mis.Q)
	}

	err = ValidateRegistration(ba, ba.NRBC(), IntentionsRecovery)
	if !errors.As(err, &mis) {
		t.Fatalf("NRBC with intentions must be rejected, got %v", err)
	}
	if mis.Required != "NFC" {
		t.Errorf("required = %q, want NFC", mis.Required)
	}
	if !ba.NFC().Conflicts(mis.P, mis.Q) || ba.NRBC().Conflicts(mis.P, mis.Q) {
		t.Errorf("witness (%s,%s) is not in NFC \\ NRBC", mis.P, mis.Q)
	}
}

// TestValidateRejectsEmptyRelation: no locking at all fails for both
// methods.
func TestValidateRejectsEmptyRelation(t *testing.T) {
	ba := adt.DefaultBankAccount()
	none := commute.RelationFunc{
		RelName: "none",
		F:       func(p, q spec.Operation) bool { return false },
	}
	if err := ValidateRegistration(ba, none, UndoLogRecovery); err == nil {
		t.Error("empty relation must be rejected for undo-log")
	}
	if err := ValidateRegistration(ba, none, IntentionsRecovery); err == nil {
		t.Error("empty relation must be rejected for intentions")
	}
}

// TestRegisterValidated wires validation into registration.
func TestRegisterValidated(t *testing.T) {
	ba := adt.DefaultBankAccount()
	e := NewEngine(Options{})
	if err := e.RegisterValidated("good", ba, ba.NRBC(), UndoLogRecovery); err != nil {
		t.Fatalf("valid registration rejected: %v", err)
	}
	err := e.RegisterValidated("bad", ba, ba.NFC(), UndoLogRecovery)
	var mis *MisconfigurationError
	if !errors.As(err, &mis) {
		t.Fatalf("invalid registration accepted: %v", err)
	}
	// The object must not have been registered.
	if _, ok := e.Object("bad"); ok {
		t.Error("misconfigured object should not be registered")
	}
}
