package txn

import (
	"errors"
	"testing"

	"repro/internal/adt"
	"repro/internal/wal"
)

// failingBackend refuses every sync — a dead log device.
type failingBackend struct{ err error }

func (b *failingBackend) Sync([]wal.Record) error { return b.err }
func (b *failingBackend) Close() error            { return nil }

// TestCommitSurfacesBackendFailure: when the WAL backend cannot persist
// the group-commit batch, Commit must return an error rather than ack a
// commit that never became durable — in both flush modes.
func TestCommitSurfacesBackendFailure(t *testing.T) {
	devErr := errors.New("log device gone")
	for _, mode := range []struct {
		name string
		cfg  wal.Config
	}{
		{"sync", wal.Config{Backend: &failingBackend{err: devErr}}},
		{"async", wal.Config{Async: true, Backend: &failingBackend{err: devErr}}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			log, err := wal.Open(mode.cfg)
			if err != nil {
				t.Fatal(err)
			}
			ba := adt.DefaultBankAccount()
			e := NewEngine(Options{WAL: log})
			e.MustRegister("X", ba, ba.NRBC(), UndoLogRecovery)
			tx := e.Begin()
			if _, err := tx.Invoke("X", adt.Deposit(3)); err != nil {
				t.Fatal(err)
			}
			if err := tx.Commit(); !errors.Is(err, devErr) {
				t.Fatalf("Commit = %v, want the backend failure surfaced", err)
			}
			// The in-memory engine remains consistent: effects applied,
			// locks released, a new transaction can read the state.
			tx2 := e.Begin()
			res, err := tx2.Invoke("X", adt.Balance())
			if err != nil {
				t.Fatal(err)
			}
			if res != "3" {
				t.Fatalf("balance after failed-durability commit = %q, want 3", res)
			}
			if err := tx2.Commit(); !errors.Is(err, devErr) {
				t.Fatalf("second Commit = %v, want the sticky backend failure", err)
			}
			if err := e.Close(); !errors.Is(err, devErr) {
				t.Fatalf("Close = %v, want the backend failure", err)
			}
		})
	}
}
