package txn

import (
	"errors"
	"testing"

	"repro/internal/adt"
	"repro/internal/wal"
)

// failingBackend refuses every sync — a dead log device.
type failingBackend struct{ err error }

func (b *failingBackend) Sync([]wal.Record) error { return b.err }
func (b *failingBackend) Close() error            { return nil }

// TestCommitSurfacesBackendFailure: when the WAL backend cannot persist
// the group-commit batch, Commit must return an error rather than ack a
// commit that never became durable — in both flush modes. The error wraps
// ErrDurability (the commit took effect in memory; the durable log is
// behind) and is booked in Metrics.DurabilityFailures, not Commits, so
// the success counter never double-books an errored call. A *dependent*
// transaction that read the unsynced state is terminated through the
// abort path instead (ErrDurability+ErrAborted, booked in
// Metrics.DurabilityAborts) — the ReleaseEarlyTracked cascade.
func TestCommitSurfacesBackendFailure(t *testing.T) {
	devErr := errors.New("log device gone")
	for _, mode := range []struct {
		name string
		cfg  wal.Config
	}{
		{"sync", wal.Config{Backend: &failingBackend{err: devErr}}},
		{"async", wal.Config{Async: true, Backend: &failingBackend{err: devErr}}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			log, err := wal.Open(mode.cfg)
			if err != nil {
				t.Fatal(err)
			}
			ba := adt.DefaultBankAccount()
			e := NewEngine(Options{WAL: log})
			e.MustRegister("X", ba, ba.NRBC(), UndoLogRecovery)
			tx := e.Begin()
			if _, err := tx.Invoke("X", adt.Deposit(3)); err != nil {
				t.Fatal(err)
			}
			err = tx.Commit()
			if !errors.Is(err, devErr) {
				t.Fatalf("Commit = %v, want the backend failure surfaced", err)
			}
			if !errors.Is(err, ErrDurability) {
				t.Fatalf("Commit = %v, want ErrDurability (committed in memory, log behind)", err)
			}
			// The in-memory engine remains consistent: effects applied,
			// locks released, a new transaction can read the state.
			tx2 := e.Begin()
			res, err := tx2.Invoke("X", adt.Balance())
			if err != nil {
				t.Fatal(err)
			}
			if res != "3" {
				t.Fatalf("balance after failed-durability commit = %q, want 3", res)
			}
			// tx2 read from tx1, whose commit the backend never persisted:
			// its commit must cascade into an in-memory abort, not pile a
			// second unsyncable commit on top of the first.
			err = tx2.Commit()
			if !errors.Is(err, devErr) || !errors.Is(err, ErrDurability) {
				t.Fatalf("dependent Commit = %v, want the sticky backend failure as ErrDurability", err)
			}
			if !errors.Is(err, ErrAborted) {
				t.Fatalf("dependent Commit = %v, want ErrAborted (terminated via the abort path)", err)
			}
			if got := e.Metrics.DurabilityFailures.Load(); got != 1 {
				t.Errorf("DurabilityFailures = %d, want 1 (only the original failure)", got)
			}
			if got := e.Metrics.DurabilityAborts.Load(); got != 1 {
				t.Errorf("DurabilityAborts = %d, want 1 (the cascaded dependent)", got)
			}
			if got := e.Metrics.Commits.Load(); got != 0 {
				t.Errorf("Commits = %d, want 0 (durability failures must not double-book)", got)
			}
			if err := e.Close(); !errors.Is(err, devErr) {
				t.Fatalf("Close = %v, want the backend failure", err)
			}
		})
	}
}

// TestAbortSurfacesBackendFailure: the compensation-record flush of Abort
// is held to the same standard as Commit's barrier — a backend failure
// surfaces as ErrDurability and books a durability failure, not an abort.
func TestAbortSurfacesBackendFailure(t *testing.T) {
	devErr := errors.New("log device gone")
	log, err := wal.Open(wal.Config{Backend: &failingBackend{err: devErr}})
	if err != nil {
		t.Fatal(err)
	}
	ba := adt.DefaultBankAccount()
	e := NewEngine(Options{WAL: log})
	e.MustRegister("X", ba, ba.NRBC(), UndoLogRecovery)
	tx := e.Begin()
	if _, err := tx.Invoke("X", adt.Deposit(3)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); !errors.Is(err, devErr) || !errors.Is(err, ErrDurability) {
		t.Fatalf("Abort = %v, want the backend failure as ErrDurability", err)
	}
	if got := e.Metrics.Aborts.Load(); got != 0 {
		t.Errorf("Aborts = %d, want 0 (durability failures must not double-book)", got)
	}
	if got := e.Metrics.DurabilityFailures.Load(); got != 1 {
		t.Errorf("DurabilityFailures = %d, want 1", got)
	}
	// The in-memory undo completed: the balance is back to zero.
	tx2 := e.Begin()
	res, err := tx2.Invoke("X", adt.Balance())
	if err != nil || res != "0" {
		t.Fatalf("balance after failed-durability abort = %q (%v), want 0", res, err)
	}
}
