package txn

// Durable-engine construction: the boilerplate every durable deployment of
// the engine repeats — create a WAL backend (segmented by default), wrap
// it in an asynchronous group-committing log, open a file checkpoint
// store, and hand both to NewEngine — gathered behind one options struct.
// The restart experiment (E18) and the examples build engines through
// this; the tests that need to reach inside (crash hooks, custom crash
// points) keep assembling the pieces by hand.

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/wal"
)

// DurabilityOptions configures NewDurableEngine's storage layout.
type DurabilityOptions struct {
	// Dir is the root directory (created if absent): segment files (or the
	// single log file) live in Dir/wal, checkpoint snapshots in Dir/ckpt.
	Dir string
	// SingleFile selects the legacy single-file backend
	// (wal.FileBackend, rewrite-based truncation) instead of the
	// segmented backend — the baseline arm of the truncation-cost
	// comparison.
	SingleFile bool
	// SegmentBytes is the segmented backend's rotation threshold (0 =
	// wal.DefaultSegmentBytes). Ignored with SingleFile.
	SegmentBytes int64
	// Retention holds back the newest dead segments from truncation's
	// unlink pass. Ignored with SingleFile.
	Retention wal.Retention
	// BatchInterval and MaxBatch are the asynchronous flusher's dwell and
	// batch-size cap (see wal.Config).
	BatchInterval time.Duration
	MaxBatch      int
	// CheckpointEvery, when positive, runs the engine's background
	// checkpointer on that interval.
	CheckpointEvery time.Duration
}

// WALDir returns the write-ahead-log directory under d.Dir.
func (d DurabilityOptions) WALDir() string { return filepath.Join(d.Dir, "wal") }

// WALPath returns the single-file backend's log path under d.Dir.
func (d DurabilityOptions) WALPath() string { return filepath.Join(d.WALDir(), "engine.wal") }

// CheckpointDir returns the checkpoint-store directory under d.Dir.
func (d DurabilityOptions) CheckpointDir() string { return filepath.Join(d.Dir, "ckpt") }

// SegmentConfig returns the wal.SegmentConfig d describes.
func (d DurabilityOptions) SegmentConfig() wal.SegmentConfig {
	return wal.SegmentConfig{MaxSegmentBytes: d.SegmentBytes, Retention: d.Retention}
}

// NewDurableEngine builds a fully durable engine: a fresh WAL backend in
// d.Dir (segmented unless d.SingleFile), an asynchronous group-committed
// log over it, and a file checkpoint store. Any WAL or Checkpoint already
// present in opts is overridden; the engine owns the log (Engine.Close
// closes it, sealing the backend).
func NewDurableEngine(opts Options, d DurabilityOptions) (*Engine, error) {
	var backend wal.Backend
	if d.SingleFile {
		if err := os.MkdirAll(d.WALDir(), 0o755); err != nil {
			return nil, fmt.Errorf("txn: durable engine: %w", err)
		}
		fb, err := wal.CreateFileBackend(d.WALPath())
		if err != nil {
			return nil, fmt.Errorf("txn: durable engine: %w", err)
		}
		backend = fb
	} else {
		sb, err := wal.CreateSegmentedBackend(d.WALDir(), d.SegmentConfig())
		if err != nil {
			return nil, fmt.Errorf("txn: durable engine: %w", err)
		}
		backend = sb
	}
	log, err := wal.Open(wal.Config{
		Async:         true,
		Backend:       backend,
		BatchInterval: d.BatchInterval,
		MaxBatch:      d.MaxBatch,
	})
	if err != nil {
		backend.Close()
		return nil, fmt.Errorf("txn: durable engine: %w", err)
	}
	store, err := checkpoint.OpenFileStore(d.CheckpointDir())
	if err != nil {
		if cerr := log.Close(); cerr != nil {
			err = fmt.Errorf("%w (and closing the WAL: %w)", err, cerr)
		}
		return nil, fmt.Errorf("txn: durable engine: %w", err)
	}
	opts.WAL = log
	opts.Checkpoint = &CheckpointOptions{Store: store, Every: d.CheckpointEvery}
	return NewEngine(opts), nil
}
