package txn

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/wal"
)

// newReleaseEngine builds a one-account engine over a synchronous WAL with
// the given backend and release policy.
func newReleaseEngine(t *testing.T, b wal.Backend, pol ReleasePolicy) *Engine {
	t.Helper()
	log, err := wal.Open(wal.Config{Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	ba := adt.DefaultBankAccount()
	e := NewEngine(Options{WAL: log, ReleasePolicy: pol})
	e.MustRegister("X", ba, ba.NRBC(), UndoLogRecovery)
	return e
}

// TestDependentOnUnsyncedLoser is the early-lock-release durability hole,
// end to end. A first transaction commits but its WAL batch never syncs
// (ErrDurability: committed in memory, durable log empty). A second
// transaction then reads that state and commits.
//
// Under the legacy discipline (release early, no dependency tracking) the
// dependent is left committed in memory on top of the unsynced loser: the
// in-memory state diverges ever further from the durable log, and after a
// restart neither transaction exists even though the engine kept serving
// both transactions' effects. Both shipped policies prevent it: the
// dependent is terminated through the abort path — its effects are undone,
// the error wraps ErrDurability and ErrAborted, and the in-memory state
// stops accumulating commits the log can never contain.
func TestDependentOnUnsyncedLoser(t *testing.T) {
	devErr := errors.New("log device gone")
	for _, tc := range []struct {
		pol ReleasePolicy
		// cascaded: the dependent must be aborted in memory rather than
		// committed on top of the unsynced loser.
		cascaded bool
	}{
		{releaseEarlyUnsafe, false},
		{ReleaseEarlyTracked, true},
		{ReleaseAfterAck, true},
	} {
		t.Run(tc.pol.String(), func(t *testing.T) {
			e := newReleaseEngine(t, &failingBackend{err: devErr}, tc.pol)

			// T1 commits; the backend refuses the batch. T1 is committed in
			// memory with the durable log behind — the unsynced loser.
			t1 := e.Begin()
			if _, err := t1.Invoke("X", adt.Deposit(3)); err != nil {
				t.Fatal(err)
			}
			if err := t1.Commit(); !errors.Is(err, ErrDurability) {
				t.Fatalf("T1 Commit = %v, want ErrDurability", err)
			}
			if lsn := e.WAL().DurableLSN(); lsn != 0 {
				t.Fatalf("durable LSN = %d, want 0 (nothing synced)", lsn)
			}

			// T2 reads T1's unsynced state and commits on top of it.
			t2 := e.Begin()
			if res, err := t2.Invoke("X", adt.Balance()); err != nil || res != "3" {
				t.Fatalf("T2 read = %q (%v), want 3 (T1's in-memory state)", res, err)
			}
			if _, err := t2.Invoke("X", adt.Deposit(4)); err != nil {
				t.Fatal(err)
			}
			err := t2.Commit()
			if !errors.Is(err, ErrDurability) {
				t.Fatalf("T2 Commit = %v, want ErrDurability (never a clean ack)", err)
			}

			// What remains in memory distinguishes the disciplines.
			t3 := e.Begin()
			res, rerr := t3.Invoke("X", adt.Balance())
			if rerr != nil {
				t.Fatal(rerr)
			}
			if tc.cascaded {
				if !errors.Is(err, ErrAborted) {
					t.Fatalf("T2 Commit = %v, want ErrAborted (terminated via the abort path)", err)
				}
				if res != "3" {
					t.Fatalf("balance = %q, want 3: the dependent's effects must be undone", res)
				}
				if got := e.Metrics.DurabilityAborts.Load(); got != 1 {
					t.Errorf("DurabilityAborts = %d, want 1", got)
				}
				if got := e.Metrics.DependencyStalls.Load(); got != 1 {
					t.Errorf("DependencyStalls = %d, want 1 (T2's read-from set was not durable)", got)
				}
			} else {
				// The legacy hole: T2 stays committed in memory on top of a
				// commit the durable log will never contain.
				if errors.Is(err, ErrAborted) {
					t.Fatalf("T2 Commit = %v: legacy policy unexpectedly aborted", err)
				}
				if res != "7" {
					t.Fatalf("balance = %q, want 7: the legacy hole leaves the dependent committed in memory", res)
				}
			}
			if got := e.Metrics.Commits.Load(); got != 0 {
				t.Errorf("Commits = %d, want 0 under a dead backend", got)
			}
		})
	}
}

// gatedBackend blocks every Sync until the gate is released — a log device
// whose acknowledgement the test controls.
type gatedBackend struct {
	gate  chan struct{}
	syncs atomic.Int64
}

func newGatedBackend() *gatedBackend { return &gatedBackend{gate: make(chan struct{})} }

func (b *gatedBackend) Sync([]wal.Record) error {
	<-b.gate
	b.syncs.Add(1)
	return nil
}
func (b *gatedBackend) Close() error { return nil }

// TestReleaseAfterAckHoldsLocksAcrossBarrier pins the concurrency
// semantics of the two policies with a backend whose acknowledgement the
// test controls. Under ReleaseAfterAck a conflicting reader stays blocked
// until the committer's batch is acknowledged; under ReleaseEarlyTracked
// the reader proceeds while the committer's barrier is still waiting — and
// its own commit then stalls behind the inherited dependency ticket.
func TestReleaseAfterAckHoldsLocksAcrossBarrier(t *testing.T) {
	for _, pol := range []ReleasePolicy{ReleaseAfterAck, ReleaseEarlyTracked} {
		t.Run(pol.String(), func(t *testing.T) {
			b := newGatedBackend()
			log, err := wal.Open(wal.Config{Async: true, Backend: b})
			if err != nil {
				t.Fatal(err)
			}
			ba := adt.DefaultBankAccount()
			e := NewEngine(Options{WAL: log, ReleasePolicy: pol})
			e.MustRegister("X", ba, ba.NRBC(), UndoLogRecovery)

			t1 := e.Begin()
			if _, err := t1.Invoke("X", adt.Deposit(3)); err != nil {
				t.Fatal(err)
			}
			commitDone := make(chan error, 1)
			go func() { commitDone <- t1.Commit() }()

			// A conflicting read: balance observes deposits, so under NRBC
			// it must wait for T1's locks.
			t2 := e.Begin()
			readDone := make(chan string, 1)
			go func() {
				res, err := t2.Invoke("X", adt.Balance())
				if err != nil {
					readDone <- "error: " + err.Error()
					return
				}
				readDone <- string(res)
			}()

			if pol == ReleaseAfterAck {
				// T1 holds its locks across the unacknowledged barrier: the
				// reader must still be blocked.
				waitUntilBlocked(t, e)
				select {
				case res := <-readDone:
					t.Fatalf("reader returned %q while the commit barrier was unacknowledged", res)
				case <-commitDone:
					t.Fatal("Commit returned before the backend acknowledged")
				case <-time.After(50 * time.Millisecond):
				}
				close(b.gate)
			} else {
				// Early release: the reader proceeds while T1's barrier is
				// still waiting on the gated backend.
				select {
				case res := <-readDone:
					if res != "3" {
						t.Fatalf("reader = %q, want 3", res)
					}
				case <-time.After(10 * time.Second):
					t.Fatal("reader still blocked under early release")
				}
				select {
				case err := <-commitDone:
					t.Fatalf("Commit = %v before the backend acknowledged", err)
				default:
				}
				// The reader inherited T1's commit ticket; committing now —
				// before the gate opens — must count a dependency stall.
				depDone := make(chan error, 1)
				go func() { depDone <- t2.Commit() }()
				deadline := time.Now().Add(5 * time.Second)
				for e.Metrics.DependencyStalls.Load() == 0 {
					if time.Now().After(deadline) {
						t.Fatal("dependent commit never recorded its dependency stall")
					}
					time.Sleep(100 * time.Microsecond)
				}
				close(b.gate)
				if err := <-depDone; err != nil {
					t.Fatalf("dependent Commit after ack = %v", err)
				}
			}
			if err := <-commitDone; err != nil {
				t.Fatalf("T1 Commit = %v", err)
			}
			if pol == ReleaseAfterAck {
				res := <-readDone
				if res != "3" {
					t.Fatalf("reader after ack = %q, want 3 (the durable state)", res)
				}
				if err := t2.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
