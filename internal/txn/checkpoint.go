package txn

// Fuzzy checkpointing: Engine.Checkpoint walks the striped registry shard
// by shard — never stopping the world — capturing each undo-log object's
// update-in-place state and in-flight transaction table under that
// object's latch, stamping the capture with a wal.CheckpointRec marker
// staged under the same latch (so the marker's LSN splits the object's
// records exactly into captured and replayable), waiting for the WAL's
// durable watermark to cover the last marker, saving the snapshot through
// the configured checkpoint.Store, and finally truncating the durable log
// before the checkpoint frontier. recovery.RestartAllWithCheckpoint is the
// consumer: it seeds object state from the snapshot and replays only the
// bounded suffix.
//
// Why the capture is sound without quiescing anything:
//
//   - Per-object atomicity: state, transaction table, and marker are taken
//     under the object latch, so each capture is one consistent instant of
//     that object's execution, and stamp order under the latch makes the
//     marker's LSN the exact cut.
//   - Effects without undo records: a transaction whose chain a capture no
//     longer sees (its per-object commit ran first) must already have its
//     transaction-level commit record staged — the commit gate (see
//     Engine.ckptGate) excludes captures from the store.Commit →
//     TxnCommitRec window — so it carries a stamp below the marker and is
//     covered by the checkpoint's durability wait: it can only be a
//     durable winner.
//   - Effects with undo records: in-flight transactions are captured into
//     the table; restart undoes them from the snapshot if they never
//     decide, or replays their suffix normally if they do (their decision
//     records necessarily stamp past the object's marker, hence past the
//     frontier, hence survive truncation).
//   - Frontier safety: the begin marker is staged before any capture and
//     before the shard walk reads any registry, so even an object
//     registered mid-checkpoint (and therefore absent from the snapshot)
//     has all of its records past the frontier and replays in full.
//   - Completion rule: the snapshot is saved only after WaitDurable covers
//     the last marker. Everything any captured state reflects is below
//     that stamp and therefore durable — a checkpoint never claims state
//     the durable log cannot corroborate. A crash before the save leaves
//     the previous checkpoint authoritative (the store's save is atomic);
//     a crash between save and truncation is harmless because restart
//     skips the un-truncated prefix per object by marker LSN.

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/history"
	"repro/internal/recovery"
	"repro/internal/wal"
)

// CheckpointOptions configures the engine's fuzzy checkpointer.
type CheckpointOptions struct {
	// Store is where completed snapshots are saved (required).
	Store checkpoint.Store
	// Every, when positive, runs a background goroutine taking a
	// checkpoint on that interval; the engine owns it and Engine.Close
	// stops it. Zero means checkpoints are taken only by explicit
	// Engine.Checkpoint calls.
	Every time.Duration
	// DisableTruncation keeps the durable log intact after a checkpoint —
	// for the oracle tests, which compare a checkpoint-seeded restart
	// against the full-log committed-winners oracle.
	DisableTruncation bool
}

// Checkpoint takes one fuzzy checkpoint and, unless disabled, truncates
// the write-ahead log before its frontier. It returns the completed
// snapshot. Concurrent transactions keep running throughout: the only
// exclusions are per-object latch holds and, around each capture, the
// commit protocol's decision window (see the package comment above).
// Checkpoint fails — taking no checkpoint and truncating nothing — if the
// log is closed, the WAL backend has failed (durability of the capture
// cannot be established), or a captured machine cannot round-trip its
// state.
func (e *Engine) Checkpoint() (*checkpoint.Snapshot, error) {
	if e.opts.Checkpoint == nil || e.opts.Checkpoint.Store == nil {
		return nil, fmt.Errorf("txn: checkpoint: engine has no checkpoint store configured")
	}
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	id := history.TxnID(fmt.Sprintf("CKPT%04d", e.ckptSeq.Add(1)))

	// The begin marker fixes the frontier before any capture and before
	// any registry read: every record restart could need stamps after it.
	beginTk, err := e.log.AppendAsync(wal.Record{Kind: wal.CheckpointRec, Txn: id})
	if err != nil {
		return nil, fmt.Errorf("txn: checkpoint %s: %w", id, err)
	}
	lastTk := beginTk
	if e.redoOnly() {
		// Re-brand the log right past the frontier: truncation discards
		// everything before it — including the discipline marker NewEngine
		// staged as the first record — and a reopened truncated log must
		// still declare its discipline from its own contents.
		tk, err := e.log.AppendAsync(wal.DisciplineMarker(wal.DisciplineRedo))
		if err != nil {
			return nil, fmt.Errorf("txn: checkpoint %s: %w", id, err)
		}
		lastTk = tk
	}

	// The capture walk and the durability-plus-save tail are the two cost
	// phases a checkpoint has; the observer's histograms separate them so
	// the sweep can tell latch-hold cost from sync cost.
	o := e.obsv
	var capture0 time.Time
	if o != nil {
		capture0 = time.Now()
	}
	type capture struct {
		obj    history.ObjectID
		state  string
		active []checkpoint.ActiveTxn
	}
	var caps []capture
	for _, sh := range e.shards {
		// Walk an immutable snapshot of the shard's copy-on-write registry
		// — no registry lock needed; objects registered mid-checkpoint are
		// simply absent (safe: all their records stamp past the frontier,
		// so restart replays them in full). Sorted, since Range follows
		// map order.
		mos := make([]*managedObject, 0, sh.objects.Len())
		sh.objects.Range(func(_ history.ObjectID, mo *managedObject) bool {
			if mo.kind == UndoLogRecovery {
				mos = append(mos, mo)
			}
			return true
		})
		sort.Slice(mos, func(i, j int) bool { return mos[i].id < mos[j].id })
		for _, mo := range mos {
			// Exclusive gate: no commit sweep is between discharging a
			// chain at this object and staging its TxnCommitRec while we
			// look.
			e.ckptGate.Lock()
			mo.mu.Lock()
			var st string
			var active []checkpoint.ActiveTxn
			ul, isUndo := mo.store.(*recovery.UndoLog)
			if isUndo {
				st, active, err = ul.Capture()
				if err == nil {
					var tk wal.Ticket
					tk, err = e.log.AppendAsync(wal.Record{Kind: wal.CheckpointRec, Txn: id, Obj: mo.id})
					if err == nil {
						lastTk = tk
						caps = append(caps, capture{obj: mo.id, state: st, active: active})
					}
				}
			}
			mo.mu.Unlock()
			e.ckptGate.Unlock()
			if err != nil {
				return nil, fmt.Errorf("txn: checkpoint %s at %s: %w", id, mo.id, err)
			}
		}
	}

	var captureNS int64
	var save0 time.Time
	if o != nil {
		captureNS = time.Since(capture0).Nanoseconds()
		save0 = time.Now()
	}

	// Completion rule: flush and wait until the durable watermark covers
	// the last marker — and with it, by consistent-cut batching, every
	// record any capture reflects. A dead backend fails the checkpoint.
	if err := e.log.Flush(); err != nil {
		return nil, fmt.Errorf("txn: checkpoint %s: %w", id, err)
	}
	if err := e.log.WaitDurable(lastTk); err != nil {
		return nil, fmt.Errorf("txn: checkpoint %s: durability: %w", id, err)
	}

	// Resolve marker LSNs from the checkpoint's own record chain (all
	// markers share the checkpoint ID, hence one backward chain): walk
	// newest-first until the begin marker; entries past it belong to
	// earlier checkpoints of a reopened log.
	markers := make(map[history.ObjectID]wal.LSN, len(caps))
	var frontier wal.LSN
	for _, r := range e.log.TxnChain(id) {
		if r.Obj == "" {
			frontier = r.LSN
			break
		}
		markers[r.Obj] = r.LSN
	}
	if frontier == 0 {
		return nil, fmt.Errorf("txn: checkpoint %s: begin marker not found in log chain", id)
	}
	snap := &checkpoint.Snapshot{
		ID:         string(id),
		Frontier:   frontier,
		DurableLSN: e.log.DurableLSN(),
		Discipline: e.opts.LogDiscipline,
		Objects:    make([]checkpoint.ObjectSnapshot, 0, len(caps)),
	}
	for _, c := range caps {
		lsn, ok := markers[c.obj]
		if !ok {
			return nil, fmt.Errorf("txn: checkpoint %s: marker for %s not found in log chain", id, c.obj)
		}
		snap.Objects = append(snap.Objects, checkpoint.ObjectSnapshot{
			Obj: c.obj, MarkerLSN: lsn, State: c.state, Active: c.active,
		})
	}
	if !e.opts.Checkpoint.DisableTruncation {
		// Record the truncation point the log will actually realize — the
		// frontier clamped to the durable watermark and aligned to the
		// backend's boundary (segment starts, for the segmented backend) —
		// so the durable snapshot names the exact first LSN of the
		// post-truncation log.
		snap.TruncatedBefore = e.log.AlignTruncate(frontier)
	}
	if err := e.opts.Checkpoint.Store.Save(snap); err != nil {
		return nil, fmt.Errorf("txn: checkpoint %s: save: %w", id, err)
	}
	e.Metrics.Checkpoints.Add(1)
	if o != nil {
		o.RecordCheckpoint(captureNS, time.Since(save0).Nanoseconds())
		if o.Tracing() {
			o.TraceGlobal("checkpoint", capture0.Sub(o.Epoch).Nanoseconds(),
				time.Since(o.Epoch).Nanoseconds(),
				map[string]string{"objects": strconv.Itoa(len(caps))})
		}
	}
	if !e.opts.Checkpoint.DisableTruncation {
		n, err := e.log.TruncateBefore(frontier)
		e.Metrics.TruncatedRecords.Add(int64(n))
		if err != nil {
			// The snapshot is complete and durable; only reclamation
			// failed. Report it without invalidating the checkpoint.
			return snap, fmt.Errorf("txn: checkpoint %s: truncate: %w", id, err)
		}
	}
	return snap, nil
}

// checkpointLoop is the engine-owned background checkpointer. Errors are
// tolerated (a closed log during shutdown, a temporarily failed save); the
// next tick retries, and manual Checkpoint calls surface errors to
// callers who care.
func (e *Engine) checkpointLoop(every time.Duration) {
	defer close(e.ckptDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-e.ckptQuit:
			return
		case <-t.C:
			_, _ = e.Checkpoint()
		}
	}
}
