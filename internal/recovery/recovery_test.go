package recovery

import (
	"errors"
	"testing"

	"repro/internal/adt"
	"repro/internal/history"
	"repro/internal/spec"
	"repro/internal/wal"
)

func newUndoBA() *UndoLog {
	return NewUndoLog("BA", adt.DefaultBankAccount().Machine(), wal.New())
}

func newIntentBA() *Intentions {
	return NewIntentions("BA", adt.DefaultBankAccount().Machine())
}

func TestUndoLogBasicCommit(t *testing.T) {
	u := newUndoBA()
	res, err := u.Apply("A", adt.Deposit(5))
	if err != nil || res != "ok" {
		t.Fatalf("apply: %v %v", res, err)
	}
	if err := u.Commit("A"); err != nil {
		t.Fatal(err)
	}
	if got := u.CommittedValue().Encode(); got != "5" {
		t.Fatalf("committed value = %s", got)
	}
}

func TestUndoLogAbortUndoesInReverse(t *testing.T) {
	u := newUndoBA()
	mustApply := func(txn history.TxnID, inv spec.Invocation) {
		t.Helper()
		if _, err := u.Apply(txn, inv); err != nil {
			t.Fatal(err)
		}
	}
	mustApply("A", adt.Deposit(5))
	mustApply("A", adt.Withdraw(2))
	if err := u.Abort("A"); err != nil {
		t.Fatal(err)
	}
	if got := u.CommittedValue().Encode(); got != "0" {
		t.Fatalf("state after abort = %s, want 0", got)
	}
	if u.Stats().Undos != 2 {
		t.Errorf("Undos = %d, want 2", u.Stats().Undos)
	}
}

// TestUndoLogConcurrentUpdatersAbort is the crux of operation logging:
// undoing A's deposit must not clobber B's concurrent deposit.
func TestUndoLogConcurrentUpdatersAbort(t *testing.T) {
	u := newUndoBA()
	if _, err := u.Apply("A", adt.Deposit(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Apply("B", adt.Deposit(3)); err != nil {
		t.Fatal(err)
	}
	if err := u.Abort("A"); err != nil {
		t.Fatal(err)
	}
	if err := u.Commit("B"); err != nil {
		t.Fatal(err)
	}
	if got := u.CommittedValue().Encode(); got != "3" {
		t.Fatalf("state = %s, want 3 (B's deposit preserved)", got)
	}
}

// TestUndoLogUIPVisibility: uncommitted effects are visible to others —
// update-in-place semantics.
func TestUndoLogUIPVisibility(t *testing.T) {
	u := newUndoBA()
	if _, err := u.Apply("A", adt.Deposit(5)); err != nil {
		t.Fatal(err)
	}
	res, err := u.Peek("B", adt.Withdraw(3))
	if err != nil || res != "ok" {
		t.Fatalf("B should see A's uncommitted deposit: %v %v", res, err)
	}
}

func TestUndoLogWALRecords(t *testing.T) {
	log := wal.New()
	u := NewUndoLog("BA", adt.DefaultBankAccount().Machine(), log)
	if _, err := u.Apply("A", adt.Deposit(5)); err != nil {
		t.Fatal(err)
	}
	if err := u.Abort("A"); err != nil {
		t.Fatal(err)
	}
	recs := log.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("expected update+clr+abort, got %v", recs)
	}
	if recs[0].Kind != wal.Update || recs[1].Kind != wal.CompensationRec || recs[2].Kind != wal.AbortRec {
		t.Fatalf("record kinds = %v %v %v", recs[0].Kind, recs[1].Kind, recs[2].Kind)
	}
}

func TestUndoLogBeforeImageMachine(t *testing.T) {
	// The KV machine needs before-image undo; the undo log must capture and
	// use it.
	u := NewUndoLog("KV", adt.DefaultKVStore().Machine(), wal.New())
	if _, err := u.Apply("A", adt.Put("x", "1")); err != nil {
		t.Fatal(err)
	}
	if err := u.Commit("A"); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Apply("B", adt.Put("x", "2")); err != nil {
		t.Fatal(err)
	}
	if err := u.Abort("B"); err != nil {
		t.Fatal(err)
	}
	if got := u.CommittedValue().Encode(); got != "<x=1>" {
		t.Fatalf("state = %s, want <x=1>", got)
	}
}

func TestIntentionsDUVisibility(t *testing.T) {
	n := newIntentBA()
	if _, err := n.Apply("A", adt.Deposit(5)); err != nil {
		t.Fatal(err)
	}
	// B does not see A's uncommitted deposit.
	res, err := n.Peek("B", adt.Withdraw(3))
	if err != nil || res != "no" {
		t.Fatalf("B should see the committed balance 0: %v %v", res, err)
	}
	// A sees its own intentions.
	res, err = n.Peek("A", adt.Withdraw(3))
	if err != nil || res != "ok" {
		t.Fatalf("A should see its own deposit: %v %v", res, err)
	}
	if err := n.Commit("A"); err != nil {
		t.Fatal(err)
	}
	res, err = n.Peek("B", adt.Withdraw(3))
	if err != nil || res != "ok" {
		t.Fatalf("after commit B sees the deposit: %v %v", res, err)
	}
}

func TestIntentionsAbortIsFree(t *testing.T) {
	n := newIntentBA()
	if _, err := n.Apply("A", adt.Deposit(5)); err != nil {
		t.Fatal(err)
	}
	if err := n.Abort("A"); err != nil {
		t.Fatal(err)
	}
	if got := n.CommittedValue().Encode(); got != "0" {
		t.Fatalf("base = %s, want 0", got)
	}
	if n.Stats().Undos != 0 {
		t.Error("intentions abort must not undo anything")
	}
}

func TestIntentionsCommitOrder(t *testing.T) {
	// Queue: A enqueues a, B enqueues b, B commits first — base must read
	// [b;a] (commit order), not execution order. Note enq/enq conflicts
	// under NFC, so a real engine would never interleave these; the store
	// itself is order-agnostic and follows Commit calls.
	n := NewIntentions("Q", adt.DefaultFIFOQueue().Machine())
	if _, err := n.Apply("A", adt.Enq("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Apply("B", adt.Enq("b")); err != nil {
		t.Fatal(err)
	}
	if err := n.Commit("B"); err != nil {
		t.Fatal(err)
	}
	if err := n.Commit("A"); err != nil {
		t.Fatal(err)
	}
	if got := n.CommittedValue().Encode(); got != "[b;a]" {
		t.Fatalf("base = %s, want [b;a]", got)
	}
}

func TestIntentionsWorkspaceRefreshAfterBaseMove(t *testing.T) {
	n := newIntentBA()
	if _, err := n.Apply("A", adt.Deposit(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Apply("B", adt.Deposit(5)); err != nil {
		t.Fatal(err)
	}
	if err := n.Commit("B"); err != nil {
		t.Fatal(err)
	}
	// A's workspace is now base(5) + own deposit(2) = 7.
	res, err := n.Peek("A", adt.Balance())
	if err != nil || res != "7" {
		t.Fatalf("A's balance = %v %v, want 7", res, err)
	}
	if n.Stats().Replays == 0 {
		t.Error("expected replay work after base movement")
	}
}

func TestIntentionsPartialInvocation(t *testing.T) {
	n := NewIntentions("P", adt.ResourcePool{Resources: []int{1}}.Machine())
	if _, err := n.Apply("A", adt.Alloc()); err != nil {
		t.Fatal(err)
	}
	// A's workspace is empty; alloc is not enabled for A.
	if _, err := n.Peek("A", adt.Alloc()); !errors.Is(err, adt.ErrNotEnabled) {
		t.Fatalf("expected ErrNotEnabled, got %v", err)
	}
	// B's workspace is the base (still full): alloc picks resource 1 —
	// and would conflict under NFC, which the engine enforces, not the
	// store.
	res, err := n.Peek("B", adt.Alloc())
	if err != nil || res != "1" {
		t.Fatalf("B's alloc = %v %v", res, err)
	}
}

func TestUndoLogPartialInvocation(t *testing.T) {
	u := NewUndoLog("P", adt.ResourcePool{Resources: []int{1}}.Machine(), wal.New())
	if _, err := u.Apply("A", adt.Alloc()); err != nil {
		t.Fatal(err)
	}
	// Update-in-place: the pool is empty for everyone.
	if _, err := u.Peek("B", adt.Alloc()); !errors.Is(err, adt.ErrNotEnabled) {
		t.Fatalf("expected ErrNotEnabled, got %v", err)
	}
	if err := u.Abort("A"); err != nil {
		t.Fatal(err)
	}
	res, err := u.Peek("B", adt.Alloc())
	if err != nil || res != "1" {
		t.Fatalf("after abort the resource is back: %v %v", res, err)
	}
}

func TestStoreKinds(t *testing.T) {
	if newUndoBA().Kind() != "undo-log" {
		t.Error("undo-log kind")
	}
	if newIntentBA().Kind() != "intentions" {
		t.Error("intentions kind")
	}
}
