package recovery

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/adt"
	"repro/internal/checkpoint"
	"repro/internal/history"
	stripepkg "repro/internal/stripe"
	"repro/internal/wal"
)

// WorkerStats counts the pass-2 work one restart worker performed — the
// per-worker distribution E18 reports to show replay actually spreading
// across the pool.
type WorkerStats struct {
	// Objects is the number of objects hashed to this worker.
	Objects int `json:"objects"`
	// Replayed/Skipped/Undone are this worker's shares of the aggregate
	// counters (see RestartStats).
	Replayed int `json:"replayed"`
	Skipped  int `json:"skipped"`
	Undone   int `json:"undone"`
}

// RestartStats counts the work one restart performed — the dependent
// variable of the restart-time-versus-log-length experiment (E17) and of
// the parallel-restart experiment (E18). Without a checkpoint, Replayed
// grows with the whole log; with one, it is bounded by the suffix past the
// checkpoint frontier. The aggregate counters are identical for any
// parallelism (object assignment only moves work between workers); only
// PerWorker and the wall-clock fields vary.
type RestartStats struct {
	// LogRecords is the number of records in the scanned (retained) log —
	// what pass 1's winner scan walks.
	LogRecords int `json:"log_records"`
	// Replayed counts the per-object records pass 2 processed (updates
	// redone, compensations re-applied, commit/abort records consumed).
	Replayed int `json:"replayed"`
	// Skipped counts per-object records pass 2 skipped because the
	// checkpoint's capture already reflects them (LSN at or below the
	// object's marker).
	Skipped int `json:"skipped"`
	// SeededObjects and SeededTxns count checkpoint seeding: objects whose
	// state came from the snapshot, and in-flight transactions whose undo
	// tables were reconstructed from it.
	SeededObjects int `json:"seeded_objects"`
	SeededTxns    int `json:"seeded_txns"`
	// Undone counts loser updates rolled back by the undo phase.
	Undone int `json:"undone"`

	// Segments is the number of partitions pass 1's winner scan fanned out
	// over: the durable segment count for a segmented backend, otherwise
	// the even-chunk count (1 when the scan ran sequentially).
	Segments int `json:"segments"`
	// Parallelism is the pass-2 worker-pool size actually used.
	Parallelism int `json:"parallelism"`
	// PerWorker is each pass-2 worker's share of the object set and the
	// replay counters, in worker order.
	PerWorker []WorkerStats `json:"per_worker,omitempty"`
	// Pass1NS, Pass2NS, and WallNS are wall-clock nanoseconds for the
	// winner scan, the redo/undo phase, and the whole restart. On a loaded
	// or single-vCPU machine these are ordinal signals only; the record
	// counts above are the machine-independent measurement.
	Pass1NS int64 `json:"pass1_ns"`
	Pass2NS int64 `json:"pass2_ns"`
	WallNS  int64 `json:"wall_ns"`
}

// RestartConfig parameterizes RestartAllWithConfig.
type RestartConfig struct {
	// Parallelism is the pass-2 worker-pool size (rounded up to a power of
	// two so object assignment can hash; 0 selects GOMAXPROCS). Pass 1
	// fans out one goroutine per durable log segment (or per even chunk,
	// up to Parallelism, for unsegmented backends). Parallelism 1 is the
	// fully sequential restart; any value yields an identical recovered
	// state, winner set, and aggregate counters.
	Parallelism int
}

// Winners scans log records for transaction-level commit records and
// returns the set of transactions that durably committed. This is pass 1
// of the restart protocol, shared across the per-object restarts of one
// log: recovery is presumed-abort, so a transaction absent from this set
// is a loser — even if some of its per-object CommitRecs reached the
// durable log before the crash.
func Winners(recs []wal.Record) map[history.TxnID]bool {
	w := make(map[history.TxnID]bool)
	for _, rec := range recs {
		if rec.Kind == wal.TxnCommitRec {
			w[rec.Txn] = true
		}
	}
	return w
}

// winnersParallel is Winners fanned out over the partitions of snap
// induced by the durable segment bounds (each bound is the first LSN of
// one segment; snap is LSN-contiguous, so a bound maps to an index by
// plain arithmetic). Commit records are only ever added to the winner set,
// so partition-local scans merge by union. Falls back to p even chunks
// when the backend is unsegmented, and to a plain scan for small logs.
// Returns the winner set and the partition count.
func winnersParallel(snap []wal.Record, bounds []wal.LSN, p int) (map[history.TxnID]bool, int) {
	if len(snap) == 0 {
		return map[history.TxnID]bool{}, 1
	}
	// Partition start indices into snap, ascending, starting at 0.
	var starts []int
	if len(bounds) > 0 {
		first := snap[0].LSN
		for _, b := range bounds {
			idx := 0
			if b > first {
				idx = int(b - first)
			}
			if idx >= len(snap) {
				continue
			}
			if len(starts) == 0 || idx > starts[len(starts)-1] {
				starts = append(starts, idx)
			}
		}
		if len(starts) == 0 || starts[0] != 0 {
			starts = append([]int{0}, starts...)
		}
	} else {
		if p < 1 {
			p = 1
		}
		chunk := (len(snap) + p - 1) / p
		for i := 0; i < len(snap); i += chunk {
			starts = append(starts, i)
		}
	}
	if len(starts) <= 1 {
		return Winners(snap), len(starts)
	}
	sets := make([]map[history.TxnID]bool, len(starts))
	var wg sync.WaitGroup
	for i := range starts {
		lo := starts[i]
		hi := len(snap)
		if i+1 < len(starts) {
			hi = starts[i+1]
		}
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			sets[i] = Winners(snap[lo:hi])
		}(i, lo, hi)
	}
	wg.Wait()
	merged := make(map[history.TxnID]bool)
	for _, s := range sets {
		for t := range s {
			merged[t] = true
		}
	}
	return merged, len(starts)
}

// Restart reconstructs an UndoLog store for object obj from its write-ahead
// log after a crash, as a two-pass presumed-abort protocol in the style of
// ARIES-lineage restart:
//
//  1. Outcomes (pass 1): scan the whole durable log for transaction-level
//     commit records (wal.TxnCommitRec). A transaction is a winner iff its
//     TxnCommitRec survived; everything else is presumed aborted. Because
//     Txn.Commit stages the TxnCommitRec after every per-object CommitRec
//     and batches are consistent cuts, a winner's per-object records are
//     always durable too — but the converse does not hold, and a crash
//     between two objects' CommitRecs of one transaction (or before the
//     TxnCommitRec) makes the whole transaction a loser at every object,
//     never half of one.
//
//  2. Redo + undo (pass 2): replay every Update record for obj in LSN
//     order against the machine, checking that each operation reproduces
//     its logged response (the machine is a deterministic refinement, so
//     divergence means a corrupt log or mismatched machine). Compensation
//     records re-apply the undo they logged. A per-object CommitRec is a
//     redo hint only: it discharges a winner's pending undo records, but
//     for a loser it is ignored, so the loser's updates stay undoable.
//     Losers' un-compensated updates are then undone newest-first, exactly
//     as live abort processing would have done, and compensation plus
//     abort records are appended so the log ends in a state equivalent to
//     "every loser aborted".
//
// The paper deliberately leaves crash recovery out of scope (Section 1);
// Restart is the natural engineering extension the paper's abort-recovery
// analysis anticipates: because undo is logical (operation-level), the
// reconstructed state is exactly the one obtained by aborting the losers,
// and the correctness argument is Theorem 9's. The presumed-abort outcome
// rule is the commit protocol the paper's model assumes delegated to the
// log: the transaction-level record is the atomic commit point for all
// objects at once.
//
// The returned store owns the same log and is ready for new transactions.
// A truncated log (checkpointing ran) cannot be restarted without its
// snapshot — use RestartAllWithCheckpoint.
func Restart(obj history.ObjectID, m adt.Machine, log *wal.Log) (*UndoLog, error) {
	if base := log.Base(); base > 0 {
		return nil, fmt.Errorf("recovery: restart %s: log truncated to base %d but no checkpoint snapshot supplied",
			obj, base)
	}
	if d := log.Discipline(); d == wal.DisciplineRedo {
		return nil, fmt.Errorf("recovery: restart %s: log carries the redo-only discipline marker; use RestartRedoOnly",
			obj)
	}
	snap := log.Snapshot()
	var stats RestartStats
	st, tail, err := restartWith(obj, m, log, snap, Winners(snap), nil, &stats)
	if err != nil {
		return nil, err
	}
	appendTail(log, tail)
	return st, nil
}

// appendTail writes the compensation and abort records a restart's undo
// phase produced. Restart workers never touch the log themselves; their
// tails are appended here, in object order, so the records land in the
// same sequence regardless of parallelism.
func appendTail(log *wal.Log, tail []wal.Record) {
	for _, r := range tail {
		log.Append(r)
	}
}

// RestartAll restarts every listed object of one shared log, scanning the
// log and computing the winner set once (pass 1 is per-log, not
// per-object). machineFor supplies a fresh machine per object. The
// compensation and abort records the undo phases produce are appended in
// the given object order, so the resulting log is deterministic — and
// identical at every parallelism (see RestartConfig).
func RestartAll(objs []history.ObjectID, machineFor func(history.ObjectID) adt.Machine,
	log *wal.Log) (map[history.ObjectID]*UndoLog, error) {
	out, _, err := RestartAllWithCheckpoint(objs, machineFor, log, nil)
	return out, err
}

// RestartAllWithCheckpoint is RestartAll seeded from a fuzzy checkpoint:
// each object covered by the snapshot starts from its captured state with
// its in-flight transaction table reconstructed, and pass 2 replays only
// the records past that object's marker — the bounded-suffix restart the
// checkpoint exists for. Objects the snapshot does not cover (registered
// after the checkpoint's shard walk) replay in full from the retained log.
// A nil snapshot is a plain full-log restart. The winner scan (pass 1)
// runs over the retained log, which by the checkpoint contract contains
// every decision record restart can need: any transaction pending at a
// capture, or starting after one, stages its transaction-level commit
// record past the checkpoint frontier, and any transaction wholly decided
// before the frontier is already folded into the captured states.
//
// Restart parallelism defaults to GOMAXPROCS; use RestartAllWithConfig to
// pin it. The returned stats separate bounded work (Replayed) from skipped
// prefix records, report the seeding volume, and carry the per-worker and
// per-pass breakdown of E18.
func RestartAllWithCheckpoint(objs []history.ObjectID, machineFor func(history.ObjectID) adt.Machine,
	log *wal.Log, ckpt *checkpoint.Snapshot) (map[history.ObjectID]*UndoLog, RestartStats, error) {
	return RestartAllWithConfig(objs, machineFor, log, ckpt, RestartConfig{})
}

// RestartAllWithConfig is the fully parameterized restart. Pass 1's winner
// scan fans out one goroutine per durable log segment (see
// wal.Log.SegmentBounds; unsegmented backends scan in even chunks), and
// pass 2 runs a pool of cfg.Parallelism workers, each object hashed to one
// worker — an object's records replay on exactly one goroutine, in LSN
// order, so per-object ordering needs no synchronization at all (the same
// argument that makes the live engine's sharded registry safe). Undo-phase
// appends are collected per object and written after the pool joins, in
// object order: the recovered state, winner set, appended records, and
// aggregate stats are bit-identical at every parallelism.
//
// The logging discipline is detected from the log itself: a log carrying
// the redo-only discipline marker (see wal.DisciplineMarker) restarts via
// the winners-only forward replay of restartRedoWith; an unmarked log
// restarts via the redo+undo protocol of restartWith. A log or checkpoint
// whose contents contradict the detected discipline is rejected before any
// replay — see checkLogDiscipline.
func RestartAllWithConfig(objs []history.ObjectID, machineFor func(history.ObjectID) adt.Machine,
	log *wal.Log, ckpt *checkpoint.Snapshot, cfg RestartConfig) (map[history.ObjectID]*UndoLog, RestartStats, error) {
	start := time.Now() //lint:ignore detreplay wall-clock stats only (RestartStats timing); never feeds replayed state
	var stats RestartStats
	if ckpt == nil && log.Base() > 0 {
		// A truncated log is only replayable from the checkpoint that
		// justified the truncation. Replaying the bare suffix from initial
		// state would often pass the response checks (deltas reproduce
		// against many wrong states) and return silently wrong values, so
		// a missing snapshot is an error, not a degraded restart.
		return nil, stats, fmt.Errorf("recovery: log truncated to base %d but no checkpoint snapshot supplied",
			log.Base())
	}
	if ckpt != nil && log.Base() >= ckpt.Frontier {
		return nil, stats, fmt.Errorf("recovery: log truncated to base %d past checkpoint %s frontier %d",
			log.Base(), ckpt.ID, ckpt.Frontier)
	}
	redo := log.Discipline() == wal.DisciplineRedo
	if ckpt != nil {
		if ckptRedo := ckpt.Discipline == wal.DisciplineRedo; ckptRedo != redo {
			return nil, stats, fmt.Errorf("recovery: checkpoint %s discipline %q does not match log discipline %q",
				ckpt.ID, ckpt.Discipline, log.Discipline())
		}
	}
	p := cfg.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	p = stripepkg.RoundPow2(p, stripepkg.MaxStripes)

	// Pass 1: partitioned winner scan over the consistent log snapshot.
	bounds := log.SegmentBounds()
	snap := log.Snapshot()
	stats.LogRecords = len(snap)
	if err := checkLogDiscipline(snap, redo); err != nil {
		return nil, stats, err
	}
	pass1 := time.Now() //lint:ignore detreplay wall-clock stats only (RestartStats timing); never feeds replayed state
	winners, parts := winnersParallel(snap, bounds, p)
	stats.Pass1NS = time.Since(pass1).Nanoseconds() //lint:ignore detreplay wall-clock stats only (RestartStats timing); never feeds replayed state
	stats.Segments = parts
	if redo && log.Base() == 0 {
		// On an untruncated log every winner's dependency set must itself
		// be durable — a cheap end-to-end audit of the consistent-cut
		// batching that the winners-only replay relies on. Truncation may
		// fold a dependency's commit record away, so the check is skipped
		// once the log has a base.
		if err := checkDepClosure(snap, winners); err != nil {
			return nil, stats, err
		}
	}

	seeds := make(map[history.ObjectID]*checkpoint.ObjectSnapshot)
	if ckpt != nil {
		for i := range ckpt.Objects {
			seeds[ckpt.Objects[i].Obj] = &ckpt.Objects[i]
		}
	}

	// Pass 2: hash each object to one worker; every worker replays its
	// objects (in the caller's object order) with a private stats block,
	// writing results and undo tails into per-object slots.
	stats.Parallelism = p
	mask := uint32(p - 1)
	buckets := make([][]int, p) // worker -> indices into objs, ascending
	for i, obj := range objs {
		w := stripepkg.FNV32a(string(obj)) & mask
		buckets[w] = append(buckets[w], i)
	}
	stores := make([]*UndoLog, len(objs))
	tails := make([][]wal.Record, len(objs))
	errs := make([]error, len(objs))
	workerStats := make([]RestartStats, p)
	pass2 := time.Now() //lint:ignore detreplay wall-clock stats only (RestartStats timing); never feeds replayed state
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		if len(buckets[w]) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, i := range buckets[w] {
				obj := objs[i]
				if redo {
					st, err := restartRedoWith(obj, machineFor(obj), log, snap, winners, seeds[obj], &workerStats[w])
					if err != nil {
						errs[i] = fmt.Errorf("recovery: restart %s: %w", obj, err)
						return
					}
					stores[i] = st
					continue
				}
				st, tail, err := restartWith(obj, machineFor(obj), log, snap, winners, seeds[obj], &workerStats[w])
				if err != nil {
					errs[i] = fmt.Errorf("recovery: restart %s: %w", obj, err)
					return
				}
				stores[i], tails[i] = st, tail
			}
		}(w)
	}
	wg.Wait()
	stats.Pass2NS = time.Since(pass2).Nanoseconds() //lint:ignore detreplay wall-clock stats only (RestartStats timing); never feeds replayed state

	// Merge per-worker counters deterministically (worker order) and
	// surface the first error in object order.
	stats.PerWorker = make([]WorkerStats, p)
	for w := 0; w < p; w++ {
		ws := &workerStats[w]
		stats.PerWorker[w] = WorkerStats{
			Objects:  len(buckets[w]),
			Replayed: ws.Replayed,
			Skipped:  ws.Skipped,
			Undone:   ws.Undone,
		}
		stats.Replayed += ws.Replayed
		stats.Skipped += ws.Skipped
		stats.SeededObjects += ws.SeededObjects
		stats.SeededTxns += ws.SeededTxns
		stats.Undone += ws.Undone
	}
	for _, err := range errs {
		if err != nil {
			return nil, stats, err
		}
	}

	// Undo tails are appended only now, in object order: identical log
	// contents at every parallelism.
	out := make(map[history.ObjectID]*UndoLog, len(objs))
	for i, obj := range objs {
		appendTail(log, tails[i])
		out[obj] = stores[i]
	}
	stats.WallNS = time.Since(start).Nanoseconds() //lint:ignore detreplay wall-clock stats only (RestartStats timing); never feeds replayed state
	return out, stats, nil
}

// restartWith is pass 2 of Restart against a pre-scanned log snapshot and
// winner set (so multi-object callers can share pass 1), optionally seeded
// from one object's checkpoint capture. It never appends to the log
// itself — the undo phase's compensation and abort records are returned as
// a tail for the caller to append in a deterministic order (restart
// workers run concurrently; their tails must not interleave).
func restartWith(obj history.ObjectID, m adt.Machine, log *wal.Log,
	snap []wal.Record, winners map[history.TxnID]bool,
	seed *checkpoint.ObjectSnapshot, stats *RestartStats) (*UndoLog, []wal.Record, error) {
	type txnInfo struct {
		aborted bool
		// pending holds applied-but-not-compensated update records, in
		// apply order.
		pending []undoRec
	}
	txns := make(map[history.TxnID]*txnInfo)
	get := func(t history.TxnID) *txnInfo {
		ti := txns[t]
		if ti == nil {
			ti = &txnInfo{}
			txns[t] = ti
		}
		return ti
	}

	state := m.Init()
	bi, hasBI := m.(adt.BeforeImageUndoer)

	// Checkpoint seeding: start from the captured (dirty) state and rebuild
	// the in-flight transaction table exactly as it stood at the object's
	// marker. The suffix replay below then continues the same execution the
	// live object performed, and the undo phase can roll back in-table
	// losers even if their only records lie in the truncated prefix.
	var markerLSN wal.LSN
	if seed != nil {
		vc, ok := m.(adt.ValueCodec)
		if !ok {
			return nil, nil, fmt.Errorf("recovery: restart %s: machine %s has no value codec for checkpoint state",
				obj, m.Name())
		}
		v, err := vc.DecodeValue(seed.State)
		if err != nil {
			return nil, nil, fmt.Errorf("recovery: restart %s: checkpoint state: %w", obj, err)
		}
		state = v
		markerLSN = seed.MarkerLSN
		stats.SeededObjects++
		for _, at := range seed.Active {
			ti := get(at.Txn)
			stats.SeededTxns++
			for _, po := range at.Ops {
				var before any
				if po.HasUndo {
					c, ok := m.(adt.UndoTokenCodec)
					if !ok {
						return nil, nil, fmt.Errorf("recovery: restart %s: machine %s has no undo token codec",
							obj, m.Name())
					}
					dec, err := c.DecodeUndoToken(po.Undo)
					if err != nil {
						return nil, nil, fmt.Errorf("recovery: restart %s: checkpoint undo token of %s: %w",
							obj, at.Txn, err)
					}
					before = dec
				}
				ti.pending = append(ti.pending, undoRec{op: po.Op, before: before})
			}
		}
	}

	undoOne := func(r undoRec) error {
		var next adt.Value
		var err error
		if hasBI && r.before != nil {
			next, err = bi.UndoWithBefore(state, r.op, r.before)
		} else {
			next, err = m.Undo(state, r.op)
		}
		if err != nil {
			return err
		}
		state = next
		return nil
	}

	// Pass 2, redo: replay obj's history from the log — all of it on a
	// plain restart, only the suffix past the object's capture marker on a
	// checkpointed one (the captured state already reflects the prefix).
	for _, rec := range snap {
		if rec.Obj != obj {
			continue
		}
		if rec.LSN <= markerLSN {
			stats.Skipped++
			continue
		}
		if rec.Kind == wal.CheckpointRec {
			// A capture marker — this checkpoint's own (LSN == markerLSN,
			// already skipped above, unless the log was not truncated), an
			// older checkpoint's, or a newer incomplete one's. Markers carry
			// no state.
			continue
		}
		stats.Replayed++
		ti := get(rec.Txn)
		switch rec.Kind {
		case wal.Update:
			res, next, err := m.Apply(state, rec.Op.Inv)
			if err != nil {
				return nil, nil, fmt.Errorf("recovery: restart redo LSN %d: %w", rec.LSN, err)
			}
			if res != rec.Op.Res {
				return nil, nil, fmt.Errorf("recovery: restart redo LSN %d: operation %s replayed with response %q",
					rec.LSN, rec.Op, res)
			}
			state = next
			before := rec.Undo
			if enc, ok := before.(wal.EncodedUndo); ok {
				c, ok := m.(adt.UndoTokenCodec)
				if !ok {
					return nil, nil, fmt.Errorf("recovery: restart LSN %d: machine %s has no undo token codec",
						rec.LSN, m.Name())
				}
				dec, err := c.DecodeUndoToken(string(enc))
				if err != nil {
					return nil, nil, fmt.Errorf("recovery: restart LSN %d: %w", rec.LSN, err)
				}
				before = dec
			}
			ti.pending = append(ti.pending, undoRec{op: rec.Op, before: before})
		case wal.CompensationRec:
			if len(ti.pending) == 0 {
				return nil, nil, fmt.Errorf("recovery: restart LSN %d: compensation with no pending update for %s",
					rec.LSN, rec.Txn)
			}
			last := ti.pending[len(ti.pending)-1]
			if last.op != rec.Op {
				return nil, nil, fmt.Errorf("recovery: restart LSN %d: compensation order mismatch (%s vs %s)",
					rec.LSN, last.op, rec.Op)
			}
			if err := undoOne(last); err != nil {
				return nil, nil, fmt.Errorf("recovery: restart LSN %d: %w", rec.LSN, err)
			}
			ti.pending = ti.pending[:len(ti.pending)-1]
		case wal.CommitRec:
			// Redo hint only: for a winner the updates are durably
			// committed and need no undo records. For a loser (its
			// TxnCommitRec never became durable) the record is ignored —
			// presumed abort keeps the updates pending so the undo phase,
			// or a previous restart's compensation records, can undo them.
			if winners[rec.Txn] {
				ti.pending = nil
			}
		case wal.AbortRec:
			ti.aborted = true
			if len(ti.pending) != 0 {
				return nil, nil, fmt.Errorf("recovery: restart: abort record for %s with %d un-compensated updates",
					rec.Txn, len(ti.pending))
			}
		default:
			// Only a redo-only engine writes per-object records of any other
			// kind; callers dispatch on the discipline marker before getting
			// here (see checkLogDiscipline), so this is a torn handoff.
			return nil, nil, fmt.Errorf("recovery: restart LSN %d: unexpected %s record in undo-mode replay",
				rec.LSN, rec.Kind)
		}
	}

	// Pass 2, undo: roll back the losers, producing compensation records as
	// live abort would. Deterministic order: by transaction ID. A loser
	// whose updates were all compensated before the crash (the abort flush
	// died after the last CLR but before the abort record) has nothing left
	// to undo but is still terminated with an abort record, so the next
	// restart sees it closed.
	var tail []wal.Record
	var losers []history.TxnID
	for t, ti := range txns {
		if !winners[t] && !ti.aborted {
			losers = append(losers, t)
		}
	}
	sortTxnIDs(losers)
	for _, t := range losers {
		ti := txns[t]
		for i := len(ti.pending) - 1; i >= 0; i-- {
			r := ti.pending[i]
			if err := undoOne(r); err != nil {
				return nil, nil, fmt.Errorf("recovery: restart undo of loser %s: %w", t, err)
			}
			stats.Undone++
			tail = append(tail, wal.Record{Kind: wal.CompensationRec, Txn: t, Obj: obj, Op: r.op})
		}
		tail = append(tail, wal.Record{Kind: wal.AbortRec, Txn: t, Obj: obj})
	}

	return &UndoLog{
		obj:     obj,
		machine: m,
		current: state,
		log:     log,
		chain:   make(map[history.TxnID][]undoRec),
	}, tail, nil
}

func sortTxnIDs(ids []history.TxnID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
