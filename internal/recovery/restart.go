package recovery

import (
	"fmt"

	"repro/internal/adt"
	"repro/internal/history"
	"repro/internal/wal"
)

// Restart reconstructs an UndoLog store for object obj from its write-ahead
// log after a crash, in the style of an abort-only ARIES restart:
//
//  1. Redo: replay every Update record for obj in LSN order against the
//     machine, checking that each operation reproduces its logged response
//     (the machine is a deterministic refinement, so divergence means a
//     corrupt log or mismatched machine). Compensation records re-apply the
//     undo they logged.
//  2. Undo: transactions with updates but neither a commit nor an abort
//     record are losers — in-flight at the crash. Their un-compensated
//     updates are undone newest-first, exactly as live abort processing
//     would have done, and compensation plus abort records are appended so
//     the log ends in a state equivalent to "every loser aborted".
//
// The paper deliberately leaves crash recovery out of scope (Section 1);
// Restart is the natural engineering extension the paper's abort-recovery
// analysis anticipates: because undo is logical (operation-level), the
// reconstructed state is exactly the one obtained by aborting the losers,
// and the correctness argument is Theorem 9's.
//
// The returned store owns the same log and is ready for new transactions.
func Restart(obj history.ObjectID, m adt.Machine, log *wal.Log) (*UndoLog, error) {
	type txnInfo struct {
		committed bool
		aborted   bool
		// pending holds applied-but-not-compensated update records, in
		// apply order.
		pending []undoRec
	}
	txns := make(map[history.TxnID]*txnInfo)
	get := func(t history.TxnID) *txnInfo {
		ti := txns[t]
		if ti == nil {
			ti = &txnInfo{}
			txns[t] = ti
		}
		return ti
	}

	state := m.Init()
	bi, hasBI := m.(adt.BeforeImageUndoer)

	undoOne := func(r undoRec) error {
		var next adt.Value
		var err error
		if hasBI && r.before != nil {
			next, err = bi.UndoWithBefore(state, r.op, r.before)
		} else {
			next, err = m.Undo(state, r.op)
		}
		if err != nil {
			return err
		}
		state = next
		return nil
	}

	// Phase 1: redo history from the log.
	for _, rec := range log.Snapshot() {
		if rec.Obj != obj {
			continue
		}
		ti := get(rec.Txn)
		switch rec.Kind {
		case wal.Update:
			res, next, err := m.Apply(state, rec.Op.Inv)
			if err != nil {
				return nil, fmt.Errorf("recovery: restart redo LSN %d: %w", rec.LSN, err)
			}
			if res != rec.Op.Res {
				return nil, fmt.Errorf("recovery: restart redo LSN %d: operation %s replayed with response %q",
					rec.LSN, rec.Op, res)
			}
			state = next
			before := rec.Undo
			if enc, ok := before.(wal.EncodedUndo); ok {
				c, ok := m.(adt.UndoTokenCodec)
				if !ok {
					return nil, fmt.Errorf("recovery: restart LSN %d: machine %s has no undo token codec",
						rec.LSN, m.Name())
				}
				dec, err := c.DecodeUndoToken(string(enc))
				if err != nil {
					return nil, fmt.Errorf("recovery: restart LSN %d: %w", rec.LSN, err)
				}
				before = dec
			}
			ti.pending = append(ti.pending, undoRec{op: rec.Op, before: before})
		case wal.CompensationRec:
			if len(ti.pending) == 0 {
				return nil, fmt.Errorf("recovery: restart LSN %d: compensation with no pending update for %s",
					rec.LSN, rec.Txn)
			}
			last := ti.pending[len(ti.pending)-1]
			if last.op != rec.Op {
				return nil, fmt.Errorf("recovery: restart LSN %d: compensation order mismatch (%s vs %s)",
					rec.LSN, last.op, rec.Op)
			}
			if err := undoOne(last); err != nil {
				return nil, fmt.Errorf("recovery: restart LSN %d: %w", rec.LSN, err)
			}
			ti.pending = ti.pending[:len(ti.pending)-1]
		case wal.CommitRec:
			ti.committed = true
			ti.pending = nil
		case wal.AbortRec:
			ti.aborted = true
			if len(ti.pending) != 0 {
				return nil, fmt.Errorf("recovery: restart: abort record for %s with %d un-compensated updates",
					rec.Txn, len(ti.pending))
			}
		}
	}

	// Phase 2: undo the losers, logging compensation as live abort would.
	// Deterministic order: by transaction ID.
	var losers []history.TxnID
	for t, ti := range txns {
		if !ti.committed && !ti.aborted && len(ti.pending) > 0 {
			losers = append(losers, t)
		}
	}
	sortTxnIDs(losers)
	for _, t := range losers {
		ti := txns[t]
		for i := len(ti.pending) - 1; i >= 0; i-- {
			r := ti.pending[i]
			if err := undoOne(r); err != nil {
				return nil, fmt.Errorf("recovery: restart undo of loser %s: %w", t, err)
			}
			log.Append(wal.Record{Kind: wal.CompensationRec, Txn: t, Obj: obj, Op: r.op})
		}
		log.Append(wal.Record{Kind: wal.AbortRec, Txn: t, Obj: obj})
	}

	return &UndoLog{
		obj:     obj,
		machine: m,
		current: state,
		log:     log,
		chain:   make(map[history.TxnID][]undoRec),
	}, nil
}

func sortTxnIDs(ids []history.TxnID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
