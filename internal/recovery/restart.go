package recovery

import (
	"fmt"

	"repro/internal/adt"
	"repro/internal/checkpoint"
	"repro/internal/history"
	"repro/internal/wal"
)

// RestartStats counts the work one restart performed — the dependent
// variable of the restart-time-versus-log-length experiment (E17).
// Without a checkpoint, Replayed grows with the whole log; with one, it is
// bounded by the suffix past the checkpoint frontier.
type RestartStats struct {
	// LogRecords is the number of records in the scanned (retained) log —
	// what pass 1's winner scan walks.
	LogRecords int
	// Replayed counts the per-object records pass 2 processed (updates
	// redone, compensations re-applied, commit/abort records consumed).
	Replayed int
	// Skipped counts per-object records pass 2 skipped because the
	// checkpoint's capture already reflects them (LSN at or below the
	// object's marker).
	Skipped int
	// SeededObjects and SeededTxns count checkpoint seeding: objects whose
	// state came from the snapshot, and in-flight transactions whose undo
	// tables were reconstructed from it.
	SeededObjects int
	SeededTxns    int
	// Undone counts loser updates rolled back by the undo phase.
	Undone int
}

// Winners scans log records for transaction-level commit records and
// returns the set of transactions that durably committed. This is pass 1
// of the restart protocol, shared across the per-object restarts of one
// log: recovery is presumed-abort, so a transaction absent from this set
// is a loser — even if some of its per-object CommitRecs reached the
// durable log before the crash.
func Winners(recs []wal.Record) map[history.TxnID]bool {
	w := make(map[history.TxnID]bool)
	for _, rec := range recs {
		if rec.Kind == wal.TxnCommitRec {
			w[rec.Txn] = true
		}
	}
	return w
}

// Restart reconstructs an UndoLog store for object obj from its write-ahead
// log after a crash, as a two-pass presumed-abort protocol in the style of
// ARIES-lineage restart:
//
//  1. Outcomes (pass 1): scan the whole durable log for transaction-level
//     commit records (wal.TxnCommitRec). A transaction is a winner iff its
//     TxnCommitRec survived; everything else is presumed aborted. Because
//     Txn.Commit stages the TxnCommitRec after every per-object CommitRec
//     and batches are consistent cuts, a winner's per-object records are
//     always durable too — but the converse does not hold, and a crash
//     between two objects' CommitRecs of one transaction (or before the
//     TxnCommitRec) makes the whole transaction a loser at every object,
//     never half of one.
//
//  2. Redo + undo (pass 2): replay every Update record for obj in LSN
//     order against the machine, checking that each operation reproduces
//     its logged response (the machine is a deterministic refinement, so
//     divergence means a corrupt log or mismatched machine). Compensation
//     records re-apply the undo they logged. A per-object CommitRec is a
//     redo hint only: it discharges a winner's pending undo records, but
//     for a loser it is ignored, so the loser's updates stay undoable.
//     Losers' un-compensated updates are then undone newest-first, exactly
//     as live abort processing would have done, and compensation plus
//     abort records are appended so the log ends in a state equivalent to
//     "every loser aborted".
//
// The paper deliberately leaves crash recovery out of scope (Section 1);
// Restart is the natural engineering extension the paper's abort-recovery
// analysis anticipates: because undo is logical (operation-level), the
// reconstructed state is exactly the one obtained by aborting the losers,
// and the correctness argument is Theorem 9's. The presumed-abort outcome
// rule is the commit protocol the paper's model assumes delegated to the
// log: the transaction-level record is the atomic commit point for all
// objects at once.
//
// The returned store owns the same log and is ready for new transactions.
// A truncated log (checkpointing ran) cannot be restarted without its
// snapshot — use RestartAllWithCheckpoint.
func Restart(obj history.ObjectID, m adt.Machine, log *wal.Log) (*UndoLog, error) {
	if base := log.Base(); base > 0 {
		return nil, fmt.Errorf("recovery: restart %s: log truncated to base %d but no checkpoint snapshot supplied",
			obj, base)
	}
	snap := log.Snapshot()
	var stats RestartStats
	return restartWith(obj, m, log, snap, Winners(snap), nil, &stats)
}

// RestartAll restarts every listed object of one shared log, scanning the
// log and computing the winner set once (pass 1 is per-log, not
// per-object). machineFor supplies a fresh machine per object. Objects are
// restarted in the given order, so the compensation and abort records the
// undo phases append are deterministic.
//
// The snapshot is taken once: the records each object's undo phase appends
// are scoped to that object and invisible to the others' pass 2 anyway,
// and no restart ever appends a TxnCommitRec, so the shared winner set
// stays exact.
func RestartAll(objs []history.ObjectID, machineFor func(history.ObjectID) adt.Machine,
	log *wal.Log) (map[history.ObjectID]*UndoLog, error) {
	out, _, err := RestartAllWithCheckpoint(objs, machineFor, log, nil)
	return out, err
}

// RestartAllWithCheckpoint is RestartAll seeded from a fuzzy checkpoint:
// each object covered by the snapshot starts from its captured state with
// its in-flight transaction table reconstructed, and pass 2 replays only
// the records past that object's marker — the bounded-suffix restart the
// checkpoint exists for. Objects the snapshot does not cover (registered
// after the checkpoint's shard walk) replay in full from the retained log.
// A nil snapshot is a plain full-log restart. The winner scan (pass 1)
// runs over the retained log, which by the checkpoint contract contains
// every decision record restart can need: any transaction pending at a
// capture, or starting after one, stages its transaction-level commit
// record past the checkpoint frontier, and any transaction wholly decided
// before the frontier is already folded into the captured states.
//
// The returned stats separate bounded work (Replayed) from skipped prefix
// records and report the seeding volume — the measured quantities of E17.
func RestartAllWithCheckpoint(objs []history.ObjectID, machineFor func(history.ObjectID) adt.Machine,
	log *wal.Log, ckpt *checkpoint.Snapshot) (map[history.ObjectID]*UndoLog, RestartStats, error) {
	var stats RestartStats
	if ckpt == nil && log.Base() > 0 {
		// A truncated log is only replayable from the checkpoint that
		// justified the truncation. Replaying the bare suffix from initial
		// state would often pass the response checks (deltas reproduce
		// against many wrong states) and return silently wrong values, so
		// a missing snapshot is an error, not a degraded restart.
		return nil, stats, fmt.Errorf("recovery: log truncated to base %d but no checkpoint snapshot supplied",
			log.Base())
	}
	if ckpt != nil && log.Base() >= ckpt.Frontier {
		return nil, stats, fmt.Errorf("recovery: log truncated to base %d past checkpoint %s frontier %d",
			log.Base(), ckpt.ID, ckpt.Frontier)
	}
	snap := log.Snapshot()
	stats.LogRecords = len(snap)
	winners := Winners(snap)
	seeds := make(map[history.ObjectID]*checkpoint.ObjectSnapshot)
	if ckpt != nil {
		for i := range ckpt.Objects {
			seeds[ckpt.Objects[i].Obj] = &ckpt.Objects[i]
		}
	}
	out := make(map[history.ObjectID]*UndoLog, len(objs))
	for _, obj := range objs {
		st, err := restartWith(obj, machineFor(obj), log, snap, winners, seeds[obj], &stats)
		if err != nil {
			return nil, stats, fmt.Errorf("recovery: restart %s: %w", obj, err)
		}
		out[obj] = st
	}
	return out, stats, nil
}

// restartWith is pass 2 of Restart against a pre-scanned log snapshot and
// winner set (so multi-object callers can share pass 1), optionally seeded
// from one object's checkpoint capture.
func restartWith(obj history.ObjectID, m adt.Machine, log *wal.Log,
	snap []wal.Record, winners map[history.TxnID]bool,
	seed *checkpoint.ObjectSnapshot, stats *RestartStats) (*UndoLog, error) {
	type txnInfo struct {
		aborted bool
		// pending holds applied-but-not-compensated update records, in
		// apply order.
		pending []undoRec
	}
	txns := make(map[history.TxnID]*txnInfo)
	get := func(t history.TxnID) *txnInfo {
		ti := txns[t]
		if ti == nil {
			ti = &txnInfo{}
			txns[t] = ti
		}
		return ti
	}

	state := m.Init()
	bi, hasBI := m.(adt.BeforeImageUndoer)

	// Checkpoint seeding: start from the captured (dirty) state and rebuild
	// the in-flight transaction table exactly as it stood at the object's
	// marker. The suffix replay below then continues the same execution the
	// live object performed, and the undo phase can roll back in-table
	// losers even if their only records lie in the truncated prefix.
	var markerLSN wal.LSN
	if seed != nil {
		vc, ok := m.(adt.ValueCodec)
		if !ok {
			return nil, fmt.Errorf("recovery: restart %s: machine %s has no value codec for checkpoint state",
				obj, m.Name())
		}
		v, err := vc.DecodeValue(seed.State)
		if err != nil {
			return nil, fmt.Errorf("recovery: restart %s: checkpoint state: %w", obj, err)
		}
		state = v
		markerLSN = seed.MarkerLSN
		stats.SeededObjects++
		for _, at := range seed.Active {
			ti := get(at.Txn)
			stats.SeededTxns++
			for _, po := range at.Ops {
				var before any
				if po.HasUndo {
					c, ok := m.(adt.UndoTokenCodec)
					if !ok {
						return nil, fmt.Errorf("recovery: restart %s: machine %s has no undo token codec",
							obj, m.Name())
					}
					dec, err := c.DecodeUndoToken(po.Undo)
					if err != nil {
						return nil, fmt.Errorf("recovery: restart %s: checkpoint undo token of %s: %w",
							obj, at.Txn, err)
					}
					before = dec
				}
				ti.pending = append(ti.pending, undoRec{op: po.Op, before: before})
			}
		}
	}

	undoOne := func(r undoRec) error {
		var next adt.Value
		var err error
		if hasBI && r.before != nil {
			next, err = bi.UndoWithBefore(state, r.op, r.before)
		} else {
			next, err = m.Undo(state, r.op)
		}
		if err != nil {
			return err
		}
		state = next
		return nil
	}

	// Pass 2, redo: replay obj's history from the log — all of it on a
	// plain restart, only the suffix past the object's capture marker on a
	// checkpointed one (the captured state already reflects the prefix).
	for _, rec := range snap {
		if rec.Obj != obj {
			continue
		}
		if rec.LSN <= markerLSN {
			stats.Skipped++
			continue
		}
		if rec.Kind == wal.CheckpointRec {
			// A capture marker — this checkpoint's own (LSN == markerLSN,
			// already skipped above, unless the log was not truncated), an
			// older checkpoint's, or a newer incomplete one's. Markers carry
			// no state.
			continue
		}
		stats.Replayed++
		ti := get(rec.Txn)
		switch rec.Kind {
		case wal.Update:
			res, next, err := m.Apply(state, rec.Op.Inv)
			if err != nil {
				return nil, fmt.Errorf("recovery: restart redo LSN %d: %w", rec.LSN, err)
			}
			if res != rec.Op.Res {
				return nil, fmt.Errorf("recovery: restart redo LSN %d: operation %s replayed with response %q",
					rec.LSN, rec.Op, res)
			}
			state = next
			before := rec.Undo
			if enc, ok := before.(wal.EncodedUndo); ok {
				c, ok := m.(adt.UndoTokenCodec)
				if !ok {
					return nil, fmt.Errorf("recovery: restart LSN %d: machine %s has no undo token codec",
						rec.LSN, m.Name())
				}
				dec, err := c.DecodeUndoToken(string(enc))
				if err != nil {
					return nil, fmt.Errorf("recovery: restart LSN %d: %w", rec.LSN, err)
				}
				before = dec
			}
			ti.pending = append(ti.pending, undoRec{op: rec.Op, before: before})
		case wal.CompensationRec:
			if len(ti.pending) == 0 {
				return nil, fmt.Errorf("recovery: restart LSN %d: compensation with no pending update for %s",
					rec.LSN, rec.Txn)
			}
			last := ti.pending[len(ti.pending)-1]
			if last.op != rec.Op {
				return nil, fmt.Errorf("recovery: restart LSN %d: compensation order mismatch (%s vs %s)",
					rec.LSN, last.op, rec.Op)
			}
			if err := undoOne(last); err != nil {
				return nil, fmt.Errorf("recovery: restart LSN %d: %w", rec.LSN, err)
			}
			ti.pending = ti.pending[:len(ti.pending)-1]
		case wal.CommitRec:
			// Redo hint only: for a winner the updates are durably
			// committed and need no undo records. For a loser (its
			// TxnCommitRec never became durable) the record is ignored —
			// presumed abort keeps the updates pending so the undo phase,
			// or a previous restart's compensation records, can undo them.
			if winners[rec.Txn] {
				ti.pending = nil
			}
		case wal.AbortRec:
			ti.aborted = true
			if len(ti.pending) != 0 {
				return nil, fmt.Errorf("recovery: restart: abort record for %s with %d un-compensated updates",
					rec.Txn, len(ti.pending))
			}
		}
	}

	// Pass 2, undo: roll back the losers, logging compensation as live
	// abort would. Deterministic order: by transaction ID. A loser whose
	// updates were all compensated before the crash (the abort flush died
	// after the last CLR but before the abort record) has nothing left to
	// undo but is still terminated with an abort record, so the next
	// restart sees it closed.
	var losers []history.TxnID
	for t, ti := range txns {
		if !winners[t] && !ti.aborted {
			losers = append(losers, t)
		}
	}
	sortTxnIDs(losers)
	for _, t := range losers {
		ti := txns[t]
		for i := len(ti.pending) - 1; i >= 0; i-- {
			r := ti.pending[i]
			if err := undoOne(r); err != nil {
				return nil, fmt.Errorf("recovery: restart undo of loser %s: %w", t, err)
			}
			stats.Undone++
			log.Append(wal.Record{Kind: wal.CompensationRec, Txn: t, Obj: obj, Op: r.op})
		}
		log.Append(wal.Record{Kind: wal.AbortRec, Txn: t, Obj: obj})
	}

	return &UndoLog{
		obj:     obj,
		machine: m,
		current: state,
		log:     log,
		chain:   make(map[history.TxnID][]undoRec),
	}, nil
}

func sortTxnIDs(ids []history.TxnID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
