package recovery_test

// Segmented-backend crash coverage: the transfer crash sweep and the
// checkpointed (truncating) transfer sweep re-run on wal.SegmentedBackend
// with a deliberately tiny segment size, so segment rotation happens every
// few batches and crash points land at and around rotation boundaries —
// the new failure surface the segmented backend introduces (a batch
// acknowledged against a just-created segment file whose dirent must be
// durable, a truncation that unlinked some dead segments before dying).
// Plus the parallel-restart property test: restarting the same durable
// artifacts with parallelism 1 and parallelism 8 must produce identical
// recovered values, winner sets, post-restart logs, and aggregate replay
// counters (run under -race in CI).

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/adt"
	"repro/internal/checkpoint"
	"repro/internal/history"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/txn"
	"repro/internal/wal"
)

// segCrashBytes keeps segments a few batches long for the transfer
// workload (~20-40 bytes per record), so every sweep run rotates many
// times.
const segCrashBytes = 512

func segCrashConfig() wal.SegmentConfig {
	return wal.SegmentConfig{MaxSegmentBytes: segCrashBytes}
}

// readSegmentedLog returns the durable records of a segmented WAL
// directory (the oracle's view of what survived the crash).
func readSegmentedLog(t *testing.T, dir string) []wal.Record {
	t.Helper()
	b, err := wal.OpenSegmentedBackend(dir, segCrashConfig())
	if err != nil {
		t.Fatalf("read segmented log %s: %v", dir, err)
	}
	recs := append([]wal.Record(nil), b.Replay()...)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	return recs
}

// runTransferCrashWorkloadSegmented is runTransferCrashWorkload over a
// segmented backend: same workload, same crash contract, rotated segment
// files instead of one append-only file.
func runTransferCrashWorkloadSegmented(t *testing.T, dir string, crashAt int, seed int64) int {
	t.Helper()
	cfg := transferCrashConfig(seed)
	backend, err := wal.CreateSegmentedBackend(dir, segCrashConfig())
	if err != nil {
		t.Fatal(err)
	}
	var cp wal.CrashPoint
	if crashAt >= 0 {
		cp = func(batch int, _ []wal.Record) bool { return batch >= crashAt }
	}
	log, err := wal.Open(wal.Config{Async: true, Backend: backend, CrashPoint: cp})
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewTransferEngine(cfg, log)
	sim.RunTransfers(e, cfg)
	if err := e.Close(); err != nil {
		t.Fatalf("engine close: %v", err)
	}
	if err := history.WellFormed(e.History()); err != nil {
		t.Fatalf("live history malformed: %v", err)
	}
	return int(e.WAL().Flushes())
}

// restartSegmentedOf reopens a segmented WAL directory and restarts every
// listed object at the given parallelism, returning the recovered values,
// the post-restart records, and the restart stats.
func restartSegmentedOf(t *testing.T, dir string, point int, objs []history.ObjectID,
	parallelism int) (map[history.ObjectID]string, []wal.Record, recovery.RestartStats) {
	t.Helper()
	backend, err := wal.OpenSegmentedBackend(dir, segCrashConfig())
	if err != nil {
		t.Fatalf("crash point %d: reopen segmented: %v", point, err)
	}
	log, err := wal.Open(wal.Config{Backend: backend})
	if err != nil {
		t.Fatalf("crash point %d: replay: %v", point, err)
	}
	stores, stats, err := recovery.RestartAllWithConfig(objs,
		func(history.ObjectID) adt.Machine { return crashMachine() }, log, nil,
		recovery.RestartConfig{Parallelism: parallelism})
	if err != nil {
		t.Fatalf("crash point %d: %v", point, err)
	}
	vals := map[history.ObjectID]string{}
	for obj, st := range stores {
		vals[obj] = st.CommittedValue().Encode()
	}
	recs := log.Snapshot()
	if err := log.Close(); err != nil {
		t.Fatalf("crash point %d: close restarted log: %v", point, err)
	}
	return vals, recs, stats
}

// TestTransferCrashSweepSegmented: the transfer crash sweep of
// transfer_crash_test.go on the segmented backend. Tiny segments put many
// rotation boundaries inside the sweep's crash range; at every injection
// point the reopened segment set must recover to the oracle balance,
// conserve the total, terminate every loser, and be a fixed point under a
// second restart.
func TestTransferCrashSweepSegmented(t *testing.T) {
	dir := t.TempDir()
	cfg := transferCrashConfig(1)
	objs := transferObjects(cfg)
	total := cfg.Accounts * cfg.InitialBalance

	calDir := filepath.Join(dir, "cal")
	batches := runTransferCrashWorkloadSegmented(t, calDir, -1, 1)
	if batches < 5 {
		t.Fatalf("workload produced only %d batches; sweep needs more boundaries", batches)
	}
	// The tiny segment size must actually rotate, or the sweep degenerates
	// into the single-file case.
	calBackend, err := wal.OpenSegmentedBackend(calDir, segCrashConfig())
	if err != nil {
		t.Fatal(err)
	}
	calSegs := len(calBackend.Segments())
	calBackend.Close()
	if calSegs < 3 {
		t.Fatalf("calibration run produced only %d segments; crashes cannot land at rotation boundaries", calSegs)
	}

	losersSeen := 0
	stride := 1
	const maxPoints = 16
	if batches > maxPoints {
		stride = (batches + maxPoints - 1) / maxPoints
	}
	for k := 0; k <= batches; k += stride {
		k := k
		t.Run(fmt.Sprintf("crash-at-batch-%02d", k), func(t *testing.T) {
			wdir := filepath.Join(dir, fmt.Sprintf("crash%02d", k))
			runTransferCrashWorkloadSegmented(t, wdir, k, int64(1000+k))
			durable := readSegmentedLog(t, wdir)
			if countInFlight(durable) > 0 {
				losersSeen++
			}
			vals, recs, _ := restartSegmentedOf(t, wdir, k, objs, 0)
			sum := 0
			for _, obj := range objs {
				want := strconv.Itoa(expectedBalance(durable, obj, cfg.InitialBalance))
				if vals[obj] != want {
					t.Errorf("account %s: restarted state %s, oracle %s (durable prefix %d records)",
						obj, vals[obj], want, len(durable))
				}
				bal, err := strconv.Atoi(vals[obj])
				if err != nil {
					t.Fatalf("account %s: unparsable state %q", obj, vals[obj])
				}
				sum += bal
				assertLosersTerminated(t, recs, obj, k)
			}
			if sum != total {
				t.Errorf("crash point %d: recovered total %d, want %d — restart observed half a transfer",
					k, sum, total)
			}
			again, _, _ := restartSegmentedOf(t, wdir, k, objs, 0)
			for obj, v := range vals {
				if again[obj] != v {
					t.Errorf("account %s: second restart diverged: %s vs %s", obj, again[obj], v)
				}
			}
		})
	}
	if losersSeen == 0 {
		t.Error("no injection point produced an in-flight loser; the sweep is not crashing inside transfers")
	}
}

// runCheckpointedTransferSegmented drives the checkpointing transfer
// workload (truncation enabled — segment unlinking live) on a segmented
// backend, with the WAL crash point and the checkpoint store's crash hook
// sharing one flag.
func runCheckpointedTransferSegmented(t *testing.T, walDir, ckptDir string, crashAt int, seed int64) int {
	t.Helper()
	cfg := transferCrashConfig(seed)
	backend, err := wal.CreateSegmentedBackend(walDir, segCrashConfig())
	if err != nil {
		t.Fatal(err)
	}
	var crashed atomic.Bool
	var cp wal.CrashPoint
	if crashAt >= 0 {
		cp = func(batch int, _ []wal.Record) bool {
			if batch >= crashAt {
				crashed.Store(true)
			}
			return crashed.Load()
		}
	}
	log, err := wal.Open(wal.Config{Async: true, Backend: backend, CrashPoint: cp})
	if err != nil {
		t.Fatal(err)
	}
	store, err := checkpoint.OpenFileStore(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	store.SetCrashHook(func(*checkpoint.Snapshot) bool { return crashed.Load() })
	e := txn.NewEngine(txn.Options{
		RecordHistory: cfg.Record,
		Shards:        cfg.Shards,
		WAL:           log,
		Checkpoint:    &txn.CheckpointOptions{Store: store},
	})
	ba := cfg.BankAccount()
	for i := 0; i < cfg.Accounts; i++ {
		e.MustRegister(sim.TransferAccountID(i), ba, adt.DefaultBankAccount().NRBC(), txn.UndoLogRecovery)
	}
	done := make(chan struct{})
	var ckptWG sync.WaitGroup
	ckptWG.Add(1)
	go func() {
		defer ckptWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := e.Checkpoint(); err != nil && !errors.Is(err, wal.ErrClosed) {
				t.Errorf("live checkpoint: %v", err)
				return
			}
			runtime.Gosched()
		}
	}()
	sim.RunTransfers(e, cfg)
	close(done)
	ckptWG.Wait()
	batches := int(e.WAL().Flushes())
	if err := e.Close(); err != nil {
		t.Fatalf("engine close: %v", err)
	}
	return max(batches, int(e.WAL().Flushes()))
}

// restartSegmentedCkptOf is restartSegmentedOf seeded from the newest
// durable snapshot of a checkpoint store.
func restartSegmentedCkptOf(t *testing.T, walDir, ckptDir string, point int, objs []history.ObjectID,
	parallelism int) (map[history.ObjectID]string, []wal.Record, *checkpoint.Snapshot, recovery.RestartStats) {
	t.Helper()
	backend, err := wal.OpenSegmentedBackend(walDir, segCrashConfig())
	if err != nil {
		t.Fatalf("crash point %d: reopen segmented: %v", point, err)
	}
	log, err := wal.Open(wal.Config{Backend: backend})
	if err != nil {
		t.Fatalf("crash point %d: replay: %v", point, err)
	}
	store, err := checkpoint.OpenFileStore(ckptDir)
	if err != nil {
		t.Fatalf("crash point %d: reopen checkpoint store: %v", point, err)
	}
	snap, err := store.Latest()
	if err != nil {
		t.Fatalf("crash point %d: load checkpoint: %v", point, err)
	}
	stores, stats, err := recovery.RestartAllWithConfig(objs,
		func(history.ObjectID) adt.Machine { return crashMachine() }, log, snap,
		recovery.RestartConfig{Parallelism: parallelism})
	if err != nil {
		t.Fatalf("crash point %d: checkpointed restart: %v", point, err)
	}
	vals := map[history.ObjectID]string{}
	for obj, st := range stores {
		vals[obj] = st.CommittedValue().Encode()
	}
	recs := log.Snapshot()
	if err := log.Close(); err != nil {
		t.Fatalf("crash point %d: close restarted log: %v", point, err)
	}
	return vals, recs, snap, stats
}

// TestCheckpointTransferCrashSweepSegmented: the truncating checkpointed
// transfer sweep on the segmented backend — live truncation unlinks dead
// segments (aligned to segment starts) while the workload runs, then a
// crash leaves a segment-set-plus-snapshot pair the restart must recover
// from. Conservation oracles every point; the retained log must start at a
// segment boundary at or below the snapshot frontier.
func TestCheckpointTransferCrashSweepSegmented(t *testing.T) {
	dir := t.TempDir()
	cfg := transferCrashConfig(1)
	objs := transferObjects(cfg)
	total := cfg.Accounts * cfg.InitialBalance

	batches := runCheckpointedTransferSegmented(t, filepath.Join(dir, "cal"), filepath.Join(dir, "cal.ckpt"), -1, 1)
	if batches < 5 {
		t.Fatalf("workload produced only %d batches; sweep needs more boundaries", batches)
	}

	seeded, truncatedPoints := 0, 0
	stride := 1
	const maxPoints = 12
	if batches > maxPoints {
		stride = (batches + maxPoints - 1) / maxPoints
	}
	for k := 0; k <= batches; k += stride {
		k := k
		t.Run(fmt.Sprintf("crash-at-batch-%02d", k), func(t *testing.T) {
			walDir := filepath.Join(dir, fmt.Sprintf("crash%02d", k))
			ckptDir := filepath.Join(dir, fmt.Sprintf("crash%02d.ckpt", k))
			runCheckpointedTransferSegmented(t, walDir, ckptDir, k, int64(1000+k))
			durable := readSegmentedLog(t, walDir)
			vals, recs, snap, _ := restartSegmentedCkptOf(t, walDir, ckptDir, k, objs, 0)
			sum := 0
			for _, obj := range objs {
				bal, err := strconv.Atoi(vals[obj])
				if err != nil {
					t.Fatalf("account %s: unparsable state %q", obj, vals[obj])
				}
				sum += bal
				assertLosersTerminated(t, recs, obj, k)
			}
			if sum != total {
				t.Errorf("crash point %d: recovered total %d, want %d (snapshot %v, %d retained records)",
					k, sum, total, snap != nil, len(durable))
			}
			if snap != nil {
				seeded++
				if len(durable) > 0 && durable[0].LSN > 1 {
					truncatedPoints++
					if durable[0].LSN > snap.Frontier {
						t.Errorf("retained log starts at %d, past the snapshot frontier %d — truncation outran its checkpoint",
							durable[0].LSN, snap.Frontier)
					}
				}
			}
			again, _, _, _ := restartSegmentedCkptOf(t, walDir, ckptDir, k, objs, 0)
			for obj, v := range vals {
				if again[obj] != v {
					t.Errorf("account %s: second restart diverged: %s vs %s", obj, again[obj], v)
				}
			}
		})
	}
	if seeded == 0 {
		t.Error("no injection point restarted from a durable checkpoint")
	}
	if truncatedPoints == 0 {
		t.Error("no injection point saw a truncated (segment-unlinked) durable log")
	}
	t.Logf("sweep: %d points checkpoint-seeded, %d with unlinked segments", seeded, truncatedPoints)
}

// copySegmentDir clones a segmented WAL directory so two restart variants
// can each mutate (append their undo tails to) identical durable
// artifacts.
func copySegmentDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestParallelRestartEquivalence is the property test of the parallel
// restart: over the same crashed, checkpointed, truncated durable
// artifacts, RestartAllWithConfig at parallelism 1 (fully sequential) and
// parallelism 8 must produce identical recovered values, identical winner
// sets, identical post-restart logs (the undo tails land in object order
// regardless of which worker produced them), and identical aggregate
// replay/skip/undo counters — with the per-worker breakdown at
// parallelism 8 actually spreading the replay over multiple workers.
func TestParallelRestartEquivalence(t *testing.T) {
	dir := t.TempDir()
	cfg := transferCrashConfig(1)
	objs := transferObjects(cfg)

	srcWal := filepath.Join(dir, "src")
	ckptDir := filepath.Join(dir, "src.ckpt")
	batches := runCheckpointedTransferSegmented(t, srcWal, ckptDir, -1, 7)
	// Re-run crashed near the middle so the restart has real losers to
	// undo (the crash-free artifacts would exercise redo only).
	srcWal = filepath.Join(dir, "crashed")
	ckptDir = filepath.Join(dir, "crashed.ckpt")
	runCheckpointedTransferSegmented(t, srcWal, ckptDir, batches/2, 7)

	// Winner sets are decided by the durable artifacts alone; both
	// variants read clones of the same bytes.
	durable := readSegmentedLog(t, srcWal)
	wantWinners := recovery.Winners(durable)

	type result struct {
		vals  map[history.ObjectID]string
		recs  []wal.Record
		stats recovery.RestartStats
	}
	variants := map[string]int{"seq": 1, "par8": 8}
	results := map[string]result{}
	for name, p := range variants {
		vdir := filepath.Join(dir, "variant-"+name)
		copySegmentDir(t, srcWal, vdir)
		if got := readSegmentedLog(t, vdir); !reflect.DeepEqual(got, durable) {
			t.Fatalf("variant %s: cloned artifacts differ from source", name)
		}
		vals, recs, _, stats := restartSegmentedCkptOf(t, vdir, ckptDir, batches/2, objs, p)
		results[name] = result{vals, recs, stats}
	}

	seq, par := results["seq"], results["par8"]
	if seq.stats.Parallelism != 1 {
		t.Fatalf("sequential variant ran at parallelism %d", seq.stats.Parallelism)
	}
	if par.stats.Parallelism != 8 {
		t.Fatalf("parallel variant ran at parallelism %d", par.stats.Parallelism)
	}
	if !reflect.DeepEqual(seq.vals, par.vals) {
		t.Errorf("recovered values diverge:\nseq: %v\npar: %v", seq.vals, par.vals)
	}
	if !reflect.DeepEqual(seq.recs, par.recs) {
		t.Errorf("post-restart logs diverge: %d vs %d records", len(seq.recs), len(par.recs))
		for i := range seq.recs {
			if i < len(par.recs) && !reflect.DeepEqual(seq.recs[i], par.recs[i]) {
				t.Errorf("first divergence at index %d: %+v vs %+v", i, seq.recs[i], par.recs[i])
				break
			}
		}
	}
	for _, r := range []result{seq, par} {
		if got := recovery.Winners(r.recs); !reflect.DeepEqual(got, wantWinners) {
			t.Errorf("winner set changed by restart: %v vs %v", got, wantWinners)
		}
	}
	agg := func(s recovery.RestartStats) [6]int {
		return [6]int{s.LogRecords, s.Replayed, s.Skipped, s.SeededObjects, s.SeededTxns, s.Undone}
	}
	if agg(seq.stats) != agg(par.stats) {
		t.Errorf("aggregate stats diverge: seq %v, par %v", agg(seq.stats), agg(par.stats))
	}
	// The parallel variant's replay must actually be distributed: more
	// than one worker touched objects (6 accounts over 8 hash buckets).
	busy := 0
	for _, w := range par.stats.PerWorker {
		if w.Objects > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("parallel restart used %d workers for %d objects; expected the hash to spread them", busy, len(objs))
	}
	// Per-worker replay counts must sum to the aggregate.
	sumReplayed := 0
	for _, w := range par.stats.PerWorker {
		sumReplayed += w.Replayed
	}
	if sumReplayed != par.stats.Replayed {
		t.Errorf("per-worker replayed sums to %d, aggregate is %d", sumReplayed, par.stats.Replayed)
	}
}
