package recovery_test

// Release-policy durability tests: the crash sweep of crash_test.go run
// under ReleaseAfterAck (locks held to the ack change the interleavings
// the flusher sees, not the oracle), plus the failed-backend experiment
// the release policies exist for — a log device that dies mid-run, after
// which no transaction may ever be cleanly acknowledged on top of state
// the durable log does not contain.

import (
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/adt"
	"repro/internal/history"
	"repro/internal/txn"
	"repro/internal/wal"
)

// TestReleaseAfterAckCrashSweep re-runs the crash-injection sweep under
// ReleaseAfterAck: at every injected boundary the restarted state must
// match the transaction-granularity winners oracle, no loser may survive,
// and a second restart must be a fixed point — holding locks across the
// barrier must not change what the durable log means, only when it is
// observable.
func TestReleaseAfterAckCrashSweep(t *testing.T) {
	dir := t.TempDir()
	calPath := filepath.Join(dir, "cal.wal")
	batches, e := runCrashWorkloadPolicy(t, calPath, -1, 11, txn.ReleaseAfterAck)
	if batches < 3 {
		t.Fatalf("workload produced only %d batches; sweep needs more boundaries", batches)
	}
	verifyLiveHistory(t, e)
	stride := 1
	const maxPoints = 12
	if batches > maxPoints {
		stride = (batches + maxPoints - 1) / maxPoints
	}
	for k := 0; k <= batches; k += stride {
		k := k
		t.Run(fmt.Sprintf("crash-at-batch-%02d", k), func(t *testing.T) {
			path := filepath.Join(dir, fmt.Sprintf("crash%02d.wal", k))
			runCrashWorkloadPolicy(t, path, k, int64(300+k), txn.ReleaseAfterAck)
			durable, err := wal.ReadFileLog(path)
			if err != nil {
				t.Fatal(err)
			}
			vals, recs := restartAll(t, path, k)
			for i := 0; i < crashObjects; i++ {
				obj := crashObjID(i)
				want := strconv.Itoa(expectedBalance(durable, obj, crashInitialBalance))
				if vals[obj] != want {
					t.Errorf("object %s: restarted state %s, oracle %s", obj, vals[obj], want)
				}
				assertLosersTerminated(t, recs, obj, k)
			}
			again, _ := restartAll(t, path, k)
			for obj, v := range vals {
				if again[obj] != v {
					t.Errorf("object %s: second restart diverged: %s vs %s", obj, again[obj], v)
				}
			}
		})
	}
}

// failAfterBackend delegates to an inner file backend for the first
// okSyncs batches, then fails every later sync without writing — a log
// device that dies mid-run. The durable prefix is exactly the batches
// acknowledged before the death.
type failAfterBackend struct {
	inner   *wal.FileBackend
	okSyncs int
	calls   int
	err     error
}

func (b *failAfterBackend) Sync(recs []wal.Record) error {
	b.calls++
	if b.calls > b.okSyncs {
		return b.err
	}
	return b.inner.Sync(recs)
}
func (b *failAfterBackend) Close() error { return b.inner.Close() }

// TestNoAckedCommitOnUnsyncedLoser is the acceptance experiment for the
// release policies, against a real file backend that dies after its first
// batch:
//
//   - T1 commits while the device lives → clean ack.
//   - T2 commits into the dead device → ErrDurability, never a clean ack.
//   - T3 reads T2's unsynced state and commits → terminated through the
//     abort path (ErrDurability+ErrAborted): no acknowledged commit ever
//     reads from an unsynced loser.
//
// The log file is then re-opened and restarted: the recovered state must
// contain exactly the cleanly acknowledged transactions — what the
// application was told survives agrees with what restart reconstructs —
// under both ReleaseEarlyTracked and ReleaseAfterAck.
func TestNoAckedCommitOnUnsyncedLoser(t *testing.T) {
	for _, pol := range []txn.ReleasePolicy{txn.ReleaseEarlyTracked, txn.ReleaseAfterAck} {
		t.Run(pol.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "dying.wal")
			inner, err := wal.CreateFileBackend(path)
			if err != nil {
				t.Fatal(err)
			}
			devErr := errors.New("log device died")
			backend := &failAfterBackend{inner: inner, okSyncs: 1, err: devErr}
			log, err := wal.Open(wal.Config{Backend: backend})
			if err != nil {
				t.Fatal(err)
			}
			ba := adt.BankAccount{InitialBalance: crashInitialBalance, MaxBalance: 1 << 20,
				Amounts: []int{1, 2, 3, 5, 7, 9}}
			e := txn.NewEngine(txn.Options{WAL: log, ReleasePolicy: pol})
			e.MustRegister("X", ba, adt.DefaultBankAccount().NRBC(), txn.UndoLogRecovery)

			// T1: committed while the device lives — cleanly acknowledged.
			t1 := e.Begin()
			if _, err := t1.Invoke("X", adt.Deposit(5)); err != nil {
				t.Fatal(err)
			}
			if err := t1.Commit(); err != nil {
				t.Fatalf("T1 Commit = %v, want clean ack (device alive)", err)
			}

			// T2: its batch hits the dead device.
			t2 := e.Begin()
			if _, err := t2.Invoke("X", adt.Deposit(7)); err != nil {
				t.Fatal(err)
			}
			err2 := t2.Commit()
			if !errors.Is(err2, txn.ErrDurability) || !errors.Is(err2, devErr) {
				t.Fatalf("T2 Commit = %v, want ErrDurability wrapping the device failure", err2)
			}

			// T3: reads T2's unsynced state; must be terminated, not acked.
			t3 := e.Begin()
			if _, err := t3.Invoke("X", adt.Balance()); err != nil {
				t.Fatal(err)
			}
			if _, err := t3.Invoke("X", adt.Deposit(9)); err != nil {
				t.Fatal(err)
			}
			err3 := t3.Commit()
			if !errors.Is(err3, txn.ErrDurability) || !errors.Is(err3, txn.ErrAborted) {
				t.Fatalf("T3 Commit = %v, want ErrDurability+ErrAborted (cascade to the dependent)", err3)
			}
			if got := e.Metrics.DurabilityAborts.Load(); got != 1 {
				t.Errorf("DurabilityAborts = %d, want 1", got)
			}
			if err := e.Close(); !errors.Is(err, devErr) {
				t.Fatalf("Close = %v, want the sticky device failure", err)
			}

			// Restart from the durable file: exactly the acknowledged
			// transaction survives.
			vals, recs := restartAllOf(t, path, 0, []history.ObjectID{"X"})
			want := strconv.Itoa(crashInitialBalance + 5)
			if vals["X"] != want {
				t.Errorf("restarted state %s, want %s (exactly the cleanly acked T1)", vals["X"], want)
			}
			winners := durableWinners(recs)
			if !winners[t1.ID()] {
				t.Errorf("cleanly acked %s is not a durable winner", t1.ID())
			}
			for _, tx := range []*txn.Txn{t2, t3} {
				if winners[tx.ID()] {
					t.Errorf("%s was never cleanly acked but restarted as a winner", tx.ID())
				}
			}
			assertLosersTerminated(t, recs, "X", 0)
		})
	}
}
