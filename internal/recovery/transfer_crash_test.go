package recovery_test

// Transfer crash sweep: the multi-object transfer workload (withdraw at
// one account, deposit at another, one transaction) runs on a file-backed
// asynchronous WAL crashed at every batch boundary. Transaction atomicity
// is observable as money conservation, so this sweep is the direct test of
// transaction-atomic restart: at every crash boundary — between the two
// legs' updates, between per-object commit records, or between them and
// the transaction-level commit record — the recovered accounts must sum to
// exactly the initial total. Half a transfer surviving restart is the bug
// the presumed-abort protocol exists to make impossible.

import (
	"fmt"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/adt"
	"repro/internal/history"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/wal"
)

// transferCrashConfig pins the workload to the banking-machine parameters
// the shared restart helpers use (initial balance crashInitialBalance,
// amounts 1..3), so crashMachine() is exactly the machine that produced
// the durable log. Transfers fan out over three participants: the commit
// sweep spans three objects, so crash boundaries can separate any pair of
// legs, any pair of per-object commit records, or the last of them from
// the transaction-level commit record.
func transferCrashConfig(seed int64) sim.TransferConfig {
	cfg := sim.DefaultTransferConfig()
	cfg.InitialBalance = crashInitialBalance
	cfg.MaxAmount = 3
	cfg.TxnsPerWorker = 12
	cfg.Participants = 3
	cfg.Seed = seed
	cfg.Record = true
	return cfg
}

func transferObjects(cfg sim.TransferConfig) []history.ObjectID {
	objs := make([]history.ObjectID, cfg.Accounts)
	for i := range objs {
		objs[i] = sim.TransferAccountID(i)
	}
	return objs
}

// runTransferCrashWorkload drives the transfer workload against a
// file-backed async WAL that stops persisting at batch crashAt
// (crashAt < 0 = never crash), returning the number of batch boundaries.
func runTransferCrashWorkload(t *testing.T, path string, crashAt int, seed int64) int {
	t.Helper()
	cfg := transferCrashConfig(seed)
	backend, err := wal.CreateFileBackend(path)
	if err != nil {
		t.Fatal(err)
	}
	var cp wal.CrashPoint
	if crashAt >= 0 {
		cp = func(batch int, _ []wal.Record) bool { return batch >= crashAt }
	}
	// Zero dwell: the flusher sequences eagerly, so batches are small and
	// boundaries fall inside transfers (between the two legs' updates and
	// between commit processing and the transaction-level commit record),
	// which is exactly what this sweep needs to crash into.
	log, err := wal.Open(wal.Config{
		Async:      true,
		Backend:    backend,
		CrashPoint: cp,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewTransferEngine(cfg, log)
	sim.RunTransfers(e, cfg)
	if err := e.Close(); err != nil {
		t.Fatalf("engine close: %v", err)
	}
	if err := history.WellFormed(e.History()); err != nil {
		t.Fatalf("live history malformed: %v", err)
	}
	return int(e.WAL().Flushes())
}

// countMidCompensation returns the number of (transaction, object) pairs
// whose durable prefix contains a compensation record but no abort record
// — the crash fell during an Abort's compensation flush.
func countMidCompensation(recs []wal.Record) int {
	type key struct {
		t history.TxnID
		o history.ObjectID
	}
	compensated := map[key]bool{}
	aborted := map[key]bool{}
	for _, r := range recs {
		switch r.Kind {
		case wal.CompensationRec:
			compensated[key{r.Txn, r.Obj}] = true
		case wal.AbortRec:
			aborted[key{r.Txn, r.Obj}] = true
		}
	}
	n := 0
	for k := range compensated {
		if !aborted[k] {
			n++
		}
	}
	return n
}

// TestTransferCrashSweep crashes the flusher at every staged/flushed
// boundary of the transfer workload and proves, per injection point, that
// restart on the re-opened file (1) recovers every account to the
// transaction-granularity oracle balance, (2) conserves the total — no
// boundary ever recovers half a transfer, (3) terminates every loser, and
// (4) is a fixed point under a second restart. The winner set is decided
// by durable TxnCommitRecs alone (presumed abort): a transaction with
// per-object CommitRecs but no transaction-level record contributes
// nothing anywhere.
func TestTransferCrashSweep(t *testing.T) {
	dir := t.TempDir()
	cfg := transferCrashConfig(1)
	objs := transferObjects(cfg)
	total := cfg.Accounts * cfg.InitialBalance

	calPath := filepath.Join(dir, "cal.wal")
	batches := runTransferCrashWorkload(t, calPath, -1, 1)
	if batches < 5 {
		t.Fatalf("workload produced only %d batches; sweep needs more boundaries", batches)
	}

	losersSeen := 0
	commitSplits := 0
	midComps := 0
	stride := 1
	const maxPoints = 24
	if batches > maxPoints {
		stride = (batches + maxPoints - 1) / maxPoints
	}
	for k := 0; k <= batches; k += stride {
		k := k
		t.Run(fmt.Sprintf("crash-at-batch-%02d", k), func(t *testing.T) {
			path := filepath.Join(dir, fmt.Sprintf("crash%02d.wal", k))
			runTransferCrashWorkload(t, path, k, int64(1000+k))
			durable, err := wal.ReadFileLog(path)
			if err != nil {
				t.Fatal(err)
			}
			if countInFlight(durable) > 0 {
				losersSeen++
			}
			commitSplits += countCommitSplit(durable)
			midComps += countMidCompensation(durable)

			vals, recs := restartAllOf(t, path, k, objs)
			sum := 0
			for _, obj := range objs {
				want := strconv.Itoa(expectedBalance(durable, obj, cfg.InitialBalance))
				if vals[obj] != want {
					t.Errorf("account %s: restarted state %s, oracle %s (durable prefix %d records)",
						obj, vals[obj], want, len(durable))
				}
				bal, err := strconv.Atoi(vals[obj])
				if err != nil {
					t.Fatalf("account %s: unparsable state %q", obj, vals[obj])
				}
				sum += bal
				assertLosersTerminated(t, recs, obj, k)
			}
			if sum != total {
				t.Errorf("crash point %d: recovered total %d, want %d — restart observed half a transfer",
					k, sum, total)
			}
			again, _ := restartAllOf(t, path, k, objs)
			for obj, v := range vals {
				if again[obj] != v {
					t.Errorf("account %s: second restart diverged: %s vs %s", obj, again[obj], v)
				}
			}
		})
	}
	if losersSeen == 0 {
		t.Error("no injection point produced an in-flight loser; the sweep is not crashing inside transfers")
	}
	t.Logf("sweep saw %d loser boundaries, %d commit-split transactions, %d mid-compensation pairs",
		losersSeen, commitSplits, midComps)
}

// TestTransferCommitSplitDeterministic pins the exact boundary the
// presumed-abort protocol exists for, without relying on the sweep's
// scheduling luck: the durable log ends after BOTH per-object commit
// records of a transfer but before its transaction-level commit record.
// Restart must treat the transfer as a loser at both accounts.
func TestTransferCommitSplitDeterministic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "split.wal")
	backend, err := wal.CreateFileBackend(path)
	if err != nil {
		t.Fatal(err)
	}
	log, err := wal.Open(wal.Config{Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	src := recovery.NewUndoLog("xfer00", crashMachine(), log)
	dst := recovery.NewUndoLog("xfer01", crashMachine(), log)
	if _, err := src.Apply("T", adt.Withdraw(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Apply("T", adt.Deposit(2)); err != nil {
		t.Fatal(err)
	}
	// The per-object commit sweep completed at both participants...
	if err := src.Commit("T"); err != nil {
		t.Fatal(err)
	}
	if err := dst.Commit("T"); err != nil {
		t.Fatal(err)
	}
	log.Flush()
	// ...and the machine died before the TxnCommitRec was staged.
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	objs := []history.ObjectID{"xfer00", "xfer01"}
	vals, recs := restartAllOf(t, path, 0, objs)
	want := strconv.Itoa(crashInitialBalance)
	for _, obj := range objs {
		if vals[obj] != want {
			t.Errorf("account %s: restarted state %s, want %s (presumed abort must undo the transfer)",
				obj, vals[obj], want)
		}
		assertLosersTerminated(t, recs, obj, 0)
	}
	again, _ := restartAllOf(t, path, 0, objs)
	for obj, v := range vals {
		if again[obj] != v {
			t.Errorf("account %s: second restart diverged: %s vs %s", obj, again[obj], v)
		}
	}
}
