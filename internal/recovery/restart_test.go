package recovery

import (
	"testing"

	"repro/internal/adt"
	"repro/internal/history"
	"repro/internal/spec"
	"repro/internal/wal"
)

// logTxnCommit stages the transaction-level commit record the way
// txn.Commit does after the per-object commit sweep. Restart is
// presumed-abort: without this record a transaction is a loser no matter
// how many per-object CommitRecs reached the log.
func logTxnCommit(log *wal.Log, txn history.TxnID) {
	log.Append(wal.Record{Kind: wal.TxnCommitRec, Txn: txn})
}

// TestRestartCleanLog: restart after only committed work reproduces the
// committed state.
func TestRestartCleanLog(t *testing.T) {
	log := wal.New()
	u := NewUndoLog("BA", adt.DefaultBankAccount().Machine(), log)
	mustApplyR(t, u, "A", adt.Deposit(5))
	mustApplyR(t, u, "A", adt.Withdraw(2))
	if err := u.Commit("A"); err != nil {
		t.Fatal(err)
	}
	logTxnCommit(log, "A")
	// Crash: discard u; rebuild from the log.
	r, err := Restart("BA", adt.DefaultBankAccount().Machine(), log)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.CommittedValue().Encode(); got != "3" {
		t.Fatalf("restart state = %s, want 3", got)
	}
}

// TestRestartUndoesLoser: an in-flight transaction at the crash is rolled
// back during restart, preserving concurrent committed work.
func TestRestartUndoesLoser(t *testing.T) {
	log := wal.New()
	u := NewUndoLog("BA", adt.DefaultBankAccount().Machine(), log)
	mustApplyR(t, u, "A", adt.Deposit(5))
	if err := u.Commit("A"); err != nil {
		t.Fatal(err)
	}
	logTxnCommit(log, "A")
	mustApplyR(t, u, "B", adt.Deposit(3)) // loser: never commits
	mustApplyR(t, u, "C", adt.Deposit(2))
	if err := u.Commit("C"); err != nil {
		t.Fatal(err)
	}
	logTxnCommit(log, "C")

	r, err := Restart("BA", adt.DefaultBankAccount().Machine(), log)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.CommittedValue().Encode(); got != "7" {
		t.Fatalf("restart state = %s, want 7 (5 + 2, loser's 3 undone)", got)
	}
	// The log now ends with B's compensation and abort records.
	recs := log.Snapshot()
	last := recs[len(recs)-1]
	if last.Kind != wal.AbortRec || last.Txn != "B" {
		t.Fatalf("log should end with B's abort record, got %v", last)
	}
	// The restarted store accepts new work.
	mustApplyR(t, r, "D", adt.Deposit(1))
	if err := r.Commit("D"); err != nil {
		t.Fatal(err)
	}
	logTxnCommit(log, "D")
	if got := r.CommittedValue().Encode(); got != "8" {
		t.Fatalf("post-restart state = %s, want 8", got)
	}
}

// TestRestartPresumedAbortHalfCommitted is the transaction-atomic restart
// property itself: a transaction whose per-object CommitRecs reached the
// log at BOTH objects — but whose transaction-level commit record did not —
// is presumed aborted and undone everywhere. Before the TxnCommitRec
// existed, this durable prefix (the crash falling after the per-object
// commit sweep but before the commit point) recovered half-committed.
func TestRestartPresumedAbortHalfCommitted(t *testing.T) {
	log := wal.New()
	m := adt.DefaultBankAccount().Machine()
	ux := NewUndoLog("X", m, log)
	uy := NewUndoLog("Y", m, log)
	// Fund both accounts with a committed transaction.
	mustApplyR(t, ux, "F", adt.Deposit(10))
	mustApplyR(t, uy, "F", adt.Deposit(10))
	if err := ux.Commit("F"); err != nil {
		t.Fatal(err)
	}
	if err := uy.Commit("F"); err != nil {
		t.Fatal(err)
	}
	logTxnCommit(log, "F")
	// A transfer X→Y that got through both per-object commits, but crashed
	// before its transaction-level commit record was staged.
	mustApplyR(t, ux, "T", adt.Withdraw(4))
	mustApplyR(t, uy, "T", adt.Deposit(4))
	if err := ux.Commit("T"); err != nil {
		t.Fatal(err)
	}
	if err := uy.Commit("T"); err != nil {
		t.Fatal(err)
	}
	// No logTxnCommit(log, "T"): the crash point.

	rx, err := Restart("X", adt.DefaultBankAccount().Machine(), log)
	if err != nil {
		t.Fatal(err)
	}
	ry, err := Restart("Y", adt.DefaultBankAccount().Machine(), log)
	if err != nil {
		t.Fatal(err)
	}
	if got := rx.CommittedValue().Encode(); got != "10" {
		t.Fatalf("X after restart = %s, want 10 (transfer presumed aborted)", got)
	}
	if got := ry.CommittedValue().Encode(); got != "10" {
		t.Fatalf("Y after restart = %s, want 10 (transfer presumed aborted)", got)
	}
	// A second restart is a fixed point: T is now terminated by abort
	// records, and the state does not move.
	rx2, err := Restart("X", adt.DefaultBankAccount().Machine(), log)
	if err != nil {
		t.Fatal(err)
	}
	if got := rx2.CommittedValue().Encode(); got != "10" {
		t.Fatalf("X after second restart = %s, want 10", got)
	}
}

// TestRestartWinnerSurvivesWithCommitHints: with the TxnCommitRec durable,
// the per-object CommitRecs act as redo hints and the transaction's
// effects survive at every object.
func TestRestartWinnerSurvivesWithCommitHints(t *testing.T) {
	log := wal.New()
	m := adt.DefaultBankAccount().Machine()
	ux := NewUndoLog("X", m, log)
	uy := NewUndoLog("Y", m, log)
	mustApplyR(t, ux, "T", adt.Deposit(6))
	mustApplyR(t, uy, "T", adt.Deposit(7))
	if err := ux.Commit("T"); err != nil {
		t.Fatal(err)
	}
	if err := uy.Commit("T"); err != nil {
		t.Fatal(err)
	}
	logTxnCommit(log, "T")
	rx, err := Restart("X", adt.DefaultBankAccount().Machine(), log)
	if err != nil {
		t.Fatal(err)
	}
	ry, err := Restart("Y", adt.DefaultBankAccount().Machine(), log)
	if err != nil {
		t.Fatal(err)
	}
	if rx.CommittedValue().Encode() != "6" || ry.CommittedValue().Encode() != "7" {
		t.Fatalf("winner states = %s, %s; want 6, 7",
			rx.CommittedValue().Encode(), ry.CommittedValue().Encode())
	}
}

// TestRestartAfterPartialAbort: a crash in the middle of abort processing
// (some compensation records written) resumes the undo correctly.
func TestRestartAfterPartialAbort(t *testing.T) {
	log := wal.New()
	m := adt.DefaultBankAccount().Machine()
	u := NewUndoLog("BA", m, log)
	mustApplyR(t, u, "A", adt.Deposit(5))
	mustApplyR(t, u, "A", adt.Deposit(3))
	// Simulate a partial abort: write the CLR for the newest update only,
	// as live abort would before crashing mid-walk.
	log.Append(wal.Record{Kind: wal.CompensationRec, Txn: "A", Obj: "BA", Op: adt.DepositOk(3)})

	r, err := Restart("BA", adt.DefaultBankAccount().Machine(), log)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.CommittedValue().Encode(); got != "0" {
		t.Fatalf("restart state = %s, want 0 (both deposits undone, one via CLR)", got)
	}
}

// TestRestartIdempotent: restarting twice from the same log yields the same
// state — the second restart sees the losers already aborted.
func TestRestartIdempotent(t *testing.T) {
	log := wal.New()
	u := NewUndoLog("BA", adt.DefaultBankAccount().Machine(), log)
	mustApplyR(t, u, "A", adt.Deposit(5))
	if err := u.Commit("A"); err != nil {
		t.Fatal(err)
	}
	logTxnCommit(log, "A")
	mustApplyR(t, u, "B", adt.Withdraw(2)) // loser

	r1, err := Restart("BA", adt.DefaultBankAccount().Machine(), log)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Restart("BA", adt.DefaultBankAccount().Machine(), log)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CommittedValue().Encode() != r2.CommittedValue().Encode() {
		t.Fatalf("restart not idempotent: %s vs %s",
			r1.CommittedValue().Encode(), r2.CommittedValue().Encode())
	}
	if got := r2.CommittedValue().Encode(); got != "5" {
		t.Fatalf("state = %s, want 5", got)
	}
}

// TestRestartBeforeImageMachine: restart replays before-image undo tokens
// from the log for machines that need them (KV store).
func TestRestartBeforeImageMachine(t *testing.T) {
	log := wal.New()
	u := NewUndoLog("KV", adt.DefaultKVStore().Machine(), log)
	mustApplyR(t, u, "A", adt.Put("x", "1"))
	if err := u.Commit("A"); err != nil {
		t.Fatal(err)
	}
	logTxnCommit(log, "A")
	mustApplyR(t, u, "B", adt.Put("x", "2")) // loser overwrites x

	r, err := Restart("KV", adt.DefaultKVStore().Machine(), log)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.CommittedValue().Encode(); got != "<x=1>" {
		t.Fatalf("restart state = %s, want <x=1>", got)
	}
}

// TestRestartMultiObjectLog: the shared log interleaves records of several
// objects; restart filters correctly, and pass 1 (the winner scan) is
// shared semantics across the per-object restarts.
func TestRestartMultiObjectLog(t *testing.T) {
	log := wal.New()
	u1 := NewUndoLog("X", adt.DefaultBankAccount().Machine(), log)
	u2 := NewUndoLog("Y", adt.DefaultBankAccount().Machine(), log)
	mustApplyR(t, u1, "A", adt.Deposit(5))
	mustApplyR(t, u2, "A", adt.Deposit(7))
	if err := u1.Commit("A"); err != nil {
		t.Fatal(err)
	}
	if err := u2.Commit("A"); err != nil {
		t.Fatal(err)
	}
	logTxnCommit(log, "A")
	r1, err := Restart("X", adt.DefaultBankAccount().Machine(), log)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Restart("Y", adt.DefaultBankAccount().Machine(), log)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CommittedValue().Encode() != "5" || r2.CommittedValue().Encode() != "7" {
		t.Fatalf("restart states = %s, %s", r1.CommittedValue().Encode(), r2.CommittedValue().Encode())
	}
}

func mustApplyR(t *testing.T, u *UndoLog, txn history.TxnID, inv spec.Invocation) {
	t.Helper()
	if _, err := u.Apply(txn, inv); err != nil {
		t.Fatal(err)
	}
}
