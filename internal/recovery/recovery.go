// Package recovery implements the two executable recovery managers whose
// abstractions the paper studies (Section 5):
//
//   - UndoLog: update-in-place. A single current state is updated as
//     operations execute; each update stages an operation-level undo record
//     into the group-committed write-ahead log (sequenced at the engine's
//     commit-time flush), and abort walks the transaction's chain
//     backward applying logical inverses. Operation (logical) undo — not
//     before-image restoration of the whole object — is what lets
//     update-in-place coexist with concurrent updates, the very point the
//     paper makes about value logging à la Hadzilacos.
//
//   - Intentions: deferred update. The base state holds only committed
//     effects; each transaction accumulates an intentions list, responses
//     are computed against base-plus-own-intentions, commit applies the
//     list to the base in commit order, and abort simply discards it.
//
// The correspondence validated by tests and used by the engine:
// UndoLog realizes the UIP view function and requires an NRBC-containing
// conflict relation (Theorem 9); Intentions realizes DU and requires an
// NFC-containing relation (Theorem 10).
package recovery

import (
	"fmt"
	"sort"

	"repro/internal/adt"
	"repro/internal/checkpoint"
	"repro/internal/history"
	"repro/internal/spec"
	"repro/internal/wal"
)

// Store is the per-object recovery interface the transaction engine drives.
// Stores are not synchronized; the engine serializes access per object.
type Store interface {
	// Peek computes the response inv would receive for txn in the current
	// recovery state without applying it. It returns adt.ErrNotEnabled for
	// partial invocations with no legal response.
	Peek(txn history.TxnID, inv spec.Invocation) (spec.Response, error)
	// Apply executes inv for txn, recording whatever the recovery
	// discipline needs to commit or abort it later. The returned response
	// equals what Peek would have returned at the same instant.
	Apply(txn history.TxnID, inv spec.Invocation) (spec.Response, error)
	// Commit makes txn's effects permanent.
	Commit(txn history.TxnID) error
	// Abort erases txn's effects.
	Abort(txn history.TxnID) error
	// CommittedValue returns the state reflecting only committed
	// transactions. For an update-in-place store this requires no active
	// updaters to be meaningful; callers use it quiescently (tests, end of
	// run).
	CommittedValue() adt.Value
	// Kind names the recovery discipline ("undo-log" or "intentions").
	Kind() string
}

// BatchCommitter is implemented by stores whose per-object commit
// processing splits into a staging half and an infallible in-memory half,
// letting the engine's sharded commit pipeline stage many objects' commit
// records under one WAL stripe acquisition (wal.Log.AppendBatchAsync)
// before discharging any of them. The contract mirrors Commit's ordering
// discipline exactly: the caller stages every record CommitRecords
// returns, then — and only then — calls CommitStaged, so a staging
// failure leaves the store untouched and the transaction still cleanly
// abortable. A store that does not implement the interface (the
// deferred-update intentions store, whose commit applies the intent list
// and can fail) is committed through plain Commit instead.
type BatchCommitter interface {
	// CommitRecords returns the records Commit would stage for txn (nil
	// when the discipline stages nothing per object, as under REDO-only
	// logging). It must not read or write any state guarded by the object
	// latch — the pipeline calls it before latching.
	CommitRecords(txn history.TxnID) []wal.Record
	// CommitStaged makes txn's effects permanent, assuming the caller
	// already staged every record CommitRecords returned. It cannot fail.
	CommitStaged(txn history.TxnID)
}

// Stats counts recovery work, for the cost-profile experiments.
type Stats struct {
	Applies       int64
	Undos         int64
	CommitApplies int64 // intentions applied to base at commit
	Replays       int64 // intentions replays for response computation
}

// UndoLog is the update-in-place store. It operates under one of two
// logging disciplines:
//
//   - undo logging (the default): every update stages a wal.Update record
//     carrying a durable before-image token, per-object commit/abort/
//     compensation records are staged, and restart redoes winners then
//     undoes losers from the logged tokens.
//
//   - REDO-only (redoOnly set; see NewRedoOnlyLog): every update stages a
//     wal.RedoRec carrying the logical operation only — no undo payload —
//     and commit and abort stage nothing per object. Live abort still
//     undoes in memory (the in-memory chain keeps raw before tokens), but
//     the durable log never learns how to undo anything: at restart,
//     losers are simply never redone (RestartRedoOnly), which is what
//     makes the discipline sound and what shrinks the log.
type UndoLog struct {
	obj      history.ObjectID
	machine  adt.Machine
	current  adt.Value
	log      *wal.Log
	redoOnly bool
	// chain holds, per active transaction, the undo records in apply order.
	chain map[history.TxnID][]undoRec
	stats Stats
}

type undoRec struct {
	op     spec.Operation
	before any
}

// NewUndoLog builds an update-in-place store over the machine, logging to
// log (which may be shared across objects).
func NewUndoLog(obj history.ObjectID, m adt.Machine, log *wal.Log) *UndoLog {
	return &UndoLog{
		obj:     obj,
		machine: m,
		current: m.Init(),
		log:     log,
		chain:   make(map[history.TxnID][]undoRec),
	}
}

// NewRedoOnlyLog builds an update-in-place store under the REDO-only
// logging discipline: updates stage logical wal.RedoRec records with no
// undo payload, and commit/abort stage no per-object records at all — the
// transaction-level TxnCommitRec (with its dependency set) is the only
// commit-path record. The log must be restarted with RestartRedoOnly.
func NewRedoOnlyLog(obj history.ObjectID, m adt.Machine, log *wal.Log) *UndoLog {
	u := NewUndoLog(obj, m, log)
	u.redoOnly = true
	return u
}

// RedoOnly reports whether the store logs under the REDO-only discipline.
func (u *UndoLog) RedoOnly() bool { return u.redoOnly }

// Kind implements Store.
func (u *UndoLog) Kind() string { return "undo-log" }

// Peek implements Store: the response is computed against the single
// current state (the UIP view).
func (u *UndoLog) Peek(txn history.TxnID, inv spec.Invocation) (spec.Response, error) {
	res, _, err := u.machine.Apply(u.current, inv)
	return res, err
}

// Apply implements Store: update in place and log the undo record. The
// in-memory chain keeps the raw before-image token (live abort needs no
// round trip); the staged WAL record carries the token in its durable
// EncodedUndo form when the machine provides a codec, so the same record
// stream works against in-memory and file backends alike, and Restart
// decodes uniformly.
func (u *UndoLog) Apply(txn history.TxnID, inv spec.Invocation) (spec.Response, error) {
	var before any
	if bi, ok := u.machine.(adt.BeforeImageUndoer); ok {
		before = bi.CaptureBefore(u.current, inv)
	}
	// Encode before mutating anything: an encode failure must leave the
	// state, the undo chain, and the log untouched, or a later commit or
	// abort would persist a record stream missing this update and Restart
	// would diverge from the pre-crash state. Under the REDO-only
	// discipline nothing is encoded: the staged record is the logical
	// operation alone, and the raw before token lives only in the
	// in-memory chain (live abort still undoes in place).
	kind := wal.Update
	var logged any
	if u.redoOnly {
		kind = wal.RedoRec
	} else {
		logged = before
		if before != nil {
			if c, ok := u.machine.(adt.UndoTokenCodec); ok {
				s, err := c.EncodeUndoToken(before)
				if err != nil {
					return "", fmt.Errorf("recovery: encoding undo token for %s: %w", inv, err)
				}
				logged = wal.EncodedUndo(s)
			}
		}
	}
	res, next, err := u.machine.Apply(u.current, inv)
	if err != nil {
		return "", err
	}
	op := spec.Op(inv, res)
	// Stage before mutating: a closed log (a commit racing Engine.Close)
	// must leave the state and the undo chain untouched, so the caller sees
	// a typed failure with nothing half-applied.
	if _, err := u.log.AppendAsync(wal.Record{Kind: kind, Txn: txn, Obj: u.obj, Op: op, Undo: logged}); err != nil {
		return "", fmt.Errorf("recovery: logging %s: %w", op, err)
	}
	u.current = next
	u.chain[txn] = append(u.chain[txn], undoRec{op: op, before: before})
	u.stats.Applies++
	return res, nil
}

// Commit implements Store: update-in-place commits are cheap — drop the
// undo chain and log the per-object commit record. That record is a redo
// hint for Restart, not the commit decision: the transaction durably
// commits only when the engine's transaction-level wal.TxnCommitRec
// reaches the backend (recovery is presumed-abort; see Restart).
func (u *UndoLog) Commit(txn history.TxnID) error {
	// REDO-only: no per-object record at all — the transaction-level
	// TxnCommitRec is the commit point and restart has no pending table to
	// discharge (winners replay in full, losers never replay).
	if u.redoOnly {
		delete(u.chain, txn)
		return nil
	}
	// Stage before dropping the chain: if the log is closed the commit
	// fails with the chain intact, so the engine can still abort the
	// transaction cleanly.
	if _, err := u.log.AppendAsync(wal.Record{Kind: wal.CommitRec, Txn: txn, Obj: u.obj}); err != nil {
		return fmt.Errorf("recovery: logging commit of %s: %w", txn, err)
	}
	delete(u.chain, txn)
	return nil
}

// CommitRecords implements BatchCommitter: the per-object commit record
// Commit would stage (nil under the REDO-only discipline, which stages no
// per-object commit record at all). It reads only immutable fields, so
// the engine's pipeline may call it without the object latch.
func (u *UndoLog) CommitRecords(txn history.TxnID) []wal.Record {
	if u.redoOnly {
		return nil
	}
	return []wal.Record{{Kind: wal.CommitRec, Txn: txn, Obj: u.obj}}
}

// CommitStaged implements BatchCommitter: the in-memory half of Commit —
// drop the undo chain — with the staging half already performed by the
// caller (see BatchCommitter for the ordering contract this relies on).
func (u *UndoLog) CommitStaged(txn history.TxnID) {
	delete(u.chain, txn)
}

// Abort implements Store: walk the undo chain backward applying logical
// inverses (writing compensation records), then log the abort. Each
// compensation record is staged before its undo is applied, so a closed
// log stops the walk with the remaining chain suffix intact. Under the
// REDO-only discipline the walk is purely in-memory — no compensation or
// abort record is staged, because the durable log recovers losers by never
// redoing them, not by undoing them.
func (u *UndoLog) Abort(txn history.TxnID) error {
	recs := u.chain[txn]
	for i := len(recs) - 1; i >= 0; i-- {
		r := recs[i]
		var next adt.Value
		var err error
		if bi, ok := u.machine.(adt.BeforeImageUndoer); ok && r.before != nil {
			next, err = bi.UndoWithBefore(u.current, r.op, r.before)
		} else {
			next, err = u.machine.Undo(u.current, r.op)
		}
		if err != nil {
			return fmt.Errorf("recovery: undo %s for %s: %w", r.op, txn, err)
		}
		if !u.redoOnly {
			if _, err := u.log.AppendAsync(wal.Record{Kind: wal.CompensationRec, Txn: txn, Obj: u.obj, Op: r.op}); err != nil {
				u.chain[txn] = recs[:i+1]
				return fmt.Errorf("recovery: logging undo of %s for %s: %w", r.op, txn, err)
			}
		}
		u.current = next
		u.chain[txn] = recs[:i]
		u.stats.Undos++
	}
	delete(u.chain, txn)
	if u.redoOnly {
		return nil
	}
	if _, err := u.log.AppendAsync(wal.Record{Kind: wal.AbortRec, Txn: txn, Obj: u.obj}); err != nil {
		return fmt.Errorf("recovery: logging abort of %s: %w", txn, err)
	}
	return nil
}

// CommittedValue implements Store. Meaningful when no transaction is
// active; with active updaters the current state includes their effects
// (that is what update-in-place means).
func (u *UndoLog) CommittedValue() adt.Value { return u.current.Clone() }

// Capture renders the store's fuzzy-checkpoint capture: the current
// update-in-place state (dirty — in-flight effects included, which is the
// state the log suffix will be response-checked against at restart) plus
// the in-flight transaction table, each active transaction's pending undo
// records in apply order with tokens in durable encoded form. The caller
// (the engine's checkpointer) holds the object latch, so the capture is a
// consistent instant of the object's execution. Capture fails if the
// machine cannot round-trip its state (no adt.ValueCodec) or an undo token
// has no codec — a checkpoint that cannot be restored must not be taken.
func (u *UndoLog) Capture() (string, []checkpoint.ActiveTxn, error) {
	if _, ok := u.machine.(adt.ValueCodec); !ok {
		return "", nil, fmt.Errorf("recovery: machine %s has no value codec; %s cannot be checkpointed",
			u.machine.Name(), u.obj)
	}
	state := u.current.Encode()
	ids := make([]history.TxnID, 0, len(u.chain))
	for t := range u.chain {
		ids = append(ids, t)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var active []checkpoint.ActiveTxn
	for _, t := range ids {
		recs := u.chain[t]
		ops := make([]checkpoint.PendingOp, len(recs))
		for i, r := range recs {
			ops[i] = checkpoint.PendingOp{Op: r.op}
			if r.before != nil {
				c, ok := u.machine.(adt.UndoTokenCodec)
				if !ok {
					return "", nil, fmt.Errorf("recovery: machine %s has no undo token codec; %s cannot be checkpointed",
						u.machine.Name(), u.obj)
				}
				s, err := c.EncodeUndoToken(r.before)
				if err != nil {
					return "", nil, fmt.Errorf("recovery: encoding undo token of %s for checkpoint: %w", r.op, err)
				}
				ops[i].Undo = s
				ops[i].HasUndo = true
			}
		}
		active = append(active, checkpoint.ActiveTxn{Txn: t, Ops: ops})
	}
	return state, active, nil
}

// Stats returns a copy of the work counters.
func (u *UndoLog) Stats() Stats { return u.stats }

// Intentions is the deferred-update store.
type Intentions struct {
	obj     history.ObjectID
	machine adt.Machine
	base    adt.Value
	baseVer uint64
	intents map[history.TxnID]*intentList
	stats   Stats
}

type intentList struct {
	ops []spec.Operation
	// cache of base+ops, valid while cacheVer == baseVer
	cache    adt.Value
	cacheVer uint64
	cacheLen int
}

// NewIntentions builds a deferred-update store over the machine.
func NewIntentions(obj history.ObjectID, m adt.Machine) *Intentions {
	return &Intentions{
		obj:     obj,
		machine: m,
		base:    m.Init(),
		intents: make(map[history.TxnID]*intentList),
	}
}

// Kind implements Store.
func (n *Intentions) Kind() string { return "intentions" }

// workspace returns txn's private view: base plus its own intentions, using
// the cached value when the base has not advanced (the private-workspace
// maintenance cost the paper attributes to deferred update).
func (n *Intentions) workspace(txn history.TxnID) (adt.Value, error) {
	il := n.intents[txn]
	if il == nil {
		return n.base, nil
	}
	if il.cache != nil && il.cacheVer == n.baseVer && il.cacheLen == len(il.ops) {
		return il.cache, nil
	}
	v := n.base
	for _, op := range il.ops {
		res, next, err := n.machine.Apply(v, op.Inv)
		if err != nil {
			return nil, fmt.Errorf("recovery: replaying intent %s: %w", op, err)
		}
		if res != op.Res {
			return nil, fmt.Errorf("recovery: intent %s replayed with response %q against moved base", op, res)
		}
		v = next
		n.stats.Replays++
	}
	il.cache = v
	il.cacheVer = n.baseVer
	il.cacheLen = len(il.ops)
	return v, nil
}

// Peek implements Store: the response is computed against base plus the
// transaction's own intentions (the DU view).
func (n *Intentions) Peek(txn history.TxnID, inv spec.Invocation) (spec.Response, error) {
	w, err := n.workspace(txn)
	if err != nil {
		return "", err
	}
	res, _, err := n.machine.Apply(w, inv)
	return res, err
}

// Apply implements Store: append to the intentions list.
func (n *Intentions) Apply(txn history.TxnID, inv spec.Invocation) (spec.Response, error) {
	w, err := n.workspace(txn)
	if err != nil {
		return "", err
	}
	res, next, err := n.machine.Apply(w, inv)
	if err != nil {
		return "", err
	}
	il := n.intents[txn]
	if il == nil {
		il = &intentList{}
		n.intents[txn] = il
	}
	il.ops = append(il.ops, spec.Op(inv, res))
	il.cache = next
	il.cacheVer = n.baseVer
	il.cacheLen = len(il.ops)
	n.stats.Applies++
	return res, nil
}

// Commit implements Store: apply the intentions list to the base copy.
// Commit order is the order of Commit calls, which the engine serializes
// per object — exactly the DU view's Commit-order.
func (n *Intentions) Commit(txn history.TxnID) error {
	il := n.intents[txn]
	if il != nil {
		v := n.base
		for _, op := range il.ops {
			res, next, err := n.machine.Apply(v, op.Inv)
			if err != nil {
				return fmt.Errorf("recovery: committing intent %s for %s: %w", op, txn, err)
			}
			if res != op.Res {
				return fmt.Errorf("recovery: intent %s for %s committed with divergent response %q", op, txn, res)
			}
			v = next
			n.stats.CommitApplies++
		}
		n.base = v
		n.baseVer++
	}
	delete(n.intents, txn)
	return nil
}

// Abort implements Store: discard the intentions list — deferred-update
// aborts are free.
func (n *Intentions) Abort(txn history.TxnID) error {
	delete(n.intents, txn)
	return nil
}

// CommittedValue implements Store: the base copy, always meaningful.
func (n *Intentions) CommittedValue() adt.Value { return n.base.Clone() }

// Stats returns a copy of the work counters.
func (n *Intentions) Stats() Stats { return n.stats }
