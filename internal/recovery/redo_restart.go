package recovery

// REDO-only restart: the recovery protocol of the dependency-logging
// discipline (see NewRedoOnlyLog and wal.DisciplineRedo). The durable log
// carries logical operation records (wal.RedoRec, no undo payload) and
// transaction-level commit records whose Deps field names the committed
// writers each winner read from. Restart is a forward-only pass:
//
//  1. Outcomes (pass 1, shared with the undo discipline): scan for
//     TxnCommitRecs — presumed abort, so a transaction without one is a
//     loser.
//
//  2. Redo winners (pass 2): replay ONLY winners' RedoRecs, per object in
//     LSN order, response-checking each against the machine. Losers are
//     simply never redone — there is no undo pass and restart appends
//     nothing to the log. Per-object LSN order refines commit-dependency
//     order (a winner's read-from dependency committed, and therefore
//     logged its conflicting operations, before the reader observed them),
//     so LSN-order replay IS dependency-order replay; the Deps sets are
//     additionally checked for closure under the winner set when the full
//     log is retained (a consistent-cut flush can never make a reader
//     durable without its dependency, so a violation means a torn log).
//
// Soundness is Theorem 9's equieffectiveness argument run in reverse:
// under an NRBC-containing conflict relation, the state reached by
// executing all operations and then aborting the losers via logical undo
// is equieffective to the state reached by executing the winners-only
// projection — which is exactly what this restart executes from the
// initial (or checkpointed) state, and why each winner's logged response
// is reproduced even though loser operations are missing from the replay.
//
// With a checkpoint, the captured state is dirty — it includes the
// effects of transactions in flight at capture time. The suffix replay
// redoes winners past each object's marker, and then the losers captured
// in the snapshot's in-flight tables are rolled back from their captured
// tokens (the one place the redo-only discipline still undoes anything:
// pre-capture loser effects are baked into the seed state and cannot be
// "not redone"). Equieffectiveness again makes the ordering of that
// rollback against the winner replay immaterial.

import (
	"fmt"

	"repro/internal/adt"
	"repro/internal/checkpoint"
	"repro/internal/history"
	"repro/internal/wal"
)

// RestartRedoOnly restarts every listed object of one shared redo-only
// log, exactly as RestartAllWithConfig does for a log carrying the
// redo-discipline marker — but refuses a log that does not carry it, so a
// caller that knows its engine ran redo-only cannot silently fall back to
// the undo protocol on the wrong artifacts. The returned stores continue
// under the redo-only discipline.
func RestartRedoOnly(objs []history.ObjectID, machineFor func(history.ObjectID) adt.Machine,
	log *wal.Log, ckpt *checkpoint.Snapshot, cfg RestartConfig) (map[history.ObjectID]*UndoLog, RestartStats, error) {
	if d := log.Discipline(); d != wal.DisciplineRedo {
		// A completely empty log is discipline-neutral: the redo engine
		// stages its marker as the very first record, and batches are
		// stamp-prefixes, so ANY non-empty durable prefix contains the
		// marker — absence plus emptiness just means the machine died
		// before a single batch reached the backend, and restart is the
		// initial state. A non-empty unmarked log, by contrast, was written
		// by an undo-mode engine.
		if !(d == "" && log.Len() == 0 && log.Base() == 0) {
			return nil, RestartStats{}, fmt.Errorf(
				"recovery: redo-only restart of a log with discipline %q (no redo marker — was it written by an undo-mode engine?)", d)
		}
	}
	stores, stats, err := RestartAllWithConfig(objs, machineFor, log, ckpt, cfg)
	if err != nil {
		return nil, stats, err
	}
	// Already true on the marked path; on the empty-log path this converts
	// the fresh stores to the discipline the caller asked to continue under.
	for _, st := range stores {
		st.redoOnly = true
	}
	return stores, stats, nil
}

// checkLogDiscipline rejects a log whose record kinds contradict its
// discipline marker before any replay happens — the mixed-discipline
// handoff (an undo-mode log reopened by a redo-only engine, or vice versa)
// must fail loudly, not mis-recover. A redo log may contain only RedoRec,
// TxnCommitRec, CheckpointRec, and DisciplineRec; an unmarked (undo) log
// must contain no RedoRec or DisciplineRec.
func checkLogDiscipline(snap []wal.Record, redo bool) error {
	for _, rec := range snap {
		switch rec.Kind {
		case wal.Update, wal.CommitRec, wal.CompensationRec, wal.AbortRec:
			if redo {
				return fmt.Errorf("recovery: mixed-discipline log: %s record at LSN %d in a redo-only log (written by an undo-mode engine?)",
					rec.Kind, rec.LSN)
			}
		case wal.RedoRec, wal.DisciplineRec:
			if !redo {
				return fmt.Errorf("recovery: mixed-discipline log: %s record at LSN %d in a log with no redo-discipline marker (written by a redo-only engine?)",
					rec.Kind, rec.LSN)
			}
		}
	}
	return nil
}

// checkDepClosure verifies that every winner's dependency set is itself a
// subset of the winner set. Because flush batches are consistent cuts, a
// durable TxnCommitRec can never precede the durable TxnCommitRec of a
// commit it read from — so a violation means the log is torn or the
// dependency capture is broken, and replaying the "winner" would redo
// reads from a transaction that never durably committed. Only meaningful
// on an untruncated log: truncation (and checkpoint folding) may discard
// the dependency's own commit record while the reader's survives.
func checkDepClosure(snap []wal.Record, winners map[history.TxnID]bool) error {
	for _, rec := range snap {
		if rec.Kind != wal.TxnCommitRec || !winners[rec.Txn] {
			continue
		}
		for _, d := range rec.Deps {
			if !winners[d] {
				return fmt.Errorf("recovery: dependency closure violated: winner %s depends on %s, which has no durable commit record",
					rec.Txn, d)
			}
		}
	}
	return nil
}

// restartRedoWith is pass 2 of the redo-only restart for one object:
// winners-only forward replay, optionally seeded from the object's
// checkpoint capture. It never appends to the log and returns no tail —
// a redo-only restart leaves the durable log exactly as the crash left it,
// which makes the second-restart fixed point trivial.
func restartRedoWith(obj history.ObjectID, m adt.Machine, log *wal.Log,
	snap []wal.Record, winners map[history.TxnID]bool,
	seed *checkpoint.ObjectSnapshot, stats *RestartStats) (*UndoLog, error) {
	state := m.Init()
	bi, hasBI := m.(adt.BeforeImageUndoer)

	// Checkpoint seeding: the captured dirty state plus the captured
	// in-flight tables. Losers in the table are rolled back after the
	// winner replay; winners in the table need nothing (their pre-capture
	// effects are in the seed state, their post-capture records replay).
	var markerLSN wal.LSN
	type capturedTxn struct {
		txn     history.TxnID
		pending []undoRec
	}
	var captured []capturedTxn
	if seed != nil {
		vc, ok := m.(adt.ValueCodec)
		if !ok {
			return nil, fmt.Errorf("recovery: restart %s: machine %s has no value codec for checkpoint state",
				obj, m.Name())
		}
		v, err := vc.DecodeValue(seed.State)
		if err != nil {
			return nil, fmt.Errorf("recovery: restart %s: checkpoint state: %w", obj, err)
		}
		state = v
		markerLSN = seed.MarkerLSN
		stats.SeededObjects++
		for _, at := range seed.Active {
			stats.SeededTxns++
			ct := capturedTxn{txn: at.Txn}
			for _, po := range at.Ops {
				var before any
				if po.HasUndo {
					c, ok := m.(adt.UndoTokenCodec)
					if !ok {
						return nil, fmt.Errorf("recovery: restart %s: machine %s has no undo token codec",
							obj, m.Name())
					}
					dec, err := c.DecodeUndoToken(po.Undo)
					if err != nil {
						return nil, fmt.Errorf("recovery: restart %s: checkpoint undo token of %s: %w",
							obj, at.Txn, err)
					}
					before = dec
				}
				ct.pending = append(ct.pending, undoRec{op: po.Op, before: before})
			}
			captured = append(captured, ct)
		}
	}

	// Forward replay: winners' RedoRecs past the marker, in LSN order.
	for _, rec := range snap {
		if rec.Obj != obj {
			continue
		}
		if rec.LSN <= markerLSN {
			stats.Skipped++
			continue
		}
		switch rec.Kind {
		case wal.CheckpointRec:
			continue // capture markers carry no state
		case wal.RedoRec:
		default:
			// checkLogDiscipline already vetoed undo-discipline kinds;
			// reaching one here means the caller skipped that check.
			return nil, fmt.Errorf("recovery: redo-only restart %s: unexpected %s record at LSN %d",
				obj, rec.Kind, rec.LSN)
		}
		if !winners[rec.Txn] {
			stats.Skipped++ // a loser's operation: never redone
			continue
		}
		stats.Replayed++
		res, next, err := m.Apply(state, rec.Op.Inv)
		if err != nil {
			return nil, fmt.Errorf("recovery: redo LSN %d: %w", rec.LSN, err)
		}
		if res != rec.Op.Res {
			return nil, fmt.Errorf("recovery: redo LSN %d: operation %s replayed with response %q",
				rec.LSN, rec.Op, res)
		}
		state = next
	}

	// Roll back the losers the checkpoint captured in flight: their
	// pre-capture effects are baked into the seed state. Newest-first per
	// transaction, transactions in capture order (Capture sorts by ID).
	for _, ct := range captured {
		if winners[ct.txn] {
			continue
		}
		for i := len(ct.pending) - 1; i >= 0; i-- {
			r := ct.pending[i]
			var next adt.Value
			var err error
			if hasBI && r.before != nil {
				next, err = bi.UndoWithBefore(state, r.op, r.before)
			} else {
				next, err = m.Undo(state, r.op)
			}
			if err != nil {
				return nil, fmt.Errorf("recovery: redo-only restart %s: undo of captured loser %s: %w",
					obj, ct.txn, err)
			}
			state = next
			stats.Undone++
		}
	}

	u := NewRedoOnlyLog(obj, m, log)
	u.current = state
	return u, nil
}
