package recovery

import (
	"errors"
	"testing"

	"repro/internal/adt"
	"repro/internal/spec"
	"repro/internal/wal"
)

// badCodecMachine wraps the register machine with an undo-token codec that
// always fails — a machine whose durable encoding is broken.
type badCodecMachine struct {
	adt.Machine
}

var errNoEncode = errors.New("token not encodable")

func (m badCodecMachine) CaptureBefore(v adt.Value, inv spec.Invocation) any {
	return m.Machine.(adt.BeforeImageUndoer).CaptureBefore(v, inv)
}

func (m badCodecMachine) UndoWithBefore(v adt.Value, op spec.Operation, before any) (adt.Value, error) {
	return m.Machine.(adt.BeforeImageUndoer).UndoWithBefore(v, op, before)
}

func (badCodecMachine) EncodeUndoToken(any) (string, error) { return "", errNoEncode }
func (badCodecMachine) DecodeUndoToken(string) (any, error) { return nil, errNoEncode }

// TestApplyEncodeFailureIsAtomic: when the undo-token encoding fails,
// Apply must fail without mutating the state, the undo chain, or the log —
// otherwise a later commit or abort persists a record stream missing this
// update and crash restart diverges.
func TestApplyEncodeFailureIsAtomic(t *testing.T) {
	m := badCodecMachine{Machine: adt.DefaultRegister().Machine()}
	log := wal.New()
	u := NewUndoLog("R", m, log)
	if _, err := u.Apply("A", adt.WriteReg("1")); !errors.Is(err, errNoEncode) {
		t.Fatalf("Apply = %v, want the encode failure", err)
	}
	if got := u.CommittedValue().Encode(); got != m.Init().Encode() {
		t.Fatalf("state mutated by failed Apply: %q", got)
	}
	if len(u.chain["A"]) != 0 {
		t.Fatalf("undo chain grew by failed Apply: %v", u.chain["A"])
	}
	if log.Len() != 0 {
		t.Fatalf("failed Apply staged %d log records", log.Len())
	}
	// The transaction can still abort cleanly (nothing to undo) and the
	// store keeps working for operations that need no token.
	if err := u.Abort("A"); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Peek("B", adt.ReadReg()); err != nil {
		t.Fatal(err)
	}
}
