package recovery_test

// Crash-injection harness: run a banking workload on an engine whose WAL
// is asynchronous over a real file backend, with a wal.CrashPoint dropping
// every batch from injection point k onward — modelling a machine that
// dies with the log tail still in volatile buffers. For every k the
// durable file is re-opened, recovery.Restart rebuilds each object, and
// the result is checked against an independent redo-only oracle at
// transaction granularity: the balance an object must have if exactly the
// transactions whose transaction-level commit record (wal.TxnCommitRec)
// reached durable storage before the crash survive. Recovery is
// presumed-abort, so a transaction with durable per-object CommitRecs but
// no TxnCommitRec is a loser everywhere; losers — in-flight or tail-lost
// transactions — must contribute nothing and end the post-restart log
// aborted.

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/atomicity"
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/recovery"
	"repro/internal/spec"
	"repro/internal/txn"
	"repro/internal/wal"
)

const (
	crashObjects        = 4
	crashWorkers        = 5
	crashTxnsPerWorker  = 6
	crashOpsPerTxn      = 3
	crashInitialBalance = 1000
)

func crashObjID(i int) history.ObjectID {
	return history.ObjectID(fmt.Sprintf("acct%d", i))
}

func crashMachine() adt.Machine {
	return adt.BankAccount{InitialBalance: crashInitialBalance, MaxBalance: 1 << 20,
		Amounts: []int{1, 2, 3}}.Machine()
}

// runCrashWorkload drives the banking workload against a file-backed async
// WAL that stops persisting at batch crashAt (crashAt < 0 = never crash),
// under the default release policy. It returns the number of batch
// boundaries the run produced, the live engine (quiescent, closed), and
// the live committed value per object.
func runCrashWorkload(t *testing.T, path string, crashAt int, seed int64) (int, *txn.Engine) {
	t.Helper()
	return runCrashWorkloadPolicy(t, path, crashAt, seed, txn.ReleaseEarlyTracked)
}

// runCrashWorkloadPolicy is runCrashWorkload with an explicit lock-release
// policy — the crash sweeps run under both disciplines.
func runCrashWorkloadPolicy(t *testing.T, path string, crashAt int, seed int64, pol txn.ReleasePolicy) (int, *txn.Engine) {
	t.Helper()
	backend, err := wal.CreateFileBackend(path)
	if err != nil {
		t.Fatal(err)
	}
	var cp wal.CrashPoint
	if crashAt >= 0 {
		cp = func(batch int, _ []wal.Record) bool { return batch >= crashAt }
	}
	log, err := wal.Open(wal.Config{
		Async:         true,
		BatchInterval: 100 * time.Microsecond,
		Backend:       backend,
		CrashPoint:    cp,
	})
	if err != nil {
		t.Fatal(err)
	}
	ba := adt.BankAccount{InitialBalance: crashInitialBalance, MaxBalance: 1 << 20,
		Amounts: []int{1, 2, 3}}
	rel := adt.DefaultBankAccount().NRBC()
	e := txn.NewEngine(txn.Options{RecordHistory: true, Shards: 4, WAL: log, ReleasePolicy: pol})
	for i := 0; i < crashObjects; i++ {
		e.MustRegister(crashObjID(i), ba, rel, txn.UndoLogRecovery)
	}
	var wg sync.WaitGroup
	for w := 0; w < crashWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*6151))
			for i := 0; i < crashTxnsPerWorker; i++ {
				tx := e.Begin()
				failed := false
				for op := 0; op < crashOpsPerTxn; op++ {
					obj := crashObjID(rng.Intn(crashObjects))
					amount := 1 + rng.Intn(3)
					var err error
					switch rng.Intn(3) {
					case 0:
						_, err = tx.Invoke(obj, adt.Deposit(amount))
					case 1:
						_, err = tx.Invoke(obj, adt.Withdraw(amount))
					default:
						_, err = tx.Invoke(obj, adt.Balance())
					}
					if err != nil {
						if !errors.Is(err, txn.ErrAborted) {
							_ = tx.Abort()
						}
						failed = true
						break
					}
					// Interleave so group-commit batches mix transactions
					// even at GOMAXPROCS=1.
					runtime.Gosched()
				}
				if failed {
					continue
				}
				if rng.Intn(5) == 0 {
					_ = tx.Abort()
				} else if err := tx.Commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	batches := int(e.WAL().Flushes())
	if err := e.Close(); err != nil {
		t.Fatalf("engine close: %v", err)
	}
	// Close sequences any remaining staged records as one final batch.
	return max(batches, int(e.WAL().Flushes())), e
}

// durableWinners is the oracle's own pass 1: the set of transactions whose
// transaction-level commit record survived in the durable prefix. It is
// deliberately independent of recovery.Winners (same semantics, separate
// code) so the test cannot inherit an implementation bug.
func durableWinners(recs []wal.Record) map[history.TxnID]bool {
	winners := map[history.TxnID]bool{}
	for _, r := range recs {
		if r.Kind == wal.TxnCommitRec {
			winners[r.Txn] = true
		}
	}
	return winners
}

// expectedBalance is the independent redo-only oracle: the balance of obj
// implied by the durable record prefix, counting only the updates of
// transaction-granularity winners — transactions whose TxnCommitRec
// survived. Bank-account updates are pure deltas, so the winners-only sum
// is exact regardless of how losers interleaved. A transaction with a
// durable per-object CommitRec at obj but no TxnCommitRec counts for
// nothing: presumed abort makes it a loser at every object, which is
// precisely the transaction-atomicity property the sweep proves.
func expectedBalance(recs []wal.Record, obj history.ObjectID, initial int) int {
	winners := durableWinners(recs)
	bal := initial
	for _, r := range recs {
		if r.Obj != obj || r.Kind != wal.Update || !winners[r.Txn] {
			continue
		}
		amount, _ := strconv.Atoi(r.Op.Inv.Args)
		switch {
		case r.Op.Inv.Name == "deposit":
			bal += amount
		case r.Op.Inv.Name == "withdraw" && r.Op.Res == "ok":
			bal -= amount
		}
	}
	return bal
}

// assertLosersTerminated checks that after Restart every transaction with
// updates at obj either durably committed (TxnCommitRec) or ends with an
// abort record at obj — no in-flight transaction survives restart, and no
// loser is left half-terminated.
func assertLosersTerminated(t *testing.T, recs []wal.Record, obj history.ObjectID, point int) {
	t.Helper()
	winners := durableWinners(recs)
	updated := map[history.TxnID]bool{}
	aborted := map[history.TxnID]bool{}
	for _, r := range recs {
		if r.Obj != obj {
			continue
		}
		switch r.Kind {
		case wal.Update:
			updated[r.Txn] = true
		case wal.AbortRec:
			aborted[r.Txn] = true
		}
	}
	for txid := range updated {
		if !winners[txid] && !aborted[txid] {
			t.Errorf("crash point %d: %s left in flight at %s after restart", point, txid, obj)
		}
	}
}

// restartAll re-opens the durable log at path and restarts every banking
// object, returning the recovered values (encoded) and the post-restart
// records.
func restartAll(t *testing.T, path string, point int) (map[history.ObjectID]string, []wal.Record) {
	t.Helper()
	objs := make([]history.ObjectID, crashObjects)
	for i := range objs {
		objs[i] = crashObjID(i)
	}
	return restartAllOf(t, path, point, objs)
}

// restartAllOf re-opens the durable log at path and restarts each listed
// object against the banking machine, sharing one outcome scan
// (recovery.RestartAll).
func restartAllOf(t *testing.T, path string, point int, objs []history.ObjectID) (map[history.ObjectID]string, []wal.Record) {
	t.Helper()
	backend, err := wal.OpenFileBackend(path)
	if err != nil {
		t.Fatalf("crash point %d: reopen: %v", point, err)
	}
	log, err := wal.Open(wal.Config{Backend: backend})
	if err != nil {
		t.Fatalf("crash point %d: replay: %v", point, err)
	}
	stores, err := recovery.RestartAll(objs, func(history.ObjectID) adt.Machine { return crashMachine() }, log)
	if err != nil {
		t.Fatalf("crash point %d: %v", point, err)
	}
	vals := map[history.ObjectID]string{}
	for obj, st := range stores {
		vals[obj] = st.CommittedValue().Encode()
	}
	recs := log.Snapshot()
	if err := log.Close(); err != nil {
		t.Fatalf("crash point %d: close restarted log: %v", point, err)
	}
	return vals, recs
}

// TestCrashInjectionSweep crashes the flusher at every staged/flushed
// boundary of the banking workload and proves, per injection point, that
// Restart on the re-opened file backend (1) reproduces exactly the
// committed-winners state the durable prefix implies, (2) leaves no
// transaction in flight, and (3) is stable: a second crash-free
// reopen-and-restart reproduces the same state from the repaired log.
func TestCrashInjectionSweep(t *testing.T) {
	dir := t.TempDir()

	// Calibration: a crash-free run bounds the number of boundaries and
	// anchors the no-crash semantics (restart state == live state).
	calPath := filepath.Join(dir, "cal.wal")
	batches, e := runCrashWorkload(t, calPath, -1, 1)
	if batches < 5 {
		t.Fatalf("workload produced only %d batches; sweep needs more boundaries", batches)
	}
	verifyLiveHistory(t, e)
	vals, _ := restartAll(t, calPath, -1)
	for i := 0; i < crashObjects; i++ {
		obj := crashObjID(i)
		store, _ := e.Object(obj)
		if got, want := vals[obj], store.CommittedValue().Encode(); got != want {
			t.Fatalf("no-crash restart of %s: state %s, live state %s", obj, got, want)
		}
	}

	// Sweep every boundary (strided if the run produced many). losersSeen
	// counts injection points whose durable prefix contains updates of a
	// transaction with no terminator — a genuine in-flight loser — so the
	// sweep cannot silently degenerate into clean-shutdown cases only.
	// commitSplits counts the sharper case: a durable per-object CommitRec
	// without the transaction-level commit record, i.e. the crash fell
	// inside the commit protocol itself (rare at one boundary, logged for
	// visibility; the transfer sweep constructs it deterministically).
	losersSeen := 0
	commitSplits := 0
	stride := 1
	const maxPoints = 28
	if batches > maxPoints {
		stride = (batches + maxPoints - 1) / maxPoints
	}
	for k := 0; k <= batches; k += stride {
		k := k
		t.Run(fmt.Sprintf("crash-at-batch-%02d", k), func(t *testing.T) {
			path := filepath.Join(dir, fmt.Sprintf("crash%02d.wal", k))
			_, e := runCrashWorkload(t, path, k, int64(100+k))
			if err := history.WellFormed(e.History()); err != nil {
				t.Fatalf("live history malformed: %v", err)
			}
			durable, err := wal.ReadFileLog(path)
			if err != nil {
				t.Fatal(err)
			}
			if countInFlight(durable) > 0 {
				losersSeen++
			}
			commitSplits += countCommitSplit(durable)
			vals, recs := restartAll(t, path, k)
			for i := 0; i < crashObjects; i++ {
				obj := crashObjID(i)
				want := strconv.Itoa(expectedBalance(durable, obj, crashInitialBalance))
				if vals[obj] != want {
					t.Errorf("object %s: restarted state %s, oracle %s (durable prefix %d records)",
						obj, vals[obj], want, len(durable))
				}
				assertLosersTerminated(t, recs, obj, k)
			}
			// Stability: the restart appended its compensation and abort
			// records durably, so a second restart finds no losers and
			// reproduces the same state.
			again, _ := restartAll(t, path, k)
			for obj, v := range vals {
				if again[obj] != v {
					t.Errorf("object %s: second restart diverged: %s vs %s", obj, again[obj], v)
				}
			}
		})
	}
	if losersSeen == 0 {
		t.Error("no injection point produced an in-flight loser; the sweep is not exercising undo")
	}
	t.Logf("sweep saw %d loser boundaries, %d commit-split transactions", losersSeen, commitSplits)
}

// TestCrashMidAbortCompensation builds, for every prefix of a loser's
// compensation walk, a durable file log that ends with partially durable
// compensation records — the machine died during the Abort flush, after
// some CLRs reached the disk but before the abort record — and proves that
// restart resumes the undo exactly where the CLRs stopped, terminates the
// loser, and that a second restart of the repaired log is a fixed point.
func TestCrashMidAbortCompensation(t *testing.T) {
	dir := t.TempDir()
	// The loser applied deposit(5) then withdraw(2); live abort compensates
	// newest-first, so the durable CLR prefixes are: none, withdraw only,
	// withdraw then deposit.
	for clrs := 0; clrs <= 2; clrs++ {
		path := filepath.Join(dir, fmt.Sprintf("abort%d.wal", clrs))
		backend, err := wal.CreateFileBackend(path)
		if err != nil {
			t.Fatal(err)
		}
		log, err := wal.Open(wal.Config{Backend: backend})
		if err != nil {
			t.Fatal(err)
		}
		u := recovery.NewUndoLog("X", crashMachine(), log)
		// A committed funder, so the loser's undo runs against real state.
		if _, err := u.Apply("W", adt.Deposit(3)); err != nil {
			t.Fatal(err)
		}
		if err := u.Commit("W"); err != nil {
			t.Fatal(err)
		}
		log.Append(wal.Record{Kind: wal.TxnCommitRec, Txn: "W"})
		if _, err := u.Apply("L", adt.Deposit(5)); err != nil {
			t.Fatal(err)
		}
		if _, err := u.Apply("L", adt.Withdraw(2)); err != nil {
			t.Fatal(err)
		}
		log.Flush()
		// The abort walk, crashed after clrs compensation records: stage
		// exactly what live abort processing would have made durable.
		undoOps := []spec.Operation{adt.WithdrawOk(2), adt.DepositOk(5)}
		for i := 0; i < clrs; i++ {
			log.Append(wal.Record{Kind: wal.CompensationRec, Txn: "L", Obj: "X", Op: undoOps[i]})
		}
		if err := log.Close(); err != nil {
			t.Fatal(err)
		}

		want := strconv.Itoa(crashInitialBalance + 3)
		vals, recs := restartAllOf(t, path, clrs, []history.ObjectID{"X"})
		if vals["X"] != want {
			t.Errorf("%d durable CLRs: restarted state %s, want %s (loser fully undone)", clrs, vals["X"], want)
		}
		assertLosersTerminated(t, recs, "X", clrs)
		again, _ := restartAllOf(t, path, clrs, []history.ObjectID{"X"})
		if again["X"] != want {
			t.Errorf("%d durable CLRs: second restart diverged: %s vs %s", clrs, again["X"], want)
		}
	}
}

// countInFlight returns the number of transactions with durable updates
// that neither durably committed (TxnCommitRec) nor durably aborted at
// every updated object — the losers whose undo the restart must perform.
func countInFlight(recs []wal.Record) int {
	winners := durableWinners(recs)
	updated := map[history.TxnID]map[history.ObjectID]bool{}
	aborted := map[history.TxnID]map[history.ObjectID]bool{}
	mark := func(m map[history.TxnID]map[history.ObjectID]bool, t history.TxnID, o history.ObjectID) {
		if m[t] == nil {
			m[t] = map[history.ObjectID]bool{}
		}
		m[t][o] = true
	}
	for _, r := range recs {
		switch r.Kind {
		case wal.Update:
			mark(updated, r.Txn, r.Obj)
		case wal.AbortRec:
			mark(aborted, r.Txn, r.Obj)
		}
	}
	n := 0
	for txid, objs := range updated {
		if winners[txid] {
			continue
		}
		for o := range objs {
			if !aborted[txid][o] {
				n++
				break
			}
		}
	}
	return n
}

// countCommitSplit returns the number of transactions whose durable prefix
// contains at least one per-object CommitRec but no TxnCommitRec — the
// crash fell inside the commit protocol, after some commit processing but
// before the transaction-level commit point. These are exactly the
// prefixes that per-object recovery used to restore half-committed.
func countCommitSplit(recs []wal.Record) int {
	winners := durableWinners(recs)
	seen := map[history.TxnID]bool{}
	n := 0
	for _, r := range recs {
		if r.Kind == wal.CommitRec && !winners[r.Txn] && !seen[r.Txn] {
			seen[r.Txn] = true
			n++
		}
	}
	return n
}

// verifyLiveHistory replays the merged engine history through the full
// verification stack: well-formedness, per-object acceptance by the
// abstract UIP automaton, and sampled dynamic atomicity.
func verifyLiveHistory(t *testing.T, e *txn.Engine) {
	t.Helper()
	h := e.History()
	if err := history.WellFormed(h); err != nil {
		t.Fatalf("merged history not well-formed: %v", err)
	}
	sp := adt.BankAccount{InitialBalance: crashInitialBalance, MaxBalance: 1 << 20,
		Amounts: []int{1, 2, 3}}.Spec()
	rel := adt.DefaultBankAccount().NRBC()
	specs := atomicity.Specs{}
	for i := 0; i < crashObjects; i++ {
		obj := crashObjID(i)
		specs[obj] = sp
		ok, idx, reason := core.Accepts(obj, sp, core.UIP, rel, h.ProjectObj(obj))
		if !ok {
			t.Fatalf("object %s: history rejected by abstract model at event %d: %s", obj, idx, reason)
		}
	}
	rng := rand.New(rand.NewSource(7))
	da, viol, err := atomicity.DynamicAtomicSampled(h, specs, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !da {
		t.Fatalf("history not dynamic atomic: %v", viol)
	}
}
