package recovery_test

// Crash-injection harness: run a banking workload on an engine whose WAL
// is asynchronous over a real file backend, with a wal.CrashPoint dropping
// every batch from injection point k onward — modelling a machine that
// dies with the log tail still in volatile buffers. For every k the
// durable file is re-opened, recovery.Restart rebuilds each object, and
// the result is checked against an independent redo-only oracle: the
// balance an object must have if exactly the transactions whose commit
// record reached durable storage before the crash survive. Losers —
// in-flight or tail-lost transactions — must contribute nothing and end
// the post-restart log aborted.

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/atomicity"
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/recovery"
	"repro/internal/txn"
	"repro/internal/wal"
)

const (
	crashObjects        = 4
	crashWorkers        = 5
	crashTxnsPerWorker  = 6
	crashOpsPerTxn      = 3
	crashInitialBalance = 1000
)

func crashObjID(i int) history.ObjectID {
	return history.ObjectID(fmt.Sprintf("acct%d", i))
}

func crashMachine() adt.Machine {
	return adt.BankAccount{InitialBalance: crashInitialBalance, MaxBalance: 1 << 20,
		Amounts: []int{1, 2, 3}}.Machine()
}

// runCrashWorkload drives the banking workload against a file-backed async
// WAL that stops persisting at batch crashAt (crashAt < 0 = never crash).
// It returns the number of batch boundaries the run produced, the live
// engine (quiescent, closed), and the live committed value per object.
func runCrashWorkload(t *testing.T, path string, crashAt int, seed int64) (int, *txn.Engine) {
	t.Helper()
	backend, err := wal.CreateFileBackend(path)
	if err != nil {
		t.Fatal(err)
	}
	var cp wal.CrashPoint
	if crashAt >= 0 {
		cp = func(batch int, _ []wal.Record) bool { return batch >= crashAt }
	}
	log, err := wal.Open(wal.Config{
		Async:         true,
		BatchInterval: 100 * time.Microsecond,
		Backend:       backend,
		CrashPoint:    cp,
	})
	if err != nil {
		t.Fatal(err)
	}
	ba := adt.BankAccount{InitialBalance: crashInitialBalance, MaxBalance: 1 << 20,
		Amounts: []int{1, 2, 3}}
	rel := adt.DefaultBankAccount().NRBC()
	e := txn.NewEngine(txn.Options{RecordHistory: true, Shards: 4, WAL: log})
	for i := 0; i < crashObjects; i++ {
		e.MustRegister(crashObjID(i), ba, rel, txn.UndoLogRecovery)
	}
	var wg sync.WaitGroup
	for w := 0; w < crashWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*6151))
			for i := 0; i < crashTxnsPerWorker; i++ {
				tx := e.Begin()
				failed := false
				for op := 0; op < crashOpsPerTxn; op++ {
					obj := crashObjID(rng.Intn(crashObjects))
					amount := 1 + rng.Intn(3)
					var err error
					switch rng.Intn(3) {
					case 0:
						_, err = tx.Invoke(obj, adt.Deposit(amount))
					case 1:
						_, err = tx.Invoke(obj, adt.Withdraw(amount))
					default:
						_, err = tx.Invoke(obj, adt.Balance())
					}
					if err != nil {
						if !errors.Is(err, txn.ErrAborted) {
							_ = tx.Abort()
						}
						failed = true
						break
					}
					// Interleave so group-commit batches mix transactions
					// even at GOMAXPROCS=1.
					runtime.Gosched()
				}
				if failed {
					continue
				}
				if rng.Intn(5) == 0 {
					_ = tx.Abort()
				} else if err := tx.Commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	batches := int(e.WAL().Flushes())
	if err := e.Close(); err != nil {
		t.Fatalf("engine close: %v", err)
	}
	// Close sequences any remaining staged records as one final batch.
	return max(batches, int(e.WAL().Flushes())), e
}

// expectedBalance is the independent redo-only oracle: the balance of obj
// implied by the durable record prefix, counting only transactions whose
// commit record for obj survived. Bank-account updates are pure deltas, so
// the winners-only sum is exact regardless of how losers interleaved.
//
// Commit durability is deliberately per-object here, mirroring the
// engine: there is one CommitRec per touched object and no
// transaction-level commit record, so a crash between two objects'
// commit records makes the transaction a winner at one and a loser at
// the other. That is the atomic-commitment problem the paper's model
// (and this engine's two-phase sweep) delegates to a commit protocol;
// a transaction-level commit record is a ROADMAP item, and this oracle
// will need to move to transaction-granularity winners when it lands.
func expectedBalance(recs []wal.Record, obj history.ObjectID) int {
	committed := map[history.TxnID]bool{}
	for _, r := range recs {
		if r.Obj == obj && r.Kind == wal.CommitRec {
			committed[r.Txn] = true
		}
	}
	bal := crashInitialBalance
	for _, r := range recs {
		if r.Obj != obj || r.Kind != wal.Update || !committed[r.Txn] {
			continue
		}
		amount, _ := strconv.Atoi(r.Op.Inv.Args)
		switch {
		case r.Op.Inv.Name == "deposit":
			bal += amount
		case r.Op.Inv.Name == "withdraw" && r.Op.Res == "ok":
			bal -= amount
		}
	}
	return bal
}

// assertLosersTerminated checks that after Restart every transaction with
// updates at obj ends with a commit or abort record — no in-flight
// transaction survives restart.
func assertLosersTerminated(t *testing.T, recs []wal.Record, obj history.ObjectID, point int) {
	t.Helper()
	updated := map[history.TxnID]bool{}
	terminated := map[history.TxnID]bool{}
	for _, r := range recs {
		if r.Obj != obj {
			continue
		}
		switch r.Kind {
		case wal.Update:
			updated[r.Txn] = true
		case wal.CommitRec, wal.AbortRec:
			terminated[r.Txn] = true
		}
	}
	for txid := range updated {
		if !terminated[txid] {
			t.Errorf("crash point %d: %s left in flight at %s after restart", point, txid, obj)
		}
	}
}

// restartAll re-opens the durable log at path and restarts every object,
// returning the recovered values (encoded) and the post-restart records.
func restartAll(t *testing.T, path string, point int) (map[history.ObjectID]string, []wal.Record) {
	t.Helper()
	backend, err := wal.OpenFileBackend(path)
	if err != nil {
		t.Fatalf("crash point %d: reopen: %v", point, err)
	}
	log, err := wal.Open(wal.Config{Backend: backend})
	if err != nil {
		t.Fatalf("crash point %d: replay: %v", point, err)
	}
	vals := map[history.ObjectID]string{}
	for i := 0; i < crashObjects; i++ {
		obj := crashObjID(i)
		st, err := recovery.Restart(obj, crashMachine(), log)
		if err != nil {
			t.Fatalf("crash point %d: restart %s: %v", point, obj, err)
		}
		vals[obj] = st.CommittedValue().Encode()
	}
	recs := log.Snapshot()
	if err := log.Close(); err != nil {
		t.Fatalf("crash point %d: close restarted log: %v", point, err)
	}
	return vals, recs
}

// TestCrashInjectionSweep crashes the flusher at every staged/flushed
// boundary of the banking workload and proves, per injection point, that
// Restart on the re-opened file backend (1) reproduces exactly the
// committed-winners state the durable prefix implies, (2) leaves no
// transaction in flight, and (3) is stable: a second crash-free
// reopen-and-restart reproduces the same state from the repaired log.
func TestCrashInjectionSweep(t *testing.T) {
	dir := t.TempDir()

	// Calibration: a crash-free run bounds the number of boundaries and
	// anchors the no-crash semantics (restart state == live state).
	calPath := filepath.Join(dir, "cal.wal")
	batches, e := runCrashWorkload(t, calPath, -1, 1)
	if batches < 5 {
		t.Fatalf("workload produced only %d batches; sweep needs more boundaries", batches)
	}
	verifyLiveHistory(t, e)
	vals, _ := restartAll(t, calPath, -1)
	for i := 0; i < crashObjects; i++ {
		obj := crashObjID(i)
		store, _ := e.Object(obj)
		if got, want := vals[obj], store.CommittedValue().Encode(); got != want {
			t.Fatalf("no-crash restart of %s: state %s, live state %s", obj, got, want)
		}
	}

	// Sweep every boundary (strided if the run produced many). losersSeen
	// counts injection points whose durable prefix contains updates of a
	// transaction with no terminator — a genuine in-flight loser — so the
	// sweep cannot silently degenerate into clean-shutdown cases only.
	losersSeen := 0
	stride := 1
	const maxPoints = 28
	if batches > maxPoints {
		stride = (batches + maxPoints - 1) / maxPoints
	}
	for k := 0; k <= batches; k += stride {
		k := k
		t.Run(fmt.Sprintf("crash-at-batch-%02d", k), func(t *testing.T) {
			path := filepath.Join(dir, fmt.Sprintf("crash%02d.wal", k))
			_, e := runCrashWorkload(t, path, k, int64(100+k))
			if err := history.WellFormed(e.History()); err != nil {
				t.Fatalf("live history malformed: %v", err)
			}
			durable, err := wal.ReadFileLog(path)
			if err != nil {
				t.Fatal(err)
			}
			if countInFlight(durable) > 0 {
				losersSeen++
			}
			vals, recs := restartAll(t, path, k)
			for i := 0; i < crashObjects; i++ {
				obj := crashObjID(i)
				want := strconv.Itoa(expectedBalance(durable, obj))
				if vals[obj] != want {
					t.Errorf("object %s: restarted state %s, oracle %s (durable prefix %d records)",
						obj, vals[obj], want, len(durable))
				}
				assertLosersTerminated(t, recs, obj, k)
			}
			// Stability: the restart appended its compensation and abort
			// records durably, so a second restart finds no losers and
			// reproduces the same state.
			again, _ := restartAll(t, path, k)
			for obj, v := range vals {
				if again[obj] != v {
					t.Errorf("object %s: second restart diverged: %s vs %s", obj, again[obj], v)
				}
			}
		})
	}
	if losersSeen == 0 {
		t.Error("no injection point produced an in-flight loser; the sweep is not exercising undo")
	}
}

// countInFlight returns the number of (transaction, object) pairs with
// durable updates but no durable commit or abort record.
func countInFlight(recs []wal.Record) int {
	type key struct {
		t history.TxnID
		o history.ObjectID
	}
	updated := map[key]bool{}
	terminated := map[key]bool{}
	for _, r := range recs {
		k := key{r.Txn, r.Obj}
		switch r.Kind {
		case wal.Update:
			updated[k] = true
		case wal.CommitRec, wal.AbortRec:
			terminated[k] = true
		}
	}
	n := 0
	for k := range updated {
		if !terminated[k] {
			n++
		}
	}
	return n
}

// verifyLiveHistory replays the merged engine history through the full
// verification stack: well-formedness, per-object acceptance by the
// abstract UIP automaton, and sampled dynamic atomicity.
func verifyLiveHistory(t *testing.T, e *txn.Engine) {
	t.Helper()
	h := e.History()
	if err := history.WellFormed(h); err != nil {
		t.Fatalf("merged history not well-formed: %v", err)
	}
	sp := adt.BankAccount{InitialBalance: crashInitialBalance, MaxBalance: 1 << 20,
		Amounts: []int{1, 2, 3}}.Spec()
	rel := adt.DefaultBankAccount().NRBC()
	specs := atomicity.Specs{}
	for i := 0; i < crashObjects; i++ {
		obj := crashObjID(i)
		specs[obj] = sp
		ok, idx, reason := core.Accepts(obj, sp, core.UIP, rel, h.ProjectObj(obj))
		if !ok {
			t.Fatalf("object %s: history rejected by abstract model at event %d: %s", obj, idx, reason)
		}
	}
	rng := rand.New(rand.NewSource(7))
	da, viol, err := atomicity.DynamicAtomicSampled(h, specs, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !da {
		t.Fatalf("history not dynamic atomic: %v", viol)
	}
}
