package recovery_test

// Checkpointed crash harness: the crash-injection sweeps of crash_test.go
// and transfer_crash_test.go re-run with fuzzy checkpointing live — a
// driver taking checkpoints concurrently with the workload, a file-backed
// checkpoint store whose crash hook shares the WAL's crash flag (the
// machine's log writes and checkpoint saves die at the same instant), and
// restart seeded from the newest durable snapshot. The sweeps prove, at
// every batch boundary including boundaries inside a checkpoint:
//
//   - a checkpoint-seeded restart recovers exactly the committed-winners
//     state of the full durable log (the truncation-disabled sweep, whose
//     oracle reads the whole file);
//   - with truncation enabled the retained suffix plus the snapshot still
//     recover a conserved, loser-free, fixed-point state (the transfer
//     sweep — conservation is prefix-independent, so it oracles a log
//     whose prefix no longer exists);
//   - pass 2 replays exactly the records past each object's capture
//     marker, no more (the per-point replay/skip accounting);
//   - a checkpoint that "completed" after the crash instant never becomes
//     authoritative — the previous snapshot is (deterministic test);
//   - a crash between checkpoint completion and truncation is safe
//     (deterministic test: the snapshot seeds restart over the
//     untruncated log and skips the prefix per object).

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/checkpoint"
	"repro/internal/history"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/txn"
	"repro/internal/wal"
)

// ckptCrashRun is one workload execution with live checkpointing and crash
// injection at batch crashAt (negative = never).
type ckptCrashRun struct {
	walPath  string
	ckptDir  string
	crashAt  int
	seed     int64
	truncate bool
}

// runCheckpointedBanking drives the banking workload of crash_test.go with
// a concurrent checkpoint driver. The WAL crash point and the checkpoint
// store's crash hook share one flag: from the injection batch onward, log
// batches and snapshot saves alike silently stop reaching disk while the
// live engine keeps acknowledging — the CrashPoint contract extended to
// the checkpoint store.
func runCheckpointedBanking(t *testing.T, run ckptCrashRun) int {
	t.Helper()
	backend, err := wal.CreateFileBackend(run.walPath)
	if err != nil {
		t.Fatal(err)
	}
	var crashed atomic.Bool
	var cp wal.CrashPoint
	if run.crashAt >= 0 {
		cp = func(batch int, _ []wal.Record) bool {
			if batch >= run.crashAt {
				crashed.Store(true)
			}
			return crashed.Load()
		}
	}
	log, err := wal.Open(wal.Config{
		Async:         true,
		BatchInterval: 100 * time.Microsecond,
		Backend:       backend,
		CrashPoint:    cp,
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := checkpoint.OpenFileStore(run.ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	store.SetCrashHook(func(*checkpoint.Snapshot) bool { return crashed.Load() })
	ba := adt.BankAccount{InitialBalance: crashInitialBalance, MaxBalance: 1 << 20,
		Amounts: []int{1, 2, 3}}
	rel := adt.DefaultBankAccount().NRBC()
	e := txn.NewEngine(txn.Options{
		RecordHistory: true,
		Shards:        4,
		WAL:           log,
		Checkpoint: &txn.CheckpointOptions{
			Store:             store,
			DisableTruncation: !run.truncate,
		},
	})
	for i := 0; i < crashObjects; i++ {
		e.MustRegister(crashObjID(i), ba, rel, txn.UndoLogRecovery)
	}

	done := make(chan struct{})
	var ckptWG sync.WaitGroup
	ckptWG.Add(1)
	go func() {
		defer ckptWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := e.Checkpoint(); err != nil {
				// A closed log losing the shutdown race is the only
				// acceptable failure here.
				if !errors.Is(err, wal.ErrClosed) {
					t.Errorf("live checkpoint: %v", err)
				}
				return
			}
			runtime.Gosched()
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < crashWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(run.seed + int64(w)*6151))
			for i := 0; i < crashTxnsPerWorker; i++ {
				tx := e.Begin()
				failed := false
				for op := 0; op < crashOpsPerTxn; op++ {
					obj := crashObjID(rng.Intn(crashObjects))
					amount := 1 + rng.Intn(3)
					var err error
					switch rng.Intn(3) {
					case 0:
						_, err = tx.Invoke(obj, adt.Deposit(amount))
					case 1:
						_, err = tx.Invoke(obj, adt.Withdraw(amount))
					default:
						_, err = tx.Invoke(obj, adt.Balance())
					}
					if err != nil {
						if !errors.Is(err, txn.ErrAborted) {
							_ = tx.Abort()
						}
						failed = true
						break
					}
					runtime.Gosched()
				}
				if failed {
					continue
				}
				if rng.Intn(5) == 0 {
					_ = tx.Abort()
				} else if err := tx.Commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(done)
	ckptWG.Wait()
	batches := int(e.WAL().Flushes())
	if err := e.Close(); err != nil {
		t.Fatalf("engine close: %v", err)
	}
	if err := history.WellFormed(e.History()); err != nil {
		t.Fatalf("live history malformed: %v", err)
	}
	return max(batches, int(e.WAL().Flushes()))
}

// restartAllCkptOf models the post-crash process: reopen the durable log
// file, load the newest complete snapshot from the checkpoint store, and
// run the checkpoint-seeded restart over every object.
func restartAllCkptOf(t *testing.T, walPath, ckptDir string, point int,
	objs []history.ObjectID) (map[history.ObjectID]string, []wal.Record, *checkpoint.Snapshot, recovery.RestartStats) {
	t.Helper()
	backend, err := wal.OpenFileBackend(walPath)
	if err != nil {
		t.Fatalf("crash point %d: reopen: %v", point, err)
	}
	log, err := wal.Open(wal.Config{Backend: backend})
	if err != nil {
		t.Fatalf("crash point %d: replay: %v", point, err)
	}
	store, err := checkpoint.OpenFileStore(ckptDir)
	if err != nil {
		t.Fatalf("crash point %d: reopen checkpoint store: %v", point, err)
	}
	snap, err := store.Latest()
	if err != nil {
		t.Fatalf("crash point %d: load checkpoint: %v", point, err)
	}
	stores, stats, err := recovery.RestartAllWithCheckpoint(objs,
		func(history.ObjectID) adt.Machine { return crashMachine() }, log, snap)
	if err != nil {
		t.Fatalf("crash point %d: checkpointed restart: %v", point, err)
	}
	vals := map[history.ObjectID]string{}
	for obj, st := range stores {
		vals[obj] = st.CommittedValue().Encode()
	}
	recs := log.Snapshot()
	if err := log.Close(); err != nil {
		t.Fatalf("crash point %d: close restarted log: %v", point, err)
	}
	return vals, recs, snap, stats
}

// expectedReplaySplit computes, per object, what a checkpoint-seeded pass 2
// must replay and skip over the given records: non-marker records past the
// object's capture marker are replayed, everything at or below it is
// skipped. This is the independent accounting the sweep checks
// RestartStats against.
func expectedReplaySplit(recs []wal.Record, objs []history.ObjectID, snap *checkpoint.Snapshot) (replayed, skipped int) {
	markers := map[history.ObjectID]wal.LSN{}
	for _, obj := range objs {
		if os := snap.Object(obj); os != nil {
			markers[obj] = os.MarkerLSN
		}
	}
	in := map[history.ObjectID]bool{}
	for _, obj := range objs {
		in[obj] = true
	}
	for _, r := range recs {
		if !in[r.Obj] {
			continue
		}
		switch {
		case r.LSN <= markers[r.Obj]:
			skipped++
		case r.Kind != wal.CheckpointRec:
			replayed++
		}
	}
	return replayed, skipped
}

// TestCheckpointCrashSweepOracle: the banking crash sweep with live fuzzy
// checkpointing and truncation disabled, so the full durable log remains
// for the independent committed-winners oracle. At every boundary —
// including boundaries that fall mid-checkpoint — the checkpoint-seeded
// restart must equal the oracle exactly, terminate every loser, replay
// exactly the per-object suffixes past the capture markers, and reproduce
// itself on a second restart.
func TestCheckpointCrashSweepOracle(t *testing.T) {
	dir := t.TempDir()
	cal := ckptCrashRun{
		walPath: filepath.Join(dir, "cal.wal"),
		ckptDir: filepath.Join(dir, "cal.ckpt"),
		crashAt: -1, seed: 1,
	}
	batches := runCheckpointedBanking(t, cal)
	if batches < 5 {
		t.Fatalf("workload produced only %d batches; sweep needs more boundaries", batches)
	}

	objs := make([]history.ObjectID, crashObjects)
	for i := range objs {
		objs[i] = crashObjID(i)
	}
	seeded := 0
	skippedTotal := 0
	stride := 1
	const maxPoints = 16
	if batches > maxPoints {
		stride = (batches + maxPoints - 1) / maxPoints
	}
	for k := 0; k <= batches; k += stride {
		k := k
		t.Run(fmt.Sprintf("crash-at-batch-%02d", k), func(t *testing.T) {
			run := ckptCrashRun{
				walPath: filepath.Join(dir, fmt.Sprintf("crash%02d.wal", k)),
				ckptDir: filepath.Join(dir, fmt.Sprintf("crash%02d.ckpt", k)),
				crashAt: k, seed: int64(100 + k),
			}
			runCheckpointedBanking(t, run)
			durable, err := wal.ReadFileLog(run.walPath)
			if err != nil {
				t.Fatal(err)
			}
			vals, recs, snap, stats := restartAllCkptOf(t, run.walPath, run.ckptDir, k, objs)
			for _, obj := range objs {
				want := strconv.Itoa(expectedBalance(durable, obj, crashInitialBalance))
				if vals[obj] != want {
					t.Errorf("object %s: checkpointed restart state %s, oracle %s (snapshot %v, %d durable records)",
						obj, vals[obj], want, snap != nil, len(durable))
				}
				assertLosersTerminated(t, recs, obj, k)
			}
			if snap != nil {
				seeded++
				wantReplay, wantSkip := expectedReplaySplit(durable, objs, snap)
				if stats.Replayed != wantReplay || stats.Skipped != wantSkip {
					t.Errorf("replay accounting: replayed %d skipped %d, want %d/%d — restart did not replay exactly the post-marker suffixes",
						stats.Replayed, stats.Skipped, wantReplay, wantSkip)
				}
				skippedTotal += stats.Skipped
				if stats.SeededObjects != len(snap.Objects) {
					t.Errorf("seeded %d objects, snapshot carries %d", stats.SeededObjects, len(snap.Objects))
				}
			}
			again, _, _, _ := restartAllCkptOf(t, run.walPath, run.ckptDir, k, objs)
			for obj, v := range vals {
				if again[obj] != v {
					t.Errorf("object %s: second checkpointed restart diverged: %s vs %s", obj, again[obj], v)
				}
			}
		})
	}
	if seeded == 0 {
		t.Error("no injection point restarted from a durable checkpoint; the sweep is not exercising seeding")
	}
	if skippedTotal == 0 {
		t.Error("no injection point skipped prefix records; checkpoints never bounded the replay")
	}
	t.Logf("sweep: %d/%d points restarted from a checkpoint, %d prefix records skipped in total",
		seeded, batches/stride+1, skippedTotal)
}

// TestCheckpointTransferCrashSweepTruncated: the fan-out transfer crash
// sweep with live checkpointing and log truncation enabled — restart sees
// only the snapshot plus the retained suffix, the regime production
// systems actually run in. Conservation is the oracle (it needs no
// truncated prefix): at every boundary the recovered accounts must sum to
// the initial total, with no loser left in flight, a fixed point under a
// second restart, and the replay bounded by the retained suffix past the
// frontier.
func TestCheckpointTransferCrashSweepTruncated(t *testing.T) {
	dir := t.TempDir()
	cfg := transferCrashConfig(1)
	objs := transferObjects(cfg)
	total := cfg.Accounts * cfg.InitialBalance

	runOne := func(t *testing.T, walPath, ckptDir string, crashAt int, seed int64) int {
		t.Helper()
		backend, err := wal.CreateFileBackend(walPath)
		if err != nil {
			t.Fatal(err)
		}
		var crashed atomic.Bool
		var cp wal.CrashPoint
		if crashAt >= 0 {
			cp = func(batch int, _ []wal.Record) bool {
				if batch >= crashAt {
					crashed.Store(true)
				}
				return crashed.Load()
			}
		}
		log, err := wal.Open(wal.Config{Async: true, Backend: backend, CrashPoint: cp})
		if err != nil {
			t.Fatal(err)
		}
		store, err := checkpoint.OpenFileStore(ckptDir)
		if err != nil {
			t.Fatal(err)
		}
		store.SetCrashHook(func(*checkpoint.Snapshot) bool { return crashed.Load() })
		ba := cfg.BankAccount()
		e := txn.NewEngine(txn.Options{
			RecordHistory: cfg.Record,
			Shards:        cfg.Shards,
			WAL:           log,
			Checkpoint:    &txn.CheckpointOptions{Store: store},
		})
		for i := 0; i < cfg.Accounts; i++ {
			e.MustRegister(sim.TransferAccountID(i), ba, adt.DefaultBankAccount().NRBC(), txn.UndoLogRecovery)
		}
		c := cfg
		c.Seed = seed
		done := make(chan struct{})
		var ckptWG sync.WaitGroup
		ckptWG.Add(1)
		go func() {
			defer ckptWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if _, err := e.Checkpoint(); err != nil && !errors.Is(err, wal.ErrClosed) {
					t.Errorf("live checkpoint: %v", err)
					return
				}
				runtime.Gosched()
			}
		}()
		sim.RunTransfers(e, c)
		close(done)
		ckptWG.Wait()
		batches := int(e.WAL().Flushes())
		if err := e.Close(); err != nil {
			t.Fatalf("engine close: %v", err)
		}
		return max(batches, int(e.WAL().Flushes()))
	}

	calWal := filepath.Join(dir, "cal.wal")
	batches := runOne(t, calWal, filepath.Join(dir, "cal.ckpt"), -1, 1)
	if batches < 5 {
		t.Fatalf("workload produced only %d batches; sweep needs more boundaries", batches)
	}

	seeded, truncatedPoints := 0, 0
	stride := 1
	const maxPoints = 16
	if batches > maxPoints {
		stride = (batches + maxPoints - 1) / maxPoints
	}
	for k := 0; k <= batches; k += stride {
		k := k
		t.Run(fmt.Sprintf("crash-at-batch-%02d", k), func(t *testing.T) {
			walPath := filepath.Join(dir, fmt.Sprintf("crash%02d.wal", k))
			ckptDir := filepath.Join(dir, fmt.Sprintf("crash%02d.ckpt", k))
			runOne(t, walPath, ckptDir, k, int64(1000+k))
			durable, err := wal.ReadFileLog(walPath)
			if err != nil {
				t.Fatal(err)
			}
			vals, recs, snap, stats := restartAllCkptOf(t, walPath, ckptDir, k, objs)
			sum := 0
			for _, obj := range objs {
				bal, err := strconv.Atoi(vals[obj])
				if err != nil {
					t.Fatalf("account %s: unparsable state %q", obj, vals[obj])
				}
				sum += bal
				assertLosersTerminated(t, recs, obj, k)
			}
			if sum != total {
				t.Errorf("crash point %d: recovered total %d, want %d — checkpointed restart observed half a transfer (snapshot %v, %d retained records)",
					k, sum, total, snap != nil, len(durable))
			}
			if snap != nil {
				seeded++
				if len(durable) > 0 && durable[0].LSN > 1 {
					truncatedPoints++
					if durable[0].LSN > snap.Frontier {
						t.Errorf("retained log starts at %d, past the snapshot frontier %d — truncation outran its checkpoint",
							durable[0].LSN, snap.Frontier)
					}
				}
				wantReplay, wantSkip := expectedReplaySplit(durable, objs, snap)
				if stats.Replayed != wantReplay || stats.Skipped != wantSkip {
					t.Errorf("replay accounting: replayed %d skipped %d, want %d/%d",
						stats.Replayed, stats.Skipped, wantReplay, wantSkip)
				}
			}
			again, _, _, _ := restartAllCkptOf(t, walPath, ckptDir, k, objs)
			for obj, v := range vals {
				if again[obj] != v {
					t.Errorf("account %s: second restart diverged: %s vs %s", obj, again[obj], v)
				}
			}
		})
	}
	if seeded == 0 {
		t.Error("no injection point restarted from a durable checkpoint")
	}
	if truncatedPoints == 0 {
		t.Error("no injection point saw a truncated durable log; the sweep is not exercising bounded-suffix restart")
	}
	t.Logf("sweep: %d points checkpoint-seeded, %d with a truncated durable log", seeded, truncatedPoints)
}

// TestCheckpointMidCrashPreviousAuthoritative pins the mid-checkpoint
// crash boundary deterministically: a first checkpoint completes durably,
// the machine "dies" (log writes and checkpoint saves both stop reaching
// disk), and a second checkpoint appears to complete on the dying machine.
// After the crash, the store must still answer with the first checkpoint,
// and restart from it must equal the full-log oracle — the in-memory-only
// truncation the doomed second checkpoint performed must not have touched
// the durable file.
func TestCheckpointMidCrashPreviousAuthoritative(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "mid.wal")
	ckptDir := filepath.Join(dir, "mid.ckpt")
	backend, err := wal.CreateFileBackend(walPath)
	if err != nil {
		t.Fatal(err)
	}
	var crashed atomic.Bool
	log, err := wal.Open(wal.Config{
		Backend:    backend,
		CrashPoint: func(int, []wal.Record) bool { return crashed.Load() },
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := checkpoint.OpenFileStore(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	store.SetCrashHook(func(*checkpoint.Snapshot) bool { return crashed.Load() })
	ba := adt.BankAccount{InitialBalance: crashInitialBalance, MaxBalance: 1 << 20,
		Amounts: []int{1, 2, 3}}
	e := txn.NewEngine(txn.Options{
		WAL:        log,
		Checkpoint: &txn.CheckpointOptions{Store: store},
	})
	e.MustRegister("X", ba, adt.DefaultBankAccount().NRBC(), txn.UndoLogRecovery)

	commitOne := func(amount int) {
		tx := e.Begin()
		if _, err := tx.Invoke("X", adt.Deposit(amount)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	commitOne(5)
	snap1, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	commitOne(7) // durable: survives the crash
	crashed.Store(true)
	commitOne(9) // acked by the dying machine, never reaches the file
	snap2, err := e.Checkpoint()
	if err != nil {
		t.Fatalf("the dying machine must believe its checkpoint succeeded: %v", err)
	}
	if snap2.ID == snap1.ID {
		t.Fatal("second checkpoint did not advance")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	durable, err := wal.ReadFileLog(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// The first checkpoint's truncation reached the file (its prefix is
	// gone); the doomed second checkpoint's must not have — deposit(7)'s
	// records, staged between the two, have to survive.
	if len(durable) == 0 || durable[0].LSN <= 1 {
		t.Fatal("first checkpoint's truncation never reached the durable file")
	}
	if durable[0].LSN > snap1.Frontier {
		t.Fatalf("durable log starts at %d, past the surviving checkpoint's frontier %d — "+
			"the dying machine's truncation reached the file", durable[0].LSN, snap1.Frontier)
	}
	vals, _, snap, stats := restartAllCkptOf(t, walPath, ckptDir, 0, []history.ObjectID{"X"})
	if snap == nil || snap.ID != snap1.ID {
		t.Fatalf("authoritative snapshot = %+v, want the pre-crash %s", snap, snap1.ID)
	}
	// deposit(5) is inside the snapshot, deposit(7) replays from the
	// durable suffix, deposit(9) died with the machine.
	if want := strconv.Itoa(crashInitialBalance + 5 + 7); vals["X"] != want {
		t.Fatalf("restart state %s, want %s", vals["X"], want)
	}
	if stats.SeededObjects != 1 {
		t.Fatalf("restart did not seed from the surviving checkpoint: %+v", stats)
	}
	again, _, _, _ := restartAllCkptOf(t, walPath, ckptDir, 0, []history.ObjectID{"X"})
	if again["X"] != vals["X"] {
		t.Fatalf("second restart diverged: %s vs %s", again["X"], vals["X"])
	}
}

// TestTruncatedLogRequiresSnapshot: restarting a truncated log without
// its checkpoint must fail loudly — replaying the bare suffix from initial
// state would often pass the per-record response checks and return
// silently wrong balances.
func TestTruncatedLogRequiresSnapshot(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "req.wal")
	backend, err := wal.CreateFileBackend(walPath)
	if err != nil {
		t.Fatal(err)
	}
	log, err := wal.Open(wal.Config{Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	store, err := checkpoint.OpenFileStore(filepath.Join(dir, "req.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	ba := adt.BankAccount{InitialBalance: crashInitialBalance, MaxBalance: 1 << 20,
		Amounts: []int{1, 2, 3}}
	e := txn.NewEngine(txn.Options{WAL: log, Checkpoint: &txn.CheckpointOptions{Store: store}})
	e.MustRegister("X", ba, adt.DefaultBankAccount().NRBC(), txn.UndoLogRecovery)
	tx := e.Begin()
	if _, err := tx.Invoke("X", adt.Deposit(5)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := wal.OpenFileBackend(walPath)
	if err != nil {
		t.Fatal(err)
	}
	relog, err := wal.Open(wal.Config{Backend: reopened})
	if err != nil {
		t.Fatal(err)
	}
	defer relog.Close()
	if relog.Base() == 0 {
		t.Fatal("log was not truncated; the guard is not exercised")
	}
	if _, err := recovery.RestartAll([]history.ObjectID{"X"},
		func(history.ObjectID) adt.Machine { return crashMachine() }, relog); err == nil {
		t.Fatal("restart of a truncated log without its snapshot must fail")
	}
}

// TestCheckpointCompletionTruncationGap pins the other deterministic
// boundary: a checkpoint completes durably but the crash (here: a clean
// stop with truncation disabled) prevents the truncation. Restart seeded
// from the snapshot over the full, untruncated log must skip exactly the
// per-object prefixes and agree with both the plain full-log restart and
// the oracle — proving the truncation is an optimization, never a
// correctness step, so a crash anywhere between completion and truncation
// is safe.
func TestCheckpointCompletionTruncationGap(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "gap.wal")
	ckptDir := filepath.Join(dir, "gap.ckpt")
	backend, err := wal.CreateFileBackend(walPath)
	if err != nil {
		t.Fatal(err)
	}
	log, err := wal.Open(wal.Config{Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	store, err := checkpoint.OpenFileStore(ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	ba := adt.BankAccount{InitialBalance: crashInitialBalance, MaxBalance: 1 << 20,
		Amounts: []int{1, 2, 3}}
	e := txn.NewEngine(txn.Options{
		WAL:        log,
		Checkpoint: &txn.CheckpointOptions{Store: store, DisableTruncation: true},
	})
	e.MustRegister("X", ba, adt.DefaultBankAccount().NRBC(), txn.UndoLogRecovery)
	e.MustRegister("Y", ba, adt.DefaultBankAccount().NRBC(), txn.UndoLogRecovery)

	commit := func(obj history.ObjectID, amount int) {
		tx := e.Begin()
		if _, err := tx.Invoke(obj, adt.Deposit(amount)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	commit("X", 5)
	commit("Y", 11)
	// An in-flight transaction spans the checkpoint: captured in X's
	// table, never decided — restart must undo it from the snapshot.
	hang := e.Begin()
	if _, err := hang.Invoke("X", adt.Deposit(100)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	commit("Y", 3)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	durable, err := wal.ReadFileLog(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if durable[0].LSN != 1 {
		t.Fatalf("log was truncated (first LSN %d); the gap test needs the full log", durable[0].LSN)
	}
	objs := []history.ObjectID{"X", "Y"}
	vals, recs, snap, stats := restartAllCkptOf(t, walPath, ckptDir, 0, objs)
	if snap == nil {
		t.Fatal("no snapshot survived")
	}
	for _, obj := range objs {
		want := strconv.Itoa(expectedBalance(durable, obj, crashInitialBalance))
		if vals[obj] != want {
			t.Errorf("object %s: seeded restart %s, oracle %s", obj, vals[obj], want)
		}
		assertLosersTerminated(t, recs, obj, 0)
	}
	if vals["X"] != strconv.Itoa(crashInitialBalance+5) {
		t.Errorf("X = %s: the in-flight deposit was not undone from the snapshot table", vals["X"])
	}
	if stats.Skipped == 0 || stats.SeededTxns == 0 {
		t.Fatalf("restart did not exercise seeding: %+v", stats)
	}
	// And the plain full-log restart agrees — the snapshot changed the
	// cost, not the answer.
	plain, _ := restartAllOf(t, walPath, 0, objs)
	for obj, v := range vals {
		if plain[obj] != v {
			t.Errorf("object %s: seeded %s vs full-log %s", obj, v, plain[obj])
		}
	}
}
