package recovery_test

// Crash harness for the REDO-only dependency-logging discipline: the
// banking and transfer crash-injection sweeps of crash_test.go and
// checkpoint_crash_test.go re-run with txn.Options.LogDiscipline set to
// wal.DisciplineRedo. The durable log now carries logical operation
// records with no undo payload plus dependency-carrying transaction-level
// commit records, and restart is the winners-only forward replay of
// recovery.RestartRedoOnly — no undo pass, nothing appended. The sweeps
// prove, at every batch boundary (including boundaries inside live
// checkpoints with truncation on):
//
//   - restart equals the independent committed-winners oracle over the
//     durable RedoRecs (losers contribute nothing without ever being
//     undone);
//   - the transfer total is conserved — no boundary recovers half a
//     transfer;
//   - restart appends nothing, so the durable log is untouched and a
//     second restart is trivially a fixed point;
//   - every winner's durable dependency set is closed under the winner
//     set (checked inside restart on untruncated logs);
//   - a mixed-discipline handoff — an undo-mode log reopened by a
//     redo-only engine or restart, and vice versa — is rejected loudly.

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/checkpoint"
	"repro/internal/history"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/txn"
	"repro/internal/wal"
)

// runRedoBankingWorkload is the banking crash workload of crash_test.go
// under the redo-only discipline: same clients, same mix of commits and
// voluntary aborts, a file-backed async WAL crashed from batch crashAt
// onward (negative = never).
func runRedoBankingWorkload(t *testing.T, path string, crashAt int, seed int64) (int, *txn.Engine) {
	t.Helper()
	backend, err := wal.CreateFileBackend(path)
	if err != nil {
		t.Fatal(err)
	}
	var cp wal.CrashPoint
	if crashAt >= 0 {
		cp = func(batch int, _ []wal.Record) bool { return batch >= crashAt }
	}
	log, err := wal.Open(wal.Config{
		Async:         true,
		BatchInterval: 100 * time.Microsecond,
		Backend:       backend,
		CrashPoint:    cp,
	})
	if err != nil {
		t.Fatal(err)
	}
	ba := adt.BankAccount{InitialBalance: crashInitialBalance, MaxBalance: 1 << 20,
		Amounts: []int{1, 2, 3}}
	rel := adt.DefaultBankAccount().NRBC()
	e := txn.NewEngine(txn.Options{RecordHistory: true, Shards: 4, WAL: log,
		LogDiscipline: wal.DisciplineRedo})
	for i := 0; i < crashObjects; i++ {
		e.MustRegister(crashObjID(i), ba, rel, txn.UndoLogRecovery)
	}
	var wg sync.WaitGroup
	for w := 0; w < crashWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*6151))
			for i := 0; i < crashTxnsPerWorker; i++ {
				tx := e.Begin()
				failed := false
				for op := 0; op < crashOpsPerTxn; op++ {
					obj := crashObjID(rng.Intn(crashObjects))
					amount := 1 + rng.Intn(3)
					var err error
					switch rng.Intn(3) {
					case 0:
						_, err = tx.Invoke(obj, adt.Deposit(amount))
					case 1:
						_, err = tx.Invoke(obj, adt.Withdraw(amount))
					default:
						_, err = tx.Invoke(obj, adt.Balance())
					}
					if err != nil {
						if !errors.Is(err, txn.ErrAborted) {
							_ = tx.Abort()
						}
						failed = true
						break
					}
					runtime.Gosched()
				}
				if failed {
					continue
				}
				if rng.Intn(5) == 0 {
					_ = tx.Abort()
				} else if err := tx.Commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	batches := int(e.WAL().Flushes())
	if err := e.Close(); err != nil {
		t.Fatalf("engine close: %v", err)
	}
	return max(batches, int(e.WAL().Flushes())), e
}

// expectedRedoBalance is the independent committed-winners oracle for a
// redo-only log: the balance implied by the durable RedoRecs of
// transactions whose TxnCommitRec survived. Structurally the twin of
// expectedBalance, reading the redo-discipline record kind.
func expectedRedoBalance(recs []wal.Record, obj history.ObjectID, initial int) int {
	winners := durableWinners(recs)
	bal := initial
	for _, r := range recs {
		if r.Obj != obj || r.Kind != wal.RedoRec || !winners[r.Txn] {
			continue
		}
		amount, _ := strconv.Atoi(r.Op.Inv.Args)
		switch {
		case r.Op.Inv.Name == "deposit":
			bal += amount
		case r.Op.Inv.Name == "withdraw" && r.Op.Res == "ok":
			bal -= amount
		}
	}
	return bal
}

// countRedoInFlight returns the number of transactions with durable
// RedoRecs but no durable TxnCommitRec — the losers whose operations the
// winners-only replay must simply never redo.
func countRedoInFlight(recs []wal.Record) int {
	winners := durableWinners(recs)
	seen := map[history.TxnID]bool{}
	n := 0
	for _, r := range recs {
		if r.Kind == wal.RedoRec && !winners[r.Txn] && !seen[r.Txn] {
			seen[r.Txn] = true
			n++
		}
	}
	return n
}

// assertRedoLogClean fails if the durable log contains any undo-discipline
// record kind — a redo-only engine must never stage per-object commit,
// compensation, or abort records, live or during abort processing.
func assertRedoLogClean(t *testing.T, recs []wal.Record, point int) {
	t.Helper()
	for _, r := range recs {
		switch r.Kind {
		case wal.Update, wal.CommitRec, wal.CompensationRec, wal.AbortRec:
			t.Fatalf("crash point %d: undo-discipline %s record at LSN %d in a redo-only log",
				point, r.Kind, r.LSN)
		}
	}
}

// restartRedoAllOf re-opens the durable log at path and restarts each
// listed object through the exported redo-only entry point.
func restartRedoAllOf(t *testing.T, path string, point int,
	objs []history.ObjectID) (map[history.ObjectID]string, []wal.Record, recovery.RestartStats) {
	t.Helper()
	backend, err := wal.OpenFileBackend(path)
	if err != nil {
		t.Fatalf("crash point %d: reopen: %v", point, err)
	}
	log, err := wal.Open(wal.Config{Backend: backend})
	if err != nil {
		t.Fatalf("crash point %d: replay: %v", point, err)
	}
	stores, stats, err := recovery.RestartRedoOnly(objs,
		func(history.ObjectID) adt.Machine { return crashMachine() }, log, nil, recovery.RestartConfig{})
	if err != nil {
		t.Fatalf("crash point %d: redo-only restart: %v", point, err)
	}
	vals := map[history.ObjectID]string{}
	for obj, st := range stores {
		if !st.RedoOnly() {
			t.Fatalf("crash point %d: restarted store %s is not redo-only", point, obj)
		}
		vals[obj] = st.CommittedValue().Encode()
	}
	recs := log.Snapshot()
	if err := log.Close(); err != nil {
		t.Fatalf("crash point %d: close restarted log: %v", point, err)
	}
	return vals, recs, stats
}

// TestRedoCrashInjectionSweep: the banking crash sweep under the redo-only
// discipline. Per injection point: restart equals the committed-winners
// oracle over the durable RedoRecs, the log contains no undo-discipline
// records and gains none from restart, loser records are skipped rather
// than undone, and a second restart reproduces the same state from the
// byte-identical log.
func TestRedoCrashInjectionSweep(t *testing.T) {
	dir := t.TempDir()

	calPath := filepath.Join(dir, "cal.wal")
	batches, e := runRedoBankingWorkload(t, calPath, -1, 1)
	if batches < 5 {
		t.Fatalf("workload produced only %d batches; sweep needs more boundaries", batches)
	}
	// The live history is discipline-independent: same well-formedness,
	// same abstract-model acceptance, same dynamic atomicity.
	verifyLiveHistory(t, e)
	vals, _, _ := restartRedoAllOf(t, calPath, -1, crashObjectIDs())
	for i := 0; i < crashObjects; i++ {
		obj := crashObjID(i)
		store, _ := e.Object(obj)
		if got, want := vals[obj], store.CommittedValue().Encode(); got != want {
			t.Fatalf("no-crash restart of %s: state %s, live state %s", obj, got, want)
		}
	}

	losersSeen := 0
	depsSeen := 0
	stride := 1
	const maxPoints = 28
	if batches > maxPoints {
		stride = (batches + maxPoints - 1) / maxPoints
	}
	for k := 0; k <= batches; k += stride {
		k := k
		t.Run(fmt.Sprintf("crash-at-batch-%02d", k), func(t *testing.T) {
			path := filepath.Join(dir, fmt.Sprintf("crash%02d.wal", k))
			_, e := runRedoBankingWorkload(t, path, k, int64(100+k))
			if err := history.WellFormed(e.History()); err != nil {
				t.Fatalf("live history malformed: %v", err)
			}
			durable, err := wal.ReadFileLog(path)
			if err != nil {
				t.Fatal(err)
			}
			assertRedoLogClean(t, durable, k)
			if countRedoInFlight(durable) > 0 {
				losersSeen++
			}
			for _, r := range durable {
				if r.Kind == wal.TxnCommitRec && len(r.Deps) > 0 {
					depsSeen++
					break
				}
			}
			vals, recs, stats := restartRedoAllOf(t, path, k, crashObjectIDs())
			for i := 0; i < crashObjects; i++ {
				obj := crashObjID(i)
				want := strconv.Itoa(expectedRedoBalance(durable, obj, crashInitialBalance))
				if vals[obj] != want {
					t.Errorf("object %s: restarted state %s, oracle %s (durable prefix %d records)",
						obj, vals[obj], want, len(durable))
				}
			}
			// No undo pass, no tail: the restart leaves the durable log
			// exactly as the crash left it.
			if stats.Undone != 0 {
				t.Errorf("crash point %d: redo-only restart undid %d records without a checkpoint", k, stats.Undone)
			}
			if len(recs) != len(durable) {
				t.Errorf("crash point %d: restart grew the log from %d to %d records — redo-only restart must append nothing",
					k, len(durable), len(recs))
			}
			again, recsAgain, _ := restartRedoAllOf(t, path, k, crashObjectIDs())
			for obj, v := range vals {
				if again[obj] != v {
					t.Errorf("object %s: second restart diverged: %s vs %s", obj, again[obj], v)
				}
			}
			if len(recsAgain) != len(durable) {
				t.Errorf("crash point %d: second restart grew the log", k)
			}
		})
	}
	if losersSeen == 0 {
		t.Error("no injection point produced an in-flight loser; the sweep is not exercising loser skipping")
	}
	if depsSeen == 0 {
		t.Error("no injection point produced a dependency-carrying commit record; the sweep is not exercising Deps")
	}
	t.Logf("sweep saw %d loser boundaries, %d points with durable dependency sets", losersSeen, depsSeen)
}

func crashObjectIDs() []history.ObjectID {
	objs := make([]history.ObjectID, crashObjects)
	for i := range objs {
		objs[i] = crashObjID(i)
	}
	return objs
}

// TestRedoCheckpointTransferCrashSweepTruncated: the fan-out transfer
// crash sweep with live fuzzy checkpointing and log truncation enabled,
// under the redo-only discipline — restart sees only the snapshot plus the
// retained suffix, and the suffix's discipline marker (re-staged by every
// checkpoint just past the frontier) must survive truncation so the
// reopened log still declares its discipline. Conservation is the oracle;
// restart goes through RestartAllWithCheckpoint, proving the
// discipline-dispatch wiring, and must append nothing at every boundary.
func TestRedoCheckpointTransferCrashSweepTruncated(t *testing.T) {
	dir := t.TempDir()
	cfg := transferCrashConfig(1)
	cfg.Discipline = wal.DisciplineRedo
	objs := transferObjects(cfg)
	total := cfg.Accounts * cfg.InitialBalance

	runOne := func(t *testing.T, walPath, ckptDir string, crashAt int, seed int64) int {
		t.Helper()
		backend, err := wal.CreateFileBackend(walPath)
		if err != nil {
			t.Fatal(err)
		}
		var crashed atomic.Bool
		var cp wal.CrashPoint
		if crashAt >= 0 {
			cp = func(batch int, _ []wal.Record) bool {
				if batch >= crashAt {
					crashed.Store(true)
				}
				return crashed.Load()
			}
		}
		log, err := wal.Open(wal.Config{Async: true, Backend: backend, CrashPoint: cp})
		if err != nil {
			t.Fatal(err)
		}
		store, err := checkpoint.OpenFileStore(ckptDir)
		if err != nil {
			t.Fatal(err)
		}
		store.SetCrashHook(func(*checkpoint.Snapshot) bool { return crashed.Load() })
		ba := cfg.BankAccount()
		e := txn.NewEngine(txn.Options{
			RecordHistory: cfg.Record,
			Shards:        cfg.Shards,
			WAL:           log,
			LogDiscipline: wal.DisciplineRedo,
			Checkpoint:    &txn.CheckpointOptions{Store: store},
		})
		for i := 0; i < cfg.Accounts; i++ {
			e.MustRegister(sim.TransferAccountID(i), ba, adt.DefaultBankAccount().NRBC(), txn.UndoLogRecovery)
		}
		c := cfg
		c.Seed = seed
		done := make(chan struct{})
		var ckptWG sync.WaitGroup
		ckptWG.Add(1)
		go func() {
			defer ckptWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if _, err := e.Checkpoint(); err != nil && !errors.Is(err, wal.ErrClosed) {
					t.Errorf("live checkpoint: %v", err)
					return
				}
				runtime.Gosched()
			}
		}()
		sim.RunTransfers(e, c)
		close(done)
		ckptWG.Wait()
		batches := int(e.WAL().Flushes())
		if err := e.Close(); err != nil {
			t.Fatalf("engine close: %v", err)
		}
		return max(batches, int(e.WAL().Flushes()))
	}

	calWal := filepath.Join(dir, "cal.wal")
	batches := runOne(t, calWal, filepath.Join(dir, "cal.ckpt"), -1, 1)
	if batches < 5 {
		t.Fatalf("workload produced only %d batches; sweep needs more boundaries", batches)
	}

	seeded, truncatedPoints := 0, 0
	stride := 1
	const maxPoints = 16
	if batches > maxPoints {
		stride = (batches + maxPoints - 1) / maxPoints
	}
	for k := 0; k <= batches; k += stride {
		k := k
		t.Run(fmt.Sprintf("crash-at-batch-%02d", k), func(t *testing.T) {
			walPath := filepath.Join(dir, fmt.Sprintf("crash%02d.wal", k))
			ckptDir := filepath.Join(dir, fmt.Sprintf("crash%02d.ckpt", k))
			runOne(t, walPath, ckptDir, k, int64(1000+k))
			durable, err := wal.ReadFileLog(walPath)
			if err != nil {
				t.Fatal(err)
			}
			assertRedoLogClean(t, durable, k)
			vals, recs, snap, _ := restartAllCkptOf(t, walPath, ckptDir, k, objs)
			sum := 0
			for _, obj := range objs {
				bal, err := strconv.Atoi(vals[obj])
				if err != nil {
					t.Fatalf("account %s: unparsable state %q", obj, vals[obj])
				}
				sum += bal
			}
			if sum != total {
				t.Errorf("crash point %d: recovered total %d, want %d — redo-only restart observed half a transfer (snapshot %v, %d retained records)",
					k, sum, total, snap != nil, len(durable))
			}
			if len(recs) != len(durable) {
				t.Errorf("crash point %d: restart grew the log from %d to %d records", k, len(durable), len(recs))
			}
			if snap != nil {
				seeded++
				if snap.Discipline != wal.DisciplineRedo {
					t.Errorf("crash point %d: snapshot discipline %q, want %q", k, snap.Discipline, wal.DisciplineRedo)
				}
				if len(durable) > 0 && durable[0].LSN > 1 {
					truncatedPoints++
					if durable[0].LSN > snap.Frontier {
						t.Errorf("retained log starts at %d, past the snapshot frontier %d",
							durable[0].LSN, snap.Frontier)
					}
				}
			}
			again, _, _, _ := restartAllCkptOf(t, walPath, ckptDir, k, objs)
			for obj, v := range vals {
				if again[obj] != v {
					t.Errorf("account %s: second restart diverged: %s vs %s", obj, again[obj], v)
				}
			}
		})
	}
	if seeded == 0 {
		t.Error("no injection point restarted from a durable checkpoint")
	}
	if truncatedPoints == 0 {
		t.Error("no injection point saw a truncated durable log; the sweep is not exercising marker survival")
	}
	t.Logf("sweep: %d points checkpoint-seeded, %d with a truncated durable log", seeded, truncatedPoints)
}

// TestRedoCommitSplitDeterministic pins the protocol's defining boundary
// under the redo discipline: both legs' RedoRecs are durable but the
// dependency-carrying TxnCommitRec is not. The winners-only replay must
// skip both legs — no undo needed, because nothing was redone.
func TestRedoCommitSplitDeterministic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "split.wal")
	backend, err := wal.CreateFileBackend(path)
	if err != nil {
		t.Fatal(err)
	}
	log, err := wal.Open(wal.Config{Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	log.Append(wal.DisciplineMarker(wal.DisciplineRedo))
	src := recovery.NewRedoOnlyLog("xfer00", crashMachine(), log)
	dst := recovery.NewRedoOnlyLog("xfer01", crashMachine(), log)
	if _, err := src.Apply("T", adt.Withdraw(2)); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Apply("T", adt.Deposit(2)); err != nil {
		t.Fatal(err)
	}
	if err := src.Commit("T"); err != nil {
		t.Fatal(err)
	}
	if err := dst.Commit("T"); err != nil {
		t.Fatal(err)
	}
	log.Flush()
	// The machine died before the TxnCommitRec was staged.
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	objs := []history.ObjectID{"xfer00", "xfer01"}
	vals, recs, stats := restartRedoAllOf(t, path, 0, objs)
	want := strconv.Itoa(crashInitialBalance)
	for _, obj := range objs {
		if vals[obj] != want {
			t.Errorf("account %s: restarted state %s, want %s (the loser's legs must never be redone)",
				obj, vals[obj], want)
		}
	}
	if stats.Replayed != 0 || stats.Undone != 0 {
		t.Errorf("restart replayed %d and undid %d records; a pure loser log needs neither", stats.Replayed, stats.Undone)
	}
	if len(recs) != 3 {
		t.Errorf("restart changed the log: %d records, want 3 (marker + two redo records)", len(recs))
	}
}

// TestRedoDependencyClosureViolationRejected: a winner whose durable Deps
// name a transaction with no durable commit record is a torn log —
// consistent-cut batching makes it impossible for the engine to produce —
// and restart must refuse to replay it.
func TestRedoDependencyClosureViolationRejected(t *testing.T) {
	log := wal.New()
	log.Append(wal.DisciplineMarker(wal.DisciplineRedo))
	u := recovery.NewRedoOnlyLog("X", crashMachine(), log)
	if _, err := u.Apply("T2", adt.Deposit(5)); err != nil {
		t.Fatal(err)
	}
	if err := u.Commit("T2"); err != nil {
		t.Fatal(err)
	}
	// T2 claims to have read from T1, whose commit record never became
	// durable.
	log.Append(wal.Record{Kind: wal.TxnCommitRec, Txn: "T2", Deps: []history.TxnID{"T1"}})
	_, _, err := recovery.RestartRedoOnly([]history.ObjectID{"X"},
		func(history.ObjectID) adt.Machine { return crashMachine() }, log, nil, recovery.RestartConfig{})
	if err == nil || !strings.Contains(err.Error(), "dependency closure") {
		t.Fatalf("restart accepted a winner with an undurable dependency: %v", err)
	}
}

// TestMixedDisciplineRejected: every seam that could silently recover one
// discipline's artifacts under the other must refuse instead.
func TestMixedDisciplineRejected(t *testing.T) {
	mkUndoLog := func(t *testing.T, path string) {
		t.Helper()
		backend, err := wal.CreateFileBackend(path)
		if err != nil {
			t.Fatal(err)
		}
		log, err := wal.Open(wal.Config{Backend: backend})
		if err != nil {
			t.Fatal(err)
		}
		e := txn.NewEngine(txn.Options{WAL: log})
		e.MustRegister("X", adt.DefaultBankAccount(), adt.DefaultBankAccount().NRBC(), txn.UndoLogRecovery)
		tx := e.Begin()
		if _, err := tx.Invoke("X", adt.Deposit(5)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
	}
	mkRedoLog := func(t *testing.T, path string) {
		t.Helper()
		backend, err := wal.CreateFileBackend(path)
		if err != nil {
			t.Fatal(err)
		}
		log, err := wal.Open(wal.Config{Backend: backend})
		if err != nil {
			t.Fatal(err)
		}
		e := txn.NewEngine(txn.Options{WAL: log, LogDiscipline: wal.DisciplineRedo})
		e.MustRegister("X", adt.DefaultBankAccount(), adt.DefaultBankAccount().NRBC(), txn.UndoLogRecovery)
		tx := e.Begin()
		if _, err := tx.Invoke("X", adt.Deposit(5)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
	}
	reopen := func(t *testing.T, path string) *wal.Log {
		t.Helper()
		backend, err := wal.OpenFileBackend(path)
		if err != nil {
			t.Fatal(err)
		}
		log, err := wal.Open(wal.Config{Backend: backend})
		if err != nil {
			t.Fatal(err)
		}
		return log
	}

	t.Run("redo-engine-over-undo-log", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "undo.wal")
		mkUndoLog(t, path)
		log := reopen(t, path)
		defer log.Close()
		e := txn.NewEngine(txn.Options{WAL: log, LogDiscipline: wal.DisciplineRedo})
		if err := e.Register("X", adt.DefaultBankAccount(), adt.DefaultBankAccount().NRBC(), txn.UndoLogRecovery); err == nil {
			t.Fatal("redo-only engine registered over an undo-mode log")
		}
	})
	t.Run("undo-engine-over-redo-log", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "redo.wal")
		mkRedoLog(t, path)
		log := reopen(t, path)
		defer log.Close()
		e := txn.NewEngine(txn.Options{WAL: log})
		if err := e.Register("X", adt.DefaultBankAccount(), adt.DefaultBankAccount().NRBC(), txn.UndoLogRecovery); err == nil {
			t.Fatal("undo-logging engine registered over a redo-only log")
		}
	})
	t.Run("redo-restart-of-undo-log", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "undo.wal")
		mkUndoLog(t, path)
		log := reopen(t, path)
		defer log.Close()
		if _, _, err := recovery.RestartRedoOnly([]history.ObjectID{"X"},
			func(history.ObjectID) adt.Machine { return crashMachine() }, log, nil,
			recovery.RestartConfig{}); err == nil {
			t.Fatal("RestartRedoOnly accepted a log with no redo marker")
		}
	})
	t.Run("undo-restart-of-redo-log", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "redo.wal")
		mkRedoLog(t, path)
		log := reopen(t, path)
		defer log.Close()
		if _, err := recovery.Restart("X", crashMachine(), log); err == nil {
			t.Fatal("single-object undo restart accepted a redo-only log")
		}
	})
	t.Run("mixed-record-kinds", func(t *testing.T) {
		// A marked redo log polluted with an undo-mode Update record (and
		// the dual: an unmarked log containing a RedoRec) — torn handoffs
		// the per-kind audit catches even when the marker check passes.
		polluted := wal.New()
		polluted.Append(wal.DisciplineMarker(wal.DisciplineRedo))
		polluted.Append(wal.Record{Kind: wal.Update, Txn: "T", Obj: "X", Op: adt.DepositOk(1)})
		if _, err := recovery.RestartAll([]history.ObjectID{"X"},
			func(history.ObjectID) adt.Machine { return crashMachine() }, polluted); err == nil {
			t.Fatal("restart accepted an Update record in a redo-only log")
		}
		unmarked := wal.New()
		unmarked.Append(wal.Record{Kind: wal.RedoRec, Txn: "T", Obj: "X", Op: adt.DepositOk(1)})
		if _, err := recovery.RestartAll([]history.ObjectID{"X"},
			func(history.ObjectID) adt.Machine { return crashMachine() }, unmarked); err == nil {
			t.Fatal("restart accepted a RedoRec in a log with no discipline marker")
		}
	})
	t.Run("checkpoint-discipline-mismatch", func(t *testing.T) {
		log := wal.New()
		log.Append(wal.Record{Kind: wal.Update, Txn: "T", Obj: "X", Op: adt.DepositOk(1),
			Undo: wal.EncodedUndo("")})
		snap := &checkpoint.Snapshot{ID: "CKPT0001", Frontier: 1, Discipline: wal.DisciplineRedo}
		if _, _, err := recovery.RestartAllWithCheckpoint([]history.ObjectID{"X"},
			func(history.ObjectID) adt.Machine { return crashMachine() }, log, snap); err == nil {
			t.Fatal("restart accepted a redo-discipline checkpoint over an undo-mode log")
		}
	})
}
