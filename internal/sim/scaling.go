package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/adt"
	"repro/internal/history"
	"repro/internal/txn"
)

// ScalingConfig parameterizes the multi-object contention workload used to
// measure how engine throughput scales with shard count and GOMAXPROCS.
// Unlike the banking hot spot, the object set is wide (low per-object
// conflict probability), so the measured ceiling is the harness itself —
// registry lookup, history recording, WAL sequencing — not the conflict
// relation. This is the workload that demonstrates the sharded registry:
// with one shard it degenerates to the seed's single-mutex design.
type ScalingConfig struct {
	// Objects is the number of bank-account objects (the working set).
	Objects int
	// Workers is the number of concurrent client goroutines.
	Workers int
	// TxnsPerWorker is the number of transactions each worker runs.
	TxnsPerWorker int
	// OpsPerTxn is the number of operations per transaction, each on a
	// uniformly random object.
	OpsPerTxn int
	// DepositPct and WithdrawPct set the operation mix (percent); the
	// remainder are balance reads.
	DepositPct  int
	WithdrawPct int
	// AbortPct aborts the transaction voluntarily after its operations,
	// exercising the undo path under concurrency.
	AbortPct int
	// InitialBalance seeds every account.
	InitialBalance int
	// Shards is passed to txn.Options (0 = engine default).
	Shards int
	// Seed makes the workload deterministic in structure.
	Seed int64
	// Record enables history recording (verification runs only; recording
	// is part of the harness cost being measured when enabled).
	Record bool
}

// DefaultScalingConfig is 64 objects under 8 workers, mixed ops, 5% aborts.
func DefaultScalingConfig() ScalingConfig {
	return ScalingConfig{
		Objects:        64,
		Workers:        8,
		TxnsPerWorker:  300,
		OpsPerTxn:      4,
		DepositPct:     40,
		WithdrawPct:    40,
		AbortPct:       5,
		InitialBalance: 1_000_000,
		Seed:           1,
	}
}

func scalingObjID(i int) history.ObjectID {
	return history.ObjectID(fmt.Sprintf("obj%03d", i))
}

// ScalingPoint is one measured point of the shard/GOMAXPROCS sweep.
type ScalingPoint struct {
	Scheduler  string  `json:"scheduler"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Shards     int     `json:"shards"`
	Objects    int     `json:"objects"`
	Workers    int     `json:"workers"`
	Commits    int64   `json:"commits"`
	Aborts     int64   `json:"aborts"`
	Deadlocks  int64   `json:"deadlocks"`
	Operations int64   `json:"operations"`
	Blocked    int64   `json:"blocked"`
	WALBatches int64   `json:"wal_batches"`
	WALRecords int64   `json:"wal_records"`
	ElapsedNS  int64   `json:"elapsed_ns"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	TxnPerSec  float64 `json:"txn_per_sec"`
}

// RunScaling executes the wide-object workload under the scheduler and
// returns the measured point (plus the engine, for verification in tests).
func RunScaling(s Scheduler, cfg ScalingConfig) (ScalingPoint, *txn.Engine) {
	ba := adt.BankAccount{
		InitialBalance: cfg.InitialBalance,
		MaxBalance:     12,
		Amounts:        []int{1, 2, 3},
	}
	rel := bankRelation(s, adt.DefaultBankAccount())
	e := txn.NewEngine(txn.Options{RecordHistory: cfg.Record, Shards: cfg.Shards})
	for i := 0; i < cfg.Objects; i++ {
		e.MustRegister(scalingObjID(i), ba, rel, s.Kind())
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*104729))
			for i := 0; i < cfg.TxnsPerWorker; i++ {
				tx := e.Begin()
				failed := false
				for op := 0; op < cfg.OpsPerTxn; op++ {
					obj := scalingObjID(rng.Intn(cfg.Objects))
					amount := 1 + rng.Intn(3)
					var err error
					switch pick := rng.Intn(100); {
					case pick < cfg.DepositPct:
						_, err = tx.Invoke(obj, adt.Deposit(amount))
					case pick < cfg.DepositPct+cfg.WithdrawPct:
						_, err = tx.Invoke(obj, adt.Withdraw(amount))
					default:
						_, err = tx.Invoke(obj, adt.Balance())
					}
					if err != nil {
						if !errors.Is(err, txn.ErrAborted) {
							_ = tx.Abort()
						}
						failed = true
						break
					}
				}
				if failed {
					continue
				}
				if cfg.AbortPct > 0 && rng.Intn(100) < cfg.AbortPct {
					_ = tx.Abort()
					continue
				}
				_ = tx.Commit()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	p := ScalingPoint{
		Scheduler:  s.String(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Shards:     e.Shards(),
		Objects:    cfg.Objects,
		Workers:    cfg.Workers,
		Commits:    e.Metrics.Commits.Load(),
		Aborts:     e.Metrics.Aborts.Load(),
		Deadlocks:  e.Metrics.Deadlocks.Load(),
		Operations: e.Metrics.Operations.Load(),
		Blocked:    e.Metrics.Blocked.Load(),
		WALBatches: e.WAL().Flushes(),
		WALRecords: e.WAL().FlushedRecords(),
		ElapsedNS:  elapsed.Nanoseconds(),
	}
	if elapsed > 0 {
		p.OpsPerSec = float64(p.Operations) / elapsed.Seconds()
		p.TxnPerSec = float64(p.Commits) / elapsed.Seconds()
	}
	return p, e
}

// ScalingSweep measures the workload at each shard count, holding the rest
// of the configuration fixed — the regenerable scaling-curve artifact.
func ScalingSweep(s Scheduler, cfg ScalingConfig, shardCounts []int) []ScalingPoint {
	out := make([]ScalingPoint, 0, len(shardCounts))
	for _, n := range shardCounts {
		c := cfg
		c.Shards = n
		p, _ := RunScaling(s, c)
		out = append(out, p)
	}
	return out
}

// RenderScalingTable renders sweep points as a fixed-width table.
func RenderScalingTable(title string, points []ScalingPoint) string {
	b := fmt.Sprintf("%s\n%-12s %6s %7s %8s %8s %8s %12s %12s\n",
		title, "scheduler", "procs", "shards", "commits", "aborts", "blocked", "ops/s", "txn/s")
	for _, p := range points {
		b += fmt.Sprintf("%-12s %6d %7d %8d %8d %8d %12.0f %12.0f\n",
			p.Scheduler, p.GOMAXPROCS, p.Shards, p.Commits, p.Aborts, p.Blocked, p.OpsPerSec, p.TxnPerSec)
	}
	return b
}
