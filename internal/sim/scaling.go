package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/adt"
	"repro/internal/history"
	"repro/internal/txn"
)

// ScalingConfig parameterizes the multi-object contention workload used to
// measure how engine throughput scales with shard count and GOMAXPROCS.
// Unlike the banking hot spot, the object set is wide (low per-object
// conflict probability), so the measured ceiling is the harness itself —
// registry lookup, history recording, WAL sequencing — not the conflict
// relation. This is the workload that demonstrates the sharded registry:
// with one shard it degenerates to the seed's single-mutex design.
type ScalingConfig struct {
	// Objects is the number of bank-account objects (the working set).
	Objects int
	// Workers is the number of concurrent client goroutines.
	Workers int
	// TxnsPerWorker is the number of transactions each worker runs.
	TxnsPerWorker int
	// OpsPerTxn is the number of operations per transaction, each on a
	// uniformly random object.
	OpsPerTxn int
	// DepositPct and WithdrawPct set the operation mix (percent); the
	// remainder are balance reads.
	DepositPct  int
	WithdrawPct int
	// Mix names the operation mix for reporting (e.g. "update-heavy",
	// "read-mostly"); measured points carry it so sweeps over different
	// mixes stay distinguishable in BENCH_engine.json. Empty means the
	// point is labeled by a derived "dep/wdr/read" percentage string.
	Mix string
	// AbortPct aborts the transaction voluntarily after its operations,
	// exercising the undo path under concurrency.
	AbortPct int
	// ZipfS, when > 1, selects objects zipfian with skew exponent s —
	// low-numbered objects become hot spots, and raising s concentrates
	// contention the way skewed real-world key popularity does. Values
	// <= 1 select uniformly (math/rand's zipf generator requires s > 1).
	ZipfS float64
	// ThinkIters adds deterministic busy work (with scheduler yields)
	// after each operation while locks are held, as in BankingConfig, so
	// contention is observable even at GOMAXPROCS=1. Zero means none.
	ThinkIters int
	// LongReadPct, when > 0, turns that percentage of transactions into
	// long-running readers: instead of the usual OpsPerTxn mixed
	// operations they perform LongReadOps balance reads, holding their
	// read locks open across the whole span. Long readers model analytic
	// scans pinned open against an update stream — the workload where
	// lock-release policy and commit-pipeline shape show up as reader
	// stalls. Zero disables the knob (and draws nothing from the RNG, so
	// existing seeded workloads are unchanged).
	LongReadPct int
	// LongReadOps is the operation count of a long reader (default
	// 8×OpsPerTxn when a long reader is drawn with the field unset).
	LongReadOps int
	// InitialBalance seeds every account.
	InitialBalance int
	// Shards is passed to txn.Options (0 = engine default).
	Shards int
	// Seed makes the workload deterministic in structure.
	Seed int64
	// Record enables history recording (verification runs only; recording
	// is part of the harness cost being measured when enabled).
	Record bool
}

// DefaultScalingConfig is 64 objects under 8 workers, mixed ops, 5% aborts.
func DefaultScalingConfig() ScalingConfig {
	return ScalingConfig{
		Objects:        64,
		Workers:        8,
		TxnsPerWorker:  300,
		OpsPerTxn:      4,
		DepositPct:     40,
		WithdrawPct:    40,
		AbortPct:       5,
		InitialBalance: 1_000_000,
		Seed:           1,
		Mix:            "update-heavy",
	}
}

// ReadMostlyScalingConfig is the read-mostly variant of the scaling
// workload: 90% balance reads, 5% deposits, 5% withdrawals. Every
// operation is still operation-logged (the undo-log store logs reads too —
// their undo is the identity), so the WAL record count does not change;
// what drops is the conflict mass, since balance reads conflict with far
// fewer held operations than updates do. The mix therefore measures the
// harness's per-operation floor — registry lookup, locking, staging,
// history recording — with contention nearly removed.
func ReadMostlyScalingConfig() ScalingConfig {
	cfg := DefaultScalingConfig()
	cfg.DepositPct = 5
	cfg.WithdrawPct = 5
	cfg.Mix = "read-mostly"
	return cfg
}

func scalingObjID(i int) history.ObjectID {
	return history.ObjectID(fmt.Sprintf("obj%03d", i))
}

// runBankWorkers drives cfg's worker loop against e: each worker runs
// TxnsPerWorker transactions of OpsPerTxn mixed operations on (optionally
// zipfian) random objects, with optional think time and voluntary aborts.
// onCommit, when non-nil, receives each successful commit's latency from
// the committing worker's goroutine — the flush sweep's measurement hook.
// It is the single workload definition shared by the scaling, contention,
// and flush sweeps, so the sweeps stay comparable.
func runBankWorkers(e *txn.Engine, cfg ScalingConfig, onCommit func(worker int, d time.Duration)) {
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*104729))
			var zipf *rand.Zipf
			if cfg.ZipfS > 1 {
				zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Objects-1))
			}
			pickObj := func() history.ObjectID {
				if zipf != nil {
					return scalingObjID(int(zipf.Uint64()))
				}
				return scalingObjID(rng.Intn(cfg.Objects))
			}
			for i := 0; i < cfg.TxnsPerWorker; i++ {
				// Long readers are drawn only when the knob is set, so the
				// RNG stream — and with it every existing seeded workload —
				// is untouched when LongReadPct is zero.
				longRead := false
				ops := cfg.OpsPerTxn
				if cfg.LongReadPct > 0 && rng.Intn(100) < cfg.LongReadPct {
					longRead = true
					if ops = cfg.LongReadOps; ops <= 0 {
						ops = 8 * cfg.OpsPerTxn
					}
				}
				tx := e.Begin()
				failed := false
				for op := 0; op < ops; op++ {
					obj := pickObj()
					amount := 1 + rng.Intn(3)
					var err error
					switch pick := rng.Intn(100); {
					case longRead:
						_, err = tx.Invoke(obj, adt.Balance())
					case pick < cfg.DepositPct:
						_, err = tx.Invoke(obj, adt.Deposit(amount))
					case pick < cfg.DepositPct+cfg.WithdrawPct:
						_, err = tx.Invoke(obj, adt.Withdraw(amount))
					default:
						_, err = tx.Invoke(obj, adt.Balance())
					}
					if err != nil {
						if !errors.Is(err, txn.ErrAborted) {
							_ = tx.Abort()
						}
						failed = true
						break
					}
					if cfg.ThinkIters > 0 {
						think(cfg.ThinkIters)
					}
				}
				if failed {
					continue
				}
				if cfg.AbortPct > 0 && rng.Intn(100) < cfg.AbortPct {
					_ = tx.Abort()
					continue
				}
				if onCommit == nil {
					_ = tx.Commit()
					continue
				}
				c0 := time.Now()
				if err := tx.Commit(); err == nil {
					onCommit(w, time.Since(c0))
				}
			}
		}(w)
	}
	wg.Wait()
}

// ScalingPoint is one measured point of the shard/GOMAXPROCS sweep.
type ScalingPoint struct {
	Scheduler  string  `json:"scheduler"`
	Mix        string  `json:"mix,omitempty"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Shards     int     `json:"shards"`
	Objects    int     `json:"objects"`
	Workers    int     `json:"workers"`
	ZipfS      float64 `json:"zipf_s,omitempty"`
	Commits    int64   `json:"commits"`
	Aborts     int64   `json:"aborts"`
	Deadlocks  int64   `json:"deadlocks"`
	Operations int64   `json:"operations"`
	Blocked    int64   `json:"blocked"`
	WALBatches int64   `json:"wal_batches"`
	WALRecords int64   `json:"wal_records"`
	ElapsedNS  int64   `json:"elapsed_ns"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	TxnPerSec  float64 `json:"txn_per_sec"`
}

// RunScaling executes the wide-object workload under the scheduler and
// returns the measured point (plus the engine, for verification in tests).
func RunScaling(s Scheduler, cfg ScalingConfig) (ScalingPoint, *txn.Engine) {
	ba := adt.BankAccount{
		InitialBalance: cfg.InitialBalance,
		MaxBalance:     12,
		Amounts:        []int{1, 2, 3},
	}
	rel := bankRelation(s, adt.DefaultBankAccount())
	e := txn.NewEngine(txn.Options{RecordHistory: cfg.Record, Shards: cfg.Shards})
	for i := 0; i < cfg.Objects; i++ {
		e.MustRegister(scalingObjID(i), ba, rel, s.Kind())
	}

	start := time.Now()
	runBankWorkers(e, cfg, nil)
	elapsed := time.Since(start)

	mix := cfg.Mix
	if mix == "" {
		mix = fmt.Sprintf("%d/%d/%d", cfg.DepositPct, cfg.WithdrawPct,
			100-cfg.DepositPct-cfg.WithdrawPct)
	}
	snap := e.ObsSnapshot()
	p := ScalingPoint{
		Scheduler:  s.String(),
		Mix:        mix,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Shards:     e.Shards(),
		Objects:    cfg.Objects,
		Workers:    cfg.Workers,
		ZipfS:      cfg.ZipfS,
		Commits:    snap.Engine.Commits,
		Aborts:     snap.Engine.Aborts,
		Deadlocks:  snap.Engine.Deadlocks,
		Operations: snap.Engine.Operations,
		Blocked:    snap.Engine.Blocked,
		WALBatches: snap.WAL.Flushes,
		WALRecords: snap.WAL.FlushedRecords,
		ElapsedNS:  elapsed.Nanoseconds(),
	}
	if elapsed > 0 {
		p.OpsPerSec = float64(p.Operations) / elapsed.Seconds()
		p.TxnPerSec = float64(p.Commits) / elapsed.Seconds()
	}
	return p, e
}

// AbortRate returns the fraction of finished transactions that aborted.
func (p ScalingPoint) AbortRate() float64 {
	total := p.Commits + p.Aborts
	if total == 0 {
		return 0
	}
	return float64(p.Aborts) / float64(total)
}

// ContentionSweep measures the workload at each zipf skew, holding the
// rest of the configuration fixed: as s rises the object distribution
// collapses onto a few hot objects and the abort (deadlock) rate climbs —
// the contention axis of the scaling story.
func ContentionSweep(s Scheduler, cfg ScalingConfig, skews []float64) []ScalingPoint {
	out := make([]ScalingPoint, 0, len(skews))
	for _, z := range skews {
		c := cfg
		c.ZipfS = z
		p, _ := RunScaling(s, c)
		out = append(out, p)
	}
	return out
}

// ScalingSweep measures the workload at each shard count, holding the rest
// of the configuration fixed — the regenerable scaling-curve artifact.
func ScalingSweep(s Scheduler, cfg ScalingConfig, shardCounts []int) []ScalingPoint {
	out := make([]ScalingPoint, 0, len(shardCounts))
	for _, n := range shardCounts {
		c := cfg
		c.Shards = n
		p, _ := RunScaling(s, c)
		out = append(out, p)
	}
	return out
}

// ScalingGridSweep measures the workload over the joint zipf-skew × shard
// grid: the marginal sweeps each hold the other axis fixed, but sharding
// only pays while the key distribution spreads load across shards, so the
// interaction — skew flattening the shard curve — is itself the finding.
// A skew <= 1 selects the uniform distribution.
func ScalingGridSweep(s Scheduler, cfg ScalingConfig, skews []float64, shardCounts []int) []ScalingPoint {
	out := make([]ScalingPoint, 0, len(skews)*len(shardCounts))
	for _, z := range skews {
		for _, n := range shardCounts {
			c := cfg
			c.ZipfS = z
			c.Shards = n
			p, _ := RunScaling(s, c)
			out = append(out, p)
		}
	}
	return out
}

// RenderScalingTable renders sweep points as a fixed-width table.
func RenderScalingTable(title string, points []ScalingPoint) string {
	b := fmt.Sprintf("%s\n%-12s %-13s %6s %7s %8s %8s %8s %12s %12s\n",
		title, "scheduler", "mix", "procs", "shards", "commits", "aborts", "blocked", "ops/s", "txn/s")
	for _, p := range points {
		b += fmt.Sprintf("%-12s %-13s %6d %7d %8d %8d %8d %12.0f %12.0f\n",
			p.Scheduler, p.Mix, p.GOMAXPROCS, p.Shards, p.Commits, p.Aborts, p.Blocked, p.OpsPerSec, p.TxnPerSec)
	}
	return b
}
