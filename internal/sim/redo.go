package sim

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/adt"
	"repro/internal/history"
	"repro/internal/recovery"
	"repro/internal/txn"
	"repro/internal/wal"
)

// RedoSweepConfig parameterizes the logging-discipline experiment (E19):
// the fan-out transfer workload runs once per (discipline × backend) arm —
// undo logging versus REDO-only dependency logging, over the single-file
// and segmented WAL backends — and each arm's durable artifacts are then
// restarted from scratch. The workload phase measures what each discipline
// pays to log (records and bytes per commit, commit hold time); the
// restart phase measures what each pays to recover (records replayed,
// undone, wall time). The paper's UIP-versus-DU framing is the reference
// point: undo logging is the recovery half of update-in-place, while the
// redo-only discipline logs like deferred update — losers never reach the
// durable log as anything but skipped operation records, so aborts cost
// no log writes and restart needs no undo pass.
type RedoSweepConfig struct {
	TransferConfig
	// Length is the total transactions per worker.
	Length int
	// SegmentBytes is the segmented arm's rotation threshold.
	SegmentBytes int64
}

// DefaultRedoSweepConfig sweeps the three-participant transfer workload —
// with a fifth of the transfers aborting voluntarily, so the disciplines'
// abort costs (compensation records versus nothing) are on display — over
// both backends.
func DefaultRedoSweepConfig() RedoSweepConfig {
	cfg := RedoSweepConfig{
		TransferConfig: DefaultTransferConfig(),
		Length:         150,
		SegmentBytes:   4 << 10,
	}
	cfg.Participants = 3
	return cfg
}

// RedoPoint is one measured (discipline, backend) arm.
type RedoPoint struct {
	Discipline string `json:"discipline"` // "undo" or "redo"
	Backend    string `json:"backend"`    // "file" or "seg"
	Commits    int64  `json:"commits"`
	Aborts     int64  `json:"aborts"`
	// LogRecords / LogBytes describe the durable log the workload left
	// behind (no truncation in this sweep: the totals are what the
	// discipline logged, full stop). BytesPerCommit is the normalized
	// machine-independent signal the arms are compared on.
	LogRecords     int     `json:"log_records"`
	LogBytes       int64   `json:"log_bytes"`
	BytesPerCommit float64 `json:"bytes_per_commit"`
	// DepCommits / DepEntries count the dependency sets the redo-only
	// discipline reified: commit records carrying a non-empty Deps list,
	// and the total transaction IDs across them. Zero under undo logging.
	DepCommits int `json:"dep_commits,omitempty"`
	DepEntries int `json:"dep_entries,omitempty"`
	// CommitHoldUS is the mean lock hold time of the commit protocol
	// (txn.Metrics.CommitHoldNS over commits).
	CommitHoldUS float64 `json:"commit_hold_us"`
	// Restart-phase work (recovery.RestartStats) over the reopened
	// artifacts: the undo arm replays every durable record and undoes
	// losers; the redo arm replays winners only and undoes nothing.
	ReplayedRecords int     `json:"replayed_records"`
	SkippedRecords  int     `json:"skipped_records"`
	UndoneRecords   int     `json:"undone_records"`
	RestartUS       float64 `json:"restart_us"`
	// Conserved reports the recovered accounts summing to the initial
	// total.
	Conserved bool `json:"conserved"`
}

// redoArm is one cell of the discipline × backend grid.
type redoArm struct {
	discipline string // "" (undo) or wal.DisciplineRedo
	single     bool
	segBytes   int64
}

func (a redoArm) name() string {
	if a.discipline == wal.DisciplineRedo {
		return "redo"
	}
	return "undo"
}

func (a redoArm) backendName() string {
	if a.single {
		return "file"
	}
	return "seg"
}

// runRedoArm runs the workload once under the arm's discipline and
// backend, closes the engine, reopens the durable artifacts, and restarts
// them.
func runRedoArm(cfg RedoSweepConfig, arm redoArm, dir string) (RedoPoint, error) {
	p := RedoPoint{Discipline: arm.name(), Backend: arm.backendName()}
	d := txn.DurabilityOptions{
		Dir:           filepath.Join(dir, arm.name()+"-"+arm.backendName()),
		SingleFile:    arm.single,
		SegmentBytes:  arm.segBytes,
		BatchInterval: 50 * time.Microsecond,
	}
	e, err := txn.NewDurableEngine(txn.Options{Shards: cfg.Shards, LogDiscipline: arm.discipline}, d)
	if err != nil {
		return p, err
	}
	ba := cfg.BankAccount()
	rel := adt.DefaultBankAccount().NRBC()
	for i := 0; i < cfg.Accounts; i++ {
		e.MustRegister(TransferAccountID(i), ba, rel, txn.UndoLogRecovery)
	}
	c := cfg.TransferConfig
	c.TxnsPerWorker = cfg.Length
	RunTransfers(e, c)
	p.Commits = e.Metrics.Commits.Load()
	p.Aborts = e.Metrics.Aborts.Load()
	if p.Commits > 0 {
		p.CommitHoldUS = float64(e.Metrics.CommitHoldNS.Load()) / float64(p.Commits) / 1e3
	}
	if err := e.Close(); err != nil {
		return p, err
	}

	// Reopen the durable artifacts and restart — the discipline is
	// detected from the log's own marker.
	var backend wal.Backend
	if arm.single {
		backend, err = wal.OpenFileBackend(d.WALPath())
	} else {
		backend, err = wal.OpenSegmentedBackend(d.WALDir(), d.SegmentConfig())
	}
	if err != nil {
		return p, err
	}
	relog, err := wal.Open(wal.Config{Backend: backend})
	if err != nil {
		return p, err
	}
	p.LogRecords = relog.Records()
	p.LogBytes = relog.Bytes()
	if p.Commits > 0 {
		p.BytesPerCommit = float64(p.LogBytes) / float64(p.Commits)
	}
	for _, r := range relog.Snapshot() {
		if r.Kind == wal.TxnCommitRec && len(r.Deps) > 0 {
			p.DepCommits++
			p.DepEntries += len(r.Deps)
		}
	}
	objs := make([]history.ObjectID, cfg.Accounts)
	for i := range objs {
		objs[i] = TransferAccountID(i)
	}
	start := time.Now()
	stores, stats, err := recovery.RestartAllWithConfig(objs,
		func(history.ObjectID) adt.Machine { return ba.Machine() }, relog, nil,
		recovery.RestartConfig{})
	if err != nil {
		return p, err
	}
	p.RestartUS = float64(time.Since(start).Nanoseconds()) / 1e3
	p.ReplayedRecords = stats.Replayed
	p.SkippedRecords = stats.Skipped
	p.UndoneRecords = stats.Undone
	total := 0
	for obj, st := range stores {
		v, err := strconv.Atoi(st.CommittedValue().Encode())
		if err != nil {
			return p, fmt.Errorf("sim: restarted %s balance: %w", obj, err)
		}
		total += v
	}
	p.Conserved = total == cfg.Accounts*cfg.InitialBalance
	if err := relog.Close(); err != nil {
		return p, err
	}
	return p, nil
}

// RedoSweep runs the discipline × backend grid in a temporary directory
// (or dir, when non-empty) and enforces the experiment's core claim: per
// backend, the redo-only arm must log strictly fewer bytes per commit than
// the undo arm (it drops the undo payloads, the per-object commit records,
// and the entire abort trail) — a regression here means the discipline
// stopped paying for itself.
func RedoSweep(cfg RedoSweepConfig, dir string) ([]RedoPoint, error) {
	if dir == "" {
		d, err := os.MkdirTemp("", "ccbench-redo-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(d)
		dir = d
	}
	arms := []redoArm{
		{discipline: "", single: true},
		{discipline: wal.DisciplineRedo, single: true},
		{discipline: "", segBytes: cfg.SegmentBytes},
		{discipline: wal.DisciplineRedo, segBytes: cfg.SegmentBytes},
	}
	var out []RedoPoint
	for _, arm := range arms {
		p, err := runRedoArm(cfg, arm, dir)
		if err != nil {
			return nil, fmt.Errorf("sim: redo sweep %s/%s: %w", arm.name(), arm.backendName(), err)
		}
		if !p.Conserved {
			return nil, fmt.Errorf("sim: redo sweep %s/%s: restart did not conserve the total", arm.name(), arm.backendName())
		}
		out = append(out, p)
	}
	for _, backend := range []string{"file", "seg"} {
		var undo, redo *RedoPoint
		for i := range out {
			if out[i].Backend != backend {
				continue
			}
			if out[i].Discipline == "redo" {
				redo = &out[i]
			} else {
				undo = &out[i]
			}
		}
		if undo != nil && redo != nil && redo.BytesPerCommit >= undo.BytesPerCommit {
			return nil, fmt.Errorf("sim: redo sweep %s: redo-only logged %.1f bytes/commit, undo %.1f — the discipline's byte win vanished",
				backend, redo.BytesPerCommit, undo.BytesPerCommit)
		}
	}
	return out, nil
}

// RenderRedoTable renders sweep points as a fixed-width table.
func RenderRedoTable(title string, points []RedoPoint) string {
	b := fmt.Sprintf("%s\n%-4s %-4s %7s %6s %8s %9s %8s %8s %8s %6s %9s %11s %5s\n",
		title, "disc", "wal", "commits", "aborts", "logrecs", "logbytes",
		"B/commit", "depcmts", "replayed", "undone", "hold(us)", "restart(us)", "cons")
	for _, p := range points {
		b += fmt.Sprintf("%-4s %-4s %7d %6d %8d %9d %8.1f %8d %8d %6d %9.1f %11.0f %5v\n",
			p.Discipline, p.Backend, p.Commits, p.Aborts, p.LogRecords, p.LogBytes,
			p.BytesPerCommit, p.DepCommits, p.ReplayedRecords, p.UndoneRecords,
			p.CommitHoldUS, p.RestartUS, p.Conserved)
	}
	return b
}
