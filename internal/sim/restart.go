package sim

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/adt"
	"repro/internal/checkpoint"
	"repro/internal/history"
	"repro/internal/recovery"
	"repro/internal/txn"
	"repro/internal/wal"
)

// RestartSweepConfig parameterizes the segmented-restart experiment (E18):
// the checkpointed fan-out transfer workload runs once per backend arm —
// the legacy single-file WAL (rewrite-based truncation) and the segmented
// WAL at each configured rotation threshold (unlink-based truncation) —
// and each arm's durable artifacts are then crash-restarted at every
// configured parallelism. The workload phase measures what truncation
// costs (bytes rewritten versus segments unlinked); the restart phase
// measures how the two-pass recovery distributes across segment-partition
// scanners (pass 1) and hashed object workers (pass 2). The recovered
// state is bit-identical at every parallelism (proven by the recovery
// package's equivalence test); the sweep reports the conservation bit as
// the per-point correctness check.
type RestartSweepConfig struct {
	TransferConfig
	// EveryTxns is the checkpoint cadence in transactions per worker; one
	// fuzzy checkpoint (with log truncation) runs after every round except
	// the last, exactly as in E17.
	EveryTxns int
	// Length is the total transactions per worker for the workload phase.
	Length int
	// SegmentBytes lists the segmented backend's rotation thresholds to
	// sweep — one arm per value, alongside the single-file arm.
	SegmentBytes []int64
	// Parallelisms lists the restart pool sizes to sweep per arm.
	// Parallelism 1 is the sequential baseline.
	Parallelisms []int
}

// DefaultRestartSweepConfig sweeps the three-participant transfer workload
// over the single-file arm plus two segment sizes, restarting each at
// parallelism 1, 2, and 4.
func DefaultRestartSweepConfig() RestartSweepConfig {
	cfg := RestartSweepConfig{
		TransferConfig: DefaultTransferConfig(),
		EveryTxns:      25,
		Length:         150,
		SegmentBytes:   []int64{1 << 10, 4 << 10},
		Parallelisms:   []int{1, 2, 4},
	}
	cfg.Participants = 3
	cfg.AbortPct = 10
	return cfg
}

// RestartPoint is one measured (backend arm, parallelism) cell.
type RestartPoint struct {
	Backend      string `json:"backend"` // "file" or "seg"
	SegmentBytes int64  `json:"segment_bytes,omitempty"`
	Parallelism  int    `json:"parallelism"`
	Commits      int64  `json:"commits"`
	Checkpoints  int64  `json:"checkpoints"`
	// TruncatedRecords and the Trunc* fields describe the workload phase's
	// log-reclamation cost (wal.TruncateStats accumulated across every
	// checkpoint): the single-file arm rewrites the surviving suffix on
	// every truncation, the segmented arm rewrites nothing and unlinks
	// whole dead segments instead.
	TruncatedRecords      int64   `json:"truncated_records"`
	TruncBytesRewritten   int64   `json:"truncate_bytes_rewritten"`
	TruncSegmentsUnlinked int     `json:"truncate_segments_unlinked"`
	TruncUS               float64 `json:"truncate_us"`
	// LogRecords / LogBytes describe the retained durable log the restart
	// reads; Segments is the partition count pass 1's winner scan fanned
	// out over (1 for the single-file arm).
	LogRecords int   `json:"log_records"`
	LogBytes   int64 `json:"log_bytes"`
	Segments   int   `json:"segments"`
	// Pass-2 work (recovery.RestartStats): WorkerReplayed is each pool
	// worker's replayed-record share — the machine-independent signal that
	// the replay actually distributed.
	ReplayedRecords int     `json:"replayed_records"`
	SkippedRecords  int     `json:"skipped_records"`
	UndoneRecords   int     `json:"undone_records"`
	SeededObjects   int     `json:"seeded_objects"`
	WorkerReplayed  []int   `json:"worker_replayed"`
	Pass1US         float64 `json:"pass1_us"`
	Pass2US         float64 `json:"pass2_us"`
	RestartUS       float64 `json:"restart_us"`
	// Conserved reports the recovered accounts summing to the initial
	// total.
	Conserved bool `json:"conserved"`
}

// restartArm is one backend variant of the sweep.
type restartArm struct {
	name     string
	single   bool
	segBytes int64
}

func (a restartArm) dirName() string {
	if a.single {
		return "file"
	}
	return fmt.Sprintf("seg-%d", a.segBytes)
}

// runRestartArm runs the checkpointed workload once under arm's backend,
// then crash-restarts the durable artifacts at every parallelism. Restart
// appends loser compensation records to the log it recovers, so each
// parallelism variant restarts a fresh copy of the WAL directory; the
// checkpoint store is read-only during restart and is shared.
func runRestartArm(cfg RestartSweepConfig, arm restartArm, dir string) ([]RestartPoint, error) {
	d := txn.DurabilityOptions{
		Dir:           filepath.Join(dir, arm.dirName()),
		SingleFile:    arm.single,
		SegmentBytes:  arm.segBytes,
		BatchInterval: 50 * time.Microsecond,
	}
	e, err := txn.NewDurableEngine(txn.Options{Shards: cfg.Shards}, d)
	if err != nil {
		return nil, err
	}
	ba := cfg.BankAccount()
	rel := adt.DefaultBankAccount().NRBC()
	for i := 0; i < cfg.Accounts; i++ {
		e.MustRegister(TransferAccountID(i), ba, rel, txn.UndoLogRecovery)
	}
	every := cfg.EveryTxns
	if every < 1 {
		every = cfg.Length
	}
	for done, r := 0, 0; done < cfg.Length; r++ {
		per := every
		if cfg.Length-done < per {
			per = cfg.Length - done
		}
		c := cfg.TransferConfig
		c.TxnsPerWorker = per
		c.Seed = cfg.Seed + int64(r)*104729
		RunTransfers(e, c)
		done += per
		if done < cfg.Length {
			if _, err := e.Checkpoint(); err != nil {
				return nil, err
			}
		}
	}
	base := RestartPoint{Backend: arm.name, SegmentBytes: arm.segBytes}
	base.Commits = e.Metrics.Commits.Load()
	base.Checkpoints = e.Metrics.Checkpoints.Load()
	base.TruncatedRecords = e.Metrics.TruncatedRecords.Load()
	ts := e.WAL().TruncateStats()
	base.TruncBytesRewritten = ts.BytesRewritten
	base.TruncSegmentsUnlinked = ts.SegmentsUnlinked
	base.TruncUS = float64(ts.WallNS) / 1e3
	if err := e.Close(); err != nil {
		return nil, err
	}
	// The cost claim the segmented backend exists for: truncation must
	// reclaim by unlinking dead segments, never by rewriting live data.
	if !arm.single && base.TruncBytesRewritten != 0 {
		return nil, fmt.Errorf("sim: segmented arm rewrote %d bytes during truncation", base.TruncBytesRewritten)
	}
	if !arm.single && base.Checkpoints > 0 && base.TruncSegmentsUnlinked == 0 {
		return nil, fmt.Errorf("sim: segmented arm took %d checkpoints but unlinked no segments (segment size %d too large for the workload?)",
			base.Checkpoints, arm.segBytes)
	}

	objs := make([]history.ObjectID, cfg.Accounts)
	for i := range objs {
		objs[i] = TransferAccountID(i)
	}
	store, err := checkpoint.OpenFileStore(d.CheckpointDir())
	if err != nil {
		return nil, err
	}
	var out []RestartPoint
	for _, par := range cfg.Parallelisms {
		p := base
		p.Parallelism = par
		variant := filepath.Join(dir, fmt.Sprintf("%s-p%d", arm.dirName(), par), "wal")
		if err := copyFlatDir(d.WALDir(), variant); err != nil {
			return nil, err
		}
		start := time.Now()
		var backend wal.Backend
		if arm.single {
			backend, err = wal.OpenFileBackend(filepath.Join(variant, "engine.wal"))
		} else {
			backend, err = wal.OpenSegmentedBackend(variant, d.SegmentConfig())
		}
		if err != nil {
			return nil, err
		}
		relog, err := wal.Open(wal.Config{Backend: backend})
		if err != nil {
			return nil, err
		}
		// Sample the crash-time log size before restart appends loser
		// compensation records.
		p.LogRecords = relog.Records()
		p.LogBytes = relog.Bytes()
		snap, err := store.Latest()
		if err != nil {
			return nil, err
		}
		stores, stats, err := recovery.RestartAllWithConfig(objs,
			func(history.ObjectID) adt.Machine { return ba.Machine() }, relog, snap,
			recovery.RestartConfig{Parallelism: par})
		if err != nil {
			return nil, err
		}
		p.RestartUS = float64(time.Since(start).Nanoseconds()) / 1e3
		p.Segments = stats.Segments
		p.ReplayedRecords = stats.Replayed
		p.SkippedRecords = stats.Skipped
		p.UndoneRecords = stats.Undone
		p.SeededObjects = stats.SeededObjects
		p.WorkerReplayed = make([]int, len(stats.PerWorker))
		for i, w := range stats.PerWorker {
			p.WorkerReplayed[i] = w.Replayed
		}
		p.Pass1US = float64(stats.Pass1NS) / 1e3
		p.Pass2US = float64(stats.Pass2NS) / 1e3
		total := 0
		for obj, st := range stores {
			v, err := strconv.Atoi(st.CommittedValue().Encode())
			if err != nil {
				return nil, fmt.Errorf("sim: restarted %s balance: %w", obj, err)
			}
			total += v
		}
		p.Conserved = total == cfg.Accounts*cfg.InitialBalance
		if err := relog.Close(); err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// RestartSweep runs the full backend-arm × parallelism grid in a
// temporary directory (or dir, when non-empty).
func RestartSweep(cfg RestartSweepConfig, dir string) ([]RestartPoint, error) {
	if dir == "" {
		d, err := os.MkdirTemp("", "ccbench-restart-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(d)
		dir = d
	}
	arms := []restartArm{{name: "file", single: true}}
	for _, sb := range cfg.SegmentBytes {
		arms = append(arms, restartArm{name: "seg", segBytes: sb})
	}
	var out []RestartPoint
	for _, arm := range arms {
		pts, err := runRestartArm(cfg, arm, dir)
		if err != nil {
			return nil, fmt.Errorf("sim: restart sweep %s: %w", arm.dirName(), err)
		}
		out = append(out, pts...)
	}
	return out, nil
}

// copyFlatDir copies the regular files of src into dst (created fresh) —
// a WAL directory holds a flat set of segment files or one log file.
func copyFlatDir(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, ent := range ents {
		if !ent.Type().IsRegular() {
			continue
		}
		in, err := os.Open(filepath.Join(src, ent.Name()))
		if err != nil {
			return err
		}
		out, err := os.Create(filepath.Join(dst, ent.Name()))
		if err != nil {
			in.Close()
			return err
		}
		_, cpErr := io.Copy(out, in)
		in.Close()
		if err := out.Close(); cpErr == nil {
			cpErr = err
		}
		if cpErr != nil {
			return cpErr
		}
	}
	return nil
}

// busyWorkers counts pass-2 workers that replayed at least one record.
func busyWorkers(p RestartPoint) int {
	n := 0
	for _, r := range p.WorkerReplayed {
		if r > 0 {
			n++
		}
	}
	return n
}

// RenderRestartTable renders sweep points as a fixed-width table.
func RenderRestartTable(title string, points []RestartPoint) string {
	b := fmt.Sprintf("%s\n%-4s %8s %3s %8s %7s %9s %8s %8s %4s %8s %9s %9s %11s %5s\n",
		title, "wal", "seg(B)", "par", "logrecs", "truncRW", "unlinked",
		"replayed", "skipped", "segs", "busy/par", "pass1(us)", "pass2(us)", "restart(us)", "cons")
	for _, p := range points {
		seg := "-"
		if p.Backend != "file" {
			seg = strconv.FormatInt(p.SegmentBytes, 10)
		}
		b += fmt.Sprintf("%-4s %8s %3d %8d %7d %9d %8d %8d %4d %5d/%-2d %9.0f %9.0f %11.0f %5v\n",
			p.Backend, seg, p.Parallelism, p.LogRecords, p.TruncBytesRewritten,
			p.TruncSegmentsUnlinked, p.ReplayedRecords, p.SkippedRecords, p.Segments,
			busyWorkers(p), p.Parallelism, p.Pass1US, p.Pass2US, p.RestartUS, p.Conserved)
	}
	return b
}
