package sim

import (
	"fmt"
	"time"

	"repro/internal/adt"
	"repro/internal/txn"
	"repro/internal/wal"
)

// PipelineConfig parameterizes the commit-pipeline experiment: the shared
// banking workload against an asynchronous WAL, with the commit-pipeline
// shape and registry implementation as the independent variables. The
// "sequential" arm pairs the legacy per-object commit sweep with the
// legacy lock-guarded registry — the engine as it was before the
// lock-free refactor — and the "sharded" arm pairs the shard-grouped,
// commit-LSN-ordered pipeline with the copy-on-write registry. Wall-clock
// numbers are machine-bound (and nearly meaningless on 1 vCPU, where the
// arms serialize anyway); the machine-independent signal is the lock
// acquisition counters — registry lock acquisitions per operation and WAL
// stripe acquisitions per commit — which count protocol structure, not
// scheduling luck.
type PipelineConfig struct {
	FlushConfig
	Policy   txn.ReleasePolicy
	Pipeline txn.CommitPipeline
	// LegacyRegistry routes lookups through the pre-CoW per-shard RWMutex.
	LegacyRegistry bool
}

// DefaultPipelineConfig is the flush workload with a short flusher dwell
// and moderate zipf skew, so commit grouping has contention to expose.
func DefaultPipelineConfig() PipelineConfig {
	cfg := PipelineConfig{FlushConfig: DefaultFlushConfig()}
	cfg.BatchInterval = 100 * time.Microsecond
	cfg.TxnsPerWorker = 150
	cfg.ZipfS = 1.2
	return cfg
}

// PipelinePoint is one measured point of the pipeline × policy sweep.
type PipelinePoint struct {
	Scheduler        string  `json:"scheduler"`
	Pipeline         string  `json:"pipeline"`
	Registry         string  `json:"registry"`
	Policy           string  `json:"policy"`
	ZipfS            float64 `json:"zipf_s,omitempty"`
	Workers          int     `json:"workers"`
	Shards           int     `json:"shards"`
	Commits          int64   `json:"commits"`
	Aborts           int64   `json:"aborts"`
	Blocked          int64   `json:"blocked"`
	DependencyStalls int64   `json:"dependency_stalls"`
	Operations       int64   `json:"operations"`
	// MeanHoldUS is the mean commit-protocol lock hold (CommitHoldNS per
	// commit) — the window the sharded pipeline shrinks by releasing
	// shard-by-shard as soon as each shard's turn comes.
	MeanHoldUS float64 `json:"mean_hold_us"`
	// RegistryLockAcqs counts registry lock acquisitions (zero for the
	// CoW registry — the acceptance criterion of the lock-free read path);
	// RegistryAcqsPerOp normalizes by operations.
	RegistryLockAcqs  int64   `json:"registry_lock_acqs"`
	RegistryAcqsPerOp float64 `json:"registry_acqs_per_op"`
	// WALStripeAcqs counts staging-stripe acquisitions by appenders;
	// WALAcqsPerCommit normalizes by commits. Batch staging collapses a
	// shard's per-object records into one acquisition.
	WALStripeAcqs    int64   `json:"wal_stripe_acqs"`
	WALAcqsPerCommit float64 `json:"wal_acqs_per_commit"`
	CommitP50US      float64 `json:"commit_p50_us"`
	CommitP99US      float64 `json:"commit_p99_us"`
	TxnPerSec        float64 `json:"txn_per_sec"`
	ElapsedNS        int64   `json:"elapsed_ns"`
}

// RunPipeline executes the workload under the configured pipeline shape
// and registry implementation against an asynchronous flusher, measuring
// commit latency, commit-time lock hold, and the lock-acquisition
// counters.
func RunPipeline(s Scheduler, cfg PipelineConfig) (PipelinePoint, error) {
	backend := wal.NewLatencyBackend(cfg.SyncLatency, nil)
	log, err := wal.Open(wal.Config{
		Async:         true,
		BatchInterval: cfg.BatchInterval,
		MaxBatch:      cfg.MaxBatch,
		Backend:       backend,
	})
	if err != nil {
		return PipelinePoint{}, err
	}
	ba := adt.BankAccount{
		InitialBalance: cfg.InitialBalance,
		MaxBalance:     12,
		Amounts:        []int{1, 2, 3},
	}
	rel := bankRelation(s, adt.DefaultBankAccount())
	e := txn.NewEngine(txn.Options{
		Shards:               cfg.Shards,
		WAL:                  log,
		ReleasePolicy:        cfg.Policy,
		CommitPipeline:       cfg.Pipeline,
		LegacyLockedRegistry: cfg.LegacyRegistry,
	})
	for i := 0; i < cfg.Objects; i++ {
		e.MustRegister(scalingObjID(i), ba, rel, s.Kind())
	}

	latencies := make([][]time.Duration, cfg.Workers)
	start := time.Now()
	runBankWorkers(e, cfg.ScalingConfig, func(w int, d time.Duration) {
		latencies[w] = append(latencies[w], d)
	})
	elapsed := time.Since(start)
	snap := e.ObsSnapshot()
	if err := e.Close(); err != nil {
		return PipelinePoint{}, err
	}

	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	registry := "cow"
	if cfg.LegacyRegistry {
		registry = "legacy-locked"
	}
	p := PipelinePoint{
		Scheduler:        s.String(),
		Pipeline:         cfg.Pipeline.String(),
		Registry:         registry,
		Policy:           cfg.Policy.String(),
		ZipfS:            cfg.ZipfS,
		Workers:          cfg.Workers,
		Shards:           e.Shards(),
		Commits:          snap.Engine.Commits,
		Aborts:           snap.Engine.Aborts,
		Blocked:          snap.Engine.Blocked,
		DependencyStalls: snap.Engine.DependencyStalls,
		Operations:       snap.Engine.Operations,
		RegistryLockAcqs: snap.Engine.RegistryLockAcqs,
		WALStripeAcqs:    snap.WAL.StripeAcquisitions,
		CommitP50US:      float64(percentile(all, 50)) / 1e3,
		CommitP99US:      float64(percentile(all, 99)) / 1e3,
		ElapsedNS:        elapsed.Nanoseconds(),
	}
	// The per-commit figures come from the snapshot's derived mean where
	// one exists; only the stripe-per-commit ratio is sweep-local.
	p.MeanHoldUS = snap.Engine.MeanCommitHoldNS / 1e3
	if p.Commits > 0 {
		p.WALAcqsPerCommit = float64(p.WALStripeAcqs) / float64(p.Commits)
	}
	if p.Operations > 0 {
		p.RegistryAcqsPerOp = float64(p.RegistryLockAcqs) / float64(p.Operations)
	}
	if elapsed > 0 {
		p.TxnPerSec = float64(p.Commits) / elapsed.Seconds()
	}
	return p, nil
}

// PipelineSweep measures the before/after pair — sequential sweep over
// the legacy locked registry versus the sharded pipeline over the CoW
// registry — under each release policy, holding the workload fixed.
func PipelineSweep(s Scheduler, cfg PipelineConfig, policies []txn.ReleasePolicy) ([]PipelinePoint, error) {
	arms := []struct {
		pipe   txn.CommitPipeline
		legacy bool
	}{
		{txn.PipelineSequential, true},
		{txn.PipelineSharded, false},
	}
	out := make([]PipelinePoint, 0, len(policies)*len(arms))
	for _, pol := range policies {
		for _, arm := range arms {
			c := cfg
			c.Policy = pol
			c.Pipeline = arm.pipe
			c.LegacyRegistry = arm.legacy
			p, err := RunPipeline(s, c)
			if err != nil {
				return nil, err
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// RenderPipelineTable renders sweep points as a fixed-width table.
func RenderPipelineTable(title string, points []PipelinePoint) string {
	b := fmt.Sprintf("%s\n%-12s %-11s %-14s %-22s %8s %7s %10s %11s %11s %10s\n",
		title, "scheduler", "pipeline", "registry", "policy", "commits", "stalls",
		"hold(us)", "reg-acq/op", "wal-acq/txn", "txn/s")
	for _, p := range points {
		b += fmt.Sprintf("%-12s %-11s %-14s %-22s %8d %7d %10.0f %11.3f %11.2f %10.0f\n",
			p.Scheduler, p.Pipeline, p.Registry, p.Policy, p.Commits, p.DependencyStalls,
			p.MeanHoldUS, p.RegistryAcqsPerOp, p.WALAcqsPerCommit, p.TxnPerSec)
	}
	return b
}
