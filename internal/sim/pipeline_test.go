package sim

import (
	"testing"

	"repro/internal/txn"
)

// TestPipelineSweepShape pins the machine-independent shape of the
// pipeline experiment: both arms complete the workload, the CoW arm
// performs zero registry lock acquisitions (the lock-free read-path
// criterion), the legacy arm performs one per operation, and batch
// staging gives the sharded arm no more WAL stripe acquisitions than the
// sequential arm on the identical workload.
func TestPipelineSweepShape(t *testing.T) {
	cfg := DefaultPipelineConfig()
	cfg.TxnsPerWorker = 20
	cfg.Workers = 4
	cfg.BatchInterval = 0

	points, err := PipelineSweep(UIPNRBC, cfg, []txn.ReleasePolicy{txn.ReleaseEarlyTracked})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2 (sequential + sharded)", len(points))
	}
	byReg := map[string]PipelinePoint{}
	for _, p := range points {
		if p.Commits == 0 {
			t.Fatalf("%s/%s: no commits", p.Pipeline, p.Registry)
		}
		byReg[p.Registry] = p
	}
	legacy, cow := byReg["legacy-locked"], byReg["cow"]
	if cow.RegistryLockAcqs != 0 {
		t.Errorf("CoW registry performed %d lock acquisitions, want 0", cow.RegistryLockAcqs)
	}
	if legacy.RegistryLockAcqs < legacy.Operations {
		t.Errorf("legacy registry performed %d lock acquisitions over %d operations, want >= one per op",
			legacy.RegistryLockAcqs, legacy.Operations)
	}
	// Same seeded workload structure; the sharded arm's batch staging can
	// only merge acquisitions, never add them (commit counts may differ
	// slightly under contention, so compare per-commit rates).
	if cow.WALAcqsPerCommit > legacy.WALAcqsPerCommit {
		t.Errorf("sharded pipeline acquires %.2f WAL stripes per commit, sequential %.2f: batching must not add acquisitions",
			cow.WALAcqsPerCommit, legacy.WALAcqsPerCommit)
	}
}

// TestScalingGridSweepShape checks the joint skew × shards grid produces
// the full cross product with both axes recorded on each point.
func TestScalingGridSweepShape(t *testing.T) {
	cfg := DefaultScalingConfig()
	cfg.TxnsPerWorker = 10
	cfg.Workers = 2
	skews, shards := []float64{0, 1.5}, []int{1, 4}
	points := ScalingGridSweep(UIPNRBC, cfg, skews, shards)
	if len(points) != len(skews)*len(shards) {
		t.Fatalf("got %d points, want %d", len(points), len(skews)*len(shards))
	}
	i := 0
	for _, z := range skews {
		for _, n := range shards {
			p := points[i]
			i++
			if p.ZipfS != z || p.Shards != n {
				t.Fatalf("point %d: (zipf=%v, shards=%d), want (%v, %d)", i-1, p.ZipfS, p.Shards, z, n)
			}
			if p.Commits == 0 {
				t.Fatalf("point %d: no commits", i-1)
			}
		}
	}
}

// TestLongReadKnob checks long readers run and commit: with the knob at
// 100% every transaction is a LongReadOps-operation reader, so the
// operation count per commit rises accordingly and the workload still
// terminates (no reader deadlocks against itself).
func TestLongReadKnob(t *testing.T) {
	cfg := DefaultScalingConfig()
	cfg.TxnsPerWorker = 10
	cfg.Workers = 2
	cfg.AbortPct = 0
	cfg.LongReadPct = 100
	cfg.LongReadOps = 12
	p, _ := RunScaling(UIPNRBC, cfg)
	if p.Commits == 0 {
		t.Fatal("no commits with long readers pinned open")
	}
	if perTxn := float64(p.Operations) / float64(p.Commits+p.Aborts); perTxn < float64(cfg.OpsPerTxn) {
		t.Fatalf("%.1f ops per transaction, want at least the long-read span to dominate (> %d)",
			perTxn, cfg.OpsPerTxn)
	}
}
