package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"sync"

	"repro/internal/adt"
	"repro/internal/history"
	"repro/internal/txn"
	"repro/internal/wal"
)

// TransferConfig parameterizes the multi-object transfer workload: every
// transaction withdraws an amount from one account and deposits the same
// amount at another, so transaction atomicity is observable as money
// conservation — the sum of all balances never moves, and a half-applied
// transfer (one leg without the other) is immediately visible. This is the
// workload that stresses the cross-object commit barrier: a crash boundary
// can fall between the two legs' update records, between the per-object
// commit records, or between them and the transaction-level commit record,
// and restart must still recover whole transfers or none of one.
type TransferConfig struct {
	// Accounts is the number of bank-account objects.
	Accounts int
	// Workers is the number of concurrent client goroutines.
	Workers int
	// TxnsPerWorker is the number of transfer transactions per worker.
	TxnsPerWorker int
	// MaxAmount bounds each transfer amount (drawn uniformly from
	// 1..MaxAmount).
	MaxAmount int
	// Participants is the number of accounts each transfer touches
	// (values below 2 mean the classic pair). With P participants a
	// transaction withdraws (P-1)×amount from one source and fans the
	// deposits out over P-1 distinct destinations — conservation is
	// unchanged, but the commit protocol now spans P objects, so crash
	// boundaries can fall between any two legs of a wider transaction.
	Participants int
	// InitialBalance seeds every account; the conserved total is
	// Accounts * InitialBalance.
	InitialBalance int
	// AbortPct aborts the transaction voluntarily after both legs,
	// exercising multi-object compensation under concurrency.
	AbortPct int
	// Shards is passed to txn.Options (0 = engine default).
	Shards int
	// Seed makes the workload deterministic in structure.
	Seed int64
	// Record enables history recording (verification runs only).
	Record bool
	// Discipline is passed to txn.Options.LogDiscipline: empty for undo
	// logging, wal.DisciplineRedo for REDO-only dependency logging.
	Discipline string
}

// DefaultTransferConfig is 6 hot accounts under 5 workers with a fifth of
// the transfers aborting voluntarily.
func DefaultTransferConfig() TransferConfig {
	return TransferConfig{
		Accounts:       6,
		Workers:        5,
		TxnsPerWorker:  8,
		MaxAmount:      3,
		InitialBalance: 1000,
		AbortPct:       20,
		Seed:           1,
	}
}

// TransferAccountID names the i-th transfer account.
func TransferAccountID(i int) history.ObjectID {
	return history.ObjectID(fmt.Sprintf("xfer%02d", i))
}

// BankAccount returns the account type backing the workload — shared with
// the crash harness so the machine restarted from the durable log is
// exactly the machine that produced it.
func (cfg TransferConfig) BankAccount() adt.BankAccount {
	amounts := make([]int, cfg.MaxAmount)
	for i := range amounts {
		amounts[i] = i + 1
	}
	return adt.BankAccount{InitialBalance: cfg.InitialBalance, MaxBalance: 1 << 20, Amounts: amounts}
}

// NewTransferEngine builds an engine with cfg.Accounts undo-log (UIP/NRBC)
// bank accounts sharing log (nil selects the default in-memory WAL).
func NewTransferEngine(cfg TransferConfig, log *wal.Log) *txn.Engine {
	ba := cfg.BankAccount()
	e := txn.NewEngine(txn.Options{RecordHistory: cfg.Record, Shards: cfg.Shards, WAL: log,
		LogDiscipline: cfg.Discipline})
	for i := 0; i < cfg.Accounts; i++ {
		e.MustRegister(TransferAccountID(i), ba, adt.DefaultBankAccount().NRBC(), txn.UndoLogRecovery)
	}
	return e
}

// RunTransfers drives the transfer workload against e until every worker
// has finished. Each transaction withdraws from a random source and, if
// the withdrawal succeeded, deposits the same total across P-1 distinct
// random destinations (P = cfg.Participants, default 2 — the classic
// pair); transactions whose withdrawal is refused (insufficient funds)
// abort, as do a cfg.AbortPct fraction of complete transfers —
// multi-object compensation under concurrency. Deadlock victims are
// auto-aborted by the engine. The scheduler yields between legs spread a
// transfer's records over group-commit batches, so crash boundaries
// genuinely fall inside transfers.
func RunTransfers(e *txn.Engine, cfg TransferConfig) {
	parts := cfg.Participants
	if parts < 2 {
		parts = 2
	}
	if parts > cfg.Accounts {
		parts = cfg.Accounts
	}
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*15485863))
			for i := 0; i < cfg.TxnsPerWorker; i++ {
				tx := e.Begin()
				// src plus parts-1 distinct destinations, all different.
				perm := rng.Perm(cfg.Accounts)[:parts]
				src, dsts := perm[0], perm[1:]
				amount := 1 + rng.Intn(cfg.MaxAmount)
				res, err := tx.Invoke(TransferAccountID(src), adt.Withdraw(amount*len(dsts)))
				if err != nil {
					if !errors.Is(err, txn.ErrAborted) {
						_ = tx.Abort()
					}
					continue
				}
				if res != "ok" {
					_ = tx.Abort()
					continue
				}
				failed := false
				for _, dst := range dsts {
					runtime.Gosched()
					res, err = tx.Invoke(TransferAccountID(dst), adt.Deposit(amount))
					if err != nil {
						if !errors.Is(err, txn.ErrAborted) {
							_ = tx.Abort()
						}
						failed = true
						break
					}
					if res != "ok" {
						_ = tx.Abort()
						failed = true
						break
					}
				}
				if failed {
					continue
				}
				runtime.Gosched()
				if cfg.AbortPct > 0 && rng.Intn(100) < cfg.AbortPct {
					_ = tx.Abort()
					continue
				}
				_ = tx.Commit()
			}
		}(w)
	}
	wg.Wait()
}

// TransferTotal sums the committed balances of the transfer accounts — the
// conserved quantity. Call it quiescently.
func TransferTotal(e *txn.Engine, cfg TransferConfig) (int, error) {
	total := 0
	for i := 0; i < cfg.Accounts; i++ {
		store, ok := e.Object(TransferAccountID(i))
		if !ok {
			return 0, fmt.Errorf("sim: transfer account %d not registered", i)
		}
		bal, err := strconv.Atoi(store.CommittedValue().Encode())
		if err != nil {
			return 0, fmt.Errorf("sim: transfer account %d balance: %w", i, err)
		}
		total += bal
	}
	return total, nil
}
