package sim

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/atomicity"
	"repro/internal/commute"
	"repro/internal/history"
	"repro/internal/spec"
	"repro/internal/txn"
)

// waitUntilBlocked spins until the engine records at least one block event
// (i.e. some operation is genuinely waiting), failing the test after a
// generous timeout.
func waitUntilBlocked(t *testing.T, e *txn.Engine) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for e.Metrics.BlockEvents.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for an operation to block")
		}
		runtime.Gosched()
	}
}

func smallBanking() BankingConfig {
	return BankingConfig{
		Accounts:       2,
		Workers:        4,
		TxnsPerWorker:  25,
		OpsPerTxn:      3,
		DepositPct:     30,
		WithdrawPct:    50,
		InitialBalance: 1000,
		Seed:           42,
		Record:         true,
	}
}

// verifiedSchedulers runs every scheduler pairing on a small recorded
// banking workload and checks the recorded history is well-formed and
// dynamic atomic (sampled).
func TestBankingAllSchedulersCorrect(t *testing.T) {
	wide := adt.BankAccount{InitialBalance: smallBanking().InitialBalance, MaxBalance: 1 << 20, Amounts: []int{1, 2, 3}}
	for _, s := range Schedulers {
		res, e := RunBanking(s, smallBanking())
		if res.Commits == 0 {
			t.Fatalf("%s: no commits", s)
		}
		h := e.History()
		if err := history.WellFormed(h); err != nil {
			t.Fatalf("%s: malformed history: %v", s, err)
		}
		specs := atomicity.Specs{}
		for _, obj := range h.Objects() {
			specs[obj] = wide.Spec()
		}
		rng := rand.New(rand.NewSource(7))
		da, viol, err := atomicity.DynamicAtomicSampled(h, specs, 10, rng)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if !da {
			t.Fatalf("%s: history not dynamic atomic: %v", s, viol)
		}
	}
}

// TestConservationOfMoney: across all schedulers, the final committed
// balance equals the initial balance plus committed deposits minus
// committed successful withdrawals. The engine history gives the committed
// operation totals.
func TestConservationOfMoney(t *testing.T) {
	for _, s := range []Scheduler{UIPNRBC, DUNFC, UIPRW} {
		cfg := smallBanking()
		cfg.Accounts = 1
		cfg.AbortPct = 30
		res, e := RunBanking(s, cfg)
		_ = res
		h := e.History().Permanent()
		delta := 0
		for _, op := range history.Opseq(h) {
			switch {
			case op.Inv.Name == "deposit":
				delta += atoiOrZero(op.Inv.Args)
			case op.Inv.Name == "withdraw" && op.Res == "ok":
				delta -= atoiOrZero(op.Inv.Args)
			}
		}
		store, _ := e.Object(acctID(0))
		want := cfg.InitialBalance + delta
		if got := store.CommittedValue().Encode(); got != itoa(want) {
			t.Fatalf("%s: committed balance = %s, want %d", s, got, want)
		}
	}
}

func atoiOrZero(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// TestTradeoffWithdrawHeavy asserts the paper's directional claim on a
// withdraw-heavy hot spot: UIP/NRBC permits concurrent successful
// withdrawals that DU/NFC must serialize, so UIP/NRBC blocks fewer
// operations. Read/write locking blocks at least as much as either.
func TestTradeoffWithdrawHeavy(t *testing.T) {
	cfg := BankingConfig{
		Accounts:       1,
		Workers:        8,
		TxnsPerWorker:  60,
		OpsPerTxn:      4,
		DepositPct:     0,
		WithdrawPct:    100,
		InitialBalance: 1 << 20,
		ThinkIters:     1500,
		Seed:           11,
	}
	uip, _ := RunBanking(UIPNRBC, cfg)
	du, _ := RunBanking(DUNFC, cfg)
	rw, _ := RunBanking(UIPRW, cfg)
	if uip.Blocked != 0 {
		t.Errorf("pure successful withdrawals never conflict under NRBC; blocked = %d", uip.Blocked)
	}
	if du.Blocked == 0 {
		t.Error("withdraw-heavy: DU/NFC must serialize successful withdrawals")
	}
	if rw.Blocked == 0 {
		t.Error("withdraw-heavy: RW locking must serialize withdrawals")
	}
}

// TestTradeoffDepositThenWithdraw asserts the mirror claim on a
// deposit-heavy mix: under UIP/NRBC every requested withdrawal conflicts
// with the (abundant) held deposits, while under DU/NFC withdrawals
// conflict only with the (rare) held withdrawals — so DU/NFC blocks
// substantially less. On a 50/50 mix the two conflict masses are equal
// (wok-vs-dep under UIP, wok-vs-wok under DU); the 80/20 mix isolates the
// asymmetry.
func TestTradeoffDepositThenWithdraw(t *testing.T) {
	cfg := BankingConfig{
		Accounts:       1,
		Workers:        8,
		TxnsPerWorker:  60,
		OpsPerTxn:      4,
		DepositPct:     80,
		WithdrawPct:    20,
		InitialBalance: 1 << 20,
		ThinkIters:     1500,
		Seed:           13,
	}
	// The deterministic form of the claim: exact conflict mass over the
	// mix distribution.
	ba := adt.DefaultBankAccount()
	dist := BankingOpDist(cfg.DepositPct, cfg.WithdrawPct, 1<<20)
	uipMass := ConflictMass(ba.NRBC(), dist)
	duMass := ConflictMass(ba.NFC(), dist)
	if duMass >= uipMass {
		t.Fatalf("deposit-heavy mix: NFC mass %.4f should be below NRBC mass %.4f", duMass, uipMass)
	}
	if uipMass < 3*duMass {
		t.Errorf("expected a wide gap on the 80/20 mix: NRBC=%.4f NFC=%.4f", uipMass, duMass)
	}
	// Dynamic smoke: both pairings complete; measured blocking is reported
	// (machine-dependent overlap makes strict per-run inequalities noisy).
	uip, _ := RunBanking(UIPNRBC, cfg)
	du, _ := RunBanking(DUNFC, cfg)
	t.Logf("engine run: UIP/NRBC blocked=%d, DU/NFC blocked=%d (expected shape: UIP higher on average)", uip.Blocked, du.Blocked)
	if uip.Commits+uip.Aborts != uip.Txns || du.Commits+du.Aborts != du.Txns {
		t.Error("transaction conservation violated")
	}
}

// TestConflictMassCrossover regenerates the trade-off curve
// deterministically: NRBC mass is below NFC mass on withdraw-heavy mixes,
// above it on deposit-heavy mixes, and the two cross as the mix shifts —
// the paper's incomparability as a workload sweep.
func TestConflictMassCrossover(t *testing.T) {
	ba := adt.DefaultBankAccount()
	mixes := [][2]int{{0, 100}, {20, 80}, {50, 50}, {80, 20}, {100, 0}}
	rows := ConflictMassTable([]commute.Relation{ba.NRBC(), ba.NFC(), ba.RW()}, mixes, 1<<20)
	// Withdraw-only: NRBC mass 0, NFC mass > 0.
	if rows[0].Masses[0] != 0 {
		t.Errorf("withdraw-only NRBC mass = %.4f, want 0", rows[0].Masses[0])
	}
	if rows[0].Masses[1] == 0 {
		t.Error("withdraw-only NFC mass should be positive")
	}
	// Deposit-only: both 0 (deposits commute both ways).
	if rows[4].Masses[0] != 0 || rows[4].Masses[1] != 0 {
		t.Errorf("deposit-only masses = %v, want 0", rows[4].Masses)
	}
	// 50/50: equal masses (wok-vs-dep one-way under NRBC equals
	// wok-vs-wok two-way under NFC at this mix).
	if diff := rows[2].Masses[0] - rows[2].Masses[1]; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("50/50 masses should coincide: %v", rows[2].Masses)
	}
	// Deposit-heavy: NRBC above NFC; withdraw-heavy: NFC above NRBC.
	if rows[3].Masses[0] <= rows[3].Masses[1] {
		t.Errorf("80/20: NRBC %.4f should exceed NFC %.4f", rows[3].Masses[0], rows[3].Masses[1])
	}
	if rows[1].Masses[1] <= rows[1].Masses[0] {
		t.Errorf("20/80: NFC %.4f should exceed NRBC %.4f", rows[1].Masses[1], rows[1].Masses[0])
	}
	// RW dominates both everywhere there are operations.
	for i, r := range rows {
		if r.Masses[2] < r.Masses[0] || r.Masses[2] < r.Masses[1] {
			t.Errorf("mix %d: RW mass %.4f must dominate", i, r.Masses[2])
		}
	}
	t.Logf("\n%s", RenderMassTable("conflict mass", []string{"NRBC", "NFC", "RW"}, rows))
}

// TestAblationSymmetricClosure: forcing symmetry on NRBC adds exactly the
// conflicts whose absence the paper highlights — a requested deposit
// against a held successful withdrawal — and a dynamic run under the
// closed relation still executes correctly (it is a superset of NRBC, so
// Theorem 9 applies a fortiori).
func TestAblationSymmetricClosure(t *testing.T) {
	ba := adt.DefaultBankAccount()
	plain := bankRelation(UIPNRBC, ba)
	sym := bankRelation(UIPSym, ba)
	if plain.Conflicts(adt.DepositOk(1), adt.WithdrawOk(2)) {
		t.Fatal("NRBC must not conflict deposit-after-withdrawal")
	}
	if !sym.Conflicts(adt.DepositOk(1), adt.WithdrawOk(2)) {
		t.Fatal("symmetric closure must add deposit-after-withdrawal")
	}
	for _, p := range ba.Spec().Alphabet() {
		for _, q := range ba.Spec().Alphabet() {
			if plain.Conflicts(p, q) && !sym.Conflicts(p, q) {
				t.Fatalf("closure lost pair (%s,%s)", p, q)
			}
		}
	}
	cfg := BankingConfig{
		Accounts: 1, Workers: 4, TxnsPerWorker: 20, OpsPerTxn: 3,
		DepositPct: 50, WithdrawPct: 50, InitialBalance: 1 << 20,
		ThinkIters: 500, Seed: 17,
	}
	r, _ := RunBanking(UIPSym, cfg)
	if r.Commits+r.Aborts != r.Txns {
		t.Errorf("sym run: %d txns but %d commits + %d aborts", r.Txns, r.Commits, r.Aborts)
	}
}

// TestAblationInvocationBased: invocation-based locking (locks ignore
// results) conflicts on a strict superset of the operation pairs that
// result-based locking does — the deterministic form of the paper's
// Section 8.2 observation that every withdrawal must conflict with
// deposits once locks ignore results. A dynamic run of both
// configurations double-checks they execute correctly.
func TestAblationInvocationBased(t *testing.T) {
	ba := adt.DefaultBankAccount()
	resultRel := bankRelation(DUNFC, ba)
	invRel := bankRelation(DUInv, ba)
	ops := ba.Spec().Alphabet()
	superset := false
	for _, p := range ops {
		for _, q := range ops {
			rc := resultRel.Conflicts(p, q)
			ic := invRel.Conflicts(p, q)
			if rc && !ic {
				t.Fatalf("lifted NFCI must contain NFC: (%s,%s) lost", p, q)
			}
			if ic && !rc {
				superset = true
			}
		}
	}
	if !superset {
		t.Fatal("invocation-based locking should add conflicts on the bank account")
	}
	// The canonical added conflict: a successful withdrawal against a
	// deposit.
	if !invRel.Conflicts(adt.WithdrawOk(2), adt.DepositOk(1)) {
		t.Error("withdraw-ok must conflict with deposit under invocation-based locking")
	}
	if resultRel.Conflicts(adt.WithdrawOk(2), adt.DepositOk(1)) {
		t.Error("withdraw-ok does not conflict with deposit under NFC")
	}
	// Smoke: both pairings execute a contended workload to completion.
	cfg := BankingConfig{
		Accounts: 1, Workers: 4, TxnsPerWorker: 20, OpsPerTxn: 3,
		DepositPct: 40, WithdrawPct: 40, InitialBalance: 1 << 20,
		ThinkIters: 500, Seed: 19,
	}
	for _, sch := range []Scheduler{DUNFC, DUInv} {
		r, _ := RunBanking(sch, cfg)
		if r.Commits+r.Aborts != r.Txns {
			t.Errorf("%s: %d txns but %d commits + %d aborts", sch, r.Txns, r.Commits, r.Aborts)
		}
	}
}

// TestPoolDivergence: under update-in-place the allocator sees in-flight
// allocations and hands concurrent transactions distinct resources; under
// deferred update both compute their allocation against the committed pool
// and collide. The two-transaction scenario is deterministic; the
// statistical run is reported for the experiment log.
func TestPoolDivergence(t *testing.T) {
	pool := adt.DefaultResourcePool()

	// UIP: second alloc proceeds immediately with a different resource.
	eU := txn.NewEngine(txn.Options{})
	eU.MustRegister("P", pool, commute.Materialize(pool.NRBC(), pool.Spec().Alphabet()), txn.UndoLogRecovery)
	t1, t2 := eU.Begin(), eU.Begin()
	r1, err := t1.Invoke("P", adt.Alloc())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := t2.Invoke("P", adt.Alloc())
	if err != nil {
		t.Fatalf("UIP: concurrent alloc must not block or fail: %v", err)
	}
	if r1 == r2 {
		t.Fatalf("UIP: allocations must differ, both got %s", r1)
	}
	if eU.Metrics.Blocked.Load() != 0 {
		t.Error("UIP: no alloc should have blocked")
	}

	// DU: the second alloc computes the same resource from the committed
	// pool and must wait for the first to commit.
	eD := txn.NewEngine(txn.Options{})
	eD.MustRegister("P", pool, commute.Materialize(pool.NFC(), pool.Spec().Alphabet()), txn.IntentionsRecovery)
	d1, d2 := eD.Begin(), eD.Begin()
	if _, err := d1.Invoke("P", adt.Alloc()); err != nil {
		t.Fatal(err)
	}
	done := make(chan spec.Response, 1)
	go func() {
		r, err := d2.Invoke("P", adt.Alloc())
		if err != nil {
			t.Errorf("DU: alloc after commit: %v", err)
		}
		done <- r
	}()
	// Wait until d2 has genuinely blocked (metric-synchronized, no sleep
	// guessing), then release it by committing d1.
	waitUntilBlocked(t, eD)
	select {
	case r := <-done:
		t.Fatalf("DU: second alloc should block, got %s", r)
	default:
	}
	if err := d1.Commit(); err != nil {
		t.Fatal(err)
	}
	if r := <-done; r != "2" {
		t.Fatalf("DU: after commit the second alloc gets the next resource, got %s", r)
	}
	if eD.Metrics.Blocked.Load() == 0 {
		t.Error("DU: the second alloc must have blocked")
	}

	// Statistical run, reported for EXPERIMENTS.md.
	cfg := DefaultPoolConfig()
	cfg.TxnsPerWorker = 60
	uip, _ := RunPool(UIPNRBC, cfg)
	du, _ := RunPool(DUNFC, cfg)
	if uip.Commits == 0 || du.Commits == 0 {
		t.Fatalf("pool runs must commit: %d, %d", uip.Commits, du.Commits)
	}
	t.Logf("pool run: UIP/NRBC blocked=%d, DU/NFC blocked=%d", uip.Blocked, du.Blocked)
}

// TestPoolCorrectness verifies a recorded pool run end to end.
func TestPoolCorrectness(t *testing.T) {
	cfg := PoolConfig{Resources: 2, Workers: 3, TxnsPerWorker: 15, ThinkOps: 1, Seed: 5, Record: true}
	for _, s := range []Scheduler{UIPNRBC, DUNFC} {
		_, e := RunPool(s, cfg)
		h := e.History()
		if err := history.WellFormed(h); err != nil {
			t.Fatalf("%s: malformed history: %v", s, err)
		}
		// All committed: pool must be full again.
		store, _ := e.Object(poolObj)
		if got := store.CommittedValue().Encode(); got != "free{1,2}" {
			t.Fatalf("%s: final pool = %s, want free{1,2}", s, got)
		}
	}
}

// TestRecoveryCostProfile: undo-log pays undo work on aborts (and writes
// WAL records); intentions pays commit-time application and replay work
// but performs no undos.
func TestRecoveryCostProfile(t *testing.T) {
	cfg := DefaultRecoveryCostConfig()
	cfg.TxnsPerWorker = 100
	uip := RunRecoveryCost(UIPNRBC, cfg)
	du := RunRecoveryCost(DUNFC, cfg)
	if uip.Undos == 0 {
		t.Error("undo-log run with aborts must perform undos")
	}
	if uip.WALRecords == 0 {
		t.Error("undo-log run must write WAL records")
	}
	if du.Undos != 0 {
		t.Errorf("intentions run must not undo, did %d", du.Undos)
	}
	if du.CommitApplies == 0 {
		t.Error("intentions run must apply intents at commit")
	}
	if uip.CommitApplies != 0 {
		t.Errorf("undo-log commit is free, saw %d applies", uip.CommitApplies)
	}
}

// TestBankingSweepShape: the sweep produces one row per scheduler per
// contention level and conserves transactions (commits + aborts = begun)
// at every point. Contention *shape* claims live in the focused
// trade-off tests, which pin the theory-grounded direction.
func TestBankingSweepShape(t *testing.T) {
	base := smallBanking()
	base.Record = false
	base.TxnsPerWorker = 30
	base.ThinkIters = 1500
	levels := []int{1, 4}
	scheds := []Scheduler{UIPNRBC, DUNFC}
	out := BankingSweep(base, levels, scheds)
	if len(out) != len(levels) {
		t.Fatalf("sweep levels = %d", len(out))
	}
	for _, n := range levels {
		rows := out[n]
		if len(rows) != len(scheds) {
			t.Fatalf("accounts=%d: rows = %d", n, len(rows))
		}
		for _, r := range rows {
			if r.Commits+r.Aborts != r.Txns {
				t.Errorf("accounts=%d %s: %d txns but %d commits + %d aborts",
					n, r.Scheduler, r.Txns, r.Commits, r.Aborts)
			}
		}
	}
}

// TestSchedulerStrings pins the display names used in reports.
func TestSchedulerStrings(t *testing.T) {
	want := map[Scheduler]string{
		UIPNRBC: "UIP/NRBC", DUNFC: "DU/NFC", UIPRW: "UIP/RW", DURW: "DU/RW",
		UIPInv: "UIP/invocation", DUInv: "DU/invocation", UIPSym: "UIP/sym(NRBC)",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), w)
		}
	}
	if UIPNRBC.Kind() != txn.UndoLogRecovery || DUNFC.Kind() != txn.IntentionsRecovery {
		t.Error("Kind mapping wrong")
	}
}

func TestRenderTable(t *testing.T) {
	r, _ := RunBanking(UIPNRBC, BankingConfig{
		Accounts: 1, Workers: 2, TxnsPerWorker: 5, OpsPerTxn: 2,
		DepositPct: 50, WithdrawPct: 30, InitialBalance: 100, Seed: 3,
	})
	out := RenderTable("demo", []Result{r})
	if len(out) < 40 {
		t.Errorf("table too short: %q", out)
	}
}
