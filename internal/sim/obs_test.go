package sim

import (
	"bytes"
	"encoding/json"
	"testing"
)

func quickObsConfig() ObsConfig {
	cfg := DefaultObsConfig()
	cfg.TxnsPerWorker = 40
	cfg.Objects = 16
	return cfg
}

// TestRunObsArms checks the experiment's acceptance criteria directly:
// the disabled path allocates nothing, the sampled arm reproduces the
// disabled arm's results byte-for-byte, and the concurrent arm yields a
// trace with the full event-kind set and populated histograms.
func TestRunObsArms(t *testing.T) {
	pts, o, err := RunObs(UIPNRBC, quickObsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d arms, want 3", len(pts))
	}
	disabled, sampled, conc := pts[0], pts[1], pts[2]
	if disabled.Arm != "disabled" || disabled.HookAllocsPerOp != 0 {
		t.Errorf("disabled arm: %+v (hook allocs must be 0)", disabled)
	}
	if !sampled.IdenticalState {
		t.Errorf("sampled arm not byte-identical to disabled: %+v vs %+v", sampled, disabled)
	}
	if sampled.Commits != disabled.Commits || sampled.Operations != disabled.Operations {
		t.Errorf("sampled counters diverged: %+v vs %+v", sampled, disabled)
	}
	if conc.Arm != "concurrent-sampled" {
		t.Fatalf("arm order wrong: %+v", conc)
	}
	if conc.TraceKinds < 5 {
		t.Errorf("concurrent arm trace has %d event kinds, want >= 5", conc.TraceKinds)
	}
	if conc.TraceSampled == 0 || conc.TraceEvents == 0 {
		t.Errorf("concurrent arm sampled nothing: %+v", conc)
	}
	if conc.E2EP99US <= 0 {
		t.Errorf("concurrent arm E2E p99 = %v, want > 0", conc.E2EP99US)
	}
	// The returned observer is the concurrent arm's: its trace must load
	// as Chrome trace-event JSON.
	var buf bytes.Buffer
	if err := o.Trace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not load: %v", err)
	}
	if len(doc.TraceEvents) != conc.TraceEvents {
		t.Errorf("trace JSON has %d events, point says %d", len(doc.TraceEvents), conc.TraceEvents)
	}
	if tbl := RenderObsTable("obs", pts); tbl == "" {
		t.Error("empty table")
	}
}

// TestObsUnifiedSnapshot runs the durable checkpointed arm and checks
// the one-document introspection view: engine counters, coherent WAL
// accounting, checkpoint progress, phase histograms, trace stats, and
// the folded-in restart stats all present and JSON-encodable.
func TestObsUnifiedSnapshot(t *testing.T) {
	cfg := quickObsConfig()
	snap, err := ObsUnifiedSnapshot(UIPNRBC, cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Engine.Commits == 0 {
		t.Error("snapshot has no commits")
	}
	if snap.WAL.Flushes == 0 {
		t.Error("snapshot has no WAL flushes")
	}
	if snap.Checkpoint.Completed != 1 {
		t.Errorf("Checkpoint.Completed = %d, want 1", snap.Checkpoint.Completed)
	}
	if snap.Phases == nil || snap.Phases.TxnE2E.Count == 0 {
		t.Error("snapshot has no phase histograms")
	}
	if snap.Phases != nil && snap.Phases.CkptCapture.Count != 1 {
		t.Errorf("CkptCapture count = %d, want 1", snap.Phases.CkptCapture.Count)
	}
	if snap.Trace == nil || snap.Trace.Events == 0 {
		t.Error("snapshot has no trace stats")
	}
	if snap.Restart == nil {
		t.Fatal("snapshot has no restart stats")
	}
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not load: %v", err)
	}
	var restart struct {
		LogRecords int `json:"log_records"`
		Replayed   int `json:"replayed"`
	}
	if err := json.Unmarshal(back["restart"], &restart); err != nil {
		t.Fatalf("restart stats do not round-trip: %v", err)
	}
	if restart.LogRecords == 0 {
		t.Error("restart stats carry no log records")
	}
}
