package sim

import (
	"fmt"
	"strings"

	"repro/internal/adt"
	"repro/internal/commute"
	"repro/internal/spec"
)

// OpDist is a discrete distribution over operations: the probability that a
// random operation of the workload is op. Probabilities need not sum to 1;
// ConflictMass normalizes.
type OpDist map[spec.Operation]float64

// BankingOpDist builds the operation distribution of a banking mix at a
// high balance (withdrawals succeed, balance reads return balanceProbe).
// Amounts 1..3 are uniform within each class.
func BankingOpDist(depositPct, withdrawPct int, balanceProbe int) OpDist {
	d := OpDist{}
	depositW := float64(depositPct) / 3
	withdrawW := float64(withdrawPct) / 3
	balanceW := float64(100 - depositPct - withdrawPct)
	for i := 1; i <= 3; i++ {
		d[adt.DepositOk(i)] += depositW
		d[adt.WithdrawOk(i)] += withdrawW
	}
	if balanceW > 0 {
		d[adt.BalanceIs(balanceProbe)] += balanceW
	}
	return d
}

// ConflictMass computes the exact probability that a random requested
// operation conflicts with a random held operation, both drawn from the
// distribution: Σ P(p)·P(q)·[rel.Conflicts(p,q)]. This is the
// deterministic, machine-independent form of the trade-off experiments:
// blocking frequency in a run is proportional to this mass for a given
// level of overlap.
func ConflictMass(rel commute.Relation, dist OpDist) float64 {
	total := 0.0
	for _, w := range dist {
		total += w
	}
	if total == 0 {
		return 0
	}
	mass := 0.0
	for p, wp := range dist {
		for q, wq := range dist {
			if rel.Conflicts(p, q) {
				mass += (wp / total) * (wq / total)
			}
		}
	}
	return mass
}

// MassRow is one line of the conflict-mass table: a mix and the masses
// under each relation.
type MassRow struct {
	Mix    string
	Masses []float64
}

// ConflictMassTable evaluates the named relations across a sweep of
// deposit/withdraw mixes, producing the deterministic core of the
// trade-off figure: who conflicts more, where the crossover falls.
func ConflictMassTable(rels []commute.Relation, mixes [][2]int, balanceProbe int) []MassRow {
	var rows []MassRow
	for _, mix := range mixes {
		dist := BankingOpDist(mix[0], mix[1], balanceProbe)
		row := MassRow{Mix: fmt.Sprintf("dep=%d%%/wdr=%d%%", mix[0], mix[1])}
		for _, rel := range rels {
			row.Masses = append(row.Masses, ConflictMass(rel, dist))
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderMassTable renders the conflict-mass table with relation names as
// columns.
func RenderMassTable(title string, names []string, rows []MassRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, title)
	fmt.Fprintf(&b, "%-20s", "mix")
	for _, n := range names {
		fmt.Fprintf(&b, " %14s", n)
	}
	fmt.Fprintln(&b)
	for _, r := range rows {
		fmt.Fprintf(&b, "%-20s", r.Mix)
		for _, m := range r.Masses {
			fmt.Fprintf(&b, " %14.4f", m)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
