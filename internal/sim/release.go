package sim

import (
	"fmt"
	"time"

	"repro/internal/adt"
	"repro/internal/txn"
	"repro/internal/wal"
)

// ReleaseConfig parameterizes the lock-release-policy experiment: the
// shared banking workload against an asynchronous WAL, with the release
// policy, the simulated sync latency, and the contention skew as
// independent variables. The dependent variables — throughput, commit
// latency percentiles, mean commit-time lock hold, and dependency stalls —
// quantify what holding locks to the durability acknowledgement costs
// versus what tracked early release pays (nearly nothing, since with
// consistent-cut batches a dependency is durable by the time its reader's
// own barrier acks).
type ReleaseConfig struct {
	FlushConfig
	Policy txn.ReleasePolicy
}

// DefaultReleaseConfig is the flush workload with a 200µs flusher dwell —
// enough dwell that ReleaseAfterAck's held-lock window (dwell + sync) is
// visible against the early-release baseline.
func DefaultReleaseConfig() ReleaseConfig {
	cfg := ReleaseConfig{FlushConfig: DefaultFlushConfig()}
	cfg.BatchInterval = 200 * time.Microsecond
	return cfg
}

// ReleasePoint is one measured point of the policy × sync-latency ×
// contention sweep.
type ReleasePoint struct {
	Scheduler        string  `json:"scheduler"`
	Policy           string  `json:"policy"`
	BatchIntervalUS  int64   `json:"batch_interval_us"`
	SyncLatencyUS    int64   `json:"sync_latency_us"`
	ZipfS            float64 `json:"zipf_s,omitempty"`
	Workers          int     `json:"workers"`
	Commits          int64   `json:"commits"`
	Aborts           int64   `json:"aborts"`
	Blocked          int64   `json:"blocked"`
	DependencyStalls int64   `json:"dependency_stalls"`
	MeanHoldUS       float64 `json:"mean_hold_us"`
	CommitP50US      float64 `json:"commit_p50_us"`
	CommitP99US      float64 `json:"commit_p99_us"`
	TxnPerSec        float64 `json:"txn_per_sec"`
	ElapsedNS        int64   `json:"elapsed_ns"`
}

// RunRelease executes the workload under the configured release policy
// against an asynchronous flusher over the fsync-simulating backend,
// measuring per-commit latency and the commit protocol's lock hold time.
func RunRelease(s Scheduler, cfg ReleaseConfig) (ReleasePoint, error) {
	backend := wal.NewLatencyBackend(cfg.SyncLatency, nil)
	log, err := wal.Open(wal.Config{
		Async:         true,
		BatchInterval: cfg.BatchInterval,
		MaxBatch:      cfg.MaxBatch,
		Backend:       backend,
	})
	if err != nil {
		return ReleasePoint{}, err
	}
	ba := adt.BankAccount{
		InitialBalance: cfg.InitialBalance,
		MaxBalance:     12,
		Amounts:        []int{1, 2, 3},
	}
	rel := bankRelation(s, adt.DefaultBankAccount())
	e := txn.NewEngine(txn.Options{Shards: cfg.Shards, WAL: log, ReleasePolicy: cfg.Policy})
	for i := 0; i < cfg.Objects; i++ {
		e.MustRegister(scalingObjID(i), ba, rel, s.Kind())
	}

	latencies := make([][]time.Duration, cfg.Workers)
	start := time.Now()
	runBankWorkers(e, cfg.ScalingConfig, func(w int, d time.Duration) {
		latencies[w] = append(latencies[w], d)
	})
	elapsed := time.Since(start)
	snap := e.ObsSnapshot()
	if err := e.Close(); err != nil {
		return ReleasePoint{}, err
	}

	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	p := ReleasePoint{
		Scheduler:        s.String(),
		Policy:           cfg.Policy.String(),
		BatchIntervalUS:  cfg.BatchInterval.Microseconds(),
		SyncLatencyUS:    cfg.SyncLatency.Microseconds(),
		ZipfS:            cfg.ZipfS,
		Workers:          cfg.Workers,
		Commits:          snap.Engine.Commits,
		Aborts:           snap.Engine.Aborts,
		Blocked:          snap.Engine.Blocked,
		DependencyStalls: snap.Engine.DependencyStalls,
		CommitP50US:      float64(percentile(all, 50)) / 1e3,
		CommitP99US:      float64(percentile(all, 99)) / 1e3,
		ElapsedNS:        elapsed.Nanoseconds(),
	}
	// MeanCommitHoldNS is the snapshot's derived per-commit figure — the
	// sweep no longer recomputes it from the raw counter.
	p.MeanHoldUS = snap.Engine.MeanCommitHoldNS / 1e3
	if elapsed > 0 {
		p.TxnPerSec = float64(p.Commits) / elapsed.Seconds()
	}
	return p, nil
}

// ReleaseSweep measures the workload at every policy × sync-latency ×
// contention-skew combination — the concurrency cost surface of holding
// locks to the durable point.
func ReleaseSweep(s Scheduler, cfg ReleaseConfig, policies []txn.ReleasePolicy,
	latencies []time.Duration, skews []float64) ([]ReleasePoint, error) {
	out := make([]ReleasePoint, 0, len(policies)*len(latencies)*len(skews))
	for _, pol := range policies {
		for _, sl := range latencies {
			for _, z := range skews {
				c := cfg
				c.Policy = pol
				c.SyncLatency = sl
				c.ZipfS = z
				p, err := RunRelease(s, c)
				if err != nil {
					return nil, err
				}
				out = append(out, p)
			}
		}
	}
	return out, nil
}

// RenderReleaseTable renders sweep points as a fixed-width table.
func RenderReleaseTable(title string, points []ReleasePoint) string {
	b := fmt.Sprintf("%s\n%-12s %-22s %9s %6s %8s %8s %7s %10s %10s %10s %10s\n",
		title, "scheduler", "policy", "sync(us)", "zipf", "commits", "blocked", "stalls",
		"hold(us)", "p50(us)", "p99(us)", "txn/s")
	for _, p := range points {
		b += fmt.Sprintf("%-12s %-22s %9d %6.2f %8d %8d %7d %10.0f %10.0f %10.0f %10.0f\n",
			p.Scheduler, p.Policy, p.SyncLatencyUS, p.ZipfS, p.Commits, p.Blocked,
			p.DependencyStalls, p.MeanHoldUS, p.CommitP50US, p.CommitP99US, p.TxnPerSec)
	}
	return b
}
