package sim

import (
	"testing"
	"time"

	"repro/internal/txn"
)

// TestReleaseSweepShape pins the machine-independent shape of the release
// experiment: both policies complete the whole workload against a slow
// simulated device, and holding locks to the acknowledgement shows up as
// commit-time lock hold — ReleaseAfterAck's mean hold includes the sync
// wait, ReleaseEarlyTracked's does not.
func TestReleaseSweepShape(t *testing.T) {
	cfg := DefaultReleaseConfig()
	cfg.TxnsPerWorker = 20
	cfg.Workers = 4
	cfg.BatchInterval = 0
	cfg.SyncLatency = time.Millisecond

	byPolicy := map[txn.ReleasePolicy]ReleasePoint{}
	for _, pol := range []txn.ReleasePolicy{txn.ReleaseEarlyTracked, txn.ReleaseAfterAck} {
		c := cfg
		c.Policy = pol
		p, err := RunRelease(UIPNRBC, c)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if p.Commits == 0 {
			t.Fatalf("%v: no commits", pol)
		}
		if total := p.Commits + p.Aborts; total > int64(cfg.Workers*cfg.TxnsPerWorker) {
			t.Fatalf("%v: %d outcomes for %d transactions", pol, total, cfg.Workers*cfg.TxnsPerWorker)
		}
		if p.MeanHoldUS <= 0 {
			t.Fatalf("%v: mean lock hold not measured", pol)
		}
		byPolicy[pol] = p
	}
	early, after := byPolicy[txn.ReleaseEarlyTracked], byPolicy[txn.ReleaseAfterAck]
	// The measured claim of the experiment: holding to the ack puts the
	// (simulated, ≥1ms on this box) sync latency inside the lock hold.
	if after.MeanHoldUS <= early.MeanHoldUS {
		t.Errorf("mean hold: after-ack %.0fµs <= early-tracked %.0fµs; the barrier wait must be inside the hold",
			after.MeanHoldUS, early.MeanHoldUS)
	}
	if after.MeanHoldUS < 500 {
		t.Errorf("after-ack mean hold %.0fµs does not include the 1ms sync wait", after.MeanHoldUS)
	}
}
