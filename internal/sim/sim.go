// Package sim implements the workload generators and the experiment
// harness that regenerate the paper's evaluation artifacts and quantify
// its central qualitative claim: the choice of recovery method constrains
// concurrency control, and the two constraints (NRBC for update-in-place,
// NFC for deferred update) are incomparable — so each recovery method wins
// on workloads whose operation mix exercises the conflicts the other must
// forbid.
//
// All workloads are seeded and deterministic in structure; wall-clock
// throughput varies with the machine, but the conflict/block/abort shape —
// what the experiments actually assert — is stable.
package sim

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/adt"
	"repro/internal/commute"
	"repro/internal/spec"
	"repro/internal/txn"
)

// Scheduler names a (concurrency control, recovery) pairing under test.
type Scheduler int

const (
	// UIPNRBC is update-in-place (undo log) with the minimal NRBC conflicts
	// — the paper's Theorem 9 optimum.
	UIPNRBC Scheduler = iota
	// DUNFC is deferred update (intentions) with the minimal NFC conflicts
	// — the paper's Theorem 10 optimum.
	DUNFC
	// UIPRW is update-in-place with classic read/write locking
	// (Section 8.1 baseline: correct for both recovery methods, least
	// concurrent).
	UIPRW
	// DURW is deferred update with read/write locking.
	DURW
	// UIPInv is update-in-place with invocation-based locking (lifted
	// NRBCI): locks ignore results (Section 8.2 baseline).
	UIPInv
	// DUInv is deferred update with invocation-based locking (lifted NFCI).
	DUInv
	// UIPSym is the ablation: update-in-place with the symmetric closure
	// of NRBC — the extra conflicts the paper shows are unnecessary.
	UIPSym
)

// Schedulers lists every pairing, in presentation order.
var Schedulers = []Scheduler{UIPNRBC, DUNFC, UIPRW, DURW, UIPInv, DUInv, UIPSym}

// String implements fmt.Stringer.
func (s Scheduler) String() string {
	switch s {
	case UIPNRBC:
		return "UIP/NRBC"
	case DUNFC:
		return "DU/NFC"
	case UIPRW:
		return "UIP/RW"
	case DURW:
		return "DU/RW"
	case UIPInv:
		return "UIP/invocation"
	case DUInv:
		return "DU/invocation"
	case UIPSym:
		return "UIP/sym(NRBC)"
	}
	return fmt.Sprintf("Scheduler(%d)", int(s))
}

// Kind returns the recovery discipline of the pairing.
func (s Scheduler) Kind() txn.RecoveryKind {
	switch s {
	case DUNFC, DURW, DUInv:
		return txn.IntentionsRecovery
	}
	return txn.UndoLogRecovery
}

// bankRelation returns the conflict relation the scheduler uses for a bank
// account. The analytic NFC/NRBC/RW relations are stateless and safe to
// share; the invocation-based relations are derived from the window
// specification's checker and must be materialized before concurrent use.
// All workload amounts stay inside the window.
func bankRelation(s Scheduler, ba adt.BankAccount) commute.Relation {
	switch s {
	case UIPNRBC:
		return ba.NRBC()
	case DUNFC:
		return ba.NFC()
	case UIPRW, DURW:
		return ba.RW()
	case UIPInv:
		c := ba.Checker()
		return commute.LiftInvocationRelation(
			commute.MaterializeInvocations(c.NRBCIRelation(), spec.Invocations(c.Spec())))
	case DUInv:
		c := ba.Checker()
		return commute.LiftInvocationRelation(
			commute.MaterializeInvocations(c.NFCIRelation(), spec.Invocations(c.Spec())))
	case UIPSym:
		return commute.SymmetricClosure(ba.NRBC())
	}
	panic(fmt.Sprintf("sim: unknown scheduler %d", int(s)))
}

// poolRelation returns the conflict relation for a resource pool. The
// pool's NFC/NRBC relations are checker-derived, so every variant is
// materialized over the pool's finite alphabet for concurrency safety.
func poolRelation(s Scheduler, p adt.ResourcePool) commute.Relation {
	ops := p.Spec().Alphabet()
	switch s {
	case UIPNRBC:
		return commute.Materialize(p.NRBC(), ops)
	case DUNFC:
		return commute.Materialize(p.NFC(), ops)
	case UIPRW, DURW:
		return p.RW()
	case UIPInv:
		c := p.Checker()
		return commute.LiftInvocationRelation(
			commute.MaterializeInvocations(c.NRBCIRelation(), spec.Invocations(c.Spec())))
	case DUInv:
		c := p.Checker()
		return commute.LiftInvocationRelation(
			commute.MaterializeInvocations(c.NFCIRelation(), spec.Invocations(c.Spec())))
	case UIPSym:
		return commute.Materialize(commute.SymmetricClosure(p.NRBC()), ops)
	}
	panic(fmt.Sprintf("sim: unknown scheduler %d", int(s)))
}

// Result captures one run.
type Result struct {
	Scheduler  string
	Workload   string
	Txns       int64
	Commits    int64
	Aborts     int64
	Deadlocks  int64
	Operations int64
	Blocked    int64 // operations that waited at least once
	NotEnabled int64 // partial invocations finding no response
	Elapsed    time.Duration
}

// BlockedPct returns the percentage of operations that blocked.
func (r Result) BlockedPct() float64 {
	if r.Operations == 0 {
		return 0
	}
	return 100 * float64(r.Blocked) / float64(r.Operations)
}

// Throughput returns committed transactions per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Commits) / r.Elapsed.Seconds()
}

// Row renders the result as a fixed-width table row.
func (r Result) Row() string {
	return fmt.Sprintf("%-16s %8d %8d %8d %9d %8d %10.1f %9.2f%%",
		r.Scheduler, r.Commits, r.Aborts, r.Deadlocks, r.Operations,
		r.Blocked, r.Throughput(), r.BlockedPct())
}

// Header is the column header matching Row.
func Header() string {
	return fmt.Sprintf("%-16s %8s %8s %8s %9s %8s %10s %10s",
		"scheduler", "commits", "aborts", "deadlk", "ops", "blocked", "txn/s", "blocked%")
}

// RenderTable renders a titled result table.
func RenderTable(title string, rows []Result) string {
	var b strings.Builder
	fmt.Fprintln(&b, title)
	fmt.Fprintln(&b, Header())
	for _, r := range rows {
		fmt.Fprintln(&b, r.Row())
	}
	return b.String()
}

func collect(s Scheduler, workload string, e *txn.Engine, elapsed time.Duration) Result {
	snap := e.ObsSnapshot()
	return Result{
		Scheduler:  s.String(),
		Workload:   workload,
		Txns:       snap.Engine.Begins,
		Commits:    snap.Engine.Commits,
		Aborts:     snap.Engine.Aborts,
		Deadlocks:  snap.Engine.Deadlocks,
		Operations: snap.Engine.Operations,
		Blocked:    snap.Engine.Blocked,
		NotEnabled: snap.Engine.NotEnabled,
		Elapsed:    elapsed,
	}
}
