package sim

import (
	"testing"
	"time"
)

// TestRunFlushMeasures: a single flush point produces sane measurements —
// commits happened, every commit's records were synced, and the latency
// percentiles are populated and ordered.
func TestRunFlushMeasures(t *testing.T) {
	cfg := DefaultFlushConfig()
	cfg.TxnsPerWorker = 20
	cfg.BatchInterval = 200 * time.Microsecond
	cfg.SyncLatency = 50 * time.Microsecond
	p, err := RunFlush(UIPNRBC, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Commits == 0 {
		t.Fatal("no commits")
	}
	if p.Syncs == 0 || p.WALRecords == 0 {
		t.Fatalf("nothing reached the backend: %+v", p)
	}
	if p.MeanBatch < 1 {
		t.Fatalf("mean batch %v < 1", p.MeanBatch)
	}
	if p.CommitP50US <= 0 || p.CommitP99US < p.CommitP50US {
		t.Fatalf("implausible percentiles: p50=%v p99=%v", p.CommitP50US, p.CommitP99US)
	}
	// Commit latency includes the dwell: p50 must be at least the batch
	// interval (the flusher waits it out before sequencing).
	if p.CommitP50US < float64(p.BatchIntervalUS) {
		t.Errorf("p50 %vus below the %vus dwell: acks are not gated on the flusher",
			p.CommitP50US, p.BatchIntervalUS)
	}
}

// TestFlushSweepTradeoff: the sweep covers the grid, and the group-commit
// trade-off materializes — at a fixed sync latency, a longer dwell
// produces fewer syncs and larger batches than no dwell.
func TestFlushSweepTradeoff(t *testing.T) {
	cfg := DefaultFlushConfig()
	cfg.TxnsPerWorker = 25
	intervals := []time.Duration{0, time.Millisecond}
	latencies := []time.Duration{0, 100 * time.Microsecond}
	pts, err := FlushSweep(UIPNRBC, cfg, intervals, latencies)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d, want 4", len(pts))
	}
	byKey := map[[2]int64]FlushPoint{}
	for _, p := range pts {
		byKey[[2]int64{p.BatchIntervalUS, p.SyncLatencyUS}] = p
	}
	noDwell := byKey[[2]int64{0, 100}]
	dwell := byKey[[2]int64{1000, 100}]
	if dwell.Syncs >= noDwell.Syncs {
		t.Errorf("dwell did not reduce syncs: %d with dwell vs %d without", dwell.Syncs, noDwell.Syncs)
	}
	if dwell.MeanBatch <= noDwell.MeanBatch {
		t.Errorf("dwell did not grow batches: %.1f with dwell vs %.1f without",
			dwell.MeanBatch, noDwell.MeanBatch)
	}
	out := RenderFlushTable("flush", pts)
	if len(out) < 80 {
		t.Errorf("table too short: %q", out)
	}
}
