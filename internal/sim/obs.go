package sim

// The observability experiment (E21): prove the layer's two sides of the
// bargain. Disabled, the hooks cost nothing — zero allocations per
// operation (a counter proof via testing.AllocsPerRun, not a timing) and
// a workload whose results are byte-identical with and without an
// attached observer. Enabled, one run yields the phase latency
// histograms, a loadable Chrome trace of sampled transaction lifecycles,
// and the unified introspection snapshot — without perturbing the
// workload's deterministic outcome.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/adt"
	"repro/internal/checkpoint"
	"repro/internal/history"
	"repro/internal/obs"
	"repro/internal/recovery"
	"repro/internal/txn"
	"repro/internal/wal"
)

// ObsConfig parameterizes the observability experiment.
type ObsConfig struct {
	ScalingConfig
	// SampleRate is the tracer's transaction sampling rate for the
	// enabled arms.
	SampleRate float64
	// BatchInterval and SyncLatency shape the concurrent arm's
	// asynchronous flusher (dwell and simulated fsync), so the flush and
	// barrier histograms have real waits to measure.
	BatchInterval time.Duration
	SyncLatency   time.Duration
}

// DefaultObsConfig is a skewed 8-worker workload with a deterministic
// 1-worker arm pair for the identical-results proof.
func DefaultObsConfig() ObsConfig {
	cfg := DefaultScalingConfig()
	cfg.Workers = 8
	cfg.TxnsPerWorker = 150
	cfg.ZipfS = 1.2
	return ObsConfig{
		ScalingConfig: cfg,
		SampleRate:    0.25,
		BatchInterval: 200 * time.Microsecond,
		SyncLatency:   20 * time.Microsecond,
	}
}

// ObsPoint is one measured arm of the observability experiment.
type ObsPoint struct {
	Scheduler  string  `json:"scheduler"`
	Arm        string  `json:"arm"`
	Workers    int     `json:"workers"`
	SampleRate float64 `json:"sample_rate"`
	Commits    int64   `json:"commits"`
	Aborts     int64   `json:"aborts"`
	Operations int64   `json:"operations"`
	// HookAllocsPerOp is testing.AllocsPerRun over the full disabled-path
	// hook set (every Observer hook on a nil observer) — the
	// machine-independent zero-cost proof. Reported on the disabled arm.
	HookAllocsPerOp float64 `json:"hook_allocs_per_op"`
	// IdenticalState reports that the arm's final balances and lifecycle
	// counters are byte-identical to the disabled arm's (same seed, one
	// worker). Reported on the sampled arm.
	IdenticalState bool `json:"identical_state,omitempty"`
	// End-to-end transaction latency quantiles from the TxnE2E histogram
	// (enabled arms). On a 1-vCPU box these are ordinal signals only.
	E2EP50US float64 `json:"e2e_p50_us,omitempty"`
	E2EP99US float64 `json:"e2e_p99_us,omitempty"`
	// Trace accounting for the enabled arms.
	TraceSampled int64   `json:"trace_sampled,omitempty"`
	TraceEvents  int     `json:"trace_events,omitempty"`
	TraceKinds   int     `json:"trace_kinds,omitempty"`
	TraceDropped int64   `json:"trace_dropped,omitempty"`
	ElapsedNS    int64   `json:"elapsed_ns"`
	TxnPerSec    float64 `json:"txn_per_sec"`
}

// obsSink keeps the AllocsPerRun loop's calls from being optimized away.
var obsSink *obs.TxnTrace

// nilHookAllocs measures allocations per run of the complete disabled
// hook set — the exact calls the engine's hot path makes when
// Options.Obs is nil.
func nilHookAllocs() float64 {
	var o *obs.Observer
	return testing.AllocsPerRun(1000, func() {
		o.RecordLockWait(1)
		o.RecordWALStage(1)
		o.RecordBarrierWait(1, true)
		o.RecordCommitHold(1)
		o.RecordTxnEnd(1)
		o.RecordFlushBatch(1)
		o.RecordFlushDwell(1)
		o.RecordFlushSync(1)
		o.RecordCheckpoint(1, 1)
		obsSink = o.SampleTxn(1)
	})
}

// obsFingerprint serializes the engine's observable outcome: every
// lifecycle counter, then every account balance read through a read-only
// probe transaction (aborted, so the probe leaves no trace in the
// balances; the counters are captured first so the probe does not
// perturb them either).
func obsFingerprint(e *txn.Engine, objects int) (string, error) {
	var b strings.Builder
	m := &e.Metrics
	fmt.Fprintf(&b, "begins=%d commits=%d aborts=%d deadlocks=%d ops=%d notenabled=%d blocked=%d;",
		m.Begins.Load(), m.Commits.Load(), m.Aborts.Load(), m.Deadlocks.Load(),
		m.Operations.Load(), m.NotEnabled.Load(), m.Blocked.Load())
	tx := e.Begin()
	for i := 0; i < objects; i++ {
		res, err := tx.Invoke(scalingObjID(i), adt.Balance())
		if err != nil {
			return "", fmt.Errorf("sim: obs fingerprint at %s: %w", scalingObjID(i), err)
		}
		fmt.Fprintf(&b, "%s=%s;", scalingObjID(i), res)
	}
	if err := tx.Abort(); err != nil {
		return "", fmt.Errorf("sim: obs fingerprint abort: %w", err)
	}
	return b.String(), nil
}

// runObsArm builds an engine (in-memory WAL, or an asynchronous flusher
// over a latency backend when async), runs the workload, and returns the
// engine's fingerprint plus a partially filled point. The caller closes
// nothing: the engine is closed here.
func runObsArm(s Scheduler, cfg ScalingConfig, o *obs.Observer, async bool,
	batchInterval, syncLatency time.Duration) (ObsPoint, string, error) {
	opts := txn.Options{Shards: cfg.Shards, Obs: o}
	if async {
		backend := wal.NewLatencyBackend(syncLatency, nil)
		log, err := wal.Open(wal.Config{
			Async:         true,
			BatchInterval: batchInterval,
			Backend:       backend,
		})
		if err != nil {
			return ObsPoint{}, "", err
		}
		opts.WAL = log
	}
	ba := adt.BankAccount{
		InitialBalance: cfg.InitialBalance,
		MaxBalance:     12,
		Amounts:        []int{1, 2, 3},
	}
	rel := bankRelation(s, adt.DefaultBankAccount())
	e := txn.NewEngine(opts)
	for i := 0; i < cfg.Objects; i++ {
		e.MustRegister(scalingObjID(i), ba, rel, s.Kind())
	}
	start := time.Now()
	runBankWorkers(e, cfg, nil)
	elapsed := time.Since(start)
	fp, err := obsFingerprint(e, cfg.Objects)
	if err != nil {
		_ = e.Close()
		return ObsPoint{}, "", err
	}
	snap := e.ObsSnapshot()
	if err := e.Close(); err != nil {
		return ObsPoint{}, "", err
	}
	p := ObsPoint{
		Scheduler:  s.String(),
		Workers:    cfg.Workers,
		Commits:    snap.Engine.Commits,
		Aborts:     snap.Engine.Aborts,
		Operations: snap.Engine.Operations,
		ElapsedNS:  elapsed.Nanoseconds(),
	}
	if elapsed > 0 {
		p.TxnPerSec = float64(p.Commits) / elapsed.Seconds()
	}
	if ph := snap.Phases; ph != nil {
		p.E2EP50US = float64(ph.TxnE2E.Quantile(0.5)) / 1e3
		p.E2EP99US = float64(ph.TxnE2E.Quantile(0.99)) / 1e3
	}
	if ts := snap.Trace; ts != nil {
		p.SampleRate = 0 // set by the caller, which knows the configured rate
		p.TraceSampled = ts.Sampled
		p.TraceEvents = ts.Events
		p.TraceKinds = ts.Kinds
		p.TraceDropped = ts.Dropped
	}
	return p, fp, nil
}

// RunObs measures the three arms of the observability experiment:
//
//	disabled           1 worker, no observer: the baseline fingerprint
//	                   and the zero-allocation disabled-path proof.
//	sampled            1 worker, same seed, observer attached with
//	                   sampled tracing: results must be byte-identical.
//	concurrent-sampled the full contended workload over an asynchronous
//	                   flusher: histograms with real waits and a trace
//	                   with the full event-kind set.
//
// The returned Observer is the concurrent arm's — the caller exports its
// trace and snapshot.
func RunObs(s Scheduler, cfg ObsConfig) ([]ObsPoint, *obs.Observer, error) {
	serial := cfg.ScalingConfig
	serial.Workers = 1

	disabled, baseFP, err := runObsArm(s, serial, nil, false, 0, 0)
	if err != nil {
		return nil, nil, err
	}
	disabled.Arm = "disabled"
	disabled.HookAllocsPerOp = nilHookAllocs()

	sampledObs := obs.New(obs.Options{
		Epoch: time.Now(), SampleRate: cfg.SampleRate, TraceSeed: 1,
	})
	sampled, sampledFP, err := runObsArm(s, serial, sampledObs, false, 0, 0)
	if err != nil {
		return nil, nil, err
	}
	sampled.Arm = "sampled"
	sampled.SampleRate = cfg.SampleRate
	sampled.IdenticalState = sampledFP == baseFP

	concObs := obs.New(obs.Options{
		Epoch: time.Now(), SampleRate: cfg.SampleRate, TraceSeed: 1,
	})
	conc, _, err := runObsArm(s, cfg.ScalingConfig, concObs, true,
		cfg.BatchInterval, cfg.SyncLatency)
	if err != nil {
		return nil, nil, err
	}
	conc.Arm = "concurrent-sampled"
	conc.SampleRate = cfg.SampleRate

	return []ObsPoint{disabled, sampled, conc}, concObs, nil
}

// ObsUnifiedSnapshot exercises the full introspection surface once:
// a durable checkpointed run with an attached observer, a crash restart
// of its artifacts, and the engine's unified snapshot with the restart's
// stats folded in — the one-document view of engine, WAL, checkpoint,
// phases, trace, and recovery that the obs experiment exports.
func ObsUnifiedSnapshot(s Scheduler, cfg ObsConfig, dir string) (obs.Snapshot, error) {
	o := obs.New(obs.Options{
		Epoch: time.Now(), SampleRate: cfg.SampleRate, TraceSeed: 1,
	})
	d := txn.DurabilityOptions{Dir: dir, BatchInterval: cfg.BatchInterval}
	e, err := txn.NewDurableEngine(txn.Options{Shards: cfg.Shards, Obs: o}, d)
	if err != nil {
		return obs.Snapshot{}, err
	}
	ba := adt.BankAccount{
		InitialBalance: cfg.InitialBalance,
		MaxBalance:     12,
		Amounts:        []int{1, 2, 3},
	}
	rel := bankRelation(s, adt.DefaultBankAccount())
	for i := 0; i < cfg.Objects; i++ {
		e.MustRegister(scalingObjID(i), ba, rel, txn.UndoLogRecovery)
	}
	serial := cfg.ScalingConfig
	serial.Workers = 2
	runBankWorkers(e, serial, nil)
	if _, err := e.Checkpoint(); err != nil {
		_ = e.Close()
		return obs.Snapshot{}, err
	}
	snap := e.ObsSnapshot()
	if err := e.Close(); err != nil {
		return obs.Snapshot{}, err
	}

	// Crash-restart the durable artifacts and fold the restart stats in.
	backend, err := wal.OpenSegmentedBackend(d.WALDir(), d.SegmentConfig())
	if err != nil {
		return obs.Snapshot{}, err
	}
	relog, err := wal.Open(wal.Config{Backend: backend})
	if err != nil {
		return obs.Snapshot{}, err
	}
	stats, err := func() (recovery.RestartStats, error) {
		store, err := checkpoint.OpenFileStore(d.CheckpointDir())
		if err != nil {
			return recovery.RestartStats{}, err
		}
		ckpt, err := store.Latest()
		if err != nil {
			return recovery.RestartStats{}, err
		}
		objs := make([]history.ObjectID, cfg.Objects)
		for i := range objs {
			objs[i] = scalingObjID(i)
		}
		_, stats, err := recovery.RestartAllWithCheckpoint(objs,
			func(history.ObjectID) adt.Machine { return ba.Machine() }, relog, ckpt)
		return stats, err
	}()
	// One close on every path; the restart error, when present, wins.
	if cerr := relog.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return obs.Snapshot{}, err
	}
	snap.Restart = stats
	return snap, nil
}

// RenderObsTable renders the observability arms as a titled table.
func RenderObsTable(title string, pts []ObsPoint) string {
	var b strings.Builder
	fmt.Fprintln(&b, title)
	fmt.Fprintf(&b, "%-20s %7s %6s %8s %8s %10s %9s %7s %8s %8s %8s\n",
		"arm", "workers", "rate", "commits", "allocs", "identical", "e2e-p99us", "traced", "events", "kinds", "txn/s")
	for _, p := range pts {
		identical := "-"
		if p.Arm == "sampled" {
			identical = fmt.Sprintf("%t", p.IdenticalState)
		}
		allocs := "-"
		if p.Arm == "disabled" {
			allocs = fmt.Sprintf("%.0f", p.HookAllocsPerOp)
		}
		fmt.Fprintf(&b, "%-20s %7d %6.2f %8d %8s %10s %9.0f %7d %8d %8d %8.0f\n",
			p.Arm, p.Workers, p.SampleRate, p.Commits, allocs, identical,
			p.E2EP99US, p.TraceSampled, p.TraceEvents, p.TraceKinds, p.TxnPerSec)
	}
	return b.String()
}
