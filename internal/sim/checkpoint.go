package sim

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/adt"
	"repro/internal/checkpoint"
	"repro/internal/history"
	"repro/internal/recovery"
	"repro/internal/txn"
	"repro/internal/wal"
)

// CheckpointConfig parameterizes the restart-time-versus-log-length
// experiment (E17): the fan-out transfer workload runs on a real
// file-backed WAL for increasing run lengths, once with checkpointing off
// and once with fuzzy checkpoints taken between workload rounds (with log
// truncation), and each run is then crash-restarted from its durable
// artifacts. With checkpointing off, restart replays the whole log — cost
// linear in run length; with it on, restart seeds from the newest snapshot
// and replays only the suffix past the checkpoint frontier — cost bounded
// by the work since the last checkpoint, which is the entire point of the
// subsystem.
type CheckpointConfig struct {
	TransferConfig
	// EveryTxns is the checkpoint cadence: in checkpointing mode the run
	// proceeds in rounds of this many transactions per worker, with one
	// checkpoint after every round except the last (so the log always
	// carries a live suffix to replay). A fixed cadence — rather than a
	// fixed fraction of the run — is what makes the bounded-replay claim
	// visible: the replayable suffix stays near one cadence interval no
	// matter how long the run grows.
	EveryTxns int
	// Lengths are the TxnsPerWorker values swept — the log-length axis.
	Lengths []int
}

// DefaultCheckpointConfig sweeps run lengths of the three-participant
// transfer workload, checkpointing every 25 transactions per worker.
func DefaultCheckpointConfig() CheckpointConfig {
	cfg := CheckpointConfig{
		TransferConfig: DefaultTransferConfig(),
		EveryTxns:      25,
		Lengths:        []int{50, 100, 200, 400},
	}
	cfg.Participants = 3
	cfg.AbortPct = 10
	return cfg
}

// CheckpointPoint is one measured point of the sweep.
type CheckpointPoint struct {
	Mode          string `json:"mode"` // "off" or "on"
	TxnsPerWorker int    `json:"txns_per_worker"`
	Commits       int64  `json:"commits"`
	Checkpoints   int64  `json:"checkpoints"`
	// LogRecords / LogBytes describe the retained durable log at shutdown;
	// TruncatedRecords counts what checkpointing reclaimed (off-mode: 0,
	// so LogRecords is the full history).
	LogRecords       int   `json:"log_records"`
	LogBytes         int64 `json:"log_bytes"`
	TruncatedRecords int64 `json:"truncated_records"`
	// ReplayedRecords / SkippedRecords / UndoneRecords are the restart's
	// pass-2 work (recovery.RestartStats); RestartUS is the wall-clock
	// cost of reopening the file, loading the snapshot, and restarting
	// every account.
	ReplayedRecords int     `json:"replayed_records"`
	SkippedRecords  int     `json:"skipped_records"`
	UndoneRecords   int     `json:"undone_records"`
	SeededObjects   int     `json:"seeded_objects"`
	RestartUS       float64 `json:"restart_us"`
	// Conserved reports the recovered accounts summing to the initial
	// total — the correctness bit the numbers are only meaningful under.
	Conserved bool `json:"conserved"`
}

// runCheckpointPoint executes one (length, mode) cell in dir and restarts
// from the durable artifacts.
func runCheckpointPoint(cfg CheckpointConfig, length int, checkpointing bool, dir string) (CheckpointPoint, error) {
	p := CheckpointPoint{Mode: "off", TxnsPerWorker: length}
	if checkpointing {
		p.Mode = "on"
	}
	walPath := filepath.Join(dir, fmt.Sprintf("ckpt-%s-%d.wal", p.Mode, length))
	backend, err := wal.CreateFileBackend(walPath)
	if err != nil {
		return p, err
	}
	log, err := wal.Open(wal.Config{Async: true, BatchInterval: 50 * time.Microsecond, Backend: backend})
	if err != nil {
		return p, err
	}
	var store *checkpoint.FileStore
	opts := txn.Options{Shards: cfg.Shards, WAL: log}
	if checkpointing {
		store, err = checkpoint.OpenFileStore(filepath.Join(dir, fmt.Sprintf("ckpt-%d.store", length)))
		if err != nil {
			return p, err
		}
		opts.Checkpoint = &txn.CheckpointOptions{Store: store}
	}
	ba := cfg.BankAccount()
	e := txn.NewEngine(opts)
	rel := adt.DefaultBankAccount().NRBC()
	for i := 0; i < cfg.Accounts; i++ {
		e.MustRegister(TransferAccountID(i), ba, rel, txn.UndoLogRecovery)
	}

	every := cfg.EveryTxns
	if every < 1 || !checkpointing {
		every = length
	}
	for done, r := 0, 0; done < length; r++ {
		per := every
		if length-done < per {
			per = length - done
		}
		c := cfg.TransferConfig
		c.TxnsPerWorker = per
		c.Seed = cfg.Seed + int64(r)*104729
		RunTransfers(e, c)
		done += per
		if checkpointing && done < length {
			if _, err := e.Checkpoint(); err != nil {
				return p, err
			}
		}
	}
	p.Commits = e.Metrics.Commits.Load()
	p.Checkpoints = e.Metrics.Checkpoints.Load()
	p.TruncatedRecords = e.Metrics.TruncatedRecords.Load()
	if err := e.Close(); err != nil {
		return p, err
	}

	// The restart, timed as the post-crash process would run it: reopen
	// the durable file, load the newest snapshot, rebuild every account.
	objs := make([]history.ObjectID, cfg.Accounts)
	for i := range objs {
		objs[i] = TransferAccountID(i)
	}
	start := time.Now()
	reopened, err := wal.OpenFileBackend(walPath)
	if err != nil {
		return p, err
	}
	relog, err := wal.Open(wal.Config{Backend: reopened})
	if err != nil {
		return p, err
	}
	// Sample the crash-time log size now: the restart below appends loser
	// compensation and abort records, which must not inflate the reported
	// log-length axis.
	p.LogRecords = relog.Records()
	p.LogBytes = relog.Bytes()
	var snap *checkpoint.Snapshot
	if store != nil {
		if snap, err = store.Latest(); err != nil {
			return p, err
		}
	}
	stores, stats, err := recovery.RestartAllWithCheckpoint(objs,
		func(history.ObjectID) adt.Machine { return ba.Machine() }, relog, snap)
	if err != nil {
		return p, err
	}
	p.RestartUS = float64(time.Since(start).Nanoseconds()) / 1e3
	p.ReplayedRecords = stats.Replayed
	p.SkippedRecords = stats.Skipped
	p.UndoneRecords = stats.Undone
	p.SeededObjects = stats.SeededObjects
	total := 0
	for obj, st := range stores {
		v, err := strconv.Atoi(st.CommittedValue().Encode())
		if err != nil {
			return p, fmt.Errorf("sim: restarted %s balance: %w", obj, err)
		}
		total += v
	}
	p.Conserved = total == cfg.Accounts*cfg.InitialBalance
	if err := relog.Close(); err != nil {
		return p, err
	}
	return p, nil
}

// CheckpointSweep runs the full off/on × length grid in a temporary
// directory (or dir, when non-empty), returning one point per cell.
func CheckpointSweep(cfg CheckpointConfig, dir string) ([]CheckpointPoint, error) {
	if dir == "" {
		d, err := os.MkdirTemp("", "ccbench-checkpoint-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(d)
		dir = d
	}
	var out []CheckpointPoint
	for _, mode := range []bool{false, true} {
		for _, length := range cfg.Lengths {
			p, err := runCheckpointPoint(cfg, length, mode, dir)
			if err != nil {
				return nil, fmt.Errorf("sim: checkpoint sweep %s/%d: %w", p.Mode, length, err)
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// RenderCheckpointTable renders sweep points as a fixed-width table.
func RenderCheckpointTable(title string, points []CheckpointPoint) string {
	b := fmt.Sprintf("%s\n%-5s %6s %8s %6s %9s %10s %9s %9s %8s %11s %5s\n",
		title, "mode", "txns/w", "commits", "ckpts", "logrecs", "truncated",
		"replayed", "skipped", "undone", "restart(us)", "cons")
	for _, p := range points {
		b += fmt.Sprintf("%-5s %6d %8d %6d %9d %10d %9d %9d %8d %11.0f %5v\n",
			p.Mode, p.TxnsPerWorker, p.Commits, p.Checkpoints, p.LogRecords,
			p.TruncatedRecords, p.ReplayedRecords, p.SkippedRecords, p.UndoneRecords,
			p.RestartUS, p.Conserved)
	}
	return b
}
