package sim

import (
	"bytes"
	"math/rand"
	"os"
	"testing"

	"repro/internal/adt"
	"repro/internal/atomicity"
	"repro/internal/core"
	"repro/internal/histfile"
	"repro/internal/history"
	"repro/internal/spec"
	"repro/internal/txn"
)

// TestScalingWorkloadCorrect runs the wide-object workload recorded on a
// many-shard engine and verifies the merged history end to end.
func TestScalingWorkloadCorrect(t *testing.T) {
	cfg := ScalingConfig{
		Objects: 16, Workers: 4, TxnsPerWorker: 6, OpsPerTxn: 3,
		DepositPct: 40, WithdrawPct: 40, AbortPct: 10,
		InitialBalance: 1000, Shards: 8, Seed: 3, Record: true,
	}
	for _, s := range []Scheduler{UIPNRBC, DUNFC} {
		p, e := RunScaling(s, cfg)
		if p.Shards != 8 {
			t.Fatalf("%s: engine ran with %d shards, want 8", s, p.Shards)
		}
		if p.Commits == 0 {
			t.Fatalf("%s: no commits", s)
		}
		if p.Commits+p.Aborts != e.Metrics.Begins.Load() {
			t.Fatalf("%s: conservation violated: %d+%d != %d", s, p.Commits, p.Aborts, e.Metrics.Begins.Load())
		}
		h := e.History()
		if err := history.WellFormed(h); err != nil {
			t.Fatalf("%s: merged history malformed: %v", s, err)
		}
		wide := adt.BankAccount{InitialBalance: cfg.InitialBalance, MaxBalance: 1 << 20, Amounts: []int{1, 2, 3}}
		sp := wide.Spec()
		specs := atomicity.Specs{}
		for _, obj := range h.Objects() {
			specs[obj] = sp
		}
		rng := rand.New(rand.NewSource(11))
		da, viol, err := atomicity.DynamicAtomicSampled(h, specs, 5, rng)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if !da {
			t.Fatalf("%s: history not dynamic atomic: %v", s, viol)
		}
		if s == UIPNRBC && p.WALRecords == 0 {
			t.Errorf("undo-log run should have sequenced WAL records")
		}
	}
}

// TestScalingHistfileRoundTrip: the merged history of a sharded recorded
// run survives the histfile render/parse round trip and still verifies —
// the same pipeline cmd/histcheck runs on saved traces. Set
// SCALING_HIST_OUT to additionally write the rendered file to disk for a
// manual `histcheck` run.
func TestScalingHistfileRoundTrip(t *testing.T) {
	cfg := ScalingConfig{
		Objects: 8, Workers: 4, TxnsPerWorker: 5, OpsPerTxn: 3,
		DepositPct: 40, WithdrawPct: 40, AbortPct: 10,
		InitialBalance: 1000, Shards: 8, Seed: 3, Record: true,
	}
	_, e := RunScaling(UIPNRBC, cfg)
	h := e.History()
	wide := adt.BankAccount{InitialBalance: cfg.InitialBalance, MaxBalance: 1 << 20, Amounts: []int{1, 2, 3}}
	sp := wide.Spec()
	f := &histfile.File{Specs: atomicity.Specs{}, H: h}
	names := map[history.ObjectID]string{}
	for _, obj := range h.Objects() {
		f.Specs[obj] = sp
		names[obj] = "bank-account"
	}
	var buf bytes.Buffer
	if err := histfile.Render(&buf, f, names); err != nil {
		t.Fatal(err)
	}
	if path := os.Getenv("SCALING_HIST_OUT"); path != "" {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
	}
	parsed, err := histfile.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.H) != len(h) {
		t.Fatalf("round trip lost events: %d vs %d", len(parsed.H), len(h))
	}
	if err := history.WellFormed(parsed.H); err != nil {
		t.Fatalf("parsed history malformed: %v", err)
	}
	// The atomicity check replays against the in-code wide specs: the file
	// format resolves "bank-account" to the default window (initial balance
	// 0), which cannot describe a workload seeded at 1000.
	rng := rand.New(rand.NewSource(23))
	da, viol, err := atomicity.DynamicAtomicSampled(parsed.H, specsFor(parsed.H, sp), 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !da {
		t.Fatalf("parsed history not dynamic atomic: %v", viol)
	}
}

func specsFor(h history.History, sp spec.Enumerable) atomicity.Specs {
	out := atomicity.Specs{}
	for _, obj := range h.Objects() {
		out[obj] = sp
	}
	return out
}

// TestShardedTraceHistcheckPipeline drives a small deterministic workload
// on an 8-shard engine that stays inside the default bank-account window,
// saves the merged history through histfile, and re-checks the parsed file
// with exactly the pipeline cmd/histcheck runs: well-formedness, full
// atomicity, full dynamic atomicity, and per-object acceptance by
// I(X, Spec, UIP, NRBC). Set SCALING_HIST_OUT to dump the file for a
// manual `histcheck -view uip` run.
func TestShardedTraceHistcheckPipeline(t *testing.T) {
	ba := adt.DefaultBankAccount() // initial balance 0, window 0..12
	e := txn.NewEngine(txn.Options{RecordHistory: true, Shards: 8})
	objs := []history.ObjectID{"A", "B", "C"}
	for _, id := range objs {
		e.MustRegister(id, ba, ba.NRBC(), txn.UndoLogRecovery)
	}
	t1, t2 := e.Begin(), e.Begin()
	mustInvoke(t, t1, "A", adt.Deposit(5))
	mustInvoke(t, t2, "B", adt.Deposit(3))
	mustInvoke(t, t1, "A", adt.Withdraw(2))
	mustInvoke(t, t2, "C", adt.Deposit(2))
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	t3 := e.Begin()
	mustInvoke(t, t3, "A", adt.Deposit(1))
	mustInvoke(t, t3, "B", adt.Balance())
	if err := t3.Abort(); err != nil {
		t.Fatal(err)
	}
	t4 := e.Begin()
	mustInvoke(t, t4, "C", adt.Withdraw(1))
	if err := t4.Commit(); err != nil {
		t.Fatal(err)
	}

	h := e.History()
	f := &histfile.File{Specs: specsFor(h, ba.Spec()), H: h}
	names := map[history.ObjectID]string{}
	for _, obj := range h.Objects() {
		names[obj] = "bank-account"
	}
	var buf bytes.Buffer
	if err := histfile.Render(&buf, f, names); err != nil {
		t.Fatal(err)
	}
	if path := os.Getenv("SCALING_HIST_OUT"); path != "" {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
	}
	parsed, err := histfile.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := history.WellFormed(parsed.H); err != nil {
		t.Fatalf("well-formed: %v", err)
	}
	atomic, err := atomicity.Atomic(parsed.H, parsed.Specs)
	if err != nil {
		t.Fatal(err)
	}
	if !atomic {
		t.Fatal("parsed trace not atomic")
	}
	da, viol, err := atomicity.DynamicAtomic(parsed.H, parsed.Specs)
	if err != nil {
		t.Fatal(err)
	}
	if !da {
		t.Fatalf("parsed trace not dynamic atomic: %v", viol)
	}
	for _, x := range parsed.H.Objects() {
		ty := parsed.Types[x]
		ok, idx, reason := core.Accepts(x, parsed.Specs[x], core.UIP, ty.NRBC(), parsed.H.ProjectObj(x))
		if !ok {
			t.Fatalf("I(%s,Spec,UIP,NRBC) rejects at %d: %s", x, idx, reason)
		}
	}
}

func mustInvoke(t *testing.T, tx *txn.Txn, obj history.ObjectID, inv spec.Invocation) {
	t.Helper()
	if _, err := tx.Invoke(obj, inv); err != nil {
		t.Fatal(err)
	}
}

// TestZipfContentionSweep: raising the zipfian skew concentrates the
// workload onto ever-fewer hot objects, so the deadlock-abort rate must
// rise monotonically with skew (no voluntary aborts are configured, so
// every abort is a deadlock victim). Read/write locking maximizes the
// conflict surface; think-time keeps lock windows overlapping at
// GOMAXPROCS=1. The sweep stays in the multi-hot-object regime (s <= 1.5):
// at extreme skew essentially every operation hits object 0, transactions
// serialize on a single lock, and deadlock cycles — which need two objects
// — disappear again, so the rate-vs-skew curve is a rise followed by a
// collapse and only the rise is a meaningful monotonicity assertion.
func TestZipfContentionSweep(t *testing.T) {
	cfg := ScalingConfig{
		Objects: 32, Workers: 8, TxnsPerWorker: 30, OpsPerTxn: 4,
		DepositPct: 45, WithdrawPct: 45, AbortPct: 0,
		InitialBalance: 1_000_000, Shards: 8, Seed: 17, ThinkIters: 400,
	}
	skews := []float64{0, 1.1, 1.4} // 0 = uniform
	seeds := []int64{17, 29, 43}
	// Scheduling noise on a single run can rival the between-skew gaps, so
	// each point averages several seeded runs.
	rates := make([]float64, len(skews))
	for _, seed := range seeds {
		c := cfg
		c.Seed = seed
		pts := ContentionSweep(UIPRW, c, skews)
		for i, p := range pts {
			if p.Commits+p.Aborts == 0 {
				t.Fatalf("skew %v: no transactions finished", skews[i])
			}
			if p.Aborts != p.Deadlocks {
				t.Errorf("skew %v: %d aborts but %d deadlocks; with AbortPct=0 every abort is a victim",
					skews[i], p.Aborts, p.Deadlocks)
			}
			if p.ZipfS != skews[i] {
				t.Errorf("point %d: zipf_s = %v, want %v", i, p.ZipfS, skews[i])
			}
			rates[i] += p.AbortRate() / float64(len(seeds))
			t.Logf("seed %2d skew %-4v: commits %4d aborts %4d rate %.3f blocked %d",
				seed, skews[i], p.Commits, p.Aborts, p.AbortRate(), p.Blocked)
		}
	}
	// Monotone rise, with a small tolerance for residual noise between
	// adjacent points; the endpoints must separate decisively.
	for i := 1; i < len(rates); i++ {
		if rates[i] < rates[i-1]-0.03 {
			t.Errorf("mean abort rate fell with skew: %.3f at %v -> %.3f at %v",
				rates[i-1], skews[i-1], rates[i], skews[i])
		}
	}
	if rates[len(rates)-1] < rates[0]+0.08 {
		t.Errorf("contention did not rise across the sweep: uniform %.3f, max skew %.3f",
			rates[0], rates[len(rates)-1])
	}
}

// TestScalingSweepShape: the sweep produces one point per shard count with
// the normalized shard value recorded, and every point conserves work.
func TestScalingSweepShape(t *testing.T) {
	cfg := DefaultScalingConfig()
	cfg.TxnsPerWorker = 20
	pts := ScalingSweep(UIPNRBC, cfg, []int{1, 2, 4})
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	wantShards := []int{1, 2, 4}
	for i, p := range pts {
		if p.Shards != wantShards[i] {
			t.Errorf("point %d: shards = %d, want %d", i, p.Shards, wantShards[i])
		}
		if p.Commits == 0 || p.OpsPerSec <= 0 {
			t.Errorf("point %d: empty measurement: %+v", i, p)
		}
	}
	out := RenderScalingTable("scaling", pts)
	if len(out) < 60 {
		t.Errorf("table too short: %q", out)
	}
}

// TestReadMostlyScalingMix: the read-mostly preset runs the same workload
// shape with the mix label carried into the measured point — the knob the
// ccbench scaling sweep reports both mixes by.
func TestReadMostlyScalingMix(t *testing.T) {
	heavy := DefaultScalingConfig()
	heavy.TxnsPerWorker = 20
	readMostly := ReadMostlyScalingConfig()
	readMostly.TxnsPerWorker = 20
	if readMostly.DepositPct+readMostly.WithdrawPct >= 20 {
		t.Fatalf("read-mostly preset is not read-mostly: %d%% updates",
			readMostly.DepositPct+readMostly.WithdrawPct)
	}
	ph, _ := RunScaling(UIPNRBC, heavy)
	pr, _ := RunScaling(UIPNRBC, readMostly)
	if ph.Mix != "update-heavy" || pr.Mix != "read-mostly" {
		t.Fatalf("mix labels = %q, %q; want update-heavy, read-mostly", ph.Mix, pr.Mix)
	}
	if pr.Commits == 0 {
		t.Fatal("read-mostly run committed nothing")
	}
	if pr.WALRecords == 0 {
		t.Fatal("read-mostly run staged no WAL records (operations are operation-logged regardless of mix)")
	}
}
