package sim

import "testing"

// TestCheckpointSweepBoundedReplay runs a reduced E17 grid and asserts its
// machine-independent shape: every point recovers a conserved total; with
// checkpointing off the restart replays the whole log (replay count grows
// with run length, nothing skipped or truncated); with it on, checkpoints
// were taken, the log was truncated, restart seeded every account, and the
// replayed-record count at the longest run stays below the off-mode replay
// of even the shortest run's full log — bounded by the last checkpoint
// interval instead of the run length.
func TestCheckpointSweepBoundedReplay(t *testing.T) {
	cfg := DefaultCheckpointConfig()
	cfg.EveryTxns = 20
	cfg.Lengths = []int{40, 120}
	pts, err := CheckpointSweep(cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("sweep produced %d points, want 4", len(pts))
	}
	byMode := map[string][]CheckpointPoint{}
	for _, p := range pts {
		if !p.Conserved {
			t.Errorf("%s/%d: recovered total not conserved", p.Mode, p.TxnsPerWorker)
		}
		if p.Commits == 0 {
			t.Errorf("%s/%d: no commits", p.Mode, p.TxnsPerWorker)
		}
		byMode[p.Mode] = append(byMode[p.Mode], p)
	}
	off, on := byMode["off"], byMode["on"]
	if len(off) != 2 || len(on) != 2 {
		t.Fatalf("unexpected mode split: %d off, %d on", len(off), len(on))
	}
	for _, p := range off {
		if p.Checkpoints != 0 || p.TruncatedRecords != 0 || p.SkippedRecords != 0 {
			t.Errorf("off/%d: checkpoint activity in the baseline: %+v", p.TxnsPerWorker, p)
		}
		if p.ReplayedRecords == 0 {
			t.Errorf("off/%d: nothing replayed", p.TxnsPerWorker)
		}
	}
	if off[1].ReplayedRecords <= off[0].ReplayedRecords {
		t.Errorf("off-mode replay did not grow with run length: %d then %d",
			off[0].ReplayedRecords, off[1].ReplayedRecords)
	}
	for _, p := range on {
		if p.Checkpoints == 0 {
			t.Errorf("on/%d: no checkpoints taken", p.TxnsPerWorker)
		}
		if p.TruncatedRecords == 0 {
			t.Errorf("on/%d: nothing truncated", p.TxnsPerWorker)
		}
		if p.SeededObjects != cfg.Accounts {
			t.Errorf("on/%d: restart seeded %d accounts, want %d", p.TxnsPerWorker, p.SeededObjects, cfg.Accounts)
		}
		if p.LogRecords >= p.ReplayedRecords+p.SkippedRecords+int(p.TruncatedRecords) {
			// Sanity only: retained log = replayable suffix + per-object
			// skipped prefix remnants + markers; truncated records are
			// gone entirely.
			continue
		}
	}
	// The headline: bounded replay. The longest checkpointed run replays
	// less than even the shortest full-log run (only the tail past the
	// last checkpoint matters), and tripling the run length leaves the
	// checkpointed replay near one cadence interval instead of tripling
	// it — generous 2x slack absorbs abort/compensation noise.
	if on[1].ReplayedRecords >= off[0].ReplayedRecords {
		t.Errorf("checkpointed replay not bounded: on/%d replayed %d, off/%d replayed %d",
			on[1].TxnsPerWorker, on[1].ReplayedRecords, off[0].TxnsPerWorker, off[0].ReplayedRecords)
	}
	if on[1].ReplayedRecords > 2*on[0].ReplayedRecords {
		t.Errorf("checkpointed replay grew with run length: %d at %d txns/w, %d at %d txns/w",
			on[0].ReplayedRecords, on[0].TxnsPerWorker, on[1].ReplayedRecords, on[1].TxnsPerWorker)
	}
}
