package sim

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/adt"
	"repro/internal/txn"
	"repro/internal/wal"
)

// FlushConfig parameterizes the group-commit flush experiment: the
// embedded scaling workload run against an asynchronous WAL whose flusher
// dwell (BatchInterval) and simulated storage latency (SyncLatency) are
// the independent variables. The dependent variables — commit-latency
// percentiles and mean durable batch size — quantify the trade-off that
// motivates group commit: a longer dwell amortizes each sync over more
// transactions at the price of every commit waiting out the dwell.
// Embedding ScalingConfig keeps the workload definition shared by
// construction: every scaling knob (zipf skew, think time, abort rate)
// applies to the flush sweep too.
type FlushConfig struct {
	ScalingConfig
	// BatchInterval is the flusher dwell; SyncLatency the simulated
	// per-sync device latency; MaxBatch cuts the dwell short (0 = no cap).
	BatchInterval time.Duration
	SyncLatency   time.Duration
	MaxBatch      int
}

// DefaultFlushConfig is 32 accounts under 8 workers, write-heavy so every
// transaction stages WAL records.
func DefaultFlushConfig() FlushConfig {
	return FlushConfig{
		ScalingConfig: ScalingConfig{
			Objects:        32,
			Workers:        8,
			TxnsPerWorker:  100,
			OpsPerTxn:      3,
			DepositPct:     45,
			WithdrawPct:    45,
			InitialBalance: 1_000_000,
			Seed:           1,
		},
	}
}

// FlushPoint is one measured point of the batch-interval × sync-latency
// sweep.
type FlushPoint struct {
	Scheduler       string  `json:"scheduler"`
	BatchIntervalUS int64   `json:"batch_interval_us"`
	SyncLatencyUS   int64   `json:"sync_latency_us"`
	MaxBatch        int     `json:"max_batch,omitempty"`
	Workers         int     `json:"workers"`
	Commits         int64   `json:"commits"`
	Aborts          int64   `json:"aborts"`
	Syncs           int64   `json:"syncs"`
	WALRecords      int64   `json:"wal_records"`
	MeanBatch       float64 `json:"mean_batch"`
	CommitP50US     float64 `json:"commit_p50_us"`
	CommitP99US     float64 `json:"commit_p99_us"`
	TxnPerSec       float64 `json:"txn_per_sec"`
	ElapsedNS       int64   `json:"elapsed_ns"`
}

// RunFlush executes the workload against an asynchronous flusher over an
// fsync-simulating backend and measures per-commit latency. Every commit
// waits for its group's durability acknowledgement, so the measured
// latency includes dwell, queueing behind the serialized sync, and the
// simulated device time.
func RunFlush(s Scheduler, cfg FlushConfig) (FlushPoint, error) {
	backend := wal.NewLatencyBackend(cfg.SyncLatency, nil)
	log, err := wal.Open(wal.Config{
		Async:         true,
		BatchInterval: cfg.BatchInterval,
		MaxBatch:      cfg.MaxBatch,
		Backend:       backend,
	})
	if err != nil {
		return FlushPoint{}, err
	}
	ba := adt.BankAccount{
		InitialBalance: cfg.InitialBalance,
		MaxBalance:     12,
		Amounts:        []int{1, 2, 3},
	}
	rel := bankRelation(s, adt.DefaultBankAccount())
	e := txn.NewEngine(txn.Options{Shards: cfg.Shards, WAL: log})
	for i := 0; i < cfg.Objects; i++ {
		e.MustRegister(scalingObjID(i), ba, rel, s.Kind())
	}

	// The workload is the shared banking worker loop; only the per-commit
	// stopwatch differs from the scaling sweep. Per-worker slices need no
	// lock: the hook runs on the committing worker's goroutine.
	latencies := make([][]time.Duration, cfg.Workers)
	start := time.Now()
	runBankWorkers(e, cfg.ScalingConfig, func(w int, d time.Duration) {
		latencies[w] = append(latencies[w], d)
	})
	elapsed := time.Since(start)
	if err := e.Close(); err != nil {
		return FlushPoint{}, err
	}

	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	p := FlushPoint{
		Scheduler:       s.String(),
		BatchIntervalUS: cfg.BatchInterval.Microseconds(),
		SyncLatencyUS:   cfg.SyncLatency.Microseconds(),
		MaxBatch:        cfg.MaxBatch,
		Workers:         cfg.Workers,
		Commits:         e.Metrics.Commits.Load(),
		Aborts:          e.Metrics.Aborts.Load(),
		Syncs:           backend.Syncs(),
		WALRecords:      backend.SyncedRecords(),
		CommitP50US:     float64(percentile(all, 50)) / 1e3,
		CommitP99US:     float64(percentile(all, 99)) / 1e3,
		ElapsedNS:       elapsed.Nanoseconds(),
	}
	if p.Syncs > 0 {
		p.MeanBatch = float64(p.WALRecords) / float64(p.Syncs)
	}
	if elapsed > 0 {
		p.TxnPerSec = float64(p.Commits) / elapsed.Seconds()
	}
	return p, nil
}

// percentile returns the pth percentile (nearest-rank) of ds in
// nanoseconds, 0 if empty.
func percentile(ds []time.Duration, p float64) int64 {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return int64(sorted[rank])
}

// FlushSweep measures the workload at every batch-interval × sync-latency
// combination — the group-commit trade-off surface.
func FlushSweep(s Scheduler, cfg FlushConfig, intervals, latencies []time.Duration) ([]FlushPoint, error) {
	out := make([]FlushPoint, 0, len(intervals)*len(latencies))
	for _, bi := range intervals {
		for _, sl := range latencies {
			c := cfg
			c.BatchInterval = bi
			c.SyncLatency = sl
			p, err := RunFlush(s, c)
			if err != nil {
				return nil, err
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// RenderFlushTable renders sweep points as a fixed-width table.
func RenderFlushTable(title string, points []FlushPoint) string {
	b := fmt.Sprintf("%s\n%-12s %10s %9s %8s %7s %9s %10s %10s %10s\n",
		title, "scheduler", "dwell(us)", "sync(us)", "commits", "syncs", "meanbatch", "p50(us)", "p99(us)", "txn/s")
	for _, p := range points {
		b += fmt.Sprintf("%-12s %10d %9d %8d %7d %9.1f %10.0f %10.0f %10.0f\n",
			p.Scheduler, p.BatchIntervalUS, p.SyncLatencyUS, p.Commits, p.Syncs,
			p.MeanBatch, p.CommitP50US, p.CommitP99US, p.TxnPerSec)
	}
	return b
}
