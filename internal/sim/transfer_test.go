package sim

import (
	"math/rand"
	"testing"

	"repro/internal/atomicity"
	"repro/internal/history"
)

// TestTransferConservation: the live multi-object transfer workload
// conserves the total balance — every commit moves money, never creates or
// destroys it — and the merged history passes the verification stack. The
// restart-side half of the story (conservation at every crash boundary) is
// the transfer crash sweep in internal/recovery.
func TestTransferConservation(t *testing.T) {
	cfg := DefaultTransferConfig()
	cfg.TxnsPerWorker = 20
	cfg.Record = true
	e := NewTransferEngine(cfg, nil)
	RunTransfers(e, cfg)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if e.Metrics.Commits.Load() == 0 {
		t.Fatal("no transfer committed; the workload is not exercising the commit barrier")
	}
	total, err := TransferTotal(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := cfg.Accounts * cfg.InitialBalance; total != want {
		t.Fatalf("total balance = %d, want %d (a transfer was half-applied)", total, want)
	}
	h := e.History()
	if err := history.WellFormed(h); err != nil {
		t.Fatalf("merged history malformed: %v", err)
	}
	sp := cfg.BankAccount().Spec()
	specs := atomicity.Specs{}
	for _, obj := range h.Objects() {
		specs[obj] = sp
	}
	rng := rand.New(rand.NewSource(5))
	da, viol, err := atomicity.DynamicAtomicSampled(h, specs, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !da {
		t.Fatalf("history not dynamic atomic: %v", viol)
	}
}

// TestTransferAbortsCompensate: with every complete transfer aborting
// voluntarily, the undo path restores both legs and the total still never
// moves — multi-object compensation under concurrency.
func TestTransferAbortsCompensate(t *testing.T) {
	cfg := DefaultTransferConfig()
	cfg.TxnsPerWorker = 15
	cfg.AbortPct = 100
	e := NewTransferEngine(cfg, nil)
	RunTransfers(e, cfg)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if e.Metrics.Aborts.Load() == 0 {
		t.Fatal("no aborts; the workload is not exercising compensation")
	}
	total, err := TransferTotal(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := cfg.Accounts * cfg.InitialBalance; total != want {
		t.Fatalf("total balance = %d, want %d (an abort left half a transfer)", total, want)
	}
	for i := 0; i < cfg.Accounts; i++ {
		store, _ := e.Object(TransferAccountID(i))
		if got := store.CommittedValue().Encode(); got != "1000" {
			t.Errorf("account %d = %s, want 1000 (all transfers aborted)", i, got)
		}
	}
}

// TestTransferMultiParticipantConservation: with Participants > 2 each
// transaction withdraws (P-1)×amount at one source and fans the deposits
// out over P-1 distinct destinations. Conservation must hold live across
// the wider commit sweep, with both voluntary aborts and deadlock victims
// compensating every leg.
func TestTransferMultiParticipantConservation(t *testing.T) {
	for _, parts := range []int{3, 4} {
		cfg := DefaultTransferConfig()
		cfg.Participants = parts
		cfg.TxnsPerWorker = 20
		cfg.Record = true
		e := NewTransferEngine(cfg, nil)
		RunTransfers(e, cfg)
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		if e.Metrics.Commits.Load() == 0 {
			t.Fatalf("participants=%d: no transfer committed", parts)
		}
		total, err := TransferTotal(e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if want := cfg.Accounts * cfg.InitialBalance; total != want {
			t.Fatalf("participants=%d: total balance = %d, want %d (a fan-out transfer was half-applied)",
				parts, total, want)
		}
		if err := history.WellFormed(e.History()); err != nil {
			t.Fatalf("participants=%d: merged history malformed: %v", parts, err)
		}
	}
}
