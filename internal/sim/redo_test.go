package sim

import "testing"

// TestRedoSweepQuick runs a small E19 grid end to end and checks the
// structural claims the experiment's numbers rest on: every arm conserves
// the total (RedoSweep itself hard-errors otherwise, as it does if the
// redo arm's bytes/commit ever reaches the undo arm's), the redo arms
// reify dependency sets on their commit records, undo nothing, and skip
// losers at restart, and per backend the undo arm replays strictly more
// records than the redo arm (it processes every durable record — losers'
// updates and their compensation trail included — where redo replays the
// winners-only projection).
func TestRedoSweepQuick(t *testing.T) {
	cfg := DefaultRedoSweepConfig()
	cfg.Length = 40
	pts, err := RedoSweep(cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4", len(pts))
	}
	replayed := map[string]map[string]int{}
	for _, p := range pts {
		if p.Commits == 0 || p.Aborts == 0 {
			t.Errorf("%s/%s: degenerate workload (commits=%d aborts=%d)",
				p.Discipline, p.Backend, p.Commits, p.Aborts)
		}
		if !p.Conserved {
			t.Errorf("%s/%s: total not conserved", p.Discipline, p.Backend)
		}
		if replayed[p.Backend] == nil {
			replayed[p.Backend] = map[string]int{}
		}
		replayed[p.Backend][p.Discipline] = p.ReplayedRecords
		switch p.Discipline {
		case "redo":
			if p.DepCommits == 0 {
				t.Errorf("redo/%s: no commit record carried a dependency set", p.Backend)
			}
			if p.UndoneRecords != 0 {
				t.Errorf("redo/%s: restart undid %d records, want 0", p.Backend, p.UndoneRecords)
			}
			if p.SkippedRecords == 0 {
				t.Errorf("redo/%s: restart skipped no loser records", p.Backend)
			}
		case "undo":
			if p.DepCommits != 0 {
				t.Errorf("undo/%s: %d commit records carried dependency sets", p.Backend, p.DepCommits)
			}
		}
	}
	for backend, byDisc := range replayed {
		if byDisc["undo"] <= byDisc["redo"] {
			t.Errorf("%s: undo restart replayed %d records, redo %d — winners-only replay should be strictly smaller",
				backend, byDisc["undo"], byDisc["redo"])
		}
	}
}
