package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/adt"
	"repro/internal/history"
	"repro/internal/recovery"
	"repro/internal/txn"
)

// PoolConfig parameterizes the resource-allocation workload over the
// partial, nondeterministic pool type: transactions allocate a resource,
// hold it for a few operations elsewhere, and release it. Under
// update-in-place the allocator sees in-flight allocations and hands
// concurrent transactions different resources; under deferred update every
// transaction computes its allocation against the committed pool and
// collides on the same resource — the Section 8.2.2 divergence, made
// operational.
type PoolConfig struct {
	// Resources is the pool size.
	Resources int
	// Workers is the number of concurrent client goroutines.
	Workers int
	// TxnsPerWorker is the number of transactions each worker attempts.
	TxnsPerWorker int
	// ThinkOps is the number of scratch operations performed while holding
	// the resource (lengthens the hold).
	ThinkOps int
	// ThinkIters adds busy work between alloc and release so the
	// allocation hold window dominates the release window; see
	// TestPoolDivergence.
	ThinkIters int
	// Seed makes the workload deterministic in structure.
	Seed int64
	// Record enables history recording.
	Record bool
}

// DefaultPoolConfig is 3 resources under 6 workers.
func DefaultPoolConfig() PoolConfig {
	return PoolConfig{
		Resources:     3,
		Workers:       6,
		TxnsPerWorker: 150,
		ThinkOps:      2,
		ThinkIters:    2000,
		Seed:          1,
	}
}

const poolObj = history.ObjectID("pool")

func scratchID(i int) history.ObjectID {
	return history.ObjectID(fmt.Sprintf("scratch%02d", i))
}

// RunPool executes the allocation workload under the scheduler.
func RunPool(s Scheduler, cfg PoolConfig) (Result, *txn.Engine) {
	resources := make([]int, cfg.Resources)
	for i := range resources {
		resources[i] = i + 1
	}
	pool := adt.ResourcePool{Resources: resources}
	ba := adt.BankAccount{InitialBalance: 1000, MaxBalance: 12, Amounts: []int{1, 2, 3}}
	e := txn.NewEngine(txn.Options{RecordHistory: cfg.Record})
	e.MustRegister(poolObj, pool, poolRelation(s, pool), s.Kind())
	for w := 0; w < cfg.Workers; w++ {
		e.MustRegister(scratchID(w), ba, bankRelation(s, adt.DefaultBankAccount()), s.Kind())
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*104729))
			for i := 0; i < cfg.TxnsPerWorker; i++ {
				tx := e.Begin()
				res, err := tx.Invoke(poolObj, adt.Alloc())
				if err != nil {
					if errors.Is(err, adt.ErrNotEnabled) {
						// Pool exhausted: give up this attempt.
						_ = tx.Abort()
						continue
					}
					if !errors.Is(err, txn.ErrAborted) {
						_ = tx.Abort()
					}
					continue
				}
				if cfg.ThinkIters > 0 {
					think(cfg.ThinkIters)
				}
				ok := true
				for j := 0; j < cfg.ThinkOps; j++ {
					if _, err := tx.Invoke(scratchID(w), adt.Deposit(1+rng.Intn(2))); err != nil {
						if !errors.Is(err, txn.ErrAborted) {
							_ = tx.Abort()
						}
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				r := mustAtoi(string(res))
				if _, err := tx.Invoke(poolObj, adt.Release(r)); err != nil {
					if !errors.Is(err, txn.ErrAborted) {
						_ = tx.Abort()
					}
					continue
				}
				_ = tx.Commit()
			}
		}(w)
	}
	wg.Wait()
	return collect(s, "pool", e, time.Since(start)), e
}

func mustAtoi(s string) int {
	var n int
	if _, err := fmt.Sscanf(s, "%d", &n); err != nil {
		panic(fmt.Sprintf("sim: malformed resource id %q", s))
	}
	return n
}

// RecoveryCostConfig parameterizes the abort-heavy workload measuring the
// asymmetric costs of the two recovery methods: update-in-place pays undo
// work on abort and nothing at commit; deferred update pays intentions
// application (and workspace replay) at commit and nothing on abort.
type RecoveryCostConfig struct {
	Workers       int
	TxnsPerWorker int
	OpsPerTxn     int
	AbortPct      int
	Seed          int64
}

// DefaultRecoveryCostConfig aborts half the transactions.
func DefaultRecoveryCostConfig() RecoveryCostConfig {
	return RecoveryCostConfig{Workers: 4, TxnsPerWorker: 300, OpsPerTxn: 6, AbortPct: 50, Seed: 1}
}

// RecoveryCostResult extends Result with the store-level work counters.
type RecoveryCostResult struct {
	Result
	Undos         int64
	CommitApplies int64
	Replays       int64
	WALRecords    int
}

// RunRecoveryCost runs a single-account workload with voluntary aborts and
// reports the recovery work performed.
func RunRecoveryCost(s Scheduler, cfg RecoveryCostConfig) RecoveryCostResult {
	bcfg := BankingConfig{
		Accounts:       1,
		Workers:        cfg.Workers,
		TxnsPerWorker:  cfg.TxnsPerWorker,
		OpsPerTxn:      cfg.OpsPerTxn,
		DepositPct:     60,
		WithdrawPct:    40,
		InitialBalance: 1_000_000,
		AbortPct:       cfg.AbortPct,
		Seed:           cfg.Seed,
	}
	res, e := RunBanking(s, bcfg)
	out := RecoveryCostResult{Result: res, WALRecords: e.WAL().Len()}
	if store, ok := e.Object(acctID(0)); ok {
		switch st := store.(type) {
		case *recovery.UndoLog:
			stats := st.Stats()
			out.Undos = stats.Undos
			out.CommitApplies = stats.CommitApplies
			out.Replays = stats.Replays
		case *recovery.Intentions:
			stats := st.Stats()
			out.Undos = stats.Undos
			out.CommitApplies = stats.CommitApplies
			out.Replays = stats.Replays
		}
	}
	return out
}
