package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adt"
	"repro/internal/history"
	"repro/internal/txn"
)

// BankingConfig parameterizes the hot-spot banking workload: transfers,
// deposits, withdrawals, and balance checks over a small set of accounts.
// Fewer accounts means more contention — the paper's "hot spot".
type BankingConfig struct {
	// Accounts is the number of bank-account objects.
	Accounts int
	// Workers is the number of concurrent client goroutines.
	Workers int
	// TxnsPerWorker is the number of transactions each worker runs.
	TxnsPerWorker int
	// OpsPerTxn is the number of operations per transaction.
	OpsPerTxn int
	// DepositPct and WithdrawPct set the operation mix (percent); the
	// remainder are balance reads.
	DepositPct  int
	WithdrawPct int
	// InitialBalance seeds every account before measurement.
	InitialBalance int
	// AbortPct aborts the transaction voluntarily after its operations
	// (exercising recovery cost).
	AbortPct int
	// ThinkIters adds deterministic busy work after each operation while
	// the transaction holds its locks, lengthening lock hold times so that
	// contention is observable on fast machines. Zero means no think time.
	ThinkIters int
	// Seed makes the workload deterministic in structure.
	Seed int64
	// Record enables history recording (for verification runs; slows the
	// engine).
	Record bool
}

// spinSink defeats dead-code elimination of the think-time loop. Workers
// on every goroutine fold into it, so the add must be atomic.
var spinSink atomic.Uint64

// think burns ~n loop iterations of CPU, yielding to the scheduler every
// few hundred iterations so that lock-hold windows overlap even at
// GOMAXPROCS=1 — without the yields, a worker on a single P runs whole
// transactions between preemption points and contention is never observed.
func think(n int) {
	var acc uint64 = 1469598103934665603
	for i := 0; i < n; i++ {
		acc = (acc ^ uint64(i)) * 1099511628211
		if i&255 == 255 {
			runtime.Gosched()
		}
	}
	spinSink.Add(acc)
}

// DefaultBankingConfig is the balanced mix on a 4-account hot spot.
func DefaultBankingConfig() BankingConfig {
	return BankingConfig{
		Accounts:       4,
		Workers:        8,
		TxnsPerWorker:  200,
		OpsPerTxn:      4,
		DepositPct:     30,
		WithdrawPct:    50,
		InitialBalance: 1_000_000,
		ThinkIters:     2000,
		Seed:           1,
	}
}

func acctID(i int) history.ObjectID {
	return history.ObjectID(fmt.Sprintf("acct%02d", i))
}

// RunBanking executes the banking workload under the scheduler and returns
// the metrics (plus the engine, for verification in tests).
func RunBanking(s Scheduler, cfg BankingConfig) (Result, *txn.Engine) {
	ba := adt.BankAccount{
		InitialBalance: cfg.InitialBalance,
		MaxBalance:     12,
		Amounts:        []int{1, 2, 3},
	}
	rel := bankRelation(s, adt.DefaultBankAccount())
	e := txn.NewEngine(txn.Options{RecordHistory: cfg.Record})
	for i := 0; i < cfg.Accounts; i++ {
		e.MustRegister(acctID(i), ba, rel, s.Kind())
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			for i := 0; i < cfg.TxnsPerWorker; i++ {
				tx := e.Begin()
				failed := false
				for op := 0; op < cfg.OpsPerTxn; op++ {
					obj := acctID(rng.Intn(cfg.Accounts))
					amount := 1 + rng.Intn(3)
					var err error
					switch pick := rng.Intn(100); {
					case pick < cfg.DepositPct:
						_, err = tx.Invoke(obj, adt.Deposit(amount))
					case pick < cfg.DepositPct+cfg.WithdrawPct:
						_, err = tx.Invoke(obj, adt.Withdraw(amount))
					default:
						_, err = tx.Invoke(obj, adt.Balance())
					}
					if err != nil {
						// Deadlock victims are auto-aborted; anything else
						// is unexpected for this workload but still ends
						// the transaction.
						if !errors.Is(err, txn.ErrAborted) {
							_ = tx.Abort()
						}
						failed = true
						break
					}
					if cfg.ThinkIters > 0 {
						think(cfg.ThinkIters)
					}
				}
				if failed {
					continue
				}
				if cfg.AbortPct > 0 && rng.Intn(100) < cfg.AbortPct {
					_ = tx.Abort()
					continue
				}
				_ = tx.Commit()
			}
		}(w)
	}
	wg.Wait()
	return collect(s, "banking", e, time.Since(start)), e
}

// BankingSweep runs the banking workload for each scheduler at each
// contention level (number of accounts) and returns the result matrix
// keyed by accounts then scheduler order.
func BankingSweep(base BankingConfig, accountCounts []int, scheds []Scheduler) map[int][]Result {
	out := make(map[int][]Result)
	for _, n := range accountCounts {
		cfg := base
		cfg.Accounts = n
		for _, s := range scheds {
			r, _ := RunBanking(s, cfg)
			out[n] = append(out[n], r)
		}
	}
	return out
}
