package sim

import "testing"

// TestRestartSweepQuick runs a small E18 grid end to end and checks the
// invariants the experiment's numbers are only meaningful under: every
// point conserves the total, the single-file arm pays rewrite bytes for
// truncation while the segmented arm pays none (unlinking instead), the
// segmented arm's pass 1 fans out over multiple partitions, and the
// pass-2 replay counts are identical at every parallelism within an arm
// (the work moves between workers; it never changes size).
func TestRestartSweepQuick(t *testing.T) {
	cfg := DefaultRestartSweepConfig()
	cfg.Length = 60
	cfg.EveryTxns = 20
	cfg.SegmentBytes = []int64{1 << 10}
	cfg.Parallelisms = []int{1, 2}
	pts, err := RestartSweep(cfg, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(cfg.Parallelisms); len(pts) != want {
		t.Fatalf("got %d points, want %d", len(pts), want)
	}
	replayed := map[string]int{}
	for _, p := range pts {
		if !p.Conserved {
			t.Errorf("%s/p%d: total not conserved", p.Backend, p.Parallelism)
		}
		if p.Checkpoints == 0 || p.TruncatedRecords == 0 {
			t.Errorf("%s/p%d: workload took no effective checkpoints (ckpts=%d truncated=%d)",
				p.Backend, p.Parallelism, p.Checkpoints, p.TruncatedRecords)
		}
		switch p.Backend {
		case "file":
			if p.TruncBytesRewritten == 0 {
				t.Errorf("file/p%d: single-file truncation rewrote no bytes", p.Parallelism)
			}
			if p.TruncSegmentsUnlinked != 0 {
				t.Errorf("file/p%d: single-file truncation unlinked %d segments", p.Parallelism, p.TruncSegmentsUnlinked)
			}
		case "seg":
			if p.TruncBytesRewritten != 0 {
				t.Errorf("seg/p%d: segmented truncation rewrote %d bytes", p.Parallelism, p.TruncBytesRewritten)
			}
			if p.TruncSegmentsUnlinked == 0 {
				t.Errorf("seg/p%d: segmented truncation unlinked no segments", p.Parallelism)
			}
			if p.Segments < 2 {
				t.Errorf("seg/p%d: pass 1 saw %d partitions, want >=2", p.Parallelism, p.Segments)
			}
		}
		if len(p.WorkerReplayed) != p.Parallelism {
			t.Errorf("%s/p%d: %d per-worker slots", p.Backend, p.Parallelism, len(p.WorkerReplayed))
		}
		sum := 0
		for _, r := range p.WorkerReplayed {
			sum += r
		}
		if sum != p.ReplayedRecords {
			t.Errorf("%s/p%d: per-worker replayed sums to %d, aggregate %d",
				p.Backend, p.Parallelism, sum, p.ReplayedRecords)
		}
		if p.Parallelism > 1 && busyWorkers(p) < 2 {
			t.Errorf("%s/p%d: replay did not distribute (busy workers %d)",
				p.Backend, p.Parallelism, busyWorkers(p))
		}
		if prev, ok := replayed[p.Backend]; ok && prev != p.ReplayedRecords {
			t.Errorf("%s: replayed count varies with parallelism (%d vs %d)",
				p.Backend, prev, p.ReplayedRecords)
		}
		replayed[p.Backend] = p.ReplayedRecords
	}
}
