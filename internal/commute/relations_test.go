package commute

import (
	"math/rand"
	"testing"

	"repro/internal/spec"
)

// TestFCSymmetry property-tests Lemma 8: FC (and hence NFC) is symmetric,
// on random automata.
func TestFCSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 120; trial++ {
		m := randomAutomaton(rng)
		c := NewChecker(m)
		ops := m.Alphabet()
		for _, p := range ops {
			for _, q := range ops {
				if c.CommuteForward(p, q) != c.CommuteForward(q, p) {
					t.Fatalf("FC not symmetric for (%s,%s) on random automaton", p, q)
				}
			}
		}
	}
}

// TestFCViolationWitnessValid property-tests that every FC violation
// witness satisfies its claims, checked against the raw spec legality.
func TestFCViolationWitnessValid(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 120; trial++ {
		m := randomAutomaton(rng)
		c := NewChecker(m)
		ops := m.Alphabet()
		for _, p := range ops {
			for _, q := range ops {
				v, found := c.FCViolationWitness(p, q)
				if !found {
					continue
				}
				ap := append(v.Alpha.Clone(), p)
				aq := append(v.Alpha.Clone(), q)
				if !m.Legal(ap) || !m.Legal(aq) {
					t.Fatalf("witness α=%s must enable both %s and %s", v.Alpha, p, q)
				}
				if v.PQIllegal {
					apq := append(ap.Clone(), q)
					if m.Legal(apq) {
						t.Fatalf("witness claims α·P·Q illegal but %s is legal", apq)
					}
					continue
				}
				legal := append(append(v.Alpha.Clone(), v.LegalFirst, v.LegalSecond), v.Rho...)
				illegal := append(append(v.Alpha.Clone(), v.LegalSecond, v.LegalFirst), v.Rho...)
				if !m.Legal(legal) {
					t.Fatalf("witness legal order %s is illegal", legal)
				}
				if m.Legal(illegal) {
					t.Fatalf("witness illegal order %s is legal", illegal)
				}
			}
		}
	}
}

// TestRBCViolationWitnessValid property-tests RBC violation witnesses:
// α·Q·P·ρ legal, α·P·Q·ρ illegal.
func TestRBCViolationWitnessValid(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 120; trial++ {
		m := randomAutomaton(rng)
		c := NewChecker(m)
		ops := m.Alphabet()
		for _, p := range ops {
			for _, q := range ops {
				v, found := c.RBCViolationWitness(p, q)
				if !found {
					continue
				}
				legal := append(append(v.Alpha.Clone(), q, p), v.Rho...)
				illegal := append(append(v.Alpha.Clone(), p, q), v.Rho...)
				if !m.Legal(legal) {
					t.Fatalf("witness α·Q·P·ρ = %s is illegal", legal)
				}
				if m.Legal(illegal) {
					t.Fatalf("witness α·P·Q·ρ = %s is legal", illegal)
				}
			}
		}
	}
}

// TestRBCDefinitionAgainstBruteForce cross-checks RightCommutesBackward
// against a brute-force enumeration of α and ρ up to length 4 on random
// automata: a disagreement in the brute-force-found direction is a checker
// bug (the checker must find every bounded violation).
func TestRBCDefinitionAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 40; trial++ {
		m := randomAutomaton(rng)
		c := NewChecker(m)
		ops := m.Alphabet()
		var seqs []spec.Seq
		var gen func(prefix spec.Seq, depth int)
		gen = func(prefix spec.Seq, depth int) {
			seqs = append(seqs, prefix.Clone())
			if depth == 0 {
				return
			}
			for _, op := range ops {
				gen(append(prefix, op), depth-1)
			}
		}
		gen(spec.Seq{}, 3)
		for _, p := range ops {
			for _, q := range ops {
				rbc := c.RightCommutesBackward(p, q)
				// Brute force: search for α, ρ with αQPρ legal, αPQρ illegal.
				violated := false
				for _, a := range seqs {
					aqp := append(append(a.Clone(), q), p)
					if !m.Legal(aqp) {
						continue
					}
					apq := append(append(a.Clone(), p), q)
					for _, r := range seqs {
						if m.Legal(append(aqp.Clone(), r...)) && !m.Legal(append(apq.Clone(), r...)) {
							violated = true
							break
						}
					}
					if violated {
						break
					}
				}
				if violated && rbc {
					t.Fatalf("brute force found RBC violation for (%s,%s) but checker says RBC", p, q)
				}
			}
		}
	}
}

func TestRelationCombinators(t *testing.T) {
	always := RelationFunc{RelName: "always", F: func(p, q spec.Operation) bool { return true }}
	never := RelationFunc{RelName: "never", F: func(p, q spec.Operation) bool { return false }}
	asym := RelationFunc{RelName: "asym", F: func(p, q spec.Operation) bool {
		return p == opA() && q == opB()
	}}
	u := Union("u", never, asym)
	if !u.Conflicts(opA(), opB()) || u.Conflicts(opB(), opA()) {
		t.Error("Union misbehaves")
	}
	s := SymmetricClosure(asym)
	if !s.Conflicts(opA(), opB()) || !s.Conflicts(opB(), opA()) {
		t.Error("SymmetricClosure misbehaves")
	}
	if s.Conflicts(opA(), opA()) {
		t.Error("SymmetricClosure added spurious conflicts")
	}
	if !always.Conflicts(opC(), opC()) {
		t.Error("always relation misbehaves")
	}
	if u.Name() != "u" || s.Name() != "sym(asym)" {
		t.Errorf("combinator names: %q, %q", u.Name(), s.Name())
	}
}

func TestBuildTableAndRender(t *testing.T) {
	c := NewChecker(chainSpec())
	ops := []spec.Operation{opA(), opB()}
	table := BuildTable("NFC(chain)", c.NFCRelation(), ops)
	if table.MarkedCount() == 0 {
		t.Error("chain spec should have NFC conflicts")
	}
	out := table.Render()
	if out == "" || len(out) < 10 {
		t.Errorf("Render output too short: %q", out)
	}
	same := BuildTable("again", c.NFCRelation(), ops)
	if !table.Equal(same) {
		t.Error("identical tables should be Equal")
	}
	other := BuildTable("rw", c.RWRelation(), ops)
	_ = other.Render()
}

func TestDerivedRelationsMemoize(t *testing.T) {
	c := NewChecker(chainSpec())
	rel := c.NFCRelation()
	// Same pair twice: second call must hit the cache and agree.
	first := rel.Conflicts(opA(), opB())
	second := rel.Conflicts(opA(), opB())
	if first != second {
		t.Error("memoized relation is inconsistent")
	}
}

// TestReadOperationsCommute verifies Lemmas 11 and 12 generically: on random
// automata, every pair of read operations is in FC and in RBC.
func TestReadOperationsCommute(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 80; trial++ {
		m := randomAutomaton(rng)
		c := NewChecker(m)
		var reads []spec.Operation
		for _, op := range m.Alphabet() {
			if c.ReadOperation(op) {
				reads = append(reads, op)
			}
		}
		for _, p := range reads {
			for _, q := range reads {
				if !c.CommuteForward(p, q) {
					t.Fatalf("Lemma 11 failed: read ops (%s,%s) not in FC", p, q)
				}
				if !c.RightCommutesBackward(p, q) {
					t.Fatalf("Lemma 12 failed: read ops (%s,%s) not in RBC", p, q)
				}
			}
		}
	}
}
