package commute

import "repro/internal/spec"

// Materialize evaluates rel over ops × ops into an immutable map-backed
// relation that is safe for concurrent use. Checker-derived relations
// memoize lazily in unsynchronized maps and therefore must be materialized
// before being shared across goroutines (e.g. as an engine's conflict
// relation).
//
// Pairs involving an operation outside ops fall back to conflicting — a
// safe over-approximation: spurious conflicts cost concurrency, never
// correctness.
func Materialize(rel Relation, ops []spec.Operation) Relation {
	inAlpha := make(map[spec.Operation]bool, len(ops))
	for _, op := range ops {
		inAlpha[op] = true
	}
	table := make(map[[2]spec.Operation]bool, len(ops)*len(ops))
	for _, p := range ops {
		for _, q := range ops {
			table[[2]spec.Operation{p, q}] = rel.Conflicts(p, q)
		}
	}
	return RelationFunc{
		RelName: rel.Name(),
		F: func(p, q spec.Operation) bool {
			if !inAlpha[p] || !inAlpha[q] {
				return true
			}
			return table[[2]spec.Operation{p, q}]
		},
	}
}

// MaterializeInvocations is Materialize for invocation relations.
func MaterializeInvocations(rel InvocationRelation, invs []spec.Invocation) InvocationRelation {
	inAlpha := make(map[spec.Invocation]bool, len(invs))
	for _, inv := range invs {
		inAlpha[inv] = true
	}
	table := make(map[[2]spec.Invocation]bool, len(invs)*len(invs))
	for _, i := range invs {
		for _, j := range invs {
			table[[2]spec.Invocation{i, j}] = rel.Conflicts(i, j)
		}
	}
	return InvocationRelationFunc{
		RelName: rel.Name(),
		F: func(i, j spec.Invocation) bool {
			if !inAlpha[i] || !inAlpha[j] {
				return true
			}
			return table[[2]spec.Invocation{i, j}]
		},
	}
}
