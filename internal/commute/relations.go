package commute

import (
	"fmt"
	"strings"

	"repro/internal/spec"
)

// FCViolation witnesses (P, Q) ∈ NFC(Spec): a prefix Alpha after which both
// P and Q are legal, yet either Alpha·P·Q is illegal, or the two orders are
// distinguishable by the suffix Rho. These are exactly the ingredients of
// the only-if construction in Theorem 10.
type FCViolation struct {
	P, Q  spec.Operation
	Alpha spec.Seq
	// PQIllegal reports the first failure mode: Alpha·P·Q ∉ Spec.
	PQIllegal bool
	// When !PQIllegal, equieffectiveness fails: Alpha·First·Second·Rho is
	// legal while the opposite order followed by Rho is not. LegalFirst and
	// LegalSecond give the legal order.
	LegalFirst, LegalSecond spec.Operation
	Rho                     spec.Seq
}

// String summarizes the violation.
func (v *FCViolation) String() string {
	if v.PQIllegal {
		return fmt.Sprintf("NFC(%s,%s): after α=%s both legal but α·P·Q illegal",
			v.P, v.Q, v.Alpha)
	}
	return fmt.Sprintf("NFC(%s,%s): after α=%s orders distinguished by ρ=%s (legal order %s·%s)",
		v.P, v.Q, v.Alpha, v.Rho, v.LegalFirst, v.LegalSecond)
}

// RBCViolation witnesses (P, Q) ∈ NRBC(Spec): a prefix Alpha and suffix Rho
// with Alpha·Q·P·Rho legal but Alpha·P·Q·Rho illegal — the ingredients of
// the only-if construction in Theorem 9.
type RBCViolation struct {
	P, Q  spec.Operation
	Alpha spec.Seq
	Rho   spec.Seq
}

// String summarizes the violation.
func (v *RBCViolation) String() string {
	return fmt.Sprintf("NRBC(%s,%s): α=%s, ρ=%s (α·Q·P·ρ legal, α·P·Q·ρ illegal)",
		v.P, v.Q, v.Alpha, v.Rho)
}

// CommuteForward reports whether P and Q commute forward with respect to
// the spec (paper, Section 6.2): for every α with αP ∈ Spec and αQ ∈ Spec,
// αPQ ≈ αQP and αPQ ∈ Spec.
func (c *Checker) CommuteForward(p, q spec.Operation) bool {
	_, found := c.FCViolationWitness(p, q)
	return !found
}

// FCViolationWitness searches for a witness that (P, Q) ∈ NFC(Spec).
func (c *Checker) FCViolationWitness(p, q spec.Operation) (*FCViolation, bool) {
	for _, entry := range c.reachableSets() {
		if !c.alphaAllowed(entry.states) {
			continue
		}
		sp := c.step(entry.states, p)
		sq := c.step(entry.states, q)
		if len(sp) == 0 || len(sq) == 0 {
			continue
		}
		spq := c.step(sp, q)
		sqp := c.step(sq, p)
		if len(spq) == 0 {
			return &FCViolation{P: p, Q: q, Alpha: entry.witness, PQIllegal: true}, true
		}
		// Equieffectiveness of αPQ and αQP, decided on the state sets.
		if rho, found := c.distinguishingSuffix(spq, sqp); found {
			return &FCViolation{
				P: p, Q: q, Alpha: entry.witness,
				LegalFirst: p, LegalSecond: q, Rho: rho,
			}, true
		}
		if rho, found := c.distinguishingSuffix(sqp, spq); found {
			return &FCViolation{
				P: p, Q: q, Alpha: entry.witness,
				LegalFirst: q, LegalSecond: p, Rho: rho,
			}, true
		}
	}
	return nil, false
}

// RightCommutesBackward reports whether P right commutes backward with Q
// (paper, Section 6.3): for every α, αQP ≲ αPQ. Note the relation is not
// symmetric.
func (c *Checker) RightCommutesBackward(p, q spec.Operation) bool {
	_, found := c.RBCViolationWitness(p, q)
	return !found
}

// RBCViolationWitness searches for a witness that (P, Q) ∈ NRBC(Spec),
// i.e. that P does not right commute backward with Q.
func (c *Checker) RBCViolationWitness(p, q spec.Operation) (*RBCViolation, bool) {
	for _, entry := range c.reachableSets() {
		if !c.alphaAllowed(entry.states) {
			continue
		}
		sqp := c.run(entry.states, spec.Seq{q, p})
		if len(sqp) == 0 {
			continue // αQP illegal: trivially ≲ everything.
		}
		spq := c.run(entry.states, spec.Seq{p, q})
		if rho, found := c.distinguishingSuffix(sqp, spq); found {
			return &RBCViolation{P: p, Q: q, Alpha: entry.witness, Rho: rho}, true
		}
	}
	return nil, false
}

// Relation is a binary relation on operations used as a conflict relation.
// Conflicts(requested, held) reports whether the newly requested operation
// conflicts with an operation already executed by another active
// transaction. Relations need not be symmetric (NRBC generally is not).
type Relation interface {
	Name() string
	Conflicts(requested, held spec.Operation) bool
}

// RelationFunc adapts a function to a Relation.
type RelationFunc struct {
	RelName string
	F       func(requested, held spec.Operation) bool
}

// Name implements Relation.
func (r RelationFunc) Name() string { return r.RelName }

// Conflicts implements Relation.
func (r RelationFunc) Conflicts(requested, held spec.Operation) bool {
	return r.F(requested, held)
}

// NFCRelation derives the NFC(Spec) conflict relation from the checker,
// memoized per operation pair. Theorem 10: these are exactly the conflicts
// deferred-update recovery requires.
func (c *Checker) NFCRelation() Relation {
	cache := make(map[[2]spec.Operation]bool)
	return RelationFunc{
		RelName: "NFC(" + c.e.Name() + ")",
		F: func(p, q spec.Operation) bool {
			k := [2]spec.Operation{p, q}
			if v, ok := cache[k]; ok {
				return v
			}
			v := !c.CommuteForward(p, q)
			cache[k] = v
			return v
		},
	}
}

// NRBCRelation derives the NRBC(Spec) conflict relation from the checker,
// memoized per operation pair. Theorem 9: these are exactly the conflicts
// update-in-place recovery requires.
func (c *Checker) NRBCRelation() Relation {
	cache := make(map[[2]spec.Operation]bool)
	return RelationFunc{
		RelName: "NRBC(" + c.e.Name() + ")",
		F: func(p, q spec.Operation) bool {
			k := [2]spec.Operation{p, q}
			if v, ok := cache[k]; ok {
				return v
			}
			v := !c.RightCommutesBackward(p, q)
			cache[k] = v
			return v
		},
	}
}

// Union returns the relation that conflicts whenever any argument relation
// does.
func Union(name string, rels ...Relation) Relation {
	return RelationFunc{
		RelName: name,
		F: func(p, q spec.Operation) bool {
			for _, r := range rels {
				if r.Conflicts(p, q) {
					return true
				}
			}
			return false
		},
	}
}

// SymmetricClosure returns the least symmetric relation containing r.
// The paper notes (Section 6.3) that forcing symmetry on NRBC adds
// unnecessary conflicts; the ablation benchmarks quantify that.
func SymmetricClosure(r Relation) Relation {
	return RelationFunc{
		RelName: "sym(" + r.Name() + ")",
		F: func(p, q spec.Operation) bool {
			return r.Conflicts(p, q) || r.Conflicts(q, p)
		},
	}
}

// Table is a rendered conflict/commutativity table over a fixed operation
// list, in the style of Figures 6.1 and 6.2 of the paper: Marked[i][j]
// reports that (Ops[i], Ops[j]) is in the relation (an "x" in the figure).
type Table struct {
	Title  string
	Ops    []spec.Operation
	Marked [][]bool
}

// BuildTable evaluates rel over ops × ops.
func BuildTable(title string, rel Relation, ops []spec.Operation) *Table {
	marked := make([][]bool, len(ops))
	for i, p := range ops {
		marked[i] = make([]bool, len(ops))
		for j, q := range ops {
			marked[i][j] = rel.Conflicts(p, q)
		}
	}
	return &Table{Title: title, Ops: ops, Marked: marked}
}

// Render prints the table in ASCII, rows and columns labelled by operation.
func (t *Table) Render() string {
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteString("\n")
	width := 0
	labels := make([]string, len(t.Ops))
	for i, op := range t.Ops {
		labels[i] = op.String()
		if len(labels[i]) > width {
			width = len(labels[i])
		}
	}
	pad := func(s string, w int) string {
		if len(s) >= w {
			return s
		}
		return s + strings.Repeat(" ", w-len(s))
	}
	b.WriteString(pad("", width+2))
	for _, l := range labels {
		b.WriteString(pad(l, width+2))
	}
	b.WriteString("\n")
	for i, l := range labels {
		b.WriteString(pad(l, width+2))
		for j := range labels {
			mark := ""
			if t.Marked[i][j] {
				mark = "x"
			}
			b.WriteString(pad(mark, width+2))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Equal reports whether two tables mark exactly the same cells over the
// same operations.
func (t *Table) Equal(u *Table) bool {
	if len(t.Ops) != len(u.Ops) {
		return false
	}
	for i := range t.Ops {
		if t.Ops[i] != u.Ops[i] {
			return false
		}
		for j := range t.Ops {
			if t.Marked[i][j] != u.Marked[i][j] {
				return false
			}
		}
	}
	return true
}

// MarkedCount returns the number of marked (conflicting) cells.
func (t *Table) MarkedCount() int {
	n := 0
	for _, row := range t.Marked {
		for _, m := range row {
			if m {
				n++
			}
		}
	}
	return n
}
