package commute

import (
	"fmt"

	"repro/internal/spec"
)

// Total reports whether invocation I is total: for every legal operation
// sequence α there is at least one response R with α·[I,R] legal
// (paper, Section 8.2.1). Quantification over α reduces to quantification
// over reachable state sets.
func (c *Checker) Total(inv spec.Invocation) bool {
	responses := spec.Responses(c.e, inv)
	for _, entry := range c.reachableSets() {
		if !c.alphaAllowed(entry.states) {
			continue
		}
		enabled := false
		for _, r := range responses {
			if len(c.step(entry.states, spec.Op(inv, r))) > 0 {
				enabled = true
				break
			}
		}
		if !enabled {
			return false
		}
	}
	return true
}

// Deterministic reports whether invocation I is deterministic: for every
// legal α there is at most one response R with α·[I,R] legal.
func (c *Checker) Deterministic(inv spec.Invocation) bool {
	responses := spec.Responses(c.e, inv)
	for _, entry := range c.reachableSets() {
		if !c.alphaAllowed(entry.states) {
			continue
		}
		count := 0
		for _, r := range responses {
			if len(c.step(entry.states, spec.Op(inv, r))) > 0 {
				count++
				if count > 1 {
					return false
				}
			}
		}
	}
	return true
}

// FCI reports whether invocation I commutes forward with invocation J:
// for all responses Q and R, [I,Q] commutes forward with [J,R]
// (paper, Section 8.2.1).
func (c *Checker) FCI(i, j spec.Invocation) bool {
	for _, q := range spec.Responses(c.e, i) {
		for _, r := range spec.Responses(c.e, j) {
			if !c.CommuteForward(spec.Op(i, q), spec.Op(j, r)) {
				return false
			}
		}
	}
	return true
}

// RBCI reports whether invocation I right commutes backward with J:
// for all responses Q and R, [I,Q] right commutes backward with [J,R].
func (c *Checker) RBCI(i, j spec.Invocation) bool {
	for _, q := range spec.Responses(c.e, i) {
		for _, r := range spec.Responses(c.e, j) {
			if !c.RightCommutesBackward(spec.Op(i, q), spec.Op(j, r)) {
				return false
			}
		}
	}
	return true
}

// CI reports whether invocations I and J commute in the sense of
// Section 8.2.1: for every legal α, I(J(α)) ≈ J(I(α)), R(I,α) = R(I,J(α)),
// and R(J,α) = R(J,I(α)). The definition presupposes I and J are total and
// deterministic; CI returns an error if they are not.
func (c *Checker) CI(i, j spec.Invocation) (bool, error) {
	for _, inv := range []spec.Invocation{i, j} {
		if !c.Total(inv) {
			return false, fmt.Errorf("commute: CI(%s,%s): invocation %s is not total", i, j, inv)
		}
		if !c.Deterministic(inv) {
			return false, fmt.Errorf("commute: CI(%s,%s): invocation %s is not deterministic", i, j, inv)
		}
	}
	for _, entry := range c.reachableSets() {
		if !c.alphaAllowed(entry.states) {
			continue
		}
		ri, oki := c.uniqueResponse(entry.states, i)
		rj, okj := c.uniqueResponse(entry.states, j)
		if !oki || !okj {
			// Unreachable given totality, but keep the checker total itself.
			return false, fmt.Errorf("commute: CI(%s,%s): missing unique response", i, j)
		}
		si := c.step(entry.states, spec.Op(i, ri))
		sj := c.step(entry.states, spec.Op(j, rj))
		// Response of I must be insensitive to executing J first, and
		// conversely.
		riAfterJ, _ := c.uniqueResponse(sj, i)
		rjAfterI, _ := c.uniqueResponse(si, j)
		if riAfterJ != ri || rjAfterI != rj {
			return false, nil
		}
		sij := c.step(si, spec.Op(j, rjAfterI))
		sji := c.step(sj, spec.Op(i, riAfterJ))
		if _, found := c.distinguishingSuffix(sij, sji); found {
			return false, nil
		}
		if _, found := c.distinguishingSuffix(sji, sij); found {
			return false, nil
		}
	}
	return true, nil
}

func (c *Checker) uniqueResponse(states []string, inv spec.Invocation) (spec.Response, bool) {
	var res spec.Response
	found := false
	for _, r := range spec.Responses(c.e, inv) {
		if len(c.step(states, spec.Op(inv, r))) > 0 {
			if found {
				return "", false
			}
			res = r
			found = true
		}
	}
	return res, found
}

// InvocationRelation is a binary relation on invocations, the basis of
// invocation-based locking (paper, Section 8.2).
type InvocationRelation interface {
	Name() string
	Conflicts(requested, held spec.Invocation) bool
}

// InvocationRelationFunc adapts a function to an InvocationRelation.
type InvocationRelationFunc struct {
	RelName string
	F       func(requested, held spec.Invocation) bool
}

// Name implements InvocationRelation.
func (r InvocationRelationFunc) Name() string { return r.RelName }

// Conflicts implements InvocationRelation.
func (r InvocationRelationFunc) Conflicts(requested, held spec.Invocation) bool {
	return r.F(requested, held)
}

// LiftInvocationRelation lifts a relation RI on invocations to the relation
// RI_op on operations: ([I,Q],[J,R]) ∈ RI_op iff (I,J) ∈ RI
// (paper, Section 8.2). All operations with the same invocation get
// identical conflicts — locks no longer depend on results.
func LiftInvocationRelation(ri InvocationRelation) Relation {
	return RelationFunc{
		RelName: ri.Name() + "_op",
		F: func(p, q spec.Operation) bool {
			return ri.Conflicts(p.Inv, q.Inv)
		},
	}
}

// NFCIRelation derives the complement of FCI as an invocation relation.
func (c *Checker) NFCIRelation() InvocationRelation {
	cache := make(map[[2]spec.Invocation]bool)
	return InvocationRelationFunc{
		RelName: "NFCI(" + c.e.Name() + ")",
		F: func(i, j spec.Invocation) bool {
			k := [2]spec.Invocation{i, j}
			if v, ok := cache[k]; ok {
				return v
			}
			v := !c.FCI(i, j)
			cache[k] = v
			return v
		},
	}
}

// NRBCIRelation derives the complement of RBCI as an invocation relation.
func (c *Checker) NRBCIRelation() InvocationRelation {
	cache := make(map[[2]spec.Invocation]bool)
	return InvocationRelationFunc{
		RelName: "NRBCI(" + c.e.Name() + ")",
		F: func(i, j spec.Invocation) bool {
			k := [2]spec.Invocation{i, j}
			if v, ok := cache[k]; ok {
				return v
			}
			v := !c.RBCI(i, j)
			cache[k] = v
			return v
		},
	}
}

// ReadOperation reports whether P is a read operation in the sense of
// Section 8.1: for every α with αP legal, αP ≈ α.
func (c *Checker) ReadOperation(p spec.Operation) bool {
	for _, entry := range c.reachableSets() {
		sp := c.step(entry.states, p)
		if len(sp) == 0 {
			continue
		}
		if _, found := c.distinguishingSuffix(sp, entry.states); found {
			return false
		}
		if _, found := c.distinguishingSuffix(entry.states, sp); found {
			return false
		}
	}
	return true
}

// RWRelation builds the classic read/write locking conflict relation of
// Section 8.1 for the spec: two operations conflict unless both are read
// operations. Lemmas 11 and 12 guarantee it contains both NFC and NRBC.
func (c *Checker) RWRelation() Relation {
	isRead := make(map[spec.Operation]bool)
	for _, op := range c.e.Alphabet() {
		isRead[op] = c.ReadOperation(op)
	}
	return RelationFunc{
		RelName: "RW(" + c.e.Name() + ")",
		F: func(p, q spec.Operation) bool {
			return !(isRead[p] && isRead[q])
		},
	}
}
