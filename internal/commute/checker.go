// Package commute implements the equieffectiveness and commutativity theory
// of Weihl, "The Impact of Recovery on Concurrency Control" (JCSS 47, 1993),
// Section 6: the looks-like preorder (≲), equieffectiveness (≈), forward
// commutativity (FC) and right backward commutativity (RBC) on operations,
// and the invocation-level relations FCI, RBCI, and CI of Section 8.
//
// All procedures are exact for finite Enumerable specifications: sequences
// are tracked as reachable state sets (subset construction) and language
// inclusion is decided by a product search, so the quantifiers over
// "all operation sequences α" and "all suffixes" in the paper's definitions
// are discharged completely. For specs over unbounded state spaces the
// caller supplies a bounded window plus an α-restriction predicate; package
// adt pairs each such window with a closed-form analytic relation and the
// two are cross-checked in tests.
package commute

import (
	"sort"

	"repro/internal/spec"
)

// Checker decides the relations of Sections 6–8 for one Enumerable spec.
// It memoizes the subset construction; a Checker is not safe for concurrent
// use.
type Checker struct {
	e             spec.Enumerable
	restrictAlpha func(states []string) bool

	stepCache map[stepKey][]string

	reachOnce bool
	reach     []reachEntry
	reachByK  map[string]int
}

type stepKey struct {
	set string
	op  spec.Operation
}

type reachEntry struct {
	states  []string
	key     string
	witness spec.Seq // a shortest α reaching this state set from the initial set
}

// Option configures a Checker.
type Option func(*Checker)

// WithAlphaRestriction limits the quantification over prefixes α in the
// FC/RBC definitions to prefixes whose reachable state set satisfies the
// predicate. This is the escape hatch for bounded windows over unbounded
// state spaces: restrict α to the window's core so boundary states never
// participate as starting points, while suffix exploration still uses the
// full window.
func WithAlphaRestriction(pred func(states []string) bool) Option {
	return func(c *Checker) { c.restrictAlpha = pred }
}

// NewChecker builds a Checker for the spec.
func NewChecker(e spec.Enumerable, opts ...Option) *Checker {
	c := &Checker{
		e:         e,
		stepCache: make(map[stepKey][]string),
		reachByK:  make(map[string]int),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Spec returns the underlying specification.
func (c *Checker) Spec() spec.Enumerable { return c.e }

func (c *Checker) step(states []string, op spec.Operation) []string {
	k := stepKey{set: spec.StateSetKey(states), op: op}
	if v, ok := c.stepCache[k]; ok {
		return v
	}
	v := spec.Step(c.e, states, op)
	c.stepCache[k] = v
	return v
}

func (c *Checker) run(states []string, seq spec.Seq) []string {
	cur := states
	for _, op := range seq {
		cur = c.step(cur, op)
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

// reachableSets enumerates every state set reachable from the initial set
// in the determinized automaton, BFS order, with a shortest witness prefix
// for each. Every prefix α corresponds to exactly one such set, so
// quantification over α reduces to quantification over these sets.
func (c *Checker) reachableSets() []reachEntry {
	if c.reachOnce {
		return c.reach
	}
	c.reachOnce = true
	init := sortedCopy(c.e.Initial())
	if len(init) == 0 {
		return nil
	}
	start := reachEntry{states: init, key: spec.StateSetKey(init)}
	c.reach = append(c.reach, start)
	c.reachByK[start.key] = 0
	for i := 0; i < len(c.reach); i++ {
		cur := c.reach[i]
		for _, op := range c.e.Alphabet() {
			next := c.step(cur.states, op)
			if len(next) == 0 {
				continue
			}
			k := spec.StateSetKey(next)
			if _, ok := c.reachByK[k]; ok {
				continue
			}
			wit := make(spec.Seq, len(cur.witness), len(cur.witness)+1)
			copy(wit, cur.witness)
			wit = append(wit, op)
			c.reachByK[k] = len(c.reach)
			c.reach = append(c.reach, reachEntry{states: next, key: k, witness: wit})
		}
	}
	return c.reach
}

// ReachableSetCount returns the number of distinct reachable state sets
// (the size of the determinized state space). Useful for gauging checker
// cost in tests and benchmarks.
func (c *Checker) ReachableSetCount() int { return len(c.reachableSets()) }

// Legal reports whether seq is in the specification.
func (c *Checker) Legal(seq spec.Seq) bool {
	return len(c.run(sortedCopy(c.e.Initial()), seq)) > 0
}

// LooksLike reports α ≲ β: every suffix legal after α is legal after β
// (paper, Section 6.1). Illegal α looks like everything.
func (c *Checker) LooksLike(alpha, beta spec.Seq) bool {
	sa := c.run(sortedCopy(c.e.Initial()), alpha)
	sb := c.run(sortedCopy(c.e.Initial()), beta)
	_, found := c.distinguishingSuffix(sa, sb)
	return !found
}

// Equieffective reports α ≈ β: α ≲ β and β ≲ α (paper, Section 6.1).
func (c *Checker) Equieffective(alpha, beta spec.Seq) bool {
	return c.LooksLike(alpha, beta) && c.LooksLike(beta, alpha)
}

// DistinguishingSuffix returns a shortest γ such that αγ is legal but βγ is
// not, witnessing ¬(α ≲ β). The boolean reports whether such a suffix
// exists. A nil, true result means α itself is legal and β is not (γ = Λ).
func (c *Checker) DistinguishingSuffix(alpha, beta spec.Seq) (spec.Seq, bool) {
	sa := c.run(sortedCopy(c.e.Initial()), alpha)
	sb := c.run(sortedCopy(c.e.Initial()), beta)
	return c.distinguishingSuffix(sa, sb)
}

// distinguishingSuffix searches for a shortest suffix γ with
// step(sa, γ) ≠ ∅ and step(sb, γ) = ∅, by BFS over pairs of state sets.
// If sa is empty there is no such suffix (the empty language is included in
// everything).
func (c *Checker) distinguishingSuffix(sa, sb []string) (spec.Seq, bool) {
	if len(sa) == 0 {
		return nil, false
	}
	if len(sb) == 0 {
		return nil, true
	}
	type node struct {
		a, b []string
		path spec.Seq
	}
	startKey := spec.StateSetKey(sa) + "|" + spec.StateSetKey(sb)
	visited := map[string]bool{startKey: true}
	queue := []node{{a: sa, b: sb}}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, op := range c.e.Alphabet() {
			ta := c.step(n.a, op)
			if len(ta) == 0 {
				continue
			}
			tb := c.step(n.b, op)
			path := make(spec.Seq, len(n.path), len(n.path)+1)
			copy(path, n.path)
			path = append(path, op)
			if len(tb) == 0 {
				return path, true
			}
			k := spec.StateSetKey(ta) + "|" + spec.StateSetKey(tb)
			if !visited[k] {
				visited[k] = true
				queue = append(queue, node{a: ta, b: tb, path: path})
			}
		}
	}
	return nil, false
}

func (c *Checker) alphaAllowed(states []string) bool {
	return c.restrictAlpha == nil || c.restrictAlpha(states)
}

func sortedCopy(xs []string) []string {
	out := make([]string, len(xs))
	copy(out, xs)
	sort.Strings(out)
	return out
}
