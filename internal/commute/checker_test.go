package commute

import (
	"math/rand"
	"testing"

	"repro/internal/spec"
)

func opA() spec.Operation { return spec.Op(spec.NewInvocation("a"), "ok") }
func opB() spec.Operation { return spec.Op(spec.NewInvocation("b"), "ok") }
func opC() spec.Operation { return spec.Op(spec.NewInvocation("c"), "ok") }

// chainSpec accepts prefixes of a·b·c.
func chainSpec() *spec.Automaton {
	m := spec.NewAutomaton("chain", "0")
	m.AddTransition("0", opA(), "1")
	m.AddTransition("1", opB(), "2")
	m.AddTransition("2", opC(), "3")
	return m.Freeze()
}

// diamondSpec accepts a·b and b·a converging on the same state, plus c
// afterwards (a fully commuting pair).
func diamondSpec() *spec.Automaton {
	m := spec.NewAutomaton("diamond", "00")
	m.AddTransition("00", opA(), "10")
	m.AddTransition("00", opB(), "01")
	m.AddTransition("10", opB(), "11")
	m.AddTransition("01", opA(), "11")
	m.AddTransition("11", opC(), "done")
	return m.Freeze()
}

func TestLegal(t *testing.T) {
	c := NewChecker(chainSpec())
	if !c.Legal(spec.Seq{opA(), opB()}) {
		t.Error("a·b should be legal")
	}
	if c.Legal(spec.Seq{opB()}) {
		t.Error("b should be illegal initially")
	}
}

func TestLooksLikeBasics(t *testing.T) {
	c := NewChecker(chainSpec())
	// An illegal sequence looks like everything.
	if !c.LooksLike(spec.Seq{opB()}, spec.Seq{opA()}) {
		t.Error("illegal α should look like anything")
	}
	// a·b does not look like a (c is enabled after a·b but not after a).
	if c.LooksLike(spec.Seq{opA(), opB()}, spec.Seq{opA()}) {
		t.Error("a·b should not look like a")
	}
	// Reflexivity on a legal sequence.
	if !c.LooksLike(spec.Seq{opA()}, spec.Seq{opA()}) {
		t.Error("looks-like should be reflexive")
	}
}

func TestLooksLikeAsymmetry(t *testing.T) {
	// After a: only c enabled. After b: c and d enabled. So a-state looks
	// like b-state but not conversely — mirroring the paper's state 5 ≲
	// state 4 example in miniature.
	opD := spec.Op(spec.NewInvocation("d"), "ok")
	m := spec.NewAutomaton("asym", "0")
	m.AddTransition("0", opA(), "sa")
	m.AddTransition("0", opB(), "sb")
	m.AddTransition("sa", opC(), "t")
	m.AddTransition("sb", opC(), "t")
	m.AddTransition("sb", opD, "t")
	m.Freeze()
	c := NewChecker(m)
	if !c.LooksLike(spec.Seq{opA()}, spec.Seq{opB()}) {
		t.Error("a should look like b")
	}
	if c.LooksLike(spec.Seq{opB()}, spec.Seq{opA()}) {
		t.Error("b should not look like a")
	}
	if c.Equieffective(spec.Seq{opA()}, spec.Seq{opB()}) {
		t.Error("a and b should not be equieffective")
	}
	suffix, found := c.DistinguishingSuffix(spec.Seq{opB()}, spec.Seq{opA()})
	if !found || len(suffix) != 1 || suffix[0] != opD {
		t.Errorf("distinguishing suffix = %v, want [d]", suffix)
	}
}

func TestEquieffectiveDiamond(t *testing.T) {
	c := NewChecker(diamondSpec())
	if !c.Equieffective(spec.Seq{opA(), opB()}, spec.Seq{opB(), opA()}) {
		t.Error("a·b and b·a converge and should be equieffective")
	}
}

func TestDistinguishingSuffixEmptySuffix(t *testing.T) {
	c := NewChecker(chainSpec())
	// a is legal, b is illegal: the empty suffix distinguishes them.
	suffix, found := c.DistinguishingSuffix(spec.Seq{opA()}, spec.Seq{opB()})
	if !found {
		t.Fatal("expected a distinguishing suffix")
	}
	if len(suffix) != 0 {
		t.Errorf("suffix = %v, want empty (α legal, β illegal)", suffix)
	}
}

// randomAutomaton builds a random automaton over a 2-3 op alphabet with up
// to 6 states. Used for property-style tests of the preorder laws.
func randomAutomaton(rng *rand.Rand) *spec.Automaton {
	states := []string{"0", "1", "2", "3", "4", "5"}[:2+rng.Intn(4)]
	alpha := []spec.Operation{opA(), opB(), opC()}[:2+rng.Intn(2)]
	m := spec.NewAutomaton("rand", "0")
	for _, s := range states {
		for _, op := range alpha {
			n := rng.Intn(3)
			for k := 0; k < n; k++ {
				m.AddTransition(s, op, states[rng.Intn(len(states))])
			}
		}
	}
	return m.Freeze()
}

func randomSeq(rng *rand.Rand, alpha []spec.Operation, maxLen int) spec.Seq {
	n := rng.Intn(maxLen + 1)
	out := make(spec.Seq, n)
	for i := range out {
		out[i] = alpha[rng.Intn(len(alpha))]
	}
	return out
}

// TestLooksLikeLaws property-tests Lemmas 3–7 of the paper on random
// automata: reflexivity, transitivity, legality preservation (Lemma 5), and
// right-congruence (Lemma 6: α ≲ β ⇒ αγ ≲ βγ).
func TestLooksLikeLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 150; trial++ {
		m := randomAutomaton(rng)
		c := NewChecker(m)
		alpha := m.Alphabet()
		if len(alpha) == 0 {
			continue
		}
		a := randomSeq(rng, alpha, 3)
		b := randomSeq(rng, alpha, 3)
		g := randomSeq(rng, alpha, 3)

		if !c.LooksLike(a, a) {
			t.Fatalf("reflexivity failed for %s on %v", a, m.Name())
		}
		// Lemma 5: if a legal and a ≲ b then b legal.
		if c.Legal(a) && c.LooksLike(a, b) && !c.Legal(b) {
			t.Fatalf("Lemma 5 failed: %s legal, %s ≲ %s, but %s illegal", a, a, b, b)
		}
		// Lemma 6: a ≲ b ⇒ a·γ ≲ b·γ.
		if c.LooksLike(a, b) {
			ag := append(a.Clone(), g...)
			bg := append(b.Clone(), g...)
			if !c.LooksLike(ag, bg) {
				t.Fatalf("Lemma 6 failed: %s ≲ %s but %s ⋠ %s", a, b, ag, bg)
			}
		}
		// Transitivity (Lemma 3).
		d := randomSeq(rng, alpha, 3)
		if c.LooksLike(a, b) && c.LooksLike(b, d) && !c.LooksLike(a, d) {
			t.Fatalf("transitivity failed: %s ≲ %s ≲ %s", a, b, d)
		}
	}
}

// TestDistinguishingSuffixIsValid property-tests that every reported
// distinguishing suffix γ really satisfies αγ legal and βγ illegal.
func TestDistinguishingSuffixIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 150; trial++ {
		m := randomAutomaton(rng)
		c := NewChecker(m)
		alpha := m.Alphabet()
		if len(alpha) == 0 {
			continue
		}
		a := randomSeq(rng, alpha, 3)
		b := randomSeq(rng, alpha, 3)
		suffix, found := c.DistinguishingSuffix(a, b)
		if !found {
			continue
		}
		ag := append(a.Clone(), suffix...)
		bg := append(b.Clone(), suffix...)
		if !m.Legal(ag) {
			t.Fatalf("suffix invalid: α·γ = %s illegal", ag)
		}
		if m.Legal(bg) {
			t.Fatalf("suffix invalid: β·γ = %s legal", bg)
		}
	}
}

func TestReachableSetCount(t *testing.T) {
	c := NewChecker(chainSpec())
	// Deterministic chain: 4 singleton sets.
	if got := c.ReachableSetCount(); got != 4 {
		t.Errorf("ReachableSetCount = %d, want 4", got)
	}
}

func TestAlphaRestrictionLimitsQuantification(t *testing.T) {
	// Without restriction, (b,b) is NFC in the chain spec (b·b never legal
	// after any α where b legal... actually b is legal only at state 1 and
	// b·b illegal). With α restricted to exclude state 1, the FC check
	// becomes vacuous and reports commuting.
	m := chainSpec()
	free := NewChecker(m)
	if free.CommuteForward(opB(), opB()) {
		t.Error("b should not forward-commute with itself on the chain")
	}
	restricted := NewChecker(m, WithAlphaRestriction(func(states []string) bool {
		for _, s := range states {
			if s == "1" {
				return false
			}
		}
		return true
	}))
	if !restricted.CommuteForward(opB(), opB()) {
		t.Error("with state 1 excluded the FC check is vacuous")
	}
}
