package history

import (
	"hash/fnv"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// shardOf assigns an object to one of n shard recorders, the way the
// engine's registry does.
func shardOf(obj ObjectID, n int) int {
	h := fnv.New32a()
	h.Write([]byte(obj))
	return int(h.Sum32()) % n
}

// TestMergeReconstructsRecordOrder: distributing a well-formed history
// over 1–16 per-object shard recorders and merging reconstructs the exact
// input sequence (stamps are assigned in record order, and Merge sorts by
// stamp), and the result round-trips through the same well-formedness
// check cmd/histcheck runs.
func TestMergeReconstructsRecordOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shards := 1 + rng.Intn(16)
		h := randomWellFormed(rng, 1+rng.Intn(5), 1+rng.Intn(4), 60)
		var seq atomic.Int64
		recs := make([]*Recorder, shards)
		for i := range recs {
			recs[i] = NewRecorder(&seq)
		}
		for _, ev := range h {
			recs[shardOf(ev.Obj, shards)].Record(ev)
		}
		merged := Merge(recs...)
		if len(merged) != len(h) {
			return false
		}
		for i := range h {
			if merged[i] != h[i] {
				return false
			}
		}
		return WellFormed(merged) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestMergeConcurrentInterleavings: one goroutine per transaction replays
// its event stream into the object-owning shard recorder — the engine's
// actual concurrency shape (a transaction is single-goroutine; shards are
// shared) — across random shard counts 1–16. Whatever interleaving the
// scheduler produces, the merged history must (1) equal the stamp order
// exactly, (2) preserve every transaction's program order, and (3) pass
// the well-formedness check the verification stack starts with.
func TestMergeConcurrentInterleavings(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shards := 1 + rng.Intn(16)
		h := randomWellFormed(rng, 2+rng.Intn(5), 1+rng.Intn(4), 80)
		var seq atomic.Int64
		recs := make([]*Recorder, shards)
		for i := range recs {
			recs[i] = NewRecorder(&seq)
		}
		var wg sync.WaitGroup
		for _, txn := range h.Txns() {
			wg.Add(1)
			go func(stream History) {
				defer wg.Done()
				for _, ev := range stream {
					recs[shardOf(ev.Obj, shards)].Record(ev)
					runtime.Gosched()
				}
			}(h.ProjectTxn(txn))
		}
		wg.Wait()
		merged := Merge(recs...)
		if len(merged) != len(h) {
			return false
		}
		// (1) Merged order is exactly stamp order.
		var all []SeqEvent
		for _, r := range recs {
			all = append(all, r.Snapshot()...)
		}
		bySeq := make(map[int64]Event, len(all))
		for _, se := range all {
			if _, dup := bySeq[se.Seq]; dup {
				return false // stamps must be unique
			}
			bySeq[se.Seq] = se.Event
		}
		ordered := make([]int64, 0, len(all))
		for s := range bySeq {
			ordered = append(ordered, s)
		}
		sortInt64s(ordered)
		for i, s := range ordered {
			if merged[i] != bySeq[s] {
				return false
			}
		}
		// (2) Per-transaction program order survives the interleaving.
		for _, txn := range h.Txns() {
			want := h.ProjectTxn(txn)
			got := merged.ProjectTxn(txn)
			if len(want) != len(got) {
				return false
			}
			for i := range want {
				if want[i] != got[i] {
					return false
				}
			}
		}
		// (3) The merge is still a well-formed history.
		return WellFormed(merged) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func sortInt64s(a []int64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
